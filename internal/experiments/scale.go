package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/perfmodel"
	"repro/internal/scheduler"
	"repro/internal/simcluster"
	"repro/internal/workload"
)

// ScaleRow is one cluster size of the scheduler scale experiment.
type ScaleRow struct {
	Jobs        int
	Procs       int
	Shards      int
	WallSeconds float64
	JobsPerSec  float64
	Utilization float64
}

// SchedulerScale stresses the event-driven scheduler core well beyond the
// paper's 5-job workloads: generated mixes of thousands of jobs on a
// 1024-processor virtual cluster, reporting wall-clock throughput of the
// simulation itself. This is the experiment DESIGN.md's scalability section
// refers to; BenchmarkSchedulerThroughput covers the same path under `go
// test -bench`.
func SchedulerScale(params *perfmodel.Params, jobCounts []int) ([]ScaleRow, error) {
	const procs = 1024
	var rows []ScaleRow
	for _, jobs := range jobCounts {
		mix, err := workload.Generate(workload.GenConfig{
			Seed: 7, Jobs: jobs, MeanInterarrival: 2, MaxProcs: 64,
		})
		if err != nil {
			return nil, err
		}
		core := scheduler.NewCoreSharded(procs, 16, true)
		core.DisableTrace()
		// The experiment reports throughput and utilization only, so the
		// per-iteration result rows are dropped like the allocation trace —
		// matching the benchmark configuration the committed scaling curve
		// (BENCH_scheduler.json) is measured under.
		start := time.Now()
		res, err := simcluster.New(procs, simcluster.Dynamic, params, mix).
			WithCore(core).WithoutIterRecords().Run()
		if err != nil {
			return nil, fmt.Errorf("scale %d jobs: %w", jobs, err)
		}
		wall := time.Since(start).Seconds()
		rows = append(rows, ScaleRow{
			Jobs:        jobs,
			Procs:       procs,
			Shards:      core.Pool().NumShards(),
			WallSeconds: wall,
			JobsPerSec:  float64(jobs) / wall,
			Utilization: res.Utilization,
		})
	}
	return rows, nil
}

// PrintSchedulerScale writes the scheduler scale table. With no explicit
// jobCounts it runs the default 1k/10k mixes; reshape-bench's -scale-jobs
// flag passes larger counts (e.g. the 1M profiling mix) through here.
func PrintSchedulerScale(w io.Writer, params *perfmodel.Params, jobCounts ...int) error {
	if len(jobCounts) == 0 {
		jobCounts = []int{1000, 10000}
	}
	rows, err := SchedulerScale(params, jobCounts)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Scheduler scale: generated mixes through the event-driven core")
	fmt.Fprintf(w, "%8s %8s %8s %10s %10s %10s\n",
		"jobs", "procs", "shards", "wall(s)", "jobs/s", "util(%)")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %8d %8d %10.2f %10.0f %10.1f\n",
			r.Jobs, r.Procs, r.Shards, r.WallSeconds, r.JobsPerSec, 100*r.Utilization)
	}
	return nil
}
