package experiments

import (
	"fmt"

	"repro/internal/perfmodel"
	"repro/internal/scheduler/arbiter"
	"repro/internal/scheduler/fairshare"
	"repro/internal/simcluster"
	"repro/internal/workload"
)

// TenantRow compares one tenant's queue-wait experience under plain
// benefit-ranked arbitration against the fair-share arbiter on the same
// mix.
type TenantRow struct {
	Tenant      string
	Jobs        int
	BenefitWait float64 // mean queue wait, seconds
	FairWait    float64
	BenefitP99  float64 // p99 queue wait, seconds
	FairP99     float64
}

// NoisyNeighborMix is the fairness stress workload: two well-behaved
// tenants submitting at a steady trickle share the cluster with one noisy
// tenant arriving 10x as fast in clumps of 10 near-simultaneous jobs — the
// regime where tenant-blind arbitration lets the burst monopolize the
// queue and the victims' tail wait explodes.
func NoisyNeighborMix() ([]simcluster.JobInput, error) {
	return workload.Generate(workload.GenConfig{
		Seed:     17,
		MaxProcs: workload.ClusterProcs,
		Tenants: []workload.TenantSpec{
			{Name: "noisy", Jobs: 30, MeanInterarrival: 60,
				Pattern: workload.Bursty, Burst: 10, BurstFactor: 100},
			{Name: "victim1", Jobs: 8, MeanInterarrival: 600},
			{Name: "victim2", Jobs: 8, MeanInterarrival: 600},
		},
	})
}

// FairShareComparison runs the noisy-neighbor mix under the benefit-ranked
// arbiter and under the fair-share arbiter (equal tenant weights, same
// benefit-ranked inner arbiter and predictor), reporting each tenant's
// mean and p99 queue wait under both. Rows follow the mix's tenant order:
// noisy, victim1, victim2.
func FairShareComparison(params *perfmodel.Params) ([]TenantRow, error) {
	mix, err := NoisyNeighborMix()
	if err != nil {
		return nil, err
	}
	benefit, err := simcluster.New(workload.ClusterProcs, simcluster.Dynamic, params, mix).
		WithArbiter(&arbiter.BenefitRanked{Predict: simcluster.Predictor(params, mix)}).
		Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: noisy-neighbor benefit: %w", err)
	}
	fs := fairshare.New(nil)
	fs.Inner = &arbiter.BenefitRanked{Predict: simcluster.Predictor(params, mix)}
	fair, err := simcluster.New(workload.ClusterProcs, simcluster.Dynamic, params, mix).
		WithArbiter(fs).
		Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: noisy-neighbor fairshare: %w", err)
	}
	var rows []TenantRow
	for _, tenant := range []string{"noisy", "victim1", "victim2"} {
		n := 0
		for _, j := range fair.Jobs {
			if j.Tenant == tenant {
				n++
			}
		}
		rows = append(rows, TenantRow{
			Tenant:      tenant,
			Jobs:        n,
			BenefitWait: benefit.TenantMeanQueueWait(tenant),
			FairWait:    fair.TenantMeanQueueWait(tenant),
			BenefitP99:  benefit.TenantQueueWaitP99(tenant),
			FairP99:     fair.TenantQueueWaitP99(tenant),
		})
	}
	return rows, nil
}
