package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/perfmodel"
	"repro/internal/workload"
)

func TestTable2ChainsMatchPaper(t *testing.T) {
	rows := Table2()
	find := func(problem string) Table2Row {
		for _, r := range rows {
			if r.Problem == problem {
				return r
			}
		}
		t.Fatalf("row %q missing", problem)
		return Table2Row{}
	}
	cfgs := find("8000 (LU, MM)").Configs
	want := []string{"1x2", "2x2", "2x4", "4x4", "4x5", "5x5", "5x8"}
	if strings.Join(cfgs, " ") != strings.Join(want, " ") {
		t.Errorf("8000 chain %v, want %v", cfgs, want)
	}
	fft := find("8192 (FFT)").Configs
	if strings.Join(fft, " ") != "2 4 8 16 32" {
		t.Errorf("FFT chain %v", fft)
	}
}

func TestFig2aShape(t *testing.T) {
	data, err := Fig2a(perfmodel.SystemX())
	if err != nil {
		t.Fatal(err)
	}
	// Every series starts at its smallest config and the first expansion
	// always helps.
	for n, pts := range data {
		if len(pts) < 3 {
			t.Fatalf("size %d: only %d points", n, len(pts))
		}
		if pts[1].Seconds >= pts[0].Seconds {
			t.Errorf("size %d: first expansion should improve (%.1f -> %.1f)",
				n, pts[0].Seconds, pts[1].Seconds)
		}
	}
	// Larger sizes take longer at equal processor counts.
	find := func(n, procs int) float64 {
		for _, pt := range data[n] {
			if pt.Procs == procs {
				return pt.Seconds
			}
		}
		t.Fatalf("size %d has no %d-proc point", n, procs)
		return 0
	}
	if find(24000, 16) <= find(8000, 16) {
		t.Error("24000 should be slower than 8000 on 16 procs")
	}
}

func TestFig2bShape(t *testing.T) {
	data := Fig2b(perfmodel.SystemX())
	for n, pts := range data {
		for i := 1; i < len(pts); i++ {
			if pts[i].Seconds > pts[i-1].Seconds*1.01 {
				t.Errorf("size %d: redistribution cost rising along chain: %+v", n, pts)
				break
			}
		}
	}
	// Cost grows with matrix size at the same transition point.
	if data[24000][0].Seconds <= data[8000][0].Seconds {
		t.Error("redistribution cost should grow with matrix size")
	}
}

func TestFig3aReproducesTrajectory(t *testing.T) {
	iters, err := Fig3a(perfmodel.SystemX())
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) != 10 {
		t.Fatalf("%d iterations", len(iters))
	}
	want := []int{2, 4, 6, 9, 12, 16, 12, 12, 12, 12}
	for i, r := range iters {
		if r.Procs != want[i] {
			t.Fatalf("iteration %d on %d procs, want %d", i+1, r.Procs, want[i])
		}
	}
	// The 12 -> 16 expansion must show a negative delta (performance loss),
	// like the paper's -5.06 s row.
	if iters[5].IterTime <= iters[4].IterTime {
		t.Error("expansion to 16 should degrade iteration time")
	}
}

func TestFig3bOrdering(t *testing.T) {
	rows, err := Fig3b(perfmodel.SystemX())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.App == "Master-Worker" {
			// No data: checkpointing and ReSHAPE must tie.
			if r.RedistSec[1] != 0 || r.RedistSec[2] != 0 {
				t.Errorf("MW redist %v", r.RedistSec)
			}
			continue
		}
		// Checkpoint redistribution must dominate ReSHAPE redistribution.
		if r.RedistSec[1] <= r.RedistSec[2] {
			t.Errorf("%s: checkpoint redist %.1f <= reshape %.1f", r.App, r.RedistSec[1], r.RedistSec[2])
		}
		// Both dynamic strategies beat static on total iteration time.
		if r.IterSec[2] >= r.IterSec[0] {
			t.Errorf("%s: reshape iter time %.1f >= static %.1f", r.App, r.IterSec[2], r.IterSec[0])
		}
	}
	// Paper anchor: LU checkpoint/reshape redistribution ratio is 8.3; ours
	// must at least be well above 2.
	for _, r := range rows {
		if r.App == "LU" {
			if ratio := r.RedistSec[1] / r.RedistSec[2]; ratio < 2 {
				t.Errorf("LU checkpoint/reshape ratio %.1f", ratio)
			}
		}
	}
}

func TestW1UtilizationImprovement(t *testing.T) {
	cmp, err := RunW1(perfmodel.SystemX())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 39.7% static vs 70.7% dynamic. Require a large improvement.
	if cmp.DynamicUtilization <= cmp.StaticUtilization+0.1 {
		t.Errorf("utilization static %.3f dynamic %.3f: improvement too small",
			cmp.StaticUtilization, cmp.DynamicUtilization)
	}
	if cmp.StaticUtilization > 0.6 {
		t.Errorf("static utilization %.3f unexpectedly high", cmp.StaticUtilization)
	}
}

func TestW1TurnaroundWinners(t *testing.T) {
	cmp, err := RunW1(perfmodel.SystemX())
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]workload.TurnaroundRow{}
	for _, r := range cmp.Rows {
		rows[r.Job] = r
	}
	// LU, MM and Jacobi benefit substantially from dynamic scheduling.
	for _, name := range []string{"LU", "MM", "Jacobi"} {
		r := rows[name]
		if r.Difference() <= 0 {
			t.Errorf("%s: dynamic (%.1f) should beat static (%.1f)", name, r.DynamicSec, r.StaticSec)
		}
	}
	// Master-worker finishes too quickly to benefit (paper: -0.53 s).
	mw := rows["Master-Worker"]
	if mw.Difference() > 0.2*mw.StaticSec {
		t.Errorf("Master-Worker gained %.1f s of %.1f: too much", mw.Difference(), mw.StaticSec)
	}
}

func TestW2SmallAdvantage(t *testing.T) {
	cmp, err := RunW2(perfmodel.SystemX())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's W2 shows only a small advantage for dynamic scheduling;
	// nothing may get dramatically worse either.
	for _, r := range cmp.Rows {
		if r.DynamicSec > r.StaticSec*1.3 {
			t.Errorf("%s: dynamic %.1f much worse than static %.1f", r.Job, r.DynamicSec, r.StaticSec)
		}
	}
}

func TestW2ShrinkToAccommodate(t *testing.T) {
	cmp, err := RunW2(perfmodel.SystemX())
	if err != nil {
		t.Fatal(err)
	}
	// LU must shrink at least once in the dynamic run (to admit queued
	// jobs), visible as a shrink event in the trace.
	shrunk := false
	for _, e := range cmp.Dynamic.Events {
		if e.Job == "LU" && e.Kind == "shrink" {
			shrunk = true
		}
	}
	if !shrunk {
		t.Error("LU never shrank in W2")
	}
	// Every job eventually runs and finishes.
	if len(cmp.Dynamic.Jobs) != 4 {
		t.Errorf("%d jobs finished", len(cmp.Dynamic.Jobs))
	}
}

func TestPrintersProduceOutput(t *testing.T) {
	p := perfmodel.SystemX()
	var buf bytes.Buffer
	PrintTable2(&buf)
	if err := PrintFig2a(&buf, p); err != nil {
		t.Fatal(err)
	}
	PrintFig2b(&buf, p)
	if err := PrintFig3a(&buf, p); err != nil {
		t.Fatal(err)
	}
	if err := PrintFig3b(&buf, p); err != nil {
		t.Fatal(err)
	}
	cmp, err := RunW1(p)
	if err != nil {
		t.Fatal(err)
	}
	PrintAllocHistory(&buf, "Figure 4(a)", cmp.Dynamic, []string{"LU", "MM"})
	PrintBusySeries(&buf, "Figure 4(b)", cmp)
	PrintTurnaroundTable(&buf, "Table 4", cmp)
	out := buf.String()
	for _, want := range []string{"Table 2", "Figure 2(a)", "Figure 3(a)", "utilization"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
