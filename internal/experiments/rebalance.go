package experiments

import (
	"fmt"

	"repro/internal/perfmodel"
	"repro/internal/scheduler/arbiter"
	"repro/internal/scheduler/rebalance"
	"repro/internal/simcluster"
	"repro/internal/workload"
)

// DefaultRebalanceTick is the planning-tick cadence the comparison (and
// the recorded DESIGN.md numbers) use: long enough that several resize
// points land between ticks on SystemX iteration times, short enough
// that a plan is never more than a few iterations stale.
const DefaultRebalanceTick = 120

// RebalanceRow compares the PR 5 reactive benefit-ranked arbiter against
// the global rebalancer (the same arbiter wrapped by the curve-driven
// planner) on one workload mix.
type RebalanceRow struct {
	Mix  string
	Jobs int

	ArbMakespan float64 // reactive arbiter
	RebMakespan float64 // with global rebalancing

	ArbP99Wait float64 // p99 queue wait, seconds
	RebP99Wait float64

	ArbMeanWait float64
	RebMeanWait float64

	ArbMeanTurn float64
	RebMeanTurn float64

	ArbUtil float64
	RebUtil float64
}

// MakespanImprovement is the relative makespan reduction of the global
// rebalancer over the reactive arbiter (positive = rebalancer better).
func (r RebalanceRow) MakespanImprovement() float64 {
	if r.ArbMakespan == 0 {
		return 0
	}
	return (r.ArbMakespan - r.RebMakespan) / r.ArbMakespan
}

// TurnaroundImprovement is the relative mean-turnaround reduction
// (positive = rebalancer better).
func (r RebalanceRow) TurnaroundImprovement() float64 {
	if r.ArbMeanTurn == 0 {
		return 0
	}
	return (r.ArbMeanTurn - r.RebMeanTurn) / r.ArbMeanTurn
}

// RebalanceComparison runs W1, W2 and the contended generated mix under
// the reactive benefit-ranked arbiter (the PR 5 baseline, with the
// perfmodel predictor) and under the global rebalancer ticking every
// DefaultRebalanceTick seconds, reporting makespan, queue-wait tail and
// utilization for each. Both sides share identical predictor
// configuration, so every delta is attributable to the planning layer.
func RebalanceComparison(params *perfmodel.Params) ([]RebalanceRow, error) {
	contended, err := ContendedMix()
	if err != nil {
		return nil, err
	}
	mixes := []struct {
		name string
		jobs []simcluster.JobInput
	}{
		{"W1", workload.W1()},
		{"W2", workload.W2()},
		{"contended", contended},
	}
	var rows []RebalanceRow
	for _, m := range mixes {
		base, err := simcluster.New(workload.ClusterProcs, simcluster.Dynamic, params, m.jobs).
			WithArbiter(&arbiter.BenefitRanked{Predict: simcluster.Predictor(params, m.jobs)}).
			Run()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s arbiter: %w", m.name, err)
		}
		reb := rebalance.New(&arbiter.BenefitRanked{Predict: simcluster.Predictor(params, m.jobs)})
		reb.Predict = simcluster.Predictor(params, m.jobs)
		reb.RedistCost = simcluster.RedistPredictor(params, m.jobs)
		rebRes, err := simcluster.New(workload.ClusterProcs, simcluster.Dynamic, params, m.jobs).
			WithArbiter(reb).
			WithRebalance(DefaultRebalanceTick).
			Run()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s rebalance: %w", m.name, err)
		}
		rows = append(rows, RebalanceRow{
			Mix:         m.name,
			Jobs:        len(m.jobs),
			ArbMakespan: base.Makespan,
			RebMakespan: rebRes.Makespan,
			ArbP99Wait:  base.QueueWaitP99(),
			RebP99Wait:  rebRes.QueueWaitP99(),
			ArbMeanWait: base.MeanQueueWait(),
			RebMeanWait: rebRes.MeanQueueWait(),
			ArbMeanTurn: base.MeanTurnaround(),
			RebMeanTurn: rebRes.MeanTurnaround(),
			ArbUtil:     base.Utilization,
			RebUtil:     rebRes.Utilization,
		})
	}
	return rows, nil
}
