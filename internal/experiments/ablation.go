package experiments

import (
	"fmt"
	"io"

	"repro/internal/grid"
	"repro/internal/perfmodel"
	"repro/internal/scheduler"
	"repro/internal/simcluster"
	"repro/internal/workload"
)

// AblationRow is one policy's outcome on workload W1.
type AblationRow struct {
	Policy         string
	Utilization    float64
	MeanTurnaround float64
	TotalRedist    float64
	Resizes        int
}

// PolicyAblation runs workload W1 under alternative Remap Scheduler
// policies — the design-choice study DESIGN.md calls out: the published
// policy, the threshold-based sweet-spot detector the paper sketches in
// §4.1.1, and the cost-aware variant that amortizes recorded redistribution
// costs (§4.1.2).
func PolicyAblation(params *perfmodel.Params) ([]AblationRow, error) {
	estimate := func(in scheduler.RemapInput, d scheduler.Decision) (float64, bool) {
		// Use the perfmodel's redistribution predictor for an LU-sized
		// array; the real framework would use the application's own record.
		return params.RedistTime(perfmodel.AppModel{App: "lu", N: 12000}, in.Current, d.Target), true
	}
	policies := []scheduler.Policy{
		scheduler.PaperPolicy{},
		scheduler.ThresholdPolicy{MinImprovement: 0.05},
		scheduler.ThresholdPolicy{MinImprovement: 0.15},
		scheduler.CostAwarePolicy{EstimateRedist: estimate},
	}
	var rows []AblationRow
	for _, pol := range policies {
		sim := simcluster.New(workload.ClusterProcs, simcluster.Dynamic, params, workload.W1()).WithPolicy(pol)
		res, err := sim.Run()
		if err != nil {
			return nil, fmt.Errorf("policy %s: %w", pol.Name(), err)
		}
		row := AblationRow{Policy: pol.Name(), Utilization: res.Utilization}
		for _, j := range res.Jobs {
			row.MeanTurnaround += j.Turnaround()
			row.TotalRedist += j.TotalRedist
			for _, r := range j.Iters {
				if r.RedistSec > 0 {
					row.Resizes++
				}
			}
		}
		row.MeanTurnaround /= float64(len(res.Jobs))
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintPolicyAblation writes the policy ablation table.
func PrintPolicyAblation(w io.Writer, params *perfmodel.Params) error {
	rows, err := PolicyAblation(params)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Policy ablation on workload 1")
	fmt.Fprintf(w, "%-22s %10s %16s %14s %8s\n",
		"policy", "util(%)", "mean turnarnd(s)", "total redist(s)", "resizes")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %10.1f %16.1f %14.1f %8d\n",
			r.Policy, 100*r.Utilization, r.MeanTurnaround, r.TotalRedist, r.Resizes)
	}
	return nil
}

// ScheduleAblationRow compares the circulant schedule against the naive
// single-phase exchange for one grid transition.
type ScheduleAblationRow struct {
	Transition      string
	CirculantSteps  int
	NaiveContention int
}

// ScheduleAblation quantifies why the contention-free schedule matters: the
// naive exchange makes up to p/gcd(p,q) senders target one receiver
// simultaneously, while the circulant schedule serializes them into
// contention-free steps.
func ScheduleAblation() []ScheduleAblationRow {
	transitions := []struct{ from, to grid.Topology }{
		{grid.Topology{Rows: 1, Cols: 2}, grid.Topology{Rows: 2, Cols: 2}},
		{grid.Topology{Rows: 3, Cols: 4}, grid.Topology{Rows: 4, Cols: 4}},
		{grid.Topology{Rows: 5, Cols: 5}, grid.Topology{Rows: 5, Cols: 8}},
		{grid.Topology{Rows: 6, Cols: 8}, grid.Topology{Rows: 2, Cols: 2}},
	}
	var rows []ScheduleAblationRow
	for _, tr := range transitions {
		rows = append(rows, ScheduleAblationRow{
			Transition:      fmt.Sprintf("%s->%s", tr.from, tr.to),
			CirculantSteps:  dimSteps(tr.from.Rows, tr.to.Rows) * dimSteps(tr.from.Cols, tr.to.Cols),
			NaiveContention: naiveContention(tr.from, tr.to),
		})
	}
	return rows
}

func dimSteps(p, q int) int {
	g := gcd(p, q)
	a, b := p/g, q/g
	if a > b {
		return a
	}
	return b
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func naiveContention(from, to grid.Topology) int {
	r := from.Rows / gcd(from.Rows, to.Rows)
	c := from.Cols / gcd(from.Cols, to.Cols)
	if r < 1 {
		r = 1
	}
	if c < 1 {
		c = 1
	}
	return r * c
}

// PrintScheduleAblation writes the schedule ablation table.
func PrintScheduleAblation(w io.Writer) {
	fmt.Fprintln(w, "# Schedule ablation: circulant steps vs naive receive contention")
	fmt.Fprintf(w, "%-14s %16s %18s\n", "transition", "circulant steps", "naive contention")
	for _, r := range ScheduleAblation() {
		fmt.Fprintf(w, "%-14s %16d %18d\n", r.Transition, r.CirculantSteps, r.NaiveContention)
	}
}

// PrintLoadSweep writes a static-vs-dynamic utilization/turnaround sweep
// over synthetic arrival rates (a generated 20-job mix).
func PrintLoadSweep(w io.Writer, params *perfmodel.Params) error {
	points, err := workload.LoadSweep(workload.ClusterProcs, params, 20, 1,
		[]float64{50, 100, 200, 400, 800, 1600})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Load sweep: synthetic 20-job mixes at varying arrival rates")
	fmt.Fprintf(w, "%-18s %12s %13s %16s %17s\n",
		"mean interarrival", "static util", "dynamic util", "static turn(s)", "dynamic turn(s)")
	for _, pt := range points {
		fmt.Fprintf(w, "%-18.0f %11.1f%% %12.1f%% %16.1f %17.1f\n",
			pt.MeanInterarrival, 100*pt.StaticUtil, 100*pt.DynamicUtil,
			pt.StaticMeanTurn, pt.DynamicMeanTurn)
	}
	return nil
}
