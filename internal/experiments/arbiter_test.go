package experiments

import (
	"testing"

	"repro/internal/perfmodel"
)

// TestArbiterImprovesQueueWait is the acceptance gate of the arbitration
// layer: on the paper's workload mixes the benefit-ranked arbiter must
// never increase mean queue wait over the published FCFS path, and on the
// mixes with real queue contention (W1 and the contended generated mix) it
// must strictly reduce it. The measured values are recorded in DESIGN.md's
// "Arbitration layer" section.
func TestArbiterImprovesQueueWait(t *testing.T) {
	rows, err := ArbiterComparison(perfmodel.SystemX())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	for _, r := range rows {
		t.Logf("%-10s jobs=%2d  mean wait %7.1fs -> %7.1fs (%+.1f%%)  mean turnaround %7.1fs -> %7.1fs",
			r.Mix, r.Jobs, r.FCFSWait, r.ArbiterWait, -100*r.WaitImprovement(), r.FCFSTurn, r.ArbiterTurn)
		if r.ArbiterWait > r.FCFSWait+1e-9 {
			t.Errorf("%s: arbiter mean wait %.2fs exceeds FCFS %.2fs", r.Mix, r.ArbiterWait, r.FCFSWait)
		}
	}
	for _, mix := range []string{"W1", "contended"} {
		found := false
		for _, r := range rows {
			if r.Mix != mix {
				continue
			}
			found = true
			if r.WaitImprovement() <= 0 {
				t.Errorf("%s: no queue-wait improvement (FCFS %.2fs, arbiter %.2fs)",
					mix, r.FCFSWait, r.ArbiterWait)
			}
		}
		if !found {
			t.Errorf("mix %s missing from comparison", mix)
		}
	}
}
