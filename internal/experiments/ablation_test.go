package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/perfmodel"
)

func TestPolicyAblationRuns(t *testing.T) {
	rows, err := PolicyAblation(perfmodel.SystemX())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Policy] = r
		if r.Utilization <= 0 || r.Utilization > 1 {
			t.Errorf("%s: utilization %v", r.Policy, r.Utilization)
		}
		if r.MeanTurnaround <= 0 {
			t.Errorf("%s: turnaround %v", r.Policy, r.MeanTurnaround)
		}
	}
	// Every policy must actually resize on W1 (the workload is bursty), and
	// the cost-aware wrapper must never pay more total redistribution than
	// the unconstrained paper policy.
	for name, r := range byName {
		if r.Resizes == 0 {
			t.Errorf("%s never resized", name)
		}
	}
	paper := byName["paper"]
	costAware := byName["cost-aware+paper"]
	if costAware.TotalRedist > paper.TotalRedist*1.01 {
		t.Errorf("cost-aware redist %.1f exceeds paper policy %.1f",
			costAware.TotalRedist, paper.TotalRedist)
	}
}

func TestScheduleAblationValues(t *testing.T) {
	rows := ScheduleAblation()
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.CirculantSteps < 1 {
			t.Errorf("%s: %d steps", r.Transition, r.CirculantSteps)
		}
		if r.NaiveContention < 1 {
			t.Errorf("%s: contention %d", r.Transition, r.NaiveContention)
		}
	}
	// The 6x8 -> 2x2 shrink funnels many sources per destination naively.
	last := rows[3]
	if last.NaiveContention < 6 {
		t.Errorf("big shrink should show high naive contention, got %d", last.NaiveContention)
	}
}

func TestAblationPrinters(t *testing.T) {
	var buf bytes.Buffer
	if err := PrintPolicyAblation(&buf, perfmodel.SystemX()); err != nil {
		t.Fatal(err)
	}
	PrintScheduleAblation(&buf)
	out := buf.String()
	if !strings.Contains(out, "Policy ablation") || !strings.Contains(out, "cost-aware") {
		t.Errorf("missing content: %q", out)
	}
}
