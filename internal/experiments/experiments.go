// Package experiments regenerates every table and figure of the paper's
// evaluation (§4). Each experiment has a typed generator (used by tests and
// benchmarks) and a printer that emits the series/rows the paper reports.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/grid"
	"repro/internal/perfmodel"
	"repro/internal/scheduler"
	"repro/internal/simcluster"
	"repro/internal/workload"
)

// LUSizes are the LU/MM problem sizes of Table 2 / Figure 2.
var LUSizes = []int{8000, 12000, 14000, 16000, 20000, 21000, 24000}

// StartTopo returns the paper's starting configuration for an LU/MM problem
// size ("the starting processor size is the smallest size which can
// accommodate the data"): 8000 and 12000 start on 2 processors, 14000-21000
// on 4, 24000 on 8.
func StartTopo(n int) grid.Topology {
	switch {
	case n <= 12000:
		return grid.Topology{Rows: 1, Cols: 2}
	case n <= 21000:
		return grid.Topology{Rows: 2, Cols: 2}
	default:
		return grid.Topology{Rows: 2, Cols: 4}
	}
}

// Chain returns the Table 2 configuration ladder for an LU/MM size.
func Chain(n int) []grid.Topology {
	return grid.GrowthChain(StartTopo(n), n, 50)
}

// --- Table 2 ---------------------------------------------------------------

// Table2Row is one row of Table 2.
type Table2Row struct {
	Problem string
	Configs []string
}

// Table2 enumerates the processor configurations for every workload
// application.
func Table2() []Table2Row {
	var rows []Table2Row
	for _, n := range LUSizes {
		var cfgs []string
		for _, t := range Chain(n) {
			cfgs = append(cfgs, t.String())
		}
		rows = append(rows, Table2Row{Problem: fmt.Sprintf("%d (LU, MM)", n), Configs: cfgs})
	}
	var jac []string
	for _, p := range []int{4, 8, 10, 16, 20, 32, 40, 50} {
		jac = append(jac, fmt.Sprint(p))
	}
	rows = append(rows, Table2Row{Problem: "8000 (Jacobi)", Configs: jac})
	var fft []string
	for _, p := range grid.Chain1D(8192, 2, 32) {
		fft = append(fft, fmt.Sprint(p))
	}
	rows = append(rows, Table2Row{Problem: "8192 (FFT)", Configs: fft})
	var mw []string
	for p := 4; p <= 22; p += 2 {
		mw = append(mw, fmt.Sprint(p))
	}
	rows = append(rows, Table2Row{Problem: "20000 (Master-worker)", Configs: mw})
	return rows
}

// PrintTable2 writes Table 2.
func PrintTable2(w io.Writer) {
	fmt.Fprintln(w, "# Table 2: processor configurations per problem size")
	for _, r := range Table2() {
		fmt.Fprintf(w, "%-24s", r.Problem)
		for i, c := range r.Configs {
			if i > 0 {
				fmt.Fprint(w, ", ")
			}
			fmt.Fprint(w, c)
		}
		fmt.Fprintln(w)
	}
}

// --- Figure 2(a): LU running time vs processors -----------------------------

// SeriesPoint is one (processors, seconds) sample.
type SeriesPoint struct {
	Procs   int
	Topo    string
	Seconds float64
}

// Fig2a returns, per problem size, the LU iteration time across its
// configuration chain.
func Fig2a(params *perfmodel.Params) (map[int][]SeriesPoint, error) {
	out := make(map[int][]SeriesPoint)
	for _, n := range LUSizes {
		m := perfmodel.AppModel{App: "lu", N: n}
		for _, t := range Chain(n) {
			sec, err := params.IterTime(m, t)
			if err != nil {
				return nil, err
			}
			out[n] = append(out[n], SeriesPoint{Procs: t.Count(), Topo: t.String(), Seconds: sec})
		}
	}
	return out, nil
}

// PrintFig2a writes the Figure 2(a) series.
func PrintFig2a(w io.Writer, params *perfmodel.Params) error {
	data, err := Fig2a(params)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Figure 2(a): LU iteration time (s) vs processors")
	fmt.Fprintln(w, "size,topology,procs,seconds")
	for _, n := range LUSizes {
		for _, pt := range data[n] {
			fmt.Fprintf(w, "%d,%s,%d,%.2f\n", n, pt.Topo, pt.Procs, pt.Seconds)
		}
	}
	return nil
}

// --- Figure 2(b): redistribution overhead -----------------------------------

// Fig2b returns, per problem size, the redistribution cost of each
// expansion step along the chain; the point is plotted at the grown
// processor count, as in the paper.
func Fig2b(params *perfmodel.Params) map[int][]SeriesPoint {
	out := make(map[int][]SeriesPoint)
	for _, n := range LUSizes {
		m := perfmodel.AppModel{App: "lu", N: n}
		chain := Chain(n)
		for i := 0; i+1 < len(chain); i++ {
			cost := params.RedistTime(m, chain[i], chain[i+1])
			out[n] = append(out[n], SeriesPoint{
				Procs:   chain[i+1].Count(),
				Topo:    fmt.Sprintf("%s->%s", chain[i], chain[i+1]),
				Seconds: cost,
			})
		}
	}
	return out
}

// PrintFig2b writes the Figure 2(b) series.
func PrintFig2b(w io.Writer, params *perfmodel.Params) {
	fmt.Fprintln(w, "# Figure 2(b): redistribution overhead (s) for expansion")
	fmt.Fprintln(w, "size,transition,procs,seconds")
	for _, n := range LUSizes {
		for _, pt := range Fig2b(params)[n] {
			fmt.Fprintf(w, "%d,%s,%d,%.2f\n", n, pt.Topo, pt.Procs, pt.Seconds)
		}
	}
}

// --- Figure 3(a): LU 12000 resize trace --------------------------------------

// Fig3a runs a lone LU(12000) under ReSHAPE on an idle 50-processor cluster
// and returns its per-iteration trace (processors, iteration time, delta,
// redistribution cost), reproducing the table of Figure 3(a).
func Fig3a(params *perfmodel.Params) ([]simcluster.IterRecord, error) {
	job := simcluster.JobInput{
		Spec: scheduler.JobSpec{
			Name: "LU", App: "lu", ProblemSize: 12000, Iterations: 10,
			InitialTopo: StartTopo(12000), Chain: Chain(12000),
		},
		Model: perfmodel.AppModel{App: "lu", N: 12000},
	}
	res, err := simcluster.New(50, simcluster.Dynamic, params, []simcluster.JobInput{job}).Run()
	if err != nil {
		return nil, err
	}
	return res.Jobs[0].Iters, nil
}

// PrintFig3a writes the Figure 3(a) table.
func PrintFig3a(w io.Writer, params *perfmodel.Params) error {
	iters, err := Fig3a(params)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Figure 3(a): LU n=12000 iteration and redistribution trace")
	fmt.Fprintln(w, "iter,procs,topology,iter_time_s,delta_s,redist_s")
	prev := 0.0
	for _, r := range iters {
		delta := 0.0
		if prev != 0 {
			delta = prev - r.IterTime
		}
		fmt.Fprintf(w, "%d,%d,%s,%.2f,%.2f,%.2f\n", r.Iter, r.Procs, r.Topo, r.IterTime, delta, r.RedistSec)
		prev = r.IterTime
	}
	return nil
}

// --- Figure 3(b): static vs checkpoint vs ReSHAPE -----------------------------

// Fig3bRow is one application's stacked bar triple.
type Fig3bRow struct {
	App        string
	IterSec    [3]float64 // static, checkpoint, reshape: total iteration time
	RedistSec  [3]float64 // static, checkpoint, reshape: total redistribution
	Turnaround [3]float64
}

// fig3bJobs are the solo-application runs of Figure 3(b): LU(12000),
// MM(14000), Master-worker, Jacobi(8000), FFT(8192); LU, MM, Jacobi and MW
// start with 4 processors, FFT with 2.
func fig3bJobs() []simcluster.JobInput {
	mk2d := func(name, app string, n int) simcluster.JobInput {
		start := grid.Topology{Rows: 2, Cols: 2}
		return simcluster.JobInput{
			Spec: scheduler.JobSpec{
				Name: name, App: app, ProblemSize: n, Iterations: 10,
				InitialTopo: start, Chain: grid.GrowthChain(start, n, 50),
			},
			Model: perfmodel.AppModel{App: app, N: n},
		}
	}
	mk1d := func(name, app string, n int, counts []int, model perfmodel.AppModel) simcluster.JobInput {
		chain := make([]grid.Topology, len(counts))
		for i, p := range counts {
			chain[i] = grid.Row1D(p)
		}
		return simcluster.JobInput{
			Spec: scheduler.JobSpec{
				Name: name, App: app, ProblemSize: n, Iterations: 10,
				InitialTopo: chain[0], Chain: chain,
			},
			Model: model,
		}
	}
	return []simcluster.JobInput{
		mk2d("LU", "lu", 12000),
		mk2d("MM", "mm", 14000),
		mk1d("Master-Worker", "mw", 20000, []int{4, 6, 8, 10, 12, 14, 16, 18, 20, 22},
			perfmodel.AppModel{App: "mw", MWWorkSeconds: 44.1}), // 3 workers x 14.7
		mk1d("Jacobi", "jacobi", 8000, []int{4, 8, 10, 16, 20, 32, 40, 50},
			perfmodel.AppModel{App: "jacobi", N: 8000}),
		mk1d("2D FFT", "fft", 8192, []int{2, 4, 8, 16, 32},
			perfmodel.AppModel{App: "fft", N: 8192}),
	}
}

// Fig3b runs each application solo under the three strategies.
func Fig3b(params *perfmodel.Params) ([]Fig3bRow, error) {
	modes := []simcluster.Mode{simcluster.Static, simcluster.DynamicCheckpoint, simcluster.Dynamic}
	var rows []Fig3bRow
	for _, job := range fig3bJobs() {
		row := Fig3bRow{App: job.Spec.Name}
		for mi, mode := range modes {
			res, err := simcluster.New(50, mode, params, []simcluster.JobInput{job}).Run()
			if err != nil {
				return nil, err
			}
			j := res.Jobs[0]
			row.IterSec[mi] = j.ComputeTime()
			row.RedistSec[mi] = j.TotalRedist
			row.Turnaround[mi] = j.Turnaround()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig3b writes the Figure 3(b) comparison.
func PrintFig3b(w io.Writer, params *perfmodel.Params) error {
	rows, err := Fig3b(params)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Figure 3(b): iteration + redistribution time by strategy")
	fmt.Fprintln(w, "app,strategy,iter_s,redist_s,total_s")
	names := []string{"static", "checkpoint", "reshape"}
	for _, r := range rows {
		for i, s := range names {
			fmt.Fprintf(w, "%s,%s,%.1f,%.1f,%.1f\n", r.App, s, r.IterSec[i], r.RedistSec[i], r.Turnaround[i])
		}
	}
	return nil
}

// --- Workload experiments (Figures 4-5, Tables 4-5) --------------------------

// RunW1 compares workload 1 under static and dynamic scheduling.
func RunW1(params *perfmodel.Params) (*workload.Comparison, error) {
	return workload.Compare(workload.ClusterProcs, workload.W1(), params)
}

// RunW2 compares workload 2.
func RunW2(params *perfmodel.Params) (*workload.Comparison, error) {
	return workload.Compare(workload.ClusterProcs, workload.W2(), params)
}

// PrintAllocHistory writes a Figure 4(a)/5(a)-style allocation history.
func PrintAllocHistory(w io.Writer, title string, res *simcluster.Result, jobNames []string) {
	fmt.Fprintf(w, "# %s: processor allocation history\n", title)
	fmt.Fprintln(w, "job,time_s,procs")
	for _, name := range jobNames {
		for _, pt := range simcluster.AllocSeries(res.Events, name) {
			fmt.Fprintf(w, "%s,%.1f,%.0f\n", name, pt[0], pt[1])
		}
	}
}

// PrintBusySeries writes a Figure 4(b)/5(b)-style busy-processor trace for
// the static and dynamic runs.
func PrintBusySeries(w io.Writer, title string, cmp *workload.Comparison) {
	fmt.Fprintf(w, "# %s: busy processors over time\n", title)
	fmt.Fprintln(w, "strategy,time_s,busy")
	for _, pt := range simcluster.BusySeries(cmp.Static.Events) {
		fmt.Fprintf(w, "static,%.1f,%.0f\n", pt[0], pt[1])
	}
	for _, pt := range simcluster.BusySeries(cmp.Dynamic.Events) {
		fmt.Fprintf(w, "dynamic,%.1f,%.0f\n", pt[0], pt[1])
	}
}

// PrintTurnaroundTable writes a Table 4/5-style job turnaround comparison.
func PrintTurnaroundTable(w io.Writer, title string, cmp *workload.Comparison) {
	fmt.Fprintf(w, "# %s: job turn-around time\n", title)
	fmt.Fprintf(w, "%-14s %8s %12s %13s %12s\n", "Job", "Initial", "Static(s)", "Dynamic(s)", "Diff(s)")
	for _, r := range cmp.Rows {
		fmt.Fprintf(w, "%-14s %8d %12.2f %13.2f %12.2f\n",
			r.Job, r.InitialProc, r.StaticSec, r.DynamicSec, r.Difference())
	}
	fmt.Fprintf(w, "utilization: static %.1f%%  dynamic %.1f%%\n",
		100*cmp.StaticUtilization, 100*cmp.DynamicUtilization)
}
