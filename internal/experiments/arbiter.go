package experiments

import (
	"fmt"

	"repro/internal/perfmodel"
	"repro/internal/scheduler/arbiter"
	"repro/internal/simcluster"
	"repro/internal/workload"
)

// ArbiterRow compares FCFS single-job arbitration (the published Contact
// path) against the benefit-ranked cluster arbiter on one workload mix.
type ArbiterRow struct {
	Mix         string
	Jobs        int
	FCFSWait    float64 // mean queue wait, seconds
	ArbiterWait float64
	FCFSTurn    float64 // mean turnaround, seconds
	ArbiterTurn float64
	FCFSUtil    float64
	ArbiterUtil float64
}

// WaitImprovement is the relative mean-queue-wait reduction of the
// benefit-ranked arbiter over FCFS (positive = arbiter better).
func (r ArbiterRow) WaitImprovement() float64 {
	if r.FCFSWait == 0 {
		return 0
	}
	return (r.FCFSWait - r.ArbiterWait) / r.FCFSWait
}

// ContendedMix is the heavy arbitration workload: the paper's application
// mix (Table 3's LU/MM/Jacobi/FFT/MW population) generated at arrival
// pressure well above the W1/W2 rates, with three priority levels, so
// several jobs hit resize points while others wait — the regime the
// cluster-wide arbiter exists for.
func ContendedMix() ([]simcluster.JobInput, error) {
	return workload.Generate(workload.GenConfig{
		Seed:             11,
		Jobs:             24,
		MeanInterarrival: 60,
		MaxProcs:         workload.ClusterProcs,
		PriorityLevels:   3,
	})
}

// ArbiterComparison runs the paper's workload mixes — W1, W2 and the
// contended generated mix — under the FCFS single-job arbitration path and
// under the benefit-ranked arbiter (with a perfmodel predictor), reporting
// mean queue wait, mean turnaround and utilization for each. The FCFS rows
// double as a behavioral pin: they go through the exact published Decide
// path the differential tests pin.
func ArbiterComparison(params *perfmodel.Params) ([]ArbiterRow, error) {
	contended, err := ContendedMix()
	if err != nil {
		return nil, err
	}
	mixes := []struct {
		name string
		jobs []simcluster.JobInput
	}{
		{"W1", workload.W1()},
		{"W2", workload.W2()},
		{"contended", contended},
	}
	var rows []ArbiterRow
	for _, m := range mixes {
		fcfs, err := simcluster.New(workload.ClusterProcs, simcluster.Dynamic, params, m.jobs).Run()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s fcfs: %w", m.name, err)
		}
		arb, err := simcluster.New(workload.ClusterProcs, simcluster.Dynamic, params, m.jobs).
			WithArbiter(&arbiter.BenefitRanked{Predict: simcluster.Predictor(params, m.jobs)}).
			Run()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s arbiter: %w", m.name, err)
		}
		rows = append(rows, ArbiterRow{
			Mix:         m.name,
			Jobs:        len(m.jobs),
			FCFSWait:    fcfs.MeanQueueWait(),
			ArbiterWait: arb.MeanQueueWait(),
			FCFSTurn:    fcfs.MeanTurnaround(),
			ArbiterTurn: arb.MeanTurnaround(),
			FCFSUtil:    fcfs.Utilization,
			ArbiterUtil: arb.Utilization,
		})
	}
	return rows, nil
}
