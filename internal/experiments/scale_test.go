package experiments

import (
	"strings"
	"testing"

	"repro/internal/perfmodel"
)

func TestSchedulerScaleCompletesGeneratedMix(t *testing.T) {
	rows, err := SchedulerScale(perfmodel.SystemX(), []int{300})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	r := rows[0]
	if r.Jobs != 300 || r.Shards != 16 || r.JobsPerSec <= 0 {
		t.Fatalf("row %+v", r)
	}
	if r.Utilization <= 0 || r.Utilization > 1 {
		t.Fatalf("utilization %v out of range (busy-integral accounting broken?)", r.Utilization)
	}
}

func TestPrintSchedulerScale(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 1000- and 10000-job simulations")
	}
	var sb strings.Builder
	if err := PrintSchedulerScale(&sb, perfmodel.SystemX()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "jobs/s") {
		t.Fatalf("output missing header:\n%s", sb.String())
	}
}
