package experiments

import (
	"testing"

	"repro/internal/perfmodel"
	"repro/internal/scheduler/arbiter"
	"repro/internal/scheduler/fairshare"
	"repro/internal/simcluster"
	"repro/internal/workload"
)

// TestFairshareProtectsVictims is the noisy-neighbor acceptance gate of
// the fair-share subsystem: with one tenant bursting 10x over two steady
// tenants, each victim's p99 queue wait under the fair-share arbiter must
// be strictly better than under tenant-blind benefit arbitration. The
// measured values are recorded in DESIGN.md's "Fair-share and admission
// control" section.
func TestFairshareProtectsVictims(t *testing.T) {
	rows, err := FairShareComparison(perfmodel.SystemX())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	for _, r := range rows {
		t.Logf("%-8s jobs=%2d  mean wait %7.1fs -> %7.1fs  p99 %7.1fs -> %7.1fs",
			r.Tenant, r.Jobs, r.BenefitWait, r.FairWait, r.BenefitP99, r.FairP99)
	}
	for _, r := range rows[1:] { // victim1, victim2
		if r.FairP99 >= r.BenefitP99 {
			t.Errorf("%s: fair-share p99 wait %.1fs not better than benefit %.1fs",
				r.Tenant, r.FairP99, r.BenefitP99)
		}
	}
}

// TestFairshareSingleTenantBitIdentical pins the degeneracy contract of
// the fair-share arbiter: on the paper's single-tenant workloads W1 and W2
// the fair-share wrapper must reproduce the bare benefit-ranked arbiter's
// schedule bit for bit — same allocation-event trace, same per-job
// timings. This is what lets reshaped default tenant-less deployments onto
// fairshare without a behavioral diff.
func TestFairshareSingleTenantBitIdentical(t *testing.T) {
	params := perfmodel.SystemX()
	for _, w := range []struct {
		name string
		jobs []simcluster.JobInput
	}{{"W1", workload.W1()}, {"W2", workload.W2()}} {
		bare, err := simcluster.New(workload.ClusterProcs, simcluster.Dynamic, params, w.jobs).
			WithArbiter(&arbiter.BenefitRanked{Predict: simcluster.Predictor(params, w.jobs)}).
			Run()
		if err != nil {
			t.Fatalf("%s bare: %v", w.name, err)
		}
		fs := fairshare.New(map[string]float64{"unused": 2}) // weights are inert without tenants
		fs.Inner = &arbiter.BenefitRanked{Predict: simcluster.Predictor(params, w.jobs)}
		wrapped, err := simcluster.New(workload.ClusterProcs, simcluster.Dynamic, params, w.jobs).
			WithArbiter(fs).
			Run()
		if err != nil {
			t.Fatalf("%s wrapped: %v", w.name, err)
		}
		if bare.Makespan != wrapped.Makespan || bare.Utilization != wrapped.Utilization {
			t.Fatalf("%s: makespan/util diverge: %v/%v vs %v/%v", w.name,
				bare.Makespan, bare.Utilization, wrapped.Makespan, wrapped.Utilization)
		}
		if len(bare.Events) != len(wrapped.Events) {
			t.Fatalf("%s: event counts %d vs %d", w.name, len(bare.Events), len(wrapped.Events))
		}
		for i := range bare.Events {
			if bare.Events[i] != wrapped.Events[i] {
				t.Fatalf("%s: trace diverges at %d: %+v vs %+v", w.name, i,
					bare.Events[i], wrapped.Events[i])
			}
		}
		for i := range bare.Jobs {
			if bare.Jobs[i].Start != wrapped.Jobs[i].Start || bare.Jobs[i].End != wrapped.Jobs[i].End {
				t.Fatalf("%s: job %q schedule diverged", w.name, bare.Jobs[i].Name)
			}
		}
	}
}
