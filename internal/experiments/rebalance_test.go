package experiments

import (
	"testing"

	"repro/internal/perfmodel"
)

// TestRebalanceComparisonGate is the acceptance gate of the global
// rebalancer: on the contended generated mix its makespan and p99 queue
// wait must be no worse than the PR 5 benefit-ranked arbiter, and at
// least one of W1/W2/contended must show a measured improvement. The
// measured values are recorded in DESIGN.md's "Global rebalancing"
// section.
func TestRebalanceComparisonGate(t *testing.T) {
	rows, err := RebalanceComparison(perfmodel.SystemX())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	improved := false
	for _, r := range rows {
		t.Logf("%-10s jobs=%2d  makespan %8.1fs -> %8.1fs (%+.2f%%)  p99 wait %7.1fs -> %7.1fs  turnaround %7.1fs -> %7.1fs  util %.3f -> %.3f",
			r.Mix, r.Jobs, r.ArbMakespan, r.RebMakespan, -100*r.MakespanImprovement(),
			r.ArbP99Wait, r.RebP99Wait, r.ArbMeanTurn, r.RebMeanTurn, r.ArbUtil, r.RebUtil)
		if r.MakespanImprovement() > 1e-9 || r.TurnaroundImprovement() > 1e-9 {
			improved = true
		}
		if r.Mix != "contended" {
			continue
		}
		if r.RebMakespan > r.ArbMakespan+1e-9 {
			t.Errorf("contended: rebalancer makespan %.2fs exceeds arbiter %.2fs", r.RebMakespan, r.ArbMakespan)
		}
		if r.RebP99Wait > r.ArbP99Wait+1e-9 {
			t.Errorf("contended: rebalancer p99 wait %.2fs exceeds arbiter %.2fs", r.RebP99Wait, r.ArbP99Wait)
		}
	}
	if !improved {
		t.Error("no mix improved under the global rebalancer")
	}
}
