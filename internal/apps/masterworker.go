package apps

import (
	"math"
	"sync/atomic"

	"repro/internal/blacs"
	"repro/internal/mpi"
)

// Master-worker message tags.
const (
	tagMWRequest = 7000
	tagMWAssign  = 7001
	tagMWDone    = 7002
)

// MasterWorkerRound executes one outer iteration of the paper's synthetic
// master-worker application: `units` fixed-time work units are farmed out
// on demand by rank 0 (the master) to all other ranks in chunks of
// chunkSize. unitWork controls the fixed cost of one unit (inner spin
// iterations). It returns the number of units this rank processed. The
// application has no global data to redistribute, which is why Figure 3(b)
// shows no difference for it between checkpointing and ReSHAPE.
// Collective over the grid; a trailing barrier separates rounds so demand
// requests from the next round cannot reach the previous round's master
// loop. With a single processor the master does the work itself.
func MasterWorkerRound(ctx *blacs.Context, units, chunkSize, unitWork int) int {
	if !ctx.InGrid {
		return 0
	}
	comm := ctx.Comm
	if chunkSize <= 0 {
		chunkSize = 1
	}
	if comm.Size() == 1 {
		for u := 0; u < units; u++ {
			burnUnit(unitWork)
		}
		return units
	}

	done := 0
	if comm.Rank() == 0 {
		remaining := units
		active := comm.Size() - 1
		for active > 0 {
			_, src, _ := comm.Recv(mpi.AnySource, tagMWRequest)
			if remaining > 0 {
				chunk := chunkSize
				if chunk > remaining {
					chunk = remaining
				}
				remaining -= chunk
				comm.Send(src, tagMWAssign, chunk)
			} else {
				comm.Send(src, tagMWAssign, 0) // 0 units = no more work
				active--
			}
		}
	} else {
		for {
			comm.Send(0, tagMWRequest, struct{}{})
			v, _, _ := comm.Recv(0, tagMWAssign)
			chunk := v.(int)
			if chunk == 0 {
				break
			}
			for u := 0; u < chunk; u++ {
				burnUnit(unitWork)
			}
			done += chunk
		}
	}
	comm.Barrier()
	return done
}

// burnUnit performs a fixed amount of floating-point work; the result is
// folded into a shared sink (atomically — workers run concurrently) so the
// compiler cannot elide the loop.
func burnUnit(iters int) {
	s := 1.0
	for i := 0; i < iters; i++ {
		s += math.Sqrt(s)
	}
	mwSink.Store(math.Float64bits(s))
}

var mwSink atomic.Uint64
