package apps

import (
	"fmt"
	"math"

	"repro/pkg/reshape"
)

// Config describes one application instance, mirroring the paper's Table 1
// workloads.
type Config struct {
	App        string // "lu", "mm", "jacobi", "fft", "mw", "cg"
	N          int    // problem size (matrix dimension / FFT size)
	NB         int    // block size (square for 2-D apps; row block for 1-D)
	Iterations int    // outer iterations per job (10 in the paper)

	// Jacobi / CG: inner sweeps (CG steps) per outer iteration.
	Sweeps int
	// Master-worker: work units per outer iteration, chunking, unit cost.
	MWUnits    int
	MWChunk    int
	MWUnitWork int
}

// arrayApps are the applications built around distributed global arrays;
// they require positive problem and block sizes.
var arrayApps = map[string]bool{"lu": true, "mm": true, "jacobi": true, "fft": true, "cg": true}

// Validate checks a configuration without building it: the application
// must be known, the iteration count positive, and array-based apps need
// positive problem and block sizes (the FFT additionally a power-of-two
// size, which its kernel's butterfly requires).
func (c Config) Validate() error {
	switch c.App {
	case "lu", "mm", "jacobi", "fft", "mw", "cg":
	default:
		return fmt.Errorf("apps: unknown application %q", c.App)
	}
	if c.Iterations <= 0 {
		return fmt.Errorf("apps: %s: iterations must be positive, got %d", c.App, c.Iterations)
	}
	if arrayApps[c.App] {
		if c.N <= 0 {
			return fmt.Errorf("apps: %s: problem size must be positive, got %d", c.App, c.N)
		}
		if c.NB <= 0 {
			return fmt.Errorf("apps: %s: block size must be positive, got %d", c.App, c.NB)
		}
	}
	if c.App == "fft" && c.N&(c.N-1) != 0 {
		return fmt.Errorf("apps: fft: size must be a power of two, got %d", c.N)
	}
	return nil
}

// normalized fills in the defaulted tuning knobs.
func (c Config) normalized() Config {
	if c.Sweeps <= 0 {
		switch c.App {
		case "jacobi":
			c.Sweeps = 3
		case "cg":
			c.Sweeps = 4
		}
	}
	if c.MWUnits <= 0 {
		c.MWUnits = 1000
	}
	if c.MWChunk <= 0 {
		c.MWChunk = 50
	}
	if c.MWUnitWork <= 0 {
		c.MWUnitWork = 200
	}
	return c
}

// Build validates a configuration and constructs its application for
// reshape.Run. Every app registers its global arrays and replicated
// vectors in Init and performs one outer iteration per Iterate; the SDK
// runner owns the loop, resize points and iteration accounting that the
// pre-SDK worker closures duplicated.
func Build(cfg Config) (reshape.App, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalized()
	switch cfg.App {
	case "lu":
		return luApp{cfg: cfg}, nil
	case "mm":
		return mmApp{cfg: cfg}, nil
	case "jacobi":
		return jacobiApp{cfg: cfg}, nil
	case "fft":
		return fftApp{cfg: cfg}, nil
	case "mw":
		return mwApp{cfg: cfg}, nil
	default: // "cg" — Validate already rejected anything else
		return cgApp{cfg: cfg}, nil
	}
}

// luEntry is the diagonally dominant test matrix used by the LU and CG
// workloads.
func luEntry(n int) func(i, j int) float64 {
	return func(i, j int) float64 {
		v := 1.0 / (1.0 + math.Abs(float64(i-j)))
		if i == j {
			v += float64(n)
		}
		return v
	}
}

// luApp factors a fresh copy of a diagonally dominant matrix every
// iteration, the paper's "ten LU factorizations" per job.
type luApp struct{ cfg Config }

func (a luApp) Init(rc *reshape.Context) error {
	arr := rc.RegisterArray("A", a.cfg.N, a.cfg.N, a.cfg.NB, a.cfg.NB)
	rc.FillArray(arr, luEntry(a.cfg.N))
	return nil
}

func (a luApp) Iterate(rc *reshape.Context) error {
	arr, ok := rc.Array("A")
	if !ok {
		return fmt.Errorf("apps: lu: array A missing")
	}
	work := make([]float64, len(arr.Data))
	copy(work, arr.Data)
	return DistLU(rc.Grid(), arr.LayoutFor(rc.Topo()), work)
}

// mmApp multiplies two distributed matrices (SUMMA) per iteration.
type mmApp struct{ cfg Config }

func (a mmApp) Init(rc *reshape.Context) error {
	n, nb := a.cfg.N, a.cfg.NB
	A := rc.RegisterArray("A", n, n, nb, nb)
	B := rc.RegisterArray("B", n, n, nb, nb)
	C := rc.RegisterArray("C", n, n, nb, nb)
	rc.FillArray(A, func(i, j int) float64 { return math.Sin(float64(i*7 + j)) })
	rc.FillArray(B, func(i, j int) float64 { return math.Cos(float64(i + j*5)) })
	rc.FillArray(C, func(i, j int) float64 { return 0 })
	return nil
}

func (a mmApp) Iterate(rc *reshape.Context) error {
	A, _ := rc.Array("A")
	B, _ := rc.Array("B")
	C, _ := rc.Array("C")
	if A == nil || B == nil || C == nil {
		return fmt.Errorf("apps: mm: arrays missing")
	}
	return DistMatMul(rc.Grid(), A.LayoutFor(rc.Topo()), A.Data, B.Data, C.Data)
}

// jacobiApp runs cfg.Sweeps Jacobi sweeps on a row-distributed system per
// iteration, with the solution vector replicated on every rank.
type jacobiApp struct{ cfg Config }

func (a jacobiApp) Init(rc *reshape.Context) error {
	n, nb := a.cfg.N, a.cfg.NB
	A := rc.RegisterArray("A", n, n, nb, n)
	bv := rc.RegisterArray("b", n, 1, nb, 1)
	rc.FillArray(A, func(i, j int) float64 {
		if i == j {
			return float64(n)
		}
		return 1.0 / (1.0 + float64((i+j)%7))
	})
	rc.FillArray(bv, func(i, j int) float64 { return 1 + float64(i%5) })
	rc.RegisterReplicated("x", make([]float64, n))
	return nil
}

func (a jacobiApp) Iterate(rc *reshape.Context) error {
	A, _ := rc.Array("A")
	bv, _ := rc.Array("b")
	if A == nil || bv == nil {
		return fmt.Errorf("apps: jacobi: arrays missing")
	}
	x := rc.Replicated("x")
	if x == nil {
		return fmt.Errorf("apps: jacobi: replicated x missing")
	}
	res, err := JacobiSweeps(rc.Grid(), A.LayoutFor(rc.Topo()), A.Data, bv.Data, x, a.cfg.Sweeps)
	if err != nil {
		return err
	}
	rc.SetReplicated("residual", []float64{res})
	return nil
}

// fftApp forward-and-inverse transforms a distributed complex image per
// iteration (one "image transformation" of the paper's FFT workload).
type fftApp struct{ cfg Config }

func (a fftApp) Init(rc *reshape.Context) error {
	n := a.cfg.N
	img := rc.RegisterArray("img", n, 2*n, a.cfg.NB, 2*n)
	rc.FillArray(img, func(i, j int) float64 {
		if j%2 == 1 {
			return 0 // imaginary part
		}
		return math.Sin(float64(i)) * math.Cos(float64(j/2))
	})
	return nil
}

func (a fftApp) Iterate(rc *reshape.Context) error {
	img, ok := rc.Array("img")
	if !ok {
		return fmt.Errorf("apps: fft: array img missing")
	}
	l := img.LayoutFor(rc.Topo())
	if err := FFT2D(rc.Grid(), l, img.Data, false); err != nil {
		return err
	}
	return FFT2D(rc.Grid(), l, img.Data, true)
}

// mwApp distributes cfg.MWUnits work units from rank 0 to the workers per
// iteration; it registers no global state, so resizes only change the
// worker pool.
type mwApp struct{ cfg Config }

func (a mwApp) Init(rc *reshape.Context) error { return nil }

func (a mwApp) Iterate(rc *reshape.Context) error {
	MasterWorkerRound(rc.Grid(), a.cfg.MWUnits, a.cfg.MWChunk, a.cfg.MWUnitWork)
	return nil
}

// cgApp runs cfg.Sweeps conjugate-gradient steps per iteration on a 2-D
// distributed SPD matrix with replicated b and x. It extends the paper's
// workload set with a Krylov solver, per the future-work direction of
// supporting a wider array of distributed data structures.
type cgApp struct{ cfg Config }

func (a cgApp) Init(rc *reshape.Context) error {
	n, nb := a.cfg.N, a.cfg.NB
	A := rc.RegisterArray("A", n, n, nb, nb)
	// SPD: symmetric off-diagonal decay with dominant diagonal.
	rc.FillArray(A, luEntry(n))
	b := make([]float64, n)
	for i := range b {
		b[i] = 1 + float64(i%3)
	}
	rc.RegisterReplicated("b", b)
	rc.RegisterReplicated("x", make([]float64, n))
	return nil
}

func (a cgApp) Iterate(rc *reshape.Context) error {
	A, ok := rc.Array("A")
	if !ok {
		return fmt.Errorf("apps: cg: array A missing")
	}
	b := rc.Replicated("b")
	x := rc.Replicated("x")
	if b == nil || x == nil {
		return fmt.Errorf("apps: cg: replicated vectors missing")
	}
	res, err := DistCG(rc.Grid(), A.LayoutFor(rc.Topo()), A.Data, b, x, a.cfg.Sweeps)
	if err != nil {
		return err
	}
	rc.SetReplicated("residual", []float64{res})
	return nil
}
