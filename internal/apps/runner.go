package apps

import (
	"fmt"
	"math"
	"time"

	"repro/internal/resize"
)

// Config describes one application instance, mirroring the paper's Table 1
// workloads.
type Config struct {
	App        string // "lu", "mm", "jacobi", "fft", "mw"
	N          int    // problem size (matrix dimension / FFT size)
	NB         int    // block size (square for 2-D apps; row block for 1-D)
	Iterations int    // outer iterations per job (10 in the paper)

	// Jacobi: inner sweeps per outer iteration.
	Sweeps int
	// Master-worker: work units per outer iteration, chunking, unit cost.
	MWUnits    int
	MWChunk    int
	MWUnitWork int
}

// Runner bundles an application's one-time setup (run by the initial ranks)
// with the worker loop run by every rank, including ranks spawned during
// later expansions.
type Runner struct {
	// Setup registers and fills the global arrays. Collective over the
	// initial communicator.
	Setup func(s *resize.Session) error
	// Worker is the iterate/resize loop.
	Worker resize.Worker
}

// Build constructs the Runner for a configuration.
func Build(cfg Config) (*Runner, error) {
	switch cfg.App {
	case "lu":
		return buildLU(cfg), nil
	case "mm":
		return buildMM(cfg), nil
	case "jacobi":
		return buildJacobi(cfg), nil
	case "fft":
		return buildFFT(cfg), nil
	case "mw":
		return buildMW(cfg), nil
	case "cg":
		return buildCG(cfg), nil
	default:
		return nil, fmt.Errorf("apps: unknown application %q", cfg.App)
	}
}

// buildCG constructs the resizable conjugate-gradient application: a 2-D
// distributed SPD matrix with replicated b and x, running cfg.Sweeps CG
// steps per outer iteration. It extends the paper's workload set with a
// Krylov solver, per the future-work direction of supporting a wider array
// of distributed data structures.
func buildCG(cfg Config) *Runner {
	steps := cfg.Sweeps
	if steps <= 0 {
		steps = 4
	}
	iterate := func(s *resize.Session) error {
		a, ok := s.Array("A")
		if !ok {
			return fmt.Errorf("apps: cg: array A missing")
		}
		b := s.Replicated("b")
		x := s.Replicated("x")
		if b == nil || x == nil {
			return fmt.Errorf("apps: cg: replicated vectors missing")
		}
		res, err := DistCG(s.Ctx(), a.LayoutFor(s.Topo()), a.Data, b, x, steps)
		if err != nil {
			return err
		}
		s.SetReplicated("residual", []float64{res})
		return nil
	}
	return &Runner{
		Setup: func(s *resize.Session) error {
			a := &resize.Array{Name: "A", M: cfg.N, N: cfg.N, MB: cfg.NB, NB: cfg.NB}
			s.RegisterArray(a)
			// SPD: symmetric off-diagonal decay with dominant diagonal.
			fillArray(s, a, func(i, j int) float64 {
				v := 1.0 / (1.0 + math.Abs(float64(i-j)))
				if i == j {
					v += float64(cfg.N)
				}
				return v
			})
			b := make([]float64, cfg.N)
			for i := range b {
				b[i] = 1 + float64(i%3)
			}
			s.SetReplicated("b", b)
			s.SetReplicated("x", make([]float64, cfg.N))
			return nil
		},
		Worker: loopWorker(cfg.Iterations, iterate),
	}
}

// loopWorker is the canonical outer loop of a ReSHAPE application: iterate,
// log, contact the scheduler at the resize point, and either continue
// (possibly on a different processor set) or retire.
func loopWorker(iterations int, iterate func(*resize.Session) error) resize.Worker {
	return func(s *resize.Session) error {
		for s.Iter() < iterations {
			t0 := time.Now()
			if err := iterate(s); err != nil {
				return err
			}
			elapsed := time.Since(t0).Seconds()
			s.Log(elapsed)
			st, err := s.Resize(elapsed)
			if err != nil {
				return err
			}
			if st == resize.Retired {
				return nil
			}
		}
		return s.Done()
	}
}

// fillArray populates a rank's local piece of an array from a global-index
// function.
func fillArray(s *resize.Session, a *resize.Array, f func(i, j int) float64) {
	l := a.LayoutFor(s.Topo())
	rank := s.Comm().Rank()
	if rank >= l.Grid.Count() {
		return
	}
	pr, pc := l.Coords(rank)
	rows, cols := l.LocalRows(pr), l.LocalCols(pc)
	a.Data = make([]float64, rows*cols)
	for li := 0; li < rows; li++ {
		for lj := 0; lj < cols; lj++ {
			gi, gj := l.LocalToGlobal(pr, pc, li, lj)
			a.Data[li*cols+lj] = f(gi, gj)
		}
	}
}

// luEntry is the diagonally dominant test matrix used by the LU workload.
func luEntry(n int) func(i, j int) float64 {
	return func(i, j int) float64 {
		v := 1.0 / (1.0 + math.Abs(float64(i-j)))
		if i == j {
			v += float64(n)
		}
		return v
	}
}

func buildLU(cfg Config) *Runner {
	iterate := func(s *resize.Session) error {
		a, ok := s.Array("A")
		if !ok {
			return fmt.Errorf("apps: lu: array A missing")
		}
		// Each outer iteration factors a fresh copy, as in the paper's "ten
		// LU factorizations" per job.
		work := make([]float64, len(a.Data))
		copy(work, a.Data)
		return DistLU(s.Ctx(), a.LayoutFor(s.Topo()), work)
	}
	return &Runner{
		Setup: func(s *resize.Session) error {
			a := &resize.Array{Name: "A", M: cfg.N, N: cfg.N, MB: cfg.NB, NB: cfg.NB}
			s.RegisterArray(a)
			fillArray(s, a, luEntry(cfg.N))
			return nil
		},
		Worker: loopWorker(cfg.Iterations, iterate),
	}
}

func buildMM(cfg Config) *Runner {
	iterate := func(s *resize.Session) error {
		a, _ := s.Array("A")
		b, _ := s.Array("B")
		c, _ := s.Array("C")
		if a == nil || b == nil || c == nil {
			return fmt.Errorf("apps: mm: arrays missing")
		}
		return DistMatMul(s.Ctx(), a.LayoutFor(s.Topo()), a.Data, b.Data, c.Data)
	}
	return &Runner{
		Setup: func(s *resize.Session) error {
			mk := func(name string) *resize.Array {
				arr := &resize.Array{Name: name, M: cfg.N, N: cfg.N, MB: cfg.NB, NB: cfg.NB}
				s.RegisterArray(arr)
				return arr
			}
			a, b, c := mk("A"), mk("B"), mk("C")
			fillArray(s, a, func(i, j int) float64 { return math.Sin(float64(i*7 + j)) })
			fillArray(s, b, func(i, j int) float64 { return math.Cos(float64(i + j*5)) })
			fillArray(s, c, func(i, j int) float64 { return 0 })
			return nil
		},
		Worker: loopWorker(cfg.Iterations, iterate),
	}
}

func buildJacobi(cfg Config) *Runner {
	sweeps := cfg.Sweeps
	if sweeps <= 0 {
		sweeps = 3
	}
	iterate := func(s *resize.Session) error {
		a, _ := s.Array("A")
		bv, _ := s.Array("b")
		if a == nil || bv == nil {
			return fmt.Errorf("apps: jacobi: arrays missing")
		}
		x := s.Replicated("x")
		if x == nil {
			return fmt.Errorf("apps: jacobi: replicated x missing")
		}
		res, err := JacobiSweeps(s.Ctx(), a.LayoutFor(s.Topo()), a.Data, bv.Data, x, sweeps)
		if err != nil {
			return err
		}
		s.SetReplicated("residual", []float64{res})
		return nil
	}
	return &Runner{
		Setup: func(s *resize.Session) error {
			a := &resize.Array{Name: "A", M: cfg.N, N: cfg.N, MB: cfg.NB, NB: cfg.N}
			bv := &resize.Array{Name: "b", M: cfg.N, N: 1, MB: cfg.NB, NB: 1}
			s.RegisterArray(a)
			s.RegisterArray(bv)
			fillArray(s, a, func(i, j int) float64 {
				if i == j {
					return float64(cfg.N)
				}
				return 1.0 / (1.0 + float64((i+j)%7))
			})
			fillArray(s, bv, func(i, j int) float64 { return 1 + float64(i%5) })
			s.SetReplicated("x", make([]float64, cfg.N))
			return nil
		},
		Worker: loopWorker(cfg.Iterations, iterate),
	}
}

func buildFFT(cfg Config) *Runner {
	iterate := func(s *resize.Session) error {
		img, ok := s.Array("img")
		if !ok {
			return fmt.Errorf("apps: fft: array img missing")
		}
		l := img.LayoutFor(s.Topo())
		// One image transformation: forward then inverse 2-D FFT.
		if err := FFT2D(s.Ctx(), l, img.Data, false); err != nil {
			return err
		}
		return FFT2D(s.Ctx(), l, img.Data, true)
	}
	return &Runner{
		Setup: func(s *resize.Session) error {
			img := &resize.Array{Name: "img", M: cfg.N, N: 2 * cfg.N, MB: cfg.NB, NB: 2 * cfg.N}
			s.RegisterArray(img)
			fillArray(s, img, func(i, j int) float64 {
				if j%2 == 1 {
					return 0 // imaginary part
				}
				return math.Sin(float64(i)) * math.Cos(float64(j/2))
			})
			return nil
		},
		Worker: loopWorker(cfg.Iterations, iterate),
	}
}

func buildMW(cfg Config) *Runner {
	units := cfg.MWUnits
	if units <= 0 {
		units = 1000
	}
	chunk := cfg.MWChunk
	if chunk <= 0 {
		chunk = 50
	}
	work := cfg.MWUnitWork
	if work <= 0 {
		work = 200
	}
	iterate := func(s *resize.Session) error {
		MasterWorkerRound(s.Ctx(), units, chunk, work)
		return nil
	}
	return &Runner{
		Setup:  func(s *resize.Session) error { return nil },
		Worker: loopWorker(cfg.Iterations, iterate),
	}
}
