package apps

import (
	"fmt"

	"repro/internal/blacs"
	"repro/internal/blockcyclic"
	"repro/internal/mpi"
)

// DistMatVec computes y = A x for a 2-D block-cyclically distributed matrix
// and a replicated input vector, returning the replicated result: each rank
// accumulates partial products for its local elements and the grid reduces
// them. Collective over the grid.
func DistMatVec(ctx *blacs.Context, l blockcyclic.Layout, a, x []float64) ([]float64, error) {
	if len(x) != l.N {
		return nil, fmt.Errorf("apps: DistMatVec x has %d entries, want %d", len(x), l.N)
	}
	if !ctx.InGrid {
		return nil, nil
	}
	partial := make([]float64, l.M)
	rank := ctx.Comm.Rank()
	pr, pc := l.Coords(rank)
	rows, cols := l.LocalRows(pr), l.LocalCols(pc)
	for li := 0; li < rows; li++ {
		gi, _ := l.LocalToGlobal(pr, pc, li, 0)
		s := 0.0
		base := li * cols
		for lj := 0; lj < cols; lj++ {
			_, gj := l.LocalToGlobal(pr, pc, li, lj)
			s += a[base+lj] * x[gj]
		}
		partial[gi] += s
	}
	return ctx.Comm.Allreduce(partial, mpi.SumOp), nil
}

// DistCG runs `iters` conjugate-gradient iterations on an SPD matrix in a
// 2-D block-cyclic layout with replicated vectors b (right-hand side) and x
// (initial guess, updated in place). It returns the final squared residual
// norm. Vector reductions are redundant-replicated, so every rank holds
// identical iterates — exactly the state the resize library re-replicates
// to spawned ranks. Collective over the grid.
func DistCG(ctx *blacs.Context, l blockcyclic.Layout, a, b, x []float64, iters int) (float64, error) {
	if l.M != l.N {
		return 0, fmt.Errorf("apps: DistCG needs a square matrix, got %dx%d", l.M, l.N)
	}
	if len(b) != l.N || len(x) != l.N {
		return 0, fmt.Errorf("apps: DistCG vector lengths %d/%d, want %d", len(b), len(x), l.N)
	}
	if !ctx.InGrid {
		return 0, nil
	}
	n := l.N

	ax, err := DistMatVec(ctx, l, a, x)
	if err != nil {
		return 0, err
	}
	r := make([]float64, n)
	p := make([]float64, n)
	for i := 0; i < n; i++ {
		r[i] = b[i] - ax[i]
		p[i] = r[i]
	}
	rr := dot(r, r)

	for it := 0; it < iters && rr > 0; it++ {
		ap, err := DistMatVec(ctx, l, a, p)
		if err != nil {
			return 0, err
		}
		pap := dot(p, ap)
		if pap == 0 {
			break
		}
		alpha := rr / pap
		for i := 0; i < n; i++ {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rrNew := dot(r, r)
		beta := rrNew / rr
		rr = rrNew
		for i := 0; i < n; i++ {
			p[i] = r[i] + beta*p[i]
		}
	}
	return rr, nil
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
