package apps

import (
	"fmt"

	"repro/internal/blacs"
	"repro/internal/blockcyclic"
	"repro/internal/matrix"
)

// DistLU performs an in-place right-looking block LU factorization (no
// pivoting) of a 2-D block-cyclically distributed matrix, the analogue of
// ScaLAPACK's PDGETRF that the paper's LU workload calls. The layout must
// have square blocks (MB == NB) and a square global matrix. Collective over
// the grid: every in-grid rank passes its local piece.
//
// The communication structure matches the real routine: the diagonal block
// is factored and broadcast down its process column; the column panel is
// triangular-solved and broadcast along process rows; the row panel is
// solved and broadcast down process columns; every rank then applies the
// trailing GEMM update to its local blocks.
func DistLU(ctx *blacs.Context, l blockcyclic.Layout, local []float64) error {
	if l.MB != l.NB {
		return fmt.Errorf("apps: DistLU needs square blocks, got %dx%d", l.MB, l.NB)
	}
	if l.M != l.N {
		return fmt.Errorf("apps: DistLU needs a square matrix, got %dx%d", l.M, l.N)
	}
	if !ctx.InGrid {
		return nil
	}
	nblk := l.BlockRows()
	myRow, myCol := ctx.MyRow, ctx.MyCol

	for k := 0; k < nblk; k++ {
		pr := k % l.Grid.Rows
		pc := k % l.Grid.Cols
		bh := l.BlockHeight(k)

		// Factor the diagonal block and spread it down process column pc.
		var diag []float64
		if myCol == pc {
			if myRow == pr {
				diag = getBlock(l, local, myCol, k, k)
				if err := matrix.LUFactor(bh, diag); err != nil {
					return fmt.Errorf("apps: DistLU block %d: %w", k, err)
				}
				setBlock(l, local, myCol, k, k, diag)
			}
			diag = ctx.Col.BcastFloats(pr, diag)

			// Column panel: L_ik = A_ik * U_kk^{-1}.
			for _, bi := range localBlockRows(l, myRow, k) {
				blk := getBlock(l, local, myCol, bi, k)
				matrix.TrsmRightUpper(l.BlockHeight(bi), bh, diag, blk)
				setBlock(l, local, myCol, bi, k, blk)
			}
		}
		// Row panel: U_kj = L_kk^{-1} * A_kj (needs the factored diagonal).
		if myRow == pr {
			diag = ctx.Row.BcastFloats(pc, diag)
			for _, bj := range localBlockCols(l, myCol, k) {
				blk := getBlock(l, local, myCol, k, bj)
				matrix.TrsmLeftLowerUnit(bh, l.BlockWidth(bj), diag, blk)
				setBlock(l, local, myCol, k, bj, blk)
			}
		}

		// Broadcast the column panel along process rows and the row panel
		// down process columns, then apply the trailing update.
		var colPanel panel
		if myCol == pc {
			for _, bi := range localBlockRows(l, myRow, k) {
				colPanel.Idx = append(colPanel.Idx, bi)
				colPanel.Blocks = append(colPanel.Blocks, getBlock(l, local, myCol, bi, k))
			}
		}
		colPanel = ctx.Row.Bcast(pc, colPanel).(panel)

		var rowPanel panel
		if myRow == pr {
			for _, bj := range localBlockCols(l, myCol, k) {
				rowPanel.Idx = append(rowPanel.Idx, bj)
				rowPanel.Blocks = append(rowPanel.Blocks, getBlock(l, local, myCol, k, bj))
			}
		}
		rowPanel = ctx.Col.Bcast(pr, rowPanel).(panel)

		for _, bi := range colPanel.Idx {
			lik := colPanel.find(bi)
			h := l.BlockHeight(bi)
			for _, bj := range rowPanel.Idx {
				ukj := rowPanel.find(bj)
				w := l.BlockWidth(bj)
				c := getBlock(l, local, myCol, bi, bj)
				matrix.GemmSub(h, bh, w, lik, ukj, c)
				setBlock(l, local, myCol, bi, bj, c)
			}
		}
	}
	return nil
}
