package apps

import (
	"fmt"

	"repro/internal/blacs"
	"repro/internal/blockcyclic"
	"repro/internal/matrix"
)

// FFT2D applies a 2-D complex FFT (forward or inverse) to an n x n image
// distributed by rows in a 1-D block-cyclic layout. The local data is
// interleaved complex: row i holds 2n floats (re, im, re, im, ...), so the
// registered resize array has global shape n x 2n with NB = 2n.
//
// The transform is the classic transpose algorithm: FFT every local row,
// globally transpose (an all-to-all exchange), FFT every local row again,
// and transpose back so the data returns to its original orientation.
// Collective over the grid.
func FFT2D(ctx *blacs.Context, l blockcyclic.Layout, data []float64, inverse bool) error {
	if l.Grid.Cols != 1 {
		return fmt.Errorf("apps: FFT2D needs a 1-D row layout, got %v", l.Grid)
	}
	n := l.M
	if l.N != 2*n {
		return fmt.Errorf("apps: FFT2D needs interleaved complex rows (N == 2M), got %dx%d", l.M, l.N)
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("apps: FFT2D size %d is not a power of two", n)
	}
	if !ctx.InGrid {
		return nil
	}

	if err := fftLocalRows(l, data, inverse); err != nil {
		return err
	}
	if err := transpose(ctx, l, data); err != nil {
		return err
	}
	if err := fftLocalRows(l, data, inverse); err != nil {
		return err
	}
	return transpose(ctx, l, data)
}

// fftLocalRows transforms every locally stored row in place.
func fftLocalRows(l blockcyclic.Layout, data []float64, inverse bool) error {
	n := l.M
	rows := len(data) / (2 * n)
	buf := make([]complex128, n)
	for li := 0; li < rows; li++ {
		row := data[li*2*n : (li+1)*2*n]
		for j := 0; j < n; j++ {
			buf[j] = complex(row[2*j], row[2*j+1])
		}
		if err := matrix.FFT(buf, inverse); err != nil {
			return err
		}
		for j := 0; j < n; j++ {
			row[2*j] = real(buf[j])
			row[2*j+1] = imag(buf[j])
		}
	}
	return nil
}

// transpose exchanges the distributed matrix with its transpose: element
// (i, j) moves to row j, column i. Rows keep the same 1-D block-cyclic
// distribution. Implemented as a packed all-to-all over the grid ranks.
func transpose(ctx *blacs.Context, l blockcyclic.Layout, data []float64) error {
	comm := ctx.Comm
	p := l.Grid.Rows
	n := l.M
	me := comm.Rank()

	// Global row indices owned by each rank, in local order.
	owned := make([][]int, p)
	for r := 0; r < p; r++ {
		rows := l.LocalRows(r)
		owned[r] = make([]int, rows)
		for li := 0; li < rows; li++ {
			gi, _ := l.LocalToGlobal(r, 0, li, 0)
			owned[r][li] = gi
		}
	}

	// Pack: for destination rank r, send (re, im) of elements (i, j) for
	// every j owned by r (ascending) and every local i (ascending).
	sendbufs := make([][]float64, p)
	for r := 0; r < p; r++ {
		buf := make([]float64, 0, 2*len(owned[r])*len(owned[me]))
		for _, j := range owned[r] {
			for li := range owned[me] {
				buf = append(buf, data[li*2*n+2*j], data[li*2*n+2*j+1])
			}
		}
		sendbufs[r] = buf
	}
	recv := comm.Alltoallv(sendbufs)

	// Unpack: from rank s I get, for each of my rows j (ascending), the
	// elements (i, j) for s's rows i (ascending) — these become columns i
	// of my new row j.
	for s := 0; s < p; s++ {
		buf := recv[s]
		k := 0
		for lj := range owned[me] {
			for _, i := range owned[s] {
				data[lj*2*n+2*i] = buf[k]
				data[lj*2*n+2*i+1] = buf[k+1]
				k += 2
			}
		}
	}
	return nil
}
