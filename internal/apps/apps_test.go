package apps

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/blacs"
	"repro/internal/blockcyclic"
	"repro/internal/grid"
	"repro/internal/matrix"
	"repro/internal/mpi"
)

// runOnGrid distributes a global matrix, runs body on every rank of the
// grid, and returns the collected global result.
func runOnGrid(t *testing.T, topo grid.Topology, l blockcyclic.Layout, global []float64,
	body func(ctx *blacs.Context, local []float64) error) []float64 {
	t.Helper()
	pieces := blockcyclic.Distribute(global, l)
	err := mpi.Run(topo.Count(), func(c *mpi.Comm) error {
		ctx, err := blacs.New(c, topo)
		if err != nil {
			return err
		}
		return body(ctx, pieces[c.Rank()].Data)
	})
	if err != nil {
		t.Fatal(err)
	}
	return blockcyclic.Collect(pieces, l)
}

func diagDominantGlobal(rng *rand.Rand, n int) []float64 {
	a := make([]float64, n*n)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += math.Abs(a[i*n+j])
		}
		a[i*n+i] = s + 1
	}
	return a
}

func TestDistLUMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
	}{} {
		_ = tc
	}
	cases := []struct {
		n, nb int
		topo  grid.Topology
	}{
		{8, 2, grid.Topology{Rows: 2, Cols: 2}},
		{12, 2, grid.Topology{Rows: 2, Cols: 3}},
		{12, 3, grid.Topology{Rows: 1, Cols: 2}},
		{16, 4, grid.Topology{Rows: 1, Cols: 1}},
		{10, 3, grid.Topology{Rows: 2, Cols: 2}}, // uneven edge blocks
	}
	for _, tc := range cases {
		global := diagDominantGlobal(rng, tc.n)
		want := append([]float64{}, global...)
		if err := matrix.LUFactor(tc.n, want); err != nil {
			t.Fatal(err)
		}
		l := blockcyclic.Layout{M: tc.n, N: tc.n, MB: tc.nb, NB: tc.nb, Grid: tc.topo}
		got := runOnGrid(t, tc.topo, l, global, func(ctx *blacs.Context, local []float64) error {
			return DistLU(ctx, l, local)
		})
		if d := matrix.MaxAbsDiff(got, want); d > 1e-8 {
			t.Errorf("n=%d nb=%d grid=%v: max diff %v", tc.n, tc.nb, tc.topo, d)
		}
	}
}

func TestDistLURejectsBadShapes(t *testing.T) {
	err := mpi.Run(1, func(c *mpi.Comm) error {
		ctx, _ := blacs.New(c, grid.Topology{Rows: 1, Cols: 1})
		bad := blockcyclic.Layout{M: 4, N: 4, MB: 2, NB: 3, Grid: ctx.Grid}
		if DistLU(ctx, bad, make([]float64, 16)) == nil {
			return fmt.Errorf("non-square blocks accepted")
		}
		rect := blockcyclic.Layout{M: 4, N: 6, MB: 2, NB: 2, Grid: ctx.Grid}
		if DistLU(ctx, rect, make([]float64, 24)) == nil {
			return fmt.Errorf("rectangular matrix accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistMatMulMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cases := []struct {
		n, nb int
		topo  grid.Topology
	}{
		{8, 2, grid.Topology{Rows: 2, Cols: 2}},
		{12, 2, grid.Topology{Rows: 2, Cols: 3}},
		{9, 2, grid.Topology{Rows: 2, Cols: 2}}, // uneven blocks
		{6, 3, grid.Topology{Rows: 1, Cols: 1}},
	}
	for _, tc := range cases {
		n := tc.n
		a := make([]float64, n*n)
		b := make([]float64, n*n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		want := make([]float64, n*n)
		matrix.Gemm(n, n, n, a, b, want)

		l := blockcyclic.Layout{M: n, N: n, MB: tc.nb, NB: tc.nb, Grid: tc.topo}
		aPieces := blockcyclic.Distribute(a, l)
		bPieces := blockcyclic.Distribute(b, l)
		cPieces := blockcyclic.Distribute(make([]float64, n*n), l)
		err := mpi.Run(tc.topo.Count(), func(c *mpi.Comm) error {
			ctx, err := blacs.New(c, tc.topo)
			if err != nil {
				return err
			}
			return DistMatMul(ctx, l, aPieces[c.Rank()].Data, bPieces[c.Rank()].Data, cPieces[c.Rank()].Data)
		})
		if err != nil {
			t.Fatal(err)
		}
		got := blockcyclic.Collect(cPieces, l)
		if d := matrix.MaxAbsDiff(got, want); d > 1e-9 {
			t.Errorf("n=%d grid=%v: max diff %v", n, tc.topo, d)
		}
	}
}

func TestJacobiConvergesToSolution(t *testing.T) {
	const n = 12
	topo := grid.Row1D(3)
	l := blockcyclic.Layout{M: n, N: n, MB: 2, NB: n, Grid: topo}
	lb := blockcyclic.Layout{M: n, N: 1, MB: 2, NB: 1, Grid: topo}

	// Build a strongly diagonally dominant system with known solution.
	a := make([]float64, n*n)
	xTrue := make([]float64, n)
	for i := 0; i < n; i++ {
		xTrue[i] = float64(i%4) + 1
		for j := 0; j < n; j++ {
			if i == j {
				a[i*n+j] = 2 * n
			} else {
				a[i*n+j] = 1.0 / (1.0 + float64(i+j))
			}
		}
	}
	b := make([]float64, n)
	matrix.Gemv(n, n, a, xTrue, b)

	aPieces := blockcyclic.Distribute(a, l)
	bPieces := blockcyclic.Distribute(b, lb)
	err := mpi.Run(3, func(c *mpi.Comm) error {
		ctx, err := blacs.New(c, topo)
		if err != nil {
			return err
		}
		x := make([]float64, n)
		res, err := JacobiSweeps(ctx, l, aPieces[c.Rank()].Data, bPieces[c.Rank()].Data, x, 60)
		if err != nil {
			return err
		}
		if res > 1e-16 {
			return fmt.Errorf("residual %v after 60 sweeps", res)
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-9 {
				return fmt.Errorf("x[%d] = %v, want %v", i, x[i], xTrue[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestJacobiValidatesLayout(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		ctx, _ := blacs.New(c, grid.Topology{Rows: 1, Cols: 2})
		l := blockcyclic.Layout{M: 4, N: 4, MB: 2, NB: 2, Grid: ctx.Grid}
		if _, err := JacobiSweeps(ctx, l, nil, nil, make([]float64, 4), 1); err == nil {
			return fmt.Errorf("2-D layout accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFFT2DRoundTrip(t *testing.T) {
	const n = 16
	for _, p := range []int{1, 2, 4} {
		topo := grid.Row1D(p)
		l := blockcyclic.Layout{M: n, N: 2 * n, MB: 2, NB: 2 * n, Grid: topo}
		global := make([]float64, n*2*n)
		rng := rand.New(rand.NewSource(3))
		for i := range global {
			global[i] = rng.NormFloat64()
		}
		pieces := blockcyclic.Distribute(global, l)
		err := mpi.Run(p, func(c *mpi.Comm) error {
			ctx, err := blacs.New(c, topo)
			if err != nil {
				return err
			}
			if err := FFT2D(ctx, l, pieces[c.Rank()].Data, false); err != nil {
				return err
			}
			return FFT2D(ctx, l, pieces[c.Rank()].Data, true)
		})
		if err != nil {
			t.Fatal(err)
		}
		got := blockcyclic.Collect(pieces, l)
		if d := matrix.MaxAbsDiff(got, global); d > 1e-9 {
			t.Errorf("p=%d: round trip drift %v", p, d)
		}
	}
}

func TestFFT2DForwardMatchesSerial(t *testing.T) {
	const n = 8
	topo := grid.Row1D(2)
	l := blockcyclic.Layout{M: n, N: 2 * n, MB: 2, NB: 2 * n, Grid: topo}
	global := make([]float64, n*2*n)
	rng := rand.New(rand.NewSource(4))
	for i := range global {
		global[i] = rng.NormFloat64()
	}

	// Serial reference: row FFTs, transpose, row FFTs, transpose.
	ref := make([][]complex128, n)
	for i := range ref {
		ref[i] = make([]complex128, n)
		for j := 0; j < n; j++ {
			ref[i][j] = complex(global[i*2*n+2*j], global[i*2*n+2*j+1])
		}
	}
	for i := range ref {
		if err := matrix.FFT(ref[i], false); err != nil {
			t.Fatal(err)
		}
	}
	refT := make([][]complex128, n)
	for i := range refT {
		refT[i] = make([]complex128, n)
		for j := 0; j < n; j++ {
			refT[i][j] = ref[j][i]
		}
	}
	for i := range refT {
		if err := matrix.FFT(refT[i], false); err != nil {
			t.Fatal(err)
		}
	}
	// transpose back
	want := make([]float64, n*2*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want[i*2*n+2*j] = real(refT[j][i])
			want[i*2*n+2*j+1] = imag(refT[j][i])
		}
	}

	pieces := blockcyclic.Distribute(global, l)
	err := mpi.Run(2, func(c *mpi.Comm) error {
		ctx, err := blacs.New(c, topo)
		if err != nil {
			return err
		}
		return FFT2D(ctx, l, pieces[c.Rank()].Data, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	got := blockcyclic.Collect(pieces, l)
	if d := matrix.MaxAbsDiff(got, want); d > 1e-9 {
		t.Errorf("forward 2-D FFT differs from serial by %v", d)
	}
}

func TestFFT2DValidates(t *testing.T) {
	err := mpi.Run(1, func(c *mpi.Comm) error {
		ctx, _ := blacs.New(c, grid.Topology{Rows: 1, Cols: 1})
		l := blockcyclic.Layout{M: 12, N: 24, MB: 2, NB: 24, Grid: ctx.Grid}
		if FFT2D(ctx, l, make([]float64, 12*24), false) == nil {
			return fmt.Errorf("non-power-of-two accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMasterWorkerDistributesAllUnits(t *testing.T) {
	const units = 237
	for _, p := range []int{1, 2, 4} {
		counts := make(chan int, p)
		err := mpi.Run(p, func(c *mpi.Comm) error {
			ctx, err := blacs.New(c, grid.Row1D(p))
			if err != nil {
				return err
			}
			counts <- MasterWorkerRound(ctx, units, 10, 10)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		close(counts)
		total := 0
		for v := range counts {
			total += v
		}
		if total != units {
			t.Errorf("p=%d: %d units processed, want %d", p, total, units)
		}
	}
}

func TestMasterWorkerRepeatedRounds(t *testing.T) {
	const units, rounds = 55, 4
	totals := make(chan int, 3*rounds)
	err := mpi.Run(3, func(c *mpi.Comm) error {
		ctx, err := blacs.New(c, grid.Row1D(3))
		if err != nil {
			return err
		}
		for r := 0; r < rounds; r++ {
			totals <- MasterWorkerRound(ctx, units, 7, 5)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	close(totals)
	sum := 0
	for v := range totals {
		sum += v
	}
	if sum != units*rounds {
		t.Errorf("total %d, want %d", sum, units*rounds)
	}
}

func TestBuildRejectsUnknownApp(t *testing.T) {
	if _, err := Build(Config{App: "nope", N: 8, NB: 2, Iterations: 1}); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestBuildKnownApps(t *testing.T) {
	for _, app := range []string{"lu", "mm", "jacobi", "fft", "mw", "cg"} {
		a, err := Build(Config{App: app, N: 8, NB: 2, Iterations: 1})
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if a == nil {
			t.Fatalf("%s: nil app", app)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid lu", Config{App: "lu", N: 8, NB: 2, Iterations: 1}, true},
		{"valid mw without sizes", Config{App: "mw", Iterations: 3}, true},
		{"unknown app", Config{App: "summa", N: 8, NB: 2, Iterations: 1}, false},
		{"empty app", Config{N: 8, NB: 2, Iterations: 1}, false},
		{"zero iterations", Config{App: "lu", N: 8, NB: 2}, false},
		{"negative iterations", Config{App: "mw", Iterations: -1}, false},
		{"zero size", Config{App: "lu", NB: 2, Iterations: 1}, false},
		{"negative size", Config{App: "mm", N: -4, NB: 2, Iterations: 1}, false},
		{"zero block", Config{App: "jacobi", N: 8, Iterations: 1}, false},
		{"negative block", Config{App: "cg", N: 8, NB: -1, Iterations: 1}, false},
		{"fft non-power-of-two", Config{App: "fft", N: 12, NB: 2, Iterations: 1}, false},
		{"fft power of two", Config{App: "fft", N: 16, NB: 2, Iterations: 1}, true},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
		}
		// Build must agree with Validate.
		if _, err := Build(tc.cfg); (err == nil) != tc.ok {
			t.Errorf("%s: Build disagrees with Validate (err=%v)", tc.name, err)
		}
	}
}
