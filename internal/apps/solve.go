package apps

import (
	"fmt"

	"repro/internal/blacs"
	"repro/internal/blockcyclic"
	"repro/internal/mpi"
)

// DistSolveLU solves A x = b given the in-place LU factorization produced by
// DistLU (the PDGETRS analogue): forward substitution with the unit lower
// triangle, then back substitution with the upper triangle. b is replicated
// on every rank (length N) and is overwritten with the solution. Collective
// over the grid.
//
// The sweep walks block rows; the owners of each diagonal block solve their
// sub-block locally after folding in contributions from already-solved
// parts, then broadcast the solved segment to everyone.
func DistSolveLU(ctx *blacs.Context, l blockcyclic.Layout, lu, b []float64) error {
	if l.M != l.N || l.MB != l.NB {
		return fmt.Errorf("apps: DistSolveLU needs a square matrix with square blocks")
	}
	if len(b) != l.N {
		return fmt.Errorf("apps: DistSolveLU rhs has %d entries, want %d", len(b), l.N)
	}
	if !ctx.InGrid {
		return nil
	}
	nblk := l.BlockRows()

	// Forward substitution: y_k = b_k - sum_{j<k} L_kj y_j (unit diagonal).
	for k := 0; k < nblk; k++ {
		if err := solveBlockRow(ctx, l, lu, b, k, true); err != nil {
			return err
		}
	}
	// Back substitution: x_k = U_kk^{-1} (y_k - sum_{j>k} U_kj x_j).
	for k := nblk - 1; k >= 0; k-- {
		if err := solveBlockRow(ctx, l, lu, b, k, false); err != nil {
			return err
		}
	}
	return nil
}

// solveBlockRow updates segment k of the replicated vector using the ranks
// that own pieces of block row k, then broadcasts the solved segment from
// the diagonal owner.
func solveBlockRow(ctx *blacs.Context, l blockcyclic.Layout, lu, b []float64, k int, lower bool) error {
	pr := k % l.Grid.Rows
	pc := k % l.Grid.Cols
	h := l.BlockHeight(k)
	seg := make([]float64, h)

	if ctx.MyRow == pr {
		// Partial sums over my blocks in row k (strictly left of the
		// diagonal for the lower sweep, strictly right for the upper).
		partial := make([]float64, h)
		for _, bj := range localBlockCols(l, ctx.MyCol, -1) {
			if lower && bj >= k {
				continue
			}
			if !lower && bj <= k {
				continue
			}
			blk := getBlock(l, lu, ctx.MyCol, k, bj)
			w := l.BlockWidth(bj)
			x0 := bj * l.NB
			for ii := 0; ii < h; ii++ {
				s := 0.0
				for jj := 0; jj < w; jj++ {
					s += blk[ii*w+jj] * b[x0+jj]
				}
				partial[ii] += s
			}
		}
		summed := ctx.Row.Reduce(pc, partial, mpi.SumOp)

		// The diagonal owner completes the local triangular solve.
		if ctx.MyCol == pc {
			diag := getBlock(l, lu, ctx.MyCol, k, k)
			y0 := k * l.MB
			if lower {
				for ii := 0; ii < h; ii++ {
					s := b[y0+ii] - summed[ii]
					for jj := 0; jj < ii; jj++ {
						s -= diag[ii*h+jj] * seg[jj]
					}
					seg[ii] = s // unit diagonal
				}
			} else {
				for ii := h - 1; ii >= 0; ii-- {
					s := b[y0+ii] - summed[ii]
					for jj := ii + 1; jj < h; jj++ {
						s -= diag[ii*h+jj] * seg[jj]
					}
					piv := diag[ii*h+ii]
					if piv == 0 {
						return fmt.Errorf("apps: DistSolveLU zero pivot in block %d", k)
					}
					seg[ii] = s / piv
				}
			}
		}
	}

	// Everyone receives the solved segment from the diagonal owner.
	root := ctx.Rank(pr, pc)
	got := ctx.Comm.BcastFloats(root, seg)
	copy(b[k*l.MB:k*l.MB+h], got)
	return nil
}
