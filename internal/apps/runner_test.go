package apps

import (
	"context"
	"testing"

	"repro/internal/grid"
	"repro/internal/resize"
	"repro/internal/scheduler"
	"repro/pkg/reshape"
)

// runAppThroughResizes executes a full application under reshape.Run,
// forcing an expansion after iteration 1 and a shrink back after iteration
// 3, and returns the final replicated state captured on rank 0 (empty for
// apps without replicated state).
func runAppThroughResizes(t *testing.T, cfg Config, start, bigger grid.Topology) map[string][]float64 {
	t.Helper()
	app, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	client := &resize.ScriptedClient{Script: []scheduler.Decision{
		{Action: scheduler.ActionExpand, Target: bigger},
		{Action: scheduler.ActionNone},
		{Action: scheduler.ActionShrink, Target: start},
	}}

	rep, err := reshape.Run(context.Background(), app,
		reshape.WithScheduler(client),
		reshape.WithJobID(1),
		reshape.WithTopology(start),
		reshape.WithMaxIterations(cfg.Iterations))
	if err != nil {
		t.Fatalf("app %s through resizes: %v", cfg.App, err)
	}
	if !client.Ended {
		t.Fatalf("app %s never reported completion", cfg.App)
	}
	if len(client.Completed) != 2 {
		t.Fatalf("app %s: %d resizes completed, want 2", cfg.App, len(client.Completed))
	}
	if rep.Iterations != cfg.Iterations {
		t.Fatalf("app %s: %d iterations recorded, want %d", cfg.App, rep.Iterations, cfg.Iterations)
	}
	if rep.FinalTopo != start {
		t.Fatalf("app %s: finished on %v, want %v", cfg.App, rep.FinalTopo, start)
	}
	return rep.Replicated
}

func TestLURunnerSurvivesResizes(t *testing.T) {
	runAppThroughResizes(t,
		Config{App: "lu", N: 12, NB: 2, Iterations: 5},
		grid.Topology{Rows: 1, Cols: 2}, grid.Topology{Rows: 2, Cols: 2})
}

func TestMMRunnerSurvivesResizes(t *testing.T) {
	runAppThroughResizes(t,
		Config{App: "mm", N: 8, NB: 2, Iterations: 5},
		grid.Topology{Rows: 1, Cols: 2}, grid.Topology{Rows: 2, Cols: 3})
}

func TestJacobiRunnerConvergesThroughResizes(t *testing.T) {
	final := runAppThroughResizes(t,
		Config{App: "jacobi", N: 12, NB: 2, Iterations: 6, Sweeps: 10},
		grid.Row1D(2), grid.Row1D(4))
	res := final["residual"]
	if len(res) != 1 {
		t.Fatalf("missing residual: %v", final)
	}
	if res[0] > 1e-10 {
		t.Errorf("Jacobi residual %v after 60 sweeps across resizes", res[0])
	}
}

func TestFFTRunnerSurvivesResizes(t *testing.T) {
	runAppThroughResizes(t,
		Config{App: "fft", N: 16, NB: 2, Iterations: 5},
		grid.Row1D(2), grid.Row1D(4))
}

func TestMWRunnerSurvivesResizes(t *testing.T) {
	runAppThroughResizes(t,
		Config{App: "mw", Iterations: 5, MWUnits: 30, MWChunk: 5, MWUnitWork: 20},
		grid.Row1D(2), grid.Row1D(4))
}

func TestCGRunnerConvergesThroughResizes(t *testing.T) {
	final := runAppThroughResizes(t,
		Config{App: "cg", N: 12, NB: 2, Iterations: 6, Sweeps: 4},
		grid.Topology{Rows: 1, Cols: 2}, grid.Topology{Rows: 2, Cols: 2})
	res := final["residual"]
	if len(res) != 1 {
		t.Fatalf("missing residual: %v", final)
	}
	if res[0] > 1e-10 {
		t.Errorf("CG residual %v after 24 steps across resizes", res[0])
	}
	// The solution must satisfy the system: spot-check against b.
	if len(final["x"]) != 12 || len(final["b"]) != 12 {
		t.Fatalf("missing vectors: %v", final)
	}
}

func TestJacobiSolutionMatchesAcrossTopologies(t *testing.T) {
	// The same problem solved statically on 2 and on 4 processors must give
	// identical replicated solutions (determinism of the distributed sweep).
	get := func(p int) []float64 {
		app, err := Build(Config{App: "jacobi", N: 12, NB: 2, Iterations: 3, Sweeps: 15})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := reshape.Run(context.Background(), app,
			reshape.WithTopology(grid.Row1D(p)),
			reshape.WithMaxIterations(3))
		if err != nil {
			t.Fatal(err)
		}
		return rep.Replicated["x"]
	}
	x2 := get(2)
	x4 := get(4)
	if len(x2) != 12 || len(x4) != 12 {
		t.Fatalf("lengths %d/%d", len(x2), len(x4))
	}
	for i := range x2 {
		if x2[i] != x4[i] {
			t.Fatalf("x[%d] differs: %v vs %v", i, x2[i], x4[i])
		}
	}
}
