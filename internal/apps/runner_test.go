package apps

import (
	"context"
	"sync"
	"testing"

	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/resize"
	"repro/internal/scheduler"
)

// lockedScript wraps a ScriptedClient for concurrent rank access.
type lockedScript struct {
	mu sync.Mutex
	c  resize.ScriptedClient
}

func (m *lockedScript) Contact(ctx context.Context, jobID int, t grid.Topology, iterTime, redistTime float64) (scheduler.Decision, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.c.Contact(ctx, jobID, t, iterTime, redistTime)
}
func (m *lockedScript) ResizeComplete(ctx context.Context, jobID int, redistTime float64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.c.ResizeComplete(ctx, jobID, redistTime)
}
func (m *lockedScript) JobEnd(ctx context.Context, jobID int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.c.JobEnd(ctx, jobID)
}

// runAppThroughResizes executes a full app Runner starting on `start`,
// forcing an expansion after iteration 1 and a shrink back after iteration
// 3, and returns the final replicated state captured on rank 0 (may be nil
// for apps without replicated state).
func runAppThroughResizes(t *testing.T, cfg Config, start, bigger grid.Topology) map[string][]float64 {
	t.Helper()
	runner, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	client := &lockedScript{c: resize.ScriptedClient{Script: []scheduler.Decision{
		{Action: scheduler.ActionExpand, Target: bigger},
		{Action: scheduler.ActionNone},
		{Action: scheduler.ActionShrink, Target: start},
	}}}

	var mu sync.Mutex
	final := map[string][]float64{}
	// Wrap the worker so rank 0 snapshots replicated state at the end.
	var wrapped resize.Worker
	wrapped = func(s *resize.Session) error {
		err := runner.Worker(s)
		if err == nil && s.Comm().Rank() == 0 {
			mu.Lock()
			for _, name := range []string{"x", "residual", "b"} {
				if v := s.Replicated(name); v != nil {
					cp := make([]float64, len(v))
					copy(cp, v)
					final[name] = cp
				}
			}
			mu.Unlock()
		}
		return err
	}

	err = mpi.Run(start.Count(), func(c *mpi.Comm) error {
		sess, err := resize.NewSession(client, 1, c, start, wrapped)
		if err != nil {
			return err
		}
		if err := runner.Setup(sess); err != nil {
			return err
		}
		return wrapped(sess)
	})
	if err != nil {
		t.Fatalf("app %s through resizes: %v", cfg.App, err)
	}
	if !client.c.Ended {
		t.Fatalf("app %s never reported completion", cfg.App)
	}
	if len(client.c.Completed) != 2 {
		t.Fatalf("app %s: %d resizes completed, want 2", cfg.App, len(client.c.Completed))
	}
	return final
}

func TestLURunnerSurvivesResizes(t *testing.T) {
	runAppThroughResizes(t,
		Config{App: "lu", N: 12, NB: 2, Iterations: 5},
		grid.Topology{Rows: 1, Cols: 2}, grid.Topology{Rows: 2, Cols: 2})
}

func TestMMRunnerSurvivesResizes(t *testing.T) {
	runAppThroughResizes(t,
		Config{App: "mm", N: 8, NB: 2, Iterations: 5},
		grid.Topology{Rows: 1, Cols: 2}, grid.Topology{Rows: 2, Cols: 3})
}

func TestJacobiRunnerConvergesThroughResizes(t *testing.T) {
	final := runAppThroughResizes(t,
		Config{App: "jacobi", N: 12, NB: 2, Iterations: 6, Sweeps: 10},
		grid.Row1D(2), grid.Row1D(4))
	res := final["residual"]
	if len(res) != 1 {
		t.Fatalf("missing residual: %v", final)
	}
	if res[0] > 1e-10 {
		t.Errorf("Jacobi residual %v after 60 sweeps across resizes", res[0])
	}
}

func TestFFTRunnerSurvivesResizes(t *testing.T) {
	runAppThroughResizes(t,
		Config{App: "fft", N: 16, NB: 2, Iterations: 5},
		grid.Row1D(2), grid.Row1D(4))
}

func TestMWRunnerSurvivesResizes(t *testing.T) {
	runAppThroughResizes(t,
		Config{App: "mw", Iterations: 5, MWUnits: 30, MWChunk: 5, MWUnitWork: 20},
		grid.Row1D(2), grid.Row1D(4))
}

func TestCGRunnerConvergesThroughResizes(t *testing.T) {
	final := runAppThroughResizes(t,
		Config{App: "cg", N: 12, NB: 2, Iterations: 6, Sweeps: 4},
		grid.Topology{Rows: 1, Cols: 2}, grid.Topology{Rows: 2, Cols: 2})
	res := final["residual"]
	if len(res) != 1 {
		t.Fatalf("missing residual: %v", final)
	}
	if res[0] > 1e-10 {
		t.Errorf("CG residual %v after 24 steps across resizes", res[0])
	}
	// The solution must satisfy the system: spot-check against b.
	if len(final["x"]) != 12 || len(final["b"]) != 12 {
		t.Fatalf("missing vectors: %v", final)
	}
}

func TestJacobiSolutionMatchesAcrossTopologies(t *testing.T) {
	// The same problem solved statically on 2 and on 4 processors must give
	// identical replicated solutions (determinism of the distributed sweep).
	get := func(p int) []float64 {
		runner, err := Build(Config{App: "jacobi", N: 12, NB: 2, Iterations: 3, Sweeps: 15})
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		var out []float64
		topo := grid.Row1D(p)
		err = mpi.Run(p, func(c *mpi.Comm) error {
			sess, err := resize.NewSession(resize.NullClient{}, 1, c, topo, runner.Worker)
			if err != nil {
				return err
			}
			if err := runner.Setup(sess); err != nil {
				return err
			}
			if err := runner.Worker(sess); err != nil {
				return err
			}
			if c.Rank() == 0 {
				mu.Lock()
				out = append([]float64{}, sess.Replicated("x")...)
				mu.Unlock()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	x2 := get(2)
	x4 := get(4)
	if len(x2) != 12 || len(x4) != 12 {
		t.Fatalf("lengths %d/%d", len(x2), len(x4))
	}
	for i := range x2 {
		if x2[i] != x4[i] {
			t.Fatalf("x[%d] differs: %v vs %v", i, x2[i], x4[i])
		}
	}
}
