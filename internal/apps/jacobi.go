package apps

import (
	"fmt"

	"repro/internal/blacs"
	"repro/internal/blockcyclic"
)

// JacobiSweeps runs `sweeps` dense Jacobi iterations x <- D^{-1}(b - R x)
// on a row-distributed system: A is n x n in a 1-D block-cyclic row layout
// (Cols == 1), bvec is the right-hand side distributed with the same row
// blocking (an n x 1 array), and x is the solution vector replicated on
// every rank. It returns the squared residual norm ||b - A x||^2 of the
// final iterate. Collective over the grid.
func JacobiSweeps(ctx *blacs.Context, l blockcyclic.Layout, a, bvec, x []float64, sweeps int) (float64, error) {
	if l.Grid.Cols != 1 {
		return 0, fmt.Errorf("apps: Jacobi needs a 1-D row layout, got %v", l.Grid)
	}
	if l.N != l.M {
		return 0, fmt.Errorf("apps: Jacobi needs a square matrix, got %dx%d", l.M, l.N)
	}
	if len(x) != l.N {
		return 0, fmt.Errorf("apps: Jacobi x has %d entries, want %d", len(x), l.N)
	}
	if !ctx.InGrid {
		return 0, nil
	}
	me := ctx.Comm.Rank()
	n := l.N
	rows := l.LocalRows(me)

	// Global row index of each local row, fixed for the whole call.
	gidx := make([]int, rows)
	for li := 0; li < rows; li++ {
		gi, _ := l.LocalToGlobal(me, 0, li, 0)
		gidx[li] = gi
	}

	xnewLocal := make([]float64, rows)
	for s := 0; s < sweeps; s++ {
		for li := 0; li < rows; li++ {
			gi := gidx[li]
			row := a[li*n : (li+1)*n]
			sum := 0.0
			for j := 0; j < n; j++ {
				if j != gi {
					sum += row[j] * x[j]
				}
			}
			xnewLocal[li] = (bvec[li] - sum) / row[gi]
		}
		assembleReplicated(ctx, l, xnewLocal, x)
	}

	// Residual ||b - A x||^2, reduced across ranks.
	local := 0.0
	for li := 0; li < rows; li++ {
		row := a[li*n : (li+1)*n]
		s := 0.0
		for j := 0; j < n; j++ {
			s += row[j] * x[j]
		}
		d := bvec[li] - s
		local += d * d
	}
	return ctx.Comm.AllreduceSum(local), nil
}

// assembleReplicated gathers each rank's local vector piece (row blocking of
// l) into the replicated global vector on every rank.
func assembleReplicated(ctx *blacs.Context, l blockcyclic.Layout, local, global []float64) {
	pieces := ctx.Comm.AllgatherFloats(local)
	for r, piece := range pieces {
		for li := range piece {
			gi, _ := l.LocalToGlobal(r, 0, li, 0)
			global[gi] = piece[li]
		}
	}
}
