package apps

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/blacs"
	"repro/internal/blockcyclic"
	"repro/internal/grid"
	"repro/internal/matrix"
	"repro/internal/mpi"
)

// solveCase factors A on the grid and solves A x = b, checking against the
// known solution.
func solveCase(t *testing.T, n, nb int, topo grid.Topology, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a := diagDominantGlobal(rng, n)
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	matrix.Gemv(n, n, a, xTrue, b)

	l := blockcyclic.Layout{M: n, N: n, MB: nb, NB: nb, Grid: topo}
	pieces := blockcyclic.Distribute(a, l)
	err := mpi.Run(topo.Count(), func(c *mpi.Comm) error {
		ctx, err := blacs.New(c, topo)
		if err != nil {
			return err
		}
		local := pieces[c.Rank()].Data
		if err := DistLU(ctx, l, local); err != nil {
			return err
		}
		rhs := append([]float64{}, b...)
		if err := DistSolveLU(ctx, l, local, rhs); err != nil {
			return err
		}
		for i := range rhs {
			if math.Abs(rhs[i]-xTrue[i]) > 1e-7 {
				return fmt.Errorf("rank %d: x[%d] = %v, want %v", c.Rank(), i, rhs[i], xTrue[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("n=%d nb=%d grid=%v: %v", n, nb, topo, err)
	}
}

func TestDistSolveLUOnVariousGrids(t *testing.T) {
	cases := []struct {
		n, nb int
		topo  grid.Topology
	}{
		{8, 2, grid.Topology{Rows: 2, Cols: 2}},
		{12, 2, grid.Topology{Rows: 2, Cols: 3}},
		{12, 3, grid.Topology{Rows: 1, Cols: 2}},
		{16, 4, grid.Topology{Rows: 1, Cols: 1}},
		{10, 3, grid.Topology{Rows: 2, Cols: 2}}, // uneven edge blocks
	}
	for i, tc := range cases {
		solveCase(t, tc.n, tc.nb, tc.topo, int64(i+1))
	}
}

func TestDistSolveLUValidates(t *testing.T) {
	err := mpi.Run(1, func(c *mpi.Comm) error {
		ctx, _ := blacs.New(c, grid.Topology{Rows: 1, Cols: 1})
		l := blockcyclic.Layout{M: 4, N: 4, MB: 2, NB: 2, Grid: ctx.Grid}
		if DistSolveLU(ctx, l, make([]float64, 16), make([]float64, 3)) == nil {
			return fmt.Errorf("wrong rhs length accepted")
		}
		bad := blockcyclic.Layout{M: 4, N: 6, MB: 2, NB: 2, Grid: ctx.Grid}
		if DistSolveLU(ctx, bad, make([]float64, 24), make([]float64, 6)) == nil {
			return fmt.Errorf("rectangular matrix accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistMatVecMatchesSerial(t *testing.T) {
	const n = 10
	topo := grid.Topology{Rows: 2, Cols: 2}
	l := blockcyclic.Layout{M: n, N: n, MB: 3, NB: 3, Grid: topo}
	rng := rand.New(rand.NewSource(7))
	a := randMatGlobal(rng, n)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, n)
	matrix.Gemv(n, n, a, x, want)

	pieces := blockcyclic.Distribute(a, l)
	err := mpi.Run(4, func(c *mpi.Comm) error {
		ctx, err := blacs.New(c, topo)
		if err != nil {
			return err
		}
		got, err := DistMatVec(ctx, l, pieces[c.Rank()].Data, x)
		if err != nil {
			return err
		}
		if d := matrix.MaxAbsDiff(got, want); d > 1e-10 {
			return fmt.Errorf("rank %d: diff %v", c.Rank(), d)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func randMatGlobal(rng *rand.Rand, n int) []float64 {
	a := make([]float64, n*n)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	return a
}

// spdGlobal builds a symmetric positive definite matrix.
func spdGlobal(n int) []float64 {
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = 1.0 / (1.0 + math.Abs(float64(i-j)))
			if i == j {
				a[i*n+j] += float64(n)
			}
		}
	}
	return a
}

func TestDistCGConverges(t *testing.T) {
	const n = 12
	for _, topo := range []grid.Topology{
		{Rows: 1, Cols: 1},
		{Rows: 2, Cols: 2},
		{Rows: 2, Cols: 3},
	} {
		l := blockcyclic.Layout{M: n, N: n, MB: 2, NB: 2, Grid: topo}
		a := spdGlobal(n)
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = float64(i%5) - 2
		}
		b := make([]float64, n)
		matrix.Gemv(n, n, a, xTrue, b)
		pieces := blockcyclic.Distribute(a, l)
		err := mpi.Run(topo.Count(), func(c *mpi.Comm) error {
			ctx, err := blacs.New(c, topo)
			if err != nil {
				return err
			}
			x := make([]float64, n)
			res, err := DistCG(ctx, l, pieces[c.Rank()].Data, b, x, n+2)
			if err != nil {
				return err
			}
			if res > 1e-14 {
				return fmt.Errorf("residual %v", res)
			}
			for i := range x {
				if math.Abs(x[i]-xTrue[i]) > 1e-6 {
					return fmt.Errorf("x[%d] = %v, want %v", i, x[i], xTrue[i])
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("grid %v: %v", topo, err)
		}
	}
}

func TestDistCGValidates(t *testing.T) {
	err := mpi.Run(1, func(c *mpi.Comm) error {
		ctx, _ := blacs.New(c, grid.Topology{Rows: 1, Cols: 1})
		l := blockcyclic.Layout{M: 4, N: 4, MB: 2, NB: 2, Grid: ctx.Grid}
		if _, err := DistCG(ctx, l, make([]float64, 16), make([]float64, 2), make([]float64, 4), 1); err == nil {
			return fmt.Errorf("short rhs accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBuildCGRunner(t *testing.T) {
	a, err := Build(Config{App: "cg", N: 8, NB: 2, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a == nil {
		t.Fatal("nil app")
	}
}
