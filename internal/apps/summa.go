package apps

import (
	"fmt"

	"repro/internal/blacs"
	"repro/internal/blockcyclic"
	"repro/internal/matrix"
)

// DistMatMul computes C = A * B for square matrices distributed 2-D
// block-cyclically with square blocks, using the SUMMA algorithm that
// underlies PBLAS's PDGEMM (the paper's MM workload): for every global
// block step k, the owners of block column k of A broadcast their blocks
// along process rows, the owners of block row k of B broadcast theirs down
// process columns, and every rank accumulates local outer products.
// C must use the same layout as A and B; its contents are overwritten.
func DistMatMul(ctx *blacs.Context, l blockcyclic.Layout, a, b, c []float64) error {
	if l.MB != l.NB {
		return fmt.Errorf("apps: DistMatMul needs square blocks, got %dx%d", l.MB, l.NB)
	}
	if l.M != l.N {
		return fmt.Errorf("apps: DistMatMul needs square matrices, got %dx%d", l.M, l.N)
	}
	if !ctx.InGrid {
		return nil
	}
	for i := range c {
		c[i] = 0
	}
	nblk := l.BlockRows()
	myRow, myCol := ctx.MyRow, ctx.MyCol

	for k := 0; k < nblk; k++ {
		pr := k % l.Grid.Rows
		pc := k % l.Grid.Cols
		kw := l.BlockWidth(k)

		// Block column k of A spreads along process rows.
		var aPanel panel
		if myCol == pc {
			for _, bi := range localBlockRows(l, myRow, -1) {
				aPanel.Idx = append(aPanel.Idx, bi)
				aPanel.Blocks = append(aPanel.Blocks, getBlock(l, a, myCol, bi, k))
			}
		}
		aPanel = ctx.Row.Bcast(pc, aPanel).(panel)

		// Block row k of B spreads down process columns.
		var bPanel panel
		if myRow == pr {
			for _, bj := range localBlockCols(l, myCol, -1) {
				bPanel.Idx = append(bPanel.Idx, bj)
				bPanel.Blocks = append(bPanel.Blocks, getBlock(l, b, myCol, k, bj))
			}
		}
		bPanel = ctx.Col.Bcast(pr, bPanel).(panel)

		for _, bi := range aPanel.Idx {
			aik := aPanel.find(bi)
			h := l.BlockHeight(bi)
			for _, bj := range bPanel.Idx {
				bkj := bPanel.find(bj)
				w := l.BlockWidth(bj)
				blk := getBlock(l, c, myCol, bi, bj)
				matrix.Gemm(h, kw, w, aik, bkj, blk)
				setBlock(l, c, myCol, bi, bj, blk)
			}
		}
	}
	return nil
}
