package apps

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/resize"
)

// Launch runs one application job on a fresh set of ranks (its own world),
// wired to the given scheduler client — the body of the paper's Job Startup
// component. It blocks until the job finishes (including any ranks spawned
// by expansions) and returns the joined error of all ranks.
func Launch(client resize.Client, jobID int, topo grid.Topology, cfg Config) error {
	runner, err := Build(cfg)
	if err != nil {
		return err
	}
	world := mpi.NewWorld()
	return world.Run(topo.Count(), func(c *mpi.Comm) error {
		sess, err := resize.NewSession(client, jobID, c, topo, runner.Worker)
		if err != nil {
			return fmt.Errorf("apps: session for job %d: %w", jobID, err)
		}
		if err := runner.Setup(sess); err != nil {
			return fmt.Errorf("apps: setup for job %d: %w", jobID, err)
		}
		return runner.Worker(sess)
	})
}
