package apps

import (
	"context"
	"fmt"

	"repro/internal/grid"
	"repro/internal/resize"
	"repro/pkg/reshape"
)

// Launch runs one application job on a fresh set of ranks (its own world),
// wired to the given scheduler client — the body of the paper's Job
// Startup component. The job executes through the public SDK
// (reshape.Run), so the scheduler drives its resize points; extra options
// (loggers, resize-point spacing, call timeouts) pass through. Launch
// blocks until the job finishes, including any ranks spawned by
// expansions, and returns the joined error of all ranks.
func Launch(client resize.Client, jobID int, topo grid.Topology, cfg Config, opts ...reshape.Option) error {
	app, err := Build(cfg)
	if err != nil {
		return err
	}
	runOpts := append([]reshape.Option{
		reshape.WithScheduler(client),
		reshape.WithJobID(jobID),
		reshape.WithTopology(topo),
		reshape.WithMaxIterations(cfg.Iterations),
	}, opts...)
	if _, err := reshape.Run(context.Background(), app, runOpts...); err != nil {
		return fmt.Errorf("apps: job %d (%s): %w", jobID, cfg.App, err)
	}
	return nil
}
