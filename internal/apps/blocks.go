// Package apps implements the paper's five workload applications (Table 1)
// on top of the resizing library: LU factorization (the PDGETRF analogue),
// SUMMA matrix-matrix multiplication (PDGEMM), a dense iterative Jacobi
// solver, a 2-D FFT image transform, and a synthetic master-worker
// application with fixed-time work units. All are resizable: they register
// their global arrays with the resize session and call Resize at the end of
// every outer iteration.
package apps

import (
	"repro/internal/blockcyclic"
)

// getBlock copies global block (bi, bj) out of a rank's local storage.
// The caller must own the block.
func getBlock(l blockcyclic.Layout, local []float64, myCol, bi, bj int) []float64 {
	h := l.BlockHeight(bi)
	w := l.BlockWidth(bj)
	stride := l.LocalCols(myCol)
	li0 := (bi / l.Grid.Rows) * l.MB
	lj0 := (bj / l.Grid.Cols) * l.NB
	out := make([]float64, h*w)
	for ii := 0; ii < h; ii++ {
		copy(out[ii*w:(ii+1)*w], local[(li0+ii)*stride+lj0:(li0+ii)*stride+lj0+w])
	}
	return out
}

// setBlock writes a contiguous block back into local storage.
func setBlock(l blockcyclic.Layout, local []float64, myCol, bi, bj int, blk []float64) {
	h := l.BlockHeight(bi)
	w := l.BlockWidth(bj)
	stride := l.LocalCols(myCol)
	li0 := (bi / l.Grid.Rows) * l.MB
	lj0 := (bj / l.Grid.Cols) * l.NB
	for ii := 0; ii < h; ii++ {
		copy(local[(li0+ii)*stride+lj0:(li0+ii)*stride+lj0+w], blk[ii*w:(ii+1)*w])
	}
}

// localBlockRows lists the global block-row indices owned by grid row
// myRow, optionally restricted to indices strictly greater than after.
func localBlockRows(l blockcyclic.Layout, myRow, after int) []int {
	var out []int
	for bi := myRow; bi < l.BlockRows(); bi += l.Grid.Rows {
		if bi > after {
			out = append(out, bi)
		}
	}
	return out
}

// localBlockCols lists the global block-column indices owned by grid column
// myCol, optionally restricted to indices strictly greater than after.
func localBlockCols(l blockcyclic.Layout, myCol, after int) []int {
	var out []int
	for bj := myCol; bj < l.BlockCols(); bj += l.Grid.Cols {
		if bj > after {
			out = append(out, bj)
		}
	}
	return out
}

// panel is a broadcast bundle of blocks keyed by global block index.
type panel struct {
	Idx    []int
	Blocks [][]float64
}

// find returns the block with global index i, or nil.
func (p panel) find(i int) []float64 {
	for k, idx := range p.Idx {
		if idx == i {
			return p.Blocks[k]
		}
	}
	return nil
}
