// Package blockcyclic implements 2-D block-cyclic data layouts in the style
// of ScaLAPACK array descriptors: global matrices are tiled into MB x NB
// blocks and dealt cyclically onto a 2-D processor grid. The package
// provides the index arithmetic (ownership, global<->local maps, local
// extents) on which the redistribution library's table-based framework is
// built.
package blockcyclic

import (
	"fmt"

	"repro/internal/grid"
)

// Layout describes a global M x N matrix tiled into MB x NB blocks and
// distributed block-cyclically over a processor grid. Processor (r, c) of
// the grid corresponds to communicator rank r*Grid.Cols + c (row-major).
// Local storage is row-major with stride LocalCols.
type Layout struct {
	M, N   int // global dimensions
	MB, NB int // block dimensions
	Grid   grid.Topology
}

// New1D returns a row-distributed layout (block-cyclic over block rows) for
// p processors.
func New1D(m, n, mb, p int) Layout {
	return Layout{M: m, N: n, MB: mb, NB: n, Grid: grid.Row1D(p)}
}

// Validate checks the layout invariants.
func (l Layout) Validate() error {
	switch {
	case l.M <= 0 || l.N <= 0:
		return fmt.Errorf("blockcyclic: non-positive global dims %dx%d", l.M, l.N)
	case l.MB <= 0 || l.NB <= 0:
		return fmt.Errorf("blockcyclic: non-positive block dims %dx%d", l.MB, l.NB)
	case !l.Grid.IsValid():
		return fmt.Errorf("blockcyclic: invalid grid %v", l.Grid)
	}
	return nil
}

// BlockRows returns the number of block rows, ceil(M/MB).
func (l Layout) BlockRows() int { return (l.M + l.MB - 1) / l.MB }

// BlockCols returns the number of block columns, ceil(N/NB).
func (l Layout) BlockCols() int { return (l.N + l.NB - 1) / l.NB }

// BlockHeight returns the height of global block row bi (the last block may
// be short).
func (l Layout) BlockHeight(bi int) int {
	h := l.M - bi*l.MB
	if h > l.MB {
		h = l.MB
	}
	return h
}

// BlockWidth returns the width of global block column bj.
func (l Layout) BlockWidth(bj int) int {
	w := l.N - bj*l.NB
	if w > l.NB {
		w = l.NB
	}
	return w
}

// OwnerOfBlock returns the grid coordinates owning global block (bi, bj).
func (l Layout) OwnerOfBlock(bi, bj int) (prow, pcol int) {
	return bi % l.Grid.Rows, bj % l.Grid.Cols
}

// RankOfBlock returns the communicator rank owning global block (bi, bj).
func (l Layout) RankOfBlock(bi, bj int) int {
	r, c := l.OwnerOfBlock(bi, bj)
	return r*l.Grid.Cols + c
}

// Coords returns the grid coordinates of a communicator rank.
func (l Layout) Coords(rank int) (prow, pcol int) {
	return rank / l.Grid.Cols, rank % l.Grid.Cols
}

// Rank returns the communicator rank of grid coordinates (prow, pcol).
func (l Layout) Rank(prow, pcol int) int { return prow*l.Grid.Cols + pcol }

// numroc computes the number of rows or columns of a distributed matrix
// owned by process iproc, following ScaLAPACK's NUMROC.
func numroc(n, nb, iproc, nprocs int) int {
	nblocks := n / nb
	num := (nblocks / nprocs) * nb
	extra := nblocks % nprocs
	switch {
	case iproc < extra:
		num += nb
	case iproc == extra:
		num += n % nb
	}
	return num
}

// LocalRows returns the number of matrix rows stored on grid row prow.
func (l Layout) LocalRows(prow int) int { return numroc(l.M, l.MB, prow, l.Grid.Rows) }

// LocalCols returns the number of matrix columns stored on grid column pcol.
func (l Layout) LocalCols(pcol int) int { return numroc(l.N, l.NB, pcol, l.Grid.Cols) }

// LocalSize returns the number of float64 elements stored by rank.
func (l Layout) LocalSize(rank int) int {
	pr, pc := l.Coords(rank)
	return l.LocalRows(pr) * l.LocalCols(pc)
}

// GlobalToLocal maps a global element (i, j) to its owner's grid coordinates
// and the local (row-major) indices within that owner's storage.
func (l Layout) GlobalToLocal(i, j int) (prow, pcol, li, lj int) {
	bi, ii := i/l.MB, i%l.MB
	bj, jj := j/l.NB, j%l.NB
	prow, pcol = bi%l.Grid.Rows, bj%l.Grid.Cols
	li = (bi/l.Grid.Rows)*l.MB + ii
	lj = (bj/l.Grid.Cols)*l.NB + jj
	return
}

// LocalToGlobal maps local indices (li, lj) on grid process (prow, pcol)
// back to global element coordinates. It is the inverse of GlobalToLocal.
func (l Layout) LocalToGlobal(prow, pcol, li, lj int) (i, j int) {
	lbi, ii := li/l.MB, li%l.MB
	lbj, jj := lj/l.NB, lj%l.NB
	i = (lbi*l.Grid.Rows+prow)*l.MB + ii
	j = (lbj*l.Grid.Cols+pcol)*l.NB + jj
	return
}

// LocalIndex returns the flat row-major index of local (li, lj) on rank.
func (l Layout) LocalIndex(rank, li, lj int) int {
	_, pc := l.Coords(rank)
	return li*l.LocalCols(pc) + lj
}

// Matrix is one rank's piece of a block-cyclically distributed global
// matrix: the layout plus the rank's local row-major storage.
type Matrix struct {
	Layout Layout
	Rank   int
	Data   []float64 // LocalRows(prow) x LocalCols(pcol), row-major
}

// NewMatrix allocates a zeroed local piece for rank under the layout.
func NewMatrix(l Layout, rank int) *Matrix {
	return &Matrix{Layout: l, Rank: rank, Data: make([]float64, l.LocalSize(rank))}
}

// Rows returns the local row count.
func (m *Matrix) Rows() int {
	pr, _ := m.Layout.Coords(m.Rank)
	return m.Layout.LocalRows(pr)
}

// Cols returns the local column count.
func (m *Matrix) Cols() int {
	_, pc := m.Layout.Coords(m.Rank)
	return m.Layout.LocalCols(pc)
}

// At returns the local element (li, lj).
func (m *Matrix) At(li, lj int) float64 { return m.Data[li*m.Cols()+lj] }

// Set writes the local element (li, lj).
func (m *Matrix) Set(li, lj int, v float64) { m.Data[li*m.Cols()+lj] = v }

// FillGlobal populates the local piece from a function of global indices.
func (m *Matrix) FillGlobal(f func(i, j int) float64) {
	pr, pc := m.Layout.Coords(m.Rank)
	rows, cols := m.Rows(), m.Cols()
	for li := 0; li < rows; li++ {
		for lj := 0; lj < cols; lj++ {
			gi, gj := m.Layout.LocalToGlobal(pr, pc, li, lj)
			m.Data[li*cols+lj] = f(gi, gj)
		}
	}
}

// Distribute slices a dense row-major global matrix into per-rank local
// pieces under the layout. Used as the ground truth in tests and for small
// problem setup.
func Distribute(global []float64, l Layout) []*Matrix {
	p := l.Grid.Count()
	out := make([]*Matrix, p)
	for r := 0; r < p; r++ {
		out[r] = NewMatrix(l, r)
	}
	for i := 0; i < l.M; i++ {
		for j := 0; j < l.N; j++ {
			pr, pc, li, lj := l.GlobalToLocal(i, j)
			rank := l.Rank(pr, pc)
			out[rank].Set(li, lj, global[i*l.N+j])
		}
	}
	return out
}

// Collect reassembles the dense global matrix from per-rank pieces. It is
// the inverse of Distribute.
func Collect(pieces []*Matrix, l Layout) []float64 {
	global := make([]float64, l.M*l.N)
	for rank, m := range pieces {
		pr, pc := l.Coords(rank)
		rows, cols := l.LocalRows(pr), l.LocalCols(pc)
		for li := 0; li < rows; li++ {
			for lj := 0; lj < cols; lj++ {
				gi, gj := l.LocalToGlobal(pr, pc, li, lj)
				global[gi*l.N+gj] = m.Data[li*cols+lj]
			}
		}
	}
	return global
}
