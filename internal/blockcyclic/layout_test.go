package blockcyclic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

func layout(m, n, mb, nb, pr, pc int) Layout {
	return Layout{M: m, N: n, MB: mb, NB: nb, Grid: grid.Topology{Rows: pr, Cols: pc}}
}

func TestValidate(t *testing.T) {
	if err := layout(8, 8, 2, 2, 2, 2).Validate(); err != nil {
		t.Errorf("valid layout rejected: %v", err)
	}
	bad := []Layout{
		layout(0, 8, 2, 2, 2, 2),
		layout(8, 8, 0, 2, 2, 2),
		layout(8, 8, 2, 2, 0, 2),
	}
	for _, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("invalid layout %+v accepted", l)
		}
	}
}

func TestBlockCounts(t *testing.T) {
	l := layout(10, 7, 3, 2, 2, 2)
	if l.BlockRows() != 4 || l.BlockCols() != 4 {
		t.Errorf("block counts %d, %d", l.BlockRows(), l.BlockCols())
	}
	if l.BlockHeight(3) != 1 { // 10 = 3+3+3+1
		t.Errorf("last block height %d", l.BlockHeight(3))
	}
	if l.BlockWidth(3) != 1 { // 7 = 2+2+2+1
		t.Errorf("last block width %d", l.BlockWidth(3))
	}
	if l.BlockHeight(0) != 3 || l.BlockWidth(0) != 2 {
		t.Errorf("interior block %d x %d", l.BlockHeight(0), l.BlockWidth(0))
	}
}

func TestNumrocTotals(t *testing.T) {
	// Sum of LocalRows over grid rows must equal M, same for columns.
	f := func(rawM, rawMB, rawP uint8) bool {
		m := int(rawM%100) + 1
		mb := int(rawMB%10) + 1
		p := int(rawP%8) + 1
		l := layout(m, m, mb, mb, p, 1)
		total := 0
		for r := 0; r < p; r++ {
			lr := l.LocalRows(r)
			if lr < 0 {
				return false
			}
			total += lr
		}
		return total == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGlobalLocalRoundTrip(t *testing.T) {
	f := func(rawM, rawN, rawMB, rawNB, rawPR, rawPC uint8, rawI, rawJ uint16) bool {
		m := int(rawM%60) + 1
		n := int(rawN%60) + 1
		mb := int(rawMB%8) + 1
		nb := int(rawNB%8) + 1
		pr := int(rawPR%5) + 1
		pc := int(rawPC%5) + 1
		l := layout(m, n, mb, nb, pr, pc)
		i := int(rawI) % m
		j := int(rawJ) % n
		prow, pcol, li, lj := l.GlobalToLocal(i, j)
		if prow < 0 || prow >= pr || pcol < 0 || pcol >= pc {
			return false
		}
		if li >= l.LocalRows(prow) || lj >= l.LocalCols(pcol) {
			return false
		}
		gi, gj := l.LocalToGlobal(prow, pcol, li, lj)
		return gi == i && gj == j
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestOwnershipMatchesGlobalToLocal(t *testing.T) {
	l := layout(12, 12, 2, 3, 2, 2)
	for i := 0; i < 12; i++ {
		for j := 0; j < 12; j++ {
			pr, pc, _, _ := l.GlobalToLocal(i, j)
			bpr, bpc := l.OwnerOfBlock(i/l.MB, j/l.NB)
			if pr != bpr || pc != bpc {
				t.Fatalf("(%d,%d): element owner (%d,%d) vs block owner (%d,%d)", i, j, pr, pc, bpr, bpc)
			}
		}
	}
}

func TestDistributeCollectRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []Layout{
		layout(16, 16, 2, 2, 2, 2),
		layout(17, 13, 3, 2, 2, 3),
		layout(8, 8, 8, 8, 1, 1),
		layout(10, 10, 1, 1, 3, 3),
		layout(9, 4, 2, 2, 4, 1),
		New1D(12, 6, 2, 3),
	} {
		global := make([]float64, tc.M*tc.N)
		for i := range global {
			global[i] = rng.NormFloat64()
		}
		pieces := Distribute(global, tc)
		back := Collect(pieces, tc)
		for i := range global {
			if back[i] != global[i] {
				t.Fatalf("layout %+v: mismatch at %d", tc, i)
			}
		}
	}
}

func TestLocalSizesAccountForAllElements(t *testing.T) {
	f := func(rawM, rawN, rawMB, rawNB, rawPR, rawPC uint8) bool {
		l := layout(int(rawM%50)+1, int(rawN%50)+1, int(rawMB%6)+1, int(rawNB%6)+1,
			int(rawPR%4)+1, int(rawPC%4)+1)
		total := 0
		for r := 0; r < l.Grid.Count(); r++ {
			total += l.LocalSize(r)
		}
		return total == l.M*l.N
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatrixAtSet(t *testing.T) {
	l := layout(8, 8, 2, 2, 2, 2)
	m := NewMatrix(l, 3) // grid (1,1)
	if m.Rows() != 4 || m.Cols() != 4 {
		t.Fatalf("local dims %dx%d", m.Rows(), m.Cols())
	}
	m.Set(2, 3, 42)
	if m.At(2, 3) != 42 {
		t.Error("At/Set mismatch")
	}
}

func TestFillGlobal(t *testing.T) {
	l := layout(6, 6, 2, 2, 2, 3)
	pieces := make([]*Matrix, l.Grid.Count())
	for r := range pieces {
		pieces[r] = NewMatrix(l, r)
		pieces[r].FillGlobal(func(i, j int) float64 { return float64(i*100 + j) })
	}
	global := Collect(pieces, l)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if global[i*6+j] != float64(i*100+j) {
				t.Fatalf("global (%d,%d) = %v", i, j, global[i*6+j])
			}
		}
	}
}

func TestRankCoordsRoundTrip(t *testing.T) {
	l := layout(4, 4, 1, 1, 3, 4)
	for r := 0; r < 12; r++ {
		pr, pc := l.Coords(r)
		if l.Rank(pr, pc) != r {
			t.Fatalf("rank %d -> (%d,%d) -> %d", r, pr, pc, l.Rank(pr, pc))
		}
	}
}

func TestNew1DLayout(t *testing.T) {
	l := New1D(12, 5, 3, 4)
	if l.Grid.Rows != 4 || l.Grid.Cols != 1 {
		t.Fatalf("grid %v", l.Grid)
	}
	// Each of the 4 procs owns one 3-row block; all own all 5 columns.
	for r := 0; r < 4; r++ {
		if l.LocalRows(r) != 3 {
			t.Errorf("proc %d rows %d", r, l.LocalRows(r))
		}
	}
	if l.LocalCols(0) != 5 {
		t.Errorf("cols %d", l.LocalCols(0))
	}
}
