package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMat(rng *rand.Rand, m, n int) []float64 {
	a := make([]float64, m*n)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	return a
}

// naiveGemm is the reference O(mnk) triple loop in (i,j,l) order.
func naiveGemm(m, k, n int, a, b, c []float64) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for l := 0; l < k; l++ {
				s += a[i*k+l] * b[l*n+j]
			}
			c[i*n+j] += s
		}
	}
}

func TestGemmMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 4, 5}, {8, 8, 8}, {7, 2, 9}} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randMat(rng, m, k), randMat(rng, k, n)
		c1 := randMat(rng, m, n)
		c2 := append([]float64{}, c1...)
		Gemm(m, k, n, a, b, c1)
		naiveGemm(m, k, n, a, b, c2)
		if d := MaxAbsDiff(c1, c2); d > 1e-12 {
			t.Errorf("dims %v: diff %v", dims, d)
		}
	}
}

func TestGemmSubInvertsGemm(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, k, n := 5, 6, 4
	a, b := randMat(rng, m, k), randMat(rng, k, n)
	c := randMat(rng, m, n)
	orig := append([]float64{}, c...)
	Gemm(m, k, n, a, b, c)
	GemmSub(m, k, n, a, b, c)
	if d := MaxAbsDiff(c, orig); d > 1e-12 {
		t.Errorf("Gemm then GemmSub drifted by %v", d)
	}
}

func TestGemv(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6} // 2x3
	x := []float64{1, 1, 1}
	y := []float64{10, 20}
	Gemv(2, 3, a, x, y)
	if y[0] != 16 || y[1] != 35 {
		t.Errorf("Gemv got %v", y)
	}
}

// diagDominant makes a random diagonally dominant matrix (guaranteed
// unpivoted-LU-factorable).
func diagDominant(rng *rand.Rand, n int) []float64 {
	a := randMat(rng, n, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += math.Abs(a[i*n+j])
		}
		a[i*n+i] = s + 1
	}
	return a
}

func TestLUFactorReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 5, 16, 33} {
		a := diagDominant(rng, n)
		orig := append([]float64{}, a...)
		if err := LUFactor(n, a); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		recon := make([]float64, n*n)
		MulLU(n, a, recon)
		if d := MaxAbsDiff(recon, orig); d > 1e-8*float64(n) {
			t.Errorf("n=%d: reconstruction error %v", n, d)
		}
	}
}

func TestLUFactorZeroPivot(t *testing.T) {
	a := []float64{0, 1, 1, 0}
	if err := LUFactor(2, a); err == nil {
		t.Error("zero pivot not detected")
	}
}

func TestLUFactorProperty(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%12) + 1
		rng := rand.New(rand.NewSource(seed))
		a := diagDominant(rng, n)
		orig := append([]float64{}, a...)
		if err := LUFactor(n, a); err != nil {
			return false
		}
		recon := make([]float64, n*n)
		MulLU(n, a, recon)
		return MaxAbsDiff(recon, orig) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTrsmRightUpper(t *testing.T) {
	// Solve B_new * U = B for random U (upper of factored diag block).
	rng := rand.New(rand.NewSource(4))
	n, m := 4, 3
	lu := diagDominant(rng, n)
	if err := LUFactor(n, lu); err != nil {
		t.Fatal(err)
	}
	b := randMat(rng, m, n)
	orig := append([]float64{}, b...)
	TrsmRightUpper(m, n, lu, b)
	// b * U must equal orig; extract U from lu.
	u := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			u[i*n+j] = lu[i*n+j]
		}
	}
	check := make([]float64, m*n)
	Gemm(m, n, n, b, u, check)
	if d := MaxAbsDiff(check, orig); d > 1e-9 {
		t.Errorf("TrsmRightUpper residual %v", d)
	}
}

func TestTrsmLeftLowerUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, m := 4, 5
	lu := diagDominant(rng, n)
	if err := LUFactor(n, lu); err != nil {
		t.Fatal(err)
	}
	b := randMat(rng, n, m)
	orig := append([]float64{}, b...)
	TrsmLeftLowerUnit(n, m, lu, b)
	// L * b must equal orig; extract unit-lower L.
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		l[i*n+i] = 1
		for j := 0; j < i; j++ {
			l[i*n+j] = lu[i*n+j]
		}
	}
	check := make([]float64, n*m)
	Gemm(n, n, m, l, b, check)
	if d := MaxAbsDiff(check, orig); d > 1e-9 {
		t.Errorf("TrsmLeftLowerUnit residual %v", d)
	}
}

func TestTranspose(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6} // 2x3
	out := make([]float64, 6)
	Transpose(2, 3, a, out)
	want := []float64{1, 4, 2, 5, 3, 6}
	if d := MaxAbsDiff(out, want); d != 0 {
		t.Errorf("transpose got %v", out)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64, rawM, rawN uint8) bool {
		m := int(rawM%10) + 1
		n := int(rawN%10) + 1
		rng := rand.New(rand.NewSource(seed))
		a := randMat(rng, m, n)
		tmp := make([]float64, n*m)
		back := make([]float64, m*n)
		Transpose(m, n, a, tmp)
		Transpose(n, m, tmp, back)
		return MaxAbsDiff(a, back) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFFTKnownTransform(t *testing.T) {
	// FFT of a constant signal is an impulse at bin 0.
	x := make([]complex128, 8)
	for i := range x {
		x[i] = 1
	}
	if err := FFT(x, false); err != nil {
		t.Fatal(err)
	}
	if math.Abs(real(x[0])-8) > 1e-12 {
		t.Errorf("bin 0 = %v", x[0])
	}
	for i := 1; i < 8; i++ {
		if math.Abs(real(x[i])) > 1e-12 || math.Abs(imag(x[i])) > 1e-12 {
			t.Errorf("bin %d = %v", i, x[i])
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	const n = 16
	x := make([]complex128, n)
	for i := range x {
		ang := 2 * math.Pi * 3 * float64(i) / n
		x[i] = complex(math.Cos(ang), math.Sin(ang))
	}
	if err := FFT(x, false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := 0.0
		if i == 3 {
			want = n
		}
		if math.Abs(real(x[i])-want) > 1e-9 || math.Abs(imag(x[i])) > 1e-9 {
			t.Errorf("bin %d = %v", i, x[i])
		}
	}
}

func TestFFTRoundTripProperty(t *testing.T) {
	f := func(seed int64, rawLog uint8) bool {
		n := 1 << (rawLog%8 + 1)
		rng := rand.New(rand.NewSource(seed))
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		if FFT(x, false) != nil || FFT(x, true) != nil {
			return false
		}
		for i := range x {
			if cmag(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func cmag(c complex128) float64 { return math.Hypot(real(c), imag(c)) }

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	if err := FFT(make([]complex128, 12), false); err == nil {
		t.Error("length 12 accepted")
	}
	if err := FFT(nil, false); err == nil {
		t.Error("empty accepted")
	}
}

func TestFrobeniusNorm(t *testing.T) {
	if got := FrobeniusNorm([]float64{3, 4}); got != 5 {
		t.Errorf("norm = %v", got)
	}
}
