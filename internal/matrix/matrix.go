// Package matrix provides the local dense kernels underneath the
// distributed applications: GEMM, unpivoted LU, triangular solves, matrix-
// vector products, transposes and a radix-2 complex FFT. All matrices are
// dense row-major float64 slices with an explicit column count.
package matrix

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Gemm computes C += A * B for row-major matrices: A is m x k, B is k x n,
// C is m x n. The loop order (i, l, j) streams B and C rows for locality.
func Gemm(m, k, n int, a, b, c []float64) {
	for i := 0; i < m; i++ {
		ai := a[i*k : (i+1)*k]
		ci := c[i*n : (i+1)*n]
		for l := 0; l < k; l++ {
			ail := ai[l]
			if ail == 0 {
				continue
			}
			bl := b[l*n : (l+1)*n]
			for j := 0; j < n; j++ {
				ci[j] += ail * bl[j]
			}
		}
	}
}

// GemmSub computes C -= A * B, the trailing-update form used by LU.
func GemmSub(m, k, n int, a, b, c []float64) {
	for i := 0; i < m; i++ {
		ai := a[i*k : (i+1)*k]
		ci := c[i*n : (i+1)*n]
		for l := 0; l < k; l++ {
			ail := ai[l]
			if ail == 0 {
				continue
			}
			bl := b[l*n : (l+1)*n]
			for j := 0; j < n; j++ {
				ci[j] -= ail * bl[j]
			}
		}
	}
}

// Gemv computes y += A * x for a row-major m x n matrix.
func Gemv(m, n int, a, x, y []float64) {
	for i := 0; i < m; i++ {
		ai := a[i*n : (i+1)*n]
		s := 0.0
		for j := 0; j < n; j++ {
			s += ai[j] * x[j]
		}
		y[i] += s
	}
}

// LUFactor performs an in-place unpivoted LU factorization of the n x n
// row-major matrix a: afterwards the strict lower triangle holds L (unit
// diagonal implied) and the upper triangle holds U. It returns an error on a
// zero pivot; callers supply diagonally dominant matrices.
func LUFactor(n int, a []float64) error {
	for k := 0; k < n; k++ {
		pivot := a[k*n+k]
		if pivot == 0 {
			return fmt.Errorf("matrix: zero pivot at %d", k)
		}
		inv := 1 / pivot
		for i := k + 1; i < n; i++ {
			a[i*n+k] *= inv
			lik := a[i*n+k]
			if lik == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				a[i*n+j] -= lik * a[k*n+j]
			}
		}
	}
	return nil
}

// TrsmLowerRight solves X * L^T ... no: TrsmRightUpper computes
// B := B * U^{-1} where U is the n x n upper triangle of lu (from LUFactor)
// and B is m x n row-major. This forms the L panel blocks in distributed LU:
// L_ik = A_ik U_kk^{-1}.
func TrsmRightUpper(m, n int, lu, b []float64) {
	for i := 0; i < m; i++ {
		bi := b[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			s := bi[j]
			for l := 0; l < j; l++ {
				s -= bi[l] * lu[l*n+j]
			}
			bi[j] = s / lu[j*n+j]
		}
	}
}

// TrsmLeftLowerUnit computes B := L^{-1} * B where L is the unit lower
// triangle of the n x n factored block lu and B is n x m row-major. This
// forms the U panel blocks in distributed LU: U_kj = L_kk^{-1} A_kj.
func TrsmLeftLowerUnit(n, m int, lu, b []float64) {
	for i := 0; i < n; i++ {
		for l := 0; l < i; l++ {
			lil := lu[i*n+l]
			if lil == 0 {
				continue
			}
			for j := 0; j < m; j++ {
				b[i*m+j] -= lil * b[l*m+j]
			}
		}
	}
}

// MulLU recomposes L*U from a factored matrix (LUFactor output) into out,
// used to verify factorizations.
func MulLU(n int, lu, out []float64) {
	for i := range out {
		out[i] = 0
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			kmax := i
			if j < i {
				kmax = j
			}
			for k := 0; k <= kmax; k++ {
				var lik float64
				if k == i {
					lik = 1
				} else {
					lik = lu[i*n+k]
				}
				s += lik * lu[k*n+j]
			}
			out[i*n+j] = s
		}
	}
}

// Transpose writes the transpose of the m x n row-major matrix a into the
// n x m matrix out.
func Transpose(m, n int, a, out []float64) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out[j*m+i] = a[i*n+j]
		}
	}
}

// MaxAbsDiff returns max_i |a[i]-b[i]|; the slices must have equal length.
func MaxAbsDiff(a, b []float64) float64 {
	max := 0.0
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > max {
			max = d
		}
	}
	return max
}

// FrobeniusNorm returns the Frobenius norm of a.
func FrobeniusNorm(a []float64) float64 {
	s := 0.0
	for _, v := range a {
		s += v * v
	}
	return math.Sqrt(s)
}

// FFT performs an in-place radix-2 decimation-in-time FFT of x. The length
// must be a power of two. inverse selects the inverse transform (including
// the 1/n scaling).
func FFT(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("matrix: FFT length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			half := length / 2
			for j := 0; j < half; j++ {
				u := x[i+j]
				v := x[i+j+half] * w
				x[i+j] = u + v
				x[i+j+half] = u - v
				w *= wl
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
	return nil
}
