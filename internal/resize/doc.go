// Package resize implements ReSHAPE's resizing library (§3.2 of the
// paper): the machinery that lets a running application change the size of
// its processor set at resize points without being suspended.
//
// Most applications should not use this package directly: the public SDK
// in pkg/reshape wraps a Session in a lifecycle-driven App API
// (Init/Iterate plus optional OnResize/Checkpoint hooks) and drives the
// iterate/log/resize loop itself. This package is the underlying
// mechanism the SDK runs on.
//
// At a resize point the application calls Session.Resize with its latest
// iteration time (the paper's "simple functional API"). The library then:
//
//  1. contacts the scheduler with the performance report
//     (contact_scheduler),
//  2. on an expand decision, spawns new ranks (MPI_Comm_spawn_multiple),
//     merges the intercommunicator into a grown intracommunicator, creates
//     a fresh grid context, and redistributes every registered global array
//     onto the new processor grid,
//  3. on a shrink decision, redistributes the arrays onto the surviving
//     prefix of ranks, carves a sub-communicator for them, rebuilds the
//     grid context, and retires the excess ranks,
//  4. reports the measured redistribution cost back to the scheduler so the
//     Performance Profiler can weigh future resizing decisions.
//
// All registered arrays move in one fused redistribution (one message per
// communicating processor pair per schedule step, every array's blocks on
// board — redistrib.MultiPlan), and the plans are cached per (from, to)
// topology pair, so repeated oscillation between the same grids pays the
// schedule-table construction once. Measured costs are additionally kept as
// perfmodel.RedistObservation records (see RedistObservations) to calibrate
// the analytic redistribution model against real executions.
//
// Replicated buffers registered with SetReplicated are owned by rank 0 at
// resize time: an expansion broadcasts rank 0's copies through the child
// bootstrap to every rank — newly spawned and pre-existing alike — and a
// shrink broadcasts them to the surviving ranks, so every topology change
// ends with identical replicated state everywhere.
//
// The advanced API (ContactScheduler, ExpandProcessors, ShrinkProcessors,
// RedistributeAll) exposes the individual stages of Figure 1(b).
package resize
