package resize

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/blacs"
	"repro/internal/blockcyclic"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
	"repro/internal/redistrib"
	"repro/internal/scheduler"
)

// Client is the scheduler interface the resizing library talks to. The
// in-process scheduler.Server implements it directly; the reshape package
// (rpc/v2) and the v1 rpc.Client implement it over TCP. Every call takes a
// context so remote transports can honour deadlines and cancellation.
// Contact calls from concurrently resizing jobs are safe because the
// Server serializes them onto the scheduler core (see DESIGN.md, Remap
// Scheduler); an expansion grant either succeeds atomically or comes back
// as "no change".
type Client interface {
	// Contact reports an iteration from a resize point and returns the
	// remap decision (the paper's contact_scheduler).
	Contact(ctx context.Context, jobID int, topo grid.Topology, iterTime, redistTime float64) (scheduler.Decision, error)
	// ResizeComplete confirms a finished resize and reports its cost.
	ResizeComplete(ctx context.Context, jobID int, redistTime float64) error
	// JobEnd signals normal completion (the application monitor's job-end).
	JobEnd(ctx context.Context, jobID int) error
}

// Scheduler is the full capability surface of a ReSHAPE scheduler: the
// resizing-library Client plus submission, completion waits, streaming
// job-event watches and typed status snapshots. The in-process
// scheduler.Server, the v1 rpc.Client and the rpc/v2 reshape.Client all
// implement it, so tools and applications are transport-agnostic —
// including Wait and Watch.
type Scheduler interface {
	Client
	// Submit enqueues a job and returns its id.
	Submit(ctx context.Context, spec scheduler.JobSpec) (int, error)
	// JobError reports an application failure (the application monitor's
	// job-error signal): the job is deleted, its resources recovered, and
	// the trace records kind "error" instead of "end".
	JobError(ctx context.Context, jobID int) error
	// Wait blocks until the job finishes or ctx is done.
	Wait(ctx context.Context, jobID int) error
	// Watch streams job-state transitions (scheduler.AllJobs for every
	// job) until ctx is done or the subscription is cancelled.
	Watch(ctx context.Context, jobID int) (*scheduler.Subscription, error)
	// Status returns a typed scheduler snapshot.
	Status(ctx context.Context) (scheduler.ClusterStatus, error)
}

// The in-process server satisfies the full capability interface.
var _ Scheduler = (*scheduler.Server)(nil)

// Array is one global block-cyclic array registered for redistribution.
// Data holds the calling rank's local piece under the session's current
// topology (nil on ranks outside the grid).
type Array struct {
	Name   string
	M, N   int
	MB, NB int
	Data   []float64
}

// LayoutFor returns the array's layout on a given processor topology.
func (a *Array) LayoutFor(topo grid.Topology) blockcyclic.Layout {
	return blockcyclic.Layout{M: a.M, N: a.N, MB: a.MB, NB: a.NB, Grid: topo}
}

// Status is the outcome of a Resize call.
type Status int

const (
	// Continue: proceed with the next iteration on the (possibly resized)
	// processor set.
	Continue Status = iota
	// Retired: this rank was shrunk away and must return from its worker.
	Retired
)

// Worker is the application body executed by every rank, including ranks
// spawned during expansion. It typically rebuilds app state from
// s.Arrays()/s.Replicated and loops: iterate, then s.Resize.
type Worker func(s *Session) error

// planKey identifies a redistribution plan by its grid pair. Plans also
// depend on the registered array set, so the cache is invalidated whenever
// an array is registered.
type planKey struct {
	from, to grid.Topology
}

// Session is a rank's handle on the resizing library.
type Session struct {
	// CallTimeout bounds each scheduler call made from this session's
	// resize points (0 = no deadline). Set it before the worker loop; ranks
	// spawned by expansion inherit it.
	CallTimeout time.Duration

	client Client
	jobID  int
	worker Worker

	comm *mpi.Comm
	ctx  *blacs.Context
	topo grid.Topology

	arrays     []*Array
	replicated map[string][]float64

	// planCache holds fused redistribution plans keyed by (from, to)
	// topology, so oscillating between the same grids — the paper's
	// shrink/expand cycles around a sweet spot — stops rebuilding the
	// schedule tables on every resize.
	planCache map[planKey]*redistrib.MultiPlan

	iter       int
	lastRedist float64
	log        []IterationRecord
	redistObs  []perfmodel.RedistObservation // rank 0 only
}

// IterationRecord is one entry of the simple API's log.
type IterationRecord struct {
	Iter      int
	Topo      grid.Topology
	AvgTime   float64
	RedistSec float64
}

// NewSession creates a session over comm with the given starting topology.
// Collective over comm. The worker is retained so ranks spawned by later
// expansions can run the same application body.
func NewSession(client Client, jobID int, comm *mpi.Comm, topo grid.Topology, worker Worker) (*Session, error) {
	ctx, err := blacs.New(comm, topo)
	if err != nil {
		return nil, err
	}
	return &Session{
		client:     client,
		jobID:      jobID,
		worker:     worker,
		comm:       comm,
		ctx:        ctx,
		topo:       topo,
		replicated: make(map[string][]float64),
	}, nil
}

// Comm returns the current communicator.
func (s *Session) Comm() *mpi.Comm { return s.comm }

// Ctx returns the current grid context.
func (s *Session) Ctx() *blacs.Context { return s.ctx }

// Topo returns the current processor topology.
func (s *Session) Topo() grid.Topology { return s.topo }

// JobID returns the scheduler's job id.
func (s *Session) JobID() int { return s.jobID }

// Iter returns the number of completed iterations.
func (s *Session) Iter() int { return s.iter }

// Advance records the completion of one iteration without contacting the
// scheduler. Resize does this implicitly; Advance is for callers that
// place resize points only every n-th iteration (the SDK's
// WithResizeEvery) and still need the iteration counter — which spawned
// ranks inherit at bootstrap — to move.
func (s *Session) Advance() { s.iter++ }

// LastRedist returns the redistribution cost of the most recent resize, in
// seconds (0 if the last resize point made no change).
func (s *Session) LastRedist() float64 { return s.lastRedist }

// RegisterArray adds a global array to the set redistributed at every
// resize. All ranks must register the same arrays in the same order.
// Registering invalidates any cached redistribution plans, which fuse the
// whole array set.
func (s *Session) RegisterArray(a *Array) {
	s.arrays = append(s.arrays, a)
	s.planCache = nil
}

// Arrays returns the registered arrays (with current local pieces).
func (s *Session) Arrays() []*Array { return s.arrays }

// Array returns a registered array by name.
func (s *Session) Array(name string) (*Array, bool) {
	for _, a := range s.arrays {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// SetReplicated registers rank-replicated state (e.g. a solution vector)
// that every rank must hold. Rank 0's view is authoritative at resize
// time: an expansion re-broadcasts rank 0's copies to all ranks — newly
// spawned and pre-existing alike — and a shrink re-broadcasts them to the
// survivors, so replicated state cannot diverge across a topology change.
// Fetch buffers with Replicated after a resize point rather than caching
// slices across it.
func (s *Session) SetReplicated(name string, data []float64) {
	s.replicated[name] = data
}

// Replicated returns replicated state by name.
func (s *Session) Replicated(name string) []float64 { return s.replicated[name] }

// ReplicatedNames returns the names of all replicated buffers in sorted
// order.
func (s *Session) ReplicatedNames() []string {
	names := make([]string, 0, len(s.replicated))
	for name := range s.replicated {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Log implements the simple API's log(iteration time): it averages the
// per-rank iteration time across the grid and records it on rank 0.
func (s *Session) Log(iterTime float64) float64 {
	avg := s.comm.AllreduceSum(iterTime) / float64(s.comm.Size())
	if s.comm.Rank() == 0 {
		s.log = append(s.log, IterationRecord{
			Iter: s.iter, Topo: s.topo, AvgTime: avg, RedistSec: s.lastRedist,
		})
	}
	return avg
}

// LogRecords returns rank 0's iteration log.
func (s *Session) LogRecords() []IterationRecord { return s.log }

// callCtx returns the context used for one scheduler call from a resize
// point, honouring the session's CallTimeout.
func (s *Session) callCtx() (context.Context, context.CancelFunc) {
	if s.CallTimeout > 0 {
		return context.WithTimeout(context.Background(), s.CallTimeout)
	}
	return context.Background(), func() {}
}

// Done signals job completion to the scheduler (rank 0 only; other ranks
// no-op), mirroring the application monitor's job-end message.
func (s *Session) Done() error {
	if s.comm.Rank() == 0 {
		ctx, cancel := s.callCtx()
		defer cancel()
		return s.client.JobEnd(ctx, s.jobID)
	}
	return nil
}

// ContactScheduler is the advanced API: rank 0 reports (iterTime,
// redistTime) and the decision is broadcast to every rank. Collective.
func (s *Session) ContactScheduler(iterTime, redistTime float64) (scheduler.Decision, error) {
	type wire struct {
		d   scheduler.Decision
		err string
	}
	var w wire
	if s.comm.Rank() == 0 {
		ctx, cancel := s.callCtx()
		defer cancel()
		d, err := s.client.Contact(ctx, s.jobID, s.topo, iterTime, redistTime)
		w.d = d
		if err != nil {
			w.err = err.Error()
		}
	}
	w = s.comm.Bcast(0, w).(wire)
	if w.err != "" {
		return scheduler.Decision{}, fmt.Errorf("resize: contact scheduler: %s", w.err)
	}
	return w.d, nil
}

// Resize is the simple API: it averages the iteration time across ranks,
// contacts the scheduler, and actuates the returned decision (expanding,
// shrinking and redistributing as needed). It returns Retired on ranks that
// were shrunk away; those must return from their worker immediately.
func (s *Session) Resize(iterTime float64) (Status, error) {
	avg := s.comm.AllreduceSum(iterTime) / float64(s.comm.Size())
	return s.ResizeAveraged(avg)
}

// ResizeAveraged is Resize for callers that already hold the grid-averaged
// iteration time — typically Log's return value — saving the redundant
// collective re-reduction Resize would perform. Collective: every rank
// must pass the same average.
func (s *Session) ResizeAveraged(avg float64) (Status, error) {
	s.iter++
	d, err := s.ContactScheduler(avg, s.lastRedist)
	if err != nil {
		return Continue, err
	}
	switch d.Action {
	case scheduler.ActionExpand:
		if err := s.ExpandProcessors(d.Target); err != nil {
			return Continue, err
		}
		return Continue, nil
	case scheduler.ActionShrink:
		return s.ShrinkProcessors(d.Target)
	default:
		s.lastRedist = 0
		return Continue, nil
	}
}

// copyReplicated deep-copies a replicated-buffer map.
func copyReplicated(src map[string][]float64) map[string][]float64 {
	dst := make(map[string][]float64, len(src))
	for name, data := range src {
		cp := make([]float64, len(data))
		copy(cp, data)
		dst[name] = cp
	}
	return dst
}

// childBootstrap carries everything a spawned rank needs to join the
// application mid-flight.
type childBootstrap struct {
	jobID      int
	iter       int
	oldTopo    grid.Topology
	newTopo    grid.Topology
	arrayMeta  []Array // shapes only; Data nil
	replicated map[string][]float64
}

// ExpandProcessors grows the processor set to target (advanced API,
// Figure 1(b) expand path): spawn the additional ranks, merge into a single
// intracommunicator, rebuild the grid context, and redistribute all
// registered arrays. The spawned ranks run the session's worker after
// bootstrapping. Collective over the current communicator.
func (s *Session) ExpandProcessors(target grid.Topology) error {
	k := target.Count() - s.topo.Count()
	if k <= 0 {
		return fmt.Errorf("resize: expand target %v not larger than current %v", target, s.topo)
	}
	start := time.Now()

	var boot childBootstrap
	if s.comm.Rank() == 0 {
		boot = childBootstrap{
			jobID:      s.jobID,
			iter:       s.iter,
			oldTopo:    s.topo,
			newTopo:    target,
			arrayMeta:  make([]Array, len(s.arrays)),
			replicated: copyReplicated(s.replicated),
		}
		for i, a := range s.arrays {
			boot.arrayMeta[i] = Array{Name: a.Name, M: a.M, N: a.N, MB: a.MB, NB: a.NB}
		}
	}
	client, worker, callTimeout := s.client, s.worker, s.CallTimeout

	ic := s.comm.Spawn(k, func(childIC *mpi.Intercomm) error {
		merged := childIC.Merge()
		// Children receive the bootstrap from rank 0 of the merged comm.
		b := merged.Bcast(0, childBootstrap{}).(childBootstrap)
		cs := &Session{
			CallTimeout: callTimeout,
			client:      client,
			jobID:       b.jobID,
			worker:      worker,
			comm:        merged,
			topo:        b.newTopo,
			iter:        b.iter,
			replicated:  copyReplicated(b.replicated),
		}
		for i := range b.arrayMeta {
			m := b.arrayMeta[i]
			cs.arrays = append(cs.arrays, &Array{Name: m.Name, M: m.M, N: m.N, MB: m.MB, NB: m.NB})
		}
		// Participate in the redistribution (receiving side only).
		if err := redistributeAll(merged, cs.arrays, b.oldTopo, b.newTopo); err != nil {
			return err
		}
		ctx, err := blacs.New(merged, b.newTopo)
		if err != nil {
			return err
		}
		cs.ctx = ctx
		return worker(cs)
	})

	merged := ic.Merge()
	// Rank 0 of the old comm is rank 0 of the merged comm: publish bootstrap.
	// Pre-existing non-root ranks adopt its replicated buffers too, so the
	// whole grown processor set leaves the expansion with identical
	// replicated state (children copy theirs out of the same broadcast).
	published := merged.Bcast(0, boot).(childBootstrap)
	if merged.Rank() != 0 {
		s.replicated = copyReplicated(published.replicated)
	}
	if err := s.redistribute(merged, s.topo, target); err != nil {
		return err
	}
	ctx, err := blacs.New(merged, target)
	if err != nil {
		return err
	}
	s.comm = merged
	s.ctx = ctx
	s.topo = target
	s.lastRedist = time.Since(start).Seconds()
	if s.comm.Rank() == 0 {
		ctx, cancel := s.callCtx()
		defer cancel()
		if err := s.client.ResizeComplete(ctx, s.jobID, s.lastRedist); err != nil {
			return err
		}
	}
	return nil
}

// ShrinkProcessors reduces the processor set to target (advanced API,
// Figure 1(b) shrink path): redistribute arrays to the surviving rank
// prefix, carve the survivor sub-communicator, rebuild the context, and
// retire the excess ranks (which receive Retired). Collective over the
// current communicator.
func (s *Session) ShrinkProcessors(target grid.Topology) (Status, error) {
	if target.Count() >= s.topo.Count() {
		return Continue, fmt.Errorf("resize: shrink target %v not smaller than current %v", target, s.topo)
	}
	start := time.Now()
	// Rank 0's replicated buffers are authoritative at resize time:
	// survivors adopt its view, mirroring the expansion-side re-broadcast
	// through the child bootstrap.
	published := s.comm.Bcast(0, s.replicated).(map[string][]float64)
	if s.comm.Rank() != 0 {
		s.replicated = copyReplicated(published)
	}
	if err := s.redistribute(s.comm, s.topo, target); err != nil {
		return Continue, err
	}
	survivors := make([]int, target.Count())
	for i := range survivors {
		survivors[i] = i
	}
	sub := s.comm.Sub(survivors)
	if sub == nil {
		// This rank was shrunk away; it holds no data and must exit.
		return Retired, nil
	}
	ctx, err := blacs.New(sub, target)
	if err != nil {
		return Continue, err
	}
	s.comm = sub
	s.ctx = ctx
	s.topo = target
	s.lastRedist = time.Since(start).Seconds()
	if s.comm.Rank() == 0 {
		ctx, cancel := s.callCtx()
		defer cancel()
		if err := s.client.ResizeComplete(ctx, s.jobID, s.lastRedist); err != nil {
			return Continue, err
		}
	}
	return Continue, nil
}

// newMultiPlan builds the fused redistribution plan for an array set
// between two topologies.
func newMultiPlan(arrays []*Array, from, to grid.Topology) (*redistrib.MultiPlan, error) {
	srcs := make([]blockcyclic.Layout, len(arrays))
	dsts := make([]blockcyclic.Layout, len(arrays))
	for i, a := range arrays {
		srcs[i] = a.LayoutFor(from)
		dsts[i] = a.LayoutFor(to)
	}
	mp, err := redistrib.NewMultiPlan(srcs, dsts)
	if err != nil {
		return nil, fmt.Errorf("resize: plan redistribution: %w", err)
	}
	return mp, nil
}

// measuredRedist is the cluster-wide outcome of one fused redistribution.
type measuredRedist struct {
	seconds      float64
	floatsSent   float64 // allreduced network volume
	floatsCopied float64 // allreduced local-copy volume
	steps        int
}

// redistributeFused moves every array from the old to the new topology over
// comm with one fused MultiPlan execution, updating Data in place (ranks
// outside the new grid end with nil Data). It is collective: every rank of
// comm — including ranks bootstrapping from an expansion — must call it
// with the same array set, because traffic totals are allreduced for the
// performance profile. A nil mp builds a fresh plan (the uncached path).
func redistributeFused(comm *mpi.Comm, arrays []*Array, from, to grid.Topology, mp *redistrib.MultiPlan) (measuredRedist, error) {
	if len(arrays) == 0 {
		return measuredRedist{}, nil
	}
	start := time.Now()
	if mp == nil {
		var err error
		if mp, err = newMultiPlan(arrays, from, to); err != nil {
			return measuredRedist{}, err
		}
	}
	srcData := make([][]float64, len(arrays))
	for i, a := range arrays {
		srcData[i] = a.Data
	}
	newData, stats := mp.ExecuteStats(comm, srcData)
	for i, a := range arrays {
		a.Data = newData[i]
	}
	totals := comm.Allreduce([]float64{float64(stats.FloatsSent), float64(stats.FloatsCopied)}, mpi.SumOp)
	return measuredRedist{
		seconds:      time.Since(start).Seconds(),
		floatsSent:   totals[0],
		floatsCopied: totals[1],
		steps:        mp.Steps(),
	}, nil
}

// redistributeAll is the plan-per-call path used by ranks that have no
// session cache yet (children joining an expansion).
func redistributeAll(comm *mpi.Comm, arrays []*Array, from, to grid.Topology) error {
	_, err := redistributeFused(comm, arrays, from, to, nil)
	return err
}

// planFor returns the session's cached fused plan for a grid pair,
// building and caching it on first use.
func (s *Session) planFor(from, to grid.Topology) (*redistrib.MultiPlan, error) {
	key := planKey{from: from, to: to}
	if mp, ok := s.planCache[key]; ok {
		return mp, nil
	}
	mp, err := newMultiPlan(s.arrays, from, to)
	if err != nil {
		return nil, err
	}
	if s.planCache == nil {
		s.planCache = make(map[planKey]*redistrib.MultiPlan)
	}
	s.planCache[key] = mp
	return mp, nil
}

// redistribute runs the session's cached fused plan for (from, to) over
// comm and records the measured cost as a RedistObservation on rank 0 —
// the data that feeds perfmodel calibration.
func (s *Session) redistribute(comm *mpi.Comm, from, to grid.Topology) error {
	if len(s.arrays) == 0 {
		return nil
	}
	mp, err := s.planFor(from, to)
	if err != nil {
		return err
	}
	m, err := redistributeFused(comm, s.arrays, from, to, mp)
	if err != nil {
		return err
	}
	if comm.Rank() == 0 {
		minP := from.Count()
		if to.Count() < minP {
			minP = to.Count()
		}
		s.redistObs = append(s.redistObs, perfmodel.RedistObservation{
			Bytes:       8 * m.floatsSent,
			CopiedBytes: 8 * m.floatsCopied,
			MinProcs:    minP,
			Steps:       m.steps,
			Seconds:     m.seconds,
		})
	}
	return nil
}

// RedistObservations returns the measured redistributions recorded by this
// rank (rank 0 of the communicator that performed them). They plug directly
// into perfmodel.Params.CalibrateRedist.
func (s *Session) RedistObservations() []perfmodel.RedistObservation { return s.redistObs }

// CalibrateRedist refits params' redistribution model from this session's
// measured redistributions, returning the number of observations used.
func (s *Session) CalibrateRedist(p *perfmodel.Params) int {
	return p.CalibrateRedist(s.redistObs)
}

// RedistributeAll is the advanced-API form of the paper's Redistribute
// call: it moves the registered arrays between two explicit topologies on
// the current communicator and records the elapsed redistribution time.
// Plans are cached per (from, to) pair.
func (s *Session) RedistributeAll(from, to grid.Topology) error {
	start := time.Now()
	if err := s.redistribute(s.comm, from, to); err != nil {
		return err
	}
	s.lastRedist = time.Since(start).Seconds()
	return nil
}
