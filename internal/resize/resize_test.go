package resize

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
	"repro/internal/scheduler"
)

func topo(r, c int) grid.Topology { return grid.Topology{Rows: r, Cols: c} }

// fillByGlobal populates an array's local data from global coordinates so
// any rank can verify contents after redistribution.
func fillByGlobal(s *Session, a *Array) {
	l := a.LayoutFor(s.Topo())
	rank := s.Comm().Rank()
	pr, pc := l.Coords(rank)
	rows, cols := l.LocalRows(pr), l.LocalCols(pc)
	a.Data = make([]float64, rows*cols)
	for li := 0; li < rows; li++ {
		for lj := 0; lj < cols; lj++ {
			gi, gj := l.LocalToGlobal(pr, pc, li, lj)
			a.Data[li*cols+lj] = float64(gi*1000 + gj)
		}
	}
}

// verifyByGlobal checks every local element against the global formula.
func verifyByGlobal(s *Session, a *Array) error {
	l := a.LayoutFor(s.Topo())
	rank := s.Comm().Rank()
	pr, pc := l.Coords(rank)
	rows, cols := l.LocalRows(pr), l.LocalCols(pc)
	if len(a.Data) != rows*cols {
		return fmt.Errorf("rank %d: %d floats, want %d", rank, len(a.Data), rows*cols)
	}
	for li := 0; li < rows; li++ {
		for lj := 0; lj < cols; lj++ {
			gi, gj := l.LocalToGlobal(pr, pc, li, lj)
			if a.Data[li*cols+lj] != float64(gi*1000+gj) {
				return fmt.Errorf("rank %d: (%d,%d) = %v", rank, gi, gj, a.Data[li*cols+lj])
			}
		}
	}
	return nil
}

func TestSessionExpandSpawnsAndRedistributes(t *testing.T) {
	client := &ScriptedClient{Script: []scheduler.Decision{
		{Action: scheduler.ActionExpand, Target: topo(2, 2)},
	}}
	const totalIters = 3
	var workerRuns sync.Map

	worker := func(s *Session) error {
		for s.Iter() < totalIters {
			a, _ := s.Array("A")
			if err := verifyByGlobal(s, a); err != nil {
				return err
			}
			workerRuns.Store(fmt.Sprintf("%v-%d-%d", s.Topo(), s.Comm().Rank(), s.Iter()), true)
			st, err := s.Resize(0.01)
			if err != nil {
				return err
			}
			if st == Retired {
				return nil
			}
		}
		return s.Done()
	}

	err := mpi.Run(2, func(c *mpi.Comm) error {
		s, err := NewSession(client, 1, c, topo(1, 2), worker)
		if err != nil {
			return err
		}
		a := &Array{Name: "A", M: 8, N: 8, MB: 2, NB: 2}
		s.RegisterArray(a)
		fillByGlobal(s, a)
		return worker(s)
	})
	if err != nil {
		t.Fatal(err)
	}
	// After the expansion all 4 ranks of the 2x2 grid must have iterated.
	for rank := 0; rank < 4; rank++ {
		key := fmt.Sprintf("%v-%d-%d", topo(2, 2), rank, 1)
		if _, ok := workerRuns.Load(key); !ok {
			t.Errorf("rank %d never iterated on the expanded grid", rank)
		}
	}
	if !client.Ended {
		t.Error("job end never reported")
	}
	if len(client.Completed) != 1 {
		t.Errorf("ResizeComplete calls = %d, want 1", len(client.Completed))
	}
}

func TestSessionShrinkRetiresRanks(t *testing.T) {
	client := &ScriptedClient{Script: []scheduler.Decision{
		{Action: scheduler.ActionShrink, Target: topo(1, 2)},
	}}
	const totalIters = 3
	var retired sync.Map

	worker := func(s *Session) error {
		for s.Iter() < totalIters {
			a, _ := s.Array("A")
			if err := verifyByGlobal(s, a); err != nil {
				return err
			}
			st, err := s.Resize(0.01)
			if err != nil {
				return err
			}
			if st == Retired {
				retired.Store(s.Comm().Rank(), true)
				return nil
			}
		}
		return s.Done()
	}

	err := mpi.Run(4, func(c *mpi.Comm) error {
		s, err := NewSession(client, 2, c, topo(2, 2), worker)
		if err != nil {
			return err
		}
		a := &Array{Name: "A", M: 8, N: 8, MB: 2, NB: 2}
		s.RegisterArray(a)
		fillByGlobal(s, a)
		return worker(s)
	})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	retired.Range(func(k, v any) bool { count++; return true })
	if count != 2 {
		t.Errorf("%d ranks retired, want 2", count)
	}
	if !client.Ended {
		t.Error("job end never reported")
	}
}

func TestSessionExpandThenShrinkFigure3aPattern(t *testing.T) {
	// The Figure 3(a) trajectory at miniature scale: grow 2 -> 4 -> 6, then
	// shrink back to 4 after a failed expansion, holding data intact
	// throughout.
	client := &ScriptedClient{Script: []scheduler.Decision{
		{Action: scheduler.ActionExpand, Target: topo(2, 2)},
		{Action: scheduler.ActionExpand, Target: topo(2, 3)},
		{Action: scheduler.ActionShrink, Target: topo(2, 2)},
		{Action: scheduler.ActionNone},
	}}
	const totalIters = 5

	worker := func(s *Session) error {
		for s.Iter() < totalIters {
			a, _ := s.Array("A")
			if err := verifyByGlobal(s, a); err != nil {
				return fmt.Errorf("iter %d on %v: %w", s.Iter(), s.Topo(), err)
			}
			st, err := s.Resize(0.01)
			if err != nil {
				return err
			}
			if st == Retired {
				return nil
			}
		}
		if s.Topo() != topo(2, 2) {
			return fmt.Errorf("final topology %v, want 2x2", s.Topo())
		}
		return s.Done()
	}

	err := mpi.Run(2, func(c *mpi.Comm) error {
		s, err := NewSession(client, 3, c, topo(1, 2), worker)
		if err != nil {
			return err
		}
		a := &Array{Name: "A", M: 12, N: 12, MB: 2, NB: 2}
		s.RegisterArray(a)
		fillByGlobal(s, a)
		return worker(s)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(client.Completed) != 3 {
		t.Errorf("ResizeComplete calls = %d, want 3", len(client.Completed))
	}
}

func TestSessionMultipleArraysAndReplicated(t *testing.T) {
	client := &ScriptedClient{Script: []scheduler.Decision{
		{Action: scheduler.ActionExpand, Target: topo(2, 2)},
	}}
	worker := func(s *Session) error {
		for s.Iter() < 2 {
			for _, name := range []string{"A", "B"} {
				a, ok := s.Array(name)
				if !ok {
					return fmt.Errorf("array %s missing", name)
				}
				if err := verifyByGlobal(s, a); err != nil {
					return fmt.Errorf("%s: %w", name, err)
				}
			}
			x := s.Replicated("x")
			if len(x) != 3 || x[0] != 7 {
				return fmt.Errorf("replicated x = %v on rank %d", x, s.Comm().Rank())
			}
			st, err := s.Resize(0.01)
			if err != nil {
				return err
			}
			if st == Retired {
				return nil
			}
		}
		return s.Done()
	}
	err := mpi.Run(2, func(c *mpi.Comm) error {
		s, err := NewSession(client, 4, c, topo(1, 2), worker)
		if err != nil {
			return err
		}
		a := &Array{Name: "A", M: 8, N: 8, MB: 2, NB: 2}
		b := &Array{Name: "B", M: 6, N: 4, MB: 2, NB: 2}
		s.RegisterArray(a)
		s.RegisterArray(b)
		fillByGlobal(s, a)
		fillByGlobal(s, b)
		s.SetReplicated("x", []float64{7, 8, 9})
		return worker(s)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExpandRebroadcastsReplicatedToAllRanks(t *testing.T) {
	// A replicated buffer set on rank 0 alone must reach every rank of the
	// grown processor set at expansion — the newly spawned ranks through the
	// child bootstrap AND the pre-existing non-root ranks, which would
	// otherwise keep silently divergent replicated state.
	client := &ScriptedClient{Script: []scheduler.Decision{
		{Action: scheduler.ActionExpand, Target: topo(2, 2)},
	}}
	var divergent sync.Map
	worker := func(s *Session) error {
		for s.Iter() < 2 {
			if s.Iter() >= 1 {
				// After the expansion every rank must see rank 0's value.
				got := s.Replicated("tally")
				if len(got) != 2 || got[0] != 41 || got[1] != 43 {
					divergent.Store(s.Comm().Rank(), append([]float64{}, got...))
				}
			}
			if s.Iter() == 0 && s.Comm().Rank() == 0 {
				s.SetReplicated("tally", []float64{41, 43})
			}
			st, err := s.Resize(0.01)
			if err != nil {
				return err
			}
			if st == Retired {
				return nil
			}
		}
		return s.Done()
	}
	err := mpi.Run(2, func(c *mpi.Comm) error {
		s, err := NewSession(client, 13, c, topo(1, 2), worker)
		if err != nil {
			return err
		}
		a := &Array{Name: "A", M: 8, N: 8, MB: 2, NB: 2}
		s.RegisterArray(a)
		fillByGlobal(s, a)
		return worker(s)
	})
	if err != nil {
		t.Fatal(err)
	}
	divergent.Range(func(k, v any) bool {
		t.Errorf("rank %v has replicated tally %v after expansion, want [41 43]", k, v)
		return true
	})
}

func TestShrinkRebroadcastsReplicatedToSurvivors(t *testing.T) {
	// A replicated buffer that diverged on a non-root rank must be
	// overwritten with rank 0's authoritative copy when the processor set
	// shrinks, mirroring the expansion-side re-broadcast.
	client := &ScriptedClient{Script: []scheduler.Decision{
		{Action: scheduler.ActionShrink, Target: topo(1, 2)},
	}}
	var divergent sync.Map
	worker := func(s *Session) error {
		for s.Iter() < 2 {
			if s.Iter() >= 1 {
				got := s.Replicated("tally")
				if len(got) != 1 || got[0] != 7 {
					divergent.Store(s.Comm().Rank(), append([]float64{}, got...))
				}
			}
			st, err := s.Resize(0.01)
			if err != nil {
				return err
			}
			if st == Retired {
				return nil
			}
		}
		return s.Done()
	}
	err := mpi.Run(4, func(c *mpi.Comm) error {
		s, err := NewSession(client, 16, c, topo(2, 2), worker)
		if err != nil {
			return err
		}
		a := &Array{Name: "A", M: 8, N: 8, MB: 2, NB: 2}
		s.RegisterArray(a)
		fillByGlobal(s, a)
		// Every rank starts with a divergent value; rank 0's is canonical.
		s.SetReplicated("tally", []float64{float64(7 + c.Rank()*100)})
		return worker(s)
	})
	if err != nil {
		t.Fatal(err)
	}
	divergent.Range(func(k, v any) bool {
		t.Errorf("surviving rank %v has replicated tally %v after shrink, want [7]", k, v)
		return true
	})
}

func TestReplicatedUpdatesReachSecondGeneration(t *testing.T) {
	// Replicated state replaced collectively between two expansions must
	// reach the second generation of spawned ranks with its latest value.
	client := &ScriptedClient{Script: []scheduler.Decision{
		{Action: scheduler.ActionExpand, Target: topo(1, 2)},
		{Action: scheduler.ActionExpand, Target: topo(2, 2)},
		{Action: scheduler.ActionNone},
	}}
	worker := func(s *Session) error {
		for s.Iter() < 3 {
			want := float64(s.Iter()) // value set at end of the previous iteration
			x := s.Replicated("x")
			if len(x) != 1 || x[0] != want {
				return fmt.Errorf("rank %d iter %d on %v: x=%v want [%v]",
					s.Comm().Rank(), s.Iter(), s.Topo(), x, want)
			}
			s.SetReplicated("x", []float64{float64(s.Iter() + 1)})
			st, err := s.Resize(0.01)
			if err != nil {
				return err
			}
			if st == Retired {
				return nil
			}
		}
		return s.Done()
	}
	err := mpi.Run(1, func(c *mpi.Comm) error {
		s, err := NewSession(client, 14, c, topo(1, 1), worker)
		if err != nil {
			return err
		}
		a := &Array{Name: "A", M: 8, N: 8, MB: 2, NB: 2}
		s.RegisterArray(a)
		fillByGlobal(s, a)
		s.SetReplicated("x", []float64{0})
		return worker(s)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAdvanceCountsIterationsWithoutContact(t *testing.T) {
	client := &ScriptedClient{}
	err := mpi.Run(2, func(c *mpi.Comm) error {
		s, err := NewSession(client, 15, c, topo(1, 2), nil)
		if err != nil {
			return err
		}
		s.Advance()
		s.Advance()
		if s.Iter() != 2 {
			return fmt.Errorf("iter %d after two Advance calls", s.Iter())
		}
		if _, err := s.Resize(0.01); err != nil {
			return err
		}
		if s.Iter() != 3 {
			return fmt.Errorf("iter %d after Advance+Resize", s.Iter())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both ranks call Resize once; only rank 0 contacts the scheduler.
	if client.Contacts != 1 {
		t.Errorf("scheduler contacted %d times, want 1 (Advance must not contact)", client.Contacts)
	}
}

func TestSessionLogAveragesAcrossRanks(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		s, err := NewSession(NullClient{}, 5, c, topo(1, 2), nil)
		if err != nil {
			return err
		}
		avg := s.Log(float64(c.Rank() + 1)) // times 1 and 2 -> avg 1.5
		if avg != 1.5 {
			return fmt.Errorf("avg %v", avg)
		}
		if c.Rank() == 0 {
			recs := s.LogRecords()
			if len(recs) != 1 || recs[0].AvgTime != 1.5 {
				return fmt.Errorf("records %v", recs)
			}
		} else if len(s.LogRecords()) != 0 {
			return fmt.Errorf("non-root rank has log records")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSessionNullClientNeverResizes(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		s, err := NewSession(NullClient{}, 6, c, topo(1, 2), nil)
		if err != nil {
			return err
		}
		for i := 0; i < 3; i++ {
			st, err := s.Resize(0.01)
			if err != nil {
				return err
			}
			if st != Continue || s.Topo() != topo(1, 2) {
				return fmt.Errorf("null client resized to %v", s.Topo())
			}
		}
		if s.Iter() != 3 {
			return fmt.Errorf("iter %d", s.Iter())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExpandValidatesTarget(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		s, err := NewSession(NullClient{}, 7, c, topo(1, 2), nil)
		if err != nil {
			return err
		}
		if err := s.ExpandProcessors(topo(1, 2)); err == nil {
			return fmt.Errorf("non-growing expand accepted")
		}
		if _, err := s.ShrinkProcessors(topo(2, 2)); err == nil {
			return fmt.Errorf("non-shrinking shrink accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedExpansionGrowsChain(t *testing.T) {
	// 1 -> 2 -> 4 -> 6 ranks across three expansions, data verified at each.
	client := &ScriptedClient{Script: []scheduler.Decision{
		{Action: scheduler.ActionExpand, Target: topo(1, 2)},
		{Action: scheduler.ActionExpand, Target: topo(2, 2)},
		{Action: scheduler.ActionExpand, Target: topo(2, 3)},
	}}
	const totalIters = 5
	worker := func(s *Session) error {
		for s.Iter() < totalIters {
			a, _ := s.Array("A")
			if err := verifyByGlobal(s, a); err != nil {
				return fmt.Errorf("on %v: %w", s.Topo(), err)
			}
			st, err := s.Resize(0.01)
			if err != nil {
				return err
			}
			if st == Retired {
				return nil
			}
		}
		if s.Comm().Size() != 6 {
			return fmt.Errorf("final comm size %d", s.Comm().Size())
		}
		return s.Done()
	}
	err := mpi.Run(1, func(c *mpi.Comm) error {
		s, err := NewSession(client, 8, c, topo(1, 1), worker)
		if err != nil {
			return err
		}
		a := &Array{Name: "A", M: 12, N: 12, MB: 2, NB: 2}
		s.RegisterArray(a)
		fillByGlobal(s, a)
		return worker(s)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPlanCacheReusedAcrossOscillation(t *testing.T) {
	// The paper's shrink/expand cycles oscillate between the same two grids;
	// the session must build each (from, to) plan once and reuse it.
	a3 := topo(2, 3)
	a2 := topo(2, 2)
	err := mpi.Run(6, func(c *mpi.Comm) error {
		s, err := NewSession(NullClient{}, 10, c, a3, nil)
		if err != nil {
			return err
		}
		a := &Array{Name: "A", M: 12, N: 12, MB: 2, NB: 2}
		b := &Array{Name: "B", M: 8, N: 10, MB: 2, NB: 2}
		s.RegisterArray(a)
		s.RegisterArray(b)
		fillByGlobal(s, a)
		fillByGlobal(s, b)

		for cycle := 0; cycle < 3; cycle++ {
			if err := s.RedistributeAll(a3, a2); err != nil {
				return err
			}
			if err := s.RedistributeAll(a2, a3); err != nil {
				return err
			}
		}
		// Back on the original topology: data must be intact.
		for _, arr := range []*Array{a, b} {
			if err := verifyByGlobal(s, arr); err != nil {
				return err
			}
		}
		if len(s.planCache) != 2 {
			return fmt.Errorf("plan cache has %d entries after oscillation, want 2", len(s.planCache))
		}
		mp1, err := s.planFor(a3, a2)
		if err != nil {
			return err
		}
		mp2, err := s.planFor(a3, a2)
		if err != nil {
			return err
		}
		if mp1 != mp2 {
			return fmt.Errorf("planFor rebuilt a cached plan")
		}
		// Registering another array fuses a different set: cache must drop.
		s.RegisterArray(&Array{Name: "C", M: 4, N: 4, MB: 2, NB: 2})
		if s.planCache != nil {
			return fmt.Errorf("plan cache survived RegisterArray")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRedistObservationsRecorded(t *testing.T) {
	from := topo(2, 3)
	to := topo(2, 2)
	obsCh := make(chan []perfmodel.RedistObservation, 1)
	err := mpi.Run(6, func(c *mpi.Comm) error {
		s, err := NewSession(NullClient{}, 11, c, from, nil)
		if err != nil {
			return err
		}
		a := &Array{Name: "A", M: 12, N: 12, MB: 2, NB: 2}
		s.RegisterArray(a)
		fillByGlobal(s, a)
		if err := s.RedistributeAll(from, to); err != nil {
			return err
		}
		if err := s.RedistributeAll(to, from); err != nil {
			return err
		}
		if c.Rank() == 0 {
			obsCh <- s.RedistObservations()
		} else if len(s.RedistObservations()) != 0 {
			return fmt.Errorf("rank %d recorded observations", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	obs := <-obsCh
	if len(obs) != 2 {
		t.Fatalf("%d observations, want 2", len(obs))
	}
	// 2x3 -> 2x2: rows 2->2 is 1 step, cols 3->2 is 3 steps.
	for i, o := range obs {
		if o.Bytes <= 0 {
			t.Errorf("observation %d moved no network bytes: %+v", i, o)
		}
		if o.Steps != 3 {
			t.Errorf("observation %d has %d steps, want 3", i, o.Steps)
		}
		if o.MinProcs != 4 {
			t.Errorf("observation %d MinProcs = %d, want 4", i, o.MinProcs)
		}
		if o.Seconds < 0 {
			t.Errorf("observation %d negative duration", i)
		}
	}
	// The calibration hook must accept the measured log (real goroutine runs
	// are fast, so some observations may fall under the latency floor and be
	// skipped — it just must not use more than it was given).
	p := perfmodel.SystemX()
	s := &Session{redistObs: obs}
	if used := s.CalibrateRedist(p); used < 0 || used > len(obs) {
		t.Errorf("calibration used %d of %d observations", used, len(obs))
	}
}

func TestExpandRecordsObservation(t *testing.T) {
	client := &ScriptedClient{Script: []scheduler.Decision{
		{Action: scheduler.ActionExpand, Target: topo(2, 2)},
	}}
	obsCh := make(chan int, 4)
	worker := func(s *Session) error {
		for s.Iter() < 2 {
			st, err := s.Resize(0.01)
			if err != nil {
				return err
			}
			if st == Retired {
				return nil
			}
		}
		if s.Comm().Rank() == 0 {
			obsCh <- len(s.RedistObservations())
		}
		return s.Done()
	}
	err := mpi.Run(2, func(c *mpi.Comm) error {
		s, err := NewSession(client, 12, c, topo(1, 2), worker)
		if err != nil {
			return err
		}
		a := &Array{Name: "A", M: 8, N: 8, MB: 2, NB: 2}
		s.RegisterArray(a)
		fillByGlobal(s, a)
		return worker(s)
	})
	if err != nil {
		t.Fatal(err)
	}
	close(obsCh)
	got := 0
	for n := range obsCh {
		if n > got {
			got = n
		}
	}
	if got != 1 {
		t.Errorf("rank 0 recorded %d observations after one expansion, want 1", got)
	}
}
