package resize

import (
	"context"
	"sync"

	"repro/internal/grid"
	"repro/internal/scheduler"
)

// NullClient is a scheduler stub that never resizes. It lets applications
// built against the resizing API run standalone (and under test) without a
// scheduler, equivalent to static scheduling.
type NullClient struct{}

// Contact always answers "no change".
func (NullClient) Contact(ctx context.Context, jobID int, topo grid.Topology, iterTime, redistTime float64) (scheduler.Decision, error) {
	return scheduler.Decision{Action: scheduler.ActionNone, Reason: "null client"}, nil
}

// ResizeComplete is a no-op.
func (NullClient) ResizeComplete(ctx context.Context, jobID int, redistTime float64) error {
	return nil
}

// JobEnd is a no-op.
func (NullClient) JobEnd(ctx context.Context, jobID int) error { return nil }

// ScriptedClient replays a fixed sequence of decisions, one per contact, for
// deterministic resize tests. After the script is exhausted it answers "no
// change". Calls are internally synchronized (expansion moves rank 0's
// goroutine across communicators), so one client may serve a whole run;
// read the recorded fields only after the run finishes.
type ScriptedClient struct {
	mu        sync.Mutex
	Script    []scheduler.Decision
	Contacts  int
	Completed []float64 // redistribution times reported via ResizeComplete
	Ended     bool
}

// Contact pops the next scripted decision.
func (c *ScriptedClient) Contact(ctx context.Context, jobID int, topo grid.Topology, iterTime, redistTime float64) (scheduler.Decision, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	i := c.Contacts
	c.Contacts++
	if i < len(c.Script) {
		return c.Script[i], nil
	}
	return scheduler.Decision{Action: scheduler.ActionNone}, nil
}

// ResizeComplete records the reported cost.
func (c *ScriptedClient) ResizeComplete(ctx context.Context, jobID int, redistTime float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Completed = append(c.Completed, redistTime)
	return nil
}

// JobEnd records completion.
func (c *ScriptedClient) JobEnd(ctx context.Context, jobID int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Ended = true
	return nil
}
