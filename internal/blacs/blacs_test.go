package blacs

import (
	"fmt"
	"testing"

	"repro/internal/grid"
	"repro/internal/mpi"
)

func TestContextGridCoordinates(t *testing.T) {
	err := mpi.Run(6, func(c *mpi.Comm) error {
		ctx, err := New(c, grid.Topology{Rows: 2, Cols: 3})
		if err != nil {
			return err
		}
		wantRow, wantCol := c.Rank()/3, c.Rank()%3
		if !ctx.InGrid || ctx.MyRow != wantRow || ctx.MyCol != wantCol {
			return fmt.Errorf("rank %d: coords (%d,%d), want (%d,%d)",
				c.Rank(), ctx.MyRow, ctx.MyCol, wantRow, wantCol)
		}
		if ctx.Row.Size() != 3 || ctx.Row.Rank() != wantCol {
			return fmt.Errorf("rank %d: row comm %d/%d", c.Rank(), ctx.Row.Size(), ctx.Row.Rank())
		}
		if ctx.Col.Size() != 2 || ctx.Col.Rank() != wantRow {
			return fmt.Errorf("rank %d: col comm %d/%d", c.Rank(), ctx.Col.Size(), ctx.Col.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestContextRanksOutsideGrid(t *testing.T) {
	err := mpi.Run(6, func(c *mpi.Comm) error {
		ctx, err := New(c, grid.Topology{Rows: 2, Cols: 2})
		if err != nil {
			return err
		}
		if c.Rank() >= 4 {
			if ctx.InGrid || ctx.Row != nil || ctx.Col != nil {
				return fmt.Errorf("rank %d should be outside the grid", c.Rank())
			}
			return nil
		}
		if !ctx.InGrid {
			return fmt.Errorf("rank %d should be in the grid", c.Rank())
		}
		// Row broadcast only among grid members.
		v := ctx.Row.BcastInt(0, ctx.MyRow*10)
		if v != ctx.MyRow*10 {
			return fmt.Errorf("rank %d: row bcast got %d", c.Rank(), v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestContextRowColumnIndependence(t *testing.T) {
	err := mpi.Run(4, func(c *mpi.Comm) error {
		ctx, err := New(c, grid.Topology{Rows: 2, Cols: 2})
		if err != nil {
			return err
		}
		rowSum := ctx.Row.AllreduceSum(float64(c.Rank()))
		colSum := ctx.Col.AllreduceSum(float64(c.Rank()))
		wantRow := float64(ctx.MyRow*2*2 + 1) // ranks r*2 and r*2+1
		wantCol := float64(ctx.MyCol*2 + 2)   // ranks c and c+2
		if rowSum != wantRow || colSum != wantCol {
			return fmt.Errorf("rank %d: sums %v/%v want %v/%v", c.Rank(), rowSum, colSum, wantRow, wantCol)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestContextValidation(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		if _, err := New(c, grid.Topology{Rows: 2, Cols: 2}); err == nil {
			return fmt.Errorf("oversized topology accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = mpi.Run(1, func(c *mpi.Comm) error {
		if _, err := New(c, grid.Topology{}); err == nil {
			return fmt.Errorf("invalid topology accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestContextRecreateAfterGrow(t *testing.T) {
	// Mimic the resize flow: 1x2 grid grows to 2x2 after a spawn+merge.
	err := mpi.Run(2, func(c *mpi.Comm) error {
		ctx, err := New(c, grid.Topology{Rows: 1, Cols: 2})
		if err != nil {
			return err
		}
		if ctx.Row.Size() != 2 {
			return fmt.Errorf("initial row size %d", ctx.Row.Size())
		}
		ic := c.Spawn(2, func(child *mpi.Intercomm) error {
			m := child.Merge()
			ctx2, err := New(m, grid.Topology{Rows: 2, Cols: 2})
			if err != nil {
				return err
			}
			if !ctx2.InGrid || ctx2.MyRow != 1 {
				return fmt.Errorf("child coords (%d,%d)", ctx2.MyRow, ctx2.MyCol)
			}
			s := ctx2.Col.AllreduceSum(1)
			if s != 2 {
				return fmt.Errorf("child col sum %v", s)
			}
			return nil
		})
		m := ic.Merge()
		ctx2, err := New(m, grid.Topology{Rows: 2, Cols: 2})
		if err != nil {
			return err
		}
		if ctx2.MyRow != 0 || ctx2.MyCol != c.Rank() {
			return fmt.Errorf("parent coords (%d,%d)", ctx2.MyRow, ctx2.MyCol)
		}
		s := ctx2.Col.AllreduceSum(1)
		if s != 2 {
			return fmt.Errorf("parent col sum %v", s)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRankCoordsRoundTrip(t *testing.T) {
	err := mpi.Run(6, func(c *mpi.Comm) error {
		ctx, err := New(c, grid.Topology{Rows: 3, Cols: 2})
		if err != nil {
			return err
		}
		for rank := 0; rank < 6; rank++ {
			r, col := ctx.Coords(rank)
			if ctx.Rank(r, col) != rank {
				return fmt.Errorf("round trip failed for %d", rank)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
