// Package blacs provides 2-D process-grid contexts on top of the
// message-passing runtime, in the spirit of the BLACS library that the
// ReSHAPE resizing library is built on. A Context binds a communicator to a
// grid topology and exposes row and column sub-communicators for the
// broadcast patterns used by dense linear algebra (panel broadcasts in LU,
// SUMMA multiplies).
//
// ReSHAPE's resizing protocol maps directly onto this package: expansion
// merges the spawned ranks into a larger communicator and creates a fresh
// Context over the grown grid; shrinking redistributes data to a prefix of
// the ranks, carves a sub-communicator for the survivors, and creates a
// Context over the reduced grid while the remaining ranks exit.
package blacs

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/mpi"
)

// Context is a BLACS-style grid context. Ranks 0..Grid.Count()-1 of the
// communicator form the grid in row-major order; higher ranks are outside
// the grid (InGrid false, Row/Col nil) but still participate in context
// creation, mirroring BLACS processes outside a grid.
type Context struct {
	Comm   *mpi.Comm
	Grid   grid.Topology
	MyRow  int
	MyCol  int
	InGrid bool
	Row    *mpi.Comm // spans my grid row; rank within it is MyCol
	Col    *mpi.Comm // spans my grid column; rank within it is MyRow
}

// New creates a grid context over the first topo.Count() ranks of c.
// Collective: every rank of c must call it with the same topology.
func New(c *mpi.Comm, topo grid.Topology) (*Context, error) {
	if !topo.IsValid() {
		return nil, fmt.Errorf("blacs: invalid topology %v", topo)
	}
	if topo.Count() > c.Size() {
		return nil, fmt.Errorf("blacs: topology %v needs %d ranks, communicator has %d",
			topo, topo.Count(), c.Size())
	}
	ctx := &Context{Comm: c, Grid: topo}
	me := c.Rank()
	if me < topo.Count() {
		ctx.InGrid = true
		ctx.MyRow = me / topo.Cols
		ctx.MyCol = me % topo.Cols
		ctx.Row = c.Split(ctx.MyRow, ctx.MyCol)
		ctx.Col = c.Split(topo.Rows+ctx.MyCol, ctx.MyRow)
	} else {
		ctx.MyRow, ctx.MyCol = -1, -1
		c.Split(-1, 0) // row split
		c.Split(-1, 0) // col split
	}
	return ctx, nil
}

// Rank returns the communicator rank of grid position (r, c).
func (ctx *Context) Rank(r, c int) int { return r*ctx.Grid.Cols + c }

// Coords returns the grid position of a communicator rank.
func (ctx *Context) Coords(rank int) (r, c int) {
	return rank / ctx.Grid.Cols, rank % ctx.Grid.Cols
}
