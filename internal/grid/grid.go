// Package grid provides processor-topology math for ReSHAPE: nearly-square
// 2-D factorizations, divisibility-constrained configuration enumeration
// (the paper's Table 2), and the expansion rule that adds processors to the
// smallest row or column of an existing topology (§3.1).
package grid

import (
	"fmt"
	"sort"
)

// Topology is a 2-D processor grid with Rows*Cols processors. A 1-D row
// topology has Cols == 1; a 1-D column topology has Rows == 1.
type Topology struct {
	Rows, Cols int
}

// Count returns the number of processors in the topology.
func (t Topology) Count() int { return t.Rows * t.Cols }

// String formats the topology as "RxC".
func (t Topology) String() string { return fmt.Sprintf("%dx%d", t.Rows, t.Cols) }

// IsValid reports whether both dimensions are positive.
func (t Topology) IsValid() bool { return t.Rows >= 1 && t.Cols >= 1 }

// Aspect returns the aspect ratio max(dim)/min(dim) as a float; 1.0 is a
// perfect square.
func (t Topology) Aspect() float64 {
	if !t.IsValid() {
		return 0
	}
	a, b := t.Rows, t.Cols
	if a > b {
		a, b = b, a
	}
	return float64(b) / float64(a)
}

// Normalized returns the topology with Rows <= Cols.
func (t Topology) Normalized() Topology {
	if t.Rows > t.Cols {
		return Topology{t.Cols, t.Rows}
	}
	return t
}

// Row1D returns the 1-D topology with p processors in a single column
// (row-distributed data).
func Row1D(p int) Topology { return Topology{Rows: p, Cols: 1} }

// NearlySquare returns the factorization r x c of p with r <= c minimizing
// c-r (the most-square factor pair).
func NearlySquare(p int) Topology {
	if p <= 0 {
		return Topology{}
	}
	best := Topology{1, p}
	for r := 1; r*r <= p; r++ {
		if p%r == 0 {
			best = Topology{r, p / r}
		}
	}
	return best
}

// Divisors returns the sorted positive divisors of n.
func Divisors(n int) []int {
	if n <= 0 {
		return nil
	}
	var ds []int
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			ds = append(ds, d)
			if d != n/d {
				ds = append(ds, n/d)
			}
		}
	}
	sort.Ints(ds)
	return ds
}

// nextDivisor returns the smallest divisor of n strictly greater than d,
// or 0 if none exists.
func nextDivisor(n, d int) int {
	for _, x := range Divisors(n) {
		if x > d {
			return x
		}
	}
	return 0
}

// Grow applies the paper's expansion rule to a nearly-square topology whose
// dimensions divide the problem size n: the smallest dimension is raised to
// the next divisor of n. The result keeps Rows <= Cols. It returns the same
// topology and false when no further growth is possible.
func Grow(t Topology, n int) (Topology, bool) {
	t = t.Normalized()
	next := nextDivisor(n, t.Rows)
	if next == 0 {
		return t, false
	}
	return Topology{next, t.Cols}.Normalized(), true
}

// GrowthChain enumerates the sequence of 2-D configurations for problem size
// n starting from the given topology, growing by the smallest-dimension rule
// until the processor count would exceed maxProcs. The starting topology is
// included. This reproduces the configuration chains of the paper's Table 2.
func GrowthChain(start Topology, n, maxProcs int) []Topology {
	chain := []Topology{start.Normalized()}
	cur := start.Normalized()
	for {
		next, ok := Grow(cur, n)
		if !ok || next.Count() > maxProcs {
			break
		}
		chain = append(chain, next)
		cur = next
	}
	return chain
}

// SmallestConfig returns the smallest nearly-square topology with at least
// minProcs processors whose dimensions both divide n, or false if none
// exists below or at maxProcs.
func SmallestConfig(n, minProcs, maxProcs int) (Topology, bool) {
	ds := Divisors(n)
	best := Topology{}
	bestCount := maxProcs + 1
	for _, r := range ds {
		if r > maxProcs {
			break
		}
		for _, c := range ds {
			p := r * c
			if p < minProcs || p > maxProcs || p >= bestCount {
				continue
			}
			t := Topology{r, c}.Normalized()
			if p < bestCount || (p == bestCount && t.Aspect() < best.Aspect()) {
				best, bestCount = t, p
			}
		}
	}
	return best, best.IsValid()
}

// Chain1D enumerates 1-D processor counts that divide n, between minProcs
// and maxProcs, in increasing order. Used by row/column-distributed and
// unconstrained applications.
func Chain1D(n, minProcs, maxProcs int) []int {
	var out []int
	for _, d := range Divisors(n) {
		if d >= minProcs && d <= maxProcs {
			out = append(out, d)
		}
	}
	return out
}

// Configurations enumerates all nearly-square-preferring topologies for
// problem size n with total processors in [minProcs, maxProcs], where each
// dimension divides n and the aspect ratio is at most maxAspect. One
// topology (the most square) is returned per processor count, sorted by
// count. This generates the paper's Table 2 rows.
func Configurations(n, minProcs, maxProcs int, maxAspect float64) []Topology {
	ds := Divisors(n)
	byCount := make(map[int]Topology)
	for _, r := range ds {
		for _, c := range ds {
			t := Topology{r, c}.Normalized()
			p := t.Count()
			if p < minProcs || p > maxProcs {
				continue
			}
			if t.Aspect() > maxAspect {
				continue
			}
			if prev, ok := byCount[p]; !ok || t.Aspect() < prev.Aspect() {
				byCount[p] = t
			}
		}
	}
	counts := make([]int, 0, len(byCount))
	for p := range byCount {
		counts = append(counts, p)
	}
	sort.Ints(counts)
	out := make([]Topology, len(counts))
	for i, p := range counts {
		out[i] = byCount[p]
	}
	return out
}
