package grid

import (
	"testing"
	"testing/quick"
)

func TestNearlySquare(t *testing.T) {
	cases := []struct {
		p    int
		want Topology
	}{
		{1, Topology{1, 1}},
		{2, Topology{1, 2}},
		{4, Topology{2, 2}},
		{6, Topology{2, 3}},
		{9, Topology{3, 3}},
		{12, Topology{3, 4}},
		{20, Topology{4, 5}},
		{36, Topology{6, 6}},
		{40, Topology{5, 8}},
		{48, Topology{6, 8}},
		{7, Topology{1, 7}},
	}
	for _, c := range cases {
		if got := NearlySquare(c.p); got != c.want {
			t.Errorf("NearlySquare(%d) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNearlySquareInvalid(t *testing.T) {
	if got := NearlySquare(0); got.IsValid() {
		t.Errorf("NearlySquare(0) = %v, want invalid", got)
	}
}

func TestNearlySquareProperty(t *testing.T) {
	f := func(raw uint16) bool {
		p := int(raw%5000) + 1
		topo := NearlySquare(p)
		return topo.Count() == p && topo.Rows <= topo.Cols
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDivisors(t *testing.T) {
	got := Divisors(12)
	want := []int{1, 2, 3, 4, 6, 12}
	if len(got) != len(want) {
		t.Fatalf("Divisors(12) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Divisors(12) = %v, want %v", got, want)
		}
	}
	if Divisors(0) != nil {
		t.Error("Divisors(0) should be nil")
	}
}

func TestDivisorsProperty(t *testing.T) {
	f := func(raw uint16) bool {
		n := int(raw%2000) + 1
		ds := Divisors(n)
		// sorted, all divide, includes 1 and n
		if ds[0] != 1 || ds[len(ds)-1] != n {
			return false
		}
		for i, d := range ds {
			if n%d != 0 {
				return false
			}
			if i > 0 && ds[i-1] >= d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAspect(t *testing.T) {
	if a := (Topology{2, 4}).Aspect(); a != 2 {
		t.Errorf("Aspect(2x4) = %v", a)
	}
	if a := (Topology{4, 2}).Aspect(); a != 2 {
		t.Errorf("Aspect(4x2) = %v", a)
	}
	if a := (Topology{3, 3}).Aspect(); a != 1 {
		t.Errorf("Aspect(3x3) = %v", a)
	}
}

// chainEq compares a chain against expected "RxC" strings.
func chainEq(t *testing.T, got []Topology, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("chain %v, want %v", got, want)
	}
	for i := range want {
		if got[i].String() != want[i] {
			t.Fatalf("chain[%d] = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

// The paper's Table 2 configuration chains for LU/MM problem sizes.
func TestGrowthChainMatchesTable2For8000(t *testing.T) {
	chain := GrowthChain(Topology{1, 2}, 8000, 50)
	chainEq(t, chain, []string{"1x2", "2x2", "2x4", "4x4", "4x5", "5x5", "5x8"})
}

func TestGrowthChainMatchesTable2For12000(t *testing.T) {
	chain := GrowthChain(Topology{1, 2}, 12000, 50)
	chainEq(t, chain, []string{"1x2", "2x2", "2x3", "3x3", "3x4", "4x4", "4x5", "5x5", "5x6", "6x6", "6x8"})
}

func TestGrowthChainMatchesTable2For14000(t *testing.T) {
	chain := GrowthChain(Topology{2, 2}, 14000, 50)
	chainEq(t, chain, []string{"2x2", "2x4", "4x4", "4x5", "5x5", "5x7", "7x7"})
}

func TestGrowthChainMatchesTable2For16000And20000(t *testing.T) {
	for _, n := range []int{16000, 20000} {
		chain := GrowthChain(Topology{2, 2}, n, 50)
		chainEq(t, chain, []string{"2x2", "2x4", "4x4", "4x5", "5x5", "5x8"})
	}
}

func TestGrowthChainFor24000(t *testing.T) {
	chain := GrowthChain(Topology{2, 4}, 24000, 50)
	chainEq(t, chain, []string{"2x4", "3x4", "4x4", "4x5", "5x5", "5x6", "6x6", "6x8"})
}

func TestGrowthChainFor21000(t *testing.T) {
	// Table 2 lists 2x2, 2x3, 3x3, 3x4, 4x5, 5x5, ... (4x4 missing, likely a
	// paper typo); the smallest-dimension rule inserts 4x4 between 3x4 and
	// 4x5, matching every other chain's structure.
	chain := GrowthChain(Topology{2, 2}, 21000, 50)
	chainEq(t, chain, []string{"2x2", "2x3", "3x3", "3x4", "4x4", "4x5", "5x5", "5x6", "6x6", "6x7", "7x7"})
}

func TestGrowMonotone(t *testing.T) {
	f := func(rawN, rawR uint16) bool {
		n := int(rawN%5000) + 2
		ds := Divisors(n)
		r := ds[int(rawR)%len(ds)]
		start := Topology{r, r}
		next, ok := Grow(start, n)
		if !ok {
			return true
		}
		// growth increases the count, keeps normalized form, and both
		// dimensions still divide n
		return next.Count() > start.Count() &&
			next.Rows <= next.Cols &&
			n%next.Rows == 0 && n%next.Cols == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChain1D(t *testing.T) {
	got := Chain1D(8192, 2, 32)
	want := []int{2, 4, 8, 16, 32}
	if len(got) != len(want) {
		t.Fatalf("Chain1D(8192) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Chain1D(8192) = %v, want %v", got, want)
		}
	}
}

func TestSmallestConfig(t *testing.T) {
	topo, ok := SmallestConfig(12000, 2, 50)
	if !ok || topo.String() != "1x2" {
		t.Errorf("SmallestConfig(12000, 2) = %v/%v", topo, ok)
	}
	topo, ok = SmallestConfig(24000, 8, 50)
	if !ok || topo.Count() != 8 {
		t.Errorf("SmallestConfig(24000, 8) = %v/%v", topo, ok)
	}
	if _, ok := SmallestConfig(5, 26, 50); ok {
		t.Error("SmallestConfig(5, 26, 50) should not exist (combos are 1, 5, 25)")
	}
}

func TestConfigurationsDivisibility(t *testing.T) {
	for _, cfg := range Configurations(12000, 2, 50, 2.0) {
		if 12000%cfg.Rows != 0 || 12000%cfg.Cols != 0 {
			t.Errorf("config %v does not divide 12000", cfg)
		}
		if cfg.Aspect() > 2.0 {
			t.Errorf("config %v exceeds aspect limit", cfg)
		}
	}
}

func TestConfigurationsSortedUniqueCounts(t *testing.T) {
	cfgs := Configurations(8000, 2, 50, 2.0)
	for i := 1; i < len(cfgs); i++ {
		if cfgs[i].Count() <= cfgs[i-1].Count() {
			t.Errorf("configs not strictly increasing: %v", cfgs)
		}
	}
}

func TestRow1D(t *testing.T) {
	r := Row1D(8)
	if r.Rows != 8 || r.Cols != 1 || r.Count() != 8 {
		t.Errorf("Row1D(8) = %v", r)
	}
}

func TestNormalized(t *testing.T) {
	if got := (Topology{8, 2}).Normalized(); got != (Topology{2, 8}) {
		t.Errorf("Normalized(8x2) = %v", got)
	}
}
