package reshape_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/reshape"
	"repro/internal/rpc"
	"repro/internal/scheduler"
)

func startDaemon(t *testing.T, procs int) (*scheduler.Server, *rpc.Server) {
	t.Helper()
	sched := scheduler.NewServer(procs, true, nil)
	srv, err := rpc.Serve("127.0.0.1:0", sched)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return sched, srv
}

func TestTypedCallsOverV2(t *testing.T) {
	ctx := context.Background()
	_, srv := startDaemon(t, 8)
	cl, err := reshape.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	id, err := cl.Submit(ctx, scheduler.JobSpec{
		Name: "lu", App: "lu", ProblemSize: 12000, Iterations: 10,
		InitialTopo: grid.Topology{Rows: 1, Cols: 2},
		Chain:       grid.GrowthChain(grid.Topology{Rows: 1, Cols: 2}, 12000, 8),
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := cl.Contact(ctx, id, grid.Topology{Rows: 1, Cols: 2}, 129.63, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Action != scheduler.ActionExpand {
		t.Fatalf("decision %+v", d)
	}
	if err := cl.ResizeComplete(ctx, id, 8.0); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 8 || len(st.Jobs) != 1 || st.Jobs[0].State != "running" {
		t.Fatalf("status %+v", st)
	}
	if err := cl.JobEnd(ctx, id); err != nil {
		t.Fatal(err)
	}
	if err := cl.Wait(ctx, id); err != nil {
		t.Fatal(err)
	}
	// App-level errors come back typed through the multiplexed path.
	if _, err := cl.Contact(ctx, 999, grid.Row1D(1), 1, 0); err == nil ||
		!strings.Contains(err.Error(), "unknown job") {
		t.Fatalf("err %v", err)
	}
	if cl.Dials() != 1 {
		t.Fatalf("dials = %d, want 1 multiplexed connection", cl.Dials())
	}
}

// TestConcurrentClientsHammerDaemon drives one daemon from many clients,
// each running several goroutines that interleave submit, contact,
// resize-complete and job-end — the ISSUE's N-clients race test. Run under
// -race in CI.
func TestConcurrentClientsHammerDaemon(t *testing.T) {
	const (
		clients    = 4
		perClient  = 4
		iterations = 6
	)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sched, srv := startDaemon(t, 64)

	var wg sync.WaitGroup
	errCh := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		cl, err := reshape.Dial(srv.Addr(), reshape.WithPoolSize(2))
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		for g := 0; g < perClient; g++ {
			wg.Add(1)
			go func(cl *reshape.Client, tag string) {
				defer wg.Done()
				if err := hammer(ctx, cl, tag, iterations); err != nil {
					errCh <- err
				}
			}(cl, fmt.Sprintf("c%d-g%d", c, g))
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	st, err := sched.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Free != st.Total || st.QueueLen != 0 {
		t.Fatalf("pool not drained: %+v", st)
	}
	for _, j := range st.Jobs {
		if j.State != "done" {
			t.Errorf("job %s state %s", j.Name, j.State)
		}
	}
}

// hammer runs one job through its lifecycle over the wire: submit, wait
// for it to leave the queue, a few resize contacts (actuating any grants),
// then job-end.
func hammer(ctx context.Context, cl *reshape.Client, tag string, iterations int) error {
	start := grid.Row1D(2)
	id, err := cl.Submit(ctx, scheduler.JobSpec{
		Name: tag, App: "mw", Iterations: iterations,
		InitialTopo: start, Chain: []grid.Topology{grid.Row1D(2), grid.Row1D(4)},
	})
	if err != nil {
		return fmt.Errorf("%s submit: %w", tag, err)
	}
	cur := start
	for i := 0; i < iterations; {
		d, err := cl.Contact(ctx, id, cur, 0.01, 0)
		if err != nil {
			if strings.Contains(err.Error(), "while queued") {
				// Not started yet: a competing job holds the pool.
				select {
				case <-ctx.Done():
					return fmt.Errorf("%s: starved in queue", tag)
				case <-time.After(time.Millisecond):
				}
				continue
			}
			return fmt.Errorf("%s contact: %w", tag, err)
		}
		i++
		if d.Action == scheduler.ActionExpand || d.Action == scheduler.ActionShrink {
			cur = d.Target
			if err := cl.ResizeComplete(ctx, id, 0.001); err != nil {
				return fmt.Errorf("%s resize-complete: %w", tag, err)
			}
		}
	}
	if err := cl.JobEnd(ctx, id); err != nil {
		return fmt.Errorf("%s job-end: %w", tag, err)
	}
	return cl.Wait(ctx, id)
}

// TestReconnectAndResubscribeAfterRestart kills the daemon under a live
// client and brings a fresh one up on the same address: unary calls must
// recover via redial, and the Watch subscription must resubscribe and keep
// delivering events without a new Watch call.
func TestReconnectAndResubscribeAfterRestart(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	sched1 := scheduler.NewServer(8, true, nil)
	srv1, err := rpc.Serve("127.0.0.1:0", sched1)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv1.Addr()

	cl, err := reshape.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	sub, err := cl.Watch(ctx, scheduler.AllJobs)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()
	waitWatchRegistered(t, srv1)

	id1, err := cl.Submit(ctx, scheduler.JobSpec{
		Name: "before", App: "mw", Iterations: 1,
		InitialTopo: grid.Row1D(2), Chain: []grid.Topology{grid.Row1D(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	expectEvent(t, sub, "start", "before")
	_ = id1

	// Daemon restart: state is lost, address survives.
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	sched2 := scheduler.NewServer(8, true, nil)
	var srv2 *rpc.Server
	for i := 0; ; i++ {
		srv2, err = rpc.Serve(addr, sched2)
		if err == nil {
			break
		}
		if i > 100 {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	defer srv2.Close()

	// The watch loop must find the new daemon and resubscribe on its own.
	waitWatchRegistered(t, srv2)

	// Unary traffic recovers through redial on the same client…
	id2 := submitWithRetry(t, ctx, cl, scheduler.JobSpec{
		Name: "after", App: "mw", Iterations: 1,
		InitialTopo: grid.Row1D(2), Chain: []grid.Topology{grid.Row1D(2)},
	})
	// …and the original subscription streams the new daemon's events.
	expectEvent(t, sub, "start", "after")
	if err := cl.JobEnd(ctx, id2); err != nil {
		t.Fatal(err)
	}
	expectEvent(t, sub, "end", "after")

	if cl.Dials() < 2 {
		t.Fatalf("dials = %d, want a reconnect", cl.Dials())
	}
	sub.Cancel()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-sub.C:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("stream not closed after cancel")
		}
	}
}

func waitWatchRegistered(t *testing.T, srv *rpc.Server) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for srv.Stats().Watches == 0 {
		select {
		case <-deadline:
			t.Fatal("watch never registered on server")
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
}

func expectEvent(t *testing.T, sub *scheduler.Subscription, kind, job string) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case ev, ok := <-sub.C:
			if !ok {
				t.Fatalf("stream closed while waiting for %s/%s", kind, job)
			}
			if ev.Kind == kind && ev.Job == job {
				return
			}
		case <-deadline:
			t.Fatalf("no %s event for %s", kind, job)
		}
	}
}

func submitWithRetry(t *testing.T, ctx context.Context, cl *reshape.Client, spec scheduler.JobSpec) int {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		id, err := cl.Submit(ctx, spec)
		if err == nil {
			return id
		}
		select {
		case <-deadline:
			t.Fatalf("submit never recovered: %v", err)
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func TestCallContextCancellation(t *testing.T) {
	_, srv := startDaemon(t, 4)
	cl, err := reshape.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	id, err := cl.Submit(context.Background(), scheduler.JobSpec{
		Name: "j", App: "mw", Iterations: 1,
		InitialTopo: grid.Row1D(2), Chain: []grid.Topology{grid.Row1D(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = cl.Wait(ctx, id)
	if err == nil {
		t.Fatal("Wait should fail on deadline")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatalf("Wait ignored deadline")
	}
	// The connection must remain usable after the cancelled call.
	if _, err := cl.Status(context.Background()); err != nil {
		t.Fatalf("status after cancelled wait: %v", err)
	}
	if cl.Dials() != 1 {
		t.Fatalf("dials = %d; cancellation must not burn the connection", cl.Dials())
	}
}
