// Package reshape is the typed client for the scheduler's rpc/v2 wire
// protocol: persistent multiplexed connections, pipelined concurrent
// requests, context deadlines/cancellation on every call, and a streaming
// Watch subscription with automatic reconnect-and-resubscribe.
//
// The Client implements resize.Scheduler (and therefore resize.Client), so
// applications, tools and tests swap freely between an in-process
// scheduler.Server, the v1 reference rpc.Client and this client — in
// particular it plugs straight into the application SDK's
// reshape.WithScheduler option (pkg/reshape), letting an App resize
// against a remote reshaped daemon exactly as it would in process.
//
// Not to be confused with pkg/reshape, the public application SDK: this
// package is the wire transport; the SDK is the programming model.
package reshape
