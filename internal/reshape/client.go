package reshape

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/grid"
	"repro/internal/resize"
	"repro/internal/rpc"
	"repro/internal/scheduler"
)

// Client talks rpc/v2 to a reshaped daemon over a small pool of
// multiplexed connections. All methods are safe for concurrent use; one
// Client is meant to be shared process-wide.
type Client struct {
	addr        string
	poolSize    int
	dialTimeout time.Duration
	tenant      string
	logf        func(format string, args ...any)

	mu     sync.Mutex
	conns  []*conn // fixed-size slot array; nil/dead slots redial lazily
	rr     int
	closed bool

	// dials counts TCP connections established over the client's lifetime
	// (reconnects included) — the "conns/op" numerator in benchmarks.
	dials int
}

var _ resize.Scheduler = (*Client)(nil)

// Option configures Dial.
type Option func(*Client)

// WithPoolSize sets how many multiplexed connections the client spreads
// requests over (default 1; a single v2 connection already pipelines).
func WithPoolSize(n int) Option {
	return func(c *Client) {
		if n > 0 {
			c.poolSize = n
		}
	}
}

// WithDialTimeout bounds each connection attempt (default 10s).
func WithDialTimeout(d time.Duration) Option {
	return func(c *Client) { c.dialTimeout = d }
}

// WithLogf installs a hook for client-side transport events (reconnects,
// dropped subscriptions). The default discards them.
func WithLogf(logf func(format string, args ...any)) Option {
	return func(c *Client) { c.logf = logf }
}

// WithTenant sets the tenant identity stamped on every request the client
// sends: the server's admission control attributes quota to it, and jobs
// submitted with no Spec.Tenant of their own are tagged with it.
func WithTenant(tenant string) Option {
	return func(c *Client) { c.tenant = tenant }
}

// Dial creates a client for the daemon at addr and establishes the first
// connection eagerly so configuration errors surface immediately.
func Dial(addr string, opts ...Option) (*Client, error) {
	c := &Client{
		addr:        addr,
		poolSize:    1,
		dialTimeout: 10 * time.Second,
		logf:        func(string, ...any) {},
	}
	for _, o := range opts {
		o(c)
	}
	c.conns = make([]*conn, c.poolSize)
	if _, err := c.getConn(); err != nil {
		return nil, err
	}
	return c, nil
}

// Close severs every connection; in-flight calls fail and watch streams
// close.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	conns := append([]*conn(nil), c.conns...)
	c.mu.Unlock()
	for _, cn := range conns {
		if cn != nil {
			cn.fail(fmt.Errorf("reshape: client closed"))
		}
	}
	return nil
}

// Dials reports how many TCP connections the client has established since
// creation (1 per pool slot plus reconnects).
func (c *Client) Dials() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dials
}

// getConn returns a live pooled connection (round-robin), redialing dead
// slots.
func (c *Client) getConn() (*conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("reshape: client closed")
	}
	slot := c.rr % len(c.conns)
	c.rr++
	if cn := c.conns[slot]; cn != nil && !cn.isDead() {
		c.mu.Unlock()
		return cn, nil
	}
	c.mu.Unlock()

	nc, err := net.DialTimeout("tcp", c.addr, c.dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("reshape: dial %s: %w", c.addr, err)
	}
	if _, err := nc.Write([]byte{rpc.MagicV2}); err != nil {
		nc.Close()
		return nil, fmt.Errorf("reshape: handshake %s: %w", c.addr, err)
	}
	cn := &conn{
		client:  c,
		nc:      nc,
		fw:      rpc.NewFrameWriter(nc),
		deadCh:  make(chan struct{}),
		pending: make(map[uint64]*pendingReq),
	}
	go cn.readLoop()

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		cn.failAsync(fmt.Errorf("reshape: client closed"))
		return nil, fmt.Errorf("reshape: client closed")
	}
	c.dials++
	if old := c.conns[slot]; old != nil && !old.isDead() {
		// A concurrent caller repaired the slot first; keep theirs.
		cn.failAsync(fmt.Errorf("reshape: duplicate connection"))
		return old, nil
	}
	c.conns[slot] = cn
	return cn, nil
}

// pendingReq routes one request's replies from the read loop to its
// caller. Watch requests receive many replies, so the channel is buffered
// and the entry stays registered until a Final reply. Connection death is
// signalled out of band (conn.deadCh), so a full reply buffer can never
// swallow the failure notification.
type pendingReq struct {
	ch chan result
	// onDrop, when set (streams), counts replies discarded because ch was
	// full; unary requests leave it nil.
	onDrop func()
}

type result struct {
	reply rpc.Reply
}

// conn is one multiplexed v2 connection.
type conn struct {
	client *Client
	nc     net.Conn
	fw     *rpc.FrameWriter
	// deadCh is closed when the connection dies; consumers select on it
	// alongside their reply channel.
	deadCh chan struct{}

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	pending map[uint64]*pendingReq
	nextID  uint64
	dead    bool
	err     error
}

func (cn *conn) isDead() bool {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.dead
}

// deadErr returns the error the connection died with.
func (cn *conn) deadErr() error {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if cn.err != nil {
		return cn.err
	}
	return fmt.Errorf("reshape: connection closed")
}

// fail marks the connection dead (exactly once) and wakes every pending
// request via deadCh.
func (cn *conn) fail(err error) {
	cn.mu.Lock()
	if cn.dead {
		cn.mu.Unlock()
		return
	}
	cn.dead = true
	cn.err = err
	cn.pending = make(map[uint64]*pendingReq)
	cn.mu.Unlock()
	_ = cn.nc.Close()
	close(cn.deadCh)
}

// failAsync is fail for callers holding the client mutex.
func (cn *conn) failAsync(err error) { go cn.fail(err) }

func (cn *conn) readLoop() {
	fr := rpc.NewFrameReader(cn.nc)
	for {
		var r rpc.Reply
		if err := fr.Read(&r); err != nil {
			cn.fail(fmt.Errorf("reshape: connection lost: %w", err))
			return
		}
		cn.mu.Lock()
		p := cn.pending[r.ID]
		if p != nil && r.Final {
			delete(cn.pending, r.ID)
		}
		cn.mu.Unlock()
		if p == nil {
			continue // reply for a cancelled/abandoned request
		}
		select {
		case p.ch <- result{reply: r}:
		default:
			// The consumer's buffer is full (lagging watch): drop the
			// event rather than stall every request on this connection.
			if p.onDrop != nil {
				p.onDrop()
			}
			cn.client.logf("reshape: dropping reply for lagging request %d", r.ID)
		}
	}
}

// register allocates a request ID and routing entry. bufferLen sizes the
// reply channel: 1 for unary calls, larger for streams. onDrop (may be
// nil) is invoked for replies lost to a full buffer.
func (cn *conn) register(bufferLen int, onDrop func()) (uint64, *pendingReq, error) {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if cn.dead {
		return 0, nil, cn.err
	}
	cn.nextID++
	id := cn.nextID
	p := &pendingReq{ch: make(chan result, bufferLen), onDrop: onDrop}
	cn.pending[id] = p
	return id, p, nil
}

func (cn *conn) unregister(id uint64) {
	cn.mu.Lock()
	delete(cn.pending, id)
	cn.mu.Unlock()
}

// send writes one frame. A write failure kills the connection (the peer's
// view of the stream is unknowable), so callers may safely retry on a
// fresh one.
func (cn *conn) send(f rpc.Frame) error {
	cn.wmu.Lock()
	err := cn.fw.Write(f)
	cn.wmu.Unlock()
	if err != nil {
		cn.fail(fmt.Errorf("reshape: write: %w", err))
	}
	return err
}

// cancelRemote tells the server to abort request id (best effort).
func (cn *conn) cancelRemote(id uint64) {
	cancelID, p, err := cn.register(1, nil)
	if err != nil {
		return
	}
	if err := cn.send(rpc.Frame{ID: cancelID, Op: rpc.OpCancel, CancelID: id}); err != nil {
		return
	}
	// Collect the ack asynchronously so cancellation never blocks the
	// caller.
	go func() {
		select {
		case <-p.ch:
		case <-cn.deadCh:
		case <-time.After(5 * time.Second):
			cn.unregister(cancelID)
		}
	}()
}

// ServerError is a scheduler-side failure relayed over the wire, carrying
// the protocol's machine-readable code (rpc.CodeApp, rpc.CodeCancelled…).
// Transport failures are ordinary errors; only ServerError means the
// server actually processed the request.
type ServerError struct {
	Code string
	Msg  string
}

func (e *ServerError) Error() string { return fmt.Sprintf("reshape: server: %s", e.Msg) }

// Is makes errors.Is(err, rpc.ErrOverload) match admission-control sheds
// relayed over the wire (Code rpc.CodeOverload).
func (e *ServerError) Is(target error) bool {
	return target == rpc.ErrOverload && e.Code == rpc.CodeOverload
}

// errServerSide reports whether err came from the scheduler rather than
// the transport (server-side errors must not be retried — the op ran).
func errServerSide(err error) bool {
	var se *ServerError
	return errors.As(err, &se)
}

// call issues a unary request, transparently redialing once if the pooled
// connection was already dead before anything was sent. A failed write is
// retried only for idempotent ops: TCP cannot guarantee the server missed
// a frame whose Write errored locally, so re-sending a mutating op (e.g.
// Submit) could execute it twice.
func (c *Client) call(ctx context.Context, f rpc.Frame, idempotent bool) (rpc.Reply, error) {
	if err := ctx.Err(); err != nil {
		return rpc.Reply{}, err
	}
	if f.Tenant == "" {
		f.Tenant = c.tenant
	}
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		cn, err := c.getConn()
		if err != nil {
			return rpc.Reply{}, err
		}
		id, p, err := cn.register(1, nil)
		if err != nil {
			lastErr = err
			continue // conn was dead before the request existed; redial
		}
		f.ID = id
		if err := cn.send(f); err != nil {
			lastErr = err
			if idempotent {
				continue
			}
			return rpc.Reply{}, err
		}
		finish := func(r rpc.Reply) (rpc.Reply, error) {
			if r.Err != "" {
				return r, &ServerError{Code: r.Code, Msg: r.Err}
			}
			return r, nil
		}
		select {
		case res := <-p.ch:
			return finish(res.reply)
		case <-cn.deadCh:
			// The reply may have been delivered just before death.
			select {
			case res := <-p.ch:
				return finish(res.reply)
			default:
			}
			// The request may have executed before the transport died;
			// surface the error instead of re-running it.
			return rpc.Reply{}, cn.deadErr()
		case <-ctx.Done():
			cn.unregister(id)
			cn.cancelRemote(id)
			return rpc.Reply{}, ctx.Err()
		}
	}
	return rpc.Reply{}, lastErr
}

// Submit enqueues a job and returns its id.
func (c *Client) Submit(ctx context.Context, spec scheduler.JobSpec) (int, error) {
	r, err := c.call(ctx, rpc.Frame{Op: rpc.OpSubmit, Spec: spec}, false)
	return r.JobID, err
}

// Contact implements resize.Client over rpc/v2.
func (c *Client) Contact(ctx context.Context, jobID int, topo grid.Topology, iterTime, redistTime float64) (scheduler.Decision, error) {
	r, err := c.call(ctx, rpc.Frame{
		Op: rpc.OpContact, JobID: jobID, Topo: topo, IterTime: iterTime, RedistTime: redistTime,
	}, false)
	return r.Decision, err
}

// ResizeComplete implements resize.Client over rpc/v2.
func (c *Client) ResizeComplete(ctx context.Context, jobID int, redistTime float64) error {
	_, err := c.call(ctx, rpc.Frame{Op: rpc.OpResizeComplete, JobID: jobID, RedistTime: redistTime}, false)
	return err
}

// JobEnd implements resize.Client over rpc/v2.
func (c *Client) JobEnd(ctx context.Context, jobID int) error {
	_, err := c.call(ctx, rpc.Frame{Op: rpc.OpJobEnd, JobID: jobID}, false)
	return err
}

// JobError reports an application failure (the application monitor's
// job-error signal): the job is deleted and its resources recovered.
func (c *Client) JobError(ctx context.Context, jobID int) error {
	_, err := c.call(ctx, rpc.Frame{Op: rpc.OpJobError, JobID: jobID}, false)
	return err
}

// Status fetches a typed scheduler snapshot.
func (c *Client) Status(ctx context.Context) (scheduler.ClusterStatus, error) {
	r, err := c.call(ctx, rpc.Frame{Op: rpc.OpStatus}, true)
	if err != nil {
		return scheduler.ClusterStatus{}, err
	}
	if r.Status == nil {
		return scheduler.ClusterStatus{}, fmt.Errorf("reshape: status reply missing payload")
	}
	return *r.Status, nil
}

// Wait blocks until the job completes or ctx is done. Unlike v1, the wait
// shares the multiplexed connection instead of pinning its own; transport
// failures are retried (waiting is idempotent) until ctx expires.
func (c *Client) Wait(ctx context.Context, jobID int) error {
	for {
		_, err := c.call(ctx, rpc.Frame{Op: rpc.OpWait, JobID: jobID}, true)
		switch {
		case err == nil:
			return nil
		case ctx.Err() != nil:
			return ctx.Err()
		case errServerSide(err):
			return err
		}
		// Transport hiccup: back off briefly and re-issue.
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// watchStreamBuffer sizes the per-watch reply and delivery channels.
const watchStreamBuffer = 512

// Watch subscribes to job-state transitions (scheduler.AllJobs for the
// whole cluster) as rpc/v2 server push. If the connection drops, the
// client reconnects and resubscribes automatically; the subscription's
// Dropped counter records events lost to consumer lag, and Seq gaps
// reveal events missed across a reconnect. The stream ends when ctx is
// done, Cancel is called, or the client is closed.
func (c *Client) Watch(ctx context.Context, jobID int) (*scheduler.Subscription, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	wctx, cancel := context.WithCancel(ctx)
	out := make(chan scheduler.JobEvent, watchStreamBuffer)
	sub := scheduler.NewSubscription(out, cancel)
	go c.watchLoop(wctx, jobID, out, sub)
	return sub, nil
}

// watchLoop owns one logical subscription across physical reconnects.
func (c *Client) watchLoop(ctx context.Context, jobID int, out chan<- scheduler.JobEvent, sub *scheduler.Subscription) {
	defer close(out)
	backoff := 50 * time.Millisecond
	const maxBackoff = 2 * time.Second
	sleep := func() bool {
		select {
		case <-ctx.Done():
			return false
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > maxBackoff {
			backoff = maxBackoff
		}
		return true
	}
	for ctx.Err() == nil {
		cn, err := c.getConn()
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed || !sleep() {
				return
			}
			continue
		}
		id, p, err := cn.register(watchStreamBuffer, sub.NoteDrop)
		if err != nil {
			if !sleep() {
				return
			}
			continue
		}
		if err := cn.send(rpc.Frame{ID: id, Op: rpc.OpWatch, JobID: jobID, Tenant: c.tenant}); err != nil {
			if !sleep() {
				return
			}
			continue
		}
		if !c.pumpWatch(ctx, cn, id, p, out, sub) {
			return // ctx done: subscription over
		}
		// Transport lost or server ended the stream: resubscribe.
		c.logf("reshape: watch stream lost, resubscribing")
		backoff = 50 * time.Millisecond
		if !sleep() {
			return
		}
	}
}

// pumpWatch forwards one physical stream. It returns false when the
// subscription itself is over (ctx done), true when the stream should be
// re-established.
func (c *Client) pumpWatch(ctx context.Context, cn *conn, id uint64, p *pendingReq, out chan<- scheduler.JobEvent, sub *scheduler.Subscription) bool {
	forward := func(r rpc.Reply) bool {
		if r.Event == nil {
			return true
		}
		select {
		case out <- *r.Event:
		default:
			sub.NoteDrop()
		}
		return true
	}
	for {
		select {
		case <-ctx.Done():
			cn.unregister(id)
			cn.cancelRemote(id)
			return false
		case <-cn.deadCh:
			// Connection died: drain replies delivered before death, then
			// resubscribe elsewhere.
			for {
				select {
				case res := <-p.ch:
					if res.reply.Final {
						return true
					}
					forward(res.reply)
				default:
					return true
				}
			}
		case res := <-p.ch:
			if res.reply.Final {
				return true // server ended the stream (e.g. shutdown)
			}
			forward(res.reply)
		}
	}
}
