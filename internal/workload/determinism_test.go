package workload

import (
	"testing"

	"repro/internal/perfmodel"
	"repro/internal/scheduler"
	"repro/internal/simcluster"
)

// TestGeneratedWorkloadDeterminism: the same generator seed must replay to
// a byte-identical schedule through the event-driven core — the sharded
// pool router, indexed queue and event loop introduce no hidden ordering.
func TestGeneratedWorkloadDeterminism(t *testing.T) {
	params := perfmodel.SystemX()
	jobs, err := Generate(GenConfig{Seed: 11, Jobs: 200, MeanInterarrival: 40, MaxProcs: 32})
	if err != nil {
		t.Fatal(err)
	}
	run := func() *simcluster.Result {
		core := scheduler.NewCoreSharded(128, 4, true)
		res, err := simcluster.New(128, simcluster.Dynamic, params, jobs).WithCore(core).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || a.Utilization != b.Utilization {
		t.Fatalf("summaries differ: %v/%v vs %v/%v", a.Makespan, a.Utilization, b.Makespan, b.Utilization)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	for i := range a.Jobs {
		if a.Jobs[i].End != b.Jobs[i].End || a.Jobs[i].Start != b.Jobs[i].Start {
			t.Fatalf("job %s schedule differs between identical runs", a.Jobs[i].Name)
		}
	}
}

// TestEventCoreMatchesLinearOnPaperWorkloads: both workloads of the paper
// must produce the identical schedule whether driven through the
// event-indexed sharded core or the pre-refactor linear reference.
func TestEventCoreMatchesLinearOnPaperWorkloads(t *testing.T) {
	params := perfmodel.SystemX()
	for _, w := range []struct {
		name string
		jobs []simcluster.JobInput
	}{{"W1", W1()}, {"W2", W2()}} {
		event, err := simcluster.New(ClusterProcs, simcluster.Dynamic, params, w.jobs).Run()
		if err != nil {
			t.Fatalf("%s event: %v", w.name, err)
		}
		linear, err := simcluster.New(ClusterProcs, simcluster.Dynamic, params, w.jobs).
			WithCore(scheduler.NewLinearCore(ClusterProcs, true)).Run()
		if err != nil {
			t.Fatalf("%s linear: %v", w.name, err)
		}
		if event.Makespan != linear.Makespan || event.Utilization != linear.Utilization {
			t.Fatalf("%s: makespan/util diverge: %v/%v vs %v/%v", w.name,
				event.Makespan, event.Utilization, linear.Makespan, linear.Utilization)
		}
		if len(event.Events) != len(linear.Events) {
			t.Fatalf("%s: event counts %d vs %d", w.name, len(event.Events), len(linear.Events))
		}
		for i := range event.Events {
			if event.Events[i] != linear.Events[i] {
				t.Fatalf("%s: trace diverges at %d: %+v vs %+v", w.name, i,
					event.Events[i], linear.Events[i])
			}
		}
	}
}
