package workload

import (
	"testing"

	"repro/internal/perfmodel"
	"repro/internal/simcluster"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Seed: 42, Jobs: 12, MeanInterarrival: 200, MaxProcs: 36}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 12 || len(b) != 12 {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i].Spec.Name != b[i].Spec.Name || a[i].Arrival != b[i].Arrival {
			t.Fatalf("job %d differs between runs", i)
		}
	}
}

func TestGenerateArrivalsMonotone(t *testing.T) {
	jobs, err := Generate(GenConfig{Seed: 7, Jobs: 20, MeanInterarrival: 100, MaxProcs: 36})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Arrival < jobs[i-1].Arrival {
			t.Fatalf("arrivals not monotone at %d", i)
		}
	}
	for _, j := range jobs {
		if len(j.Spec.Chain) == 0 {
			t.Fatalf("%s: empty chain", j.Spec.Name)
		}
		if j.Spec.InitialTopo.Count() > 36 {
			t.Fatalf("%s: initial %v too large", j.Spec.Name, j.Spec.InitialTopo)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenConfig{Jobs: 0}); err == nil {
		t.Fatal("zero jobs accepted")
	}
}

func TestGeneratedMixRunsUnderBothModes(t *testing.T) {
	jobs, err := Generate(GenConfig{Seed: 3, Jobs: 10, MeanInterarrival: 300, MaxProcs: 36})
	if err != nil {
		t.Fatal(err)
	}
	p := perfmodel.SystemX()
	for _, mode := range []simcluster.Mode{simcluster.Static, simcluster.Dynamic} {
		res, err := simcluster.New(36, mode, p, jobs).Run()
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if len(res.Jobs) != 10 {
			t.Fatalf("mode %v: %d jobs finished", mode, len(res.Jobs))
		}
	}
}

func TestLoadSweepShapes(t *testing.T) {
	p := perfmodel.SystemX()
	points, err := LoadSweep(36, p, 10, 11, []float64{100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("%d points", len(points))
	}
	for _, pt := range points {
		if pt.DynamicUtil <= 0 || pt.DynamicUtil > 1 {
			t.Errorf("ia=%v: dynamic util %v", pt.MeanInterarrival, pt.DynamicUtil)
		}
		if pt.StaticMeanTurn <= 0 || pt.DynamicMeanTurn <= 0 {
			t.Errorf("ia=%v: non-positive turnarounds", pt.MeanInterarrival)
		}
	}
	// At sparse arrivals (light load) dynamic scheduling must raise
	// utilization: idle processors get absorbed by running jobs.
	light := points[1]
	if light.DynamicUtil <= light.StaticUtil {
		t.Errorf("light load: dynamic util %.3f <= static %.3f",
			light.DynamicUtil, light.StaticUtil)
	}
}
