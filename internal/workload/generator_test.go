package workload

import (
	"testing"

	"repro/internal/perfmodel"
	"repro/internal/simcluster"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Seed: 42, Jobs: 12, MeanInterarrival: 200, MaxProcs: 36}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 12 || len(b) != 12 {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i].Spec.Name != b[i].Spec.Name || a[i].Arrival != b[i].Arrival {
			t.Fatalf("job %d differs between runs", i)
		}
	}
}

func TestGenerateArrivalsMonotone(t *testing.T) {
	jobs, err := Generate(GenConfig{Seed: 7, Jobs: 20, MeanInterarrival: 100, MaxProcs: 36})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Arrival < jobs[i-1].Arrival {
			t.Fatalf("arrivals not monotone at %d", i)
		}
	}
	for _, j := range jobs {
		if len(j.Spec.Chain) == 0 {
			t.Fatalf("%s: empty chain", j.Spec.Name)
		}
		if j.Spec.InitialTopo.Count() > 36 {
			t.Fatalf("%s: initial %v too large", j.Spec.Name, j.Spec.InitialTopo)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenConfig{Jobs: 0}); err == nil {
		t.Fatal("zero jobs accepted")
	}
	if _, err := Generate(GenConfig{Tenants: []TenantSpec{{Jobs: 3, MeanInterarrival: 10}}}); err == nil {
		t.Fatal("unnamed tenant accepted")
	}
	if _, err := Generate(GenConfig{Tenants: []TenantSpec{{Name: "a"}}}); err == nil {
		t.Fatal("tenant with no job count or interarrival accepted")
	}
}

// TestGenerateMultiTenantDeterministic: the same seed must reproduce the
// merged multi-tenant mix byte for byte across every arrival pattern —
// names, tenants, priorities and arrival instants.
func TestGenerateMultiTenantDeterministic(t *testing.T) {
	cfg := GenConfig{
		Seed: 42, MaxProcs: 36, PriorityLevels: 3,
		Tenants: []TenantSpec{
			{Name: "steady", Jobs: 30, MeanInterarrival: 100},
			{Name: "bursty", Jobs: 30, MeanInterarrival: 100, Pattern: Bursty, Burst: 6, BurstFactor: 20},
			{Name: "diurnal", Jobs: 30, MeanInterarrival: 100, Pattern: Diurnal, Period: 3600, Amplitude: 0.9},
		},
	}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 90 || len(b) != 90 {
		t.Fatalf("lengths %d/%d, want 90", len(a), len(b))
	}
	counts := map[string]int{}
	for i := range a {
		x, y := a[i], b[i]
		if x.Spec.Name != y.Spec.Name || x.Spec.Tenant != y.Spec.Tenant ||
			x.Spec.Priority != y.Spec.Priority || x.Arrival != y.Arrival {
			t.Fatalf("job %d differs between identical runs: %+v vs %+v", i, x.Spec, y.Spec)
		}
		if i > 0 && a[i].Arrival < a[i-1].Arrival {
			t.Fatalf("merged arrivals not monotone at %d", i)
		}
		counts[x.Spec.Tenant]++
	}
	for _, tenant := range []string{"steady", "bursty", "diurnal"} {
		if counts[tenant] != 30 {
			t.Fatalf("tenant %q has %d jobs, want 30", tenant, counts[tenant])
		}
	}
}

// TestGenerateBurstyClumps: the bursty pattern must actually clump — the
// median intra-burst gap sits well below the long inter-burst gaps.
func TestGenerateBurstyClumps(t *testing.T) {
	jobs, err := Generate(GenConfig{Seed: 7, MaxProcs: 36, Tenants: []TenantSpec{
		{Name: "n", Jobs: 60, MeanInterarrival: 100, Pattern: Bursty, Burst: 6, BurstFactor: 20},
	}})
	if err != nil {
		t.Fatal(err)
	}
	var intra, inter []float64
	for i := 1; i < len(jobs); i++ {
		gap := jobs[i].Arrival - jobs[i-1].Arrival
		if i%6 == 0 {
			inter = append(inter, gap)
		} else {
			intra = append(intra, gap)
		}
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(intra)*10 > mean(inter) {
		t.Fatalf("bursts not clumped: intra mean %.1f vs inter mean %.1f", mean(intra), mean(inter))
	}
}

// TestGenerateMultiTenantRunsAndRollsUp: a three-tenant mix drives the
// simulator end to end and the per-tenant result metrics see every tenant.
func TestGenerateMultiTenantRunsAndRollsUp(t *testing.T) {
	jobs, err := Generate(GenConfig{Seed: 3, MaxProcs: 36, Tenants: []TenantSpec{
		{Name: "a", Jobs: 5, MeanInterarrival: 300},
		{Name: "b", Jobs: 5, MeanInterarrival: 300, Pattern: Bursty},
		{Name: "c", Jobs: 5, MeanInterarrival: 300, Pattern: Diurnal},
	}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := simcluster.New(36, simcluster.Dynamic, perfmodel.SystemX(), jobs).Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Tenants(); len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("result tenants %v, want [a b c]", got)
	}
	for _, tenant := range []string{"a", "b", "c"} {
		if res.TenantQueueWaitP99(tenant) < res.TenantMeanQueueWait(tenant) &&
			res.TenantMeanQueueWait(tenant) > 0 {
			t.Fatalf("tenant %q: p99 %.1f below mean %.1f", tenant,
				res.TenantQueueWaitP99(tenant), res.TenantMeanQueueWait(tenant))
		}
	}
}

func TestGeneratedMixRunsUnderBothModes(t *testing.T) {
	jobs, err := Generate(GenConfig{Seed: 3, Jobs: 10, MeanInterarrival: 300, MaxProcs: 36})
	if err != nil {
		t.Fatal(err)
	}
	p := perfmodel.SystemX()
	for _, mode := range []simcluster.Mode{simcluster.Static, simcluster.Dynamic} {
		res, err := simcluster.New(36, mode, p, jobs).Run()
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if len(res.Jobs) != 10 {
			t.Fatalf("mode %v: %d jobs finished", mode, len(res.Jobs))
		}
	}
}

func TestLoadSweepShapes(t *testing.T) {
	p := perfmodel.SystemX()
	points, err := LoadSweep(36, p, 10, 11, []float64{100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("%d points", len(points))
	}
	for _, pt := range points {
		if pt.DynamicUtil <= 0 || pt.DynamicUtil > 1 {
			t.Errorf("ia=%v: dynamic util %v", pt.MeanInterarrival, pt.DynamicUtil)
		}
		if pt.StaticMeanTurn <= 0 || pt.DynamicMeanTurn <= 0 {
			t.Errorf("ia=%v: non-positive turnarounds", pt.MeanInterarrival)
		}
	}
	// At sparse arrivals (light load) dynamic scheduling must raise
	// utilization: idle processors get absorbed by running jobs.
	light := points[1]
	if light.DynamicUtil <= light.StaticUtil {
		t.Errorf("light load: dynamic util %.3f <= static %.3f",
			light.DynamicUtil, light.StaticUtil)
	}
}
