package workload

import (
	"testing"

	"repro/internal/perfmodel"
)

func TestW1Definition(t *testing.T) {
	jobs := W1()
	if len(jobs) != 5 {
		t.Fatalf("%d jobs", len(jobs))
	}
	// Initial allocations of Table 4.
	wantInitial := map[string]int{
		"LU": 6, "MM": 8, "Master-Worker": 2, "Jacobi": 4, "2D FFT": 4,
	}
	wantArrival := map[string]float64{
		"LU": 0, "MM": 0, "Master-Worker": 450, "Jacobi": 465, "2D FFT": 465,
	}
	for _, j := range jobs {
		if got := j.Spec.InitialTopo.Count(); got != wantInitial[j.Spec.Name] {
			t.Errorf("%s: initial %d, want %d", j.Spec.Name, got, wantInitial[j.Spec.Name])
		}
		if j.Arrival != wantArrival[j.Spec.Name] {
			t.Errorf("%s: arrival %v, want %v", j.Spec.Name, j.Arrival, wantArrival[j.Spec.Name])
		}
		if j.Spec.Iterations != Iterations {
			t.Errorf("%s: %d iterations", j.Spec.Name, j.Spec.Iterations)
		}
		if len(j.Spec.Chain) == 0 || j.Spec.Chain[0] != j.Spec.InitialTopo {
			t.Errorf("%s: chain must start at the initial topology", j.Spec.Name)
		}
		for _, topo := range j.Spec.Chain {
			if topo.Count() > ClusterProcs {
				t.Errorf("%s: chain config %v exceeds the cluster", j.Spec.Name, topo)
			}
		}
	}
}

func TestW2Definition(t *testing.T) {
	jobs := W2()
	if len(jobs) != 4 {
		t.Fatalf("%d jobs", len(jobs))
	}
	wantInitial := map[string]int{
		"LU": 16, "Jacobi": 10, "Master-Worker": 6, "2D FFT": 4,
	}
	for _, j := range jobs {
		if got := j.Spec.InitialTopo.Count(); got != wantInitial[j.Spec.Name] {
			t.Errorf("%s: initial %d, want %d", j.Spec.Name, got, wantInitial[j.Spec.Name])
		}
	}
	// Static W2 fills the cluster exactly: 16+10+6+4 = 36.
	total := 0
	for _, j := range jobs {
		total += j.Spec.InitialTopo.Count()
	}
	if total != ClusterProcs {
		t.Errorf("W2 initial allocations sum to %d, want %d", total, ClusterProcs)
	}
}

func TestCompareProducesConsistentRows(t *testing.T) {
	cmp, err := Compare(ClusterProcs, W2(), perfmodel.SystemX())
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Rows) != 4 {
		t.Fatalf("%d rows", len(cmp.Rows))
	}
	for _, r := range cmp.Rows {
		if r.StaticSec <= 0 || r.DynamicSec <= 0 {
			t.Errorf("%s: non-positive turnaround %v/%v", r.Job, r.StaticSec, r.DynamicSec)
		}
		if r.Difference() != r.StaticSec-r.DynamicSec {
			t.Errorf("%s: difference mismatch", r.Job)
		}
	}
	if cmp.Static == nil || cmp.Dynamic == nil {
		t.Fatal("missing raw results")
	}
}

func TestTurnaroundRowDifference(t *testing.T) {
	r := TurnaroundRow{StaticSec: 100, DynamicSec: 60}
	if r.Difference() != 40 {
		t.Errorf("difference %v", r.Difference())
	}
}
