package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/grid"
	"repro/internal/perfmodel"
	"repro/internal/scheduler"
	"repro/internal/simcluster"
)

// GenConfig parameterizes the synthetic job-mix generator used for the
// load-sweep experiments beyond the paper's two fixed workloads.
type GenConfig struct {
	Seed             int64
	Jobs             int
	MeanInterarrival float64 // seconds between submissions (exponential)
	MaxProcs         int     // configuration chains are capped here
	Iterations       int     // outer iterations per job (default 10)
	// PriorityLevels > 1 assigns each job a uniform random priority in
	// [0, PriorityLevels): higher-priority jobs queue ahead and win
	// arbitration ties. The default (0 or 1) leaves every job at priority
	// 0, preserving the plain-FCFS mixes byte for byte.
	PriorityLevels int
	// Tenants switches the generator into multi-tenant mode: each entry
	// produces an independent substream of jobs tagged with the tenant's
	// name, drawn from a per-tenant sub-seed of Seed, and the substreams
	// are merged by arrival time (ties keep Tenants order). When empty,
	// generation follows the original single-tenant path byte for byte,
	// and Jobs/MeanInterarrival apply; when set, each TenantSpec carries
	// its own counts and Jobs/MeanInterarrival become per-tenant defaults.
	Tenants []TenantSpec
}

// Pattern selects a tenant's arrival process.
type Pattern int

const (
	// Steady is the original Poisson process: exponential interarrival
	// gaps with the tenant's mean.
	Steady Pattern = iota
	// Bursty emits jobs in tight clumps: Burst near-simultaneous arrivals
	// (intra-burst gaps compressed by BurstFactor), then one long gap
	// carrying the whole burst's worth of mean spacing, so the long-run
	// rate matches Steady at the same mean. This is the noisy-neighbor
	// shape: a tenant that is quiet, then demands the cluster all at once.
	Bursty
	// Diurnal modulates the Poisson rate sinusoidally over Period seconds:
	// gaps stretch by (1 + Amplitude·sin) evaluated at the current virtual
	// time, giving the day/night load swing of interactive tenants.
	Diurnal
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case Steady:
		return "steady"
	case Bursty:
		return "bursty"
	case Diurnal:
		return "diurnal"
	default:
		return "unknown"
	}
}

// TenantSpec describes one tenant's substream in a multi-tenant mix.
type TenantSpec struct {
	Name string
	// Jobs is this tenant's job count (falls back to GenConfig.Jobs).
	Jobs int
	// MeanInterarrival is this tenant's mean spacing in seconds (falls
	// back to GenConfig.MeanInterarrival).
	MeanInterarrival float64
	Pattern          Pattern
	// Burst is the arrivals per clump under Bursty (default 5);
	// BurstFactor divides the intra-burst gaps (default 10).
	Burst       int
	BurstFactor float64
	// Period is the Diurnal cycle length in seconds (default 86400);
	// Amplitude in [0, 1) scales the swing (default 0.8).
	Period    float64
	Amplitude float64
}

// luSizePool are the Table 2 problem sizes the generator draws from.
var luSizePool = []int{8000, 12000, 14000, 16000, 20000, 21000, 24000}

// Generate produces a reproducible random mix of the paper's applications
// with exponential interarrival times, for stress-testing the scheduler at
// job counts beyond the published workloads.
func Generate(cfg GenConfig) ([]simcluster.JobInput, error) {
	if cfg.MaxProcs <= 0 {
		cfg.MaxProcs = ClusterProcs
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = Iterations
	}
	if len(cfg.Tenants) > 0 {
		return generateTenants(cfg)
	}
	if cfg.Jobs <= 0 {
		return nil, fmt.Errorf("workload: Generate needs at least 1 job")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	arrival := 0.0
	var jobs []simcluster.JobInput
	for i := 0; i < cfg.Jobs; i++ {
		if i > 0 {
			arrival += rng.ExpFloat64() * cfg.MeanInterarrival
		}
		in, err := drawJob(rng, i, "", cfg)
		if err != nil {
			return nil, err
		}
		if cfg.PriorityLevels > 1 {
			in.Spec.Priority = rng.Intn(cfg.PriorityLevels)
		}
		in.Arrival = arrival
		jobs = append(jobs, in)
	}
	return jobs, nil
}

// drawJob rolls one job body from the paper's application mix. The draw
// sequence (one Intn(5), then the chosen case's own draws, then the
// optional priority roll in the caller) is shared by the single- and
// multi-tenant paths, so pre-existing single-tenant seeds replay byte for
// byte.
func drawJob(rng *rand.Rand, i int, prefix string, cfg GenConfig) (simcluster.JobInput, error) {
	switch rng.Intn(5) {
	case 0, 1: // LU and MM dominate large clusters
		n := luSizePool[rng.Intn(len(luSizePool))]
		app := "lu"
		if rng.Intn(2) == 1 {
			app = "mm"
		}
		start, ok := grid.SmallestConfig(n, 2, cfg.MaxProcs)
		if !ok {
			return simcluster.JobInput{}, fmt.Errorf("workload: no starting config for n=%d", n)
		}
		return simcluster.JobInput{
			Spec: scheduler.JobSpec{
				Name: fmt.Sprintf("%s%s-%d", prefix, app, i), App: app, ProblemSize: n,
				Iterations:  cfg.Iterations,
				InitialTopo: start,
				Chain:       grid.GrowthChain(start, n, cfg.MaxProcs),
			},
			Model: perfmodel.AppModel{App: app, N: n},
		}, nil
	case 2:
		return jacobiInput(fmt.Sprintf("%sjacobi-%d", prefix, i), cfg), nil
	case 3:
		return fftInput(fmt.Sprintf("%sfft-%d", prefix, i), cfg), nil
	default:
		work := 10 + rng.Float64()*100
		in := job1D(fmt.Sprintf("%smw-%d", prefix, i), "mw", 20000,
			evens(2, min(22, cfg.MaxProcs)), 0,
			perfmodel.AppModel{App: "mw", MWWorkSeconds: work})
		in.Spec.Iterations = cfg.Iterations
		return in, nil
	}
}

// generateTenants draws one substream per tenant from a per-tenant
// sub-seed and merges them by arrival time. Stable sort keeps ties in
// Tenants order, so the merged mix is a pure function of (Seed, Tenants).
func generateTenants(cfg GenConfig) ([]simcluster.JobInput, error) {
	var jobs []simcluster.JobInput
	for ti, ts := range cfg.Tenants {
		if ts.Name == "" {
			return nil, fmt.Errorf("workload: tenant %d has no name", ti)
		}
		n := ts.Jobs
		if n <= 0 {
			n = cfg.Jobs
		}
		if n <= 0 {
			return nil, fmt.Errorf("workload: tenant %q needs at least 1 job", ts.Name)
		}
		mean := ts.MeanInterarrival
		if mean <= 0 {
			mean = cfg.MeanInterarrival
		}
		if mean <= 0 {
			return nil, fmt.Errorf("workload: tenant %q needs a mean interarrival", ts.Name)
		}
		// Golden-ratio mixing keeps nearby seeds' substreams uncorrelated.
		rng := rand.New(rand.NewSource(cfg.Seed + int64(ti+1)*0x9E3779B9))
		arrival := 0.0
		for i := 0; i < n; i++ {
			if i > 0 {
				arrival += ts.gap(rng, i, mean, arrival)
			}
			in, err := drawJob(rng, i, ts.Name+"-", cfg)
			if err != nil {
				return nil, err
			}
			if cfg.PriorityLevels > 1 {
				in.Spec.Priority = rng.Intn(cfg.PriorityLevels)
			}
			in.Spec.Tenant = ts.Name
			in.Arrival = arrival
			jobs = append(jobs, in)
		}
	}
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].Arrival < jobs[j].Arrival })
	return jobs, nil
}

// gap draws the interarrival gap preceding this tenant's i-th job
// (i >= 1), shaped by the tenant's arrival pattern. now is the previous
// job's arrival, which the diurnal modulation samples.
func (ts TenantSpec) gap(rng *rand.Rand, i int, mean, now float64) float64 {
	switch ts.Pattern {
	case Bursty:
		burst := ts.Burst
		if burst <= 0 {
			burst = 5
		}
		factor := ts.BurstFactor
		if factor <= 0 {
			factor = 10
		}
		if i%burst == 0 {
			// First job of a new clump: one long gap carries the whole
			// clump's worth of mean spacing, keeping the long-run rate at
			// 1/mean.
			return rng.ExpFloat64() * mean * float64(burst)
		}
		return rng.ExpFloat64() * mean / factor
	case Diurnal:
		period := ts.Period
		if period <= 0 {
			period = 86400
		}
		amp := ts.Amplitude
		if amp <= 0 || amp >= 1 {
			amp = 0.8
		}
		return rng.ExpFloat64() * mean * (1 + amp*math.Sin(2*math.Pi*now/period))
	default:
		return rng.ExpFloat64() * mean
	}
}

func jacobiInput(name string, cfg GenConfig) simcluster.JobInput {
	counts := []int{4, 8, 10, 16, 20, 32}
	in := job1D(name, "jacobi", 8000, capCounts(counts, cfg.MaxProcs), 0,
		perfmodel.AppModel{App: "jacobi", N: 8000})
	in.Spec.Iterations = cfg.Iterations
	return in
}

func fftInput(name string, cfg GenConfig) simcluster.JobInput {
	counts := []int{4, 8, 16, 32}
	in := job1D(name, "fft", 8192, capCounts(counts, cfg.MaxProcs), 0,
		perfmodel.AppModel{App: "fft", N: 8192})
	in.Spec.Iterations = cfg.Iterations
	return in
}

func capCounts(counts []int, maxProcs int) []int {
	var out []int
	for _, c := range counts {
		if c <= maxProcs {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		out = []int{counts[0]}
	}
	return out
}

func evens(from, to int) []int {
	var out []int
	for p := from; p <= to; p += 2 {
		out = append(out, p)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SweepPoint is one load level of a load sweep.
type SweepPoint struct {
	MeanInterarrival float64
	StaticUtil       float64
	DynamicUtil      float64
	StaticMeanTurn   float64
	DynamicMeanTurn  float64
}

// LoadSweep measures static vs dynamic scheduling across arrival-rate
// levels on a generated mix — the "does resizing still help under load?"
// question the paper's workload section motivates.
func LoadSweep(total int, params *perfmodel.Params, jobs, seed int64, interarrivals []float64) ([]SweepPoint, error) {
	var points []SweepPoint
	for _, ia := range interarrivals {
		gen, err := Generate(GenConfig{
			Seed: seed, Jobs: int(jobs), MeanInterarrival: ia, MaxProcs: total,
		})
		if err != nil {
			return nil, err
		}
		st, err := simcluster.New(total, simcluster.Static, params, gen).Run()
		if err != nil {
			return nil, fmt.Errorf("workload: sweep static ia=%.0f: %w", ia, err)
		}
		dy, err := simcluster.New(total, simcluster.Dynamic, params, gen).Run()
		if err != nil {
			return nil, fmt.Errorf("workload: sweep dynamic ia=%.0f: %w", ia, err)
		}
		pt := SweepPoint{
			MeanInterarrival: ia,
			StaticUtil:       st.Utilization,
			DynamicUtil:      dy.Utilization,
		}
		for _, j := range st.Jobs {
			pt.StaticMeanTurn += j.Turnaround()
		}
		for _, j := range dy.Jobs {
			pt.DynamicMeanTurn += j.Turnaround()
		}
		pt.StaticMeanTurn /= float64(len(st.Jobs))
		pt.DynamicMeanTurn /= float64(len(dy.Jobs))
		points = append(points, pt)
	}
	return points, nil
}
