package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/grid"
	"repro/internal/perfmodel"
	"repro/internal/scheduler"
	"repro/internal/simcluster"
)

// GenConfig parameterizes the synthetic job-mix generator used for the
// load-sweep experiments beyond the paper's two fixed workloads.
type GenConfig struct {
	Seed             int64
	Jobs             int
	MeanInterarrival float64 // seconds between submissions (exponential)
	MaxProcs         int     // configuration chains are capped here
	Iterations       int     // outer iterations per job (default 10)
	// PriorityLevels > 1 assigns each job a uniform random priority in
	// [0, PriorityLevels): higher-priority jobs queue ahead and win
	// arbitration ties. The default (0 or 1) leaves every job at priority
	// 0, preserving the plain-FCFS mixes byte for byte.
	PriorityLevels int
}

// luSizePool are the Table 2 problem sizes the generator draws from.
var luSizePool = []int{8000, 12000, 14000, 16000, 20000, 21000, 24000}

// Generate produces a reproducible random mix of the paper's applications
// with exponential interarrival times, for stress-testing the scheduler at
// job counts beyond the published workloads.
func Generate(cfg GenConfig) ([]simcluster.JobInput, error) {
	if cfg.Jobs <= 0 {
		return nil, fmt.Errorf("workload: Generate needs at least 1 job")
	}
	if cfg.MaxProcs <= 0 {
		cfg.MaxProcs = ClusterProcs
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = Iterations
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	arrival := 0.0
	var jobs []simcluster.JobInput
	for i := 0; i < cfg.Jobs; i++ {
		if i > 0 {
			arrival += rng.ExpFloat64() * cfg.MeanInterarrival
		}
		var in simcluster.JobInput
		switch rng.Intn(5) {
		case 0, 1: // LU and MM dominate large clusters
			n := luSizePool[rng.Intn(len(luSizePool))]
			app := "lu"
			if rng.Intn(2) == 1 {
				app = "mm"
			}
			start, ok := grid.SmallestConfig(n, 2, cfg.MaxProcs)
			if !ok {
				return nil, fmt.Errorf("workload: no starting config for n=%d", n)
			}
			in = simcluster.JobInput{
				Spec: scheduler.JobSpec{
					Name: fmt.Sprintf("%s-%d", app, i), App: app, ProblemSize: n,
					Iterations:  cfg.Iterations,
					InitialTopo: start,
					Chain:       grid.GrowthChain(start, n, cfg.MaxProcs),
				},
				Model: perfmodel.AppModel{App: app, N: n},
			}
		case 2:
			in = jacobiInput(fmt.Sprintf("jacobi-%d", i), cfg)
		case 3:
			in = fftInput(fmt.Sprintf("fft-%d", i), cfg)
		default:
			work := 10 + rng.Float64()*100
			in = job1D(fmt.Sprintf("mw-%d", i), "mw", 20000,
				evens(2, min(22, cfg.MaxProcs)), 0,
				perfmodel.AppModel{App: "mw", MWWorkSeconds: work})
			in.Spec.Iterations = cfg.Iterations
		}
		if cfg.PriorityLevels > 1 {
			in.Spec.Priority = rng.Intn(cfg.PriorityLevels)
		}
		in.Arrival = arrival
		jobs = append(jobs, in)
	}
	return jobs, nil
}

func jacobiInput(name string, cfg GenConfig) simcluster.JobInput {
	counts := []int{4, 8, 10, 16, 20, 32}
	in := job1D(name, "jacobi", 8000, capCounts(counts, cfg.MaxProcs), 0,
		perfmodel.AppModel{App: "jacobi", N: 8000})
	in.Spec.Iterations = cfg.Iterations
	return in
}

func fftInput(name string, cfg GenConfig) simcluster.JobInput {
	counts := []int{4, 8, 16, 32}
	in := job1D(name, "fft", 8192, capCounts(counts, cfg.MaxProcs), 0,
		perfmodel.AppModel{App: "fft", N: 8192})
	in.Spec.Iterations = cfg.Iterations
	return in
}

func capCounts(counts []int, maxProcs int) []int {
	var out []int
	for _, c := range counts {
		if c <= maxProcs {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		out = []int{counts[0]}
	}
	return out
}

func evens(from, to int) []int {
	var out []int
	for p := from; p <= to; p += 2 {
		out = append(out, p)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SweepPoint is one load level of a load sweep.
type SweepPoint struct {
	MeanInterarrival float64
	StaticUtil       float64
	DynamicUtil      float64
	StaticMeanTurn   float64
	DynamicMeanTurn  float64
}

// LoadSweep measures static vs dynamic scheduling across arrival-rate
// levels on a generated mix — the "does resizing still help under load?"
// question the paper's workload section motivates.
func LoadSweep(total int, params *perfmodel.Params, jobs, seed int64, interarrivals []float64) ([]SweepPoint, error) {
	var points []SweepPoint
	for _, ia := range interarrivals {
		gen, err := Generate(GenConfig{
			Seed: seed, Jobs: int(jobs), MeanInterarrival: ia, MaxProcs: total,
		})
		if err != nil {
			return nil, err
		}
		st, err := simcluster.New(total, simcluster.Static, params, gen).Run()
		if err != nil {
			return nil, fmt.Errorf("workload: sweep static ia=%.0f: %w", ia, err)
		}
		dy, err := simcluster.New(total, simcluster.Dynamic, params, gen).Run()
		if err != nil {
			return nil, fmt.Errorf("workload: sweep dynamic ia=%.0f: %w", ia, err)
		}
		pt := SweepPoint{
			MeanInterarrival: ia,
			StaticUtil:       st.Utilization,
			DynamicUtil:      dy.Utilization,
		}
		for _, j := range st.Jobs {
			pt.StaticMeanTurn += j.Turnaround()
		}
		for _, j := range dy.Jobs {
			pt.DynamicMeanTurn += j.Turnaround()
		}
		pt.StaticMeanTurn /= float64(len(st.Jobs))
		pt.DynamicMeanTurn /= float64(len(dy.Jobs))
		points = append(points, pt)
	}
	return points, nil
}
