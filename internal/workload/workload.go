package workload

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/perfmodel"
	"repro/internal/scheduler"
	"repro/internal/simcluster"
)

// ClusterProcs is the processor pool used by both workload experiments (the
// paper schedules W1 and W2 on 36 processors of System X).
const ClusterProcs = 36

// Iterations per job ("a single job consisted of ten iterations").
const Iterations = 10

// job builds a JobInput for a 2-D grid application.
func job2D(name, app string, n int, initial grid.Topology, arrival float64, maxProcs int) simcluster.JobInput {
	return simcluster.JobInput{
		Spec: scheduler.JobSpec{
			Name:        name,
			App:         app,
			ProblemSize: n,
			Iterations:  Iterations,
			InitialTopo: initial,
			Chain:       grid.GrowthChain(initial, n, maxProcs),
		},
		Model:   perfmodel.AppModel{App: app, N: n},
		Arrival: arrival,
	}
}

// job1D builds a JobInput for a 1-D application with an explicit processor
// ladder.
func job1D(name, app string, n int, counts []int, arrival float64, model perfmodel.AppModel) simcluster.JobInput {
	chain := make([]grid.Topology, len(counts))
	for i, p := range counts {
		chain[i] = grid.Row1D(p)
	}
	return simcluster.JobInput{
		Spec: scheduler.JobSpec{
			Name:        name,
			App:         app,
			ProblemSize: n,
			Iterations:  Iterations,
			InitialTopo: chain[0],
			Chain:       chain,
		},
		Model:   model,
		Arrival: arrival,
	}
}

// W1 is workload 1 (Figure 4, Table 4): LU(21000) and MM(14000) arrive at
// t=0, the master-worker at t=450, Jacobi(8000) and FFT(8192) at t=465.
// Initial allocations follow Table 4: LU 6, MM 8, MW 2, Jacobi 4, FFT 4.
func W1() []simcluster.JobInput {
	return []simcluster.JobInput{
		job2D("LU", "lu", 21000, grid.Topology{Rows: 2, Cols: 3}, 0, ClusterProcs),
		job2D("MM", "mm", 14000, grid.Topology{Rows: 2, Cols: 4}, 0, ClusterProcs),
		job1D("Master-Worker", "mw", 4000000000, []int{2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22}, 450,
			perfmodel.AppModel{App: "mw", MWWorkSeconds: 14.7}),
		job1D("Jacobi", "jacobi", 8000, []int{4, 8, 10, 16, 20, 32}, 465,
			perfmodel.AppModel{App: "jacobi", N: 8000}),
		job1D("2D FFT", "fft", 8192, []int{4, 8, 16, 32}, 465,
			perfmodel.AppModel{App: "fft", N: 8192}),
	}
}

// W2 is workload 2 (Figure 5, Table 5): LU(21000) from t=0 on 16
// processors, Jacobi(8000) on 10, the master-worker (6) at t=560, and the
// FFT (4) at t=650. The mix exercises shrink-to-accommodate: LU gives up
// processors so the queued master-worker and FFT can start.
func W2() []simcluster.JobInput {
	return []simcluster.JobInput{
		job2D("LU", "lu", 21000, grid.Topology{Rows: 4, Cols: 4}, 0, ClusterProcs),
		job1D("Jacobi", "jacobi", 8000, []int{10, 16, 20, 32}, 90,
			perfmodel.AppModel{App: "jacobi", N: 8000}),
		job1D("Master-Worker", "mw", 4000000000, []int{6, 8, 10, 12, 14, 16, 18, 20, 22}, 560,
			perfmodel.AppModel{App: "mw", MWWorkSeconds: 177.5}),
		job1D("2D FFT", "fft", 8192, []int{4, 8, 16, 32}, 650,
			perfmodel.AppModel{App: "fft", N: 8192}),
	}
}

// TurnaroundRow is one line of Tables 4/5.
type TurnaroundRow struct {
	Job         string
	InitialProc int
	StaticSec   float64
	DynamicSec  float64
}

// Difference is the paper's "Difference" column (static - dynamic).
func (r TurnaroundRow) Difference() float64 { return r.StaticSec - r.DynamicSec }

// Comparison holds the static-vs-dynamic outcome for one workload.
type Comparison struct {
	Rows               []TurnaroundRow
	StaticUtilization  float64
	DynamicUtilization float64
	Static             *simcluster.Result
	Dynamic            *simcluster.Result
}

// Compare runs a workload under static and ReSHAPE scheduling and builds
// the turnaround table.
func Compare(total int, jobs []simcluster.JobInput, params *perfmodel.Params) (*Comparison, error) {
	st, err := simcluster.New(total, simcluster.Static, params, jobs).Run()
	if err != nil {
		return nil, fmt.Errorf("workload: static run: %w", err)
	}
	dy, err := simcluster.New(total, simcluster.Dynamic, params, jobs).Run()
	if err != nil {
		return nil, fmt.Errorf("workload: dynamic run: %w", err)
	}
	cmp := &Comparison{
		StaticUtilization:  st.Utilization,
		DynamicUtilization: dy.Utilization,
		Static:             st,
		Dynamic:            dy,
	}
	byName := make(map[string]simcluster.JobResult, len(dy.Jobs))
	for _, j := range dy.Jobs {
		byName[j.Name] = j
	}
	for _, sj := range st.Jobs {
		dj, ok := byName[sj.Name]
		if !ok {
			return nil, fmt.Errorf("workload: job %q missing from dynamic run", sj.Name)
		}
		cmp.Rows = append(cmp.Rows, TurnaroundRow{
			Job:         sj.Name,
			InitialProc: sj.InitialProc,
			StaticSec:   sj.Turnaround(),
			DynamicSec:  dj.Turnaround(),
		})
	}
	return cmp, nil
}
