// Package workload defines the paper's job mixes (Table 3) and the derived
// metrics the evaluation section reports: per-job turnaround under static
// and dynamic scheduling (Tables 4 and 5), processor-allocation histories
// (Figures 4(a)/5(a)) and busy-processor traces (Figures 4(b)/5(b)).
//
// Beyond the two published five-job workloads, Generate produces
// reproducible synthetic mixes — the paper's applications with exponential
// interarrival times at arbitrary job counts — used by the load-sweep
// experiments and by the scheduler scale benchmarks that push the
// event-driven core to 100k+ jobs. LoadSweep answers the "does resizing
// still help under load?" question across arrival-rate levels.
package workload
