package durability

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/scheduler"
)

// ErrSnapshotCorrupt marks a snapshot file that fails its magic or
// checksum. Recovery skips such a file and falls back to an older
// snapshot (or genesis) plus the retained log segments.
var ErrSnapshotCorrupt = errors.New("durability: corrupt snapshot")

// snapMagic opens every snapshot file; a version bump changes it.
// RSHSNAP2 replaced gob with the WAL's hand-rolled varint codec: at 100k
// jobs the reflective gob decode made restoring a snapshot *slower* than
// replaying the log it summarized (~360ms vs ~195ms), inverting the whole
// point of snapshotting. RSHSNAP3 added the job spec's Tenant field for
// the fair-share subsystem. Files with older magics are treated as corrupt
// and recovery falls back to replay — exactly the path they were
// summarizing.
const snapMagic = "RSHSNAP3"

// snapshotBlob is a snapshot file's payload: the scheduler image plus the
// continuity values a recovered Server needs.
type snapshotBlob struct {
	// Index is the global index of the first record NOT covered: replay
	// resumes there.
	Index uint64
	// Seq is the watch-event sequence number already published.
	Seq uint64
	// Clock is the scheduler clock at the time of the snapshot.
	Clock float64
	State *scheduler.CoreState
}

// snapName returns the snapshot file name covering records [0, index).
func snapName(index uint64) string {
	return fmt.Sprintf("%s%020d%s", snapPrefix, index, snapSuffix)
}

// appendSnapshot encodes the blob with the same bounds-friendly varint
// vocabulary as the WAL records. The redistribution map is emitted in
// sorted key order, so identical states encode to identical bytes.
func appendSnapshot(dst []byte, blob *snapshotBlob) []byte {
	dst = appendUint(dst, blob.Index)
	dst = appendUint(dst, blob.Seq)
	dst = appendFloat(dst, blob.Clock)
	st := blob.State
	dst = appendInt(dst, st.Total)
	dst = appendInt(dst, st.Shards)
	if st.Backfill {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = appendInt(dst, st.NextID)
	dst = appendFloat(dst, st.BusySeconds)
	dst = appendInt(dst, st.LastBusy)
	dst = appendFloat(dst, st.LastBusyTime)
	dst = appendUint(dst, uint64(len(st.Jobs)))
	for i := range st.Jobs {
		j := &st.Jobs[i]
		dst = appendInt(dst, j.ID)
		dst = appendSpec(dst, j.Spec)
		dst = appendInt(dst, int(j.State))
		dst = appendTopo(dst, j.Topo)
		dst = appendFloat(dst, j.SubmitTime)
		dst = appendFloat(dst, j.StartTime)
		dst = appendFloat(dst, j.EndTime)
		dst = appendInt(dst, j.PendingFree)
		dst = appendTopo(dst, j.ResizeFrom)
		p := j.Profile
		if p == nil {
			p = scheduler.NewProfile()
		}
		dst = appendUint(dst, uint64(len(p.Visits)))
		for vi := range p.Visits {
			v := &p.Visits[vi]
			dst = appendTopo(dst, v.Topo)
			dst = appendUint(dst, uint64(len(v.IterTimes)))
			for _, t := range v.IterTimes {
				dst = appendFloat(dst, t)
			}
		}
		dst = appendRedist(dst, p.Redist)
	}
	return dst
}

// appendRedist encodes one profile's redistribution-cost map in sorted
// key order: identical states must encode to identical bytes.
func appendRedist(dst []byte, redist map[string]float64) []byte {
	keys := make([]string, 0, len(redist))
	for k := range redist {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dst = appendUint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = appendString(dst, k)
		dst = appendFloat(dst, redist[k])
	}
	return dst
}

// count reads a uvarint collection length and bounds it: at most max, and
// no larger than the remaining payload could hold at minBytes per element
// — rejected before any allocation, so a corrupt length can never drive a
// huge make().
func (d *decoder) count(max, minBytes int) (int, error) {
	n, err := d.uint()
	if err != nil {
		return 0, err
	}
	if n > uint64(max) || int(n) > (len(d.b)-d.off)/minBytes {
		return 0, d.fail("bad collection length")
	}
	return int(n), nil
}

// decodeSnapshot decodes one payload produced by appendSnapshot. Like
// decodeOp it returns a typed error on any malformation and never panics,
// whatever the input.
func decodeSnapshot(payload []byte) (*snapshotBlob, error) {
	d := &decoder{b: payload}
	blob := &snapshotBlob{State: &scheduler.CoreState{}}
	st := blob.State
	var err error
	if blob.Index, err = d.uint(); err != nil {
		return nil, err
	}
	if blob.Seq, err = d.uint(); err != nil {
		return nil, err
	}
	if blob.Clock, err = d.float(); err != nil {
		return nil, err
	}
	if st.Total, err = d.int(); err != nil {
		return nil, err
	}
	if st.Shards, err = d.int(); err != nil {
		return nil, err
	}
	bf, err := d.byte()
	if err != nil {
		return nil, err
	}
	st.Backfill = bf != 0
	if st.NextID, err = d.int(); err != nil {
		return nil, err
	}
	if st.BusySeconds, err = d.float(); err != nil {
		return nil, err
	}
	if st.LastBusy, err = d.int(); err != nil {
		return nil, err
	}
	if st.LastBusyTime, err = d.float(); err != nil {
		return nil, err
	}
	// A job image is ≥ 40 bytes (six floats plus a dozen varints): the
	// pre-sized slice is the restore path's one big allocation.
	njobs, err := d.count(maxSnapshotJobs, 40)
	if err != nil {
		return nil, err
	}
	st.Jobs = make([]scheduler.PersistedJob, njobs)
	for i := range st.Jobs {
		j := &st.Jobs[i]
		if j.ID, err = d.int(); err != nil {
			return nil, err
		}
		if err = d.spec(&j.Spec); err != nil {
			return nil, err
		}
		state, err := d.int()
		if err != nil {
			return nil, err
		}
		j.State = scheduler.JobState(state)
		if j.Topo, err = d.topo(); err != nil {
			return nil, err
		}
		if j.SubmitTime, err = d.float(); err != nil {
			return nil, err
		}
		if j.StartTime, err = d.float(); err != nil {
			return nil, err
		}
		if j.EndTime, err = d.float(); err != nil {
			return nil, err
		}
		if j.PendingFree, err = d.int(); err != nil {
			return nil, err
		}
		if j.ResizeFrom, err = d.topo(); err != nil {
			return nil, err
		}
		p := &scheduler.Profile{}
		j.Profile = p
		nvisits, err := d.count(maxChainLen, 3)
		if err != nil {
			return nil, err
		}
		if nvisits > 0 {
			p.Visits = make([]scheduler.Visit, nvisits)
			for vi := range p.Visits {
				v := &p.Visits[vi]
				if v.Topo, err = d.topo(); err != nil {
					return nil, err
				}
				niters, err := d.count(maxRecordSize, 8)
				if err != nil {
					return nil, err
				}
				if niters > 0 {
					v.IterTimes = make([]float64, niters)
					for ti := range v.IterTimes {
						if v.IterTimes[ti], err = d.float(); err != nil {
							return nil, err
						}
					}
				}
			}
		}
		nredist, err := d.count(maxChainLen, 9)
		if err != nil {
			return nil, err
		}
		p.Redist = make(map[string]float64, nredist)
		for ri := 0; ri < nredist; ri++ {
			k, err := d.string()
			if err != nil {
				return nil, err
			}
			if p.Redist[k], err = d.float(); err != nil {
				return nil, err
			}
		}
	}
	if d.off != len(d.b) {
		return nil, d.fail("trailing bytes")
	}
	return blob, nil
}

// maxSnapshotJobs bounds the decoded job count; far above anything real
// (the 1M-job throughput benchmark included) while keeping a corrupt
// varint from sizing an absurd allocation.
const maxSnapshotJobs = 1 << 27

// writeSnapshot persists a snapshot crash-safely: encode, checksum, write
// to a temp file, fsync, rename into place, fsync the directory. A crash
// at any point leaves either no new snapshot (temp files are ignored) or
// a complete one — never a half-visible snapshot.
func writeSnapshot(dir string, blob *snapshotBlob) (string, error) {
	body := appendSnapshot(nil, blob)
	var head [len(snapMagic) + 4]byte
	copy(head[:], snapMagic)
	binary.LittleEndian.PutUint32(head[len(snapMagic):], crc32.Checksum(body, crcTable))

	final := filepath.Join(dir, snapName(blob.Index))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", fmt.Errorf("durability: create snapshot: %w", err)
	}
	if _, err := f.Write(head[:]); err == nil {
		_, err = f.Write(body)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("durability: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("durability: publish snapshot: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	return final, nil
}

// readSnapshot loads and validates one snapshot file.
func readSnapshot(path string) (*snapshotBlob, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("durability: read snapshot: %w", err)
	}
	if len(b) < len(snapMagic)+4 || string(b[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("%w: %s: bad header", ErrSnapshotCorrupt, filepath.Base(path))
	}
	want := binary.LittleEndian.Uint32(b[len(snapMagic):])
	body := b[len(snapMagic)+4:]
	if crc32.Checksum(body, crcTable) != want {
		return nil, fmt.Errorf("%w: %s: checksum mismatch", ErrSnapshotCorrupt, filepath.Base(path))
	}
	blob, err := decodeSnapshot(body)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrSnapshotCorrupt, filepath.Base(path), err)
	}
	return blob, nil
}
