package durability

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/scheduler"
)

// ErrSnapshotCorrupt marks a snapshot file that fails its magic or
// checksum. Recovery skips such a file and falls back to an older
// snapshot (or genesis) plus the retained log segments.
var ErrSnapshotCorrupt = errors.New("durability: corrupt snapshot")

// snapMagic opens every snapshot file; a version bump changes it.
const snapMagic = "RSHSNAP1"

// snapshotBlob is a snapshot file's payload: the scheduler image plus the
// continuity values a recovered Server needs.
type snapshotBlob struct {
	// Index is the global index of the first record NOT covered: replay
	// resumes there.
	Index uint64
	// Seq is the watch-event sequence number already published.
	Seq uint64
	// Clock is the scheduler clock at the time of the snapshot.
	Clock float64
	State *scheduler.CoreState
}

// snapName returns the snapshot file name covering records [0, index).
func snapName(index uint64) string {
	return fmt.Sprintf("%s%020d%s", snapPrefix, index, snapSuffix)
}

// writeSnapshot persists a snapshot crash-safely: encode, checksum, write
// to a temp file, fsync, rename into place, fsync the directory. A crash
// at any point leaves either no new snapshot (temp files are ignored) or
// a complete one — never a half-visible snapshot.
func writeSnapshot(dir string, blob *snapshotBlob) (string, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(blob); err != nil {
		return "", fmt.Errorf("durability: encode snapshot: %w", err)
	}
	var head [len(snapMagic) + 4]byte
	copy(head[:], snapMagic)
	binary.LittleEndian.PutUint32(head[len(snapMagic):], crc32.Checksum(body.Bytes(), crcTable))

	final := filepath.Join(dir, snapName(blob.Index))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", fmt.Errorf("durability: create snapshot: %w", err)
	}
	if _, err := f.Write(head[:]); err == nil {
		_, err = f.Write(body.Bytes())
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("durability: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("durability: publish snapshot: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	return final, nil
}

// readSnapshot loads and validates one snapshot file.
func readSnapshot(path string) (*snapshotBlob, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("durability: read snapshot: %w", err)
	}
	if len(b) < len(snapMagic)+4 || string(b[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("%w: %s: bad header", ErrSnapshotCorrupt, filepath.Base(path))
	}
	want := binary.LittleEndian.Uint32(b[len(snapMagic):])
	body := b[len(snapMagic)+4:]
	if crc32.Checksum(body, crcTable) != want {
		return nil, fmt.Errorf("%w: %s: checksum mismatch", ErrSnapshotCorrupt, filepath.Base(path))
	}
	var blob snapshotBlob
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&blob); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrSnapshotCorrupt, filepath.Base(path), err)
	}
	return &blob, nil
}
