package durability

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/scheduler"
)

// crashPoint enumerates where in an operation's lifecycle the process dies.
type crashPoint int

const (
	// crashClean is a controlled restart: no in-flight op.
	crashClean crashPoint = iota
	// crashMidAppend dies while the in-flight op's frame is being written:
	// a torn tail, the op was never acknowledged.
	crashMidAppend
	// crashAfterAppend dies after the append fsynced but before the op was
	// applied or acknowledged: the op is durable and replays.
	crashAfterAppend
	// crashMidSnapshot dies during a snapshot write, leaving a temp file
	// (and, separately, simulated rot in the newest published snapshot).
	crashMidSnapshot
	numCrashPoints
)

func (p crashPoint) String() string {
	return [...]string{"clean-restart", "mid-append", "after-append", "mid-snapshot"}[p]
}

// TestCrashRecovery is the crash-injection harness: for 120 seeded random
// schedules it kills the control plane at a randomized point in a
// randomized op's lifecycle, recovers from disk, and requires the
// recovered scheduler to be bit-identical to the state implied by the
// acknowledged ops (plus the one in-flight op exactly when its append
// completed — at-most-once, never twice, and never losing an acked job).
func TestCrashRecovery(t *testing.T) {
	const seeds = 120
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		rng := rand.New(rand.NewSource(seed))
		point := crashPoint(rng.Intn(int(numCrashPoints)))
		dir := t.TempDir()

		core := scheduler.NewCore(driverProcs, true)
		snapshotEvery := uint64([]int{0, 5, 20}[rng.Intn(3)])
		st, rec, err := Open(dir, Options{
			Sync:          SyncNone, // tests crash the process, not the machine
			SnapshotEvery: snapshotEvery,
			Capture:       func() (*scheduler.CoreState, uint64) { return core.PersistState(), 0 },
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rec.State != nil || len(rec.Ops) > 0 {
			t.Fatalf("seed %d: fresh directory was not empty", seed)
		}
		core.SetJournal(st.Append)

		d := newDriver(t, rng, core)
		steps := 30 + rng.Intn(170)
		for i := 0; i < steps; i++ {
			d.step()
		}

		// expected is the op stream that must survive the crash.
		expected := append([]scheduler.Op(nil), d.acked...)
		wantTorn := false
		switch point {
		case crashClean:
			if err := st.Close(); err != nil {
				t.Fatalf("seed %d: close: %v", seed, err)
			}
		case crashMidAppend:
			// The op reaches the log but the process dies inside the write:
			// simulate by appending it whole, then tearing its frame.
			op := d.nextOp()
			if err := st.Append(op); err != nil {
				t.Fatalf("seed %d: append in-flight: %v", seed, err)
			}
			st.Close()
			frameLen := int64(len(appendFrame(nil, appendOp(nil, op))))
			tearTail(t, dir, 1+rng.Int63n(frameLen-1))
			wantTorn = true
		case crashAfterAppend:
			// The append completed and fsynced; the process dies before the
			// core applies the op or anyone is acknowledged. The op is
			// durable: recovery must replay it exactly once.
			op := d.nextOp()
			if err := st.Append(op); err != nil {
				t.Fatalf("seed %d: append in-flight: %v", seed, err)
			}
			st.Close()
			expected = append(expected, op)
		case crashMidSnapshot:
			st.Close()
			// A crash mid-snapshot leaves an unrenamed temp file; recovery
			// must ignore it.
			tmp := filepath.Join(dir, snapName(uint64(len(expected)))+".tmp")
			if err := os.WriteFile(tmp, []byte("partial snapshot garbage"), 0o644); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}

		st2, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("seed %d (%v, %d steps, snap %d): reopen: %v", seed, point, steps, snapshotEvery, err)
		}
		defer st2.Close()
		if rec.TornTail != wantTorn {
			t.Fatalf("seed %d (%v): TornTail = %v, want %v", seed, point, rec.TornTail, wantTorn)
		}

		recovered, info, err := rec.Restore(buildRecovered)
		if err != nil {
			t.Fatalf("seed %d (%v): restore: %v", seed, point, err)
		}
		model := replayOps(t, expected)
		requireSameState(t, model, recovered)

		// No accepted job lost, none duplicated: every submit in the
		// surviving stream exists exactly once (ids are sequential, so a
		// duplicate would shift every later id and fail state equality; the
		// count pins the total).
		submits := 0
		for _, op := range expected {
			if op.Kind == scheduler.OpSubmit {
				submits++
			}
		}
		if got := len(recovered.Jobs()); got != submits {
			t.Fatalf("seed %d (%v): recovered %d jobs, %d were accepted", seed, point, got, submits)
		}
		if info.Jobs != submits {
			t.Fatalf("seed %d (%v): RestoreInfo.Jobs = %d, want %d", seed, point, info.Jobs, submits)
		}
	}
}

// tearTail removes cut bytes from the end of the newest WAL segment,
// simulating a write torn by a crash.
func tearTail(t *testing.T, dir string, cut int64) {
	t.Helper()
	segs, _, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("no segments to tear")
	}
	// The in-flight op always lands in the newest segment — but Open
	// leaves a fresh empty segment behind only on recovery, not on close,
	// so the newest segment here is the one holding the frame.
	last := segs[len(segs)-1]
	info, err := os.Stat(last.path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() < cut {
		t.Fatalf("segment %s too small (%d bytes) to cut %d", last.path, info.Size(), cut)
	}
	if err := os.Truncate(last.path, info.Size()-cut); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoveryThenContinue recovers from a crash and keeps operating:
// the recovered journal accepts new ops, snapshots on cadence, and a second
// recovery still matches the model. Durability must survive durability.
func TestCrashRecoveryThenContinue(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		dir := t.TempDir()

		core := scheduler.NewCore(driverProcs, true)
		st, _, err := Open(dir, Options{Sync: SyncNone, SnapshotEvery: 8,
			Capture: func() (*scheduler.CoreState, uint64) { return core.PersistState(), 0 }})
		if err != nil {
			t.Fatal(err)
		}
		core.SetJournal(st.Append)
		d := newDriver(t, rng, core)
		for i := 0; i < 40; i++ {
			d.step()
		}
		// Crash with a torn in-flight frame.
		op := d.nextOp()
		if err := st.Append(op); err != nil {
			t.Fatal(err)
		}
		st.Close()
		frameLen := int64(len(appendFrame(nil, appendOp(nil, op))))
		tearTail(t, dir, 1+rng.Int63n(frameLen-1))

		// First recovery; resume journaling on the recovered core.
		var core2 *scheduler.Core
		st2, rec, err := Open(dir, Options{Sync: SyncNone, SnapshotEvery: 8,
			Capture: func() (*scheduler.CoreState, uint64) { return core2.PersistState(), 0 }})
		if err != nil {
			t.Fatalf("seed %d: reopen: %v", seed, err)
		}
		core2, _, err = rec.Restore(buildRecovered)
		if err != nil {
			t.Fatalf("seed %d: restore: %v", seed, err)
		}
		core2.SetJournal(st2.Append)

		// The fresh driver does not know which recovered jobs still owe a
		// ResizeComplete; it doesn't need to — the core accepts contacts on
		// them, and determinism only requires live and replayed cores to see
		// the same stream.
		d2 := newDriver(t, rng, core2)
		d2.now = d.now
		d2.submitted = d.submitted
		for i := 0; i < 40; i++ {
			d2.step()
		}
		st2.Close()

		_, rec, err = Open(dir, Options{})
		if err != nil {
			t.Fatalf("seed %d: second reopen: %v", seed, err)
		}
		recovered, _, err := rec.Restore(buildRecovered)
		if err != nil {
			t.Fatalf("seed %d: second restore: %v", seed, err)
		}
		requireSameState(t, core2, recovered)
	}
}
