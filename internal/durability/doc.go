// Package durability makes the ReSHAPE control plane restartable: it
// journals every scheduler input to a length-prefixed, checksummed
// write-ahead log, persists periodic snapshots of the scheduler state
// machine (with log truncation), and replays both on startup so a crashed
// or restarted reshaped daemon resumes with every queued and running job
// intact.
//
// The design leans entirely on the determinism of the scheduler core
// (internal/scheduler): a Core is a deterministic state machine over five
// input operations, so recovery is "restore the newest snapshot, then
// re-apply the journaled tail" — and recovery *correctness* is testable by
// replaying identical traces and requiring bit-identical state, not argued
// informally.
//
// Layout of a WAL directory:
//
//	wal-00000000000000000000.log   records [0, n) — one frame per op
//	wal-00000000000000001000.log   records [1000, …) after a snapshot
//	snap-00000000000000001000.snap state covering records [0, 1000)
//
// Each log frame is
//
//	uvarint payload-length | uint32 CRC32C(payload) LE | payload
//
// and each payload is one scheduler.Op in a compact self-contained binary
// encoding (no per-stream codec state, so any suffix of a log replays
// after a snapshot). A torn final frame — the signature of a crash mid
// append — is detected by the length prefix or checksum and safely
// discarded; corruption anywhere earlier is refused with a typed error
// rather than silently skipped.
//
// Ordering is write-ahead: the scheduler journals each validated input
// before applying it (see scheduler.SetJournal), and an operation is
// acknowledged only after both. A crash therefore loses at most inputs
// that were never acknowledged; everything acknowledged replays.
package durability
