package durability

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/scheduler"
)

// SyncPolicy selects when appended records are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs every append before acknowledging it: no
	// acknowledged operation can be lost, at one disk flush per op.
	SyncAlways SyncPolicy = iota
	// SyncInterval batches fsyncs on a timer (Store's SyncInterval): a
	// crash can lose the last interval's acknowledged operations, but
	// appends run at memory speed.
	SyncInterval
	// SyncNone never fsyncs explicitly; the OS flushes when it pleases.
	// Survives process crashes (the page cache persists) but not machine
	// crashes.
	SyncNone
)

// String names the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return "unknown"
	}
}

// ParseSyncPolicy parses the -wal-sync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("durability: unknown sync policy %q (want always, interval or none)", s)
	}
}

const (
	segPrefix  = "wal-"
	segSuffix  = ".log"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
)

// segmentName returns the file name of the segment whose first record has
// the given global index.
func segmentName(first uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, first, segSuffix)
}

// parseIndexed extracts the index from "<prefix><20 digits><suffix>".
func parseIndexed(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	digits := name[len(prefix) : len(name)-len(suffix)]
	if len(digits) != 20 {
		return 0, false
	}
	v, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// wal is one open write-ahead log segment. Callers serialize access (the
// Store's mutex); the dirty flag alone is shared with the sync loop.
type wal struct {
	dir    string
	policy SyncPolicy

	f        *os.File
	path     string
	index    uint64 // global index of the next record to append
	segStart uint64 // global index of this segment's first record
	size     int64  // bytes written to this segment
	payload  []byte // scratch encode buffers
	frame    []byte
	dirty    atomic.Bool
}

// openWALSegment creates (or truncates) the segment starting at first and
// syncs the directory so the file itself survives a crash.
func openWALSegment(dir string, first uint64, policy SyncPolicy) (*wal, error) {
	path := filepath.Join(dir, segmentName(first))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durability: open segment: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return nil, errors.Join(err, f.Close())
	}
	return &wal{dir: dir, policy: policy, f: f, path: path, index: first, segStart: first}, nil
}

// append encodes and writes one record frame, fsyncing per policy.
func (w *wal) append(op scheduler.Op) error {
	w.payload = appendOp(w.payload[:0], op)
	w.frame = appendFrame(w.frame[:0], w.payload)
	if _, err := w.f.Write(w.frame); err != nil {
		return fmt.Errorf("durability: append record %d: %w", w.index, err)
	}
	w.size += int64(len(w.frame))
	w.index++
	if w.policy == SyncAlways {
		return w.syncFile()
	}
	w.dirty.Store(true)
	return nil
}

// sync flushes outstanding appends if any.
func (w *wal) sync() error {
	if !w.dirty.Swap(false) {
		return nil
	}
	return w.syncFile()
}

func (w *wal) syncFile() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durability: fsync %s: %w", w.path, err)
	}
	return nil
}

// rotate closes the current segment and opens a fresh one at the current
// index, so a snapshot covering everything before it can truncate the log
// by whole files.
func (w *wal) rotate() error {
	if err := w.sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("durability: close segment: %w", err)
	}
	nw, err := openWALSegment(w.dir, w.index, w.policy)
	if err != nil {
		return err
	}
	w.f, w.path, w.segStart, w.size = nw.f, nw.path, nw.segStart, nw.size
	w.dirty.Store(false)
	return nil
}

// close syncs and closes the open segment.
func (w *wal) close() error {
	if err := w.sync(); err != nil {
		return errors.Join(err, w.f.Close())
	}
	return w.f.Close()
}

// syncDir fsyncs a directory so renames and creates in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durability: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("durability: fsync dir %s: %w", dir, err)
	}
	return nil
}

// segmentFile pairs a segment path with the global index of its first
// record.
type segmentFile struct {
	path  string
	first uint64
}

// scanDir lists a WAL directory's segments (sorted by first index) and
// snapshots (sorted by covered index), removing leftover temporary files
// from an interrupted snapshot write.
func scanDir(dir string) (segs []segmentFile, snaps []segmentFile, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("durability: scan %s: %w", dir, err)
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			// A crash mid-snapshot leaves a temp file; it was never
			// renamed into place, so it holds nothing durable.
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		if first, ok := parseIndexed(name, segPrefix, segSuffix); ok {
			segs = append(segs, segmentFile{path: filepath.Join(dir, name), first: first})
		} else if idx, ok := parseIndexed(name, snapPrefix, snapSuffix); ok {
			snaps = append(snaps, segmentFile{path: filepath.Join(dir, name), first: idx})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].first < snaps[j].first })
	return segs, snaps, nil
}
