package durability

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/perfmodel"
	"repro/internal/scheduler"
	"repro/internal/simcluster"
	"repro/internal/workload"
)

// runJournaledW1 runs the W1 workload simulation on total processors with
// the core journaling into dir, and returns the finished core and result.
func runJournaledW1(t *testing.T, dir string, total int, snapshotEvery uint64) (*scheduler.Core, *simcluster.Result) {
	t.Helper()
	core := scheduler.NewCore(total, true)
	st, rec, err := Open(dir, Options{
		Sync:          SyncNone,
		SnapshotEvery: snapshotEvery,
		Capture:       func() (*scheduler.CoreState, uint64) { return core.PersistState(), 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != nil || len(rec.Ops) > 0 {
		t.Fatal("directory not fresh")
	}
	core.SetJournal(st.Append)

	res, err := simcluster.New(total, simcluster.Dynamic, perfmodel.SystemX(), workload.W1()).
		WithCore(core).Run()
	if err != nil {
		t.Fatalf("simulate W1: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return core, res
}

// TestReplayW1BitIdentical journals a full W1 run with no snapshots and
// replays the log from genesis: the recovered scheduler must match bit for
// bit — every job's state, topology and timestamps, the queue, the pool,
// the busy-time integral, and (because replay regenerates it from record
// zero) the entire allocation-event trace of Figures 4(a)/4(b).
func TestReplayW1BitIdentical(t *testing.T) {
	dir := t.TempDir()
	core, res := runJournaledW1(t, dir, workload.ClusterProcs, 0)

	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recovered, info, err := rec.Restore(func(st *scheduler.CoreState) (*scheduler.Core, error) {
		if st != nil {
			t.Fatal("unexpected snapshot in a snapshot-free run")
		}
		return scheduler.NewCore(workload.ClusterProcs, true), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Replayed != len(rec.Ops) || info.Replayed == 0 {
		t.Fatalf("replayed %d of %d records", info.Replayed, len(rec.Ops))
	}
	requireSameState(t, core, recovered)
	if !reflect.DeepEqual(core.AllocEvents(), recovered.AllocEvents()) {
		t.Fatalf("allocation trace diverged: %d events vs %d", len(core.AllocEvents()), len(recovered.AllocEvents()))
	}
	if res.Makespan <= 0 {
		t.Fatal("W1 produced no makespan")
	}
	// Per-job outcomes: every job Done with identical end times.
	for _, j := range recovered.Jobs() {
		if j.State != scheduler.Done {
			t.Fatalf("job %q not done after replay", j.Spec.Name)
		}
		orig, _ := core.Job(j.ID)
		if orig.EndTime != j.EndTime || orig.StartTime != j.StartTime {
			t.Fatalf("job %q times diverged: (%v,%v) vs (%v,%v)",
				j.Spec.Name, orig.StartTime, orig.EndTime, j.StartTime, j.EndTime)
		}
	}
}

// TestReplayW1ContendedWithSnapshots runs W1 on a deliberately undersized
// cluster (24 of 36 processors) so the queue stays contended, with a tight
// snapshot cadence, and checks snapshot+tail recovery reaches the same
// final state as the live run.
func TestReplayW1ContendedWithSnapshots(t *testing.T) {
	const contendedProcs = 24
	dir := t.TempDir()
	core, _ := runJournaledW1(t, dir, contendedProcs, 25)

	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.State == nil {
		t.Fatal("tight cadence produced no snapshot")
	}
	recovered, info, err := rec.Restore(func(st *scheduler.CoreState) (*scheduler.Core, error) {
		return scheduler.NewCoreFromState(st)
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Replayed != len(rec.Ops) {
		t.Fatalf("replayed %d of the %d-record tail", info.Replayed, len(rec.Ops))
	}
	requireSameState(t, core, recovered)
}

// TestReplayMidFlight crashes a contended W1 run part-way (while jobs are
// queued and resizes are in flight) and checks the recovered core matches
// the live core at the moment of the crash — the case an operator actually
// cares about.
func TestReplayMidFlight(t *testing.T) {
	for _, every := range []uint64{0, 10} {
		dir := t.TempDir()
		core := scheduler.NewCore(24, true)
		st, _, err := Open(dir, Options{
			Sync:          SyncNone,
			SnapshotEvery: every,
			Capture:       func() (*scheduler.CoreState, uint64) { return core.PersistState(), 0 },
		})
		if err != nil {
			t.Fatal(err)
		}
		core.SetJournal(st.Append)

		// Drive the random mixed workload instead of the full event engine:
		// stop at an arbitrary point with work queued and running.
		rng := rand.New(rand.NewSource(42))
		d := newDriver(t, rng, core)
		for i := 0; i < 120; i++ {
			d.step()
		}
		st.Close()

		if core.QueueLen() == 0 {
			t.Fatal("mid-flight crash point has an empty queue; test lost its bite")
		}

		_, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		recovered, _, err := rec.Restore(func(cs *scheduler.CoreState) (*scheduler.Core, error) {
			if cs == nil {
				return scheduler.NewCore(24, true), nil
			}
			return scheduler.NewCoreFromState(cs)
		})
		if err != nil {
			t.Fatal(err)
		}
		requireSameState(t, core, recovered)
	}
}
