package durability

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/grid"
	"repro/internal/scheduler"
)

// Typed decode failures. The WAL reader distinguishes a *torn tail* (the
// partial final frame a crash mid-append leaves behind — expected, safely
// discarded) from *corruption* (damage anywhere that cannot be explained
// by a torn write — never silently skipped).
var (
	// ErrTornTail marks an incomplete or checksum-failing final frame. The
	// reader discards it; every preceding record is intact.
	ErrTornTail = errors.New("durability: torn record at log tail")
	// ErrCorrupt marks damage that a torn final write cannot explain: a
	// checksum failure or invalid length prefix with further data behind it.
	ErrCorrupt = errors.New("durability: corrupt write-ahead log")
	// ErrBadRecord marks a frame whose checksum is valid but whose payload
	// does not decode as a scheduler op (version skew or a writer bug).
	ErrBadRecord = errors.New("durability: malformed record payload")
)

// maxRecordSize bounds one frame's payload. Real records are tens of
// bytes plus the job spec's strings and chain; the cap keeps a corrupt
// length prefix from driving a huge allocation.
const maxRecordSize = 1 << 20

// Caps inside one payload, each far above anything the scheduler produces
// but small enough to bound decoder allocations.
const (
	maxStringLen = 1 << 16
	maxChainLen  = 1 << 16
)

// appendUint appends a uvarint.
func appendUint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// appendInt appends a zigzag varint.
func appendInt(dst []byte, v int) []byte {
	return binary.AppendVarint(dst, int64(v))
}

// appendFloat appends a float64 as its fixed 8-byte IEEE-754 bits.
func appendFloat(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// appendString appends a uvarint length followed by the bytes.
func appendString(dst []byte, s string) []byte {
	dst = appendUint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendTopo appends a topology as two zigzag varints.
func appendTopo(dst []byte, t grid.Topology) []byte {
	dst = appendInt(dst, t.Rows)
	return appendInt(dst, t.Cols)
}

// appendSpec encodes one job spec (shared by the OpSubmit record and the
// snapshot's per-job image). The Tenant field joined the encoding with the
// fair-share subsystem; logs written before it decode as ErrBadRecord
// (trailing-byte check) rather than silently dropping the field, matching
// the snapshot codec's magic bump to RSHSNAP3.
func appendSpec(dst []byte, sp scheduler.JobSpec) []byte {
	dst = appendString(dst, sp.Name)
	dst = appendString(dst, sp.App)
	dst = appendInt(dst, sp.ProblemSize)
	dst = appendInt(dst, sp.BlockSize)
	dst = appendInt(dst, sp.Iterations)
	dst = appendInt(dst, sp.Priority)
	dst = appendString(dst, sp.Tenant)
	dst = appendTopo(dst, sp.InitialTopo)
	dst = appendUint(dst, uint64(len(sp.Chain)))
	for _, t := range sp.Chain {
		dst = appendTopo(dst, t)
	}
	return dst
}

// appendOp encodes one scheduler op as a self-contained payload.
func appendOp(dst []byte, op scheduler.Op) []byte {
	dst = append(dst, byte(op.Kind))
	dst = appendFloat(dst, op.Now)
	switch op.Kind {
	case scheduler.OpSubmit:
		dst = appendSpec(dst, op.Spec)
	case scheduler.OpContact:
		dst = appendInt(dst, op.JobID)
		dst = appendTopo(dst, op.Topo)
		dst = appendFloat(dst, op.IterTime)
		dst = appendFloat(dst, op.RedistTime)
	case scheduler.OpResizeComplete:
		dst = appendInt(dst, op.JobID)
		dst = appendFloat(dst, op.RedistTime)
	case scheduler.OpFinish, scheduler.OpFail:
		dst = appendInt(dst, op.JobID)
	case scheduler.OpRebalance:
		// A planning tick carries only its timestamp (already encoded): the
		// adopted plan is recomputed deterministically on replay.
	}
	return dst
}

// decoder walks one payload with bounds-checked reads; every failure is a
// typed ErrBadRecord so arbitrary bytes can never panic the replay path.
type decoder struct {
	b   []byte
	off int
}

func (d *decoder) fail(what string) error {
	return fmt.Errorf("%w: %s at offset %d", ErrBadRecord, what, d.off)
}

func (d *decoder) byte() (byte, error) {
	if d.off >= len(d.b) {
		return 0, d.fail("truncated byte")
	}
	v := d.b[d.off]
	d.off++
	return v, nil
}

func (d *decoder) uint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, d.fail("bad uvarint")
	}
	d.off += n
	return v, nil
}

func (d *decoder) int() (int, error) {
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		return 0, d.fail("bad varint")
	}
	if int64(int(v)) != v {
		// Only reachable on a 32-bit platform; spec fields like the
		// master-worker's ProblemSize legitimately exceed int32.
		return 0, d.fail("integer out of range")
	}
	d.off += n
	return int(v), nil
}

func (d *decoder) float() (float64, error) {
	if d.off+8 > len(d.b) {
		return 0, d.fail("truncated float")
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v, nil
}

func (d *decoder) string() (string, error) {
	n, err := d.uint()
	if err != nil {
		return "", err
	}
	if n > maxStringLen || d.off+int(n) > len(d.b) {
		return "", d.fail("bad string length")
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *decoder) topo() (grid.Topology, error) {
	r, err := d.int()
	if err != nil {
		return grid.Topology{}, err
	}
	c, err := d.int()
	if err != nil {
		return grid.Topology{}, err
	}
	return grid.Topology{Rows: r, Cols: c}, nil
}

// spec decodes one job spec produced by appendSpec.
func (d *decoder) spec(sp *scheduler.JobSpec) error {
	var err error
	if sp.Name, err = d.string(); err != nil {
		return err
	}
	if sp.App, err = d.string(); err != nil {
		return err
	}
	if sp.ProblemSize, err = d.int(); err != nil {
		return err
	}
	if sp.BlockSize, err = d.int(); err != nil {
		return err
	}
	if sp.Iterations, err = d.int(); err != nil {
		return err
	}
	if sp.Priority, err = d.int(); err != nil {
		return err
	}
	if sp.Tenant, err = d.string(); err != nil {
		return err
	}
	if sp.InitialTopo, err = d.topo(); err != nil {
		return err
	}
	n, err := d.uint()
	if err != nil {
		return err
	}
	// Each chain entry is at least two bytes, so n is also bounded by
	// the remaining payload — reject before allocating.
	if n > maxChainLen || int(n) > (len(d.b)-d.off)/2 {
		return d.fail("bad chain length")
	}
	if n > 0 {
		sp.Chain = make([]grid.Topology, n)
		for i := range sp.Chain {
			if sp.Chain[i], err = d.topo(); err != nil {
				return err
			}
		}
	}
	return nil
}

// decodeOp decodes one payload produced by appendOp. It returns
// ErrBadRecord (wrapped with position detail) on any malformation and
// never panics, whatever the input.
func decodeOp(payload []byte) (scheduler.Op, error) {
	d := &decoder{b: payload}
	var op scheduler.Op
	k, err := d.byte()
	if err != nil {
		return op, err
	}
	op.Kind = scheduler.OpKind(k)
	if op.Now, err = d.float(); err != nil {
		return op, err
	}
	switch op.Kind {
	case scheduler.OpSubmit:
		if err = d.spec(&op.Spec); err != nil {
			return op, err
		}
	case scheduler.OpContact:
		if op.JobID, err = d.int(); err != nil {
			return op, err
		}
		if op.Topo, err = d.topo(); err != nil {
			return op, err
		}
		if op.IterTime, err = d.float(); err != nil {
			return op, err
		}
		if op.RedistTime, err = d.float(); err != nil {
			return op, err
		}
	case scheduler.OpResizeComplete:
		if op.JobID, err = d.int(); err != nil {
			return op, err
		}
		if op.RedistTime, err = d.float(); err != nil {
			return op, err
		}
	case scheduler.OpFinish, scheduler.OpFail:
		if op.JobID, err = d.int(); err != nil {
			return op, err
		}
	case scheduler.OpRebalance:
		// Timestamp only.
	default:
		return op, d.fail(fmt.Sprintf("unknown op kind %d", k))
	}
	if d.off != len(d.b) {
		return op, d.fail("trailing bytes")
	}
	return op, nil
}

// appendFrame wraps one payload in the on-disk frame format:
// uvarint length | uint32 CRC32C little-endian | payload.
func appendFrame(dst, payload []byte) []byte {
	dst = appendUint(dst, uint64(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// crcTable is the Castagnoli polynomial (hardware-accelerated CRC32C).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// decodeFrames parses a segment's byte image into ops. It returns the
// decoded prefix, the byte length of that intact prefix, and the
// terminal condition:
//
//   - nil: the segment ends exactly on a frame boundary;
//   - ErrTornTail: a final partial or checksum-failing frame was
//     discarded (good marks where the intact prefix ends, so the caller
//     can truncate the tail away);
//   - ErrCorrupt: damage with further frames behind it — a torn write
//     cannot produce this, so the log is refused;
//   - ErrBadRecord: a checksummed frame whose payload doesn't decode.
func decodeFrames(b []byte) (ops []scheduler.Op, good int, err error) {
	off := 0
	for off < len(b) {
		n, sz := binary.Uvarint(b[off:])
		if sz == 0 {
			// The buffer ends inside the length prefix: a torn header.
			return ops, off, fmt.Errorf("%w: truncated length prefix at offset %d", ErrTornTail, off)
		}
		if sz < 0 || n == 0 || n > maxRecordSize {
			// A writer never produces these; if this garbage is simply the
			// start of a torn final write it must be short, otherwise it is
			// corruption proper.
			if len(b)-off <= binary.MaxVarintLen64+4 {
				return ops, off, fmt.Errorf("%w: unparseable length prefix at offset %d", ErrTornTail, off)
			}
			return ops, off, fmt.Errorf("%w: invalid length prefix at offset %d", ErrCorrupt, off)
		}
		frameEnd := off + sz + 4 + int(n)
		if frameEnd > len(b) {
			return ops, off, fmt.Errorf("%w: frame at offset %d runs past end of log", ErrTornTail, off)
		}
		want := binary.LittleEndian.Uint32(b[off+sz:])
		payload := b[off+sz+4 : frameEnd]
		if crc32.Checksum(payload, crcTable) != want {
			if frameEnd == len(b) {
				return ops, off, fmt.Errorf("%w: checksum mismatch on final frame at offset %d", ErrTornTail, off)
			}
			return ops, off, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, off)
		}
		op, err := decodeOp(payload)
		if err != nil {
			return ops, off, fmt.Errorf("record %d: %w", len(ops), err)
		}
		ops = append(ops, op)
		off = frameEnd
	}
	return ops, off, nil
}
