package durability

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/grid"
	"repro/internal/scheduler"
)

// fuzzSeedCorpus returns byte images worth mutating: valid payloads and
// frames for every op kind, plus classic damage shapes.
func fuzzSeedCorpus() [][]byte {
	var seeds [][]byte
	var log []byte
	for _, op := range sampleOps() {
		payload := appendOp(nil, op)
		seeds = append(seeds, payload)
		log = appendFrame(log, payload)
	}
	seeds = append(seeds,
		nil,
		[]byte{0x00},
		[]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}, // huge uvarint
		log,              // whole multi-record segment
		log[:len(log)-3], // torn tail
	)
	return seeds
}

// FuzzDecodeOp feeds arbitrary bytes to the payload decoder: it must never
// panic, and must either fail with ErrBadRecord or produce an op that
// re-encodes and decodes to the same value.
func FuzzDecodeOp(f *testing.F) {
	for _, s := range fuzzSeedCorpus() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		op, err := decodeOp(payload)
		if err != nil {
			if !errors.Is(err, ErrBadRecord) {
				t.Fatalf("decodeOp returned untyped error %v", err)
			}
			return
		}
		// Accepted payloads must re-encode losslessly. (The byte image may
		// differ — varints admit overlong encodings — but the value must
		// survive a round trip through the canonical encoder.)
		re := appendOp(nil, op)
		op2, err := decodeOp(re)
		if err != nil {
			t.Fatalf("canonical re-encode failed to decode: %v", err)
		}
		if !bytes.Equal(re, appendOp(nil, op2)) {
			t.Fatalf("round trip diverged:\n first %+v\n  second %+v", op, op2)
		}
	})
}

// FuzzDecodeSnapshot feeds arbitrary bytes to the snapshot-payload
// decoder: like decodeOp it must never panic and either fail typed or
// produce a blob that round-trips through the canonical encoder.
func FuzzDecodeSnapshot(f *testing.F) {
	core := scheduler.NewCore(8, true)
	spec := scheduler.JobSpec{
		Name: "j", App: "jacobi", ProblemSize: 4000, Iterations: 10,
		InitialTopo: grid.Topology{Rows: 2, Cols: 2},
		Chain:       []grid.Topology{{Rows: 2, Cols: 2}, {Rows: 2, Cols: 4}},
	}
	for i := 0; i < 3; i++ {
		if _, _, err := core.Submit(spec, float64(i)); err != nil {
			f.Fatal(err)
		}
	}
	if _, err := core.Contact(0, grid.Topology{Rows: 2, Cols: 2}, 1.5, 0, 10); err != nil {
		f.Fatal(err)
	}
	f.Add(appendSnapshot(nil, &snapshotBlob{Index: 4, Seq: 9, Clock: 10, State: core.PersistState()}))
	f.Add(appendSnapshot(nil, &snapshotBlob{State: &scheduler.CoreState{Total: 1, Shards: 1}}))
	f.Add([]byte{0x00})
	f.Fuzz(func(t *testing.T, payload []byte) {
		blob, err := decodeSnapshot(payload)
		if err != nil {
			if !errors.Is(err, ErrBadRecord) {
				t.Fatalf("decodeSnapshot returned untyped error %v", err)
			}
			return
		}
		re := appendSnapshot(nil, blob)
		blob2, err := decodeSnapshot(re)
		if err != nil {
			t.Fatalf("canonical re-encode failed to decode: %v", err)
		}
		if !bytes.Equal(re, appendSnapshot(nil, blob2)) {
			t.Fatal("snapshot round trip diverged")
		}
	})
}

// FuzzDecodeFrames feeds arbitrary segment images to the frame reader: it
// must never panic, always return one of the three typed errors (or nil),
// and report a good-prefix length that really is a clean parse boundary.
func FuzzDecodeFrames(f *testing.F) {
	for _, s := range fuzzSeedCorpus() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		ops, good, err := decodeFrames(b)
		if good < 0 || good > len(b) {
			t.Fatalf("good prefix %d out of bounds (len %d)", good, len(b))
		}
		if err != nil {
			if !errors.Is(err, ErrTornTail) && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBadRecord) {
				t.Fatalf("decodeFrames returned untyped error %v", err)
			}
		} else if good != len(b) {
			t.Fatalf("clean parse stopped at %d of %d bytes", good, len(b))
		}
		if errors.Is(err, ErrTornTail) {
			// The contract behind crash recovery: truncating to the good
			// prefix yields a log that parses cleanly with the same records.
			ops2, good2, err2 := decodeFrames(b[:good])
			if err2 != nil || good2 != good || len(ops2) != len(ops) {
				t.Fatalf("torn-tail truncation not clean: err=%v good=%d/%d ops=%d/%d",
					err2, good2, good, len(ops2), len(ops))
			}
		}
	})
}
