package durability

import (
	"fmt"
	"testing"

	"repro/internal/grid"
	"repro/internal/scheduler"
	"repro/internal/workload"
)

// benchQueuedJobs is the recovery-scale target: a daemon killed with 100k
// jobs on the books must come back.
const benchQueuedJobs = 100_000

// seedBenchLog journals benchQueuedJobs submissions (nearly all of which
// queue: the pool holds 36 processors and every job wants 4) into dir,
// optionally finishing with one snapshot so recovery is snapshot-dominated
// instead of replay-dominated.
func seedBenchLog(b *testing.B, dir string, snapshot bool) {
	b.Helper()
	core := scheduler.NewCore(workload.ClusterProcs, true)
	core.DisableTrace() // a 100k-event trace isn't what's being measured
	st, _, err := Open(dir, Options{
		Sync:    SyncNone,
		Capture: func() (*scheduler.CoreState, uint64) { return core.PersistState(), 0 },
	})
	if err != nil {
		b.Fatal(err)
	}
	core.SetJournal(st.Append)
	chain := []grid.Topology{{Rows: 2, Cols: 2}, {Rows: 2, Cols: 4}, {Rows: 4, Cols: 4}}
	for i := 0; i < benchQueuedJobs; i++ {
		spec := scheduler.JobSpec{
			Name: fmt.Sprintf("job-%d", i), App: "jacobi", ProblemSize: 8000,
			Iterations: 10, InitialTopo: chain[0], Chain: chain,
		}
		if _, _, err := core.Submit(spec, float64(i)); err != nil {
			b.Fatal(err)
		}
	}
	if snapshot {
		if err := st.Snapshot(float64(benchQueuedJobs)); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
}

// benchRecover measures one full recovery — Open (scan, read, decode) plus
// Restore (rebuild/replay) — from the seeded directory.
func benchRecover(b *testing.B, dir string) {
	for i := 0; i < b.N; i++ {
		st, rec, err := Open(dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		core, info, err := rec.Restore(func(cs *scheduler.CoreState) (*scheduler.Core, error) {
			if cs == nil {
				c := scheduler.NewCore(workload.ClusterProcs, true)
				c.DisableTrace()
				return c, nil
			}
			return scheduler.NewCoreFromState(cs)
		})
		if err != nil {
			b.Fatal(err)
		}
		if info.Jobs != benchQueuedJobs {
			b.Fatalf("recovered %d jobs, want %d", info.Jobs, benchQueuedJobs)
		}
		if core.QueueLen() == 0 {
			b.Fatal("recovered an empty queue")
		}
		st.Close()
	}
	b.ReportMetric(float64(benchQueuedJobs)/1000, "kjobs")
}

// BenchmarkRecovery measures cold-start recovery of a scheduler with 100k
// queued jobs, both replay-only (pure log, the worst case) and
// snapshot-dominated (the steady-state case with a sane cadence).
func BenchmarkRecovery(b *testing.B) {
	b.Run("replay-100k", func(b *testing.B) {
		dir := b.TempDir()
		seedBenchLog(b, dir, false)
		b.ResetTimer()
		benchRecover(b, dir)
	})
	b.Run("snapshot-100k", func(b *testing.B) {
		dir := b.TempDir()
		seedBenchLog(b, dir, true)
		b.ResetTimer()
		benchRecover(b, dir)
	})
}
