package durability

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/grid"
	"repro/internal/scheduler"
)

// sampleOps covers every op kind with awkward values (zero, negative id,
// empty strings, long chains).
func sampleOps() []scheduler.Op {
	return []scheduler.Op{
		{Kind: scheduler.OpSubmit, Now: 0, Spec: scheduler.JobSpec{
			Name: "LU", App: "lu", ProblemSize: 21000, BlockSize: 120, Iterations: 10,
			Priority: 2, InitialTopo: grid.Topology{Rows: 2, Cols: 3},
			Chain: []grid.Topology{{Rows: 2, Cols: 3}, {Rows: 3, Cols: 3}, {Rows: 4, Cols: 4}},
		}},
		{Kind: scheduler.OpSubmit, Now: 1.25, Spec: scheduler.JobSpec{Name: "", App: "", InitialTopo: grid.Row1D(1)}},
		{Kind: scheduler.OpContact, Now: 450.75, JobID: 3, Topo: grid.Topology{Rows: 5, Cols: 2}, IterTime: 12.625, RedistTime: 0.5},
		{Kind: scheduler.OpResizeComplete, Now: 451.5, JobID: 3, RedistTime: 2.25},
		{Kind: scheduler.OpFinish, Now: 900, JobID: 0},
		{Kind: scheduler.OpFail, Now: 1e9, JobID: 1 << 20},
		{Kind: scheduler.OpRebalance, Now: 1234.5},
	}
}

// TestRecordRoundTrip drives every op kind through the binary record codec.
func TestRecordRoundTrip(t *testing.T) {
	for _, op := range sampleOps() {
		payload := appendOp(nil, op)
		got, err := decodeOp(payload)
		if err != nil {
			t.Fatalf("decode %s: %v", op.Kind, err)
		}
		if !reflect.DeepEqual(op, got) {
			t.Fatalf("round trip %s:\n want %+v\n  got %+v", op.Kind, op, got)
		}
	}
}

// TestStoreRoundTrip appends ops through a Store, closes it, and reopens:
// the recovery tail must be exactly the appended sequence, in order.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, rec, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != nil || len(rec.Ops) != 0 || rec.TornTail {
		t.Fatalf("fresh dir produced recovery state: %+v", rec)
	}
	want := sampleOps()
	for _, op := range want {
		if err := st.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	if st.Index() != uint64(len(want)) {
		t.Fatalf("index = %d, want %d", st.Index(), len(want))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.TornTail {
		t.Fatal("clean log reported a torn tail")
	}
	if !reflect.DeepEqual(rec.Ops, want) {
		t.Fatalf("recovered ops diverged:\n want %+v\n  got %+v", want, rec.Ops)
	}
}

// TestTornTailTruncated writes ops, then chops bytes off the final frame:
// recovery must keep every whole record, flag the torn tail, and truncate
// the file so the next open is clean.
func TestTornTailTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		dir := t.TempDir()
		st, _, err := Open(dir, Options{Sync: SyncNone})
		if err != nil {
			t.Fatal(err)
		}
		ops := sampleOps()
		for _, op := range ops {
			if err := st.Append(op); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}

		seg := filepath.Join(dir, segmentName(0))
		info, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		last := ops[len(ops)-1]
		frameLen := int64(len(appendFrame(nil, appendOp(nil, last))))
		cut := 1 + rng.Int63n(frameLen-1) // leave a strict prefix of the final frame
		if err := os.Truncate(seg, info.Size()-cut); err != nil {
			t.Fatal(err)
		}

		st2, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("trial %d: open after torn write: %v", trial, err)
		}
		if !rec.TornTail {
			t.Fatalf("trial %d: torn tail not reported", trial)
		}
		if !reflect.DeepEqual(rec.Ops, ops[:len(ops)-1]) {
			t.Fatalf("trial %d: torn recovery lost whole records: got %d ops", trial, len(rec.Ops))
		}
		st2.Close()

		// The torn bytes are gone: a third open is clean.
		_, rec, err = Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rec.TornTail {
			t.Fatalf("trial %d: tail still torn after truncation", trial)
		}
	}
}

// TestCorruptionRefused flips a byte in a non-final record: recovery must
// refuse the log with ErrCorrupt, not silently skip damage.
func TestCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range sampleOps() {
		if err := st.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	seg := filepath.Join(dir, segmentName(0))
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/3] ^= 0xFF
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over mid-log damage: err = %v, want ErrCorrupt", err)
	}
}

// TestSnapshotRotatesAndTruncates checks the cadence machinery: snapshots
// land on segment boundaries, recovery resumes from the newest one, and
// superseded files are deleted (retaining one fallback generation).
func TestSnapshotRotatesAndTruncates(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(11))
	core := scheduler.NewCore(driverProcs, true)

	var st *Store
	st, _, err := Open(dir, Options{
		Sync:          SyncNone,
		SnapshotEvery: 10,
		Capture:       func() (*scheduler.CoreState, uint64) { return core.PersistState(), 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	core.SetJournal(st.Append)
	d := newDriver(t, rng, core)
	for i := 0; i < 95; i++ {
		d.step()
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	segs, snaps, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("retained %d snapshots, want the newest 2", len(snaps))
	}
	for _, seg := range segs {
		if seg.first < snaps[0].first {
			t.Fatalf("segment %s predates the oldest retained snapshot (%d)", seg.path, snaps[0].first)
		}
	}

	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.State == nil {
		t.Fatal("recovery ignored the snapshot")
	}
	recovered, info, err := rec.Restore(buildRecovered)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Recovered {
		t.Fatal("restore did not report recovery")
	}
	if info.Replayed >= 95 {
		t.Fatalf("replayed %d records despite snapshots", info.Replayed)
	}
	requireSameState(t, core, recovered)
}

// TestSnapshotFallback corrupts the newest snapshot: recovery must fall
// back to the retained previous generation and still reach the same state.
func TestSnapshotFallback(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(13))
	core := scheduler.NewCore(driverProcs, true)
	st, _, err := Open(dir, Options{
		Sync:          SyncNone,
		SnapshotEvery: 10,
		Capture:       func() (*scheduler.CoreState, uint64) { return core.PersistState(), 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	core.SetJournal(st.Append)
	d := newDriver(t, rng, core)
	for i := 0; i < 60; i++ {
		d.step()
	}
	st.Close()

	_, snaps, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 2 {
		t.Fatalf("need 2 snapshots for a fallback test, have %d", len(snaps))
	}
	newest := snaps[len(snaps)-1].path
	b, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xFF
	if err := os.WriteFile(newest, b, 0o644); err != nil {
		t.Fatal(err)
	}

	var logged []string
	_, rec, err := Open(dir, Options{Logf: func(f string, a ...any) {
		logged = append(logged, f)
	}})
	if err != nil {
		t.Fatal(err)
	}
	recovered, _, err := rec.Restore(buildRecovered)
	if err != nil {
		t.Fatal(err)
	}
	requireSameState(t, core, recovered)
	if len(logged) == 0 || !strings.Contains(logged[0], "skipping snapshot") {
		t.Fatalf("corrupt snapshot skip was not logged: %v", logged)
	}
}
