package durability

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/scheduler"
)

// ErrReplay marks a journaled operation that failed to re-apply during
// recovery. Ops are validated before they are journaled and the core is
// deterministic, so this means the journal and the state it is being
// replayed into do not belong together.
var ErrReplay = errors.New("durability: journal replay diverged")

// Options configures a Store.
type Options struct {
	// SnapshotEvery takes a state snapshot (and truncates the log) each
	// time this many records accumulate past the previous snapshot.
	// 0 disables automatic snapshots.
	SnapshotEvery uint64
	// Sync is the fsync policy for appends (default SyncAlways).
	Sync SyncPolicy
	// SyncInterval is the flush period under SyncInterval (default 100ms).
	SyncInterval time.Duration
	// Capture produces the scheduler image and the watch-event sequence
	// number for a snapshot. It is called synchronously from inside
	// Append — i.e. from the journal hook, before the triggering op has
	// mutated anything — so the captured state is exactly the applied
	// record prefix. Required for snapshots.
	Capture func() (*scheduler.CoreState, uint64)
	// Logf receives non-fatal notices (skipped corrupt snapshots, failed
	// cleanup). Defaults to discarding them.
	Logf func(format string, args ...any)
}

// Store is an open WAL directory: the append side of the journal plus the
// snapshot machinery. Append is safe for use from the scheduler's journal
// hook (the scheduler already serializes ops; the Store's own mutex only
// fences the background sync loop and explicit Snapshot calls).
type Store struct {
	mu   sync.Mutex
	dir  string
	opts Options
	w    *wal
	// lastSnap is the covered-record index of the newest durable snapshot.
	lastSnap uint64
	closed   bool
	stop     chan struct{}
	loopDone chan struct{}
}

// Recovery is everything Open found in the directory: the newest valid
// snapshot (nil at genesis) and the journaled tail to replay after it.
type Recovery struct {
	// State is the snapshot image, nil when recovering from genesis.
	State *scheduler.CoreState
	// Ops is the journaled tail in append order.
	Ops []scheduler.Op
	// TornTail reports that a torn final record was discarded — the
	// signature of a crash mid-append. The truncated op was never
	// acknowledged, so discarding it is correct, not lossy.
	TornTail bool

	seq   uint64  // watch-event seq at the snapshot
	clock float64 // scheduler clock at the snapshot
}

// RestoreInfo summarizes a completed recovery.
type RestoreInfo struct {
	// Recovered is false for a genesis boot of an empty directory.
	Recovered bool
	// Jobs is the number of jobs known after recovery (any state).
	Jobs int
	// Replayed is the number of journal records re-applied.
	Replayed int
	// Seq is the watch-event sequence number the recovered Server must
	// resume from (scheduler.NewServerRecovered).
	Seq uint64
	// Clock is the last recovered scheduler timestamp; the recovered
	// Server's clock resumes past it.
	Clock float64
}

// Open recovers a WAL directory (creating it if needed) and readies it
// for appends. The returned Recovery holds the snapshot and tail to
// replay — apply them via Restore *before* installing the store as the
// core's journal hook, or the replay would be journaled twice.
//
// New appends always go to a fresh segment starting at the recovered
// record index, so a truncated torn tail can never be appended onto.
func Open(dir string, opts Options) (*Store, *Recovery, error) {
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = 100 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("durability: create %s: %w", dir, err)
	}
	segs, snaps, err := scanDir(dir)
	if err != nil {
		return nil, nil, err
	}

	rec := &Recovery{}
	var snapIndex uint64
	for i := len(snaps) - 1; i >= 0; i-- {
		blob, err := readSnapshot(snaps[i].path)
		if err != nil {
			// A snapshot is published atomically, so damage here is disk
			// rot, not a crash artifact; older snapshots plus their
			// retained segments still recover, losing nothing.
			opts.Logf("durability: skipping snapshot %s: %v", snaps[i].path, err)
			continue
		}
		rec.State = blob.State
		rec.seq = blob.Seq
		rec.clock = blob.Clock
		snapIndex = blob.Index
		break
	}

	index := snapIndex
	for i, seg := range segs {
		if seg.first < snapIndex {
			continue // covered by the snapshot; removed on the next truncation
		}
		if seg.first != index {
			return nil, nil, fmt.Errorf("%w: segment %s starts at record %d, want %d",
				ErrCorrupt, seg.path, seg.first, index)
		}
		b, err := os.ReadFile(seg.path)
		if err != nil {
			return nil, nil, fmt.Errorf("durability: read segment: %w", err)
		}
		ops, good, derr := decodeFrames(b)
		if derr != nil {
			if !errors.Is(derr, ErrTornTail) || i != len(segs)-1 {
				// Torn tails can only exist where writing stopped: the
				// final segment. Anything else is real corruption.
				return nil, nil, fmt.Errorf("segment %s: %w", seg.path, derr)
			}
			opts.Logf("durability: discarding torn tail of %s (%d intact bytes): %v", seg.path, good, derr)
			if terr := os.Truncate(seg.path, int64(good)); terr != nil {
				return nil, nil, fmt.Errorf("durability: truncate torn tail: %w", terr)
			}
			rec.TornTail = true
		}
		rec.Ops = append(rec.Ops, ops...)
		index += uint64(len(ops))
	}

	w, err := openWALSegment(dir, index, opts.Sync)
	if err != nil {
		return nil, nil, err
	}
	st := &Store{dir: dir, opts: opts, w: w, lastSnap: snapIndex}
	if opts.Sync == SyncInterval {
		st.stop = make(chan struct{})
		st.loopDone = make(chan struct{})
		go st.syncLoop()
	}
	return st, rec, nil
}

// Restore builds the recovered core: build receives the snapshot state
// (nil at genesis) and returns a core configured with its policy/arbiter
// — configuration is not journaled, so recovery must install the same
// arbitration the crashed process ran, or the replayed decisions could
// diverge. Restore then re-applies the journaled tail. Install the
// store's Append as the core's journal hook only after Restore returns.
func (r *Recovery) Restore(build func(st *scheduler.CoreState) (*scheduler.Core, error)) (*scheduler.Core, RestoreInfo, error) {
	core, err := build(r.State)
	if err != nil {
		return nil, RestoreInfo{}, err
	}
	info := RestoreInfo{
		Recovered: r.State != nil || len(r.Ops) > 0,
		Seq:       r.seq,
		Clock:     r.clock,
	}
	for i, op := range r.Ops {
		if err := core.Apply(op); err != nil {
			return nil, info, fmt.Errorf("%w: record %d (%s at t=%.3f): %v", ErrReplay, i, op.Kind, op.Now, err)
		}
		if op.Now > info.Clock {
			info.Clock = op.Now
		}
	}
	info.Replayed = len(r.Ops)
	// Replayed ops re-recorded their allocation events on the fresh trace;
	// the original server published exactly those events after the
	// snapshot, so the recovered sequence number is the snapshot's plus
	// the replayed trace length.
	info.Seq = r.seq + uint64(len(core.Events))
	info.Jobs = len(core.Jobs())
	return core, info, nil
}

// Append journals one scheduler op; it is the scheduler.JournalFunc a
// recovered (or fresh) core installs. When the configured snapshot cadence
// is reached it first captures a snapshot — the op being appended is the
// first record of the new log generation.
func (s *Store) Append(op scheduler.Op) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("durability: store closed")
	}
	if s.opts.SnapshotEvery > 0 && s.opts.Capture != nil &&
		s.w.index-s.lastSnap >= s.opts.SnapshotEvery {
		if err := s.snapshotLocked(op.Now); err != nil {
			// Snapshot failure (disk pressure, say) must not refuse the
			// op: the log simply keeps growing until a snapshot succeeds.
			s.opts.Logf("durability: snapshot at record %d failed: %v", s.w.index, err)
		}
	}
	return s.w.append(op)
}

// Snapshot takes a snapshot immediately, recording clock as the scheduler
// time it covers. Callers must ensure the capture runs quiesced — either
// from within the journal hook's call chain or with the owning server
// idle.
func (s *Store) Snapshot(clock float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("durability: store closed")
	}
	if s.opts.Capture == nil {
		return fmt.Errorf("durability: no Capture configured")
	}
	return s.snapshotLocked(clock)
}

// snapshotLocked rotates the log and publishes a snapshot covering every
// record before the rotation point, then deletes the superseded files.
func (s *Store) snapshotLocked(clock float64) error {
	state, seq := s.opts.Capture()
	idx := s.w.index
	if err := s.w.rotate(); err != nil {
		return err
	}
	if _, err := writeSnapshot(s.dir, &snapshotBlob{Index: idx, Seq: seq, Clock: clock, State: state}); err != nil {
		return err
	}
	s.lastSnap = idx
	s.truncateObsolete()
	return nil
}

// truncateObsolete trims the directory after a successful snapshot. The
// newest TWO snapshots are retained, along with every segment the older of
// the two still needs: if disk rot ever invalidates the newest snapshot,
// recovery falls back one generation instead of facing an orphaned log.
// Failures are only logged: stale files cost disk, not correctness.
func (s *Store) truncateObsolete() {
	segs, snaps, err := scanDir(s.dir)
	if err != nil {
		s.opts.Logf("durability: truncation scan failed: %v", err)
		return
	}
	if len(snaps) < 2 {
		return
	}
	keep := snaps[len(snaps)-2].first
	for _, seg := range segs {
		if seg.first < keep {
			if err := os.Remove(seg.path); err != nil {
				s.opts.Logf("durability: remove %s: %v", seg.path, err)
			}
		}
	}
	for _, sn := range snaps[:len(snaps)-2] {
		if err := os.Remove(sn.path); err != nil {
			s.opts.Logf("durability: remove %s: %v", sn.path, err)
		}
	}
}

// Sync flushes outstanding appends to stable storage (a no-op under
// SyncAlways, where every append already did).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	return s.w.sync()
}

// Index returns the global index of the next record to append.
func (s *Store) Index() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.index
}

// Close flushes and closes the log. Further Appends fail.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.w.close()
	s.mu.Unlock()
	if s.stop != nil {
		close(s.stop)
		<-s.loopDone
	}
	return err
}

// syncLoop batches fsyncs under SyncInterval.
func (s *Store) syncLoop() {
	defer close(s.loopDone)
	t := time.NewTicker(s.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.mu.Lock()
			if !s.closed {
				if err := s.w.sync(); err != nil {
					s.opts.Logf("durability: background sync: %v", err)
				}
			}
			s.mu.Unlock()
		}
	}
}
