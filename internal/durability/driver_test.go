package durability

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/grid"
	"repro/internal/scheduler"
)

// driverProcs is the cluster size used by the randomized tests: small
// enough that submissions contend and the queue stays populated.
const driverProcs = 16

// driver feeds a journaled core a random but always-valid op stream — the
// same five inputs a live reshaped daemon receives — and remembers every op
// it acknowledged, so tests can rebuild the expected state independently.
type driver struct {
	t    *testing.T
	rng  *rand.Rand
	core *scheduler.Core
	now  float64
	// acked holds every op whose core method returned success (which, with
	// a journal installed, implies the journal accepted it first).
	acked []scheduler.Op
	// pendingResize marks running jobs granted a resize they have not yet
	// confirmed with ResizeComplete.
	pendingResize map[int]bool
	submitted     int
}

func newDriver(t *testing.T, rng *rand.Rand, core *scheduler.Core) *driver {
	return &driver{t: t, rng: rng, core: core, pendingResize: map[int]bool{}}
}

// ladder is the processor chain every driver job resizes along.
var ladder = []grid.Topology{grid.Row1D(2), grid.Row1D(4), grid.Row1D(8)}

func (d *driver) spec() scheduler.JobSpec {
	init := ladder[d.rng.Intn(len(ladder))]
	return scheduler.JobSpec{
		Name:        fmt.Sprintf("job-%d", d.submitted),
		App:         "jacobi",
		ProblemSize: 4000,
		BlockSize:   64,
		Iterations:  10,
		Priority:    d.rng.Intn(3),
		InitialTopo: init,
		Chain:       ladder,
	}
}

// contactable lists running jobs with no resize in flight, in id order.
func (d *driver) contactable() []*scheduler.Job {
	var out []*scheduler.Job
	for _, j := range d.core.Jobs() {
		if j.State == scheduler.Running && !d.pendingResize[j.ID] {
			out = append(out, j)
		}
	}
	return out
}

func (d *driver) pending() []int {
	var out []int
	for _, j := range d.core.Jobs() {
		if d.pendingResize[j.ID] {
			out = append(out, j.ID)
		}
	}
	return out
}

// step performs one random valid operation against the core and records it
// as acknowledged.
func (d *driver) step() {
	d.t.Helper()
	d.now += 0.5 + d.rng.Float64()
	running := d.contactable()
	pend := d.pending()

	roll := d.rng.Intn(10)
	switch {
	case roll < 4 || (len(running) == 0 && len(pend) == 0):
		sp := d.spec()
		if _, _, err := d.core.Submit(sp, d.now); err != nil {
			d.t.Fatalf("submit: %v", err)
		}
		d.submitted++
		d.acked = append(d.acked, scheduler.Op{Kind: scheduler.OpSubmit, Now: d.now, Spec: sp})
	case len(pend) > 0 && (roll < 6 || len(running) == 0):
		id := pend[d.rng.Intn(len(pend))]
		red := 0.1 + d.rng.Float64()
		if _, err := d.core.ResizeComplete(id, red, d.now); err != nil {
			d.t.Fatalf("resize-complete job %d: %v", id, err)
		}
		delete(d.pendingResize, id)
		d.acked = append(d.acked, scheduler.Op{Kind: scheduler.OpResizeComplete, Now: d.now, JobID: id, RedistTime: red})
	case len(running) > 0 && roll < 8:
		j := running[d.rng.Intn(len(running))]
		iter := 1 + d.rng.Float64()*10
		topo := j.Topo
		dec, err := d.core.Contact(j.ID, topo, iter, 0, d.now)
		if err != nil {
			d.t.Fatalf("contact job %d: %v", j.ID, err)
		}
		if dec.Action != scheduler.ActionNone {
			d.pendingResize[j.ID] = true
		}
		d.acked = append(d.acked, scheduler.Op{Kind: scheduler.OpContact, Now: d.now, JobID: j.ID, Topo: topo, IterTime: iter})
	default:
		j := running[d.rng.Intn(len(running))]
		kind, op := scheduler.OpFinish, "finish"
		var err error
		if d.rng.Intn(4) == 0 {
			kind, op = scheduler.OpFail, "fail"
			_, err = d.core.Fail(j.ID, d.now)
		} else {
			_, err = d.core.Finish(j.ID, d.now)
		}
		if err != nil {
			d.t.Fatalf("%s job %d: %v", op, j.ID, err)
		}
		d.acked = append(d.acked, scheduler.Op{Kind: kind, Now: d.now, JobID: j.ID})
	}
}

// nextOp fabricates one more valid op without applying it to the core: the
// crash tests append it to the log and then "die" at various points of its
// lifecycle.
func (d *driver) nextOp() scheduler.Op {
	d.now += 0.5 + d.rng.Float64()
	if running := d.contactable(); len(running) > 0 && d.rng.Intn(2) == 0 {
		j := running[d.rng.Intn(len(running))]
		return scheduler.Op{Kind: scheduler.OpContact, Now: d.now, JobID: j.ID, Topo: j.Topo, IterTime: 1 + d.rng.Float64()*10}
	}
	return scheduler.Op{Kind: scheduler.OpSubmit, Now: d.now, Spec: d.spec()}
}

// replayOps rebuilds a core by applying ops to a fresh cluster — the
// test's independent model of what recovery must produce.
func replayOps(t *testing.T, ops []scheduler.Op) *scheduler.Core {
	t.Helper()
	core := scheduler.NewCore(driverProcs, true)
	for i, op := range ops {
		if err := core.Apply(op); err != nil {
			t.Fatalf("model replay: op %d (%s): %v", i, op.Kind, err)
		}
	}
	return core
}

// requireSameState asserts two cores hold bit-identical scheduling state:
// every job (spec, state, topology, timestamps, profile, in-flight
// shrink), the pool occupancy, the queue contents and the busy-time
// integral. PersistState is a faithful deep image of all of it.
func requireSameState(t *testing.T, want, got *scheduler.Core) {
	t.Helper()
	ws, gs := want.PersistState(), got.PersistState()
	if !reflect.DeepEqual(ws, gs) {
		for i := range ws.Jobs {
			if i < len(gs.Jobs) && !reflect.DeepEqual(ws.Jobs[i], gs.Jobs[i]) {
				t.Errorf("job %d diverged:\n want %+v\n  got %+v", ws.Jobs[i].ID, ws.Jobs[i], gs.Jobs[i])
			}
		}
		t.Fatalf("recovered state diverged: want %d jobs (next id %d, busy %.3f), got %d jobs (next id %d, busy %.3f)",
			len(ws.Jobs), ws.NextID, ws.BusySeconds, len(gs.Jobs), gs.NextID, gs.BusySeconds)
	}
	if want.Free() != got.Free() || want.QueueLen() != got.QueueLen() {
		t.Fatalf("recovered pool diverged: want free=%d queue=%d, got free=%d queue=%d",
			want.Free(), want.QueueLen(), got.Free(), got.QueueLen())
	}
}

// buildRecovered is the standard Restore callback for the driver cluster.
func buildRecovered(st *scheduler.CoreState) (*scheduler.Core, error) {
	if st == nil {
		return scheduler.NewCore(driverProcs, true), nil
	}
	return scheduler.NewCoreFromState(st)
}
