package redistrib

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/blockcyclic"
	"repro/internal/grid"
	"repro/internal/mpi"
)

// checkResample verifies Resample against direct distribution.
func checkResample(src, dst blockcyclic.Layout, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	global := make([]float64, src.M*src.N)
	for i := range global {
		global[i] = rng.NormFloat64()
	}
	srcPieces := blockcyclic.Distribute(global, src)
	wantPieces := blockcyclic.Distribute(global, dst)
	p, q := src.Grid.Count(), dst.Grid.Count()
	world := p
	if q > world {
		world = q
	}
	return mpi.Run(world, func(c *mpi.Comm) error {
		var mine []float64
		if c.Rank() < p {
			mine = srcPieces[c.Rank()].Data
		}
		got, err := Resample(c, src, mine, dst)
		if err != nil {
			return err
		}
		if c.Rank() >= q {
			if got != nil {
				return fmt.Errorf("rank %d outside dst grid got data", c.Rank())
			}
			return nil
		}
		want := wantPieces[c.Rank()].Data
		if len(got) != len(want) {
			return fmt.Errorf("rank %d: %d floats, want %d", c.Rank(), len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("rank %d: element %d = %v, want %v", c.Rank(), i, got[i], want[i])
			}
		}
		return nil
	})
}

func TestResampleChangesBlockSize(t *testing.T) {
	src := l2d(12, 12, 2, 2, grid.Topology{Rows: 2, Cols: 2})
	dst := l2d(12, 12, 3, 4, grid.Topology{Rows: 2, Cols: 2})
	if err := checkResample(src, dst, 1); err != nil {
		t.Fatal(err)
	}
}

func TestResampleChangesGridAndBlocks(t *testing.T) {
	src := l2d(14, 10, 3, 2, grid.Topology{Rows: 1, Cols: 3})
	dst := l2d(14, 10, 2, 5, grid.Topology{Rows: 2, Cols: 2})
	if err := checkResample(src, dst, 2); err != nil {
		t.Fatal(err)
	}
}

func TestResampleMatchesScheduleWhenBlocksEqual(t *testing.T) {
	src := l2d(12, 12, 2, 2, grid.Topology{Rows: 2, Cols: 2})
	dst := l2d(12, 12, 2, 2, grid.Topology{Rows: 2, Cols: 3})
	rng := rand.New(rand.NewSource(3))
	global := make([]float64, 144)
	for i := range global {
		global[i] = rng.NormFloat64()
	}
	srcPieces := blockcyclic.Distribute(global, src)
	err := mpi.Run(6, func(c *mpi.Comm) error {
		var mine []float64
		if c.Rank() < 4 {
			mine = srcPieces[c.Rank()].Data
		}
		viaSchedule, err := Redistribute(c, src, mine, dst)
		if err != nil {
			return err
		}
		viaResample, err := Resample(c, src, mine, dst)
		if err != nil {
			return err
		}
		if len(viaSchedule) != len(viaResample) {
			return fmt.Errorf("rank %d: lengths differ", c.Rank())
		}
		for i := range viaSchedule {
			if viaSchedule[i] != viaResample[i] {
				return fmt.Errorf("rank %d: differ at %d", c.Rank(), i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestResamplePropertyRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	f := func(rawM, rawN, mb1, nb1, mb2, nb2, g1r, g1c, g2r, g2c uint8, seed int64) bool {
		m := int(rawM%16) + 1
		n := int(rawN%16) + 1
		src := l2d(m, n, int(mb1%4)+1, int(nb1%4)+1,
			grid.Topology{Rows: int(g1r%3) + 1, Cols: int(g1c%3) + 1})
		dst := l2d(m, n, int(mb2%4)+1, int(nb2%4)+1,
			grid.Topology{Rows: int(g2r%3) + 1, Cols: int(g2c%3) + 1})
		return checkResample(src, dst, seed) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestResampleValidates(t *testing.T) {
	err := mpi.Run(1, func(c *mpi.Comm) error {
		a := l2d(4, 4, 2, 2, grid.Topology{Rows: 1, Cols: 1})
		b := l2d(4, 6, 2, 2, grid.Topology{Rows: 1, Cols: 1})
		if _, err := Resample(c, a, make([]float64, 16), b); err == nil {
			return fmt.Errorf("shape mismatch accepted")
		}
		if _, err := Resample(c, a, make([]float64, 3), a); err == nil {
			return fmt.Errorf("wrong local size accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
