package redistrib

import (
	"fmt"

	"repro/internal/blockcyclic"
	"repro/internal/mpi"
)

// Resample redistributes between two layouts of the same global array that
// may differ in block size as well as grid shape — the generic fallback the
// paper alludes to when noting the library "can be extended to support
// other global data structures and other redistribution algorithms". Unlike
// the circulant-schedule path, blocks do not map wholly, so the exchange is
// element-wise over a single Alltoallv phase: every rank packs, per
// destination, its local elements in sender-storage order; receivers replay
// each sender's enumeration (both sides know both layouts) to unpack.
//
// Complexity is O(elements) to pack and O(sum of senders' local extents) to
// unpack, higher than Plan.Execute; prefer the schedule-based path when the
// block sizes match.
func Resample(c *mpi.Comm, src blockcyclic.Layout, srcData []float64, dst blockcyclic.Layout) ([]float64, error) {
	if err := src.Validate(); err != nil {
		return nil, err
	}
	if err := dst.Validate(); err != nil {
		return nil, err
	}
	if src.M != dst.M || src.N != dst.N {
		return nil, fmt.Errorf("redistrib: resample shape mismatch %dx%d vs %dx%d", src.M, src.N, dst.M, dst.N)
	}
	me := c.Rank()
	p := src.Grid.Count()
	q := dst.Grid.Count()
	if c.Size() < p || c.Size() < q {
		return nil, fmt.Errorf("redistrib: communicator size %d smaller than grids (%d src, %d dst)",
			c.Size(), p, q)
	}

	sendbufs := make([][]float64, c.Size())
	if me < p {
		if len(srcData) != src.LocalSize(me) {
			return nil, fmt.Errorf("redistrib: rank %d source data has %d floats, layout expects %d",
				me, len(srcData), src.LocalSize(me))
		}
		pr, pc := src.Coords(me)
		rows, cols := src.LocalRows(pr), src.LocalCols(pc)
		for li := 0; li < rows; li++ {
			for lj := 0; lj < cols; lj++ {
				gi, gj := src.LocalToGlobal(pr, pc, li, lj)
				dr, dc, _, _ := dst.GlobalToLocal(gi, gj)
				dest := dst.Rank(dr, dc)
				sendbufs[dest] = append(sendbufs[dest], srcData[li*cols+lj])
			}
		}
	}
	recv := c.Alltoallv(sendbufs)

	if me >= q {
		return nil, nil
	}
	out := make([]float64, dst.LocalSize(me))
	_, myC := dst.Coords(me)
	dstCols := dst.LocalCols(myC)
	for s := 0; s < p; s++ {
		buf := recv[s]
		if len(buf) == 0 {
			continue
		}
		spr, spc := src.Coords(s)
		rows, cols := src.LocalRows(spr), src.LocalCols(spc)
		k := 0
		for li := 0; li < rows; li++ {
			for lj := 0; lj < cols; lj++ {
				gi, gj := src.LocalToGlobal(spr, spc, li, lj)
				dr, dc, dli, dlj := dst.GlobalToLocal(gi, gj)
				if dst.Rank(dr, dc) != me {
					continue
				}
				out[dli*dstCols+dlj] = buf[k]
				k++
			}
		}
		if k != len(buf) {
			return nil, fmt.Errorf("redistrib: resample unpack consumed %d of %d floats from rank %d",
				k, len(buf), s)
		}
	}
	return out, nil
}
