package redistrib

import (
	"fmt"

	"repro/internal/blockcyclic"
	"repro/internal/grid"
	"repro/internal/mpi"
)

// tagMulti is the base tag for fused multi-array payloads. Each schedule
// step uses tagMulti+step, so a rank can arm the receives for every step of
// an execution before any send is posted without two in-flight messages
// from the same peer becoming ambiguous. Tags [tagMulti, tagMulti+Steps)
// are reserved during a MultiPlan execution.
const tagMulti = 10000

// MultiPlan fuses the redistribution of several block-cyclic arrays that
// share one (source grid, destination grid) pair into a single schedule
// execution: per communication step each communicating pair exchanges one
// message carrying every array's blocks back to back, instead of one
// message per array. The wire format is deterministic sub-buffer framing —
// both sides compute each array's per-step block class (and therefore its
// exact float count and offset) from the shared layout tables, so no header
// is transmitted. Array order is the registration order and must match on
// all ranks.
//
// The per-array Plan path (Plan.Execute) is retained as the reference
// implementation; differential tests pin this engine's output bit-identical
// to it.
type MultiPlan struct {
	plans []*Plan
}

// NewMultiPlan validates that every (src, dst) layout pair describes a
// legal redistribution and that all pairs share the same processor grids,
// then builds the fused plan. The circulant schedule tables are computed
// once and shared across arrays (they depend only on the grid pair).
func NewMultiPlan(srcs, dsts []blockcyclic.Layout) (*MultiPlan, error) {
	if len(srcs) == 0 {
		return nil, fmt.Errorf("redistrib: MultiPlan needs at least one array")
	}
	if len(srcs) != len(dsts) {
		return nil, fmt.Errorf("redistrib: MultiPlan has %d source layouts but %d destination layouts", len(srcs), len(dsts))
	}
	first, err := NewPlan(srcs[0], dsts[0])
	if err != nil {
		return nil, fmt.Errorf("redistrib: array 0: %w", err)
	}
	plans := make([]*Plan, len(srcs))
	plans[0] = first
	for i := 1; i < len(srcs); i++ {
		if srcs[i].Grid != srcs[0].Grid || dsts[i].Grid != dsts[0].Grid {
			return nil, fmt.Errorf("redistrib: array %d grids (%v -> %v) differ from array 0 (%v -> %v)",
				i, srcs[i].Grid, dsts[i].Grid, srcs[0].Grid, dsts[0].Grid)
		}
		pl, err := newPlanSharedSchedule(srcs[i], dsts[i], first)
		if err != nil {
			return nil, fmt.Errorf("redistrib: array %d: %w", i, err)
		}
		plans[i] = pl
	}
	return &MultiPlan{plans: plans}, nil
}

// newPlanSharedSchedule builds a Plan for one array reusing the schedule
// and peer tables of ref, whose grids must match.
func newPlanSharedSchedule(src, dst blockcyclic.Layout, ref *Plan) (*Plan, error) {
	if err := src.Validate(); err != nil {
		return nil, err
	}
	if err := dst.Validate(); err != nil {
		return nil, err
	}
	if src.M != dst.M || src.N != dst.N {
		return nil, fmt.Errorf("redistrib: global shape mismatch %dx%d vs %dx%d", src.M, src.N, dst.M, dst.N)
	}
	if src.MB != dst.MB || src.NB != dst.NB {
		return nil, fmt.Errorf("redistrib: block shape mismatch %dx%d vs %dx%d", src.MB, src.NB, dst.MB, dst.NB)
	}
	return &Plan{
		Src: src, Dst: dst,
		rowSched: ref.rowSched, colSched: ref.colSched,
		rowSendTo: ref.rowSendTo, rowRecvFrom: ref.rowRecvFrom,
		colSendTo: ref.colSendTo, colRecvFrom: ref.colRecvFrom,
	}, nil
}

// Arrays returns the number of fused arrays.
func (mp *MultiPlan) Arrays() int { return len(mp.plans) }

// Steps returns the number of communication steps in the shared schedule.
func (mp *MultiPlan) Steps() int { return mp.plans[0].Steps() }

// SrcGrid and DstGrid return the shared grid pair.
func (mp *MultiPlan) SrcGrid() grid.Topology { return mp.plans[0].Src.Grid }
func (mp *MultiPlan) DstGrid() grid.Topology { return mp.plans[0].Dst.Grid }

// incoming describes one step's inbound fused payload on the receiving
// rank: the per-array block classes and sizes that frame the wire buffer.
type incoming struct {
	step      int
	buf       []float64 // filled by the armed receive, or the self-transfer
	sizes     []int     // per-array float counts (framing offsets)
	rowBlocks [][]int   // per-array row block classes
	colBlocks [][]int
	self      bool
}

// Execute redistributes every fused array at once. srcData holds the
// caller's local piece of each array in plan order (entries may be nil on
// ranks outside the source grid or with empty local pieces); the result
// holds the new local pieces (nil entries on ranks outside the destination
// grid). Collective over c, like Plan.Execute.
func (mp *MultiPlan) Execute(c *mpi.Comm, srcData [][]float64) [][]float64 {
	out, _ := mp.ExecuteStats(c, srcData)
	return out
}

// ExecuteStats is Execute plus per-rank traffic statistics. The execution
// is pipelined: the rank arms every receive of the whole schedule first
// (persistent requests started as a batch), then packs and posts its sends
// step by step, and only then waits and unpacks — pack, send, recv and
// unpack of different steps overlap instead of serializing.
func (mp *MultiPlan) ExecuteStats(c *mpi.Comm, srcData [][]float64) ([][]float64, Stats) {
	base := mp.plans[0]
	me := c.Rank()
	p := base.Src.Grid.Count()
	q := base.Dst.Grid.Count()
	if c.Size() < p || c.Size() < q {
		panic(fmt.Sprintf("redistrib: communicator size %d smaller than grids (%d src, %d dst)", c.Size(), p, q))
	}
	if len(srcData) != len(mp.plans) {
		panic(fmt.Sprintf("redistrib: %d source slices for %d fused arrays", len(srcData), len(mp.plans)))
	}
	inSrc := me < p
	inDst := me < q
	if inSrc {
		for a, pl := range mp.plans {
			if len(srcData[a]) != pl.Src.LocalSize(me) {
				panic(fmt.Sprintf("redistrib: rank %d array %d has %d floats, layout expects %d",
					me, a, len(srcData[a]), pl.Src.LocalSize(me)))
			}
		}
	}

	var stats Stats
	dstData := make([][]float64, len(mp.plans))
	if inDst {
		for a, pl := range mp.plans {
			dstData[a] = make([]float64, pl.Dst.LocalSize(me))
		}
	}

	var sr, sc, dr, dc int
	if inSrc {
		sr, sc = base.Src.Coords(me)
	}
	if inDst {
		dr, dc = base.Dst.Coords(me)
	}
	nc := len(base.colSched)

	// Phase 1: compute every inbound step and arm the remote receives as one
	// persistent-request batch before posting any send.
	var pending []*incoming
	selfByStep := make(map[int]*incoming)
	var recvSet mpi.RequestSet
	if inDst {
		for tr := range base.rowSched {
			for tc := 0; tc < nc; tc++ {
				fromRow := base.rowRecvFrom[tr][dr]
				fromCol := base.colRecvFrom[tc][dc]
				if fromRow < 0 || fromCol < 0 {
					continue
				}
				in := &incoming{
					step:      tr*nc + tc,
					sizes:     make([]int, len(mp.plans)),
					rowBlocks: make([][]int, len(mp.plans)),
					colBlocks: make([][]int, len(mp.plans)),
				}
				total := 0
				for a, pl := range mp.plans {
					rb := classBlocks(pl.Src.BlockRows(), pl.Src.Grid.Rows, fromRow, pl.Dst.Grid.Rows, dr)
					cb := classBlocks(pl.Src.BlockCols(), pl.Src.Grid.Cols, fromCol, pl.Dst.Grid.Cols, dc)
					in.rowBlocks[a], in.colBlocks[a] = rb, cb
					in.sizes[a] = pl.payloadSize(rb, cb)
					total += in.sizes[a]
				}
				if total == 0 {
					continue
				}
				source := base.Src.Rank(fromRow, fromCol)
				if source == me {
					in.self = true
					selfByStep[in.step] = in
				} else {
					in.buf = make([]float64, total)
					recvSet.AddRecv(c, source, tagMulti+in.step, in.buf)
					stats.MessagesRecv++
					stats.FloatsRecv += total
				}
				pending = append(pending, in)
			}
		}
	}
	recvSet.Startall()

	// Phase 2: pack and post the sends. One message per communicating pair
	// per step carries every array's blocks; sends complete eagerly while
	// the armed receives drain concurrently.
	if inSrc {
		sendRB := make([][]int, len(mp.plans))
		sendCB := make([][]int, len(mp.plans))
		for tr := range base.rowSched {
			for tc := 0; tc < nc; tc++ {
				toRow := base.rowSendTo[tr][sr]
				toCol := base.colSendTo[tc][sc]
				if toRow < 0 || toCol < 0 {
					continue
				}
				total := 0
				for a, pl := range mp.plans {
					rb := classBlocks(pl.Src.BlockRows(), pl.Src.Grid.Rows, sr, pl.Dst.Grid.Rows, toRow)
					cb := classBlocks(pl.Src.BlockCols(), pl.Src.Grid.Cols, sc, pl.Dst.Grid.Cols, toCol)
					sendRB[a], sendCB[a] = rb, cb
					total += pl.payloadSize(rb, cb)
				}
				if total == 0 {
					continue
				}
				buf := make([]float64, 0, total)
				for a, pl := range mp.plans {
					if len(sendRB[a]) == 0 || len(sendCB[a]) == 0 {
						continue
					}
					buf = pl.packAppend(buf, srcData[a], sr, sc, sendRB[a], sendCB[a])
				}
				step := tr*nc + tc
				dest := base.Dst.Rank(toRow, toCol)
				if dest == me {
					selfByStep[step].buf = buf
					stats.LocalCopies++
					stats.FloatsCopied += len(buf)
				} else {
					c.SendInit(dest, tagMulti+step, buf).Start()
					stats.MessagesSent++
					stats.FloatsSent += len(buf)
				}
			}
		}
	}

	// Phase 3: wait for the batch and unpack every inbound step, slicing
	// each fused buffer at the per-array offsets both sides derived from the
	// layout tables.
	recvSet.Waitall()
	for _, in := range pending {
		off := 0
		for a, pl := range mp.plans {
			if in.sizes[a] > 0 {
				pl.unpack(in.buf[off:off+in.sizes[a]], dstData[a], dr, dc, in.rowBlocks[a], in.colBlocks[a])
			}
			off += in.sizes[a]
		}
	}
	return dstData, stats
}

// RedistributeMulti is the one-shot convenience wrapper over NewMultiPlan +
// Execute, mirroring Redistribute for the fused engine.
func RedistributeMulti(c *mpi.Comm, srcs []blockcyclic.Layout, srcData [][]float64, dsts []blockcyclic.Layout) ([][]float64, error) {
	mp, err := NewMultiPlan(srcs, dsts)
	if err != nil {
		return nil, err
	}
	return mp.Execute(c, srcData), nil
}
