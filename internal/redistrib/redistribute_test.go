package redistrib

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/blockcyclic"
	"repro/internal/grid"
	"repro/internal/mpi"
)

// runRedistribution distributes a random global matrix under src, runs the
// schedule-based redistribution on a communicator spanning both grids, and
// checks every destination piece against a direct distribution under dst.
func runRedistribution(t *testing.T, src, dst blockcyclic.Layout, seed int64) {
	t.Helper()
	if err := checkRedistribution(src, dst, seed); err != nil {
		t.Fatalf("src %v dst %v: %v", src.Grid, dst.Grid, err)
	}
}

// checkRedistribution is the assertion core shared with the property test.
func checkRedistribution(src, dst blockcyclic.Layout, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	global := make([]float64, src.M*src.N)
	for i := range global {
		global[i] = rng.NormFloat64()
	}
	srcPieces := blockcyclic.Distribute(global, src)
	wantPieces := blockcyclic.Distribute(global, dst)

	p, q := src.Grid.Count(), dst.Grid.Count()
	world := p
	if q > world {
		world = q
	}
	return mpi.Run(world, func(c *mpi.Comm) error {
		var mine []float64
		if c.Rank() < p {
			mine = srcPieces[c.Rank()].Data
		}
		got, err := Redistribute(c, src, mine, dst)
		if err != nil {
			return err
		}
		if c.Rank() >= q {
			if got != nil {
				return fmt.Errorf("rank %d outside dst grid received data", c.Rank())
			}
			return nil
		}
		want := wantPieces[c.Rank()].Data
		if len(got) != len(want) {
			return fmt.Errorf("rank %d: got %d floats, want %d", c.Rank(), len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("rank %d: element %d = %v, want %v", c.Rank(), i, got[i], want[i])
			}
		}
		return nil
	})
}

func l2d(m, n, mb, nb int, g grid.Topology) blockcyclic.Layout {
	return blockcyclic.Layout{M: m, N: n, MB: mb, NB: nb, Grid: g}
}

func TestRedistributeExpand2D(t *testing.T) {
	// The canonical ReSHAPE expansion: 2x2 -> 2x3 grid.
	src := l2d(12, 12, 2, 2, grid.Topology{Rows: 2, Cols: 2})
	dst := l2d(12, 12, 2, 2, grid.Topology{Rows: 2, Cols: 3})
	runRedistribution(t, src, dst, 1)
}

func TestRedistributeShrink2D(t *testing.T) {
	src := l2d(12, 12, 2, 2, grid.Topology{Rows: 3, Cols: 3})
	dst := l2d(12, 12, 2, 2, grid.Topology{Rows: 2, Cols: 2})
	runRedistribution(t, src, dst, 2)
}

func TestRedistributeTable2Chain8000Scaled(t *testing.T) {
	// Walk the paper's Table 2 chain for n=8000, scaled down 1000x, hopping
	// config to config exactly as repeated expansions would.
	chain := grid.GrowthChain(grid.Topology{Rows: 1, Cols: 2}, 8, 50)
	for i := 0; i+1 < len(chain); i++ {
		src := l2d(8, 8, 1, 1, chain[i])
		dst := l2d(8, 8, 1, 1, chain[i+1])
		runRedistribution(t, src, dst, int64(10+i))
	}
}

func TestRedistribute1DRowFormats(t *testing.T) {
	src := blockcyclic.New1D(24, 6, 2, 3)
	dst := blockcyclic.New1D(24, 6, 2, 4)
	runRedistribution(t, src, dst, 3)
	// and shrink back
	runRedistribution(t, dst, src, 4)
}

func TestRedistribute1DColumnFormat(t *testing.T) {
	src := l2d(6, 24, 6, 2, grid.Topology{Rows: 1, Cols: 4})
	dst := l2d(6, 24, 6, 2, grid.Topology{Rows: 1, Cols: 2})
	runRedistribution(t, src, dst, 5)
}

func TestRedistributeIdentityGrid(t *testing.T) {
	// Same grid on both sides: pure local copy, no messages.
	l := l2d(10, 10, 2, 2, grid.Topology{Rows: 2, Cols: 2})
	pl, err := NewPlan(l, l)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	global := make([]float64, 100)
	for i := range global {
		global[i] = rng.Float64()
	}
	pieces := blockcyclic.Distribute(global, l)
	err = mpi.Run(4, func(c *mpi.Comm) error {
		got, stats := pl.ExecuteStats(c, pieces[c.Rank()].Data)
		if stats.MessagesSent != 0 || stats.MessagesRecv != 0 {
			return fmt.Errorf("identity redistribution sent %d/recv %d messages", stats.MessagesSent, stats.MessagesRecv)
		}
		if stats.FloatsCopied != len(pieces[c.Rank()].Data) {
			return fmt.Errorf("rank %d copied %d floats locally, want %d",
				c.Rank(), stats.FloatsCopied, len(pieces[c.Rank()].Data))
		}
		want := pieces[c.Rank()].Data
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("rank %d differs at %d", c.Rank(), i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRedistributeUnevenEdgeBlocks(t *testing.T) {
	// M, N not divisible by the block size: short edge blocks must move
	// intact.
	src := l2d(13, 11, 3, 4, grid.Topology{Rows: 2, Cols: 2})
	dst := l2d(13, 11, 3, 4, grid.Topology{Rows: 3, Cols: 2})
	runRedistribution(t, src, dst, 7)
}

func TestRedistributeToSingleProcessor(t *testing.T) {
	src := l2d(8, 8, 2, 2, grid.Topology{Rows: 2, Cols: 4})
	dst := l2d(8, 8, 2, 2, grid.Topology{Rows: 1, Cols: 1})
	runRedistribution(t, src, dst, 8)
}

func TestRedistributeFromSingleProcessor(t *testing.T) {
	src := l2d(8, 8, 2, 2, grid.Topology{Rows: 1, Cols: 1})
	dst := l2d(8, 8, 2, 2, grid.Topology{Rows: 2, Cols: 4})
	runRedistribution(t, src, dst, 9)
}

func TestRedistributeCoprimeGrids(t *testing.T) {
	src := l2d(30, 30, 2, 2, grid.Topology{Rows: 3, Cols: 5})
	dst := l2d(30, 30, 2, 2, grid.Topology{Rows: 5, Cols: 2})
	runRedistribution(t, src, dst, 10)
}

func TestRedistributePropertyRandomLayouts(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	f := func(rawM, rawN, rawMB, rawNB, g1r, g1c, g2r, g2c uint8, seed int64) bool {
		m := int(rawM%20) + 1
		n := int(rawN%20) + 1
		mb := int(rawMB%4) + 1
		nb := int(rawNB%4) + 1
		src := l2d(m, n, mb, nb, grid.Topology{Rows: int(g1r%3) + 1, Cols: int(g1c%3) + 1})
		dst := l2d(m, n, mb, nb, grid.Topology{Rows: int(g2r%3) + 1, Cols: int(g2c%3) + 1})
		return checkRedistribution(src, dst, seed) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNewPlanRejectsMismatchedShapes(t *testing.T) {
	a := l2d(8, 8, 2, 2, grid.Topology{Rows: 2, Cols: 2})
	b := l2d(8, 10, 2, 2, grid.Topology{Rows: 2, Cols: 2})
	if _, err := NewPlan(a, b); err == nil {
		t.Error("mismatched global shapes accepted")
	}
	c := l2d(8, 8, 2, 4, grid.Topology{Rows: 2, Cols: 2})
	if _, err := NewPlan(a, c); err == nil {
		t.Error("mismatched block shapes accepted")
	}
}

func TestPlanStepsBound(t *testing.T) {
	src := l2d(24, 24, 2, 2, grid.Topology{Rows: 2, Cols: 3})
	dst := l2d(24, 24, 2, 2, grid.Topology{Rows: 4, Cols: 6})
	pl, err := NewPlan(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	// rows: 2->4 is 2 steps; cols: 3->6 is 2 steps; combined 4.
	if pl.Steps() != 4 {
		t.Errorf("Steps() = %d, want 4", pl.Steps())
	}
}

func TestExecuteStatsCountsTraffic(t *testing.T) {
	src := l2d(8, 8, 2, 2, grid.Topology{Rows: 1, Cols: 2})
	dst := l2d(8, 8, 2, 2, grid.Topology{Rows: 2, Cols: 2})
	pl, err := NewPlan(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	global := make([]float64, 64)
	for i := range global {
		global[i] = float64(i)
	}
	pieces := blockcyclic.Distribute(global, src)
	total := make(chan Stats, 4)
	err = mpi.Run(4, func(c *mpi.Comm) error {
		var mine []float64
		if c.Rank() < 2 {
			mine = pieces[c.Rank()].Data
		}
		_, stats := pl.ExecuteStats(c, mine)
		total <- stats
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	close(total)
	var sum Stats
	for v := range total {
		sum.Add(v)
	}
	// Half the matrix stays on ranks 0-1 (local rows), half moves to the new
	// grid row: exactly 32 floats must cross and the other 32 move by local
	// copy, so sent + copied accounts for every element.
	if sum.FloatsSent != 32 {
		t.Errorf("total floats sent = %d, want 32", sum.FloatsSent)
	}
	if sum.FloatsCopied != 32 {
		t.Errorf("total floats copied locally = %d, want 32", sum.FloatsCopied)
	}
	if sum.FloatsSent+sum.FloatsCopied != 64 {
		t.Errorf("sent %d + copied %d != 64 elements", sum.FloatsSent, sum.FloatsCopied)
	}
}

func TestCheckpointRedistributeMatchesSchedule(t *testing.T) {
	src := l2d(12, 12, 2, 2, grid.Topology{Rows: 2, Cols: 2})
	dst := l2d(12, 12, 2, 2, grid.Topology{Rows: 2, Cols: 3})
	rng := rand.New(rand.NewSource(11))
	global := make([]float64, 144)
	for i := range global {
		global[i] = rng.NormFloat64()
	}
	srcPieces := blockcyclic.Distribute(global, src)
	wantPieces := blockcyclic.Distribute(global, dst)
	err := mpi.Run(6, func(c *mpi.Comm) error {
		var mine []float64
		if c.Rank() < 4 {
			mine = srcPieces[c.Rank()].Data
		}
		got, stats, err := CheckpointRedistributeDir(c, src, mine, dst, t.TempDir())
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if stats.BytesWritten != 144*8 || stats.BytesRead != 144*8 {
				return fmt.Errorf("io stats %+v", stats)
			}
		}
		want := wantPieces[c.Rank()].Data
		if len(got) != len(want) {
			return fmt.Errorf("rank %d: %d floats, want %d", c.Rank(), len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("rank %d: differs at %d", c.Rank(), i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointShrink(t *testing.T) {
	src := l2d(10, 10, 2, 2, grid.Topology{Rows: 2, Cols: 3})
	dst := l2d(10, 10, 2, 2, grid.Topology{Rows: 1, Cols: 2})
	rng := rand.New(rand.NewSource(12))
	global := make([]float64, 100)
	for i := range global {
		global[i] = rng.NormFloat64()
	}
	srcPieces := blockcyclic.Distribute(global, src)
	wantPieces := blockcyclic.Distribute(global, dst)
	err := mpi.Run(6, func(c *mpi.Comm) error {
		got, _, err := CheckpointRedistributeDir(c, src, srcPieces[c.Rank()].Data, dst, t.TempDir())
		if err != nil {
			return err
		}
		if c.Rank() >= 2 {
			if got != nil {
				return fmt.Errorf("rank %d should get nil", c.Rank())
			}
			return nil
		}
		want := wantPieces[c.Rank()].Data
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("rank %d differs at %d", c.Rank(), i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRedistributeMultipleArraysBackToBack(t *testing.T) {
	// Several arrays on the same communicator, as the resize library does
	// for an application with more than one global data structure.
	src := l2d(8, 8, 2, 2, grid.Topology{Rows: 2, Cols: 2})
	dst := l2d(8, 8, 2, 2, grid.Topology{Rows: 2, Cols: 3})
	const arrays = 3
	globals := make([][]float64, arrays)
	srcPieces := make([][]*blockcyclic.Matrix, arrays)
	wantPieces := make([][]*blockcyclic.Matrix, arrays)
	rng := rand.New(rand.NewSource(13))
	for a := 0; a < arrays; a++ {
		globals[a] = make([]float64, 64)
		for i := range globals[a] {
			globals[a][i] = rng.NormFloat64()
		}
		srcPieces[a] = blockcyclic.Distribute(globals[a], src)
		wantPieces[a] = blockcyclic.Distribute(globals[a], dst)
	}
	pl, err := NewPlan(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	err = mpi.Run(6, func(c *mpi.Comm) error {
		for a := 0; a < arrays; a++ {
			var mine []float64
			if c.Rank() < 4 {
				mine = srcPieces[a][c.Rank()].Data
			}
			got := pl.Execute(c, mine)
			want := wantPieces[a][c.Rank()].Data
			for i := range want {
				if got[i] != want[i] {
					return fmt.Errorf("array %d rank %d differs at %d", a, c.Rank(), i)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
