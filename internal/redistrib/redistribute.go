package redistrib

import (
	"fmt"

	"repro/internal/blockcyclic"
	"repro/internal/mpi"
)

// tagData is the reserved tag for redistribution payloads. Every
// communicating pair exchanges exactly one message per Execute, and per-pair
// FIFO ordering keeps back-to-back executions (e.g. several arrays) correct.
const tagData = 9000

// Plan holds the precomputed tables for redistributing one block-cyclic
// layout to another: the per-dimension circulant schedules (the "destination
// processor table" of the paper) plus lookups from processor coordinates to
// per-step peers.
type Plan struct {
	Src, Dst blockcyclic.Layout

	rowSched, colSched [][]Pair
	// per step: sendTo[step][srcCoord] = dstCoord or -1; recvFrom inverse.
	rowSendTo, rowRecvFrom [][]int
	colSendTo, colRecvFrom [][]int
}

// NewPlan validates that the two layouts describe the same global array with
// the same blocking and builds the communication schedule tables.
func NewPlan(src, dst blockcyclic.Layout) (*Plan, error) {
	if err := src.Validate(); err != nil {
		return nil, err
	}
	if err := dst.Validate(); err != nil {
		return nil, err
	}
	if src.M != dst.M || src.N != dst.N {
		return nil, fmt.Errorf("redistrib: global shape mismatch %dx%d vs %dx%d", src.M, src.N, dst.M, dst.N)
	}
	if src.MB != dst.MB || src.NB != dst.NB {
		return nil, fmt.Errorf("redistrib: block shape mismatch %dx%d vs %dx%d", src.MB, src.NB, dst.MB, dst.NB)
	}
	p := &Plan{
		Src:      src,
		Dst:      dst,
		rowSched: Schedule1D(src.Grid.Rows, dst.Grid.Rows),
		colSched: Schedule1D(src.Grid.Cols, dst.Grid.Cols),
	}
	p.rowSendTo, p.rowRecvFrom = peerTables(p.rowSched, src.Grid.Rows, dst.Grid.Rows)
	p.colSendTo, p.colRecvFrom = peerTables(p.colSched, src.Grid.Cols, dst.Grid.Cols)
	return p, nil
}

// peerTables converts a schedule into per-step coordinate lookups.
func peerTables(sched [][]Pair, p, q int) (sendTo, recvFrom [][]int) {
	sendTo = make([][]int, len(sched))
	recvFrom = make([][]int, len(sched))
	for t, step := range sched {
		sendTo[t] = make([]int, p)
		recvFrom[t] = make([]int, q)
		for i := range sendTo[t] {
			sendTo[t][i] = -1
		}
		for i := range recvFrom[t] {
			recvFrom[t][i] = -1
		}
		for _, pr := range step {
			sendTo[t][pr.Src] = pr.Dst
			recvFrom[t][pr.Dst] = pr.Src
		}
	}
	return sendTo, recvFrom
}

// Steps returns the number of communication steps in the combined 2-D
// schedule.
func (pl *Plan) Steps() int { return len(pl.rowSched) * len(pl.colSched) }

// Stats summarizes one rank's traffic during Execute.
type Stats struct {
	MessagesSent int
	MessagesRecv int
	FloatsSent   int
	FloatsRecv   int
	// LocalCopies counts self-transfers (the rank keeps a block class across
	// the resize); FloatsCopied is the volume those self-transfers moved, so
	// total data motion is FloatsSent + FloatsCopied even when the grids
	// overlap heavily.
	LocalCopies  int
	FloatsCopied int
}

// Add accumulates other into s (summing per-array or per-execution stats).
func (s *Stats) Add(other Stats) {
	s.MessagesSent += other.MessagesSent
	s.MessagesRecv += other.MessagesRecv
	s.FloatsSent += other.FloatsSent
	s.FloatsRecv += other.FloatsRecv
	s.LocalCopies += other.LocalCopies
	s.FloatsCopied += other.FloatsCopied
}

// Execute redistributes the caller's piece of the global array. Every rank
// of c participates: ranks 0..P-1 of the communicator hold the source grid
// (row-major) and must pass their local data; ranks 0..Q-1 form the
// destination grid and receive their new local piece (nil for ranks outside
// the destination grid). Transfers use persistent communication requests,
// one per schedule step, as in the paper.
func (pl *Plan) Execute(c *mpi.Comm, srcData []float64) []float64 {
	out, _ := pl.ExecuteStats(c, srcData)
	return out
}

// ExecuteStats is Execute plus per-rank traffic statistics.
func (pl *Plan) ExecuteStats(c *mpi.Comm, srcData []float64) ([]float64, Stats) {
	me := c.Rank()
	p := pl.Src.Grid.Count()
	q := pl.Dst.Grid.Count()
	if c.Size() < p || c.Size() < q {
		panic(fmt.Sprintf("redistrib: communicator size %d smaller than grids (%d src, %d dst)", c.Size(), p, q))
	}
	inSrc := me < p
	inDst := me < q
	if inSrc && len(srcData) != pl.Src.LocalSize(me) {
		panic(fmt.Sprintf("redistrib: rank %d source data has %d floats, layout expects %d",
			me, len(srcData), pl.Src.LocalSize(me)))
	}

	var stats Stats
	var dstData []float64
	if inDst {
		dstData = make([]float64, pl.Dst.LocalSize(me))
	}

	var sr, sc, dr, dc int
	if inSrc {
		sr, sc = pl.Src.Coords(me)
	}
	if inDst {
		dr, dc = pl.Dst.Coords(me)
	}

	for tr := range pl.rowSched {
		for tc := range pl.colSched {
			var selfBuf []float64

			// Send side of this step.
			if inSrc {
				toRow := pl.rowSendTo[tr][sr]
				toCol := pl.colSendTo[tc][sc]
				if toRow >= 0 && toCol >= 0 {
					rowBlocks := classBlocks(pl.Src.BlockRows(), pl.Src.Grid.Rows, sr, pl.Dst.Grid.Rows, toRow)
					colBlocks := classBlocks(pl.Src.BlockCols(), pl.Src.Grid.Cols, sc, pl.Dst.Grid.Cols, toCol)
					if len(rowBlocks) > 0 && len(colBlocks) > 0 {
						buf := pl.pack(srcData, sr, sc, rowBlocks, colBlocks)
						dest := pl.Dst.Rank(toRow, toCol)
						if dest == me {
							selfBuf = buf
							stats.LocalCopies++
							stats.FloatsCopied += len(buf)
						} else {
							req := c.SendInit(dest, tagData, buf)
							req.Start()
							req.Wait()
							stats.MessagesSent++
							stats.FloatsSent += len(buf)
						}
					}
				}
			}

			// Receive side of this step.
			if inDst {
				fromRow := pl.rowRecvFrom[tr][dr]
				fromCol := pl.colRecvFrom[tc][dc]
				if fromRow >= 0 && fromCol >= 0 {
					rowBlocks := classBlocks(pl.Src.BlockRows(), pl.Src.Grid.Rows, fromRow, pl.Dst.Grid.Rows, dr)
					colBlocks := classBlocks(pl.Src.BlockCols(), pl.Src.Grid.Cols, fromCol, pl.Dst.Grid.Cols, dc)
					size := pl.payloadSize(rowBlocks, colBlocks)
					if size > 0 {
						source := pl.Src.Rank(fromRow, fromCol)
						var buf []float64
						if source == me {
							buf = selfBuf
						} else {
							buf = make([]float64, size)
							req := c.RecvInit(source, tagData, buf)
							req.Start()
							req.Wait()
							stats.MessagesRecv++
							stats.FloatsRecv += size
						}
						pl.unpack(buf, dstData, dr, dc, rowBlocks, colBlocks)
					}
				}
			}
		}
	}
	return dstData, stats
}

// classBlocks returns the global block indices j (j mod p == s, j mod q == d)
// below nblocks — the rows of the paper's index tables belonging to one
// communicating pair.
func classBlocks(nblocks, p, s, q, d int) []int {
	var out []int
	for j := s; j < nblocks; j += p {
		if j%q == d {
			out = append(out, j)
		}
	}
	return out
}

// payloadSize computes the exact number of floats exchanged for a block
// class, accounting for short edge blocks.
func (pl *Plan) payloadSize(rowBlocks, colBlocks []int) int {
	total := 0
	for _, bi := range rowBlocks {
		h := pl.Src.BlockHeight(bi)
		for _, bj := range colBlocks {
			total += h * pl.Src.BlockWidth(bj)
		}
	}
	return total
}

// pack serializes the listed blocks from a source-local array in
// deterministic (bi, bj, row-major) order.
func (pl *Plan) pack(data []float64, prow, pcol int, rowBlocks, colBlocks []int) []float64 {
	buf := make([]float64, 0, pl.payloadSize(rowBlocks, colBlocks))
	return pl.packAppend(buf, data, prow, pcol, rowBlocks, colBlocks)
}

// packAppend is pack writing into an existing buffer — the fused multi-array
// engine appends every array's blocks for a step into one wire buffer.
func (pl *Plan) packAppend(buf, data []float64, prow, pcol int, rowBlocks, colBlocks []int) []float64 {
	l := pl.Src
	stride := l.LocalCols(pcol)
	for _, bi := range rowBlocks {
		h := l.BlockHeight(bi)
		li0 := (bi / l.Grid.Rows) * l.MB
		for _, bj := range colBlocks {
			w := l.BlockWidth(bj)
			lj0 := (bj / l.Grid.Cols) * l.NB
			for ii := 0; ii < h; ii++ {
				row := (li0 + ii) * stride
				buf = append(buf, data[row+lj0:row+lj0+w]...)
			}
		}
	}
	return buf
}

// unpack writes a packed buffer into a destination-local array, mirroring
// pack's ordering.
func (pl *Plan) unpack(buf, data []float64, prow, pcol int, rowBlocks, colBlocks []int) {
	l := pl.Dst
	stride := l.LocalCols(pcol)
	k := 0
	for _, bi := range rowBlocks {
		h := l.BlockHeight(bi)
		li0 := (bi / l.Grid.Rows) * l.MB
		for _, bj := range colBlocks {
			w := l.BlockWidth(bj)
			lj0 := (bj / l.Grid.Cols) * l.NB
			for ii := 0; ii < h; ii++ {
				row := (li0 + ii) * stride
				copy(data[row+lj0:row+lj0+w], buf[k:k+w])
				k += w
			}
		}
	}
}

// Redistribute is the one-shot convenience wrapper: it builds a Plan and
// executes it. See Plan.Execute for the calling convention.
func Redistribute(c *mpi.Comm, src blockcyclic.Layout, srcData []float64, dst blockcyclic.Layout) ([]float64, error) {
	pl, err := NewPlan(src, dst)
	if err != nil {
		return nil, err
	}
	return pl.Execute(c, srcData), nil
}
