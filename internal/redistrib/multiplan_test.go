package redistrib

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/blockcyclic"
	"repro/internal/grid"
	"repro/internal/mpi"
)

// runFusedVsReference distributes random global matrices for every array,
// executes both the fused MultiPlan engine and the per-array reference
// path on the same inputs, and requires bit-identical outputs (also checked
// against a direct distribution under the destination layouts).
func runFusedVsReference(srcs, dsts []blockcyclic.Layout, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	n := len(srcs)
	globals := make([][]float64, n)
	srcPieces := make([][]*blockcyclic.Matrix, n)
	wantPieces := make([][]*blockcyclic.Matrix, n)
	for a := 0; a < n; a++ {
		globals[a] = make([]float64, srcs[a].M*srcs[a].N)
		for i := range globals[a] {
			globals[a][i] = rng.NormFloat64()
		}
		srcPieces[a] = blockcyclic.Distribute(globals[a], srcs[a])
		wantPieces[a] = blockcyclic.Distribute(globals[a], dsts[a])
	}
	mp, err := NewMultiPlan(srcs, dsts)
	if err != nil {
		return err
	}
	refPlans := make([]*Plan, n)
	for a := 0; a < n; a++ {
		if refPlans[a], err = NewPlan(srcs[a], dsts[a]); err != nil {
			return err
		}
	}
	p, q := srcs[0].Grid.Count(), dsts[0].Grid.Count()
	world := p
	if q > world {
		world = q
	}
	return mpi.Run(world, func(c *mpi.Comm) error {
		mine := make([][]float64, n)
		if c.Rank() < p {
			for a := 0; a < n; a++ {
				mine[a] = srcPieces[a][c.Rank()].Data
			}
		}
		fused := mp.Execute(c, mine)
		for a := 0; a < n; a++ {
			ref := refPlans[a].Execute(c, mine[a])
			if c.Rank() >= q {
				if fused[a] != nil || ref != nil {
					return fmt.Errorf("rank %d outside dst grid received data for array %d", c.Rank(), a)
				}
				continue
			}
			want := wantPieces[a][c.Rank()].Data
			if len(fused[a]) != len(want) || len(ref) != len(want) {
				return fmt.Errorf("array %d rank %d: fused %d ref %d want %d floats",
					a, c.Rank(), len(fused[a]), len(ref), len(want))
			}
			for i := range want {
				if fused[a][i] != ref[i] {
					return fmt.Errorf("array %d rank %d: fused[%d]=%v differs from reference %v",
						a, c.Rank(), i, fused[a][i], ref[i])
				}
				if fused[a][i] != want[i] {
					return fmt.Errorf("array %d rank %d: fused[%d]=%v, ground truth %v",
						a, c.Rank(), i, fused[a][i], want[i])
				}
			}
		}
		return nil
	})
}

// TestMultiPlanDifferentialRandomized pins the fused engine bit-identical
// to the per-array reference path across randomized (shape, grid-pair,
// array-count) cases.
func TestMultiPlanDifferentialRandomized(t *testing.T) {
	const cases = 24
	rng := rand.New(rand.NewSource(42))
	for cse := 0; cse < cases; cse++ {
		from := grid.Topology{Rows: rng.Intn(3) + 1, Cols: rng.Intn(3) + 1}
		to := grid.Topology{Rows: rng.Intn(3) + 1, Cols: rng.Intn(3) + 1}
		nArrays := rng.Intn(4) + 1
		srcs := make([]blockcyclic.Layout, nArrays)
		dsts := make([]blockcyclic.Layout, nArrays)
		for a := 0; a < nArrays; a++ {
			m, n := rng.Intn(20)+1, rng.Intn(20)+1
			mb, nb := rng.Intn(4)+1, rng.Intn(4)+1
			srcs[a] = blockcyclic.Layout{M: m, N: n, MB: mb, NB: nb, Grid: from}
			dsts[a] = blockcyclic.Layout{M: m, N: n, MB: mb, NB: nb, Grid: to}
		}
		if err := runFusedVsReference(srcs, dsts, int64(1000+cse)); err != nil {
			t.Fatalf("case %d (%v -> %v, %d arrays): %v", cse, from, to, nArrays, err)
		}
	}
}

func TestMultiPlanSingleArrayMatchesPlan(t *testing.T) {
	src := []blockcyclic.Layout{{M: 13, N: 11, MB: 3, NB: 2, Grid: grid.Topology{Rows: 2, Cols: 2}}}
	dst := []blockcyclic.Layout{{M: 13, N: 11, MB: 3, NB: 2, Grid: grid.Topology{Rows: 3, Cols: 2}}}
	if err := runFusedVsReference(src, dst, 7); err != nil {
		t.Fatal(err)
	}
}

func TestMultiPlanMixedShapes(t *testing.T) {
	// Arrays with different global and block shapes fused onto one grid
	// pair, as an application registering A, B and a vector would produce.
	from, to := grid.Topology{Rows: 2, Cols: 2}, grid.Topology{Rows: 2, Cols: 3}
	srcs := []blockcyclic.Layout{
		{M: 16, N: 16, MB: 2, NB: 2, Grid: from},
		{M: 9, N: 7, MB: 3, NB: 1, Grid: from},
		{M: 16, N: 1, MB: 2, NB: 1, Grid: from},
	}
	dsts := make([]blockcyclic.Layout, len(srcs))
	for i, s := range srcs {
		s.Grid = to
		dsts[i] = s
	}
	if err := runFusedVsReference(srcs, dsts, 8); err != nil {
		t.Fatal(err)
	}
}

// countMessages sums a per-rank traffic statistic across all ranks.
func sumStats(t *testing.T, world int, run func(c *mpi.Comm) Stats) Stats {
	t.Helper()
	ch := make(chan Stats, world)
	err := mpi.Run(world, func(c *mpi.Comm) error {
		ch <- run(c)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	close(ch)
	var total Stats
	for s := range ch {
		total.Add(s)
	}
	return total
}

// TestMultiPlanFusesMessages is the acceptance gate for the fused engine:
// for 3 arrays it must send at least 2x fewer (here exactly 3x fewer)
// messages than per-array execution of the same redistribution.
func TestMultiPlanFusesMessages(t *testing.T) {
	from, to := grid.Topology{Rows: 2, Cols: 2}, grid.Topology{Rows: 2, Cols: 3}
	const nArrays = 3
	srcs := make([]blockcyclic.Layout, nArrays)
	dsts := make([]blockcyclic.Layout, nArrays)
	srcPieces := make([][]*blockcyclic.Matrix, nArrays)
	rng := rand.New(rand.NewSource(3))
	for a := 0; a < nArrays; a++ {
		srcs[a] = blockcyclic.Layout{M: 12, N: 12, MB: 2, NB: 2, Grid: from}
		dsts[a] = blockcyclic.Layout{M: 12, N: 12, MB: 2, NB: 2, Grid: to}
		global := make([]float64, 144)
		for i := range global {
			global[i] = rng.NormFloat64()
		}
		srcPieces[a] = blockcyclic.Distribute(global, srcs[a])
	}
	mp, err := NewMultiPlan(srcs, dsts)
	if err != nil {
		t.Fatal(err)
	}
	plans := make([]*Plan, nArrays)
	for a := range plans {
		if plans[a], err = NewPlan(srcs[a], dsts[a]); err != nil {
			t.Fatal(err)
		}
	}

	fused := sumStats(t, 6, func(c *mpi.Comm) Stats {
		mine := make([][]float64, nArrays)
		if c.Rank() < 4 {
			for a := 0; a < nArrays; a++ {
				mine[a] = srcPieces[a][c.Rank()].Data
			}
		}
		_, st := mp.ExecuteStats(c, mine)
		return st
	})
	perArray := sumStats(t, 6, func(c *mpi.Comm) Stats {
		var total Stats
		for a := 0; a < nArrays; a++ {
			var mine []float64
			if c.Rank() < 4 {
				mine = srcPieces[a][c.Rank()].Data
			}
			_, st := plans[a].ExecuteStats(c, mine)
			total.Add(st)
		}
		return total
	})

	if fused.MessagesSent >= perArray.MessagesSent {
		t.Fatalf("fused engine sent %d messages, per-array %d", fused.MessagesSent, perArray.MessagesSent)
	}
	if 2*fused.MessagesSent > perArray.MessagesSent {
		t.Errorf("fused engine sent %d messages, want <= half of per-array %d",
			fused.MessagesSent, perArray.MessagesSent)
	}
	if fused.FloatsSent != perArray.FloatsSent {
		t.Errorf("fused moved %d floats over the network, per-array %d", fused.FloatsSent, perArray.FloatsSent)
	}
	if fused.FloatsSent+fused.FloatsCopied != nArrays*144 {
		t.Errorf("sent %d + copied %d floats, want every element accounted (%d)",
			fused.FloatsSent, fused.FloatsCopied, nArrays*144)
	}
}

func TestMultiPlanIdentityGridAllLocal(t *testing.T) {
	l := blockcyclic.Layout{M: 10, N: 10, MB: 2, NB: 2, Grid: grid.Topology{Rows: 2, Cols: 2}}
	srcs := []blockcyclic.Layout{l, l}
	rng := rand.New(rand.NewSource(9))
	globals := make([][]float64, 2)
	pieces := make([][]*blockcyclic.Matrix, 2)
	for a := range globals {
		globals[a] = make([]float64, 100)
		for i := range globals[a] {
			globals[a][i] = rng.Float64()
		}
		pieces[a] = blockcyclic.Distribute(globals[a], l)
	}
	mp, err := NewMultiPlan(srcs, srcs)
	if err != nil {
		t.Fatal(err)
	}
	total := sumStats(t, 4, func(c *mpi.Comm) Stats {
		mine := [][]float64{pieces[0][c.Rank()].Data, pieces[1][c.Rank()].Data}
		got, st := mp.ExecuteStats(c, mine)
		for a := range mine {
			for i := range mine[a] {
				if got[a][i] != mine[a][i] {
					t.Errorf("rank %d array %d differs at %d", c.Rank(), a, i)
				}
			}
		}
		return st
	})
	if total.MessagesSent != 0 || total.MessagesRecv != 0 {
		t.Errorf("identity fused redistribution sent %d/recv %d messages", total.MessagesSent, total.MessagesRecv)
	}
	if total.FloatsCopied != 200 {
		t.Errorf("identity fused redistribution copied %d floats, want 200", total.FloatsCopied)
	}
}

func TestNewMultiPlanRejectsBadInputs(t *testing.T) {
	g22 := grid.Topology{Rows: 2, Cols: 2}
	g23 := grid.Topology{Rows: 2, Cols: 3}
	a := blockcyclic.Layout{M: 8, N: 8, MB: 2, NB: 2, Grid: g22}
	b := blockcyclic.Layout{M: 8, N: 8, MB: 2, NB: 2, Grid: g23}
	if _, err := NewMultiPlan(nil, nil); err == nil {
		t.Error("empty array set accepted")
	}
	if _, err := NewMultiPlan([]blockcyclic.Layout{a, a}, []blockcyclic.Layout{b}); err == nil {
		t.Error("length mismatch accepted")
	}
	// Second array on a different source grid must be rejected.
	if _, err := NewMultiPlan([]blockcyclic.Layout{a, b}, []blockcyclic.Layout{b, b}); err == nil {
		t.Error("mismatched grid pair accepted")
	}
	// Per-array shape mismatches still surface through the shared-schedule path.
	c := blockcyclic.Layout{M: 8, N: 10, MB: 2, NB: 2, Grid: g23}
	if _, err := NewMultiPlan([]blockcyclic.Layout{a, a}, []blockcyclic.Layout{b, c}); err == nil {
		t.Error("mismatched global shape accepted")
	}
}
