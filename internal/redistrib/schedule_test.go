package redistrib

import (
	"testing"
	"testing/quick"
)

func TestSchedule1DKnownCases(t *testing.T) {
	cases := []struct {
		p, q, steps int
	}{
		{2, 4, 2},   // g=2, max(1,2)=2
		{4, 2, 2},   // shrink direction
		{4, 16, 4},  // g=4
		{6, 9, 6},   // g=3, max(2,3)=... 6/3=2, 9/3=3 -> 3 steps
		{1, 5, 5},   // g=1
		{5, 5, 1},   // identity
		{12, 20, 5}, // g=4, max(3,5)=5
	}
	for _, c := range cases {
		sched := Schedule1D(c.p, c.q)
		want := c.steps
		if c.p == 6 && c.q == 9 {
			want = 3
		}
		if len(sched) != want {
			t.Errorf("Schedule1D(%d,%d) has %d steps, want %d", c.p, c.q, len(sched), want)
		}
		if err := validateSchedule(sched, c.p, c.q); err != nil {
			t.Errorf("Schedule1D(%d,%d): %v", c.p, c.q, err)
		}
	}
}

func TestSchedule1DContentionFree(t *testing.T) {
	for p := 1; p <= 12; p++ {
		for q := 1; q <= 12; q++ {
			sched := Schedule1D(p, q)
			if got := MaxReceiveContention(sched); got != 1 {
				t.Errorf("Schedule1D(%d,%d) receive contention %d", p, q, got)
			}
			if got := MaxSendContention(sched); got != 1 {
				t.Errorf("Schedule1D(%d,%d) send contention %d", p, q, got)
			}
		}
	}
}

func TestSchedule1DCoversAllPairsProperty(t *testing.T) {
	f := func(rawP, rawQ uint8) bool {
		p := int(rawP%32) + 1
		q := int(rawQ%32) + 1
		return validateSchedule(Schedule1D(p, q), p, q) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSchedule1DIdentityIsLocal(t *testing.T) {
	sched := Schedule1D(7, 7)
	if len(sched) != 1 {
		t.Fatalf("identity schedule has %d steps", len(sched))
	}
	for _, pr := range sched[0] {
		if pr.Src != pr.Dst {
			t.Errorf("identity schedule contains non-local pair %v", pr)
		}
	}
}

func TestSchedule1DInvalidInputs(t *testing.T) {
	if Schedule1D(0, 4) != nil || Schedule1D(4, -1) != nil {
		t.Error("invalid processor counts should yield nil schedule")
	}
}

func TestScheduleNaiveHasContention(t *testing.T) {
	sched := ScheduleNaive(8, 2)
	if len(sched) != 1 {
		t.Fatalf("naive schedule should be one step, got %d", len(sched))
	}
	if got := MaxReceiveContention(sched); got != 4 {
		t.Errorf("naive 8->2 receive contention = %d, want 4", got)
	}
	if err := validateSchedule(sched, 8, 2); err != nil {
		t.Errorf("naive schedule must still cover all pairs: %v", err)
	}
}

func TestScheduleStepCountIsOptimal(t *testing.T) {
	// The circulant schedule needs exactly max(p,q)/gcd(p,q) steps, which is
	// the degree of the bipartite communication graph and thus optimal.
	f := func(rawP, rawQ uint8) bool {
		p := int(rawP%24) + 1
		q := int(rawQ%24) + 1
		g := gcd(p, q)
		want := p / g
		if q/g > want {
			want = q / g
		}
		return len(Schedule1D(p, q)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClassBlocksPartitionBlocks(t *testing.T) {
	// Every block index must appear in exactly one (src,dst) class.
	nblocks, p, q := 37, 4, 6
	seen := make([]int, nblocks)
	for s := 0; s < p; s++ {
		for d := 0; d < q; d++ {
			for _, j := range classBlocks(nblocks, p, s, q, d) {
				seen[j]++
				if j%p != s || j%q != d {
					t.Fatalf("block %d in wrong class (%d,%d)", j, s, d)
				}
			}
		}
	}
	for j, n := range seen {
		if n != 1 {
			t.Fatalf("block %d appears %d times", j, n)
		}
	}
}
