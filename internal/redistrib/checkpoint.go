package redistrib

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/blockcyclic"
	"repro/internal/mpi"
)

// Checkpoint tags; distinct from the schedule-based path so both can be
// exercised on the same communicator in tests.
const (
	tagCkptGather  = 9100
	tagCkptScatter = 9101
)

// CheckpointStats reports the I/O performed by the file-based baseline.
type CheckpointStats struct {
	BytesWritten int64
	BytesRead    int64
}

// CheckpointRedistribute redistributes srcData from the src layout to the
// dst layout through the file-based checkpoint/restart baseline the paper
// compares against: every source rank funnels its piece to rank 0, rank 0
// serializes the assembled global array to a file in dir (os.TempDir if
// empty), reads it back, and scatters the destination pieces. This is the
// "all data saved and restored through a single node" strategy whose cost
// Figure 3(b) contrasts with the message-passing redistribution algorithm.
func CheckpointRedistribute(c *mpi.Comm, src blockcyclic.Layout, srcData []float64, dst blockcyclic.Layout) ([]float64, CheckpointStats, error) {
	return CheckpointRedistributeDir(c, src, srcData, dst, "")
}

// CheckpointRedistributeDir is CheckpointRedistribute with an explicit
// staging directory.
func CheckpointRedistributeDir(c *mpi.Comm, src blockcyclic.Layout, srcData []float64, dst blockcyclic.Layout, dir string) ([]float64, CheckpointStats, error) {
	var stats CheckpointStats
	if src.M != dst.M || src.N != dst.N {
		return nil, stats, fmt.Errorf("redistrib: checkpoint shape mismatch %dx%d vs %dx%d", src.M, src.N, dst.M, dst.N)
	}
	me := c.Rank()
	p := src.Grid.Count()
	q := dst.Grid.Count()

	// Phase 1: funnel all source pieces to rank 0.
	if me != 0 && me < p {
		c.SendFloats(0, tagCkptGather, srcData)
	}

	if me == 0 {
		global := make([]float64, src.M*src.N)
		writePiece(global, src, 0, srcData)
		for r := 1; r < p; r++ {
			piece := c.RecvFloats(r, tagCkptGather)
			writePiece(global, src, r, piece)
		}

		// Phase 2: checkpoint to disk and restore.
		if dir == "" {
			dir = os.TempDir()
		}
		f, err := os.CreateTemp(dir, "reshape-ckpt-*.bin")
		if err != nil {
			return nil, stats, fmt.Errorf("redistrib: checkpoint create: %w", err)
		}
		path := f.Name()
		defer os.Remove(path)
		if err := binary.Write(f, binary.LittleEndian, global); err != nil {
			f.Close()
			return nil, stats, fmt.Errorf("redistrib: checkpoint write: %w", err)
		}
		if err := f.Close(); err != nil {
			return nil, stats, fmt.Errorf("redistrib: checkpoint close: %w", err)
		}
		stats.BytesWritten = int64(len(global) * 8)

		rf, err := os.Open(filepath.Clean(path))
		if err != nil {
			return nil, stats, fmt.Errorf("redistrib: checkpoint reopen: %w", err)
		}
		restored := make([]float64, len(global))
		if err := binary.Read(rf, binary.LittleEndian, restored); err != nil {
			rf.Close()
			return nil, stats, fmt.Errorf("redistrib: checkpoint read: %w", err)
		}
		rf.Close()
		stats.BytesRead = int64(len(restored) * 8)

		// Phase 3: scatter destination pieces.
		for r := q - 1; r >= 0; r-- {
			piece := readPiece(restored, dst, r)
			if r == 0 {
				return piece, stats, nil
			}
			c.Send(r, tagCkptScatter, piece)
		}
	}

	if me < q {
		return c.RecvFloats(0, tagCkptScatter), stats, nil
	}
	return nil, stats, nil
}

// writePiece scatters a rank's local piece into the dense global array.
func writePiece(global []float64, l blockcyclic.Layout, rank int, piece []float64) {
	pr, pc := l.Coords(rank)
	rows, cols := l.LocalRows(pr), l.LocalCols(pc)
	for li := 0; li < rows; li++ {
		for lj := 0; lj < cols; lj++ {
			gi, gj := l.LocalToGlobal(pr, pc, li, lj)
			global[gi*l.N+gj] = piece[li*cols+lj]
		}
	}
}

// readPiece extracts a rank's local piece from the dense global array.
func readPiece(global []float64, l blockcyclic.Layout, rank int) []float64 {
	pr, pc := l.Coords(rank)
	rows, cols := l.LocalRows(pr), l.LocalCols(pc)
	piece := make([]float64, rows*cols)
	for li := 0; li < rows; li++ {
		for lj := 0; lj < cols; lj++ {
			gi, gj := l.LocalToGlobal(pr, pc, li, lj)
			piece[li*cols+lj] = global[gi*l.N+gj]
		}
	}
	return piece
}
