package redistrib

import "fmt"

// Pair is one source->destination transfer within a communication step.
// Src indexes the old processor set and Dst the new one.
type Pair struct {
	Src, Dst int
}

// gcd returns the greatest common divisor of a and b.
func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Schedule1D computes the contention-free communication schedule for
// redistributing a block-cyclic array from p to q processors (same block
// size). Blocks with global block index j move from processor j mod p to
// processor j mod q, so the communicating pairs are exactly
// {(s,d) : s ≡ d (mod gcd(p,q))}. Within each residue class the pattern is
// the complete bipartite graph K(p/g, q/g); colouring it with shifted
// diagonals yields max(p,q)/g steps in which each source sends at most one
// message and each destination receives at most one — the generalized
// circulant schedule.
func Schedule1D(p, q int) [][]Pair {
	if p <= 0 || q <= 0 {
		return nil
	}
	g := gcd(p, q)
	m, n := p/g, q/g
	steps := m
	if n > m {
		steps = n
	}
	sched := make([][]Pair, steps)
	for c := 0; c < steps; c++ {
		var step []Pair
		for r := 0; r < g; r++ {
			if m <= n {
				for a := 0; a < m; a++ {
					b := (a + c) % n
					step = append(step, Pair{Src: r + a*g, Dst: r + b*g})
				}
			} else {
				for b := 0; b < n; b++ {
					a := (b + c) % m
					step = append(step, Pair{Src: r + a*g, Dst: r + b*g})
				}
			}
		}
		sched[c] = step
	}
	return sched
}

// ScheduleNaive returns the same transfer set as Schedule1D collapsed into a
// single step, i.e. with no contention avoidance: a destination may have to
// receive from up to p/gcd(p,q) sources simultaneously. It exists as the
// ablation baseline for the circulant schedule.
func ScheduleNaive(p, q int) [][]Pair {
	var all []Pair
	for _, step := range Schedule1D(p, q) {
		all = append(all, step...)
	}
	if all == nil {
		return nil
	}
	return [][]Pair{all}
}

// MaxReceiveContention returns, over all steps, the maximum number of
// messages any single destination must receive within one step. A
// contention-free schedule has value 1.
func MaxReceiveContention(sched [][]Pair) int {
	max := 0
	for _, step := range sched {
		perDst := make(map[int]int)
		for _, pr := range step {
			perDst[pr.Dst]++
			if perDst[pr.Dst] > max {
				max = perDst[pr.Dst]
			}
		}
	}
	return max
}

// MaxSendContention is the send-side analogue of MaxReceiveContention.
func MaxSendContention(sched [][]Pair) int {
	max := 0
	for _, step := range sched {
		perSrc := make(map[int]int)
		for _, pr := range step {
			perSrc[pr.Src]++
			if perSrc[pr.Src] > max {
				max = perSrc[pr.Src]
			}
		}
	}
	return max
}

// validateSchedule checks that a schedule covers each communicating pair
// exactly once. Used in tests and by NewPlan in debug paths.
func validateSchedule(sched [][]Pair, p, q int) error {
	g := gcd(p, q)
	seen := make(map[Pair]bool)
	for _, step := range sched {
		for _, pr := range step {
			if pr.Src < 0 || pr.Src >= p || pr.Dst < 0 || pr.Dst >= q {
				return fmt.Errorf("redistrib: pair %v out of range (p=%d q=%d)", pr, p, q)
			}
			if pr.Src%g != pr.Dst%g {
				return fmt.Errorf("redistrib: pair %v violates residue condition mod %d", pr, g)
			}
			if seen[pr] {
				return fmt.Errorf("redistrib: pair %v scheduled twice", pr)
			}
			seen[pr] = true
		}
	}
	want := p * q / g
	if len(seen) != want {
		return fmt.Errorf("redistrib: schedule covers %d pairs, want %d", len(seen), want)
	}
	return nil
}
