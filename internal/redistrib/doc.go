// Package redistrib implements ReSHAPE's block-cyclic array redistribution
// between processor sets organized in 1-D or checkerboard (2-D) topologies
// — the data-movement machinery a job invokes when the Remap Scheduler
// grows or shrinks its processor allocation.
//
// The algorithm follows Park, Prasanna and Raghavendra ("Efficient
// Algorithms for Block-Cyclic Array Redistribution Between Processor Sets",
// IEEE TPDS 1999), as extended by the ReSHAPE paper: a table-based
// framework computes, for every global block, its source and destination
// processor (the initial-layout and final-layout tables); the generalized
// circulant matrix formalism then groups the transfers into contention-free
// communication steps in which every processor sends at most one message
// and receives at most one message. Data moves with persistent
// communication requests over the message-passing runtime; a file-based
// checkpointing baseline (all data staged through one node) is provided
// for comparison, and Resample covers the generic fallback when block
// sizes change.
//
// Plan executes the schedule for a single array. MultiPlan is the fused,
// pipelined engine the resize library uses: every registered array sharing
// the (source grid, destination grid) pair rides one schedule execution —
// one message per communicating pair per step, all receives armed before
// any send — so a k-array application pays 1/k of the per-array message
// count at every resize. The single-array path is the reference
// implementation that differential tests pin the fused engine against.
//
// See DESIGN.md at the repository root for where redistribution sits in
// the resize pipeline.
package redistrib
