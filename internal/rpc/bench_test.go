package rpc_test

import (
	"context"
	"sync"
	"testing"

	"repro/internal/grid"
	"repro/internal/reshape"
	"repro/internal/rpc"
	"repro/internal/scheduler"
)

// benchServer starts a daemon with one running job whose chain has a
// single configuration, so every Contact is a cheap "no change" decision —
// the op measures transport cost, not policy work.
func benchServer(b *testing.B) (addr string, jobID int, topo grid.Topology, closefn func()) {
	b.Helper()
	sched := scheduler.NewServer(64, true, nil)
	srv, err := rpc.Serve("127.0.0.1:0", sched)
	if err != nil {
		b.Fatal(err)
	}
	topo = grid.Row1D(2)
	jobID, err = sched.Submit(context.Background(), scheduler.JobSpec{
		Name: "bench", App: "mw", Iterations: 1 << 30,
		InitialTopo: topo, Chain: []grid.Topology{topo},
	})
	if err != nil {
		b.Fatal(err)
	}
	return srv.Addr(), jobID, topo, func() { srv.Close() }
}

// BenchmarkRPCThroughput compares the two wire protocols on localhost:
// v1 pays a TCP dial plus a gob handshake per operation and holds one
// connection per in-flight call; v2 pipelines many concurrent operations
// over one persistent connection. The conns/op metric counts TCP
// connections consumed per operation.
func BenchmarkRPCThroughput(b *testing.B) {
	const inflight = 64 // concurrent pipelined requests for v2

	b.Run("v1-dial-per-call", func(b *testing.B) {
		addr, jobID, topo, closefn := benchServer(b)
		defer closefn()
		cl := &rpc.Client{Addr: addr}
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cl.Contact(ctx, jobID, topo, 0.01, 0); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		b.ReportMetric(1, "conns/op")
	})

	b.Run("v2-pipelined", func(b *testing.B) {
		addr, jobID, topo, closefn := benchServer(b)
		defer closefn()
		cl, err := reshape.Dial(addr)
		if err != nil {
			b.Fatal(err)
		}
		defer cl.Close()
		ctx := context.Background()
		b.ResetTimer()
		var wg sync.WaitGroup
		work := make(chan struct{})
		var firstErr error
		var errOnce sync.Once
		for w := 0; w < inflight; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for range work {
					if _, err := cl.Contact(ctx, jobID, topo, 0.01, 0); err != nil {
						errOnce.Do(func() { firstErr = err })
						return
					}
				}
			}()
		}
		for i := 0; i < b.N; i++ {
			work <- struct{}{}
		}
		close(work)
		wg.Wait()
		b.StopTimer()
		if firstErr != nil {
			b.Fatal(firstErr)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		b.ReportMetric(float64(cl.Dials())/float64(b.N), "conns/op")
	})
}
