package rpc_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/grid"
	"repro/internal/reshape"
	"repro/internal/resize"
	"repro/internal/rpc"
	"repro/internal/scheduler"
)

// outcome is everything a transport can influence: the decision stream the
// client observed and the scheduler's final state (timestamps excluded —
// they are wall-clock).
type outcome struct {
	Decisions []scheduler.Decision
	Errs      []bool
	Total     int
	Free      int
	QueueLen  int
	Jobs      []jobOutcome
}

type jobOutcome struct {
	Name  string
	State string
	Topo  grid.Topology
}

// driveSchedule replays one fixed op sequence through any capability
// implementation and records the outcome.
func driveSchedule(t *testing.T, cl resize.Scheduler) outcome {
	t.Helper()
	ctx := context.Background()
	var o outcome
	note := func(err error) { o.Errs = append(o.Errs, err != nil) }
	decide := func(d scheduler.Decision, err error) {
		note(err)
		o.Decisions = append(o.Decisions, d)
	}
	topo := func(r, c int) grid.Topology { return grid.Topology{Rows: r, Cols: c} }

	a, err := cl.Submit(ctx, scheduler.JobSpec{
		Name: "a", App: "lu", ProblemSize: 12000, Iterations: 10,
		InitialTopo: topo(1, 2), Chain: grid.GrowthChain(topo(1, 2), 12000, 16),
	})
	note(err)
	b, err := cl.Submit(ctx, scheduler.JobSpec{
		Name: "b", App: "lu", ProblemSize: 8000, Iterations: 8,
		InitialTopo: topo(2, 2), Chain: grid.GrowthChain(topo(2, 2), 8000, 16),
	})
	note(err)
	c, err := cl.Submit(ctx, scheduler.JobSpec{
		Name: "c", App: "mw", Iterations: 4,
		InitialTopo: grid.Row1D(4), Chain: []grid.Topology{grid.Row1D(4), grid.Row1D(6)},
	})
	note(err)

	// a: 1x2 -> 2x2 (the paper's canonical first expansion).
	decide(cl.Contact(ctx, a, topo(1, 2), 129.63, 0))
	note(cl.ResizeComplete(ctx, a, 8.0))
	// b reports from its static 2x2.
	decide(cl.Contact(ctx, b, topo(2, 2), 55.0, 0))
	// a keeps probing from its new configuration.
	decide(cl.Contact(ctx, a, topo(2, 2), 112.52, 8.0))
	note(cl.ResizeComplete(ctx, a, 5.0))
	// Error paths must agree too: unknown job, topology mismatch.
	_, err = cl.Contact(ctx, 9999, topo(1, 1), 1, 0)
	note(err)
	_, err = cl.Contact(ctx, a, topo(9, 9), 1, 0)
	note(err)

	note(cl.JobEnd(ctx, b))
	decide(cl.Contact(ctx, a, topoFromLast(o.Decisions), 80.0, 5.0))
	note(cl.JobEnd(ctx, a))
	// c fails: the System Monitor's job-error path must be identical too.
	note(cl.JobError(ctx, c))
	note(cl.JobError(ctx, c)) // double error must be rejected everywhere

	st, err := cl.Status(ctx)
	note(err)
	o.Total, o.Free, o.QueueLen = st.Total, st.Free, st.QueueLen
	for _, j := range st.Jobs {
		o.Jobs = append(o.Jobs, jobOutcome{Name: j.Name, State: j.State, Topo: j.Topo})
	}
	return o
}

// topoFromLast returns the topology job a holds after its last granted
// decision (falls back to the post-first-expansion 2x2).
func topoFromLast(ds []scheduler.Decision) grid.Topology {
	for i := len(ds) - 1; i >= 0; i-- {
		if ds[i].Action == scheduler.ActionExpand || ds[i].Action == scheduler.ActionShrink {
			return ds[i].Target
		}
	}
	return grid.Topology{Rows: 2, Cols: 2}
}

// TestV1AndV2TransportsAgree pins the two wire protocols to identical
// scheduler outcomes for the same op sequence: v1 stays supported as the
// reference implementation, and this test is what "supported" means.
func TestV1AndV2TransportsAgree(t *testing.T) {
	run := func(t *testing.T, dial func(addr string) (resize.Scheduler, func())) outcome {
		sched := scheduler.NewServer(16, true, nil)
		srv, err := rpc.Serve("127.0.0.1:0", sched)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		cl, closeCl := dial(srv.Addr())
		defer closeCl()
		return driveSchedule(t, cl)
	}

	v1 := run(t, func(addr string) (resize.Scheduler, func()) {
		return &rpc.Client{Addr: addr}, func() {}
	})
	v2 := run(t, func(addr string) (resize.Scheduler, func()) {
		cl, err := reshape.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		return cl, func() { cl.Close() }
	})
	// The in-process server is the third leg of the capability interface;
	// it must agree as well.
	local := func() outcome {
		sched := scheduler.NewServer(16, true, nil)
		return driveSchedule(t, sched)
	}()

	if !reflect.DeepEqual(v1, v2) {
		t.Errorf("v1 and v2 outcomes differ:\nv1: %+v\nv2: %+v", v1, v2)
	}
	if !reflect.DeepEqual(v1, local) {
		t.Errorf("wire and in-process outcomes differ:\nv1:    %+v\nlocal: %+v", v1, local)
	}
}
