package rpc_test

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/rpc"
	"repro/internal/scheduler"
)

// TestWatchFanOutStress floods the v2 watch broker: fanoutConns
// connections each holding fanoutSubsPerConn multiplexed AllJobs
// subscriptions (~50k subscribers in the non-race build), plus one wedged
// connection that subscribes identically and then never reads a byte.
// Every healthy subscriber must receive every event of three submitted
// jobs, and the wedged connection must cost the healthy ones nothing: its
// dispatch goroutines block on its dead socket, its subscription buffers
// overflow, and the broker drops its events instead of stalling the
// scheduler lock.
func TestWatchFanOutStress(t *testing.T) {
	sched := scheduler.NewServer(16, false, nil)
	srv, err := rpc.Serve("127.0.0.1:0", sched)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	subscribe := func(nc net.Conn) error {
		if _, err := nc.Write([]byte{rpc.MagicV2}); err != nil {
			return err
		}
		fw := rpc.NewFrameWriter(nc)
		for id := 1; id <= fanoutSubsPerConn; id++ {
			if err := fw.Write(rpc.Frame{ID: uint64(id), Op: rpc.OpWatch, JobID: scheduler.AllJobs}); err != nil {
				return err
			}
		}
		return nil
	}

	got := make([]atomic.Int64, fanoutConns)
	for i := 0; i < fanoutConns; i++ {
		nc, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		if err := subscribe(nc); err != nil {
			t.Fatal(err)
		}
		go func(i int, nc net.Conn) {
			fr := rpc.NewFrameReader(bufio.NewReader(nc))
			for {
				var r rpc.Reply
				if err := fr.Read(&r); err != nil {
					return
				}
				if r.Event != nil {
					got[i].Add(1)
				}
			}
		}(i, nc)
	}
	// The wedged connection: full set of subscriptions, zero reads.
	wedged, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer wedged.Close()
	if err := subscribe(wedged); err != nil {
		t.Fatal(err)
	}

	// OpWatch frames dispatch concurrently; wait until the broker has every
	// subscriber registered before generating events, so "received all
	// events" is exact.
	wantSubs := (fanoutConns + 1) * fanoutSubsPerConn
	deadline := time.Now().Add(60 * time.Second)
	for sched.Subscribers() < wantSubs {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d subscriptions registered", sched.Subscribers(), wantSubs)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Three jobs on a 16-processor pool: all start immediately, so each
	// subscriber is owed exactly 6 events (3 submits + 3 starts).
	ctx := context.Background()
	cl := &rpc.Client{Addr: srv.Addr()}
	start := grid.Topology{Rows: 2, Cols: 2}
	for i := 0; i < 3; i++ {
		if _, err := cl.Submit(ctx, scheduler.JobSpec{
			Name: fmt.Sprintf("j%d", i), App: "lu", ProblemSize: 8000, Iterations: 10,
			InitialTopo: start, Chain: []grid.Topology{start},
		}); err != nil {
			t.Fatal(err)
		}
	}

	want := int64(6 * fanoutSubsPerConn)
	for {
		done := 0
		for i := range got {
			if got[i].Load() >= want {
				done++
			}
		}
		if done == fanoutConns {
			break
		}
		if time.Now().After(deadline) {
			short := 0
			for i := range got {
				if got[i].Load() < want {
					short++
				}
			}
			t.Fatalf("%d of %d healthy connections still short of %d events (wedged connection stalled the broker?)",
				short, fanoutConns, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i := range got {
		if n := got[i].Load(); n != want {
			t.Errorf("conn %d received %d events, want exactly %d", i, n, want)
		}
	}
	// The control plane must still answer while the wedged connection's
	// dispatch goroutines sit blocked on its socket.
	if _, err := cl.Status(ctx); err != nil {
		t.Fatalf("scheduler unresponsive alongside a wedged watcher: %v", err)
	}
}

// TestWatchDropOnLagIsolation pins the broker's overload behavior at the
// scheduler level: a subscriber that never drains its channel loses events
// — counted on its Subscription — while a draining subscriber alongside it
// receives every event and the publishing path (job submission) never
// blocks.
func TestWatchDropOnLagIsolation(t *testing.T) {
	srv := scheduler.NewServer(4, false, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	fast, err := srv.Watch(ctx, scheduler.AllJobs)
	if err != nil {
		t.Fatal(err)
	}
	var fastGot atomic.Int64
	go func() {
		for range fast.C {
			fastGot.Add(1)
		}
	}()
	slow, err := srv.Watch(ctx, scheduler.AllJobs)
	if err != nil {
		t.Fatal(err)
	}

	// 400 submissions on a 4-processor pool: one start, 399 queued — 401
	// events, comfortably past the 256-event subscription buffer. The
	// submit loop paces itself to the draining subscriber (publish, wait
	// until consumed), so "draining" holds by construction while the
	// lagging subscriber falls arbitrarily behind.
	const wantEvents = 401
	deadline := time.Now().Add(30 * time.Second)
	start := grid.Topology{Rows: 2, Cols: 2}
	for i := 0; i < 400; i++ {
		if _, err := srv.Submit(ctx, scheduler.JobSpec{
			Name: fmt.Sprintf("q%d", i), App: "lu", ProblemSize: 8000, Iterations: 10,
			InitialTopo: start, Chain: []grid.Topology{start},
		}); err != nil {
			t.Fatalf("submit %d blocked or failed behind a lagging watcher: %v", i, err)
		}
		published := int64(i + 2) // i+1 submit events plus job 0's start
		for fastGot.Load() < published {
			if time.Now().After(deadline) {
				t.Fatalf("draining subscriber got %d of %d events", fastGot.Load(), published)
			}
			time.Sleep(time.Microsecond)
		}
	}
	if fastGot.Load() != wantEvents {
		t.Fatalf("draining subscriber got %d of %d events", fastGot.Load(), wantEvents)
	}
	if fast.Dropped() != 0 {
		t.Errorf("draining subscriber dropped %d events", fast.Dropped())
	}
	if d := slow.Dropped(); d == 0 {
		t.Error("lagging subscriber reports no drops after overflowing its buffer")
	} else if d != wantEvents-256 {
		t.Errorf("lagging subscriber dropped %d events, want %d (channel depth 256)", d, wantEvents-256)
	}
}
