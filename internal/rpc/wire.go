package rpc

import (
	"bufio"
	"encoding/gob"
	"io"

	"repro/internal/grid"
	"repro/internal/scheduler"
)

// Wire protocol v2.
//
// A v2 connection opens with the single magic byte MagicV2 — a value a v1
// gob stream can never start with (gob's leading message length is either
// 0x01..0x7F or 0xF8..0xFF), which is how the server sniffs the protocol
// version on the first byte. After the magic byte each direction is one
// persistent stream of length-prefixed frames:
//
//	[uvarint payload length][gob payload]
//
// using gob's native message framing with per-connection codec state, so
// type descriptors cross the wire once per connection rather than once per
// frame. Client→server payloads decode as Frame, server→client as Reply.
//
// Every frame carries a client-chosen nonzero request ID; the client may
// have any number of requests in flight and the server dispatches them
// concurrently, so replies arrive in completion order, matched by ID. A
// request normally produces exactly one reply with Final set; OpWatch
// produces a stream of event replies (Final false) terminated by a Final
// reply when the subscription ends.
const MagicV2 = 0xB2

// Additional v2 operations.
const (
	// OpWatch subscribes to job-state transitions (JobID, or
	// scheduler.AllJobs) and streams them until cancelled.
	OpWatch Op = "watch"
	// OpCancel cancels the in-flight request identified by CancelID
	// (a pending Wait or a Watch subscription).
	OpCancel Op = "cancel"
)

// Reply error codes (Response.Code / Reply.Code).
const (
	// CodeBadRequest marks malformed or unparseable requests.
	CodeBadRequest = "bad-request"
	// CodeUnknownOp marks structurally valid requests naming no operation.
	CodeUnknownOp = "unknown-op"
	// CodeApp marks scheduler-level failures (unknown job, invalid spec…).
	CodeApp = "app"
	// CodeCancelled marks requests terminated by OpCancel or shutdown.
	CodeCancelled = "cancelled"
	// CodeOverload marks requests shed by admission control (see
	// ErrOverload); the request never reached the scheduler and may be
	// retried after backing off.
	CodeOverload = "overload"
)

// Frame is the v2 client→server request envelope.
type Frame struct {
	// ID matches replies to requests; it must be nonzero and unique among
	// the connection's in-flight requests.
	ID uint64
	Op Op
	// Tenant attributes the request for admission control and, on submits
	// with an unset Spec.Tenant, tags the submitted job. Typed clients
	// stamp it from their configured identity (reshape.WithTenant).
	Tenant     string
	JobID      int
	Topo       grid.Topology
	IterTime   float64
	RedistTime float64
	Spec       scheduler.JobSpec
	// CancelID names the request an OpCancel frame targets.
	CancelID uint64
}

// Reply is the v2 server→client envelope. Exactly one of the payload
// fields is meaningful, selected by the originating op.
type Reply struct {
	ID    uint64
	Final bool
	Err   string
	Code  string

	JobID    int
	Decision scheduler.Decision
	Status   *scheduler.ClusterStatus
	Event    *scheduler.JobEvent
}

// FrameWriter emits one direction of a v2 stream. Writes are buffered and
// flushed per frame; callers serialize Write calls per connection.
type FrameWriter struct {
	bw  *bufio.Writer
	enc *gob.Encoder
}

// NewFrameWriter starts a frame stream on w.
func NewFrameWriter(w io.Writer) *FrameWriter {
	bw := bufio.NewWriter(w)
	return &FrameWriter{bw: bw, enc: gob.NewEncoder(bw)}
}

// Write appends one frame to the stream.
func (fw *FrameWriter) Write(v any) error {
	if err := fw.enc.Encode(v); err != nil {
		return err
	}
	return fw.bw.Flush()
}

// FrameReader consumes one direction of a v2 stream.
type FrameReader struct {
	dec *gob.Decoder
}

// NewFrameReader starts reading a frame stream from r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{dec: gob.NewDecoder(r)}
}

// Read decodes the next frame into v.
func (fr *FrameReader) Read(v any) error { return fr.dec.Decode(v) }
