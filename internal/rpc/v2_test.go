package rpc

import (
	"bufio"
	"context"
	"encoding/gob"
	"net"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/scheduler"
)

// dialV2 opens a raw v2 connection (magic byte already sent) with its
// frame codecs.
func dialV2(t *testing.T, addr string) (net.Conn, *FrameWriter, *FrameReader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte{MagicV2}); err != nil {
		t.Fatal(err)
	}
	return conn, NewFrameWriter(conn), NewFrameReader(bufio.NewReader(conn))
}

func TestV2PipelinesConcurrentRequestsOnOneConnection(t *testing.T) {
	sched := scheduler.NewServer(8, true, nil)
	srv, err := Serve("127.0.0.1:0", sched)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, fw, fr := dialV2(t, srv.Addr())
	defer conn.Close()

	// Pipeline a burst of status requests without reading any reply.
	const n = 32
	for i := 1; i <= n; i++ {
		if err := fw.Write(Frame{ID: uint64(i), Op: OpStatus}); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[uint64]bool)
	for i := 0; i < n; i++ {
		var r Reply
		if err := fr.Read(&r); err != nil {
			t.Fatal(err)
		}
		if r.Err != "" {
			t.Fatalf("reply %d: %s", r.ID, r.Err)
		}
		if !r.Final || r.Status == nil || r.Status.Total != 8 {
			t.Fatalf("bad reply %+v", r)
		}
		if seen[r.ID] {
			t.Fatalf("duplicate reply id %d", r.ID)
		}
		seen[r.ID] = true
	}
	if st := srv.Stats(); st.V2Conns != 1 || st.Requests != n {
		t.Fatalf("stats %+v", st)
	}
}

func TestV2WaitDoesNotPinConnection(t *testing.T) {
	// A pending Wait and a burst of other ops share one connection: the
	// defining difference from v1, where Wait parks the whole socket.
	sched := scheduler.NewServer(4, false, nil)
	srv, err := Serve("127.0.0.1:0", sched)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	id, err := sched.Submit(context.Background(), scheduler.JobSpec{
		Name: "j", App: "mw", Iterations: 1,
		InitialTopo: grid.Row1D(2), Chain: []grid.Topology{grid.Row1D(2)},
	})
	if err != nil {
		t.Fatal(err)
	}

	conn, fw, fr := dialV2(t, srv.Addr())
	defer conn.Close()

	if err := fw.Write(Frame{ID: 1, Op: OpWait, JobID: id}); err != nil {
		t.Fatal(err)
	}
	// The wait is pending; a status request on the same conn must still be
	// answered.
	if err := fw.Write(Frame{ID: 2, Op: OpStatus}); err != nil {
		t.Fatal(err)
	}
	var r Reply
	if err := fr.Read(&r); err != nil {
		t.Fatal(err)
	}
	if r.ID != 2 || r.Status == nil {
		t.Fatalf("expected status reply while wait pending, got %+v", r)
	}
	if err := sched.JobEnd(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	if err := fr.Read(&r); err != nil {
		t.Fatal(err)
	}
	if r.ID != 1 || !r.Final || r.Err != "" {
		t.Fatalf("wait reply %+v", r)
	}
}

func TestV2CancelAbortsPendingWait(t *testing.T) {
	sched := scheduler.NewServer(4, false, nil)
	srv, err := Serve("127.0.0.1:0", sched)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	id, err := sched.Submit(context.Background(), scheduler.JobSpec{
		Name: "j", App: "mw", Iterations: 1,
		InitialTopo: grid.Row1D(2), Chain: []grid.Topology{grid.Row1D(2)},
	})
	if err != nil {
		t.Fatal(err)
	}

	conn, fw, fr := dialV2(t, srv.Addr())
	defer conn.Close()
	if err := fw.Write(Frame{ID: 7, Op: OpWait, JobID: id}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if err := fw.Write(Frame{ID: 8, Op: OpCancel, CancelID: 7}); err != nil {
		t.Fatal(err)
	}
	got := map[uint64]Reply{}
	for i := 0; i < 2; i++ {
		var r Reply
		if err := fr.Read(&r); err != nil {
			t.Fatal(err)
		}
		got[r.ID] = r
	}
	if r := got[7]; r.Code != CodeCancelled {
		t.Fatalf("wait reply after cancel: %+v", r)
	}
	if r := got[8]; !r.Final || r.Err != "" {
		t.Fatalf("cancel ack: %+v", r)
	}
}

func TestMalformedV1RequestGetsStructuredError(t *testing.T) {
	sched := scheduler.NewServer(4, false, nil)
	srv, err := Serve("127.0.0.1:0", sched)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A gob stream for the wrong type: decodes into Request with an error.
	if err := gob.NewEncoder(conn).Encode(struct{ Bogus string }{"x"}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatalf("expected structured error response, got %v", err)
	}
	if resp.Err == "" || resp.Code != CodeBadRequest {
		t.Fatalf("response %+v", resp)
	}
	if st := srv.Stats(); st.Malformed == 0 {
		t.Fatalf("malformed requests not counted: %+v", st)
	}
}

func TestMalformedV2FrameGetsErrorFrame(t *testing.T) {
	sched := scheduler.NewServer(4, false, nil)
	srv, err := Serve("127.0.0.1:0", sched)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, _, fr := dialV2(t, srv.Addr())
	defer conn.Close()
	// Garbage that can never decode as a gob Frame message.
	if _, err := conn.Write([]byte{0x04, 0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	var r Reply
	if err := fr.Read(&r); err != nil {
		t.Fatalf("expected error frame, got %v", err)
	}
	if r.Code != CodeBadRequest || !r.Final {
		t.Fatalf("reply %+v", r)
	}
	if st := srv.Stats(); st.Malformed == 0 {
		t.Fatalf("malformed frames not counted: %+v", st)
	}
}

func TestV2UnknownOpAndZeroIDKeepConnectionUsable(t *testing.T) {
	sched := scheduler.NewServer(4, false, nil)
	srv, err := Serve("127.0.0.1:0", sched)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, fw, fr := dialV2(t, srv.Addr())
	defer conn.Close()

	if err := fw.Write(Frame{ID: 0, Op: OpStatus}); err != nil {
		t.Fatal(err)
	}
	var r Reply
	if err := fr.Read(&r); err != nil {
		t.Fatal(err)
	}
	if r.Code != CodeBadRequest {
		t.Fatalf("zero-id reply %+v", r)
	}

	if err := fw.Write(Frame{ID: 3, Op: Op("nonsense")}); err != nil {
		t.Fatal(err)
	}
	if err := fr.Read(&r); err != nil {
		t.Fatal(err)
	}
	if r.ID != 3 || r.Code != CodeUnknownOp {
		t.Fatalf("unknown-op reply %+v", r)
	}

	// The connection survived both rejects.
	if err := fw.Write(Frame{ID: 4, Op: OpStatus}); err != nil {
		t.Fatal(err)
	}
	if err := fr.Read(&r); err != nil {
		t.Fatal(err)
	}
	if r.ID != 4 || r.Status == nil {
		t.Fatalf("status after rejects %+v", r)
	}
}

func TestV2RejectsDuplicateInFlightID(t *testing.T) {
	sched := scheduler.NewServer(4, false, nil)
	srv, err := Serve("127.0.0.1:0", sched)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	id, err := sched.Submit(context.Background(), scheduler.JobSpec{
		Name: "j", App: "mw", Iterations: 1,
		InitialTopo: grid.Row1D(2), Chain: []grid.Topology{grid.Row1D(2)},
	})
	if err != nil {
		t.Fatal(err)
	}

	conn, fw, fr := dialV2(t, srv.Addr())
	defer conn.Close()
	// Park a wait under ID 5, then reuse 5 while it is still in flight.
	if err := fw.Write(Frame{ID: 5, Op: OpWait, JobID: id}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if err := fw.Write(Frame{ID: 5, Op: OpStatus}); err != nil {
		t.Fatal(err)
	}
	var r Reply
	if err := fr.Read(&r); err != nil {
		t.Fatal(err)
	}
	if r.ID != 5 || r.Code != CodeBadRequest || r.Status != nil {
		t.Fatalf("duplicate-id reply %+v", r)
	}
	// The original wait must still be live and cancellable under its ID.
	if err := fw.Write(Frame{ID: 6, Op: OpCancel, CancelID: 5}); err != nil {
		t.Fatal(err)
	}
	got := map[uint64]Reply{}
	for i := 0; i < 2; i++ {
		if err := fr.Read(&r); err != nil {
			t.Fatal(err)
		}
		got[r.ID] = r
	}
	if r := got[5]; r.Code != CodeCancelled {
		t.Fatalf("original wait not cancelled: %+v", r)
	}
}

func TestAcceptLoopBacksOffAfterListenerClose(t *testing.T) {
	// Kill the listener out from under the accept loop (without marking the
	// server done): the loop must record the error and back off instead of
	// hot-spinning, and Err() must surface it.
	sched := scheduler.NewServer(4, false, nil)
	srv, err := Serve("127.0.0.1:0", sched)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	_ = srv.ln.Close()
	deadline := time.After(2 * time.Second)
	for srv.Err() == nil {
		select {
		case <-deadline:
			t.Fatal("accept error never surfaced via Err()")
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	time.Sleep(50 * time.Millisecond)
	st := srv.Stats()
	if st.AcceptErrors == 0 {
		t.Fatal("accept errors not counted")
	}
	// With a min backoff of 1ms doubling to 1s, 50ms of failures can
	// produce at most ~7 attempts; hot-spinning would produce thousands.
	if st.AcceptErrors > 20 {
		t.Fatalf("accept loop hot-spinning: %d errors in 50ms", st.AcceptErrors)
	}
}
