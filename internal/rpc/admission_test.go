package rpc_test

import (
	"bufio"
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/reshape"
	"repro/internal/rpc"
	"repro/internal/scheduler"
)

func admSpec(name, tenant string) scheduler.JobSpec {
	start := grid.Topology{Rows: 2, Cols: 2}
	return scheduler.JobSpec{
		Name: name, App: "lu", ProblemSize: 8000, Iterations: 10,
		Tenant: tenant, InitialTopo: start, Chain: []grid.Topology{start},
	}
}

// TestTenantSurvivesBothWireProtocols pins the tenant threading end to
// end: jobs submitted over v1 and v2 with a client-level tenant identity
// reach the scheduler tagged, and Status reports both the per-job Tenant
// and the per-tenant usage rollup.
func TestTenantSurvivesBothWireProtocols(t *testing.T) {
	sched := scheduler.NewServer(16, false, nil)
	srv, err := rpc.Serve("127.0.0.1:0", sched)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	v2, err := reshape.Dial(srv.Addr(), reshape.WithTenant("beta"))
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	v1 := &rpc.Client{Addr: srv.Addr(), Tenant: "acme"}

	ctx := context.Background()
	// Spec-level tenant wins; the client identity fills in when unset.
	aID, err := v1.Submit(ctx, admSpec("a", ""))
	if err != nil {
		t.Fatal(err)
	}
	bID, err := v2.Submit(ctx, admSpec("b", ""))
	if err != nil {
		t.Fatal(err)
	}
	cID, err := v2.Submit(ctx, admSpec("c", "gamma"))
	if err != nil {
		t.Fatal(err)
	}

	st, err := v1.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]string{aID: "acme", bID: "beta", cID: "gamma"}
	for _, j := range st.Jobs {
		if j.Tenant != want[j.ID] {
			t.Errorf("job %d tenant %q, want %q", j.ID, j.Tenant, want[j.ID])
		}
	}
	if len(st.Tenants) != 3 {
		t.Fatalf("tenant rollup %+v, want 3 rows", st.Tenants)
	}
	// Rows are sorted by tenant name; all three jobs run (16 procs, 4 each).
	for i, name := range []string{"acme", "beta", "gamma"} {
		u := st.Tenants[i]
		if u.Tenant != name || u.Running != 1 || u.Procs != 4 || u.Queued != 0 {
			t.Errorf("rollup[%d] = %+v, want tenant %q running 1 procs 4", i, u, name)
		}
	}
}

// TestAdmissionShedsOverQuotaTenant: a tenant exhausting its token bucket
// gets typed overload errors, counted in Stats.Shed, while another
// tenant's requests keep flowing.
func TestAdmissionShedsOverQuotaTenant(t *testing.T) {
	sched := scheduler.NewServer(64, false, nil)
	srv, err := rpc.Serve("127.0.0.1:0", sched,
		rpc.WithLimits(rpc.Limits{TenantRate: 0.001, TenantBurst: 2}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	noisy, err := reshape.Dial(srv.Addr(), reshape.WithTenant("noisy"))
	if err != nil {
		t.Fatal(err)
	}
	defer noisy.Close()

	ctx := context.Background()
	var shed int
	for i := 0; i < 6; i++ {
		_, err := noisy.Status(ctx)
		if errors.Is(err, rpc.ErrOverload) {
			shed++
		} else if err != nil {
			t.Fatalf("request %d: unexpected error %v", i, err)
		}
	}
	if shed != 4 {
		t.Fatalf("shed %d of 6 requests, want 4 (burst 2)", shed)
	}
	if got := srv.Stats().Shed; got != 4 {
		t.Fatalf("Stats.Shed = %d, want 4", got)
	}

	// The noisy tenant's exhaustion must not touch another tenant.
	calm := &rpc.Client{Addr: srv.Addr(), Tenant: "calm"}
	if _, err := calm.Status(ctx); err != nil {
		t.Fatalf("calm tenant shed alongside the noisy one: %v", err)
	}
	// And the v1 path sheds with the same typed error once its bucket runs
	// dry.
	var v1shed bool
	for i := 0; i < 4; i++ {
		if _, err := calm.Status(ctx); errors.Is(err, rpc.ErrOverload) {
			v1shed = true
		}
	}
	if !v1shed {
		t.Fatal("v1 client never saw ErrOverload after exhausting its bucket")
	}
}

// TestAdmissionInflightCap: a blocking Wait holds the tenant's single
// inflight slot, shedding its further requests while other tenants are
// untouched; the slot frees when the wait resolves.
func TestAdmissionInflightCap(t *testing.T) {
	sched := scheduler.NewServer(4, false, nil)
	srv, err := rpc.Serve("127.0.0.1:0", sched,
		rpc.WithLimits(rpc.Limits{TenantInflight: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	busy, err := reshape.Dial(srv.Addr(), reshape.WithTenant("busy"))
	if err != nil {
		t.Fatal(err)
	}
	defer busy.Close()

	ctx := context.Background()
	id, err := busy.Submit(ctx, admSpec("hog", ""))
	if err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- busy.Wait(ctx, id) }()

	// Once the wait occupies the slot, the tenant's next request sheds.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := busy.Status(ctx)
		if errors.Is(err, rpc.ErrOverload) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("tenant never hit its inflight cap while a wait was parked")
		}
		time.Sleep(5 * time.Millisecond)
	}
	other := &rpc.Client{Addr: srv.Addr(), Tenant: "other"}
	if _, err := other.Status(ctx); err != nil {
		t.Fatalf("other tenant shed by busy tenant's inflight cap: %v", err)
	}

	// The busy tenant cannot end its own job — the parked wait holds its
	// only slot — so finish it from the other tenant, which resolves the
	// wait and frees the slot.
	if err := other.JobEnd(ctx, id); err != nil {
		t.Fatal(err)
	}
	if err := <-waitErr; err != nil {
		t.Fatalf("wait: %v", err)
	}
	for {
		if _, err := busy.Status(ctx); err == nil {
			return // slot freed
		}
		if time.Now().After(deadline) {
			t.Fatal("inflight slot never freed after the wait resolved")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAdmissionConnQuota: the per-connection bucket clips a flooding v2
// connection regardless of the tenants its frames claim.
func TestAdmissionConnQuota(t *testing.T) {
	sched := scheduler.NewServer(4, false, nil)
	srv, err := rpc.Serve("127.0.0.1:0", sched,
		rpc.WithLimits(rpc.Limits{ConnRate: 0.001, ConnBurst: 2}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write([]byte{rpc.MagicV2}); err != nil {
		t.Fatal(err)
	}
	fw := rpc.NewFrameWriter(nc)
	fr := rpc.NewFrameReader(bufio.NewReader(nc))

	tenants := []string{"t1", "t2", "t3", "t4", "t5"}
	for i, tenant := range tenants {
		if err := fw.Write(rpc.Frame{ID: uint64(i + 1), Op: rpc.OpStatus, Tenant: tenant}); err != nil {
			t.Fatal(err)
		}
	}
	codes := map[string]int{}
	for range tenants {
		var r rpc.Reply
		if err := fr.Read(&r); err != nil {
			t.Fatal(err)
		}
		codes[r.Code]++
	}
	if codes[rpc.CodeOverload] != 3 || codes[""] != 2 {
		t.Fatalf("reply codes %v, want 2 ok + 3 overload (burst 2)", codes)
	}
}
