package rpc

import (
	"context"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/grid"
	"repro/internal/scheduler"
)

func topo(r, c int) grid.Topology { return grid.Topology{Rows: r, Cols: c} }

func TestRoundTripOverTCP(t *testing.T) {
	ctx := context.Background()
	sched := scheduler.NewServer(8, true, nil)
	srv, err := Serve("127.0.0.1:0", sched)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := &Client{Addr: srv.Addr()}

	id, err := cl.Submit(ctx, scheduler.JobSpec{
		Name: "lu", App: "lu", ProblemSize: 12000, Iterations: 10,
		InitialTopo: topo(1, 2),
		Chain:       grid.GrowthChain(topo(1, 2), 12000, 8),
	})
	if err != nil {
		t.Fatal(err)
	}

	d, err := cl.Contact(ctx, id, topo(1, 2), 129.63, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Action != scheduler.ActionExpand || d.Target != topo(2, 2) {
		t.Fatalf("decision %+v", d)
	}
	if err := cl.ResizeComplete(ctx, id, 8.0); err != nil {
		t.Fatal(err)
	}

	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 8 || st.Free != 4 {
		t.Fatalf("status total/free = %d/%d", st.Total, st.Free)
	}
	if len(st.Jobs) != 1 || st.Jobs[0].State != "running" {
		t.Fatalf("jobs %+v", st.Jobs)
	}

	if err := cl.JobEnd(ctx, id); err != nil {
		t.Fatal(err)
	}
	st, err = cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Free != 8 {
		t.Fatalf("free = %d after end", st.Free)
	}
	if s := srv.Stats(); s.V1Conns == 0 || s.Requests == 0 {
		t.Fatalf("stats not counting v1 traffic: %+v", s)
	}
}

func TestServerReportsErrors(t *testing.T) {
	ctx := context.Background()
	sched := scheduler.NewServer(4, false, nil)
	srv, err := Serve("127.0.0.1:0", sched)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := &Client{Addr: srv.Addr()}

	if _, err := cl.Contact(ctx, 99, topo(1, 1), 1, 0); err == nil {
		t.Error("contact for unknown job should fail")
	}
	if _, err := cl.Submit(ctx, scheduler.JobSpec{Name: "big", InitialTopo: topo(4, 4)}); err == nil {
		t.Error("oversized job should fail")
	}
}

func TestClientDialFailure(t *testing.T) {
	cl := &Client{Addr: "127.0.0.1:1", DialTimeout: 200 * time.Millisecond}
	if _, err := cl.Status(context.Background()); err == nil {
		t.Error("expected dial error")
	}
}

func TestClientHonoursContextDeadline(t *testing.T) {
	sched := scheduler.NewServer(4, false, nil)
	srv, err := Serve("127.0.0.1:0", sched)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := &Client{Addr: srv.Addr()}
	id, err := cl.Submit(context.Background(), scheduler.JobSpec{
		Name: "j", App: "mw", Iterations: 1,
		InitialTopo: grid.Row1D(2), Chain: []grid.Topology{grid.Row1D(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := cl.Wait(ctx, id); err == nil {
		t.Fatal("Wait should fail when the deadline expires before JobEnd")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("Wait ignored the deadline (took %v)", elapsed)
	}
}

func TestWaitBlocksUntilJobEnd(t *testing.T) {
	ctx := context.Background()
	sched := scheduler.NewServer(4, false, nil)
	srv, err := Serve("127.0.0.1:0", sched)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := &Client{Addr: srv.Addr()}
	id, err := cl.Submit(ctx, scheduler.JobSpec{
		Name: "j", App: "mw", Iterations: 1,
		InitialTopo: grid.Row1D(2), Chain: []grid.Topology{grid.Row1D(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cl.Wait(ctx, id) }()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("Wait returned before JobEnd")
	default:
	}
	if err := cl.JobEnd(ctx, id); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait never returned")
	}
}

func TestRemoteSchedulerDrivesRealApp(t *testing.T) {
	// End-to-end over TCP: a real application resized by a remote daemon.
	ctx := context.Background()
	var launched = make(chan int, 4)
	var sched *scheduler.Server
	var cl *Client
	sched = scheduler.NewServer(4, true, func(j *scheduler.Job) {
		launched <- j.ID
		cfg := apps.Config{App: "lu", N: 8, NB: 2, Iterations: 3}
		if err := apps.Launch(cl, j.ID, j.Topo, cfg); err != nil {
			t.Errorf("launch: %v", err)
			_ = cl.JobEnd(ctx, j.ID)
		}
	})
	srv, err := Serve("127.0.0.1:0", sched)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl = &Client{Addr: srv.Addr()}

	id, err := cl.Submit(ctx, scheduler.JobSpec{
		Name: "lu", App: "lu", ProblemSize: 8, Iterations: 3,
		InitialTopo: topo(1, 2),
		Chain:       grid.GrowthChain(topo(1, 2), 8, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Wait(ctx, id); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Free != 4 {
		t.Errorf("free = %d", st.Free)
	}
	if st.Jobs[0].State != "done" {
		t.Errorf("state %v", st.Jobs[0].State)
	}
}

func TestV1WatchSynthesizesEventsFromPolling(t *testing.T) {
	ctx := context.Background()
	sched := scheduler.NewServer(8, true, nil)
	srv, err := Serve("127.0.0.1:0", sched)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := &Client{Addr: srv.Addr(), PollInterval: 10 * time.Millisecond}

	sub, err := cl.Watch(ctx, scheduler.AllJobs)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()

	id, err := cl.Submit(ctx, scheduler.JobSpec{
		Name: "j", App: "mw", Iterations: 1,
		InitialTopo: grid.Row1D(2), Chain: []grid.Topology{grid.Row1D(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.JobEnd(ctx, id); err != nil {
		t.Fatal(err)
	}

	kinds := map[string]bool{}
	deadline := time.After(5 * time.Second)
	for !(kinds["submit"] && kinds["start"] && kinds["end"]) {
		select {
		case ev := <-sub.C:
			kinds[ev.Kind] = true
		case <-deadline:
			t.Fatalf("missing kinds, saw %v", kinds)
		}
	}
}
