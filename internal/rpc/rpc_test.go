package rpc

import (
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/grid"
	"repro/internal/scheduler"
)

func topo(r, c int) grid.Topology { return grid.Topology{Rows: r, Cols: c} }

func TestRoundTripOverTCP(t *testing.T) {
	sched := scheduler.NewServer(8, true, nil)
	srv, err := Serve("127.0.0.1:0", sched)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := &Client{Addr: srv.Addr()}

	id, err := cl.Submit(scheduler.JobSpec{
		Name: "lu", App: "lu", ProblemSize: 12000, Iterations: 10,
		InitialTopo: topo(1, 2),
		Chain:       grid.GrowthChain(topo(1, 2), 12000, 8),
	})
	if err != nil {
		t.Fatal(err)
	}

	d, err := cl.Contact(id, topo(1, 2), 129.63, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Action != scheduler.ActionExpand || d.Target != topo(2, 2) {
		t.Fatalf("decision %+v", d)
	}
	if err := cl.ResizeComplete(id, 8.0); err != nil {
		t.Fatal(err)
	}

	st, err := cl.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 8 || st.Free != 4 {
		t.Fatalf("status total/free = %d/%d", st.Total, st.Free)
	}
	if len(st.Jobs) != 1 || st.Jobs[0].State != "running" {
		t.Fatalf("jobs %+v", st.Jobs)
	}

	if err := cl.JobEnd(id); err != nil {
		t.Fatal(err)
	}
	st, err = cl.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Free != 8 {
		t.Fatalf("free = %d after end", st.Free)
	}
}

func TestServerReportsErrors(t *testing.T) {
	sched := scheduler.NewServer(4, false, nil)
	srv, err := Serve("127.0.0.1:0", sched)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := &Client{Addr: srv.Addr()}

	if _, err := cl.Contact(99, topo(1, 1), 1, 0); err == nil {
		t.Error("contact for unknown job should fail")
	}
	if _, err := cl.Submit(scheduler.JobSpec{Name: "big", InitialTopo: topo(4, 4)}); err == nil {
		t.Error("oversized job should fail")
	}
}

func TestClientDialFailure(t *testing.T) {
	cl := &Client{Addr: "127.0.0.1:1"} // almost certainly closed
	if _, err := cl.Status(); err == nil {
		t.Error("expected dial error")
	}
}

func TestWaitBlocksUntilJobEnd(t *testing.T) {
	sched := scheduler.NewServer(4, false, nil)
	srv, err := Serve("127.0.0.1:0", sched)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := &Client{Addr: srv.Addr()}
	id, err := cl.Submit(scheduler.JobSpec{
		Name: "j", App: "mw", Iterations: 1,
		InitialTopo: grid.Row1D(2), Chain: []grid.Topology{grid.Row1D(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cl.Wait(id) }()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("Wait returned before JobEnd")
	default:
	}
	if err := cl.JobEnd(id); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait never returned")
	}
}

func TestRemoteSchedulerDrivesRealApp(t *testing.T) {
	// End-to-end over TCP: a real application resized by a remote daemon.
	var launched = make(chan int, 4)
	var sched *scheduler.Server
	var cl *Client
	sched = scheduler.NewServer(4, true, func(j *scheduler.Job) {
		launched <- j.ID
		cfg := apps.Config{App: "lu", N: 8, NB: 2, Iterations: 3}
		if err := apps.Launch(cl, j.ID, j.Topo, cfg); err != nil {
			t.Errorf("launch: %v", err)
			_ = cl.JobEnd(j.ID)
		}
	})
	srv, err := Serve("127.0.0.1:0", sched)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl = &Client{Addr: srv.Addr()}

	id, err := cl.Submit(scheduler.JobSpec{
		Name: "lu", App: "lu", ProblemSize: 8, Iterations: 3,
		InitialTopo: topo(1, 2),
		Chain:       grid.GrowthChain(topo(1, 2), 8, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Wait(id); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Free != 4 {
		t.Errorf("free = %d", st.Free)
	}
	if st.Jobs[0].State != "done" {
		t.Errorf("state %v", st.Jobs[0].State)
	}
}
