package rpc_test

import (
	"context"
	"testing"

	"repro/internal/grid"
	"repro/internal/reshape"
	"repro/internal/resize"
	"repro/internal/rpc"
	"repro/internal/scheduler"
)

// TestPrioritySurvivesBothWireProtocols pins the Priority threading of the
// arbitration layer end to end: a JobSpec submitted over the v1 one-shot
// protocol and the v2 multiplexed protocol must reach the scheduler with
// its priority intact, order the wait queue by it, and report it back
// through the typed Status snapshot.
func TestPrioritySurvivesBothWireProtocols(t *testing.T) {
	sched := scheduler.NewServer(4, false, nil)
	srv, err := rpc.Serve("127.0.0.1:0", sched)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	v2, err := reshape.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	clients := map[string]resize.Scheduler{
		"v1": &rpc.Client{Addr: srv.Addr()},
		"v2": v2,
	}

	ctx := context.Background()
	start := grid.Topology{Rows: 2, Cols: 2}
	spec := func(name string, prio int) scheduler.JobSpec {
		return scheduler.JobSpec{
			Name: name, App: "lu", ProblemSize: 8000, Iterations: 10,
			Priority: prio, InitialTopo: start,
			Chain: []grid.Topology{start},
		}
	}

	// The hog fills the pool so later submissions queue in priority order.
	if _, err := clients["v1"].Submit(ctx, spec("hog", 0)); err != nil {
		t.Fatal(err)
	}
	lowID, err := clients["v1"].Submit(ctx, spec("low-v1", 1))
	if err != nil {
		t.Fatal(err)
	}
	highID, err := clients["v2"].Submit(ctx, spec("high-v2", 7))
	if err != nil {
		t.Fatal(err)
	}

	for name, cl := range clients {
		st, err := cl.Status(ctx)
		if err != nil {
			t.Fatalf("%s status: %v", name, err)
		}
		byID := map[int]scheduler.JobInfo{}
		for _, j := range st.Jobs {
			byID[j.ID] = j
		}
		if got := byID[lowID].Priority; got != 1 {
			t.Errorf("%s: job %d priority %d, want 1", name, lowID, got)
		}
		if got := byID[highID].Priority; got != 7 {
			t.Errorf("%s: job %d priority %d, want 7", name, highID, got)
		}
	}

	// Queue order follows priority: the core's head must be the high-prio
	// submission even though it arrived last.
	core := sched.Core()
	j, ok := core.Job(highID)
	if !ok || j.State != scheduler.Queued {
		t.Fatalf("high-priority job missing/queued? %v", ok)
	}
	started, err := core.Finish(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(started) != 1 || started[0].ID != highID {
		t.Fatalf("started %v, want the priority-7 job %d first", started, highID)
	}
}
