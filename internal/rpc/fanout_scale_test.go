//go:build !race

package rpc_test

// Watch fan-out stress scale: ~50k concurrent v2 subscriptions spread
// over 100 multiplexed connections (plus one wedged connection). The
// race-instrumented build scales down 100x (see fanout_scale_race_test.go)
// — the race runtime caps goroutines at 8k and slows every channel op.
const (
	fanoutConns       = 100
	fanoutSubsPerConn = 500
)
