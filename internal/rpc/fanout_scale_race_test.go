//go:build race

package rpc_test

// Scaled-down fan-out stress for the race-instrumented CI lane: same
// topology (many multiplexed subscriptions per connection, one wedged
// connection), 100x fewer subscribers.
const (
	fanoutConns       = 10
	fanoutSubsPerConn = 50
)
