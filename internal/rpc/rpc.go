// Package rpc exposes the ReSHAPE scheduler over TCP so applications and
// command-line tools can talk to a reshaped daemon. Two wire protocols
// share one listening port, told apart by the first byte of each
// connection:
//
//   - v1 (the reference protocol): one gob-encoded Request and one
//     gob-encoded Response per connection — simple, stateless and pinned
//     by differential tests as the behavioural reference.
//   - v2 (see wire.go): a persistent, multiplexed connection carrying
//     length-prefixed frames with request IDs, concurrent server-side
//     dispatch, cancellation, and a streaming Watch subscription. The
//     typed client for v2 lives in package reshape.
//
// The v1 Client in this package remains as the reference client; it too
// implements the full resize.Scheduler capability surface (Watch degrades
// to status polling, since v1 has no server push).
package rpc

import (
	"bufio"
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/grid"
	"repro/internal/resize"
	"repro/internal/scheduler"
)

// Op selects the remote operation.
type Op string

// Operations common to both protocol versions.
const (
	OpSubmit         Op = "submit"
	OpContact        Op = "contact"
	OpResizeComplete Op = "resize-complete"
	OpJobEnd         Op = "job-end"
	OpJobError       Op = "job-error"
	OpWait           Op = "wait"
	OpStatus         Op = "status"
)

// Request is the v1 wire request envelope.
type Request struct {
	Op Op
	// Tenant attributes the request for admission control (see
	// Frame.Tenant for the v2 counterpart and the stamping rule).
	Tenant     string
	JobID      int
	Topo       grid.Topology
	IterTime   float64
	RedistTime float64
	Spec       scheduler.JobSpec
}

// Response is the v1 wire response envelope. Errors carry a
// machine-readable Code alongside the human-readable Err.
type Response struct {
	Err      string
	Code     string
	JobID    int
	Decision scheduler.Decision
	Status   scheduler.ClusterStatus
}

// Stats counts server activity since start; all fields are cumulative.
type Stats struct {
	V1Conns      uint64 // v1 (one-shot) connections accepted
	V2Conns      uint64 // v2 (multiplexed) connections accepted
	Requests     uint64 // operations dispatched to the scheduler
	Malformed    uint64 // undecodable frames / unknown ops rejected
	Watches      uint64 // v2 watch subscriptions opened
	AcceptErrors uint64 // transient listener Accept failures
	Shed         uint64 // requests shed by admission control (never dispatched)
}

// Server serves scheduler requests over TCP, speaking both protocol
// versions on one port.
type Server struct {
	sched *scheduler.Server
	ln    net.Listener
	wg    sync.WaitGroup
	logf  func(format string, args ...any)

	// baseCtx is cancelled on Close; every blocking v1 dispatch and v2
	// request inherits from it.
	//lint:allow ctxfirst server-lifetime context (net/http BaseContext pattern): cancelled on Close, never a request context
	baseCtx context.Context
	cancel  context.CancelFunc

	mu    sync.Mutex
	done  bool
	conns map[net.Conn]struct{}

	v1Conns      atomic.Uint64
	v2Conns      atomic.Uint64
	requests     atomic.Uint64
	malformed    atomic.Uint64
	watches      atomic.Uint64
	acceptErrors atomic.Uint64
	shed         atomic.Uint64
	lastErr      atomic.Value // error

	// Admission control (see admission.go). limits is fixed at Serve time;
	// admTenants grows one entry per distinct tenant name.
	limits     Limits
	admMu      sync.Mutex
	admTenants map[string]*admEntry
}

// ServerOption configures Serve.
type ServerOption func(*Server)

// WithLogf installs a log hook for server-side events (accept failures,
// protocol errors). The default discards them.
func WithLogf(logf func(format string, args ...any)) ServerOption {
	return func(s *Server) { s.logf = logf }
}

// Serve starts listening on addr (e.g. "127.0.0.1:7077"; port 0 picks a
// free port). The returned server is already accepting.
func Serve(addr string, sched *scheduler.Server, opts ...ServerOption) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: listen %s: %w", addr, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		sched:   sched,
		ln:      ln,
		logf:    func(string, ...any) {},
		baseCtx: ctx,
		cancel:  cancel,
		conns:   make(map[net.Conn]struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	return Stats{
		V1Conns:      s.v1Conns.Load(),
		V2Conns:      s.v2Conns.Load(),
		Requests:     s.requests.Load(),
		Malformed:    s.malformed.Load(),
		Watches:      s.watches.Load(),
		AcceptErrors: s.acceptErrors.Load(),
		Shed:         s.shed.Load(),
	}
}

// Err returns the most recent transient accept error (nil if accepting has
// been healthy). It complements the WithLogf hook for callers that poll.
func (s *Server) Err() error {
	if e, ok := s.lastErr.Load().(error); ok {
		return e
	}
	return nil
}

// Close stops accepting, severs live connections (in-flight waits and
// watches end with a cancelled error) and waits for handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.done = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.cancel()
	err := s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done
}

// Accept backoff bounds: transient listener failures (fd exhaustion,
// ECONNABORTED) back off exponentially instead of hot-spinning.
const (
	acceptBackoffMin = time.Millisecond
	acceptBackoffMax = time.Second
)

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	backoff := acceptBackoffMin
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.closed() {
				return
			}
			s.acceptErrors.Add(1)
			s.lastErr.Store(err)
			s.logf("rpc: accept: %v (retrying in %v)", err, backoff)
			select {
			case <-s.baseCtx.Done():
				return
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			continue
		}
		backoff = acceptBackoffMin
		if !s.track(conn, true) {
			// Close() ran between Accept and tracking; it never saw this
			// connection, so sever it here or shutdown would hang waiting
			// on an idle client.
			_ = conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.track(conn, false)
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

// track registers or unregisters a live connection. Registering fails
// (returns false) once the server is closed.
func (s *Server) track(conn net.Conn, add bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if add {
		if s.done {
			return false
		}
		s.conns[conn] = struct{}{}
	} else {
		delete(s.conns, conn)
	}
	return true
}

// serveConn sniffs the protocol version from the connection's first byte:
// MagicV2 starts a multiplexed v2 session, anything else is the opening
// byte of a v1 gob request.
func (s *Server) serveConn(conn net.Conn) {
	br := bufio.NewReader(conn)
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	if first[0] == MagicV2 {
		_, _ = br.Discard(1)
		s.v2Conns.Add(1)
		s.serveV2(conn, br)
		return
	}
	s.v1Conns.Add(1)
	s.handleV1(conn, br)
}

// handleV1 serves one one-shot v1 exchange. Malformed requests get a
// structured error response (Code CodeBadRequest) instead of a silent
// hangup, and are counted in Stats.Malformed.
func (s *Server) handleV1(conn net.Conn, br *bufio.Reader) {
	var req Request
	if err := gob.NewDecoder(br).Decode(&req); err != nil {
		s.malformed.Add(1)
		s.logf("rpc: malformed v1 request from %v: %v", conn.RemoteAddr(), err)
		_ = gob.NewEncoder(conn).Encode(Response{
			Err:  fmt.Sprintf("rpc: malformed request: %v", err),
			Code: CodeBadRequest,
		})
		return
	}
	release, ok := s.admit(requestTenant(req.Op, req.Tenant, &req.Spec), nil)
	if !ok {
		_ = gob.NewEncoder(conn).Encode(Response{Err: ErrOverload.Error(), Code: CodeOverload})
		return
	}
	defer release()
	resp := s.dispatch(req)
	_ = gob.NewEncoder(conn).Encode(resp)
}

func appErr(err error) Response {
	return Response{Err: err.Error(), Code: CodeApp}
}

func (s *Server) dispatch(req Request) Response {
	ctx := s.baseCtx
	switch req.Op {
	case OpSubmit:
		s.requests.Add(1)
		id, err := s.sched.Submit(ctx, req.Spec)
		if err != nil {
			return appErr(err)
		}
		return Response{JobID: id}
	case OpContact:
		s.requests.Add(1)
		d, err := s.sched.Contact(ctx, req.JobID, req.Topo, req.IterTime, req.RedistTime)
		if err != nil {
			return appErr(err)
		}
		return Response{Decision: d}
	case OpResizeComplete:
		s.requests.Add(1)
		if err := s.sched.ResizeComplete(ctx, req.JobID, req.RedistTime); err != nil {
			return appErr(err)
		}
		return Response{}
	case OpJobEnd:
		s.requests.Add(1)
		if err := s.sched.JobEnd(ctx, req.JobID); err != nil {
			return appErr(err)
		}
		return Response{}
	case OpJobError:
		s.requests.Add(1)
		if err := s.sched.JobError(ctx, req.JobID); err != nil {
			return appErr(err)
		}
		return Response{}
	case OpWait:
		s.requests.Add(1)
		// v1 parks the whole connection on the wait — the cost v2's
		// multiplexed Wait/Watch removes.
		if err := s.sched.Wait(ctx, req.JobID); err != nil {
			if ctx.Err() != nil {
				return Response{Err: "rpc: server shutting down", Code: CodeCancelled}
			}
			return appErr(err)
		}
		return Response{}
	case OpStatus:
		s.requests.Add(1)
		st, err := s.sched.Status(ctx)
		if err != nil {
			return appErr(err)
		}
		return Response{Status: st}
	default:
		s.malformed.Add(1)
		return Response{Err: fmt.Sprintf("rpc: unknown op %q", req.Op), Code: CodeUnknownOp}
	}
}

// Client is the v1 reference client: one TCP dial and one gob round trip
// per call. It implements the full resize.Scheduler surface so code
// written against the capability interface runs over v1 unchanged; prefer
// the reshape package (rpc/v2) for anything performance-sensitive.
type Client struct {
	Addr string
	// Tenant, when set, attributes every request to that tenant for
	// server-side admission control and tags submitted jobs whose spec
	// carries no tenant of its own.
	Tenant string
	// DialTimeout bounds connection establishment when the call context
	// carries no deadline (default 10s).
	DialTimeout time.Duration
	// PollInterval is the Status-polling cadence behind Watch — v1 has no
	// server push, so watches are synthesized from snapshots (default
	// 50ms).
	PollInterval time.Duration
}

var _ resize.Scheduler = (*Client)(nil)

// call performs one request/response round trip, honouring ctx for dial,
// send and receive.
func (c *Client) call(ctx context.Context, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	if req.Tenant == "" {
		req.Tenant = c.Tenant
	}
	dialTimeout := c.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 10 * time.Second
	}
	d := net.Dialer{Timeout: dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", c.Addr)
	if err != nil {
		return Response{}, fmt.Errorf("rpc: dial %s: %w", c.Addr, err)
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	}
	// Unblock the in-flight read/write if ctx is cancelled mid-call.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			_ = conn.SetDeadline(time.Unix(1, 0))
		case <-watchDone:
		}
	}()
	if err := gob.NewEncoder(conn).Encode(req); err != nil {
		return Response{}, fmt.Errorf("rpc: encode: %w", err)
	}
	var resp Response
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		if ctx.Err() != nil {
			return Response{}, ctx.Err()
		}
		return Response{}, fmt.Errorf("rpc: decode: %w", err)
	}
	if resp.Code == CodeOverload {
		return resp, ErrOverload
	}
	if resp.Err != "" {
		return resp, fmt.Errorf("rpc: server: %s", resp.Err)
	}
	return resp, nil
}

// Submit enqueues a job and returns its id.
func (c *Client) Submit(ctx context.Context, spec scheduler.JobSpec) (int, error) {
	resp, err := c.call(ctx, Request{Op: OpSubmit, Spec: spec})
	return resp.JobID, err
}

// Contact implements resize.Client.
func (c *Client) Contact(ctx context.Context, jobID int, topo grid.Topology, iterTime, redistTime float64) (scheduler.Decision, error) {
	resp, err := c.call(ctx, Request{
		Op: OpContact, JobID: jobID, Topo: topo, IterTime: iterTime, RedistTime: redistTime,
	})
	return resp.Decision, err
}

// ResizeComplete implements resize.Client.
func (c *Client) ResizeComplete(ctx context.Context, jobID int, redistTime float64) error {
	_, err := c.call(ctx, Request{Op: OpResizeComplete, JobID: jobID, RedistTime: redistTime})
	return err
}

// JobEnd implements resize.Client.
func (c *Client) JobEnd(ctx context.Context, jobID int) error {
	_, err := c.call(ctx, Request{Op: OpJobEnd, JobID: jobID})
	return err
}

// JobError reports an application failure (the application monitor's
// job-error signal): the job is deleted and its resources recovered.
func (c *Client) JobError(ctx context.Context, jobID int) error {
	_, err := c.call(ctx, Request{Op: OpJobError, JobID: jobID})
	return err
}

// Wait blocks until a job completes. Note the v1 cost: the wait parks a
// dedicated TCP connection on the server.
func (c *Client) Wait(ctx context.Context, jobID int) error {
	_, err := c.call(ctx, Request{Op: OpWait, JobID: jobID})
	return err
}

// Status fetches a typed scheduler snapshot.
func (c *Client) Status(ctx context.Context) (scheduler.ClusterStatus, error) {
	resp, err := c.call(ctx, Request{Op: OpStatus})
	return resp.Status, err
}

// Watch implements the capability interface over v1 by polling Status and
// synthesizing transition events from consecutive snapshots. Semantics are
// deliberately degraded relative to v2 server push: transitions that
// happen faster than PollInterval may be missed or coalesced, event Time
// is taken from the job's recorded timestamps (0 for resize transitions),
// and failures surface as "end". It exists so v1 remains a complete
// reference implementation of resize.Scheduler.
func (c *Client) Watch(ctx context.Context, jobID int) (*scheduler.Subscription, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	baseline, err := c.Status(ctx)
	if err != nil {
		return nil, err
	}
	wctx, cancel := context.WithCancel(ctx)
	ch := make(chan scheduler.JobEvent, 256)
	sub := scheduler.NewSubscription(ch, cancel)
	go func() {
		defer close(ch)
		prev := snapshotByID(baseline)
		var seq uint64
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-wctx.Done():
				return
			case <-ticker.C:
			}
			st, err := c.Status(wctx)
			if err != nil {
				if wctx.Err() != nil {
					return
				}
				continue // transient; keep polling
			}
			for _, ev := range diffStatus(prev, st, jobID) {
				seq++
				ev.Seq = seq
				select {
				case ch <- ev:
				default:
					// Slow consumer: drop and count, like the
					// server-side broker.
					sub.NoteDrop()
				}
			}
			prev = snapshotByID(st)
		}
	}()
	return sub, nil
}

func snapshotByID(st scheduler.ClusterStatus) map[int]scheduler.JobInfo {
	m := make(map[int]scheduler.JobInfo, len(st.Jobs))
	for _, j := range st.Jobs {
		m[j.ID] = j
	}
	return m
}

// diffStatus converts the delta between two status snapshots into
// synthetic JobEvents (filtered to jobID unless it is scheduler.AllJobs).
func diffStatus(prev map[int]scheduler.JobInfo, st scheduler.ClusterStatus, jobID int) []scheduler.JobEvent {
	var out []scheduler.JobEvent
	emit := func(j scheduler.JobInfo, kind string, t float64) {
		if jobID != scheduler.AllJobs && jobID != j.ID {
			return
		}
		out = append(out, scheduler.JobEvent{
			Time: t, JobID: j.ID, Job: j.Name, Kind: kind, Topo: j.Topo,
			Busy: st.Busy, Free: st.Free,
		})
	}
	for _, j := range st.Jobs {
		old, seen := prev[j.ID]
		if !seen {
			emit(j, "submit", j.Submit)
			if j.State != "queued" {
				emit(j, "start", j.Start)
			}
			if j.State == "done" {
				emit(j, "end", j.End)
			}
			continue
		}
		if old.State == "queued" && j.State != "queued" {
			emit(j, "start", j.Start)
		}
		if j.State == "running" && old.State == "running" && j.Topo != old.Topo {
			kind := "expand"
			if j.Topo.Count() < old.Topo.Count() {
				kind = "shrink"
			}
			emit(j, kind, 0)
		}
		if old.State != "done" && j.State == "done" {
			emit(j, "end", j.End)
		}
	}
	return out
}
