// Package rpc exposes the ReSHAPE scheduler over TCP so applications and
// command-line tools can talk to a reshaped daemon. The wire protocol is
// one gob-encoded request and one gob-encoded response per connection —
// deliberately simple, stateless and dependency-free.
package rpc

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"repro/internal/grid"
	"repro/internal/scheduler"
)

// Op selects the remote operation.
type Op string

// Remote operations.
const (
	OpSubmit         Op = "submit"
	OpContact        Op = "contact"
	OpResizeComplete Op = "resize-complete"
	OpJobEnd         Op = "job-end"
	OpWait           Op = "wait"
	OpStatus         Op = "status"
)

// Request is the single wire request envelope.
type Request struct {
	Op         Op
	JobID      int
	Topo       grid.Topology
	IterTime   float64
	RedistTime float64
	Spec       scheduler.JobSpec
}

// JobInfo is a job snapshot for status replies.
type JobInfo struct {
	ID     int
	Name   string
	State  string
	Topo   grid.Topology
	Submit float64
	Start  float64
	End    float64
}

// Response is the single wire response envelope.
type Response struct {
	Err      string
	JobID    int
	Decision scheduler.Decision
	Jobs     []JobInfo
	Events   []scheduler.AllocEvent
	Free     int
	Total    int
}

// Server serves scheduler requests over TCP.
type Server struct {
	sched *scheduler.Server
	ln    net.Listener
	wg    sync.WaitGroup
	mu    sync.Mutex
	done  bool
}

// Serve starts listening on addr (e.g. "127.0.0.1:7077"; port 0 picks a
// free port). The returned server is already accepting.
func Serve(addr string, sched *scheduler.Server) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: listen %s: %w", addr, err)
	}
	s := &Server{sched: sched, ln: ln}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and waits for in-flight requests.
func (s *Server) Close() error {
	s.mu.Lock()
	s.done = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			done := s.done
			s.mu.Unlock()
			if done {
				return
			}
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	var req Request
	if err := gob.NewDecoder(conn).Decode(&req); err != nil {
		return
	}
	resp := s.dispatch(req)
	_ = gob.NewEncoder(conn).Encode(resp)
}

func (s *Server) dispatch(req Request) Response {
	switch req.Op {
	case OpSubmit:
		job, err := s.sched.Submit(req.Spec)
		if err != nil {
			return Response{Err: err.Error()}
		}
		return Response{JobID: job.ID}
	case OpContact:
		d, err := s.sched.Contact(req.JobID, req.Topo, req.IterTime, req.RedistTime)
		if err != nil {
			return Response{Err: err.Error()}
		}
		return Response{Decision: d}
	case OpResizeComplete:
		if err := s.sched.ResizeComplete(req.JobID, req.RedistTime); err != nil {
			return Response{Err: err.Error()}
		}
		return Response{}
	case OpJobEnd:
		if err := s.sched.JobEnd(req.JobID); err != nil {
			return Response{Err: err.Error()}
		}
		return Response{}
	case OpWait:
		s.sched.Wait(req.JobID)
		return Response{}
	case OpStatus:
		core := s.sched.Core()
		resp := Response{Free: core.Free(), Total: core.Total, Events: core.Events}
		for _, j := range core.Jobs() {
			resp.Jobs = append(resp.Jobs, JobInfo{
				ID: j.ID, Name: j.Spec.Name, State: j.State.String(), Topo: j.Topo,
				Submit: j.SubmitTime, Start: j.StartTime, End: j.EndTime,
			})
		}
		return resp
	default:
		return Response{Err: fmt.Sprintf("rpc: unknown op %q", req.Op)}
	}
}

// Client talks to a reshaped daemon. It implements resize.Client, so
// applications can use a remote scheduler transparently.
type Client struct {
	Addr string
}

// call performs one request/response round trip.
func (c *Client) call(req Request) (Response, error) {
	conn, err := net.Dial("tcp", c.Addr)
	if err != nil {
		return Response{}, fmt.Errorf("rpc: dial %s: %w", c.Addr, err)
	}
	defer conn.Close()
	if err := gob.NewEncoder(conn).Encode(req); err != nil {
		return Response{}, fmt.Errorf("rpc: encode: %w", err)
	}
	var resp Response
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		return Response{}, fmt.Errorf("rpc: decode: %w", err)
	}
	if resp.Err != "" {
		return resp, fmt.Errorf("rpc: server: %s", resp.Err)
	}
	return resp, nil
}

// Submit enqueues a job and returns its id.
func (c *Client) Submit(spec scheduler.JobSpec) (int, error) {
	resp, err := c.call(Request{Op: OpSubmit, Spec: spec})
	return resp.JobID, err
}

// Contact implements resize.Client.
func (c *Client) Contact(jobID int, topo grid.Topology, iterTime, redistTime float64) (scheduler.Decision, error) {
	resp, err := c.call(Request{
		Op: OpContact, JobID: jobID, Topo: topo, IterTime: iterTime, RedistTime: redistTime,
	})
	return resp.Decision, err
}

// ResizeComplete implements resize.Client.
func (c *Client) ResizeComplete(jobID int, redistTime float64) error {
	_, err := c.call(Request{Op: OpResizeComplete, JobID: jobID, RedistTime: redistTime})
	return err
}

// JobEnd implements resize.Client.
func (c *Client) JobEnd(jobID int) error {
	_, err := c.call(Request{Op: OpJobEnd, JobID: jobID})
	return err
}

// Wait blocks until a job completes.
func (c *Client) Wait(jobID int) error {
	_, err := c.call(Request{Op: OpWait, JobID: jobID})
	return err
}

// Status fetches the scheduler snapshot.
func (c *Client) Status() (Response, error) {
	return c.call(Request{Op: OpStatus})
}
