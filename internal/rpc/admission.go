package rpc

import (
	"errors"
	"sync"
	"time"

	"repro/internal/scheduler"
)

// Admission control: the server protects itself from noisy tenants and
// runaway connections by shedding over-quota requests *before* they reach
// the scheduler lock, with a typed overload reply (CodeOverload) the
// client can distinguish from application errors. Shedding is accounted in
// Stats.Shed; shed requests are never counted in Stats.Requests because
// they were never dispatched.
//
// Two independent layers apply, both token buckets with inflight caps:
//
//   - per tenant (all protocols): requests are attributed to the tenant
//     named by the request envelope (falling back to the job spec's Tenant
//     on submits), so one tenant exhausting its quota cannot consume
//     another tenant's scheduler throughput;
//   - per connection (v2 only): a multiplexed connection that floods
//     frames is clipped regardless of which tenants it claims, bounding
//     the damage of a misattributing or malicious client. v1 connections
//     carry exactly one request, so connection quotas are meaningless
//     there.
//
// Blocking requests (Wait, Watch) hold an inflight slot for as long as
// they run: an inflight cap therefore bounds a tenant's parked waits and
// open subscriptions, not just its instantaneous burst. OpCancel is
// exempt from admission — shedding cancels would leak the very requests
// an overloaded client is trying to abandon.

// ErrOverload is the typed shed error. Server replies carry CodeOverload
// on the wire; the v1 client returns this exact error and the reshape
// client's ServerError matches it via errors.Is.
var ErrOverload = errors.New("rpc: overloaded: request shed by admission control")

// Limits configures admission control for a Server. The zero value
// disables every check (the default: no behavioral change for existing
// deployments). Each knob is independent; zero disables just that check.
type Limits struct {
	// TenantRate is the sustained per-tenant request rate (requests per
	// second) enforced by a token bucket of capacity TenantBurst. A zero
	// TenantBurst defaults to max(1, TenantRate).
	TenantRate  float64
	TenantBurst int
	// ConnRate / ConnBurst shape each v2 connection the same way.
	ConnRate  float64
	ConnBurst int
	// TenantInflight caps one tenant's concurrently executing requests
	// (including parked Waits and open Watch streams).
	TenantInflight int
	// ConnInflight caps one v2 connection's concurrently executing
	// requests.
	ConnInflight int
}

// enabled reports whether any check is configured.
func (l Limits) enabled() bool {
	return l.TenantRate > 0 || l.ConnRate > 0 || l.TenantInflight > 0 || l.ConnInflight > 0
}

// WithLimits installs admission control on a server.
func WithLimits(l Limits) ServerOption {
	return func(s *Server) { s.limits = l }
}

// bucket is a lazily refilled token bucket. Callers hold the owning
// admEntry's lock.
type bucket struct {
	tokens float64
	last   time.Time
}

// take refills at rate (tokens/second, capped at burst) and consumes one
// token. A zero rate admits everything.
func (b *bucket) take(rate float64, burst int, now time.Time) bool {
	if rate <= 0 {
		return true
	}
	limit := float64(burst)
	if limit <= 0 {
		limit = rate
		if limit < 1 {
			limit = 1
		}
	}
	if b.last.IsZero() {
		b.tokens = limit // a fresh bucket starts full
	} else if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * rate
		if b.tokens > limit {
			b.tokens = limit
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// admEntry is one admission scope — a tenant or a v2 connection.
type admEntry struct {
	mu       sync.Mutex
	bkt      bucket
	inflight int
}

// admit checks the scope's inflight cap and rate, reserving one inflight
// slot on success. The inflight check runs first so a denied request
// consumes no token.
func (e *admEntry) admit(rate float64, burst, inflightCap int, now time.Time) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if inflightCap > 0 && e.inflight >= inflightCap {
		return false
	}
	if !e.bkt.take(rate, burst, now) {
		return false
	}
	e.inflight++
	return true
}

// release returns the inflight slot admit reserved.
func (e *admEntry) release() {
	e.mu.Lock()
	e.inflight--
	e.mu.Unlock()
}

// tenantEntry returns (creating on first use) the admission scope for a
// tenant. Entries are never evicted: the map is bounded by the number of
// distinct tenant names the deployment actually serves.
func (s *Server) tenantEntry(tenant string) *admEntry {
	s.admMu.Lock()
	defer s.admMu.Unlock()
	e := s.admTenants[tenant]
	if e == nil {
		if s.admTenants == nil {
			s.admTenants = make(map[string]*admEntry)
		}
		e = &admEntry{}
		s.admTenants[tenant] = e
	}
	return e
}

// admit runs both admission layers for one request attributed to tenant;
// connAdm is the connection's scope (nil for v1 one-shot connections).
// On success it returns a release closure the caller must run when the
// request finishes; on shed it returns ok=false with Stats.Shed already
// incremented.
func (s *Server) admit(tenant string, connAdm *admEntry) (release func(), ok bool) {
	l := s.limits
	if !l.enabled() {
		return func() {}, true
	}
	now := time.Now()
	if connAdm != nil && !connAdm.admit(l.ConnRate, l.ConnBurst, l.ConnInflight, now) {
		s.shed.Add(1)
		return nil, false
	}
	te := s.tenantEntry(tenant)
	if !te.admit(l.TenantRate, l.TenantBurst, l.TenantInflight, now) {
		if connAdm != nil {
			connAdm.release()
		}
		s.shed.Add(1)
		return nil, false
	}
	return func() {
		te.release()
		if connAdm != nil {
			connAdm.release()
		}
	}, true
}

// requestTenant attributes a request to a tenant: the envelope's Tenant
// field, or — for submits with an unset envelope — the job spec's. On
// submits the spec is stamped with the envelope tenant when the spec's own
// is empty, so a client-level tenant identity tags every job it submits
// without every call site repeating it.
func requestTenant(op Op, envelope string, spec *scheduler.JobSpec) string {
	if op == OpSubmit {
		if spec.Tenant == "" {
			spec.Tenant = envelope
		}
		return spec.Tenant
	}
	return envelope
}
