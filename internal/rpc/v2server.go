package rpc

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
)

// v2conn is the server side of one multiplexed v2 connection: a read loop
// decoding frames, concurrent per-request dispatch goroutines, and a
// serialized writer.
type v2conn struct {
	srv  *Server
	conn net.Conn
	fw   *FrameWriter

	wmu sync.Mutex // serializes frame writes on conn

	// ctx is cancelled when the connection dies or the server closes;
	// every in-flight request derives from it.
	//lint:allow ctxfirst connection-lifetime context: scoped to one conn's read loop, not carried across requests
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	inflight map[uint64]context.CancelFunc

	// adm is this connection's admission scope (nil when the server has no
	// limits configured).
	adm *admEntry

	reqs sync.WaitGroup
}

// serveV2 runs a multiplexed session on conn (the magic byte has already
// been consumed; br may hold buffered bytes beyond it).
func (s *Server) serveV2(conn net.Conn, br io.Reader) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	c := &v2conn{
		srv:      s,
		conn:     conn,
		fw:       NewFrameWriter(conn),
		ctx:      ctx,
		cancel:   cancel,
		inflight: make(map[uint64]context.CancelFunc),
	}
	if s.limits.enabled() {
		c.adm = &admEntry{}
	}
	defer c.reqs.Wait()
	defer cancel()

	fr := NewFrameReader(br)
	for {
		var f Frame
		if err := fr.Read(&f); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
				errors.Is(err, net.ErrClosed) || ctx.Err() != nil {
				return // peer hung up / server shutting down
			}
			// The stream is unsynchronized after a bad frame: report and
			// drop the connection.
			s.malformed.Add(1)
			s.logf("rpc: malformed v2 frame from %v: %v", conn.RemoteAddr(), err)
			c.write(Reply{Final: true, Err: err.Error(), Code: CodeBadRequest})
			return
		}
		if f.ID == 0 {
			// Framing is intact, the request is just invalid: reject it
			// and keep the connection.
			s.malformed.Add(1)
			c.write(Reply{Final: true, Err: "rpc: request id must be nonzero", Code: CodeBadRequest})
			continue
		}
		if f.Op == OpCancel {
			s.requests.Add(1)
			c.cancelRequest(f.CancelID)
			c.write(Reply{ID: f.ID, Final: true})
			continue
		}
		c.reqs.Add(1)
		go func(f Frame) {
			defer c.reqs.Done()
			c.dispatch(f)
		}(f)
	}
}

// write sends one reply frame; a failed write kills the connection.
func (c *v2conn) write(r Reply) {
	c.wmu.Lock()
	err := c.fw.Write(r)
	c.wmu.Unlock()
	if err != nil {
		c.cancel()
	}
}

// cancelRequest aborts the in-flight request registered under id (no-op if
// it already completed).
func (c *v2conn) cancelRequest(id uint64) {
	c.mu.Lock()
	cancel := c.inflight[id]
	c.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// register claims id for an in-flight request; it fails if the id is
// already in use, enforcing the wire contract that request IDs are unique
// among a connection's in-flight requests.
func (c *v2conn) register(id uint64, cancel context.CancelFunc) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.inflight[id]; exists {
		return false
	}
	c.inflight[id] = cancel
	return true
}

func (c *v2conn) unregister(id uint64) {
	c.mu.Lock()
	delete(c.inflight, id)
	c.mu.Unlock()
}

// dispatch runs one request to completion and writes its final reply.
// Requests on one connection execute concurrently; replies are matched by
// ID, not order.
func (c *v2conn) dispatch(f Frame) {
	ctx, cancel := context.WithCancel(c.ctx)
	defer cancel()

	s := c.srv
	final := func(r Reply) {
		r.ID = f.ID
		r.Final = true
		c.write(r)
	}
	if !c.register(f.ID, cancel) {
		s.malformed.Add(1)
		final(Reply{Err: "rpc: request id already in flight", Code: CodeBadRequest})
		return
	}
	defer c.unregister(f.ID)
	// Admission control runs before the scheduler sees the request; a
	// blocking op (Wait, Watch) holds its slots until the stream ends.
	release, admitted := s.admit(requestTenant(f.Op, f.Tenant, &f.Spec), c.adm)
	if !admitted {
		final(Reply{Err: ErrOverload.Error(), Code: CodeOverload})
		return
	}
	defer release()
	fail := func(err error) {
		if ctx.Err() != nil {
			final(Reply{Err: "rpc: request cancelled", Code: CodeCancelled})
			return
		}
		final(Reply{Err: err.Error(), Code: CodeApp})
	}

	switch f.Op {
	case OpSubmit:
		s.requests.Add(1)
		id, err := s.sched.Submit(ctx, f.Spec)
		if err != nil {
			fail(err)
			return
		}
		final(Reply{JobID: id})
	case OpContact:
		s.requests.Add(1)
		d, err := s.sched.Contact(ctx, f.JobID, f.Topo, f.IterTime, f.RedistTime)
		if err != nil {
			fail(err)
			return
		}
		final(Reply{Decision: d})
	case OpResizeComplete:
		s.requests.Add(1)
		if err := s.sched.ResizeComplete(ctx, f.JobID, f.RedistTime); err != nil {
			fail(err)
			return
		}
		final(Reply{})
	case OpJobEnd:
		s.requests.Add(1)
		if err := s.sched.JobEnd(ctx, f.JobID); err != nil {
			fail(err)
			return
		}
		final(Reply{})
	case OpJobError:
		s.requests.Add(1)
		if err := s.sched.JobError(ctx, f.JobID); err != nil {
			fail(err)
			return
		}
		final(Reply{})
	case OpWait:
		s.requests.Add(1)
		// Unlike v1, a pending wait holds only this goroutine — the
		// connection keeps serving other requests.
		if err := s.sched.Wait(ctx, f.JobID); err != nil {
			fail(err)
			return
		}
		final(Reply{})
	case OpStatus:
		s.requests.Add(1)
		st, err := s.sched.Status(ctx)
		if err != nil {
			fail(err)
			return
		}
		final(Reply{Status: &st})
	case OpWatch:
		s.requests.Add(1)
		s.watches.Add(1)
		sub, err := s.sched.Watch(ctx, f.JobID)
		if err != nil {
			fail(err)
			return
		}
		defer sub.Cancel()
		for ev := range sub.C {
			ev := ev
			c.write(Reply{ID: f.ID, Event: &ev})
		}
		// Stream closed: subscription cancelled (client OpCancel, server
		// shutdown, or connection loss).
		final(Reply{})
	default:
		s.malformed.Add(1)
		final(Reply{Err: "rpc: unknown op " + string(f.Op), Code: CodeUnknownOp})
	}
}
