package journalfirst_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/journalfirst"
)

// TestJournalfirst pins the write-ahead guard: direct writes to journaled
// Core/Job state (plain assignment, map-index write, append-assign,
// compound assignment, ++) are flagged outside the state-machine files,
// while the same writes in an allowed file, configuration-field writes,
// reads, and the justified escape hatch stay clean.
func TestJournalfirst(t *testing.T) {
	analysistest.Run(t, analysistest.TestdataDir(), journalfirst.Analyzer, "journalfirst")
}

// TestGuardedFieldsMirrorPersistState documents the contract that the
// guarded set is exactly the persisted state: if PersistState grows a
// field, the guard must grow with it.
func TestGuardedFieldsMirrorPersistState(t *testing.T) {
	for _, f := range []string{"nextID", "jobs", "queue", "running", "busySeconds", "Events"} {
		if !journalfirst.GuardedFields["Core"][f] {
			t.Errorf("Core.%s must be guarded: it is part of the persisted state image", f)
		}
	}
	for _, f := range []string{"State", "Topo", "grant", "pendingFree", "resizeFrom"} {
		if !journalfirst.GuardedFields["Job"][f] {
			t.Errorf("Job.%s must be guarded: it is part of the persisted state image", f)
		}
	}
}
