// Package journalfirst guards the scheduler's write-ahead discipline:
// every mutation of the Core's journaled state must flow through the
// validated→journal→apply→ack state machine that lives in core.go,
// contact.go, journal.go and persist.go (plus linear.go, the reference
// core sharing the same choke points). A direct field write from any
// other file — a future server feature poking j.State, an arbiter
// "fixing up" pendingFree — would mutate acknowledged state without a WAL
// record, and the next crash-recovery replay would silently diverge.
//
// The check is structural: assignments (including map-index writes,
// compound assignments and ++/--) whose target resolves to a journaled
// field of the Core or Job types are only legal in the allowed files.
// Reads are unrestricted, and mutations via the queue/pool's own methods
// are their packages' business — the guarded surface is exactly the state
// PersistState snapshots and Apply replays.
package journalfirst

import (
	"go/ast"
	"go/types"
	"path/filepath"

	"repro/internal/analysis"
)

// Scope: the journaled state machine lives in the scheduler package.
var Scope = []string{"repro/internal/scheduler"}

// GuardedFields maps a type name to the fields whose writes must stay
// inside AllowedFiles. The sets mirror PersistState: what the snapshot
// persists is exactly what replay must be able to reconstruct.
var GuardedFields = map[string]map[string]bool{
	"Core": set("nextID", "jobs", "queue", "running", "busySeconds", "lastBusy", "lastBusyTime", "Events"),
	"Job":  set("State", "Topo", "grant", "pendingFree", "resizeFrom", "Profile", "SubmitTime", "StartTime", "EndTime"),
	// The tenant tag is journaled with the submit record and drives
	// fair-share arbitration on replay: rewriting it after acknowledgment
	// would silently shift the job between tenants' shares.
	"JobSpec": set("Tenant"),
}

// AllowedFiles are the state machine's files: the five journaled entry
// points and replay (core.go, journal.go), the shared contact-path
// helpers (contact.go), snapshot restore (persist.go), and the linear
// reference core (linear.go) that shares the same choke points.
var AllowedFiles = set("core.go", "contact.go", "journal.go", "persist.go", "linear.go")

func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

// Analyzer is the journal-before-apply guard.
var Analyzer = &analysis.Analyzer{
	Name:  "journalfirst",
	Doc:   "journaled Core/Job state may only be written by the validated→journal→apply→ack state machine files",
	Scope: Scope,
	Run:   run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		file := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if AllowedFiles[file] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					checkWrite(pass, file, lhs)
				}
			case *ast.IncDecStmt:
				checkWrite(pass, file, st.X)
			}
			return true
		})
	}
	return nil
}

// checkWrite reports lhs if it denotes (or indexes into) a guarded field.
func checkWrite(pass *analysis.Pass, file string, lhs ast.Expr) {
	lhs = ast.Unparen(lhs)
	// A write through an index expression (c.jobs[id] = j) mutates the
	// guarded map just as directly as replacing it.
	if ix, ok := lhs.(*ast.IndexExpr); ok {
		lhs = ast.Unparen(ix.X)
	}
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	field := selection.Obj()
	recv := selection.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() != pass.Pkg {
		return
	}
	tname := named.Obj().Name()
	if GuardedFields[tname][field.Name()] {
		pass.Reportf(sel.Pos(),
			"write to journaled state %s.%s outside the journal state machine (%s); route the mutation through a journaled Core entry point so crash replay sees it",
			tname, field.Name(), file)
	}
}
