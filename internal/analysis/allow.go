package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The escape hatch: a comment of the form
//
//	//lint:allow <analyzer> <justification>
//
// suppresses <analyzer>'s diagnostics on the directive's own line and on
// the line immediately below it (so it works both trailing a statement
// and on its own line above one). The justification is mandatory; a bare
// `//lint:allow detcore` is reported by detcore as a policy violation.
// Every sanctioned exception is therefore documented at the line it
// exempts, and greppable: `git grep lint:allow` is the complete allowance
// inventory.

const allowPrefix = "lint:allow"

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	line          int
	analyzer      string
	justification string
	pos           token.Pos
}

// parseAllows extracts every allow directive from a file's comments.
func parseAllows(fset *token.FileSet, f *ast.File) []allowDirective {
	var out []allowDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//")
			if !ok {
				continue // /* */ comments cannot carry directives
			}
			text, ok = strings.CutPrefix(strings.TrimSpace(text), allowPrefix)
			if !ok || (text != "" && text[0] != ' ' && text[0] != '\t') {
				continue
			}
			// A nested "//" ends the justification (it starts a trailing
			// comment, e.g. an analysistest want expectation).
			if i := strings.Index(text, "//"); i >= 0 {
				text = text[:i]
			}
			fields := strings.Fields(text)
			d := allowDirective{line: fset.Position(c.Pos()).Line, pos: c.Pos()}
			if len(fields) > 0 {
				d.analyzer = fields[0]
				d.justification = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), fields[0]))
			}
			out = append(out, d)
		}
	}
	return out
}

// filterAllowed drops diagnostics covered by a justified allow directive
// for the named analyzer, and adds a diagnostic for each directive naming
// it that carries no justification.
func filterAllowed(name string, fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	allowed := make(map[string]map[int]bool) // filename -> suppressed lines
	var out []Diagnostic
	for _, f := range files {
		for _, d := range parseAllows(fset, f) {
			if d.analyzer != name {
				continue
			}
			if d.justification == "" {
				out = append(out, Diagnostic{Pos: d.pos,
					Message: "lint:allow " + name + " needs a justification: say why the invariant may be broken here"})
				continue
			}
			file := fset.Position(d.pos).Filename
			if allowed[file] == nil {
				allowed[file] = make(map[int]bool)
			}
			allowed[file][d.line] = true
			allowed[file][d.line+1] = true
		}
	}
	for _, dg := range diags {
		p := fset.Position(dg.Pos)
		if allowed[p.Filename][p.Line] {
			continue
		}
		out = append(out, dg)
	}
	return out
}
