// Package durerr enforces durability error discipline on the WAL and
// snapshot write paths: an error from Sync, Write, Rename (or a
// non-deferred Close) on those paths is the storage layer telling you an
// acknowledged operation may not survive a crash — discarding it turns
// "durable" into "probably". The write-ahead contract (journal refusal
// must propagate so the Core never applies an unjournaled op) only holds
// if every one of those errors reaches the caller.
//
// Flagged forms, for callees named Sync/Write/Rename/Truncate/Close whose
// final result is an error:
//
//   - a bare call statement: f.Close()
//   - an explicit blank discard: _ = w.Sync(), n, _ := f.Write(b)
//   - defer/go for Sync, Write, Rename and Truncate (their errors are
//     always meaningful); a *deferred* Close is permitted — it is the
//     idiomatic cleanup of read-side handles, whose close errors carry no
//     durability signal.
//
// Best-effort cleanup (os.Remove of a temp file on an already-failing
// path) is deliberately not flagged.
package durerr

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Scope covers the durability layer and the scheduler package (whose
// persist.go is the snapshot state image; the package has no other I/O,
// so the wider net costs nothing and catches future additions).
var Scope = []string{
	"repro/internal/durability",
	"repro/internal/scheduler",
}

// watched names the durability-significant calls. Close is special-cased
// in run: only non-deferred discards are flagged.
var watched = map[string]bool{
	"Sync": true, "Write": true, "Rename": true, "Truncate": true, "Close": true,
}

// Analyzer is the durability-error-discipline check.
var Analyzer = &analysis.Analyzer{
	Name:  "durerr",
	Doc:   "errors from Sync/Write/Rename/Truncate/Close on durability paths must be handled, not discarded",
	Scope: Scope,
	Run:   run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if name, ok := watchedCall(pass, st.X); ok {
					pass.Reportf(st.Pos(), "%s error discarded on a durability path; handle it (propagate, join, or log) — a dropped %s error can lose acknowledged state", name, name)
				}
			case *ast.DeferStmt:
				if name, ok := watchedCall(pass, st.Call); ok && name != "Close" {
					pass.Reportf(st.Pos(), "deferred %s discards its error on a durability path; call it explicitly and handle the error", name)
				}
			case *ast.GoStmt:
				if name, ok := watchedCall(pass, st.Call); ok && name != "Close" {
					pass.Reportf(st.Pos(), "%s error discarded in a goroutine on a durability path; handle it in the spawned function", name)
				}
			case *ast.AssignStmt:
				checkBlankDiscard(pass, st)
			}
			return true
		})
	}
	return nil
}

// watchedCall reports whether expr is a call to a watched method or
// function whose last result is an error.
func watchedCall(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", false
	}
	if !watched[id.Name] {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return "", false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	if !ok || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
		return "", false
	}
	return id.Name, true
}

// checkBlankDiscard flags `_ = f.Close()` style assignments where the
// error result position is the blank identifier.
func checkBlankDiscard(pass *analysis.Pass, st *ast.AssignStmt) {
	// Single call on the RHS; the error is the last LHS position.
	if len(st.Rhs) != 1 {
		return
	}
	name, ok := watchedCall(pass, st.Rhs[0])
	if !ok || len(st.Lhs) == 0 {
		return
	}
	last, ok := st.Lhs[len(st.Lhs)-1].(*ast.Ident)
	if ok && last.Name == "_" {
		pass.Reportf(st.Pos(), "%s error explicitly discarded on a durability path; if the drop is truly safe, say why with a lint:allow directive instead", name)
	}
}
