package durerr_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/durerr"
)

// TestDurerr pins durability error discipline: bare and blank-discarded
// Sync/Write/Rename/Close calls are flagged; deferred Close (read-path
// cleanup), fully handled errors, and the justified escape hatch are not;
// deferred Sync is still a loss and is flagged.
func TestDurerr(t *testing.T) {
	analysistest.Run(t, analysistest.TestdataDir(), durerr.Analyzer, "durerr")
}
