package durerr

import (
	"errors"
	"os"
)

// appendRecord shows the discarded-error forms on a WAL-style write path.
func appendRecord(f *os.File, b []byte) error {
	f.Write(b)   // want "Write error discarded on a durability path"
	_ = f.Sync() // want "Sync error explicitly discarded on a durability path"
	f.Close()    // want "Close error discarded on a durability path"
	return nil
}

// blankWrite drops only the error position of a two-value Write.
func blankWrite(f *os.File, b []byte) int {
	n, _ := f.Write(b) // want "Write error explicitly discarded on a durability path"
	return n
}

// publish covers the rename-into-place step.
func publish(tmp, final string) {
	os.Rename(tmp, final) // want "Rename error discarded on a durability path"
}

// deferredSync is still a loss: the deferred call's error vanishes.
func deferredSync(f *os.File) {
	defer f.Sync() // want "deferred Sync discards its error on a durability path"
}

// readSide is the idiomatic read-path cleanup: a deferred Close carries
// no durability signal and is permitted.
func readSide(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	n, err := f.Read(buf)
	return buf[:n], err
}

// handled is the discipline the analyzer wants.
func handled(f *os.File, b []byte) error {
	if _, err := f.Write(b); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}

// sanctioned drops a Close error with a documented reason.
func sanctioned(f *os.File) {
	//lint:allow durerr read-only probe handle; no buffered writes to lose
	f.Close()
}
