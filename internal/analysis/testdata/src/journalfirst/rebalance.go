// rebalance.go is NOT an allowed file: it mimics a planning layer (the
// global rebalancer) trying to apply its journaled OpRebalance tick
// directly instead of through the validated→journal→apply→ack state
// machine. Even a "timestamp-only" op mutates journaled state when
// applied — the clock advance and any directive actuation must go
// through Core.Rebalance in journal.go, or a crash-recovery replay
// diverges from the acknowledged plan.
package journalfirst

// applyTick applies a rebalance tick in place: both writes bypass the
// write-ahead journal and are rejected.
func applyTick(c *Core, now float64) {
	c.lastBusyTime = now // want "write to journaled state Core.lastBusyTime"
	for _, j := range c.jobs {
		j.Topo++ // want "write to journaled state Job.Topo"
	}
}

// planTick only reads the journaled state to build a plan: legal — the
// planner's directives are actuated by the state machine, not here.
func planTick(c *Core) (views int) {
	for _, j := range c.jobs {
		if j.State == 1 {
			views += j.Topo
		}
	}
	return views
}
