// core.go is an allowed state-machine file: every write below is legal.
package journalfirst

// JobSpec mirrors the scheduler's job specification: the tenant tag is
// journaled with the submit record, so it is guarded like Core/Job state.
type JobSpec struct {
	Name   string // not journaled state in the guarded sense: label only
	Tenant string
}

// Job mirrors the scheduler's job record (guarded fields by name).
type Job struct {
	ID          int
	Spec        JobSpec
	State       int
	Topo        int
	pendingFree int
	EndTime     float64
}

// Core mirrors the scheduler core's journaled state.
type Core struct {
	Policy       string // not journaled: configuration, not state
	nextID       int
	jobs         map[int]*Job
	Events       []int
	lastBusyTime float64
}

// Submit is a journaled entry point: writes here are the state machine.
func (c *Core) Submit(j *Job) {
	c.nextID++
	c.jobs[j.ID] = j
	c.Events = append(c.Events, j.ID)
	j.State = 1
	j.Spec.Tenant = "stamped-at-submit"
}
