// rogue.go is NOT an allowed file: direct writes to journaled state here
// bypass the write-ahead journal.
package journalfirst

// Hijack mutates acknowledged state without a WAL record.
func Hijack(c *Core, j *Job) {
	c.nextID++                      // want "write to journaled state Core.nextID"
	c.jobs[j.ID] = j                // want "write to journaled state Core.jobs"
	c.Events = append(c.Events, 99) // want "write to journaled state Core.Events"
	j.State = 2                     // want "write to journaled state Job.State"
	j.pendingFree += 4              // want "write to journaled state Job.pendingFree"
	j.EndTime = 1.5                 // want "write to journaled state Job.EndTime"
	j.Spec.Tenant = "stolen"        // want "write to journaled state JobSpec.Tenant"
	j.Spec.Name = "renamed"         // labels are not journaled state: legal
}

// Configure touches configuration, not journaled state: legal anywhere.
func Configure(c *Core) {
	c.Policy = "paper"
}

// Inspect only reads: reads are unrestricted.
func Inspect(c *Core) int {
	return c.nextID + len(c.jobs)
}

// Sanctioned shows the escape hatch on a genuinely non-replayed cache.
func Sanctioned(c *Core) {
	//lint:allow journalfirst rebuilding a derived index, not acknowledged state
	c.Events = nil
}
