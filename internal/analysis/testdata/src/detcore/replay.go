package detcore

// Core mimics the scheduler's replayable state machine; Apply is a
// configured replay root.
type Core struct{ n int }

// Apply is the replay entry point.
func (c *Core) Apply(op int) error {
	c.step(op)
	return nil
}

// step is reachable from Apply, so its goroutine is a replay-path spawn.
func (c *Core) step(op int) {
	go func() { // want "goroutine spawned on the journal replay path"
		c.n += op
	}()
}

// Serve is NOT reachable from Apply: boundary goroutines are fine.
func (c *Core) Serve() {
	go c.loop()
}

func (c *Core) loop() {}
