package detcore

import "sort"

type event struct{ id int }

type core struct {
	events []event
}

// leakAppend feeds map iteration order straight into an ordered trace.
func leakAppend(jobs map[int]string) []string {
	var out []string
	for _, name := range jobs {
		out = append(out, name) // want "append to out inside range over a map"
	}
	return out
}

// leakFieldAppend appends through a selector: an event trace.
func (c *core) leakFieldAppend(jobs map[int]int) {
	for id := range jobs {
		c.events = append(c.events, event{id: id}) // want "append to c.events inside range over a map"
	}
}

// collectThenSort is the sanctioned idiom: the sort re-establishes a
// deterministic order, so the append is not a leak.
func collectThenSort(jobs map[int]string) []string {
	var keys []int
	for k := range jobs {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, jobs[k])
	}
	return out
}

// innerAppend grows a loop-local slice: order cannot escape the body.
func innerAppend(jobs map[int][]int) int {
	total := 0
	for _, vs := range jobs {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

// sharedSend publishes values on one channel in map order.
func sharedSend(jobs map[int]string, out chan string) {
	for _, name := range jobs {
		out <- name // want "send on a shared channel inside range over a map"
	}
}

// perKeySend delivers to each subscriber's own channel: every receiver
// sees a deterministic stream, whatever the map order.
func perKeySend(subs map[int]chan int, v int) {
	for _, ch := range subs {
		ch <- v
	}
}
