package detcore

import "math/rand"

// pick draws from the global source: forbidden, it is process-seeded.
func pick(n int) int {
	return rand.Intn(n) // want "rand.Intn draws from the global random source"
}

// shuffle is the other common global-source slip.
func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "rand.Shuffle draws from the global random source"
}

// seeded owns its generator: the constructor calls are the sanctioned
// path and method calls on the local generator are free.
func seeded(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}
