package detcore

import "time"

// epoch simulates the scheduler clock helpers the analyzer must flag.
func epoch() float64 {
	start := time.Now()                // want "time.Now reads the wall clock"
	return time.Since(start).Seconds() // want "time.Since reads the wall clock"
}

// deadline shows the remaining forbidden clock read.
func deadline(t time.Time) time.Duration {
	return time.Until(t) // want "time.Until reads the wall clock"
}

// sanctioned is the Server-boundary pattern: a justified allow directive
// suppresses the diagnostic.
func sanctioned() time.Time {
	//lint:allow detcore the server epoch is the sanctioned nondeterminism boundary
	return time.Now()
}

// unjustified carries a bare directive: the directive itself is the
// finding, and it does not suppress the violation below it.
func unjustified() time.Time {
	//lint:allow detcore // want "needs a justification"
	return time.Now() // want "time.Now reads the wall clock"
}

// timers are not clock reads: they schedule real-time work without
// putting a timestamp into replayable state.
func timers() *time.Ticker {
	return time.NewTicker(time.Second)
}
