package ctxfirst

import "context"

// JobClient is a boundary type: exported error-returning methods must
// take a context first.
type JobClient struct{ addr string }

// Submit is compliant.
func (c *JobClient) Submit(ctx context.Context, spec string) (int, error) {
	return 0, ctx.Err()
}

// Cancel returns an error but cannot be cancelled or transported: flagged.
func (c *JobClient) Cancel(id int) error { // want "JobClient.Cancel returns an error but takes no context.Context"
	return nil
}

// Close tears the client down; lifecycle methods are exempt.
func (c *JobClient) Close() error { return nil }

// Dials is an accessor: no error result, no context required.
func (c *JobClient) Dials() int { return 0 }

// misplaced passes the context late: flagged wherever it appears.
func misplaced(id int, ctx context.Context) error { // want "misplaced passes context.Context as parameter 2"
	return ctx.Err()
}

// session is not a boundary type (no Server/Client suffix): its methods
// may use internally managed contexts.
type session struct{ n int }

func (s *session) Advance() error { return nil }
