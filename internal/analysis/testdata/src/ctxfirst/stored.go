package ctxfirst

import "context"

// watcher stores a request context: flagged.
type watcher struct {
	id  int
	ctx context.Context // want "struct stores a context.Context"
}

// Context is a local type that happens to share the name; storing it is
// fine — the check is type-based, not name-based (cf. blacs.Context).
type Context struct{ grid int }

type sessionState struct {
	ctx *Context // a process-grid context, not a cancellation context
}

// server shows the sanctioned lifetime-context pattern behind the hatch.
type server struct {
	//lint:allow ctxfirst server lifetime context, the net/http BaseContext pattern
	baseCtx context.Context
	cancel  context.CancelFunc
}

func use(w watcher, s sessionState, sv server) (int, int) {
	_ = sv
	return w.id, s.ctx.grid
}
