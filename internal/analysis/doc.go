// Package analysis is the repo's static-analysis framework: a minimal,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// surface (Analyzer, Pass, Diagnostic) plus a package loader built on
// `go list -export` and the standard library's gc export-data importer.
//
// The toolchain this repo builds in carries no external modules, so the
// x/tools analysis framework itself is not importable; the subset
// reimplemented here is exactly what the four reshapelint analyzers and
// their analysistest-style fixture tests need:
//
//   - Analyzer/Pass/Diagnostic mirroring go/analysis semantics: one
//     analyzer inspects one type-checked package at a time and reports
//     position-anchored diagnostics.
//   - A loader (Load) that shells out to `go list -export -json -deps`,
//     parses each target package from source, and type-checks it against
//     the export data the go command already built for its dependencies —
//     so analyzers see the same types the compiler does, with no
//     reimplemented import resolution.
//   - An escape hatch: `//lint:allow <analyzer> <justification>` on (or
//     immediately above) the offending line suppresses that analyzer
//     there. The justification is mandatory — an allow directive without
//     one is itself a diagnostic — so every sanctioned exception is
//     documented where it lives.
//
// The four analyzers (subpackages detcore, journalfirst, durerr and
// ctxfirst) mechanically enforce the invariants the scheduler's
// correctness argument rests on; see DESIGN.md "Enforced invariants" and
// cmd/reshapelint for the multichecker that runs them in CI.
package analysis
