package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const allowSrc = `package p

func a() {
	x := 1 //lint:allow det same-line directive with a reason
	_ = x
}

func b() {
	//lint:allow det directive above the statement
	y := 2
	_ = y
}

func c() {
	//lint:allow det
	z := 3
	_ = z
}

func d() {
	//lint:allow other a different analyzer's allowance
	w := 4
	_ = w
}
`

// TestFilterAllowed covers the escape hatch's four behaviors: same-line
// suppression, line-above suppression, the mandatory justification, and
// analyzer-name matching.
func TestFilterAllowed(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", allowSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	lineStart := func(line int) token.Pos {
		return token.Pos(fset.File(f.Pos()).LineStart(line))
	}
	diags := []Diagnostic{
		{Pos: lineStart(4), Message: "on the directive line"},   // suppressed (same line)
		{Pos: lineStart(10), Message: "below the directive"},    // suppressed (line above)
		{Pos: lineStart(16), Message: "below a bare directive"}, // kept: no justification
		{Pos: lineStart(22), Message: "other analyzer's line"},  // kept: name mismatch
	}
	got := filterAllowed("det", fset, []*ast.File{f}, diags)
	var msgs []string
	for _, d := range got {
		msgs = append(msgs, d.Message)
	}
	joined := strings.Join(msgs, " | ")
	for _, want := range []string{
		"needs a justification",
		"below a bare directive",
		"other analyzer's line",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing expected diagnostic %q in %q", want, joined)
		}
	}
	for _, gone := range []string{"on the directive line", "below the directive"} {
		if strings.Contains(joined, gone) {
			t.Errorf("diagnostic %q should have been suppressed; got %q", gone, joined)
		}
	}
}

// TestAppliesTo pins the subpath semantics of analyzer scopes.
func TestAppliesTo(t *testing.T) {
	a := &Analyzer{Scope: []string{"repro/internal/scheduler"}}
	cases := map[string]bool{
		"repro/internal/scheduler":         true,
		"repro/internal/scheduler/arbiter": true,
		"repro/internal/schedulerx":        false,
		"repro/internal/rpc":               false,
	}
	for path, want := range cases {
		if got := a.AppliesTo(path); got != want {
			t.Errorf("AppliesTo(%q) = %v, want %v", path, got, want)
		}
	}
	all := &Analyzer{}
	if !all.AppliesTo("anything/at/all") {
		t.Error("empty scope must match every package")
	}
}
