package ctxfirst_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctxfirst"
)

// TestCtxfirst pins the context discipline: late context parameters,
// context-less error-returning methods on boundary (Server/Client) types,
// and stored context.Context fields are flagged; lifecycle methods
// (Close), accessors, non-boundary types, same-named non-context types
// (the blacs.Context shape) and the justified lifetime-context hatch are
// not.
func TestCtxfirst(t *testing.T) {
	analysistest.Run(t, analysistest.TestdataDir(), ctxfirst.Analyzer, "ctxfirst")
}
