// Package ctxfirst enforces the context discipline of the scheduler's
// capability surface (resize.Scheduler and the transports implementing
// it): since rpc/v2, every blocking or remote-capable operation takes a
// context.Context so in-process and wire schedulers stay interchangeable
// and cancellable. Three rules:
//
//  1. A context.Context parameter must be the first parameter — anywhere
//     in the scoped packages, exported or not (the uniform position is
//     what lets call sites and transports stay mechanical).
//  2. Exported error-returning methods on boundary types (names ending in
//     Server or Client) must take a context: a new capability method
//     without one cannot be transported or cancelled. Lifecycle methods
//     (Close, Err, Shutdown) are exempt — they tear contexts down.
//  3. Contexts are request-scoped values, not struct state: a struct
//     field of type context.Context is flagged. The two sanctioned
//     lifetime contexts (rpc.Server.baseCtx and the per-connection
//     v2conn.ctx, the net/http BaseContext pattern) carry justified
//     //lint:allow directives.
package ctxfirst

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Scope covers the capability interface and every implementation of it.
var Scope = []string{
	"repro/internal/scheduler",
	"repro/internal/rpc",
	"repro/internal/reshape",
	"repro/internal/resize",
	"repro/pkg/reshape",
}

// exemptMethods are boundary-type methods that legitimately outlive or
// tear down request contexts.
var exemptMethods = map[string]bool{"Close": true, "Err": true, "Shutdown": true}

// Analyzer is the context-discipline check.
var Analyzer = &analysis.Analyzer{
	Name:  "ctxfirst",
	Doc:   "context.Context first parameter on the capability surface; contexts are passed, never stored",
	Scope: Scope,
	Run:   run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				checkSignature(pass, d)
			case *ast.StructType:
				checkStoredContext(pass, d)
			}
			return true
		})
	}
	return nil
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// checkSignature enforces ctx-position on every function and
// ctx-presence on boundary methods.
func checkSignature(pass *analysis.Pass, d *ast.FuncDecl) {
	obj, ok := pass.TypesInfo.Defs[d.Name].(*types.Func)
	if !ok {
		return
	}
	sig := obj.Type().(*types.Signature)
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContext(params.At(i).Type()) && i != 0 {
			pass.Reportf(d.Name.Pos(), "%s passes context.Context as parameter %d; context.Context must be the first parameter", d.Name.Name, i+1)
			break
		}
	}

	// Boundary rule: exported, error-returning methods on *Server/*Client
	// types must take a context first.
	recv := sig.Recv()
	if recv == nil || !d.Name.IsExported() || exemptMethods[d.Name.Name] {
		return
	}
	rt := recv.Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return
	}
	tname := named.Obj().Name()
	if !strings.HasSuffix(tname, "Server") && !strings.HasSuffix(tname, "Client") {
		return
	}
	res := sig.Results()
	if res.Len() == 0 || !isErrorType(res.At(res.Len()-1).Type()) {
		return
	}
	if params.Len() == 0 || !isContext(params.At(0).Type()) {
		pass.Reportf(d.Name.Pos(), "%s.%s returns an error but takes no context.Context; capability methods on %s must accept a context so remote transports can cancel them", tname, d.Name.Name, tname)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// checkStoredContext flags struct fields of type context.Context.
func checkStoredContext(pass *analysis.Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil || !isContext(t) {
			continue
		}
		pass.Reportf(field.Pos(), "struct stores a context.Context; contexts are request-scoped — pass them as the first argument instead")
	}
}
