// Package detcore enforces the determinism contract of the scheduler's
// replayable core: the packages whose behavior must be a pure function of
// their journaled inputs (PR 1's event core, the WAL replay path, the
// virtual-time simulator and the redistribution planner) may not read
// wall clocks, draw from global randomness, leak map iteration order into
// ordered outputs, or spawn goroutines on the replay path.
//
// One stray time.Now() in a policy, or one map-range feeding an event
// append, silently breaks bit-identical WAL replay (TestReplayW1BitIdentical)
// — the property the whole durable control plane rests on. The Server's
// wall-clock epoch is the single sanctioned nondeterminism boundary and
// is marked with justified //lint:allow detcore directives.
package detcore

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Scope is the set of determinism-critical packages the multichecker
// applies detcore to. server.go and watch.go sit inside the scheduler
// package and are therefore covered: their real-time duties are the
// documented allowances, not silent exemptions.
var Scope = []string{
	"repro/internal/scheduler",
	// Subsumed by the prefix above, listed to record that the global
	// rebalancer's plan computation is deliberately in scope: a planner
	// that read the wall clock or ranged a map would break replay.
	"repro/internal/scheduler/rebalance",
	// Likewise subsumed: fair-share arbitration (tenant shares, deficit
	// picks) replays from the journal, so PickStart/Decide must be pure
	// functions of the snapshot — sorted tenant order, no clocks, no maps
	// ranged into decisions.
	"repro/internal/scheduler/fairshare",
	"repro/internal/durability",
	"repro/internal/simcluster",
	"repro/internal/redistrib",
}

// forbiddenClock lists wall-clock reads. Timers/tickers are not listed:
// they schedule real-time work (e.g. the WAL background sync loop) but do
// not put a timestamp into replayable state.
var forbiddenClock = map[string]bool{
	"time.Now":   true,
	"time.Since": true,
	"time.Until": true,
}

// allowedRand lists the math/rand constructors that produce explicitly
// seeded, locally owned generators; every other package-level call in
// math/rand and math/rand/v2 draws from the global (unseeded or
// process-random) source.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

// ReplayRoots names the functions that anchor the no-goroutine check:
// every function statically reachable from one of these within its own
// package must not contain a go statement. "Type.Method" matches a
// method, a bare name matches a package-level function.
var ReplayRoots = []string{
	"Core.Apply",       // scheduler: the replay entry point
	"Recovery.Restore", // durability: drives Core.Apply over the journal tail
	"Store.Append",     // durability: runs inside the journal hook, under the scheduler lock
}

// Analyzer is the detcore invariant suite.
var Analyzer = &analysis.Analyzer{
	Name:  "detcore",
	Doc:   "forbid wall clocks, global randomness, map-order leaks and replay-path goroutines in determinism-critical packages",
	Scope: Scope,
	Run:   run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		checkCalls(pass, f)
		checkMapRanges(pass, f)
	}
	checkReplayGoroutines(pass)
	return nil
}

// calleeName resolves a call's callee to (package path, name) for
// package-level functions, ("", "") otherwise.
func calleeName(pass *analysis.Pass, call *ast.CallExpr) (pkgPath, name string) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", ""
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if ok && fn.Pkg() != nil && fn.Type().(*types.Signature).Recv() == nil {
		return fn.Pkg().Path(), fn.Name()
	}
	return "", ""
}

// checkCalls flags wall-clock reads and global-randomness draws.
func checkCalls(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name := calleeName(pass, call)
		if pkg == "" {
			return true
		}
		full := pkg + "." + name
		if forbiddenClock[full] {
			pass.Reportf(call.Pos(), "%s reads the wall clock in a determinism-critical package; take the timestamp as an argument or move the read to the Server boundary", full)
		}
		if (pkg == "math/rand" || pkg == "math/rand/v2") && !allowedRand[name] {
			pass.Reportf(call.Pos(), "%s draws from the global random source; use an explicitly seeded rand.New(rand.NewSource(seed)) owned by the caller", full)
		}
		return true
	})
}

// checkMapRanges flags range-over-map loops whose iteration order can
// leak into an ordered output: an append to a slice declared outside the
// loop (unless the slice is sorted afterwards in the same block chain),
// or a send to a channel that does not depend on the iteration variables
// (a per-key channel is a per-key stream; a shared channel observes map
// order).
func checkMapRanges(pass *analysis.Pass, f *ast.File) {
	// Walk function bodies so the post-loop statements are in reach for
	// the sorted-afterwards check.
	ast.Inspect(f, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body != nil {
			checkMapRangesIn(pass, body)
		}
		return true
	})
}

// checkMapRangesIn scans one function body (non-recursively into nested
// function literals, which Inspect hands back to checkMapRanges).
func checkMapRangesIn(pass *analysis.Pass, body *ast.BlockStmt) {
	var walkBlock func(stmts []ast.Stmt)
	walkBlock = func(stmts []ast.Stmt) {
		for i, st := range stmts {
			ast.Inspect(st, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false // checked separately with its own block chain
				}
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if t := pass.TypesInfo.TypeOf(rng.X); t == nil || !isMap(t) {
					return true
				}
				checkOneMapRange(pass, rng, stmts[i+1:])
				return true
			})
		}
	}
	walkBlock(body.List)
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkOneMapRange inspects one map-range loop; rest is the statement
// tail following the loop's outermost enclosing statement, searched for
// an intervening sort of any appended-to slice.
func checkOneMapRange(pass *analysis.Pass, rng *ast.RangeStmt, rest []ast.Stmt) {
	iterVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			iterVars[pass.TypesInfo.Defs[id]] = true
		}
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(st.Lhs) {
					continue
				}
				dest, ok := ast.Unparen(st.Lhs[i]).(*ast.Ident)
				if !ok {
					// Appending through a selector (x.field): outer by definition.
					if sel, ok := ast.Unparen(st.Lhs[i]).(*ast.SelectorExpr); ok {
						pass.Reportf(st.Pos(), "append to %s inside range over a map leaks map iteration order into an ordered output; collect and sort, or iterate a sorted key slice", exprString(sel))
					}
					continue
				}
				obj := pass.TypesInfo.Uses[dest]
				if obj == nil || definedWithin(obj, rng) {
					continue
				}
				if sortedAfter(pass, obj, rest) {
					continue // the collect-then-sort idiom: order is re-established
				}
				pass.Reportf(st.Pos(), "append to %s inside range over a map leaks map iteration order into an ordered output; sort %s afterwards or iterate a sorted key slice", dest.Name, dest.Name)
			}
		case *ast.SendStmt:
			if usesAny(pass, st.Chan, iterVars) {
				return true // per-key channel: each receiver sees a deterministic stream
			}
			pass.Reportf(st.Pos(), "send on a shared channel inside range over a map publishes values in map iteration order; iterate a sorted key slice")
		}
		return true
	})
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// definedWithin reports whether obj's declaration lies inside the loop.
func definedWithin(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() >= rng.Pos() && obj.Pos() < rng.End()
}

// usesAny reports whether expr references any of the given objects.
func usesAny(pass *analysis.Pass, expr ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[pass.TypesInfo.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

// sortedAfter reports whether any statement in the tail passes obj to a
// sort-like call (sort.*, slices.Sort*, or any function whose name
// contains "Sort" or "sort").
func sortedAfter(pass *analysis.Pass, obj types.Object, rest []ast.Stmt) bool {
	for _, st := range rest {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sortLike := false
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				sortLike = strings.Contains(strings.ToLower(fun.Name), "sort")
			case *ast.SelectorExpr:
				sortLike = strings.Contains(strings.ToLower(fun.Sel.Name), "sort")
				if x, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
					if pn, ok := pass.TypesInfo.Uses[x].(*types.PkgName); ok {
						p := pn.Imported().Path()
						sortLike = sortLike || p == "sort" || p == "slices"
					}
				}
			}
			if !sortLike {
				return true
			}
			for _, arg := range call.Args {
				if usesAny(pass, arg, map[types.Object]bool{obj: true}) {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// checkReplayGoroutines builds the package's static call graph and flags
// go statements in functions reachable from a ReplayRoots entry. Calls
// through interfaces or function values are not resolvable statically and
// are therefore not followed — the check is an under-approximation, and
// the dynamic cross-check is the -race CI matrix over the same packages.
func checkReplayGoroutines(pass *analysis.Pass) {
	decls := map[string]*ast.FuncDecl{} // "Type.Method" or "Func" -> decl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				decls[funcKey(fd)] = fd
			}
		}
	}
	var roots []string
	for _, r := range ReplayRoots {
		if _, ok := decls[r]; ok {
			roots = append(roots, r)
		}
	}
	if len(roots) == 0 {
		return
	}

	reach := map[string]bool{}
	var visit func(key, root string)
	visit = func(key, root string) {
		if reach[key] {
			return
		}
		reach[key] = true
		fd := decls[key]
		if fd == nil || fd.Body == nil {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(st.Pos(), "goroutine spawned on the journal replay path (reachable from %s); replay must be single-threaded and deterministic", root)
			case *ast.CallExpr:
				if key2 := staticCalleeKey(pass, st); key2 != "" {
					if _, ok := decls[key2]; ok {
						visit(key2, root)
					}
				}
			}
			return true
		})
	}
	for _, r := range roots {
		visit(r, r)
	}
}

// funcKey names a declaration "Recv.Name" or "Name".
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if se, ok := t.(*ast.StarExpr); ok {
		t = se.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	// Generic receivers (IndexExpr) do not occur in the scoped packages.
	return fd.Name.Name
}

// staticCalleeKey resolves a call to a same-package function or method
// declaration key, or "" when the callee is dynamic or external.
func staticCalleeKey(pass *analysis.Pass, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok && fn.Pkg() == pass.Pkg {
			return fn.Name()
		}
	case *ast.SelectorExpr:
		fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() != pass.Pkg {
			return ""
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil || sig.Recv() == nil {
			return fn.Name()
		}
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return ""
}

// exprString renders a selector chain for a message.
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	}
	return "expression"
}
