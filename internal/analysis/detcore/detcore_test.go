package detcore_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detcore"
)

// TestDetcore pins every check and its false-positive guards: clock reads
// (with the justified-allow and missing-justification directive cases),
// global randomness vs seeded generators, map-order leaks vs the
// collect-then-sort idiom and per-key channel sends, and replay-path
// goroutine reachability. Neutering any check leaves its fixture wants
// unmatched and fails this test.
func TestDetcore(t *testing.T) {
	analysistest.Run(t, analysistest.TestdataDir(), detcore.Analyzer, "detcore")
}

// TestScope pins the determinism-critical package set: a scope regression
// (dropping the durability or simcluster packages, say) would silently
// stop enforcing replay determinism where it matters most.
func TestScope(t *testing.T) {
	for _, p := range []string{
		"repro/internal/scheduler",
		"repro/internal/scheduler/arbiter",
		"repro/internal/durability",
		"repro/internal/simcluster",
		"repro/internal/redistrib",
	} {
		if !detcore.Analyzer.AppliesTo(p) {
			t.Errorf("detcore must apply to %s", p)
		}
	}
	for _, p := range []string{"repro/internal/rpc", "repro/internal/resize", "repro/pkg/reshape"} {
		if detcore.Analyzer.AppliesTo(p) {
			t.Errorf("detcore must not apply to %s (real-time boundary)", p)
		}
	}
}
