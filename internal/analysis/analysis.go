package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one invariant check. It mirrors the x/tools
// go/analysis Analyzer: a name (used in diagnostics and in //lint:allow
// directives), documentation, and a Run function invoked once per
// type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in output and in allow directives. It
	// must be a valid identifier.
	Name string

	// Doc is the analyzer's documentation: first line a one-sentence
	// summary, the rest the full invariant and its escape-hatch policy.
	Doc string

	// Scope lists the import-path prefixes the multichecker applies this
	// analyzer to (a package matches if its path equals an entry or is a
	// subpath of one). Empty means every package. The analysistest runner
	// ignores Scope: fixtures exercise the checks directly.
	Scope []string

	// Run inspects one package and reports diagnostics through the pass.
	Run func(*Pass) error
}

// AppliesTo reports whether the analyzer's scope covers the package path.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	for _, s := range a.Scope {
		if pkgPath == s || (len(pkgPath) > len(s) && pkgPath[:len(s)] == s && pkgPath[len(s)] == '/') {
			return true
		}
	}
	return false
}

// Pass carries one analyzer run over one package: the syntax trees, the
// type information the checker produced for them, and the report sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// RunAnalyzer executes one analyzer over one loaded package and returns
// its diagnostics with //lint:allow suppression already applied, sorted
// by position. Unjustified allow directives naming this analyzer are
// reported as diagnostics themselves: an exception without a reason is a
// violation of the escape-hatch policy, not an exception.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	diags := filterAllowed(a.Name, pkg.Fset, pkg.Files, pass.diags)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
