package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked target package.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -json -deps` in dir over the patterns and
// decodes the package stream. Export data is built (or fetched from the
// build cache) as a side effect, which is what makes type-checking the
// targets against compiler-identical dependency types possible without
// importing x/tools.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from the export-data files `go list
// -export` reported, through the standard library's gc importer — the
// same reader the compiler toolchain uses.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// newInfo allocates the types.Info maps analyzers consume.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Load lists the pattern-matched packages relative to dir, parses each
// target from source and type-checks it against the export data of its
// dependencies. Test files are not analyzed (they do not feed production
// determinism or durability), matching `go vet`'s default unit.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)

	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: parse %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: typecheck %s: %w", p.ImportPath, err)
		}
		out = append(out, &Package{Path: p.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info})
	}
	return out, nil
}

// LoadDir parses and type-checks a single directory of Go files as one
// package (the analysistest fixture path: fixture dirs live under
// testdata/, which the go tool refuses to list). deps are the import
// paths the fixture files may import; their export data is resolved with
// a `go list -export` run from dir. pkgPath names the checked package.
func LoadDir(dir, pkgPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: read fixture dir: %w", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	imports := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse fixture %s: %w", e.Name(), err)
		}
		files = append(files, f)
		for _, im := range f.Imports {
			imports[im.Path.Value[1:len(im.Path.Value)-1]] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	exports := make(map[string]string)
	if len(imports) > 0 {
		patterns := make([]string, 0, len(imports))
		for p := range imports {
			patterns = append(patterns, p)
		}
		listed, err := goList(dir, patterns)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	info := newInfo()
	conf := types.Config{Importer: exportImporter(fset, exports)}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck fixture %s: %w", pkgPath, err)
	}
	return &Package{Path: pkgPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
