// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against `// want` expectations, mirroring the x/tools
// package of the same name on this repo's dependency-free framework.
//
// A fixture is a directory under <testdata>/src/<name>/ holding one Go
// package. Lines that must trigger a diagnostic carry a trailing comment
//
//	// want "regexp"
//
// (several quoted regexps for several diagnostics on one line). The run
// fails if any expectation goes unmatched or any unexpected diagnostic
// appears — so neutering an analyzer makes its fixture test fail, which
// is exactly the property the CI suite leans on.
package analysistest

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// expectation is one want-regexp on one line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// parseWants extracts expectations from a file's comments.
func parseWants(t *testing.T, fset *token.FileSet, f *ast.File) []*expectation {
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			raw, ok := strings.CutPrefix(c.Text, "//")
			if !ok {
				continue
			}
			raw = strings.TrimSpace(raw)
			text, ok := strings.CutPrefix(raw, "want ")
			if !ok {
				// A want may trail another directive on the same line,
				// introduced by a nested "//" (e.g. after lint:allow).
				i := strings.Index(raw, "// want ")
				if i < 0 {
					continue
				}
				text = raw[i+len("// want "):]
			}
			pos := fset.Position(c.Pos())
			ms := wantRE.FindAllStringSubmatch(text, -1)
			if len(ms) == 0 {
				t.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				continue
			}
			for _, m := range ms {
				pat := strings.ReplaceAll(m[1], `\"`, `"`)
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					continue
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
			}
		}
	}
	return out
}

// Run loads the fixture package at <testdata>/src/<pkg> and checks the
// analyzer's (allow-filtered) diagnostics against its want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	loaded, err := analysis.LoadDir(dir, pkg)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkg, err)
	}
	diags, err := analysis.RunAnalyzer(a, loaded)
	if err != nil {
		t.Fatalf("running %s on fixture %s: %v", a.Name, pkg, err)
	}

	var wants []*expectation
	for _, f := range loaded.Files {
		wants = append(wants, parseWants(t, loaded.Fset, f)...)
	}

	for _, d := range diags {
		p := loaded.Fset.Position(d.Pos)
		if !claim(wants, p.Filename, p.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", p.Filename, p.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// claim marks the first unmatched expectation covering the diagnostic.
func claim(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// TestdataDir returns the conventional shared fixture root,
// internal/analysis/testdata, relative to an analyzer package's own test
// (one directory up from the analyzer).
func TestdataDir() string {
	return filepath.Join("..", "testdata")
}
