package perfmodel

import (
	"math"
	"sort"
)

// This file is the learned half of the performance model: where IterTime
// predicts iteration times from first principles (flop rates, bandwidths),
// FitSpeedup learns a per-job speedup curve from the iteration times the
// Performance Profiler actually observed. The global rebalancer (package
// internal/scheduler/rebalance) fits one curve per running job at every
// planning tick and uses it to score candidate allocations the job has
// never run on — replacing the published policy's one-step probing with
// model-guided jumps.

// SpeedupObs is one observed sample for the curve fitter: the job ran on
// Procs processors and averaged Seconds per outer iteration there. The
// rebalancer derives these from Profile.Visits (one sample per distinct
// processor count, most recent visit wins).
type SpeedupObs struct {
	Procs   int
	Seconds float64
}

// Curve is a fitted iteration-time model in the Amdahl/Downey family,
//
//	T(p) = Serial + Parallel/p + Contention*p
//
// with all three coefficients non-negative: Serial is the Amdahl serial
// fraction's absolute cost, Parallel the perfectly divisible work, and
// Contention the linear overhead term that makes very large allocations
// slower (Downey's curves flatten and turn; perfmodel.Params carries the
// same term for the synthetic model). Non-negativity makes the predicted
// time strictly positive and the implied speedup monotone non-decreasing
// up to the knee — properties the planner's water-filling relies on
// (pinned by the property tests in speedup_test.go).
type Curve struct {
	Serial     float64
	Parallel   float64
	Contention float64
	// Points is the number of distinct processor counts the fit used.
	// A 1-point "fit" is a flat curve (Serial only); 2 points fit
	// Serial+Parallel; 3 or more fit all terms.
	Points int
}

// Valid reports whether the curve came from at least one observation.
func (c Curve) Valid() bool { return c.Points > 0 }

// Eval predicts the iteration time on p processors. It returns false for
// p < 1 or an unfitted curve; predictions are always finite and positive
// for a curve built by FitSpeedup.
func (c Curve) Eval(p int) (float64, bool) {
	if p < 1 || !c.Valid() {
		return 0, false
	}
	return c.Serial + c.Parallel/float64(p) + c.Contention*float64(p), true
}

// Knee returns the processor count beyond which the fitted curve predicts
// no further improvement: the minimizer of T(p). With no contention term
// the curve improves forever and Knee returns MaxInt; an unfitted curve
// returns 0.
func (c Curve) Knee() int {
	if !c.Valid() {
		return 0
	}
	if c.Contention <= 0 || c.Parallel <= 0 {
		if c.Parallel <= 0 {
			return 1 // flat (or contention-only) curve: more procs never help
		}
		return math.MaxInt
	}
	// T'(p) = -Parallel/p² + Contention = 0  ⇒  p* = sqrt(Parallel/Contention).
	// T is integer-evaluated, so compare the two integer neighbors.
	star := math.Sqrt(c.Parallel / c.Contention)
	lo := int(star)
	if lo < 1 {
		return 1
	}
	tl, _ := c.Eval(lo)
	th, _ := c.Eval(lo + 1)
	if th < tl {
		return lo + 1
	}
	return lo
}

// FitSpeedup fits a Curve to the observed samples by least squares on the
// basis {1, 1/p, p}, restricted to non-negative coefficients: every subset
// of the basis is solved in closed form and the feasible solution with the
// smallest residual wins (exact non-negative least squares for 3 terms).
// Duplicate processor counts are averaged first. The fit is deterministic:
// identical observations produce a bit-identical curve.
//
// Degenerate inputs degrade gracefully rather than failing: a single
// distinct processor count yields a flat curve at the observed time, two
// counts fit the Amdahl pair {1, 1/p} only. Samples with Procs < 1,
// non-positive, NaN or infinite Seconds are dropped; with nothing left the
// zero (invalid) Curve is returned.
func FitSpeedup(obs []SpeedupObs) Curve {
	// Aggregate to one mean sample per distinct processor count.
	sum := make(map[int]float64)
	cnt := make(map[int]int)
	for _, o := range obs {
		if o.Procs < 1 || o.Seconds <= 0 || math.IsNaN(o.Seconds) || math.IsInf(o.Seconds, 0) {
			continue
		}
		sum[o.Procs] += o.Seconds
		cnt[o.Procs]++
	}
	procs := make([]int, 0, len(sum))
	for p := range sum {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	if len(procs) == 0 {
		return Curve{}
	}
	xs := make([]float64, len(procs))
	ys := make([]float64, len(procs))
	for i, p := range procs {
		xs[i] = float64(p)
		ys[i] = sum[p] / float64(cnt[p])
	}

	if len(procs) == 1 {
		return Curve{Serial: ys[0], Points: 1}
	}

	// basis returns the regressor value of term t at processor count x.
	basis := func(t int, x float64) float64 {
		switch t {
		case 0:
			return 1
		case 1:
			return 1 / x
		default:
			return x
		}
	}
	// Candidate term subsets, richest first. With only two distinct
	// counts the three-term system is underdetermined, so restrict to
	// pairs and singletons.
	var subsets [][]int
	if len(procs) >= 3 {
		subsets = [][]int{{0, 1, 2}, {0, 1}, {1, 2}, {0, 2}, {0}, {1}, {2}}
	} else {
		subsets = [][]int{{0, 1}, {1, 2}, {0, 2}, {0}, {1}, {2}}
	}

	bestRSS := math.Inf(1)
	var best []float64 // coefficient per basis term, len 3
	for _, terms := range subsets {
		coef, ok := solveLS(terms, xs, ys, basis)
		if !ok {
			continue
		}
		feasible := true
		for _, c := range coef {
			if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
				feasible = false
				break
			}
		}
		if !feasible {
			continue
		}
		full := make([]float64, 3)
		for i, t := range terms {
			full[t] = coef[i]
		}
		rss := 0.0
		for i := range xs {
			pred := full[0] + full[1]/xs[i] + full[2]*xs[i]
			d := ys[i] - pred
			rss += d * d
		}
		if rss < bestRSS-1e-12 {
			bestRSS = rss
			best = full
		}
	}
	if best == nil {
		// Every subset infeasible (cannot happen for positive ys: the
		// constant-only fit is always non-negative) — flat fallback.
		mean := 0.0
		for _, y := range ys {
			mean += y
		}
		return Curve{Serial: mean / float64(len(ys)), Points: len(procs)}
	}
	return Curve{Serial: best[0], Parallel: best[1], Contention: best[2], Points: len(procs)}
}

// solveLS solves the normal equations of an ordinary least-squares fit on
// the selected basis terms by Gaussian elimination with partial pivoting.
// ok is false when the system is singular.
func solveLS(terms []int, xs, ys []float64, basis func(t int, x float64) float64) ([]float64, bool) {
	k := len(terms)
	// Build A^T A (k×k) and A^T y (k).
	m := make([][]float64, k)
	rhs := make([]float64, k)
	for i := 0; i < k; i++ {
		m[i] = make([]float64, k)
	}
	for s := range xs {
		for i := 0; i < k; i++ {
			bi := basis(terms[i], xs[s])
			rhs[i] += bi * ys[s]
			for j := 0; j < k; j++ {
				m[i][j] += bi * basis(terms[j], xs[s])
			}
		}
	}
	// Gaussian elimination.
	for col := 0; col < k; col++ {
		pivot := col
		for r := col + 1; r < k; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, false
		}
		m[col], m[pivot] = m[pivot], m[col]
		rhs[col], rhs[pivot] = rhs[pivot], rhs[col]
		for r := col + 1; r < k; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c < k; c++ {
				m[r][c] -= f * m[col][c]
			}
			rhs[r] -= f * rhs[col]
		}
	}
	out := make([]float64, k)
	for i := k - 1; i >= 0; i-- {
		v := rhs[i]
		for j := i + 1; j < k; j++ {
			v -= m[i][j] * out[j]
		}
		out[i] = v / m[i][i]
	}
	return out, true
}
