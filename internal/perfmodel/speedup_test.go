package perfmodel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/grid"
)

// genObs builds a randomized observation set that looks like a Profile's
// visit history: a handful of distinct processor counts with iteration
// times drawn from a noisy Amdahl/Downey ground truth.
func genObs(rng *rand.Rand) []SpeedupObs {
	serial := rng.Float64() * 5
	parallel := 10 + rng.Float64()*1000
	contention := rng.Float64() * 0.5
	n := 1 + rng.Intn(6)
	var obs []SpeedupObs
	for i := 0; i < n; i++ {
		p := 1 + rng.Intn(64)
		truth := serial + parallel/float64(p) + contention*float64(p)
		// Up to three repeated samples per count, ±10% noise.
		for k := 0; k <= rng.Intn(3); k++ {
			obs = append(obs, SpeedupObs{Procs: p, Seconds: truth * (0.9 + 0.2*rng.Float64())})
		}
	}
	return obs
}

// TestFitSpeedupProperties is the fitter's property suite: over many
// randomized observation sets the fitted curve must (1) predict finite,
// strictly positive, non-NaN times everywhere, and (2) imply a speedup
// that is monotone non-decreasing in processors up to the fitted knee —
// i.e. predicted iteration time never increases before the knee.
func TestFitSpeedupProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		obs := genObs(rng)
		c := FitSpeedup(obs)
		if !c.Valid() {
			t.Fatalf("trial %d: no curve from %d observations", trial, len(obs))
		}
		if c.Serial < 0 || c.Parallel < 0 || c.Contention < 0 {
			t.Fatalf("trial %d: negative coefficient %+v", trial, c)
		}
		knee := c.Knee()
		if knee < 1 {
			t.Fatalf("trial %d: knee %d < 1", trial, knee)
		}
		maxP := 256
		if knee < maxP {
			maxP = knee
		}
		prev := math.Inf(1)
		for p := 1; p <= 256; p++ {
			sec, ok := c.Eval(p)
			if !ok {
				t.Fatalf("trial %d: Eval(%d) not ok on valid curve", trial, p)
			}
			if sec <= 0 || math.IsNaN(sec) || math.IsInf(sec, 0) {
				t.Fatalf("trial %d: Eval(%d) = %v, want finite positive", trial, p, sec)
			}
			if p <= maxP {
				if sec > prev+1e-9 {
					t.Fatalf("trial %d: time increased before knee %d: T(%d)=%v > T(%d)=%v (curve %+v)",
						trial, knee, p, sec, p-1, prev, c)
				}
				prev = sec
			}
		}
	}
}

// TestFitSpeedupSingleVisit pins the degenerate case: a job measured on
// exactly one configuration gets a flat curve at the observed time — never
// a wild extrapolation, never NaN.
func TestFitSpeedupSingleVisit(t *testing.T) {
	c := FitSpeedup([]SpeedupObs{{Procs: 8, Seconds: 3.5}, {Procs: 8, Seconds: 4.5}})
	if !c.Valid() || c.Points != 1 {
		t.Fatalf("want a 1-point curve, got %+v", c)
	}
	for _, p := range []int{1, 8, 1024} {
		sec, ok := c.Eval(p)
		if !ok || sec != 4.0 {
			t.Fatalf("Eval(%d) = %v,%v, want flat mean 4.0", p, sec, ok)
		}
	}
	if knee := c.Knee(); knee != 1 {
		t.Fatalf("flat curve knee = %d, want 1 (more processors never help)", knee)
	}
}

// TestFitSpeedupRejectsGarbage pins input hygiene: non-positive counts and
// times, NaNs and infinities are dropped rather than poisoning the fit.
func TestFitSpeedupRejectsGarbage(t *testing.T) {
	c := FitSpeedup([]SpeedupObs{
		{Procs: 0, Seconds: 1},
		{Procs: -4, Seconds: 1},
		{Procs: 4, Seconds: 0},
		{Procs: 4, Seconds: -2},
		{Procs: 4, Seconds: math.NaN()},
		{Procs: 4, Seconds: math.Inf(1)},
	})
	if c.Valid() {
		t.Fatalf("curve fitted from pure garbage: %+v", c)
	}
	if _, ok := c.Eval(4); ok {
		t.Fatal("invalid curve must not evaluate")
	}
}

// TestFitSpeedupRecoversAmdahl checks the fit on clean Amdahl data: with
// zero noise the two-parameter ground truth is recovered almost exactly
// and predictions interpolate unvisited counts.
func TestFitSpeedupRecoversAmdahl(t *testing.T) {
	truth := func(p int) float64 { return 2.0 + 120.0/float64(p) }
	var obs []SpeedupObs
	for _, p := range []int{1, 4, 16, 36} {
		obs = append(obs, SpeedupObs{Procs: p, Seconds: truth(p)})
	}
	c := FitSpeedup(obs)
	for _, p := range []int{2, 8, 25, 64} {
		sec, ok := c.Eval(p)
		if !ok {
			t.Fatalf("Eval(%d) not ok", p)
		}
		if math.Abs(sec-truth(p)) > 1e-6*truth(p) {
			t.Fatalf("Eval(%d) = %v, want %v (curve %+v)", p, sec, truth(p), c)
		}
	}
}

// TestFitSpeedupDeterministic pins bit-identical refits: the rebalancer
// journals only the planning tick and recomputes the plan on replay, so
// the fit must be a pure function of its inputs.
func TestFitSpeedupDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		obs := genObs(rng)
		a, b := FitSpeedup(obs), FitSpeedup(obs)
		if a != b {
			t.Fatalf("trial %d: fit not deterministic: %+v vs %+v", trial, a, b)
		}
	}
}

// TestCurvePredictorContract round-trips a fitted curve through the
// predictor contract shared by simcluster.Predictor and the arbiter's
// Predict hook: (jobID, Topology) -> (seconds, ok).
func TestCurvePredictorContract(t *testing.T) {
	curves := map[int]Curve{
		1: FitSpeedup([]SpeedupObs{{Procs: 4, Seconds: 30}, {Procs: 8, Seconds: 16}, {Procs: 16, Seconds: 9}}),
	}
	predict := func(jobID int, topo grid.Topology) (float64, bool) {
		c, ok := curves[jobID]
		if !ok {
			return 0, false
		}
		return c.Eval(topo.Count())
	}

	if _, ok := predict(2, grid.Topology{Rows: 2, Cols: 2}); ok {
		t.Fatal("unknown job must predict !ok")
	}
	if _, ok := predict(1, grid.Topology{}); ok {
		t.Fatal("empty topology must predict !ok")
	}
	sec44, ok := predict(1, grid.Topology{Rows: 4, Cols: 4})
	if !ok || sec44 <= 0 || math.IsNaN(sec44) {
		t.Fatalf("predict(1, 4x4) = %v,%v", sec44, ok)
	}
	// Shape-blind within a count: the curve sees processor counts, so two
	// topologies with equal Count agree.
	sec28, ok := predict(1, grid.Topology{Rows: 2, Cols: 8})
	if !ok || sec28 != sec44 {
		t.Fatalf("predict must depend only on Count: 2x8=%v vs 4x4=%v", sec28, sec44)
	}
}
