// Package perfmodel provides calibrated performance models of the paper's
// five applications on System X (50 nodes of 2.3 GHz PowerPC 970 over
// Gigabit Ethernet). The virtual-time cluster simulation uses these models
// to regenerate the paper's experiments at full scale (matrices up to
// 24000x24000 on up to 50 processors) in milliseconds of wall clock, and
// the scheduler scale experiments stretch the same models over generated
// mixes of 100k+ jobs.
//
// Calibration: constants were fit to the published measurements — the LU
// trace of Figure 3(a) (129.63 s per iteration for n=12000 on 2 processors,
// sweet spot at 12, degradation at 16), the redistribution overheads of
// Figure 2(b) (~8 s for the first expansion at n=12000), the
// checkpoint-vs-ReSHAPE ratios of Figure 3(b), and the static turnaround
// times of Tables 4 and 5. Absolute times are approximate; the shapes
// (speedup curves, sweet spots, crossovers, cost orderings) are what the
// reproduction preserves.
package perfmodel
