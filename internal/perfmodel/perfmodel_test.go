package perfmodel

import (
	"math"
	"testing"

	"repro/internal/grid"
)

func topo(r, c int) grid.Topology { return grid.Topology{Rows: r, Cols: c} }

func iterTime(t *testing.T, m AppModel, tp grid.Topology) float64 {
	t.Helper()
	v, err := SystemX().IterTime(m, tp)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestLUCalibrationAnchors(t *testing.T) {
	// Figure 3(a): n=12000 on 1x2 takes 129.63 s; the model must land
	// within 15%.
	m := AppModel{App: "lu", N: 12000}
	got := iterTime(t, m, topo(1, 2))
	if got < 110 || got > 150 {
		t.Errorf("LU 12000 on 2 procs = %.1f s, want ~129.63", got)
	}
}

func TestLUSweetSpotAt12For12000(t *testing.T) {
	// The model must reproduce the Figure 3(a) shape: improving through 12
	// processors, degrading at 16.
	m := AppModel{App: "lu", N: 12000}
	t2 := iterTime(t, m, topo(1, 2))
	t4 := iterTime(t, m, topo(2, 2))
	t6 := iterTime(t, m, topo(2, 3))
	t9 := iterTime(t, m, topo(3, 3))
	t12 := iterTime(t, m, topo(3, 4))
	t16 := iterTime(t, m, topo(4, 4))
	seq := []float64{t2, t4, t6, t9, t12}
	for i := 1; i < len(seq); i++ {
		if seq[i] >= seq[i-1] {
			t.Errorf("LU 12000 not improving at step %d: %v", i, seq)
		}
	}
	if t16 <= t12 {
		t.Errorf("LU 12000: 16 procs (%.1f) should be slower than 12 (%.1f)", t16, t12)
	}
}

func TestLUSweetSpotNear30For21000(t *testing.T) {
	// §4.1.1: problem size 21000 has its sweet spot at 30 processors.
	m := AppModel{App: "lu", N: 21000}
	t25 := iterTime(t, m, topo(5, 5))
	t30 := iterTime(t, m, topo(5, 6))
	t36 := iterTime(t, m, topo(6, 6))
	if t30 >= t25 {
		t.Errorf("LU 21000: 30 procs (%.1f) should beat 25 (%.1f)", t30, t25)
	}
	if t36 <= t30 {
		t.Errorf("LU 21000: 36 procs (%.1f) should be slower than 30 (%.1f)", t36, t30)
	}
}

func TestLULargerProblemsBenefitMore(t *testing.T) {
	// Figure 2(a): relative improvement from 16 to 20 procs grows with n.
	small := AppModel{App: "lu", N: 8000}
	large := AppModel{App: "lu", N: 24000}
	relSmall := iterTime(t, small, topo(4, 4)) / iterTime(t, small, topo(4, 5))
	relLarge := iterTime(t, large, topo(4, 4)) / iterTime(t, large, topo(4, 5))
	if relLarge <= relSmall {
		t.Errorf("larger problem should benefit more: small ratio %.3f, large %.3f", relSmall, relLarge)
	}
	if relLarge < 1.05 {
		t.Errorf("24000 should improve noticeably 16->20, got ratio %.3f", relLarge)
	}
}

func TestAspectPenaltyPrefersSquare(t *testing.T) {
	m := AppModel{App: "lu", N: 12000}
	sq := iterTime(t, m, topo(4, 4))
	rect := iterTime(t, m, topo(2, 8))
	if rect <= sq {
		t.Errorf("2x8 (%.1f) should be slower than 4x4 (%.1f)", rect, sq)
	}
}

func TestRedistDecreasesWithProcs(t *testing.T) {
	// Figure 2(b): for a fixed matrix size the redistribution cost falls as
	// the processor count grows.
	p := SystemX()
	m := AppModel{App: "lu", N: 12000}
	early := p.RedistTime(m, topo(1, 2), topo(2, 2))
	late := p.RedistTime(m, topo(3, 4), topo(4, 4))
	if late >= early {
		t.Errorf("redist 12->16 (%.2f) should cost less than 2->4 (%.2f)", late, early)
	}
	// And the first expansion of n=12000 is ~8 s in the paper.
	if early < 4 || early > 14 {
		t.Errorf("redist 2->4 at n=12000 = %.2f s, want ~8", early)
	}
}

func TestRedistIncreasesWithMatrixSize(t *testing.T) {
	p := SystemX()
	small := p.RedistTime(AppModel{App: "lu", N: 8000}, topo(2, 2), topo(2, 4))
	large := p.RedistTime(AppModel{App: "lu", N: 24000}, topo(2, 2), topo(2, 4))
	if large <= small {
		t.Errorf("redist cost must grow with n: %v vs %v", small, large)
	}
}

func TestRedistZeroForSameTopoOrNoData(t *testing.T) {
	p := SystemX()
	if v := p.RedistTime(AppModel{App: "lu", N: 8000}, topo(2, 2), topo(2, 2)); v != 0 {
		t.Errorf("same-topology redist = %v", v)
	}
	if v := p.RedistTime(AppModel{App: "mw", MWWorkSeconds: 10}, topo(2, 1), topo(4, 1)); v != 0 {
		t.Errorf("master-worker redist = %v", v)
	}
}

func TestCheckpointMuchSlowerThanRedist(t *testing.T) {
	// Figure 3(b): checkpointing is 4.5-14.5x more expensive across apps.
	p := SystemX()
	for _, m := range []AppModel{
		{App: "lu", N: 12000},
		{App: "mm", N: 14000},
		{App: "jacobi", N: 8000},
		{App: "fft", N: 8192},
	} {
		r := p.RedistTime(m, topo(2, 2), topo(2, 3))
		c := p.CheckpointTime(m, topo(2, 2), topo(2, 3))
		ratio := c / r
		if ratio < 3 || ratio > 40 {
			t.Errorf("%s: checkpoint/redist ratio %.1f out of plausible range", m.App, ratio)
		}
	}
}

func TestCheckpointZeroForMW(t *testing.T) {
	p := SystemX()
	if v := p.CheckpointTime(AppModel{App: "mw"}, topo(2, 1), topo(4, 1)); v != 0 {
		t.Errorf("MW checkpoint = %v", v)
	}
}

func TestMasterWorkerScalesWithWorkers(t *testing.T) {
	m := AppModel{App: "mw", MWWorkSeconds: 14.7}
	t2 := iterTime(t, m, grid.Row1D(2))
	t4 := iterTime(t, m, grid.Row1D(4))
	if t2 != 14.7 {
		t.Errorf("MW with 1 worker = %v, want 14.7", t2)
	}
	if math.Abs(t4-4.9) > 1e-9 {
		t.Errorf("MW with 3 workers = %v, want 4.9", t4)
	}
	t1 := iterTime(t, m, grid.Row1D(1))
	if t1 != 14.7 {
		t.Errorf("MW solo = %v", t1)
	}
}

func TestJacobiAnchor(t *testing.T) {
	// Table 4: Jacobi(8000) static on 4 procs ran 3266 s for 10 iterations.
	m := AppModel{App: "jacobi", N: 8000}
	got := iterTime(t, m, grid.Row1D(4))
	if got < 250 || got > 420 {
		t.Errorf("Jacobi 8000 on 4 procs = %.1f s/iter, want ~326", got)
	}
	t8 := iterTime(t, m, grid.Row1D(8))
	if t8 >= got {
		t.Error("Jacobi must speed up with more processors")
	}
}

func TestFFTAnchor(t *testing.T) {
	// Table 4: FFT(8192) static on 4 procs ran 840 s for 10 iterations.
	m := AppModel{App: "fft", N: 8192}
	got := iterTime(t, m, grid.Row1D(4))
	if got < 55 || got > 120 {
		t.Errorf("FFT 8192 on 4 procs = %.1f s/iter, want ~84", got)
	}
}

func TestMMAnchor(t *testing.T) {
	// Table 4: MM(14000) static on 8 procs ran 3661 s for 10 iterations.
	m := AppModel{App: "mm", N: 14000}
	got := iterTime(t, m, topo(2, 4))
	if got < 280 || got > 460 {
		t.Errorf("MM 14000 on 8 procs = %.1f s/iter, want ~366", got)
	}
}

func TestDataBytes(t *testing.T) {
	cases := []struct {
		m    AppModel
		want int64
	}{
		{AppModel{App: "lu", N: 1000}, 8e6},
		{AppModel{App: "mm", N: 1000}, 24e6},
		{AppModel{App: "jacobi", N: 1000}, 8e6 + 8e3},
		{AppModel{App: "fft", N: 1024}, 1024 * 1024 * 16},
		{AppModel{App: "mw"}, 0},
	}
	for _, c := range cases {
		if got := c.m.DataBytes(); got != c.want {
			t.Errorf("%s: DataBytes = %d, want %d", c.m.App, got, c.want)
		}
	}
}

func TestIterTimeUnknownApp(t *testing.T) {
	if _, err := SystemX().IterTime(AppModel{App: "bogus"}, topo(1, 1)); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestCheckpointRespondsToTopology(t *testing.T) {
	// The checkpoint baseline funnels through one node: gathering from and
	// scattering to more ranks pays more message latency, so the Figure 3(b)
	// curve must rise (not stay flat) with processor count.
	p := SystemX()
	m := AppModel{App: "lu", N: 12000}
	small := p.CheckpointTime(m, topo(2, 2), topo(2, 3))
	large := p.CheckpointTime(m, topo(4, 4), topo(4, 6))
	if large <= small {
		t.Errorf("checkpoint 16->24 (%.6f) should cost more than 4->6 (%.6f)", large, small)
	}
	wantDelta := p.Latency * float64((16+24)-(4+6))
	if got := large - small; math.Abs(got-wantDelta) > 1e-12 {
		t.Errorf("latency delta = %.9f, want %.9f", got, wantDelta)
	}
}

func TestCalibrateRedistRecoversBandwidth(t *testing.T) {
	// Observations synthesized from the model with a different bandwidth
	// must pull the params to that bandwidth exactly.
	p := SystemX()
	const trueBW = 2.5e8
	var obs []RedistObservation
	for _, c := range []struct {
		bytes  float64
		copied float64
		minP   int
		steps  int
	}{
		// RedistTime predicts from the full data volume, so seconds are
		// synthesized from bytes+copied — overlapping grids (large copied
		// share) must calibrate to the same bandwidth as disjoint ones.
		{8e8, 0, 4, 4}, {4e8, 4e8, 12, 6}, {2.4e9, 1.2e9, 16, 8},
	} {
		total := c.bytes + c.copied
		secs := total/(trueBW*math.Pow(float64(c.minP), p.RedistCommExp)) + float64(c.steps)*p.Latency
		obs = append(obs, RedistObservation{
			Bytes: c.bytes, CopiedBytes: c.copied, MinProcs: c.minP, Steps: c.steps, Seconds: secs,
		})
	}
	netBW := p.Bandwidth
	used := p.CalibrateRedist(obs)
	if used != 3 {
		t.Fatalf("used %d observations, want 3", used)
	}
	if math.Abs(p.RedistBandwidth-trueBW)/trueBW > 1e-9 {
		t.Errorf("calibrated redist bandwidth %.4g, want %.4g", p.RedistBandwidth, trueBW)
	}
	// Calibration must not leak into the network bandwidth that drives the
	// iteration and checkpoint models.
	if p.Bandwidth != netBW {
		t.Errorf("network bandwidth changed from %.4g to %.4g", netBW, p.Bandwidth)
	}
	// The refit model reproduces a measured redistribution: an LU array of
	// matching volume between grids with the observed minP and steps.
	m := AppModel{App: "lu", N: 10000} // 8e8 bytes
	got := p.RedistTime(m, topo(2, 2), topo(3, 4))
	want := 8e8/(trueBW*math.Pow(4, p.RedistCommExp)) + float64(scheduleSteps(topo(2, 2), topo(3, 4)))*p.Latency
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("RedistTime after calibration = %.6f, want %.6f", got, want)
	}
}

func TestCalibrateRedistSkipsDegenerate(t *testing.T) {
	p := SystemX()
	orig := p.Bandwidth
	used := p.CalibrateRedist([]RedistObservation{
		{Bytes: 0, MinProcs: 4, Steps: 2, Seconds: 1},       // no network traffic
		{Bytes: 1e6, MinProcs: 4, Steps: 10, Seconds: 1e-4}, // under pure latency
		{Bytes: 1e6, MinProcs: 0, Steps: 1, Seconds: 1},     // bad topology
	})
	if used != 0 {
		t.Errorf("used %d degenerate observations", used)
	}
	if p.Bandwidth != orig || p.RedistBandwidth != 0 {
		t.Errorf("bandwidths changed to %v/%v on empty calibration", p.Bandwidth, p.RedistBandwidth)
	}
}
