package perfmodel

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/grid"
)

// Params holds the cluster and per-application calibration constants.
type Params struct {
	// Bandwidth is the effective link bandwidth in bytes/s (GigE).
	Bandwidth float64
	// DiskBandwidth is the single-node checkpoint staging rate in bytes/s.
	DiskBandwidth float64
	// Latency is the per-message software overhead in seconds.
	Latency float64
	// Contention is the per-processor linear slowdown term (seconds per
	// processor per iteration) capturing network contention at scale.
	Contention float64
	// AspectPenalty scales the communication term of 2-D apps by
	// (1 + AspectPenalty*(aspect-1)), making non-square grids slower.
	AspectPenalty float64

	// Per-application effective flop rates (flop/s per processor).
	LUFlops, MMFlops, JacobiFlops, FFTFlops float64
	// Communication coefficients of the 2-D dense kernels.
	LUComm, MMComm float64
	// Jacobi: inner sweeps per outer iteration and the per-sweep vector
	// exchange cost factor.
	JacobiInnerSweeps int
	// FFT: transform repetitions per outer iteration (the "image
	// transformation" batch).
	FFTRepeats int
	// RedistCommExp is the exponent a in  bytes/(BW * min(p,q)^a)  of the
	// redistribution model.
	RedistCommExp float64
	// RedistBandwidth is the measured effective redistribution rate in
	// bytes/s (total array volume over transfer time, local copies
	// included). Zero means uncalibrated: RedistTime falls back to the
	// network Bandwidth. Kept separate from Bandwidth so calibration from
	// measured redistributions cannot skew the iteration and checkpoint
	// models, which describe pure network traffic.
	RedistBandwidth float64
}

// SystemX returns the calibration used throughout the reproduction.
func SystemX() *Params {
	return &Params{
		Bandwidth:         1.0e8, // ~100 MB/s effective GigE
		DiskBandwidth:     5.0e7, // ~50 MB/s 2007-era staging disk
		Latency:           1.0e-4,
		Contention:        1.7,
		AspectPenalty:     0.1,
		LUFlops:           6.0e9,
		MMFlops:           2.2e9,
		JacobiFlops:       2.5e9,
		FFTFlops:          2.0e9,
		LUComm:            3.65,
		MMComm:            4.0,
		JacobiInnerSweeps: 25000,
		FFTRepeats:        8,
		RedistCommExp:     0.5,
	}
}

// AppModel describes one application instance for the simulator.
type AppModel struct {
	App string // "lu", "mm", "jacobi", "fft", "mw"
	N   int
	// MWWorkSeconds is the total sequential work per outer iteration of the
	// master-worker app (its units are fixed-time, so only the product
	// matters).
	MWWorkSeconds float64
}

// DataBytes returns the size of the application's redistributable global
// state in bytes.
func (m AppModel) DataBytes() int64 {
	n := int64(m.N)
	switch m.App {
	case "lu":
		return n * n * 8
	case "mm":
		return 3 * n * n * 8 // A, B, C
	case "jacobi":
		return n*n*8 + n*8
	case "fft":
		return n * n * 16 // complex
	case "mw":
		return 0
	default:
		return 0
	}
}

// aspect returns the communication penalty factor for a topology.
func (p *Params) aspect(t grid.Topology) float64 {
	return 1 + p.AspectPenalty*(t.Aspect()-1)
}

// IterTime predicts one outer iteration's duration in seconds on the given
// topology.
func (p *Params) IterTime(m AppModel, t grid.Topology) (float64, error) {
	procs := float64(t.Count())
	if procs < 1 {
		return 0, fmt.Errorf("perfmodel: empty topology %v", t)
	}
	n := float64(m.N)
	switch m.App {
	case "lu":
		comp := (2.0 / 3.0) * n * n * n / (procs * p.LUFlops)
		comm := p.LUComm * n * n * 8 / (p.Bandwidth * math.Sqrt(procs)) * p.aspect(t)
		return comp + comm + p.Contention*procs, nil
	case "mm":
		comp := 2 * n * n * n / (procs * p.MMFlops)
		comm := p.MMComm * n * n * 8 / (p.Bandwidth * math.Sqrt(procs)) * p.aspect(t)
		return comp + comm + p.Contention*procs, nil
	case "jacobi":
		s := float64(p.JacobiInnerSweeps)
		comp := s * 2 * n * n / (procs * p.JacobiFlops)
		comm := s * (n * 8 / p.Bandwidth) * (1 + 0.1*math.Log2(procs))
		return comp + comm, nil
	case "fft":
		r := float64(p.FFTRepeats)
		comp := r * 4 * 5 * n * n * math.Log2(n) / (procs * p.FFTFlops)
		comm := 0.0
		if procs > 1 {
			comm = r * 4 * n * n * 16 * (procs - 1) / (procs * procs * p.Bandwidth)
		}
		return comp + comm, nil
	case "mw":
		if t.Count() == 1 {
			return m.MWWorkSeconds, nil
		}
		// Rank 0 is the master; workers process fixed-time units.
		return m.MWWorkSeconds / (procs - 1), nil
	default:
		return 0, fmt.Errorf("perfmodel: unknown app %q", m.App)
	}
}

// RedistTime predicts the cost of redistributing the application's global
// data between two topologies with the message-passing algorithm: the
// per-processor data volume dominates, so cost falls as either side grows
// (Figure 2(b)), plus per-step message latencies.
func (p *Params) RedistTime(m AppModel, from, to grid.Topology) float64 {
	bytes := float64(m.DataBytes())
	if bytes == 0 || from == to {
		return 0
	}
	bw := p.Bandwidth
	if p.RedistBandwidth > 0 {
		bw = p.RedistBandwidth
	}
	minP := math.Min(float64(from.Count()), float64(to.Count()))
	steps := float64(scheduleSteps(from, to))
	return bytes/(bw*math.Pow(minP, p.RedistCommExp)) + steps*p.Latency
}

// CheckpointTime predicts the file-based checkpoint/restart alternative:
// all data funnels through one node, is written to and read back from disk,
// and is scattered again — the baseline of Figure 3(b). The root exchanges
// one message with every rank of the old grid on the gather and every rank
// of the new grid on the scatter, so the baseline responds to topology:
// restarting onto more processors costs more message latency.
func (p *Params) CheckpointTime(m AppModel, from, to grid.Topology) float64 {
	bytes := float64(m.DataBytes())
	if bytes == 0 {
		return 0
	}
	gatherScatter := 2 * bytes / p.Bandwidth
	diskIO := 2 * bytes / p.DiskBandwidth
	msgLatency := p.Latency * float64(from.Count()+to.Count())
	return gatherScatter + diskIO + msgLatency
}

// RedistObservation is one measured redistribution, reported by the resize
// library after a real (goroutine-rank) execution of the fused engine. It
// carries exactly the quantities the RedistTime model predicts from.
type RedistObservation struct {
	// Bytes that crossed the network (local copies excluded).
	Bytes float64
	// CopiedBytes moved by local copy on overlapping grid pairs.
	CopiedBytes float64
	// MinProcs is min(|from|, |to|) of the grid pair.
	MinProcs int
	// Steps is the number of schedule steps executed.
	Steps int
	// Seconds is the measured wall-clock redistribution time.
	Seconds float64
}

// CalibrateRedist refits RedistBandwidth from measured redistributions,
// inverting the RedistTime model
//
//	seconds = bytes/(BW * minP^a) + steps*Latency
//
// per observation and taking the median estimate (robust to the odd
// scheduler-noise outlier). RedistTime predicts from the application's
// total data volume, so the inversion uses Bytes + CopiedBytes — the
// calibrated rate is the effective speed at which the whole array moved,
// local copies included, and the refit model reproduces the very
// observations it was fitted to. Only RedistBandwidth is touched: the
// network Bandwidth driving the iteration and checkpoint models is left
// alone. Observations with no network traffic or with a measured time not
// exceeding the pure-latency term are skipped. It returns the number of
// observations used; zero leaves the params unchanged.
func (p *Params) CalibrateRedist(obs []RedistObservation) int {
	var ests []float64
	for _, o := range obs {
		transfer := o.Seconds - float64(o.Steps)*p.Latency
		if o.Bytes <= 0 || o.MinProcs < 1 || transfer <= 0 {
			continue
		}
		ests = append(ests, (o.Bytes+o.CopiedBytes)/(transfer*math.Pow(float64(o.MinProcs), p.RedistCommExp)))
	}
	if len(ests) == 0 {
		return 0
	}
	sort.Float64s(ests)
	mid := len(ests) / 2
	if len(ests)%2 == 1 {
		p.RedistBandwidth = ests[mid]
	} else {
		p.RedistBandwidth = (ests[mid-1] + ests[mid]) / 2
	}
	return len(ests)
}

// scheduleSteps counts the contention-free communication steps of the 2-D
// circulant schedule between two grids.
func scheduleSteps(from, to grid.Topology) int {
	return dimSteps(from.Rows, to.Rows) * dimSteps(from.Cols, to.Cols)
}

func dimSteps(p, q int) int {
	g := gcd(p, q)
	a, b := p/g, q/g
	if a > b {
		return a
	}
	return b
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
