package scheduler

import (
	"fmt"

	"repro/internal/grid"
)

// JobState tracks a job through the scheduler.
type JobState int

const (
	// Queued jobs wait for processors.
	Queued JobState = iota
	// Running jobs hold processors.
	Running
	// Done jobs have finished and released their processors.
	Done
)

// String names the state.
func (s JobState) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	default:
		return "done"
	}
}

// JobSpec describes a submitted application.
type JobSpec struct {
	Name        string
	App         string // application kind, e.g. "lu", "mm", "jacobi", "fft", "mw"
	ProblemSize int
	// BlockSize is the block-cyclic block dimension used when the job is
	// executed on the real runtime (ignored by the simulator).
	BlockSize  int
	Iterations int
	// Priority orders the queue: higher-priority jobs are scheduled first
	// (FCFS among equals). The default 0 reproduces plain FCFS.
	Priority int
	// Tenant names the submitting principal for multi-tenant fair-share
	// scheduling. The empty string is the default tenant, so single-tenant
	// deployments never see the field. Tenancy shapes *ordering* (which
	// tenant's job starts or resizes next under a fair-share arbiter), never
	// admission to the journal: the field rides inside the spec through the
	// WAL so recovery replays shares deterministically.
	Tenant      string
	InitialTopo grid.Topology
	// Chain is the job's legal configuration ladder in ascending processor
	// count (the paper's Table 2 row for this problem size).
	Chain []grid.Topology
}

// Job is the scheduler's view of one application.
type Job struct {
	ID      int
	Spec    JobSpec
	State   JobState
	Topo    grid.Topology
	Profile *Profile

	SubmitTime float64
	StartTime  float64
	EndTime    float64

	// grant is the job's sharded processor reservation; it always holds
	// Topo.Count() + pendingFree processors.
	grant Grant
	// pendingFree holds processors granted back by an in-flight shrink,
	// released when ResizeComplete arrives.
	pendingFree int
	// resizeFrom remembers the pre-resize configuration for profiling.
	resizeFrom grid.Topology
	// qprev/qnext thread the job into its wait-queue priority bucket (see
	// jobQueue.prioList); both are nil except while State == Queued.
	qprev, qnext *Job
}

// GrantShards returns the number of pool shards the job's allocation spans
// (0 while queued or done). Expansion may steal capacity across shards, so
// a large job can span several.
func (j *Job) GrantShards() int { return j.grant.Shards() }

// AllocEvent is one allocation change, forming the processor-allocation
// history of Figures 4(a)/5(a) and the busy-processor series of 4(b)/5(b).
type AllocEvent struct {
	Time  float64
	JobID int
	Job   string
	Kind  string // "submit", "start", "expand", "shrink", "end"
	Topo  grid.Topology
	Busy  int // busy processors immediately after the event
}

// QueuedNeedsWindow caps the queue-pressure view Core hands to policies and
// arbiters: RemapInput.QueuedNeeds and ClusterSnapshot.Queued list at most
// this many waiting jobs, head first. The published policy only consults
// the head of the queue, and the bounded window keeps Contact O(log n) even
// with hundreds of thousands of waiting jobs — so policies must size their
// reaction to the jobs they can see (in particular: never shrink more than
// the head needs on the basis of a truncated tail; see
// TestTruncatedWindowNeverOverShrinks). LinearCore, the reference
// implementation, still materializes the full queue.
const QueuedNeedsWindow = 8

// Core is the passive scheduler state machine: clock-independent (every
// mutation takes an explicit timestamp) so the same policy code drives both
// the real runtime and the virtual-time cluster simulation.
//
// Internally the core is built for scale: the wait queue is an indexed
// priority structure (see jobQueue) rather than a linear slice, and the
// processor pool is sharded into independently locked partitions with
// cross-shard stealing for expansion (see Pool). Core methods themselves
// must still be externally synchronized (the Server does this; the
// simulator is single-threaded).
type Core struct {
	Total    int
	Backfill bool
	// Policy is the Remap Scheduler strategy; defaults to PaperPolicy. It
	// is consulted through the default single-job arbiter unless SetArbiter
	// installs a cluster-wide one.
	Policy Policy

	arb Arbiter
	// journal, when installed, persists every validated input op before it
	// is applied (see journal.go).
	journal JournalFunc
	pool    *Pool
	nextID  int
	queue   jobQueue
	jobs    map[int]*Job
	// running is the id-sorted index of running jobs backing EachRunning;
	// its length is bounded by the pool size, not by job history.
	running []*Job

	// Events is the allocation trace. Tracing can be disabled for huge
	// simulations (DisableTrace); utilization accounting stays exact either
	// way via the busy-time integral.
	Events []AllocEvent

	trace        bool
	busySeconds  float64 // integral of busy processors over virtual time
	lastBusy     int
	lastBusyTime float64

	// Materialized queued-window caches. Arbiter snapshots and the default
	// policy path consult the head window on every contact; rebuilding it
	// per event dominated the million-job profile. The caches are keyed on
	// the queue's version counter (and, for the view slice, the snapshot
	// timestamp, since Wait ages with the clock) so many contacts landing in
	// the same tick share one O(k) rebuild into reusable scratch. The slices
	// returned to callers are therefore owned by Core: snapshot consumers
	// must not retain them across calls (already the arbiter contract).
	winJobs   []*Job       // scratch: raw window from jobQueue.window
	winNeeds  []int        // queuedNeeds cache, valid for needsVer
	winViews  []QueuedView // queuedWindow cache, valid for (viewsVer, viewsNow)
	headViews []QueuedView // startPicked scratch: per-tenant head views
	needsVer  uint64
	needsOK   bool
	viewsVer  uint64
	viewsNow  float64
	viewsOK   bool
}

// NewCore creates a scheduler for a cluster with total processors, using
// the published Remap Scheduler policy and a pool shard count picked by
// DefaultShards.
func NewCore(total int, backfill bool) *Core {
	return NewCoreSharded(total, DefaultShards(total), backfill)
}

// NewCoreSharded creates a scheduler whose processor pool is split into an
// explicit number of independently locked shards.
func NewCoreSharded(total, shards int, backfill bool) *Core {
	return &Core{
		Total:    total,
		Backfill: backfill,
		Policy:   PaperPolicy{},
		pool:     NewPool(total, shards),
		jobs:     make(map[int]*Job),
		trace:    true,
	}
}

// DisableTrace turns off AllocEvent recording (the busy-time integral keeps
// accumulating). Use for very large workloads where the trace itself would
// dominate memory.
func (c *Core) DisableTrace() { c.trace = false }

// Pool exposes the sharded processor pool.
func (c *Core) Pool() *Pool { return c.pool }

// Free returns the number of idle processors.
func (c *Core) Free() int { return c.pool.Free() }

// Busy returns the number of allocated processors.
func (c *Core) Busy() int { return c.Total - c.pool.Free() }

// QueueLen returns the number of waiting jobs.
func (c *Core) QueueLen() int { return c.queue.len() }

// SetPolicy replaces the Remap Scheduler policy.
func (c *Core) SetPolicy(p Policy) { c.Policy = p }

// SetArbiter installs a cluster-wide resize arbiter. A nil arbiter restores
// the default: the single-job PolicyArbiter over c.Policy, which reproduces
// the published Contact behavior bit-identically.
//
// If the arbiter also implements StartPicker, the queue's per-tenant index
// is enabled (and backfilled from any already-queued jobs) so TrySchedule
// can offer the picker every tenant's queue head. Install the arbiter
// before replaying a journal so recovered runs take the identical path.
func (c *Core) SetArbiter(a Arbiter) {
	c.arb = a
	if _, ok := a.(StartPicker); ok {
		c.queue.enableTenantIndex()
	}
}

// Arbiter returns the installed cluster-wide arbiter (nil when the default
// single-job policy path is active).
func (c *Core) Arbiter() Arbiter { return c.arb }

// AllocEvents returns the allocation trace (nil when tracing is disabled).
func (c *Core) AllocEvents() []AllocEvent { return c.Events }

// BusySeconds returns the integral of busy processors over virtual time up
// to the until timestamp, the numerator of the utilization metric. It is
// exact whether or not event tracing is enabled.
func (c *Core) BusySeconds(until float64) float64 {
	s := c.busySeconds
	if until > c.lastBusyTime {
		s += float64(c.lastBusy) * (until - c.lastBusyTime)
	}
	return s
}

// Job looks up a job by id.
func (c *Core) Job(id int) (*Job, bool) {
	j, ok := c.jobs[id]
	return j, ok
}

// Jobs returns all jobs in submission order.
func (c *Core) Jobs() []*Job {
	out := make([]*Job, 0, len(c.jobs))
	for id := 0; id < c.nextID; id++ {
		if j, ok := c.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

func (c *Core) record(now float64, j *Job, kind string) {
	busy := c.Busy()
	if now > c.lastBusyTime {
		c.busySeconds += float64(c.lastBusy) * (now - c.lastBusyTime)
		c.lastBusyTime = now
	}
	c.lastBusy = busy
	if c.trace {
		c.Events = append(c.Events, AllocEvent{
			Time: now, JobID: j.ID, Job: j.Spec.Name, Kind: kind, Topo: j.Topo, Busy: busy,
		})
	}
}

// Submit enqueues a job and immediately tries to schedule the queue. It
// returns the job and any jobs started as a consequence (possibly including
// the submitted one).
func (c *Core) Submit(spec JobSpec, now float64) (*Job, []*Job, error) {
	j, err := newJob(spec, c.nextID, c.Total, now)
	if err != nil {
		return nil, nil, err
	}
	if err := c.journalOp(Op{Kind: OpSubmit, Now: now, Spec: spec}); err != nil {
		return nil, nil, err
	}
	c.nextID++
	c.jobs[j.ID] = j
	c.queue.push(j)
	c.record(now, j, "submit")
	started := c.TrySchedule(now)
	return j, started, nil
}

// TrySchedule starts queued jobs under FCFS order, optionally backfilling
// later jobs that fit when the head does not. When the installed arbiter is
// a StartPicker, start order among *tenants* is delegated to it instead:
// the picker chooses among the per-tenant queue heads, while order within a
// tenant stays FCFS. With a single tenant the picker sees exactly the
// global head, so the path degenerates to the published FCFS loop. It
// returns the started jobs.
func (c *Core) TrySchedule(now float64) []*Job {
	var started []*Job
	if sp, ok := c.arb.(StartPicker); ok {
		started = c.startPicked(sp, now)
	} else {
		for {
			head := c.queue.head()
			if head == nil || head.Spec.InitialTopo.Count() > c.pool.Free() {
				break
			}
			if !c.start(head, now) {
				break
			}
			started = append(started, head)
		}
	}
	if c.Backfill {
		for {
			j := c.queue.bestFit(c.pool.Free())
			if j == nil {
				break
			}
			if !c.start(j, now) {
				break
			}
			started = append(started, j)
		}
	}
	return started
}

// startPicked runs the StartPicker scheduling loop: each round offers the
// arbiter every tenant's queue head (ascending tenant order) and starts the
// job it picks, until the picker declines or the pick no longer fits. The
// rejected-pick break mirrors the FCFS loop's head check: a picker that
// chooses a job the idle pool cannot hold stalls the round rather than
// silently falling through to another tenant, preserving within-round
// determinism. Backfill, when enabled, still runs afterwards.
func (c *Core) startPicked(sp StartPicker, now float64) []*Job {
	var started []*Job
	var heads []*Job
	for {
		heads = c.queue.tenantHeads(heads[:0])
		if len(heads) == 0 {
			break
		}
		c.headViews = c.headViews[:0]
		for _, j := range heads {
			c.headViews = append(c.headViews, queuedView(j, now))
		}
		snap := StartSnapshot{
			Now:     now,
			Total:   c.Total,
			Idle:    c.pool.Free(),
			Heads:   c.headViews,
			Cluster: c,
		}
		i := sp.PickStart(snap)
		if i < 0 || i >= len(heads) {
			break
		}
		j := heads[i]
		if j.Spec.InitialTopo.Count() > c.pool.Free() || !c.start(j, now) {
			break
		}
		started = append(started, j)
	}
	return started
}

// start reserves the job's initial allocation from the pool and launches
// it. It returns false if the pool could not satisfy the reservation (a
// concurrent claim beat this one).
func (c *Core) start(j *Job, now float64) bool {
	g, ok := c.pool.Alloc(j.Spec.InitialTopo.Count())
	if !ok {
		return false
	}
	// State leaves Queued before the queue drops the job so take's lazy
	// bucket sweep already sees this entry as dead.
	j.State = Running
	c.running = insertRunning(c.running, j)
	c.queue.take(j)
	j.StartTime = now
	j.Topo = j.Spec.InitialTopo
	j.grant = g
	c.record(now, j, "start")
	return true
}

// queuedNeeds lists the processor requirements of the first waiting jobs
// in queue order, capped at QueuedNeedsWindow. The returned slice is
// Core-owned scratch, rebuilt only when the queue has changed since the
// last call; policies receive it via RemapInput.QueuedNeeds and must not
// retain it.
func (c *Core) queuedNeeds() []int {
	if c.queue.len() == 0 {
		return nil
	}
	if !c.needsOK || c.needsVer != c.queue.version {
		c.winJobs = c.queue.window(c.winJobs[:0], QueuedNeedsWindow)
		c.winNeeds = c.winNeeds[:0]
		for _, j := range c.winJobs {
			c.winNeeds = append(c.winNeeds, j.Spec.InitialTopo.Count())
		}
		c.needsVer, c.needsOK = c.queue.version, true
	}
	return c.winNeeds
}

// queuedWindow lists the first waiting jobs in queue order as arbiter
// views, capped at QueuedNeedsWindow (nil when nothing waits). The slice is
// Core-owned scratch keyed on (queue version, now) — Wait ages with the
// clock, so a new timestamp forces a rebuild even when the queue itself is
// unchanged — and must not be retained by snapshot consumers.
func (c *Core) queuedWindow(now float64) []QueuedView {
	if c.queue.len() == 0 {
		return nil
	}
	if !c.viewsOK || c.viewsVer != c.queue.version || c.viewsNow != now {
		c.winJobs = c.queue.window(c.winJobs[:0], QueuedNeedsWindow)
		c.winViews = c.winViews[:0]
		for _, j := range c.winJobs {
			c.winViews = append(c.winViews, queuedView(j, now))
		}
		c.viewsVer, c.viewsNow, c.viewsOK = c.queue.version, now, true
	}
	return c.winViews
}

// queuedView projects one waiting job into the arbiter's read-only view.
func queuedView(j *Job, now float64) QueuedView {
	return QueuedView{
		ID:       j.ID,
		Tenant:   j.Spec.Tenant,
		Priority: j.Spec.Priority,
		Need:     j.Spec.InitialTopo.Count(),
		Wait:     now - j.SubmitTime,
	}
}

// EachRunning implements ClusterView: it yields every running job in
// ascending id order. Arbiters call it lazily; the default single-job path
// never does.
func (c *Core) EachRunning(yield func(ContactView) bool) {
	eachRunning(c.running, yield)
}

// snapshot assembles the arbiter's view of the cluster at a resize point.
// Queued and queuedNeeds come from the version-keyed window caches, so
// building a snapshot in a tick where the queue hasn't changed costs O(1)
// and zero allocations.
func (c *Core) snapshot(j *Job, now float64) ClusterSnapshot {
	return ClusterSnapshot{
		Now:         now,
		Total:       c.Total,
		Idle:        c.pool.Free(),
		Caller:      contactView(j),
		Queued:      c.queuedWindow(now),
		QueueLen:    c.queue.len(),
		Cluster:     c,
		queuedNeeds: c.queuedNeeds(),
	}
}

// globalSnapshot assembles the caller-less cluster snapshot a planning
// tick hands to a Planner arbiter: identical to a contact snapshot except
// that no job is at a resize point, marked by a zero Caller with ID -1.
func (c *Core) globalSnapshot(now float64) ClusterSnapshot {
	return ClusterSnapshot{
		Now:         now,
		Total:       c.Total,
		Idle:        c.pool.Free(),
		Caller:      ContactView{ID: -1},
		Queued:      c.queuedWindow(now),
		QueueLen:    c.queue.len(),
		Cluster:     c,
		queuedNeeds: c.queuedNeeds(),
	}
}

// Contact is the Remap Scheduler entry point: a running job reports its
// latest iteration time (and the redistribution time of its previous
// resize, if any) from a resize point, and receives the expand/shrink/none
// decision from the arbitration layer. Expansion reserves the additional
// processors immediately; shrinking releases processors only when the
// resize library confirms with ResizeComplete.
func (c *Core) Contact(jobID int, topo grid.Topology, iterTime, redistTime float64, now float64) (Decision, error) {
	j, err := validateContact(c.jobs, jobID, topo)
	if err != nil {
		return Decision{}, err
	}
	if err := c.journalOp(Op{
		Kind: OpContact, Now: now, JobID: jobID, Topo: topo,
		IterTime: iterTime, RedistTime: redistTime,
	}); err != nil {
		return Decision{}, err
	}
	j.Profile.RecordIteration(j.Topo, iterTime)
	var d Decision
	if c.arb != nil {
		d = c.arb.Decide(c.snapshot(j, now))
	} else {
		d = defaultDecide(c.Policy, j, c.pool.Free(), c.queuedNeeds())
	}
	return applyDecision(j, d,
		func(delta int) bool { return c.pool.AllocInto(&j.grant, delta) },
		func(kind string) { c.record(now, j, kind) }), nil
}

// ResizeComplete confirms that a granted resize finished: the redistribution
// cost is recorded in the profiler and, for shrinks, the freed processors
// return to the pool and queued jobs are scheduled onto them. It returns any
// jobs started as a result.
func (c *Core) ResizeComplete(jobID int, redistTime float64, now float64) ([]*Job, error) {
	j, ok := c.jobs[jobID]
	if !ok {
		return nil, fmt.Errorf("scheduler: unknown job %d", jobID)
	}
	if err := c.journalOp(Op{Kind: OpResizeComplete, Now: now, JobID: jobID, RedistTime: redistTime}); err != nil {
		return nil, err
	}
	if freed := finishResize(j, redistTime); freed > 0 {
		if err := c.pool.Release(&j.grant, freed); err != nil {
			return nil, err
		}
		j.pendingFree = 0
		return c.TrySchedule(now), nil
	}
	return nil, nil
}

// Finish marks a job done (the System Monitor's job-end signal), releases
// its processors and schedules waiting jobs. It returns any jobs started.
func (c *Core) Finish(jobID int, now float64) ([]*Job, error) {
	return c.complete(jobID, now, "end")
}

// Fail handles the System Monitor's job-error signal: the job is deleted
// and its resources recovered, exactly like normal completion except for
// the recorded event kind.
func (c *Core) Fail(jobID int, now float64) ([]*Job, error) {
	return c.complete(jobID, now, "error")
}

func (c *Core) complete(jobID int, now float64, kind string) ([]*Job, error) {
	j, err := validateFinish(c.jobs, jobID, kind)
	if err != nil {
		return nil, err
	}
	opKind := OpFinish
	if kind == "error" {
		opKind = OpFail
	}
	if err := c.journalOp(Op{Kind: opKind, Now: now, JobID: jobID}); err != nil {
		return nil, err
	}
	j.State = Done
	j.EndTime = now
	c.running = removeRunning(c.running, j)
	c.pool.ReleaseAll(&j.grant)
	j.pendingFree = 0
	c.record(now, j, kind)
	return c.TrySchedule(now), nil
}
