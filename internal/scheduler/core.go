package scheduler

import (
	"fmt"

	"repro/internal/grid"
)

// JobState tracks a job through the scheduler.
type JobState int

const (
	// Queued jobs wait for processors.
	Queued JobState = iota
	// Running jobs hold processors.
	Running
	// Done jobs have finished and released their processors.
	Done
)

// String names the state.
func (s JobState) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	default:
		return "done"
	}
}

// JobSpec describes a submitted application.
type JobSpec struct {
	Name        string
	App         string // application kind, e.g. "lu", "mm", "jacobi", "fft", "mw"
	ProblemSize int
	// BlockSize is the block-cyclic block dimension used when the job is
	// executed on the real runtime (ignored by the simulator).
	BlockSize  int
	Iterations int
	// Priority orders the queue: higher-priority jobs are scheduled first
	// (FCFS among equals). The default 0 reproduces plain FCFS.
	Priority    int
	InitialTopo grid.Topology
	// Chain is the job's legal configuration ladder in ascending processor
	// count (the paper's Table 2 row for this problem size).
	Chain []grid.Topology
}

// Job is the scheduler's view of one application.
type Job struct {
	ID      int
	Spec    JobSpec
	State   JobState
	Topo    grid.Topology
	Profile *Profile

	SubmitTime float64
	StartTime  float64
	EndTime    float64

	// pendingFree holds processors granted back by an in-flight shrink,
	// released when ResizeComplete arrives.
	pendingFree int
	// resizeFrom remembers the pre-resize configuration for profiling.
	resizeFrom grid.Topology
}

// AllocEvent is one allocation change, forming the processor-allocation
// history of Figures 4(a)/5(a) and the busy-processor series of 4(b)/5(b).
type AllocEvent struct {
	Time  float64
	JobID int
	Job   string
	Kind  string // "submit", "start", "expand", "shrink", "end"
	Topo  grid.Topology
	Busy  int // busy processors immediately after the event
}

// Core is the passive scheduler state machine: clock-independent (every
// mutation takes an explicit timestamp) so the same policy code drives both
// the real runtime and the virtual-time cluster simulation.
type Core struct {
	Total    int
	Backfill bool
	// Policy is the Remap Scheduler strategy; defaults to PaperPolicy.
	Policy Policy

	free   int
	nextID int
	queue  []*Job
	jobs   map[int]*Job

	Events []AllocEvent
}

// NewCore creates a scheduler for a cluster with total processors, using
// the published Remap Scheduler policy.
func NewCore(total int, backfill bool) *Core {
	return &Core{Total: total, Backfill: backfill, Policy: PaperPolicy{},
		free: total, jobs: make(map[int]*Job)}
}

// Free returns the number of idle processors.
func (c *Core) Free() int { return c.free }

// Busy returns the number of allocated processors.
func (c *Core) Busy() int { return c.Total - c.free }

// QueueLen returns the number of waiting jobs.
func (c *Core) QueueLen() int { return len(c.queue) }

// Job looks up a job by id.
func (c *Core) Job(id int) (*Job, bool) {
	j, ok := c.jobs[id]
	return j, ok
}

// Jobs returns all jobs in submission order.
func (c *Core) Jobs() []*Job {
	out := make([]*Job, 0, len(c.jobs))
	for id := 0; id < c.nextID; id++ {
		if j, ok := c.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

func (c *Core) record(now float64, j *Job, kind string) {
	c.Events = append(c.Events, AllocEvent{
		Time: now, JobID: j.ID, Job: j.Spec.Name, Kind: kind, Topo: j.Topo, Busy: c.Busy(),
	})
}

// Submit enqueues a job and immediately tries to schedule the queue. It
// returns the job and any jobs started as a consequence (possibly including
// the submitted one).
func (c *Core) Submit(spec JobSpec, now float64) (*Job, []*Job, error) {
	if !spec.InitialTopo.IsValid() {
		return nil, nil, fmt.Errorf("scheduler: job %q has invalid initial topology", spec.Name)
	}
	if spec.InitialTopo.Count() > c.Total {
		return nil, nil, fmt.Errorf("scheduler: job %q needs %d processors, cluster has %d",
			spec.Name, spec.InitialTopo.Count(), c.Total)
	}
	j := &Job{
		ID:         c.nextID,
		Spec:       spec,
		State:      Queued,
		Topo:       spec.InitialTopo,
		Profile:    NewProfile(),
		SubmitTime: now,
	}
	c.nextID++
	c.jobs[j.ID] = j
	// Priority insertion: higher priority first, FCFS among equals.
	pos := len(c.queue)
	for i, q := range c.queue {
		if j.Spec.Priority > q.Spec.Priority {
			pos = i
			break
		}
	}
	c.queue = append(c.queue, nil)
	copy(c.queue[pos+1:], c.queue[pos:])
	c.queue[pos] = j
	c.record(now, j, "submit")
	started := c.TrySchedule(now)
	return j, started, nil
}

// TrySchedule starts queued jobs under FCFS order, optionally backfilling
// later jobs that fit when the head does not. It returns the started jobs.
func (c *Core) TrySchedule(now float64) []*Job {
	var started []*Job
	for len(c.queue) > 0 {
		head := c.queue[0]
		if head.Spec.InitialTopo.Count() > c.free {
			break
		}
		c.start(head, now)
		c.queue = c.queue[1:]
		started = append(started, head)
	}
	if c.Backfill {
		kept := c.queue[:0]
		for _, j := range c.queue {
			if j.Spec.InitialTopo.Count() <= c.free {
				c.start(j, now)
				started = append(started, j)
			} else {
				kept = append(kept, j)
			}
		}
		c.queue = kept
	}
	return started
}

func (c *Core) start(j *Job, now float64) {
	j.State = Running
	j.StartTime = now
	j.Topo = j.Spec.InitialTopo
	c.free -= j.Topo.Count()
	c.record(now, j, "start")
}

// queuedNeeds lists the processor requirements of waiting jobs in order.
func (c *Core) queuedNeeds() []int {
	needs := make([]int, len(c.queue))
	for i, j := range c.queue {
		needs[i] = j.Spec.InitialTopo.Count()
	}
	return needs
}

// Contact is the Remap Scheduler entry point: a running job reports its
// latest iteration time (and the redistribution time of its previous
// resize, if any) from a resize point, and receives the expand/shrink/none
// decision. Expansion reserves the additional processors immediately;
// shrinking releases processors only when the resize library confirms with
// ResizeComplete.
func (c *Core) Contact(jobID int, topo grid.Topology, iterTime, redistTime float64, now float64) (Decision, error) {
	j, ok := c.jobs[jobID]
	if !ok {
		return Decision{}, fmt.Errorf("scheduler: unknown job %d", jobID)
	}
	if j.State != Running {
		return Decision{}, fmt.Errorf("scheduler: job %d contacted while %v", jobID, j.State)
	}
	if topo != j.Topo {
		return Decision{}, fmt.Errorf("scheduler: job %d reports topology %v, scheduler has %v",
			jobID, topo, j.Topo)
	}
	j.Profile.RecordIteration(j.Topo, iterTime)

	done := 0
	for _, v := range j.Profile.Visits {
		done += len(v.IterTimes)
	}
	pol := c.Policy
	if pol == nil {
		pol = PaperPolicy{}
	}
	d := pol.Decide(RemapInput{
		Current:        j.Topo,
		Chain:          j.Spec.Chain,
		Profile:        j.Profile,
		IdleProcs:      c.free,
		QueuedNeeds:    c.queuedNeeds(),
		RemainingIters: j.Spec.Iterations - done,
	})
	switch d.Action {
	case ActionExpand:
		delta := d.Target.Count() - j.Topo.Count()
		c.free -= delta
		j.resizeFrom = j.Topo
		j.Topo = d.Target
		c.record(now, j, "expand")
	case ActionShrink:
		j.pendingFree += j.Topo.Count() - d.Target.Count()
		j.resizeFrom = j.Topo
		j.Topo = d.Target
		c.record(now, j, "shrink")
	}
	return d, nil
}

// ResizeComplete confirms that a granted resize finished: the redistribution
// cost is recorded in the profiler and, for shrinks, the freed processors
// return to the pool and queued jobs are scheduled onto them. It returns any
// jobs started as a result.
func (c *Core) ResizeComplete(jobID int, redistTime float64, now float64) ([]*Job, error) {
	j, ok := c.jobs[jobID]
	if !ok {
		return nil, fmt.Errorf("scheduler: unknown job %d", jobID)
	}
	if j.resizeFrom.IsValid() {
		j.Profile.RecordRedist(j.resizeFrom, j.Topo, redistTime)
		j.resizeFrom = grid.Topology{}
	}
	if j.pendingFree > 0 {
		c.free += j.pendingFree
		j.pendingFree = 0
		return c.TrySchedule(now), nil
	}
	return nil, nil
}

// Finish marks a job done (the System Monitor's job-end signal), releases
// its processors and schedules waiting jobs. It returns any jobs started.
func (c *Core) Finish(jobID int, now float64) ([]*Job, error) {
	return c.complete(jobID, now, "end")
}

// Fail handles the System Monitor's job-error signal: the job is deleted
// and its resources recovered, exactly like normal completion except for
// the recorded event kind.
func (c *Core) Fail(jobID int, now float64) ([]*Job, error) {
	return c.complete(jobID, now, "error")
}

func (c *Core) complete(jobID int, now float64, kind string) ([]*Job, error) {
	j, ok := c.jobs[jobID]
	if !ok {
		return nil, fmt.Errorf("scheduler: unknown job %d", jobID)
	}
	if j.State != Running {
		return nil, fmt.Errorf("scheduler: job %d completed (%s) while %v", jobID, kind, j.State)
	}
	j.State = Done
	j.EndTime = now
	c.free += j.Topo.Count() + j.pendingFree
	j.pendingFree = 0
	c.record(now, j, kind)
	return c.TrySchedule(now), nil
}
