// Package scheduler implements ReSHAPE's application scheduling and
// monitoring module: job queueing with FCFS and simple backfill, the Remap
// Scheduler's expand/shrink policy, and the Performance Profiler that
// records per-configuration iteration times and redistribution costs.
//
// # Architecture
//
// The package is split into a passive Core (a clock-independent state
// machine driven by explicit timestamps, shared between the real runtime
// and the virtual-time cluster simulator) and an active Server that wraps
// the Core with the five concurrent components described in the paper
// (System Monitor, Application Scheduler, Job Startup, Remap Scheduler,
// Performance Profiler).
//
// The Core is engineered for workloads far beyond the paper's five-job
// mixes:
//
//   - Event loop. EventQueue is a deterministic priority queue of
//     timestamped events (arrival, resize point, resize completion), and
//     Engine dispatches them through per-kind handlers with FIFO ordering
//     among equal timestamps. The cluster simulator (package simcluster)
//     drives its virtual time through this loop, so 100k-job traces replay
//     byte-identically in seconds.
//
//   - Indexed wait queue. The queue is a priority heap plus per-need
//     buckets (jobQueue): finding the FCFS head, the best backfill fit, or
//     the queue-pressure window handed to policies is O(log n) instead of
//     a linear scan per scheduling pass.
//
//   - Sharded processor pool. Pool splits the cluster into independently
//     locked partitions with a router that places allocations on the
//     least-loaded shard and steals capacity across shards when a job
//     expands beyond its home partition. A lock-free counter serves fit
//     checks.
//
// Decision-making at resize points flows through the arbitration layer
// (arbiter.go): each Contact assembles a ClusterSnapshot — idle pool,
// priority/age-annotated queued window, lazy access to every running
// job's profile — and hands it to an Arbiter. The default PolicyArbiter
// narrows the snapshot to the published single-job RemapInput, pinned
// bit-identical to the pre-arbiter path; package
// internal/scheduler/arbiter provides the cluster-wide benefit-ranked
// implementation (coordinated multi-job shrink, starvation aging).
//
// LinearCore preserves the pre-refactor single-counter, linear-scan design
// behind the same Interface; differential tests hold the two engines to
// identical schedules and BenchmarkSchedulerThroughput measures the gap.
// See DESIGN.md at the repository root for the full system picture.
package scheduler
