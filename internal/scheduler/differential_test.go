package scheduler

import (
	"math/rand"
	"testing"

	"repro/internal/grid"
)

// TestCoreMatchesLinearReference drives the event-indexed Core and the
// pre-refactor LinearCore with identical random operation sequences and
// requires identical externally visible behavior: the same jobs start in
// the same order, the same decisions come back from every contact, and the
// allocation traces match event for event. This pins the refactor to the
// reference semantics.
func TestCoreMatchesLinearReference(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		total := 8 + rng.Intn(56)
		backfill := rng.Intn(2) == 0
		cores := []Interface{
			NewCoreSharded(total, 1+rng.Intn(4), backfill),
			NewLinearCore(total, backfill),
		}
		now := 0.0

		runningIDs := func(c Interface) []int {
			var ids []int
			for _, j := range c.Jobs() {
				if j.State == Running {
					ids = append(ids, j.ID)
				}
			}
			return ids
		}

		for op := 0; op < 400; op++ {
			now += rng.Float64() * 10
			running := runningIDs(cores[0])
			kind := rng.Intn(4)
			pick := -1
			if len(running) > 0 {
				pick = running[rng.Intn(len(running))]
			}
			var sp JobSpec
			if kind == 0 {
				n := []int{8000, 12000, 14000, 21000}[rng.Intn(4)]
				start, ok := grid.SmallestConfig(n, 2+rng.Intn(4), total)
				if !ok {
					continue
				}
				sp = JobSpec{
					Name: "j", App: "lu", ProblemSize: n,
					Iterations:  1 << 30,
					Priority:    rng.Intn(3),
					InitialTopo: start,
					Chain:       grid.GrowthChain(start, n, total),
				}
			}
			iter := 10 + rng.Float64()*100
			red := rng.Float64() * 5

			type outcome struct {
				started []int
				d       Decision
				err     error
			}
			var results [2]outcome
			for i, c := range cores {
				var o outcome
				switch kind {
				case 0:
					_, started, err := c.Submit(sp, now)
					o.err = err
					for _, j := range started {
						o.started = append(o.started, j.ID)
					}
				case 1:
					if pick < 0 {
						continue
					}
					j, _ := c.Job(pick)
					o.d, o.err = c.Contact(pick, j.Topo, iter, 0, now)
				case 2:
					if pick < 0 {
						continue
					}
					started, err := c.ResizeComplete(pick, red, now)
					o.err = err
					for _, j := range started {
						o.started = append(o.started, j.ID)
					}
				case 3:
					if pick < 0 {
						continue
					}
					started, err := c.Finish(pick, now)
					o.err = err
					for _, j := range started {
						o.started = append(o.started, j.ID)
					}
				}
				results[i] = o
			}
			a, b := results[0], results[1]
			if (a.err == nil) != (b.err == nil) {
				t.Fatalf("seed %d op %d: error mismatch: %v vs %v", seed, op, a.err, b.err)
			}
			if a.d != b.d {
				t.Fatalf("seed %d op %d: decision mismatch: %+v vs %+v", seed, op, a.d, b.d)
			}
			if len(a.started) != len(b.started) {
				t.Fatalf("seed %d op %d: started %v vs %v", seed, op, a.started, b.started)
			}
			for i := range a.started {
				if a.started[i] != b.started[i] {
					t.Fatalf("seed %d op %d: started order %v vs %v", seed, op, a.started, b.started)
				}
			}
			if cores[0].Free() != cores[1].Free() || cores[0].QueueLen() != cores[1].QueueLen() {
				t.Fatalf("seed %d op %d: free %d/%d queue %d/%d", seed, op,
					cores[0].Free(), cores[1].Free(), cores[0].QueueLen(), cores[1].QueueLen())
			}
		}

		ae, be := cores[0].AllocEvents(), cores[1].AllocEvents()
		if len(ae) != len(be) {
			t.Fatalf("seed %d: event counts %d vs %d", seed, len(ae), len(be))
		}
		for i := range ae {
			if ae[i] != be[i] {
				t.Fatalf("seed %d: event %d: %+v vs %+v", seed, i, ae[i], be[i])
			}
		}
		if s := cores[0].BusySeconds(now) - cores[1].BusySeconds(now); s > 1e-9 || s < -1e-9 {
			t.Fatalf("seed %d: busy-seconds diverge by %v", seed, s)
		}
	}
}

// TestQueueBackfillPicksBestRankedFit covers the indexed queue's bucket
// search directly: with the head blocked, backfill must start the
// best-ranked job that fits, honoring priority before submission order.
func TestQueueBackfillPicksBestRankedFit(t *testing.T) {
	c := NewCore(10, true)
	c.Submit(spec("hog", topo(2, 4), 8000), 0)               // 8 busy, 2 free
	c.Submit(spec("head", topo(2, 3), 12000), 1)             // needs 6: queues
	filler, _, _ := c.Submit(spec("f", topo(1, 2), 8000), 2) // backfills: 0 free
	if filler.State != Running {
		t.Fatal("filler should backfill immediately")
	}
	low, _, _ := c.Submit(spec("low", topo(1, 2), 8000), 3) // queues
	hiPrio := spec("hi", topo(1, 2), 8000)
	hiPrio.Priority = 5
	hi, _, _ := c.Submit(hiPrio, 4) // queues behind low by time, ahead by priority
	if low.State != Queued || hi.State != Queued {
		t.Fatalf("states %v/%v, want both queued", low.State, hi.State)
	}
	started, err := c.Finish(filler.ID, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(started) != 1 || started[0] != hi {
		t.Fatalf("backfill started %v, want the high-priority fit first", started)
	}
	if hi.State != Running || low.State != Queued {
		t.Fatalf("states hi=%v low=%v", hi.State, low.State)
	}
}

// TestCoreCrossShardExpansionViaContact: a job expanding beyond its home
// shard's capacity must steal idle processors from other shards.
func TestCoreCrossShardExpansionViaContact(t *testing.T) {
	c := NewCoreSharded(16, 4, false) // 4 procs per shard
	a, _, err := c.Submit(spec("a", topo(1, 2), 12000), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Walk the job upward; each expansion must be granted even once the
	// target exceeds any single shard's capacity.
	iter := 130.0
	for i := 0; i < 4; i++ {
		d, err := c.Contact(a.ID, a.Topo, iter, 0, float64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		if d.Action != ActionExpand {
			break
		}
		if _, err := c.ResizeComplete(a.ID, 1, float64(i+1)); err != nil {
			t.Fatal(err)
		}
		iter *= 0.8 // keep improving so the policy keeps probing
	}
	if a.Topo.Count() <= 4 {
		t.Fatalf("job never outgrew one shard: %v", a.Topo)
	}
	if a.GrantShards() < 2 {
		t.Fatalf("allocation of %d procs spans %d shards, want >= 2", a.Topo.Count(), a.GrantShards())
	}
	if c.Free()+a.Topo.Count() != c.Total {
		t.Fatalf("accounting: free %d + held %d != %d", c.Free(), a.Topo.Count(), c.Total)
	}
}
