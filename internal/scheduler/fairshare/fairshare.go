// Package fairshare implements hierarchical multi-tenant arbitration for
// the ReSHAPE scheduler: tenant → priority → age. The tenant level is new —
// each tenant is entitled to a weighted share of the cluster's processors,
// and both *start order* (which tenant's queued job launches next) and
// *resize arbitration* (who may expand, who is drafted to shrink) are
// shaped by each tenant's deficit against that share. Below the tenant
// level nothing changes: within a tenant, jobs keep the queue's
// (priority, submission) order and resize decisions are delegated to the
// wrapped BenefitRanked arbiter, so PR 5's benefit ranking, coordinated
// shrinks and starvation aging all apply unchanged inside a tenant.
//
// Degeneracy contract: with a single active tenant every decision is the
// wrapped arbiter's verbatim and the start loop sees exactly the global
// queue head, so single-tenant workloads (the paper's W1/W2) run
// bit-identically to the bare BenefitRanked arbiter. This is pinned by
// TestFairshareSingleTenantBitIdentical in internal/experiments.
//
// Determinism contract: like every arbiter, FairShare must be a pure
// function of the cluster snapshot and its own configuration — decisions
// are replayed from the journal on recovery. Shares are therefore computed
// from the snapshot alone, weight sums are accumulated in sorted tenant
// order (float addition is not associative), and no map is ever ranged
// into an ordered result. The package is inside reshapelint's detcore
// scope, which enforces the wall-clock and map-order rules statically.
package fairshare

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/scheduler"
	"repro/internal/scheduler/arbiter"
)

// DefaultWeight is the share weight of any tenant not listed in Weights.
const DefaultWeight = 1.0

// FairShare is the tenant-aware arbiter. The zero value is ready to use:
// every tenant weighs DefaultWeight and within-tenant decisions fall to a
// zero BenefitRanked.
type FairShare struct {
	// Weights maps tenant name → share weight (> 0). A tenant's entitled
	// share of the cluster is Total·w/Σw over the tenants active in the
	// snapshot, so weights are relative, not absolute processor counts.
	// Missing (or non-positive) entries weigh DefaultWeight. The map is
	// configuration: set it before installing the arbiter and never
	// mutate it afterwards.
	Weights map[string]float64
	// Inner decides within a tenant (nil = zero BenefitRanked). Its
	// Predict/AgingSeconds/Policy knobs keep their PR 5/8 meaning.
	Inner *arbiter.BenefitRanked

	inner arbiter.BenefitRanked // backing store when Inner is nil
}

var (
	_ scheduler.Arbiter     = (*FairShare)(nil)
	_ scheduler.StartPicker = (*FairShare)(nil)
)

// New builds a fair-share arbiter over a fresh BenefitRanked with the
// given per-tenant weights (nil = every tenant equal).
func New(weights map[string]float64) *FairShare {
	return &FairShare{Weights: weights, Inner: &arbiter.BenefitRanked{}}
}

// Name identifies the arbiter.
func (a *FairShare) Name() string { return "fairshare" }

func (a *FairShare) delegate() *arbiter.BenefitRanked {
	if a.Inner != nil {
		return a.Inner
	}
	return &a.inner
}

// weight returns a tenant's configured share weight.
func (a *FairShare) weight(tenant string) float64 {
	if w, ok := a.Weights[tenant]; ok && w > 0 {
		return w
	}
	return DefaultWeight
}

// PickStart implements scheduler.StartPicker: among the per-tenant queue
// heads, start the job of the tenant with the smallest weighted usage
// (running processors divided by weight) — i.e. the largest deficit
// against its entitled share. Ties break by the queue's own order (higher
// priority, then earlier submission). If the chosen head does not fit the
// idle pool the round stalls (returns -1): the deficit tenant keeps its
// claim on the next processors to free, instead of the slot leaking to a
// better-fitting tenant — backfill, when enabled, may still use the idle
// remainder. With one tenant this is exactly the published FCFS head loop.
func (a *FairShare) PickStart(snap scheduler.StartSnapshot) int {
	usage := make(map[string]int)
	snap.Cluster.EachRunning(func(r scheduler.ContactView) bool {
		usage[r.Tenant] += r.Topo.Count()
		return true
	})
	best := -1
	var bestNorm float64
	for i, h := range snap.Heads {
		norm := float64(usage[h.Tenant]) / a.weight(h.Tenant)
		if best < 0 || norm < bestNorm ||
			(norm == bestNorm && headLess(h, snap.Heads[best])) {
			best, bestNorm = i, norm
		}
	}
	if best < 0 || snap.Heads[best].Need > snap.Idle {
		return -1
	}
	return best
}

// headLess orders queue heads the way the queue itself does: higher
// priority first, then earlier submission.
func headLess(a, b scheduler.QueuedView) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.ID < b.ID
}

// Decide implements scheduler.Arbiter. With one active tenant it is the
// wrapped arbiter verbatim. With several, the tenant level arbitrates
// first: a caller whose tenant holds more than its weighted share while
// an under-share tenant has a job waiting is drafted to give one rung
// back; a caller at or under its share decides via the wrapped arbiter,
// but an expansion that would push its tenant past its share is denied
// while a victim waits. Spare capacity stays work-conserving: with no
// under-share tenant waiting, expansion beyond the share is allowed.
func (a *FairShare) Decide(snap scheduler.ClusterSnapshot) scheduler.Decision {
	usage, share, multi := a.shares(snap)
	if !multi {
		return a.delegate().Decide(snap)
	}
	ct := snap.Caller.Tenant
	victim, pressed := victimTenant(snap, ct, usage, share)
	if pressed && float64(usage[ct]) > share[ct] {
		if snap.Caller.PendingFree > 0 {
			return scheduler.Decision{
				Action: scheduler.ActionNone,
				Reason: "fair-share: give-back already in flight",
			}
		}
		// One rung per contact: the shallowest revisitable configuration.
		// Convergence to the share is gradual by design — each contact
		// re-evaluates usage, so the drafting stops the moment the tenant
		// is back inside its entitlement.
		if pts := snap.Caller.Profile.ShrinkPoints(snap.Caller.Topo); len(pts) > 0 {
			return scheduler.Decision{
				Action: scheduler.ActionShrink,
				Target: pts[0],
				Reason: fmt.Sprintf("fair-share: tenant %q over weighted share while tenant %q waits under share", ct, victim),
			}
		}
		return scheduler.Decision{
			Action: scheduler.ActionNone,
			Reason: "fair-share: over share but no shrink point",
		}
	}
	d := a.delegate().Decide(snap)
	if d.Action == scheduler.ActionExpand && pressed {
		grown := usage[ct] + d.Target.Count() - snap.Caller.Topo.Count()
		if float64(grown) > share[ct] {
			return scheduler.Decision{
				Action: scheduler.ActionNone,
				Reason: fmt.Sprintf("fair-share cap: expansion would exceed tenant %q share while tenant %q waits", ct, victim),
			}
		}
	}
	return d
}

// shares computes per-tenant running usage and entitled shares from the
// snapshot. multi is false when at most one tenant is active (running or
// waiting), in which case the tenant level vanishes and usage/share are
// nil. Active tenants are collected in encounter order (running set in id
// order, then the queued window) and sorted, so the weight sum — and with
// it every share — is accumulated in a deterministic order.
func (a *FairShare) shares(snap scheduler.ClusterSnapshot) (usage map[string]int, share map[string]float64, multi bool) {
	usage = make(map[string]int)
	var active []string
	seen := make(map[string]bool)
	note := func(t string) {
		if !seen[t] {
			seen[t] = true
			active = append(active, t)
		}
	}
	note(snap.Caller.Tenant)
	snap.Cluster.EachRunning(func(r scheduler.ContactView) bool {
		usage[r.Tenant] += r.Topo.Count()
		note(r.Tenant)
		return true
	})
	for _, q := range snap.Queued {
		note(q.Tenant)
	}
	if len(active) <= 1 {
		return nil, nil, false
	}
	sort.Strings(active)
	var totalW float64
	for _, t := range active {
		totalW += a.weight(t)
	}
	share = make(map[string]float64, len(active))
	for _, t := range active {
		share[t] = float64(snap.Total) * a.weight(t) / totalW
	}
	return usage, share, true
}

// victimTenant scans the queued window in queue order for a job from a
// tenant other than the caller's that sits under its entitled share — the
// condition under which the tenant level overrides within-tenant logic.
func victimTenant(snap scheduler.ClusterSnapshot, caller string, usage map[string]int, share map[string]float64) (string, bool) {
	for _, q := range snap.Queued {
		if q.Tenant != caller && float64(usage[q.Tenant]) < share[q.Tenant] {
			return q.Tenant, true
		}
	}
	return "", false
}

// ParseWeights parses a reshaped-style weight list, "tenantA=3,tenantB=1".
// Tenant names may be empty (the default tenant: "=2"); weights must be
// positive numbers.
func ParseWeights(s string) (map[string]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	out := make(map[string]float64)
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("fairshare: weight %q is not tenant=weight", part)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("fairshare: tenant %q weight %q must be a positive number", name, val)
		}
		out[name] = w
	}
	return out, nil
}
