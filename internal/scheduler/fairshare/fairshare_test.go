package fairshare

import (
	"reflect"
	"testing"

	"repro/internal/grid"
	"repro/internal/scheduler"
	"repro/internal/scheduler/arbiter"
)

func topo(r, c int) grid.Topology { return grid.Topology{Rows: r, Cols: c} }

// fakeCluster implements scheduler.ClusterView over a fixed running set.
type fakeCluster []scheduler.ContactView

func (f fakeCluster) EachRunning(yield func(scheduler.ContactView) bool) {
	for _, v := range f {
		if !yield(v) {
			return
		}
	}
}

// prof builds a profile that has visited each topology once with the given
// iteration time.
func prof(visits ...struct {
	t    grid.Topology
	iter float64
}) *scheduler.Profile {
	p := scheduler.NewProfile()
	for _, v := range visits {
		p.RecordIteration(v.t, v.iter)
	}
	return p
}

func visit(t grid.Topology, iter float64) struct {
	t    grid.Topology
	iter float64
} {
	return struct {
		t    grid.Topology
		iter float64
	}{t, iter}
}

// TestSingleTenantDelegatesVerbatim pins the degeneracy contract at the
// unit level: with one active tenant, Decide is the wrapped BenefitRanked
// verbatim — same Action, Target and Reason. (The end-to-end W1/W2
// bit-identity gate lives in internal/experiments.)
func TestSingleTenantDelegatesVerbatim(t *testing.T) {
	mk := func() scheduler.ClusterSnapshot {
		caller := scheduler.ContactView{
			ID: 0, Topo: topo(2, 4),
			Chain:   []grid.Topology{topo(2, 2), topo(2, 4), topo(2, 8)},
			Profile: prof(visit(topo(2, 2), 100), visit(topo(2, 4), 60)),
		}
		return scheduler.ClusterSnapshot{
			Now: 50, Total: 36, Idle: 2,
			Caller:   caller,
			Queued:   []scheduler.QueuedView{{ID: 1, Need: 4, Wait: 10}},
			QueueLen: 1,
			Cluster:  fakeCluster{caller},
		}
	}
	fs := New(nil)
	bare := &arbiter.BenefitRanked{}
	got, want := fs.Decide(mk()), bare.Decide(mk())
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("single-tenant Decide diverged:\nfairshare: %+v\nbenefit:   %+v", got, want)
	}
}

func TestPickStartPrefersDeficitTenant(t *testing.T) {
	running := fakeCluster{
		{ID: 0, Tenant: "a", Topo: topo(2, 5)}, // a holds 10
		{ID: 1, Tenant: "b", Topo: topo(4, 5)}, // b holds 20
	}
	snap := scheduler.StartSnapshot{
		Now: 100, Total: 36, Idle: 6,
		Heads: []scheduler.QueuedView{
			{ID: 2, Tenant: "a", Need: 4},
			{ID: 3, Tenant: "b", Need: 4},
		},
		Cluster: running,
	}
	if got := New(nil).PickStart(snap); got != 0 {
		t.Fatalf("equal weights: picked %d, want tenant a (index 0)", got)
	}
	// Weighting a down to 1/4 flips the deficit: a's normalized usage is
	// 40, b's 20.
	if got := New(map[string]float64{"a": 0.25}).PickStart(snap); got != 1 {
		t.Fatalf("weighted: picked %d, want tenant b (index 1)", got)
	}
}

func TestPickStartSingleTenantMatchesFCFS(t *testing.T) {
	snap := scheduler.StartSnapshot{
		Now: 0, Total: 36, Idle: 8,
		Heads:   []scheduler.QueuedView{{ID: 0, Need: 4}},
		Cluster: fakeCluster{},
	}
	if got := New(nil).PickStart(snap); got != 0 {
		t.Fatalf("fitting head: picked %d, want 0", got)
	}
	snap.Heads[0].Need = 9
	if got := New(nil).PickStart(snap); got != -1 {
		t.Fatalf("blocked head: picked %d, want -1", got)
	}
}

// TestPickStartStallsForDeficitTenant: when the most-deficit tenant's head
// does not fit, the round stalls rather than handing the slot to a
// better-fitting tenant — the deficit tenant keeps its claim on the next
// processors to free.
func TestPickStartStallsForDeficitTenant(t *testing.T) {
	running := fakeCluster{{ID: 0, Tenant: "noisy", Topo: topo(4, 8)}}
	snap := scheduler.StartSnapshot{
		Now: 100, Total: 36, Idle: 4,
		Heads: []scheduler.QueuedView{
			{ID: 1, Tenant: "noisy", Need: 2},  // fits, but over-served
			{ID: 2, Tenant: "victim", Need: 8}, // deficit tenant, does not fit
		},
		Cluster: running,
	}
	if got := New(nil).PickStart(snap); got != -1 {
		t.Fatalf("picked %d, want -1 (stall for the deficit tenant)", got)
	}
}

// TestOverShareCallerDrafted: a caller whose tenant exceeds its weighted
// share while another tenant waits under share is told to give back one
// rung (its shallowest revisitable configuration).
func TestOverShareCallerDrafted(t *testing.T) {
	caller := scheduler.ContactView{
		ID: 0, Tenant: "noisy", Topo: topo(4, 6), // 24 of 36: over the 18 share
		Chain:   []grid.Topology{topo(2, 6), topo(4, 6), topo(6, 6)},
		Profile: prof(visit(topo(2, 6), 100), visit(topo(4, 6), 60)),
	}
	snap := scheduler.ClusterSnapshot{
		Now: 100, Total: 36, Idle: 12,
		Caller:   caller,
		Queued:   []scheduler.QueuedView{{ID: 1, Tenant: "victim", Need: 16, Wait: 5}},
		QueueLen: 1,
		Cluster:  fakeCluster{caller},
	}
	d := New(nil).Decide(snap)
	if d.Action != scheduler.ActionShrink || d.Target != topo(2, 6) {
		t.Fatalf("decision %+v, want shrink to 2x6", d)
	}
}

// TestUnderShareExpansionCapped: a priority-exempt caller may expand under
// the wrapped arbiter, but not past its tenant's share while a victim
// tenant waits.
func TestUnderShareExpansionCapped(t *testing.T) {
	caller := scheduler.ContactView{
		ID: 0, Tenant: "noisy", Priority: 1, Topo: topo(4, 4), // 16 of 36
		Chain:   []grid.Topology{topo(4, 4), topo(4, 5), topo(4, 8)},
		Profile: prof(visit(topo(4, 4), 100)),
	}
	other := scheduler.ContactView{ID: 1, Tenant: "victim", Topo: topo(4, 4), Profile: scheduler.NewProfile()}
	snap := scheduler.ClusterSnapshot{
		Now: 100, Total: 36, Idle: 4,
		Caller:   caller,
		Queued:   []scheduler.QueuedView{{ID: 2, Tenant: "victim", Need: 4, Wait: 5}},
		QueueLen: 1,
		Cluster:  fakeCluster{caller, other},
	}
	// Sanity: the wrapped arbiter alone would let the exempt caller probe
	// its next rung.
	if d := (&arbiter.BenefitRanked{}).Decide(snap); d.Action != scheduler.ActionExpand {
		t.Fatalf("setup: bare arbiter decided %+v, want expand", d)
	}
	d := New(nil).Decide(snap)
	if d.Action != scheduler.ActionNone {
		t.Fatalf("decision %+v, want none (share cap)", d)
	}
}

func TestParseWeights(t *testing.T) {
	w, err := ParseWeights(" a=3, b=1.5 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 2 || w["a"] != 3 || w["b"] != 1.5 {
		t.Fatalf("weights %v", w)
	}
	if w, err := ParseWeights(""); err != nil || w != nil {
		t.Fatalf("empty: %v %v", w, err)
	}
	for _, bad := range []string{"a", "a=0", "a=-1", "a=x"} {
		if _, err := ParseWeights(bad); err == nil {
			t.Fatalf("ParseWeights(%q) accepted", bad)
		}
	}
}
