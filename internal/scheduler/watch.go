package scheduler

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/grid"
)

// AllJobs is the Watch jobID sentinel selecting every job's events.
const AllJobs = -1

// JobInfo is a point-in-time job snapshot, the typed replacement for the
// ad-hoc status tuples the v1 wire protocol leaked to callers.
type JobInfo struct {
	ID       int
	Name     string
	App      string
	Tenant   string
	State    string
	Priority int
	Topo     grid.Topology
	Procs    int
	Submit   float64
	Start    float64
	End      float64
}

// ClusterStatus is the scheduler snapshot returned by Status: pool
// occupancy, queue pressure, every job in submission order, and the
// per-tenant usage rollup (ascending tenant name).
type ClusterStatus struct {
	Total    int
	Free     int
	Busy     int
	QueueLen int
	Jobs     []JobInfo
	Tenants  []TenantUsage
}

// TenantUsage aggregates one tenant's live footprint: running and queued
// job counts plus the processors currently allocated to it. Done jobs do
// not appear; a tenant with no live jobs has no row.
type TenantUsage struct {
	Tenant  string
	Running int
	Queued  int
	Procs   int
}

// JobEvent is one job-state transition streamed to watchers: the alloc
// trace of Figures 4(a)/5(a) delivered as server push instead of a polled
// snapshot. Seq increases by one per event on a given server, so clients
// can detect gaps after a reconnect.
type JobEvent struct {
	Seq   uint64
	Time  float64
	JobID int
	Job   string
	Kind  string // "submit", "start", "expand", "shrink", "end", "error"
	Topo  grid.Topology
	Busy  int
	Free  int
}

// Subscription is a live job-event stream. C is closed when the
// subscription ends (context cancelled, Cancel called, or — for remote
// subscriptions — the client shut down). Both the in-process Server and
// the wire clients hand out the same type, so watch-driven code is
// transport-agnostic.
type Subscription struct {
	// C delivers events in Seq order. Slow consumers lose events rather
	// than stalling the scheduler; Dropped counts the losses.
	C <-chan JobEvent

	cancel  func()
	dropped *atomic.Uint64
}

// NewSubscription builds a subscription around an event channel. cancel is
// invoked (once) by Cancel. It is exported for transport packages that
// implement Watch remotely; applications only consume subscriptions.
func NewSubscription(c <-chan JobEvent, cancel func()) *Subscription {
	return &Subscription{C: c, cancel: cancel, dropped: new(atomic.Uint64)}
}

// Cancel ends the subscription; C is closed once in-flight events drain.
func (s *Subscription) Cancel() {
	if s.cancel != nil {
		s.cancel()
	}
}

// Dropped reports how many events were discarded because the consumer fell
// behind the event channel's buffer.
func (s *Subscription) Dropped() uint64 {
	if s.dropped == nil {
		return 0
	}
	return s.dropped.Load()
}

// NoteDrop records a lost event. It is called by publishers (the server
// broker and the wire transports), not consumers.
func (s *Subscription) NoteDrop() { s.dropped.Add(1) }

// subscriber is the server side of one Watch call.
type subscriber struct {
	jobID int // AllJobs or a specific job
	ch    chan JobEvent
	sub   *Subscription
}

// watchBuffer is the per-subscription channel depth. A watcher that lags
// more than this many events behind starts losing events (counted on its
// Subscription) instead of blocking the scheduler lock.
const watchBuffer = 256

// Status returns a typed snapshot of the scheduler. The context is
// accepted for interface uniformity with remote schedulers; the in-process
// call never blocks.
func (s *Server) Status(ctx context.Context) (ClusterStatus, error) {
	if err := ctx.Err(); err != nil {
		return ClusterStatus{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := ClusterStatus{
		Total:    s.core.Total,
		Free:     s.core.Free(),
		Busy:     s.core.Busy(),
		QueueLen: s.core.QueueLen(),
	}
	// usage indexes st.Tenants by tenant name; rows are created in job-id
	// order and sorted by name afterwards, so the rollup never ranges a map.
	usage := make(map[string]int)
	for _, j := range s.core.Jobs() {
		procs := 0
		if j.State == Running {
			procs = j.Topo.Count()
		}
		st.Jobs = append(st.Jobs, JobInfo{
			ID: j.ID, Name: j.Spec.Name, App: j.Spec.App, Tenant: j.Spec.Tenant,
			State: j.State.String(), Priority: j.Spec.Priority, Topo: j.Topo,
			Procs: procs, Submit: j.SubmitTime, Start: j.StartTime, End: j.EndTime,
		})
		if j.State == Done {
			continue
		}
		idx, ok := usage[j.Spec.Tenant]
		if !ok {
			idx = len(st.Tenants)
			usage[j.Spec.Tenant] = idx
			st.Tenants = append(st.Tenants, TenantUsage{Tenant: j.Spec.Tenant})
		}
		u := &st.Tenants[idx]
		if j.State == Running {
			u.Running++
			u.Procs += j.Topo.Count()
		} else {
			u.Queued++
		}
	}
	sort.Slice(st.Tenants, func(i, k int) bool { return st.Tenants[i].Tenant < st.Tenants[k].Tenant })
	return st, nil
}

// Watch subscribes to job-state transitions. jobID selects one job, or
// AllJobs for the whole cluster. Events already recorded before the call
// are not replayed; the stream starts with the next transition. The
// subscription ends when ctx is cancelled or Cancel is called.
//
// Watch requires the core's allocation trace (the default; see
// Core.DisableTrace).
func (s *Server) Watch(ctx context.Context, jobID int) (*Subscription, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ch := make(chan JobEvent, watchBuffer)
	done := make(chan struct{})
	var once sync.Once
	sub := NewSubscription(ch, func() { once.Do(func() { close(done) }) })
	// The subscriber must be fully initialized before it is published to
	// the broker: publishLocked reads w.sub under s.mu.
	w := &subscriber{jobID: jobID, ch: ch, sub: sub}

	s.mu.Lock()
	// Catch the broker up so the new subscriber doesn't replay history.
	s.publishLocked()
	id := s.nextSub
	s.nextSub++
	if s.subs == nil {
		s.subs = make(map[int]*subscriber)
	}
	s.subs[id] = w
	s.mu.Unlock()
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
		s.mu.Lock()
		delete(s.subs, id)
		s.mu.Unlock()
		close(ch)
	}()
	return sub, nil
}

// Subscribers reports the number of live watch subscriptions — broker
// observability for operators and for tests that must know a fleet of
// watchers has finished registering before publishing events.
func (s *Server) Subscribers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// publishLocked fans newly recorded core events out to subscribers. It
// must run with s.mu held; every mutating Server operation calls it after
// touching the core.
func (s *Server) publishLocked() {
	events := s.core.Events
	if s.pubIdx >= len(events) {
		return
	}
	for _, e := range events[s.pubIdx:] {
		ev := JobEvent{
			Seq:   s.seq.Add(1),
			Time:  e.Time,
			JobID: e.JobID,
			Job:   e.Job,
			Kind:  e.Kind,
			Topo:  e.Topo,
			Busy:  e.Busy,
			Free:  s.core.Total - e.Busy,
		}
		for _, w := range s.subs {
			if w.jobID != AllJobs && w.jobID != e.JobID {
				continue
			}
			select {
			case w.ch <- ev:
			default:
				w.sub.NoteDrop()
			}
		}
	}
	s.pubIdx = len(events)
}
