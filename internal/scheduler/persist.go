package scheduler

import (
	"fmt"

	"repro/internal/grid"
)

// This file is the snapshot side of the durable control plane: CoreState is
// a self-contained, serializable image of the Core's scheduling state, deep
// enough to resume from without replaying the journal from genesis. The
// allocation-event trace is deliberately excluded — a recovered core starts
// with an empty trace, and watch-stream continuity is carried by the
// Server's event sequence number, which the snapshot owner persists
// alongside the CoreState (see internal/durability).

// PersistedJob is one job's serializable image.
type PersistedJob struct {
	ID    int
	Spec  JobSpec
	State JobState
	Topo  grid.Topology

	SubmitTime float64
	StartTime  float64
	EndTime    float64

	// PendingFree is an in-flight shrink's give-back (released at the next
	// ResizeComplete); ResizeFrom the pre-resize configuration awaiting its
	// redistribution-cost report.
	PendingFree int
	ResizeFrom  grid.Topology

	Profile *Profile
}

// CoreState is a serializable snapshot of the scheduler state machine.
type CoreState struct {
	Total    int
	Shards   int
	Backfill bool
	NextID   int

	// Busy-time integral (utilization accounting survives recovery).
	BusySeconds  float64
	LastBusy     int
	LastBusyTime float64

	// Jobs in ascending id order.
	Jobs []PersistedJob
}

// PersistState captures the core's current state. The returned CoreState
// shares nothing with the live core (profiles are deep-copied), so the
// caller may serialize it after the core resumes mutating.
func (c *Core) PersistState() *CoreState {
	st := &CoreState{
		Total:        c.Total,
		Shards:       c.pool.NumShards(),
		Backfill:     c.Backfill,
		NextID:       c.nextID,
		BusySeconds:  c.busySeconds,
		LastBusy:     c.lastBusy,
		LastBusyTime: c.lastBusyTime,
		Jobs:         make([]PersistedJob, 0, len(c.jobs)),
	}
	for id := 0; id < c.nextID; id++ {
		j, ok := c.jobs[id]
		if !ok {
			continue
		}
		st.Jobs = append(st.Jobs, PersistedJob{
			ID: j.ID, Spec: j.Spec, State: j.State, Topo: j.Topo,
			SubmitTime: j.SubmitTime, StartTime: j.StartTime, EndTime: j.EndTime,
			PendingFree: j.pendingFree, ResizeFrom: j.resizeFrom,
			Profile: cloneProfile(j.Profile),
		})
	}
	return st
}

// cloneProfile deep-copies a performance profile.
func cloneProfile(p *Profile) *Profile {
	if p == nil {
		return NewProfile()
	}
	out := &Profile{
		Visits: make([]Visit, len(p.Visits)),
		Redist: make(map[string]float64, len(p.Redist)),
	}
	for i, v := range p.Visits {
		out.Visits[i] = Visit{Topo: v.Topo, IterTimes: append([]float64(nil), v.IterTimes...)}
	}
	for k, v := range p.Redist {
		out.Redist[k] = v
	}
	return out
}

// NewCoreFromState rebuilds a Core from a snapshot: queued jobs re-enter
// the wait queue in their original head order (the queue's total order is
// (priority, id), both persisted), running jobs re-reserve their
// processors from a fresh pool, and the busy-time integral resumes where
// it left off. The pool's per-shard layout is rebuilt from scratch, so a
// restored grant may span different shards than the original — allocation
// *counts* (and therefore every scheduling decision) are unaffected, since
// expansion steals across shards whenever the pool as a whole has room.
//
// Policy, arbiter and journal hooks are configuration, not state: the
// caller re-installs them (an arbiter's transient plan state, if any, is
// rebuilt at the next contact).
func NewCoreFromState(st *CoreState) (*Core, error) {
	if st.Total <= 0 || st.Shards <= 0 {
		return nil, fmt.Errorf("scheduler: restore: invalid cluster shape %d procs / %d shards", st.Total, st.Shards)
	}
	c := NewCoreSharded(st.Total, st.Shards, st.Backfill)
	c.nextID = st.NextID
	c.busySeconds = st.BusySeconds
	c.lastBusy = st.LastBusy
	c.lastBusyTime = st.LastBusyTime
	lastID := -1
	for _, pj := range st.Jobs {
		if pj.ID <= lastID || pj.ID >= st.NextID {
			return nil, fmt.Errorf("scheduler: restore: job id %d out of order (last %d, next-id %d)",
				pj.ID, lastID, st.NextID)
		}
		lastID = pj.ID
		j := &Job{
			ID: pj.ID, Spec: pj.Spec, State: pj.State, Topo: pj.Topo,
			SubmitTime: pj.SubmitTime, StartTime: pj.StartTime, EndTime: pj.EndTime,
			pendingFree: pj.PendingFree, resizeFrom: pj.ResizeFrom,
			Profile: pj.Profile,
		}
		if j.Profile == nil {
			j.Profile = NewProfile()
		}
		if j.Profile.Redist == nil {
			// gob decodes an empty map as nil.
			j.Profile.Redist = make(map[string]float64)
		}
		c.jobs[j.ID] = j
		switch pj.State {
		case Queued:
			if !j.Spec.InitialTopo.IsValid() {
				return nil, fmt.Errorf("scheduler: restore: queued job %d has invalid topology", j.ID)
			}
			c.queue.push(j)
		case Running:
			need := j.Topo.Count() + j.pendingFree
			if !j.Topo.IsValid() || need <= 0 {
				return nil, fmt.Errorf("scheduler: restore: running job %d has invalid allocation", j.ID)
			}
			g, ok := c.pool.Alloc(need)
			if !ok {
				return nil, fmt.Errorf("scheduler: restore: running jobs overcommit the pool at job %d (%d procs, %d free)",
					j.ID, need, c.pool.Free())
			}
			j.grant = g
			c.running = insertRunning(c.running, j)
		case Done:
			// Nothing to index.
		default:
			return nil, fmt.Errorf("scheduler: restore: job %d has unknown state %d", j.ID, pj.State)
		}
	}
	return c, nil
}
