package scheduler

import (
	"math/rand"
	"sync"
	"testing"
)

func TestPoolPartitionsDeterministically(t *testing.T) {
	p := NewPool(38, 4)
	// 38 across 4 shards: remainder goes to the lowest-indexed shards.
	if p.Total() != 38 || p.Free() != 38 || p.NumShards() != 4 {
		t.Fatalf("total %d free %d shards %d", p.Total(), p.Free(), p.NumShards())
	}
	want := []int{10, 10, 9, 9}
	for i, w := range want {
		if p.shards[i].free != w {
			t.Fatalf("shard %d holds %d, want %d", i, p.shards[i].free, w)
		}
	}
}

func TestPoolSingleShardAllocation(t *testing.T) {
	p := NewPool(16, 4) // 4 per shard
	g, ok := p.Alloc(3)
	if !ok || g.Count() != 3 {
		t.Fatalf("alloc: %v %d", ok, g.Count())
	}
	if g.Shards() != 1 {
		t.Fatalf("a request fitting one shard must not fragment: spans %d", g.Shards())
	}
	if p.Free() != 13 {
		t.Fatalf("free %d", p.Free())
	}
	p.ReleaseAll(&g)
	if p.Free() != 16 || g.Count() != 0 {
		t.Fatalf("release: free %d grant %d", p.Free(), g.Count())
	}
}

// TestPoolCrossShardExpansion: a request larger than any single shard's
// free capacity must steal across shards, and expansion into an existing
// grant must do the same.
func TestPoolCrossShardExpansion(t *testing.T) {
	p := NewPool(16, 4)
	g, ok := p.Alloc(10) // no shard holds 10: steal across three shards
	if !ok || g.Count() != 10 {
		t.Fatalf("alloc: %v %d", ok, g.Count())
	}
	if g.Shards() < 3 {
		t.Fatalf("10 procs from 4-proc shards must span >= 3, got %d", g.Shards())
	}
	// Expand by 6: all remaining capacity, spread over the pool.
	if !p.AllocInto(&g, 6) {
		t.Fatal("expansion failed with exactly enough capacity")
	}
	if g.Count() != 16 || p.Free() != 0 {
		t.Fatalf("grant %d free %d", g.Count(), p.Free())
	}
	// Over-subscription must fail cleanly without corrupting state.
	if p.AllocInto(&g, 1) {
		t.Fatal("alloc succeeded on an empty pool")
	}
	if g.Count() != 16 || p.Free() != 0 {
		t.Fatalf("failed alloc mutated state: grant %d free %d", g.Count(), p.Free())
	}
	p.ReleaseAll(&g)
	if p.Free() != 16 {
		t.Fatalf("free %d after release", p.Free())
	}
}

func TestPoolPartialRelease(t *testing.T) {
	p := NewPool(12, 3)
	g, _ := p.Alloc(9) // spans 3 shards (4+4+1 or similar)
	if err := p.Release(&g, 5); err != nil {
		t.Fatal(err)
	}
	if g.Count() != 4 || p.Free() != 8 {
		t.Fatalf("grant %d free %d", g.Count(), p.Free())
	}
	if err := p.Release(&g, 5); err == nil {
		t.Fatal("released more than the grant holds")
	}
	p.ReleaseAll(&g)
	if p.Free() != 12 {
		t.Fatalf("free %d", p.Free())
	}
}

// TestPoolConcurrentChurn hammers the pool from many goroutines and then
// checks conservation: after every grant is released the pool must be whole
// and no shard may go negative.
func TestPoolConcurrentChurn(t *testing.T) {
	const total, shards, workers, iters = 256, 8, 16, 2000
	p := NewPool(total, shards)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				n := 1 + rng.Intn(total/workers)
				g, ok := p.Alloc(n)
				if !ok {
					continue
				}
				if g.Count() != n {
					t.Errorf("grant %d, want %d", g.Count(), n)
					return
				}
				if rng.Intn(2) == 0 {
					p.AllocInto(&g, 1+rng.Intn(4))
				}
				if k := g.Count(); k > 1 {
					if err := p.Release(&g, 1+rng.Intn(k-1)); err != nil {
						t.Error(err)
						return
					}
				}
				p.ReleaseAll(&g)
			}
		}(int64(w))
	}
	wg.Wait()
	if p.Free() != total {
		t.Fatalf("pool leaked: free %d of %d", p.Free(), total)
	}
	sum := 0
	for i := range p.shards {
		if p.shards[i].free < 0 {
			t.Fatalf("shard %d negative: %d", i, p.shards[i].free)
		}
		sum += p.shards[i].free
	}
	if sum != total {
		t.Fatalf("shard sum %d != total %d", sum, total)
	}
}

func TestDefaultShards(t *testing.T) {
	cases := []struct{ total, want int }{
		{0, 1}, {1, 1}, {36, 1}, {64, 1}, {128, 2}, {1024, 16}, {100000, 16},
	}
	for _, c := range cases {
		if got := DefaultShards(c.total); got != c.want {
			t.Errorf("DefaultShards(%d) = %d, want %d", c.total, got, c.want)
		}
	}
}

// TestGrantReuseAcrossPools is the regression test for the AllocInto index
// panic: a zero-value grant, or one that last lived against a pool with
// fewer shards, must be usable against any pool.
func TestGrantReuseAcrossPools(t *testing.T) {
	small := NewPool(8, 2)
	big := NewPool(64, 8)

	// Grant shaped by the 2-shard pool, reused against the 8-shard pool.
	g, ok := small.Alloc(4)
	if !ok {
		t.Fatal("small alloc failed")
	}
	small.ReleaseAll(&g)
	if !big.AllocInto(&g, 10) {
		t.Fatal("AllocInto with a short parts slice failed")
	}
	if g.Count() != 10 {
		t.Fatalf("grant holds %d, want 10", g.Count())
	}
	big.ReleaseAll(&g)
	if big.Free() != 64 || small.Free() != 8 {
		t.Fatalf("pools leaked: big %d small %d", big.Free(), small.Free())
	}

	// Zero-value grant straight into a sharded pool.
	var g2 Grant
	if !big.AllocInto(&g2, 3) {
		t.Fatal("AllocInto into zero-value grant failed")
	}
	big.ReleaseAll(&g2)

	// Live holdings must not hop pools: silently adopting them would credit
	// one pool's processors to another.
	g4, ok := small.Alloc(2)
	if !ok {
		t.Fatal("small alloc failed")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AllocInto accepted live holdings from another pool")
			}
		}()
		big.AllocInto(&g4, 1)
	}()
	if err := big.Release(&g4, 1); err == nil {
		t.Error("Release accepted a live grant from another pool")
	}
	small.ReleaseAll(&g4)
	if small.Free() != 8 {
		t.Fatalf("small pool leaked: free %d of 8", small.Free())
	}

	// Holdings on shards a pool does not have cannot be returned there.
	g3 := Grant{parts: []int{0, 0, 0, 3}}
	if err := small.Release(&g3, 1); err == nil {
		t.Error("Release accepted a grant with holdings beyond the pool's shards")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ReleaseAll should panic on holdings beyond the pool's shards")
			}
		}()
		small.ReleaseAll(&g3)
	}()
}

// TestPoolConcurrentAllocIntoRelease drives Alloc, AllocInto and Release
// from many goroutines at once (run under -race in CI), including grants
// hopping between differently sharded pools mid-flight.
func TestPoolConcurrentAllocIntoRelease(t *testing.T) {
	const workers, iters = 12, 1500
	a := NewPool(192, 6)
	b := NewPool(96, 2)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var g Grant
			for i := 0; i < iters; i++ {
				p := a
				if rng.Intn(2) == 0 {
					p = b
				}
				if !p.AllocInto(&g, 1+rng.Intn(8)) {
					continue
				}
				if rng.Intn(2) == 0 {
					p.AllocInto(&g, 1+rng.Intn(4))
				}
				if k := g.Count(); k > 1 && rng.Intn(2) == 0 {
					if err := p.Release(&g, 1+rng.Intn(k-1)); err != nil {
						t.Error(err)
						return
					}
				}
				p.ReleaseAll(&g)
			}
		}(int64(w + 100))
	}
	wg.Wait()
	if a.Free() != 192 || b.Free() != 96 {
		t.Fatalf("pools leaked: a %d/192, b %d/96", a.Free(), b.Free())
	}
}
