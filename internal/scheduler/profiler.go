package scheduler

import (
	"fmt"
	"sort"

	"repro/internal/grid"
)

// Visit is one contiguous stay of a job on a particular processor
// configuration, with the iteration times observed there.
type Visit struct {
	Topo      grid.Topology
	IterTimes []float64
}

// Last returns the most recent iteration time of the visit (0 if none).
func (v *Visit) Last() float64 {
	if len(v.IterTimes) == 0 {
		return 0
	}
	return v.IterTimes[len(v.IterTimes)-1]
}

// Mean returns the mean iteration time of the visit (0 if none).
func (v *Visit) Mean() float64 {
	if len(v.IterTimes) == 0 {
		return 0
	}
	s := 0.0
	for _, t := range v.IterTimes {
		s += t
	}
	return s / float64(len(v.IterTimes))
}

// Profile is the Performance Profiler's per-job record: the chronological
// list of configurations the job has run on (with observed iteration times)
// and the redistribution costs measured between configurations. Shrink
// points — configurations the job may legally shrink back to — are exactly
// the previously visited smaller configurations.
type Profile struct {
	Visits []Visit
	Redist map[string]float64 // "RxC->RxC" -> last observed redistribution seconds
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{Redist: make(map[string]float64)}
}

// RecordIteration appends an iteration time observed on topo, opening a new
// visit if the configuration changed.
func (p *Profile) RecordIteration(topo grid.Topology, iterTime float64) {
	n := len(p.Visits)
	if n == 0 || p.Visits[n-1].Topo != topo {
		p.Visits = append(p.Visits, Visit{Topo: topo})
		n++
	}
	p.Visits[n-1].IterTimes = append(p.Visits[n-1].IterTimes, iterTime)
}

// RecordRedist stores an observed redistribution cost between two
// configurations.
func (p *Profile) RecordRedist(from, to grid.Topology, seconds float64) {
	p.Redist[redistKey(from, to)] = seconds
}

// RedistCost returns the recorded redistribution cost between two
// configurations, if any.
func (p *Profile) RedistCost(from, to grid.Topology) (float64, bool) {
	v, ok := p.Redist[redistKey(from, to)]
	return v, ok
}

func redistKey(from, to grid.Topology) string {
	return fmt.Sprintf("%s->%s", from, to)
}

// Current returns the visit the job is currently in, or nil before the
// first recorded iteration.
func (p *Profile) Current() *Visit {
	if len(p.Visits) == 0 {
		return nil
	}
	return &p.Visits[len(p.Visits)-1]
}

// LastExpansion locates the most recent pair of consecutive visits in which
// the processor count grew, returning (before, after, true). This is the
// transition the Remap Scheduler's improvement test inspects.
func (p *Profile) LastExpansion() (before, after *Visit, ok bool) {
	for i := len(p.Visits) - 1; i > 0; i-- {
		if p.Visits[i].Topo.Count() > p.Visits[i-1].Topo.Count() {
			return &p.Visits[i-1], &p.Visits[i], true
		}
	}
	return nil, nil, false
}

// EverExpanded reports whether the job has ever grown its processor set.
func (p *Profile) EverExpanded() bool {
	_, _, ok := p.LastExpansion()
	return ok
}

// ShrinkPoints returns the distinct previously visited configurations
// strictly smaller than cur, sorted by descending processor count (the
// least-damaging shrink first). Applications can only shrink to
// configurations on which they have previously run.
func (p *Profile) ShrinkPoints(cur grid.Topology) []grid.Topology {
	// Deduplicate by linear scan over the output: a job visits a handful of
	// chain configurations, so this beats allocating a map per call (the
	// published policy asks at every queue-pressure contact). The first-seen
	// order feeding sort.Slice is identical to the map-guarded version, so
	// equal-Count ties sort the same.
	var out []grid.Topology
	for _, v := range p.Visits {
		if v.Topo.Count() >= cur.Count() {
			continue
		}
		dup := false
		for _, t := range out {
			if t == v.Topo {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, v.Topo)
		}
	}
	if len(out) > 1 {
		sort.Slice(out, func(i, j int) bool { return out[i].Count() > out[j].Count() })
	}
	return out
}

// TimeAt returns the most recent iteration time the job achieved on the
// given configuration, scanning visits from newest to oldest.
func (p *Profile) TimeAt(topo grid.Topology) (float64, bool) {
	for i := len(p.Visits) - 1; i >= 0; i-- {
		if p.Visits[i].Topo == topo && len(p.Visits[i].IterTimes) > 0 {
			return p.Visits[i].Last(), true
		}
	}
	return 0, false
}
