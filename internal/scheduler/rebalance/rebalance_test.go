package rebalance

import (
	"reflect"
	"testing"

	"repro/internal/grid"
	"repro/internal/scheduler"
)

// fakeCluster materializes a fixed running-job set as a ClusterView.
type fakeCluster struct {
	views []scheduler.ContactView
}

func (f fakeCluster) EachRunning(yield func(scheduler.ContactView) bool) {
	for _, v := range f.views {
		if !yield(v) {
			return
		}
	}
}

// runningJob builds a ContactView with a profile holding one visit per
// (procs, seconds) pair, in order; the last pair is the current
// configuration. All topologies are 1D rows.
func runningJob(id, prio int, chain []int, visits [][2]float64, remIters int) scheduler.ContactView {
	p := scheduler.NewProfile()
	var topo grid.Topology
	for _, v := range visits {
		topo = grid.Row1D(int(v[0]))
		p.RecordIteration(topo, v[1])
	}
	var ch []grid.Topology
	for _, n := range chain {
		ch = append(ch, grid.Row1D(n))
	}
	return scheduler.ContactView{
		ID: id, Priority: prio, Topo: topo, Chain: ch, Profile: p,
		RemainingIters: remIters,
	}
}

func snapOf(idle, total int, queued []scheduler.QueuedView, views ...scheduler.ContactView) scheduler.ClusterSnapshot {
	return scheduler.ClusterSnapshot{
		Now:      100,
		Total:    total,
		Idle:     idle,
		Caller:   scheduler.ContactView{ID: -1},
		Queued:   queued,
		QueueLen: len(queued),
		Cluster:  fakeCluster{views: views},
	}
}

// TestPlanExpandsBestPerProc: two jobs compete for too few idle
// processors; the one with the higher predicted gain per processor wins
// the budget and the other gets nothing.
func TestPlanExpandsBestPerProc(t *testing.T) {
	// Job 1: strongly scalable (T ~ 64/p), next rung 8 -> 16 saves
	// 4 s/iter over 8 procs = 0.5/proc, 100 iters left.
	j1 := runningJob(1, 1, []int{4, 8, 16, 32}, [][2]float64{{4, 16}, {8, 8}}, 100)
	// Job 2: shallow curve (T ~ 2 + 16/p), 8 -> 16 saves 1 s/iter.
	j2 := runningJob(2, 1, []int{4, 8, 16, 32}, [][2]float64{{4, 6}, {8, 4}}, 100)

	r := New(nil)
	r.Rebalance(snapOf(8, 64, nil, j1, j2))

	ds := r.Directives()
	if len(ds) != 1 {
		t.Fatalf("want exactly one directive (budget 8), got %+v", ds)
	}
	if ds[0].JobID != 1 || !ds[0].Expand() || ds[0].To != grid.Row1D(16) {
		t.Fatalf("want job 1 expand to 16x1, got %+v", ds[0])
	}
	if ds[0].Gain <= 0 {
		t.Fatalf("emitted directive with non-positive gain: %+v", ds[0])
	}
}

// TestPlanJumpsMultipleRungs: with ample budget and a curve fitted from
// three visits, the planner sends a job several chain rungs ahead in one
// directive — the model-guided jump one-step probing cannot make.
func TestPlanJumpsMultipleRungs(t *testing.T) {
	// T(p) = 1 + 96/p measured at 4, 8, 16; rungs continue 32, 64.
	j := runningJob(1, 1, []int{4, 8, 16, 32, 64}, [][2]float64{{4, 25}, {8, 13}, {16, 7}}, 50)
	r := New(nil)
	r.Rebalance(snapOf(64, 128, nil, j))

	ds := r.Directives()
	if len(ds) != 1 || ds[0].To != grid.Row1D(64) {
		t.Fatalf("want a single jump to 64x1, got %+v", ds)
	}
}

// TestPlanShrinksPastKnee: a job measured slower on more processors has
// its knee below the current allocation; the planner shrinks it back to
// the faster visited configuration even with an empty queue.
func TestPlanShrinksPastKnee(t *testing.T) {
	// 16 procs were measured slower than 8: contention dominates.
	j := runningJob(1, 1, []int{4, 8, 16}, [][2]float64{{4, 10}, {8, 7}, {16, 9}}, 40)
	r := New(nil)
	r.Rebalance(snapOf(0, 32, nil, j))

	ds := r.Directives()
	if len(ds) != 1 || ds[0].Expand() {
		t.Fatalf("want one shrink directive, got %+v", ds)
	}
	if ds[0].To != grid.Row1D(8) {
		t.Fatalf("want shrink to the faster visited 8x1, got %+v", ds[0])
	}
}

// TestPlanReservesQueueHead: the queue head's processor need is carved
// out of the expansion budget, so an expansion that would fit the raw
// idle pool is suppressed when the head needs those processors.
func TestPlanReservesQueueHead(t *testing.T) {
	j := runningJob(1, 1, []int{4, 8, 16}, [][2]float64{{4, 16}, {8, 8}}, 100)
	head := []scheduler.QueuedView{{ID: 9, Priority: 1, Need: 8, Wait: 5}}

	r := New(nil)
	r.Rebalance(snapOf(8, 32, head, j)) // idle 8, head needs all 8
	if ds := r.Directives(); len(ds) != 0 {
		t.Fatalf("expansion must be suppressed for the queue head, got %+v", ds)
	}

	r.Rebalance(snapOf(16, 32, head, j)) // idle 16: 8 reserved, 8 to spend
	ds := r.Directives()
	if len(ds) != 1 || ds[0].To != grid.Row1D(16) {
		t.Fatalf("want expansion from the surplus beyond the head's need, got %+v", ds)
	}
}

// TestPlanChargesRedistCost: a measured redistribution cost larger than
// the predicted iteration savings kills the directive.
func TestPlanChargesRedistCost(t *testing.T) {
	j := runningJob(1, 1, []int{4, 8, 16}, [][2]float64{{4, 16}, {8, 8}}, 3)
	// 8 -> 16 saves 4 s/iter * 3 iters = 12 s; make the move cost 50 s.
	j.Profile.RecordRedist(grid.Row1D(8), grid.Row1D(16), 50)

	r := New(nil)
	r.Rebalance(snapOf(16, 64, nil, j))
	if ds := r.Directives(); len(ds) != 0 {
		t.Fatalf("directive must not survive a dominating redist cost, got %+v", ds)
	}

	// The RedistCost hook is consulted for unmeasured moves the same way.
	j2 := runningJob(2, 1, []int{4, 8, 16}, [][2]float64{{4, 16}, {8, 8}}, 3)
	r2 := New(nil)
	r2.RedistCost = func(jobID int, from, to grid.Topology) (float64, bool) { return 50, true }
	r2.Rebalance(snapOf(16, 64, nil, j2))
	if ds := r2.Directives(); len(ds) != 0 {
		t.Fatalf("hook-estimated redist cost must gate too, got %+v", ds)
	}
}

// TestPlanSkipsMidResize: a job with an in-flight shrink (PendingFree >
// 0) is about to change topology and must not be planned over.
func TestPlanSkipsMidResize(t *testing.T) {
	j := runningJob(1, 1, []int{4, 8, 16}, [][2]float64{{4, 16}, {8, 8}}, 100)
	j.PendingFree = 4
	r := New(nil)
	r.Rebalance(snapOf(16, 64, nil, j))
	if ds := r.Directives(); len(ds) != 0 {
		t.Fatalf("mid-resize job must be skipped, got %+v", ds)
	}
}

// TestDecideDeliversDirective: the caller's directive is consumed at its
// contact; a second contact falls through to the reactive arbiter.
func TestDecideDeliversDirective(t *testing.T) {
	j := runningJob(1, 1, []int{4, 8, 16}, [][2]float64{{4, 16}, {8, 8}}, 100)
	r := New(nil)
	r.Rebalance(snapOf(16, 64, nil, j))
	if len(r.Directives()) != 1 {
		t.Fatalf("setup: want one directive, got %+v", r.Directives())
	}

	snap := snapOf(16, 64, nil, j)
	snap.Caller = j
	d := r.Decide(snap)
	if d.Action != scheduler.ActionExpand || d.Target != grid.Row1D(16) {
		t.Fatalf("want planned expansion to 16x1, got %+v", d)
	}
	if len(r.Directives()) != 0 {
		t.Fatalf("directive must be consumed on delivery, got %+v", r.Directives())
	}
}

// TestDecideDropsStaleDirective: a caller whose topology no longer
// matches the plan's From gets the reactive decision and the directive
// is retired.
func TestDecideDropsStaleDirective(t *testing.T) {
	j := runningJob(1, 1, []int{4, 8, 16}, [][2]float64{{4, 16}, {8, 8}}, 100)
	r := New(nil)
	r.Rebalance(snapOf(16, 64, nil, j))

	moved := runningJob(1, 1, []int{4, 8, 16}, [][2]float64{{8, 8}, {4, 16}}, 100) // now on 4x1
	snap := snapOf(16, 64, nil, moved)
	snap.Caller = moved
	r.Decide(snap)
	if len(r.Directives()) != 0 {
		t.Fatalf("stale directive must be dropped, got %+v", r.Directives())
	}
}

// TestDecideHoldsUnfundedExpansion: an expansion directive that does not
// fit the current idle pool stays pending instead of being consumed.
func TestDecideHoldsUnfundedExpansion(t *testing.T) {
	j := runningJob(1, 1, []int{4, 8, 16}, [][2]float64{{4, 16}, {8, 8}}, 100)
	r := New(nil)
	r.Rebalance(snapOf(16, 64, nil, j))

	snap := snapOf(2, 64, nil, j) // pool shrank below the directive's need
	snap.Caller = j
	r.Decide(snap)
	if len(r.Directives()) != 1 {
		t.Fatalf("unfunded expansion must stay pending, got %+v", r.Directives())
	}
}

// TestPlanDeterministic: identical snapshots produce bit-identical plans
// through fresh Rebalancers — the property OpRebalance replay relies on.
func TestPlanDeterministic(t *testing.T) {
	mkSnap := func() scheduler.ClusterSnapshot {
		return snapOf(24, 64,
			[]scheduler.QueuedView{{ID: 9, Priority: 2, Need: 8, Wait: 40}},
			runningJob(1, 1, []int{4, 8, 16, 32}, [][2]float64{{4, 16}, {8, 8}}, 100),
			runningJob(2, 1, []int{4, 8, 16, 32}, [][2]float64{{4, 6}, {8, 4}}, 100),
			runningJob(3, 2, []int{4, 8, 16}, [][2]float64{{4, 10}, {8, 7}, {16, 9}}, 40),
			runningJob(4, 0, []int{4, 8}, [][2]float64{{4, 5}}, 10),
		)
	}
	var plans []Plan
	for i := 0; i < 2; i++ {
		r := New(nil)
		r.OnPlan = func(p Plan) { plans = append(plans, p) }
		r.Rebalance(mkSnap())
	}
	if len(plans) != 2 || !reflect.DeepEqual(plans[0], plans[1]) {
		t.Fatalf("plans diverged:\n %+v\n %+v", plans[0], plans[1])
	}
	if len(plans[0].Directives) == 0 {
		t.Fatal("determinism fixture produced an empty plan; strengthen the fixture")
	}
}
