// Package rebalance implements the global rebalancer: a periodic,
// cluster-wide reallocation pass driven by learned speedup curves.
//
// The reactive arbiters (package internal/scheduler/arbiter) decide one
// contact at a time: each running job probes one configuration-chain rung
// per resize point and queue pressure is resolved by coordinated shrinks
// computed on demand. The rebalancer adds a planning axis on top: on a
// configurable tick (scheduler.Core.Rebalance / simcluster.WithRebalance)
// it fits one perfmodel.Curve per running job from the job's measured
// visit history, solves a cluster-wide processor assignment by greedy
// marginal-benefit water-filling, and records the result as per-job
// shrink/expand directives. Directives are not actuated by the tick —
// resizes can only happen at iteration boundaries — but delivered through
// the ordinary Arbiter interface at each job's next resize point, so the
// whole state machine (reservation, degradation, ResizeComplete
// accounting, journaling) is reused unchanged.
//
// The plan is deliberately conservative where the model is blind:
//
//   - a directive is only emitted when the predicted net benefit over the
//     job's remaining iterations exceeds the redistribution cost of the
//     move (measured cost when available, estimated otherwise);
//   - jobs mid-shrink (processors pending free) are left to the reactive
//     arbiter, and expansion rungs backed by neither a measurement nor a
//     fitted curve — priced by the Predict hook alone — advance at most
//     one rung per plan, the reactive probing pace;
//   - when the queue is non-empty the head job's full processor need is
//     reserved out of the expansion budget, so planning never starves the
//     queue the reactive layer is trying to fund;
//   - shrink directives move a job only to a previously visited
//     configuration (the application constraint) and only when the fitted
//     curve says the job ran *past its knee* — the shrink is predicted to
//     help the job itself, and the freed processors are pure surplus.
//
// Determinism: the plan is a pure function of the cluster snapshot and
// the Rebalancer's configuration. Jobs are scanned in ascending id order,
// candidate moves are ranked with full tie-breaks, and the curve fitter
// is itself deterministic — so a recovered daemon that replays a
// journaled OpRebalance tick recomputes the identical plan (pinned by
// the crash tests in internal/simcluster).
package rebalance

import (
	"fmt"
	"sort"

	"repro/internal/grid"
	"repro/internal/perfmodel"
	"repro/internal/scheduler"
	"repro/internal/scheduler/arbiter"
)

// Directive is one planned move for one job: shrink or expand From -> To
// at the job's next resize point. Gain is the predicted net benefit in
// seconds over the job's remaining iterations, redistribution cost
// already subtracted (always > 0 for an emitted directive).
type Directive struct {
	JobID int
	From  grid.Topology
	To    grid.Topology
	Gain  float64
}

// Expand reports the move's direction.
func (d Directive) Expand() bool { return d.To.Count() > d.From.Count() }

// Plan is one planning tick's full output: the tick time and every
// directive, sorted by ascending job id.
type Plan struct {
	Now        float64
	Directives []Directive
}

// Rebalancer is the planning arbiter. It implements scheduler.Arbiter by
// delegating to Inner (the reactive benefit-ranked arbiter) and
// scheduler.Planner by recomputing its directive set at every tick;
// directives take precedence over Inner for the jobs they name. The zero
// value is NOT ready — use New.
type Rebalancer struct {
	// Inner handles every contact the current plan has no directive for:
	// probing, queue funding, starvation aging all behave exactly as in
	// the PR 5 arbiter.
	Inner *arbiter.BenefitRanked
	// Predict estimates iteration time on configurations the job has
	// neither measured nor covered by its fitted curve (same contract as
	// simcluster.Predictor and Inner.Predict). Optional.
	Predict func(jobID int, t grid.Topology) (float64, bool)
	// RedistCost estimates the redistribution cost of a move the job has
	// never performed (e.g. perfmodel.Params.RedistTime). Optional; with
	// neither a measured nor an estimated cost the planner assumes 0 and
	// relies on the iteration-time margin alone.
	RedistCost func(jobID int, from, to grid.Topology) (float64, bool)
	// MinGainSeconds is the emission threshold: directives whose
	// predicted net benefit is at or below it are suppressed. Zero means
	// any strictly positive benefit qualifies.
	MinGainSeconds float64
	// OnPlan, when set, observes every adopted plan (test/telemetry
	// hook). The plan is owned by the callee.
	OnPlan func(Plan)

	directives map[int]Directive
}

var (
	_ scheduler.Arbiter = (*Rebalancer)(nil)
	_ scheduler.Planner = (*Rebalancer)(nil)
)

// New wraps the reactive arbiter in a Rebalancer (nil gets a default
// BenefitRanked). The rebalancer's curve fits subsume most of what an
// inner Predict hook would provide, but an installed one still serves as
// the final fallback for jobs with too little history to fit.
func New(inner *arbiter.BenefitRanked) *Rebalancer {
	if inner == nil {
		inner = &arbiter.BenefitRanked{}
	}
	return &Rebalancer{Inner: inner, directives: make(map[int]Directive)}
}

// Name identifies the arbiter.
func (r *Rebalancer) Name() string { return "rebalance(" + r.Inner.Name() + ")" }

// Directives returns the outstanding (not yet delivered) directives,
// sorted by ascending job id — a read-only view for tests and telemetry.
func (r *Rebalancer) Directives() []Directive {
	out := make([]Directive, 0, len(r.directives))
	for _, d := range r.directives {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].JobID < out[j].JobID })
	return out
}

// Decide implements scheduler.Arbiter: a contacting job with a live
// directive is answered from the plan; everything else falls through to
// the reactive arbiter.
func (r *Rebalancer) Decide(snap scheduler.ClusterSnapshot) scheduler.Decision {
	if d, ok := r.directives[snap.Caller.ID]; ok {
		if d.From != snap.Caller.Topo {
			// The job moved since the plan was computed (probe, coordinated
			// shrink): the directive is stale — drop it and fall through.
			delete(r.directives, snap.Caller.ID)
		} else if !d.Expand() {
			delete(r.directives, snap.Caller.ID)
			return scheduler.Decision{
				Action: scheduler.ActionShrink,
				Target: d.To,
				Reason: fmt.Sprintf("rebalance: planned shrink (past fitted knee, net gain %.3gs)", d.Gain),
			}
		} else if free := r.grantable(snap); d.To.Count()-d.From.Count() <= free {
			delete(r.directives, snap.Caller.ID)
			return scheduler.Decision{
				Action: scheduler.ActionExpand,
				Target: d.To,
				Reason: fmt.Sprintf("rebalance: planned expansion (net gain %.3gs)", d.Gain),
			}
		}
		// An expansion that no longer fits the grantable pool stays
		// pending — the processors it was planned against are in flight
		// (another job's resize, a start) or newly claimed by queue
		// pressure — and the reactive arbiter answers this contact. If the
		// job moves meanwhile the staleness check above retires the
		// directive at its next contact.
	}
	return r.Inner.Decide(snap)
}

// grantable is the idle-pool share a planned expansion may take at
// delivery time: the head of the queue keeps first claim on the idle
// pool, mirroring the reservation the planning tick made when the plan
// was computed — queue pressure that arrived after the tick must not be
// expanded over either.
func (r *Rebalancer) grantable(snap scheduler.ClusterSnapshot) int {
	free := snap.Idle
	if len(snap.Queued) > 0 {
		free -= snap.Queued[0].Need
	}
	return free
}

// jobView is the planner's per-job working copy: everything Rebalance
// needs, copied out of the live ContactView so no Profile pointer is
// retained past the snapshot (the arbiter aliasing contract).
type jobView struct {
	id       int
	topo     grid.Topology
	remIters int

	curKnown bool    // measured baseline on the current topology exists
	curTime  float64 // that baseline (seconds per iteration)

	curve perfmodel.Curve

	rungs   []grid.Topology // chain configurations beyond topo, in order
	shrinks []grid.Topology // visited smaller configurations, descending count

	measured map[grid.Topology]float64    // topo -> last measured iteration time
	redist   map[[2]grid.Topology]float64 // measured redistribution costs
}

// priceAt predicts seconds per iteration for the job on t: measured
// visit first, then the fitted curve, then the Predict hook. A 1-point
// "fit" is excluded: it is a flat line through a single configuration
// and would predict zero benefit everywhere, silently shadowing a
// Predict hook that actually knows the job's scaling (two measured
// counts are the minimum for the curve to carry any shape). blind
// reports that the price rests on the Predict hook alone — no
// measurement and no fitted curve back it.
func (r *Rebalancer) priceAt(j *jobView, t grid.Topology) (sec float64, blind, ok bool) {
	if sec, ok := j.measured[t]; ok {
		return sec, false, true
	}
	if j.curve.Points >= 2 {
		if sec, ok := j.curve.Eval(t.Count()); ok {
			return sec, false, true
		}
	}
	if r.Predict != nil {
		sec, ok := r.Predict(j.id, t)
		return sec, true, ok
	}
	return 0, false, false
}

// timeAt is priceAt without the provenance bit.
func (r *Rebalancer) timeAt(j *jobView, t grid.Topology) (float64, bool) {
	sec, _, ok := r.priceAt(j, t)
	return sec, ok
}

// redistCost estimates the cost of moving the job from->to: measured
// first, then the RedistCost hook, then 0.
func (r *Rebalancer) redistCost(j *jobView, from, to grid.Topology) float64 {
	if sec, ok := j.redist[[2]grid.Topology{from, to}]; ok {
		return sec
	}
	if r.RedistCost != nil {
		if sec, ok := r.RedistCost(j.id, from, to); ok {
			return sec
		}
	}
	return 0
}

// netGain scores moving the job from its current configuration to t: the
// predicted per-iteration saving times the remaining iterations, minus
// the redistribution cost. ok is false when either side is unpredictable.
func (r *Rebalancer) netGain(j *jobView, t grid.Topology) (float64, bool) {
	if !j.curKnown {
		return 0, false
	}
	after, ok := r.timeAt(j, t)
	if !ok {
		return 0, false
	}
	return (j.curTime-after)*float64(j.remIters) - r.redistCost(j, j.topo, t), true
}

// Rebalance implements scheduler.Planner: recompute the directive set
// from a caller-less cluster snapshot. The previous plan is discarded
// wholesale — directives represent the latest tick's view only.
func (r *Rebalancer) Rebalance(snap scheduler.ClusterSnapshot) {
	jobs := r.collect(snap)

	// Expansion budget: the idle pool, minus the queue head's full need
	// when anything waits (planning must not expand over the job the
	// reactive layer is funding), plus whatever the shrink phase frees.
	budget := snap.Idle
	if len(snap.Queued) > 0 {
		budget -= snap.Queued[0].Need
	}

	r.directives = make(map[int]Directive, len(jobs))

	// Phase 1 — shrink past the knee. A job whose fitted curve turns over
	// before its current allocation is predicted to run *faster* on fewer
	// processors: shrinking is a win for the job and frees surplus for
	// the expansion phase. Only previously visited configurations are
	// legal targets.
	for _, j := range jobs {
		if !j.curve.Valid() || j.curve.Knee() >= j.topo.Count() {
			continue
		}
		bestGain := r.MinGainSeconds
		var best grid.Topology
		found := false
		for _, p := range j.shrinks {
			if gain, ok := r.netGain(j, p); ok && gain > bestGain {
				best, bestGain, found = p, gain, true
			}
		}
		if found {
			r.directives[j.id] = Directive{JobID: j.id, From: j.topo, To: best, Gain: bestGain}
			budget += j.topo.Count() - best.Count()
		}
	}

	// Phase 2 — expansion water-filling. Every undirected job advances
	// along its configuration chain one rung at a time, but all jobs bid
	// against each other for every processor: each round the job with the
	// highest marginal gain per extra processor wins its next rung, then
	// re-bids from the new planned position. A job can therefore jump
	// several rungs in one plan (the fitted curve scores configurations
	// one-step probing would take several resize points to reach), yet a
	// shallow second rung never beats another job's steep first rung —
	// water level, not queue order, decides.
	type expansion struct {
		j       *jobView
		planned grid.Topology // position after the rungs won so far
		next    int           // index into j.rungs of the next bid
		gain    float64       // accumulated net gain (redist charged once)
		blind   bool          // won a Predict-only rung: no further bids
	}
	var exps []*expansion
	for _, j := range jobs {
		if _, planned := r.directives[j.id]; !planned && len(j.rungs) > 0 {
			exps = append(exps, &expansion{j: j, planned: j.topo})
		}
	}
	for {
		var best *expansion
		bestPerProc := 0.0
		bestMarginal := 0.0
		bestBlind := false
		for _, e := range exps {
			if e.next >= len(e.j.rungs) || e.blind {
				continue
			}
			to := e.j.rungs[e.next]
			delta := to.Count() - e.planned.Count()
			if delta <= 0 || delta > budget {
				continue
			}
			cur, okCur := r.timeAt(e.j, e.planned)
			after, blind, okAfter := r.priceAt(e.j, to)
			if !e.j.curKnown || !okCur || !okAfter {
				continue
			}
			marginal := (cur - after) * float64(e.j.remIters)
			if e.planned == e.j.topo {
				// The whole multi-rung move is one redistribution; charge it
				// against the first rung.
				marginal -= r.redistCost(e.j, e.j.topo, to)
			}
			if marginal <= r.MinGainSeconds {
				continue
			}
			pp := marginal / float64(delta)
			if best == nil || pp > bestPerProc || (pp == bestPerProc && e.j.id < best.j.id) {
				best, bestPerProc, bestMarginal, bestBlind = e, pp, marginal, blind
			}
		}
		if best == nil {
			break
		}
		to := best.j.rungs[best.next]
		budget -= to.Count() - best.planned.Count()
		best.planned = to
		best.next++
		best.gain += bestMarginal
		// A rung priced by the Predict hook alone is a probe step, not a
		// curve-backed jump: advance at most one such rung per plan, so a
		// job with no evidence grows at the reactive arbiter's pace and
		// cannot swallow the idle pool ahead of future arrivals.
		best.blind = bestBlind
	}
	for _, e := range exps {
		if e.planned != e.j.topo {
			r.directives[e.j.id] = Directive{JobID: e.j.id, From: e.j.topo, To: e.planned, Gain: e.gain}
		}
	}

	if r.OnPlan != nil {
		r.OnPlan(Plan{Now: snap.Now, Directives: r.Directives()})
	}
}

// collect copies the planner's working views out of the snapshot,
// fitting one speedup curve per job from its measured visit history.
// Jobs mid-shrink (pending frees) are excluded — their topology is in
// flux. A job with no measured baseline on its current configuration
// (fresh start, iteration in flight after a resize) is still planned
// when the fitted curve or the Predict hook can price that baseline:
// excluding such jobs would blind the planner to exactly the jobs that
// just moved, and their unclaimed benefit would be handed to whoever
// measured last.
func (r *Rebalancer) collect(snap scheduler.ClusterSnapshot) []*jobView {
	var jobs []*jobView
	snap.Cluster.EachRunning(func(v scheduler.ContactView) bool {
		if v.PendingFree > 0 {
			return true
		}
		j := &jobView{
			id:       v.ID,
			topo:     v.Topo,
			remIters: v.RemainingIters,
			measured: make(map[grid.Topology]float64),
			redist:   make(map[[2]grid.Topology]float64),
		}
		if j.remIters < 1 {
			j.remIters = 1
		}
		var obs []perfmodel.SpeedupObs
		for _, visit := range v.Profile.Visits {
			if len(visit.IterTimes) == 0 {
				continue
			}
			j.measured[visit.Topo] = visit.Last()
			obs = append(obs, perfmodel.SpeedupObs{Procs: visit.Topo.Count(), Seconds: visit.Mean()})
		}
		j.curve = perfmodel.FitSpeedup(obs)
		cur, ok := r.timeAt(j, v.Topo)
		if !ok {
			return true // nothing can price the current configuration
		}
		j.curKnown, j.curTime = true, cur
		for _, a := range append(append([]grid.Topology{}, v.Chain...), v.Profile.ShrinkPoints(v.Topo)...) {
			if cost, ok := v.Profile.RedistCost(v.Topo, a); ok {
				j.redist[[2]grid.Topology{v.Topo, a}] = cost
			}
		}
		t := v.Topo
		for {
			n, ok := scheduler.NextInChain(v.Chain, t)
			if !ok {
				break
			}
			j.rungs = append(j.rungs, n)
			t = n
		}
		j.shrinks = v.Profile.ShrinkPoints(v.Topo)
		jobs = append(jobs, j)
		return true
	})
	return jobs
}
