package scheduler

import "repro/internal/grid"

// This file defines the cluster-wide arbitration layer. Historically every
// Contact answered the calling job in isolation through Policy.Decide; the
// Arbiter generalizes that hook to cluster scope: at each resize point it
// sees a snapshot of the whole scheduler — idle pool, the queued-job window
// with priorities and ages, and (lazily) every running job's profile and
// configuration chain — and returns the decision for the contacting job.
// Stateful arbiters can plan multi-job reallocations across contacts, e.g.
// coordinating shrinks of several running jobs so that together they free
// exactly enough processors to start the queue head (see
// internal/scheduler/arbiter for the benefit-ranked implementation).
//
// The default PolicyArbiter reproduces the published single-job policy
// bit-identically, so cores without an explicit arbiter behave exactly as
// before the arbitration layer existed (pinned by TestPolicyArbiterMatchesPublishedDecide).

// ContactView is a read-only view of one running job handed to arbiters.
// The Profile pointer aliases live scheduler state: arbiters must treat it
// as immutable and must not retain it across calls.
type ContactView struct {
	ID int
	// Tenant is the submitting principal ("" for the default tenant).
	Tenant   string
	Priority int
	Topo     grid.Topology
	Chain    []grid.Topology
	Profile  *Profile
	// RemainingIters estimates how many outer iterations the job still has
	// to run (<=0 when unknown or exceeded).
	RemainingIters int
	// PendingFree counts processors the job has already agreed to give back
	// through an in-flight shrink (released at ResizeComplete). Arbiters
	// subtract these from any fresh shrink demand so coordinated plans do
	// not over-shrink.
	PendingFree int
}

// QueuedView is a read-only view of one waiting job.
type QueuedView struct {
	ID int
	// Tenant is the submitting principal ("" for the default tenant).
	Tenant   string
	Priority int
	// Need is the job's initial processor requirement.
	Need int
	// Wait is how long the job has been queued (snapshot time minus
	// submission time), the input to starvation aging.
	Wait float64
}

// ClusterView grants an arbiter lazy access to cluster-wide state that
// would be too expensive to materialize on every contact. Both cores
// implement it; the default arbiter never calls it, keeping the published
// single-job path allocation-lean.
type ClusterView interface {
	// EachRunning yields a view of every running job in ascending job-id
	// order (deterministic), stopping early when yield returns false.
	EachRunning(yield func(ContactView) bool)
}

// ClusterSnapshot is everything an Arbiter sees at one resize point. The
// calling job's iteration has already been recorded in its profile when the
// snapshot is taken (matching the published Contact semantics).
type ClusterSnapshot struct {
	// Now is the scheduler clock at the contact.
	Now float64
	// Total and Idle describe the processor pool.
	Total int
	Idle  int
	// Caller is the job at the resize point.
	Caller ContactView
	// Queued is the head window of the wait queue in queue order (nil when
	// nothing waits). Like RemapInput.QueuedNeeds, Core caps it at
	// QueuedNeedsWindow entries while the LinearCore reference materializes
	// the whole queue — arbiters must therefore react only to the jobs they
	// can see (the head, in practice) and never assume the window is the
	// full queue. QueueLen has the full queue length on both cores.
	//
	// Queued is scratch owned by the snapshot's producer (Core reuses one
	// buffer across contacts): arbiters must read it during Decide/Rebalance
	// and never retain it across calls, the same rule that already covers
	// the Profile pointers.
	Queued   []QueuedView
	QueueLen int
	// Cluster lazily exposes every running job.
	Cluster ClusterView

	// queuedNeeds, when non-nil, is the pre-materialized need list matching
	// Queued. Core fills it from its version-keyed window cache so the
	// published policy path gets its QueuedNeeds without allocating per
	// contact; producers that leave it nil (LinearCore, tests building
	// snapshots by hand) fall back to materializing on demand. Same
	// ownership rule as Queued: scratch, never retain.
	queuedNeeds []int
}

// QueuedNeeds flattens the queued window into the processor-need list the
// published policy consumes (nil when nothing waits). The result may be
// producer-owned scratch: use it during the call, don't keep it.
func (s *ClusterSnapshot) QueuedNeeds() []int {
	if s.queuedNeeds != nil {
		return s.queuedNeeds
	}
	if len(s.Queued) == 0 {
		return nil
	}
	needs := make([]int, len(s.Queued))
	for i, q := range s.Queued {
		needs[i] = q.Need
	}
	return needs
}

// RemapInput converts the snapshot into the single-job policy input.
func (s *ClusterSnapshot) RemapInput() RemapInput {
	return RemapInput{
		Current:        s.Caller.Topo,
		Chain:          s.Caller.Chain,
		Profile:        s.Caller.Profile,
		IdleProcs:      s.Idle,
		QueuedNeeds:    s.QueuedNeeds(),
		RemainingIters: s.Caller.RemainingIters,
	}
}

// Arbiter decides what happens at a resize point, seeing the whole cluster.
// Implementations may keep state across calls (multi-job shrink plans,
// aging bookkeeping); calls are serialized by the core's external
// synchronization (the Server lock, or the single-threaded simulator), so
// no internal locking is needed.
type Arbiter interface {
	Name() string
	// Decide returns the expand/shrink/none decision for snap.Caller. The
	// core actuates it exactly like a Policy decision: expansions reserve
	// processors immediately (degrading to none if a concurrent claim won),
	// shrinks release at ResizeComplete.
	Decide(snap ClusterSnapshot) Decision
}

// Planner is the optional arbiter extension the global rebalancer
// implements: Rebalance is invoked on every journaled planning tick
// (Core.Rebalance) with a caller-less cluster snapshot — snap.Caller is
// the zero ContactView with ID -1 and must not be consulted — and the
// implementation recomputes its cluster-wide reallocation plan from it.
// Plans are arbiter state, delivered as ordinary Decisions at each job's
// next resize point; Rebalance itself must not assume it can mutate the
// cluster. Like Decide, calls are serialized by the core's external
// synchronization, and like Decide the snapshot's Profile pointers alias
// live scheduler state: read them during the call, never retain them.
type Planner interface {
	Rebalance(snap ClusterSnapshot)
}

// StartSnapshot is the view Core hands a StartPicker before each queue
// start: one QueuedView per tenant with waiting jobs — that tenant's queue
// head, in ascending tenant order — plus pool occupancy and lazy access to
// the running set. Like ClusterSnapshot, everything here is read-only and
// must not be retained across calls.
type StartSnapshot struct {
	// Now is the scheduler clock at the scheduling attempt.
	Now float64
	// Total and Idle describe the processor pool.
	Total int
	Idle  int
	// Heads has each tenant's best queued job (queue order within the
	// tenant), sorted by ascending tenant name. Never empty.
	Heads []QueuedView
	// Cluster lazily exposes every running job.
	Cluster ClusterView
}

// StartPicker is the optional arbiter extension a fair-share scheduler
// implements to control *which tenant's* job starts next. Core.TrySchedule
// consults it in a loop: PickStart returns the index into snap.Heads of the
// job to start, or a negative value to start nothing this round (leaving
// the idle pool for backfill, if enabled). Within a tenant, order remains
// the queue's own (priority, then submission id) — the picker only chooses
// among tenants. Implementations must be deterministic functions of the
// snapshot and their own journaled-input-derived state, exactly like
// Decide; LinearCore, the pre-tenant reference, never consults the
// extension.
type StartPicker interface {
	PickStart(snap StartSnapshot) int
}

// PolicyArbiter adapts a single-job Policy to the Arbiter interface: the
// cluster snapshot is narrowed to the published RemapInput and the policy
// decides as if it were wired into Contact directly. It is the behavior of
// every core without an explicit SetArbiter call.
type PolicyArbiter struct {
	// Policy defaults to PaperPolicy.
	Policy Policy
}

// Name identifies the arbiter.
func (a PolicyArbiter) Name() string {
	if a.Policy == nil {
		return "single-job(paper)"
	}
	return "single-job(" + a.Policy.Name() + ")"
}

// Decide applies the wrapped policy to the caller's slice of the snapshot.
func (a PolicyArbiter) Decide(snap ClusterSnapshot) Decision {
	pol := a.Policy
	if pol == nil {
		pol = PaperPolicy{}
	}
	return pol.Decide(snap.RemapInput())
}

var _ Arbiter = PolicyArbiter{}
