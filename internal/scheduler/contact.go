package scheduler

import (
	"fmt"
	"sort"

	"repro/internal/grid"
)

// This file holds the contact-path state machine shared by Core and
// LinearCore. Both cores used to carry copy-pasted Contact/ResizeComplete/
// Finish bodies (~100 lines of identical profiling and bookkeeping); the
// helpers below are that logic written once, parameterized only by the
// pool operations that genuinely differ (sharded grants vs a free counter).
// The arbitration layer plugs in here exactly once, for both cores.

// newJob validates a spec against the cluster size and builds the queued
// job record for it.
func newJob(spec JobSpec, id, total int, now float64) (*Job, error) {
	if !spec.InitialTopo.IsValid() {
		return nil, fmt.Errorf("scheduler: job %q has invalid initial topology", spec.Name)
	}
	if spec.InitialTopo.Count() > total {
		return nil, fmt.Errorf("scheduler: job %q needs %d processors, cluster has %d",
			spec.Name, spec.InitialTopo.Count(), total)
	}
	return &Job{
		ID:         id,
		Spec:       spec,
		State:      Queued,
		Topo:       spec.InitialTopo,
		Profile:    NewProfile(),
		SubmitTime: now,
	}, nil
}

// remainingIters estimates how many outer iterations the job still has to
// run, from the spec's iteration budget and the profiled iteration count.
func remainingIters(j *Job) int {
	done := 0
	for _, v := range j.Profile.Visits {
		done += len(v.IterTimes)
	}
	return j.Spec.Iterations - done
}

// contactView builds the arbiter's read-only view of a running job.
func contactView(j *Job) ContactView {
	return ContactView{
		ID:             j.ID,
		Tenant:         j.Spec.Tenant,
		Priority:       j.Spec.Priority,
		Topo:           j.Topo,
		Chain:          j.Spec.Chain,
		Profile:        j.Profile,
		RemainingIters: remainingIters(j),
		PendingFree:    j.pendingFree,
	}
}

// validateContact checks a contact_scheduler call without touching any
// state, so journaling cores can persist the op between validation and
// the profile mutation (only valid ops reach the journal; replay can
// therefore treat an op that fails to re-apply as corruption).
func validateContact(jobs map[int]*Job, jobID int, topo grid.Topology) (*Job, error) {
	j, ok := jobs[jobID]
	if !ok {
		return nil, fmt.Errorf("scheduler: unknown job %d", jobID)
	}
	if j.State != Running {
		return nil, fmt.Errorf("scheduler: job %d contacted while %v", jobID, j.State)
	}
	if topo != j.Topo {
		return nil, fmt.Errorf("scheduler: job %d reports topology %v, scheduler has %v",
			jobID, topo, j.Topo)
	}
	return j, nil
}

// beginContact validates a contact_scheduler call and records the reported
// iteration time in the job's performance profile.
func beginContact(jobs map[int]*Job, jobID int, topo grid.Topology, iterTime float64) (*Job, error) {
	j, err := validateContact(jobs, jobID, topo)
	if err != nil {
		return nil, err
	}
	j.Profile.RecordIteration(j.Topo, iterTime)
	return j, nil
}

// defaultDecide is the published single-job decision path: exactly the
// narrowing PolicyArbiter performs, minus the cluster snapshot — so the
// default (no-arbiter) contact stays allocation-identical to the
// pre-arbiter code. TestPolicyArbiterMatchesPublishedDecide holds the two
// assembly paths to identical decisions.
func defaultDecide(pol Policy, j *Job, idle int, queuedNeeds []int) Decision {
	if pol == nil {
		pol = PaperPolicy{}
	}
	return pol.Decide(RemapInput{
		Current:        j.Topo,
		Chain:          j.Spec.Chain,
		Profile:        j.Profile,
		IdleProcs:      idle,
		QueuedNeeds:    queuedNeeds,
		RemainingIters: remainingIters(j),
	})
}

// insertRunning adds j to an id-sorted running index. The index bounds
// EachRunning by the number of *running* jobs (itself bounded by the pool
// size: every running job holds at least one processor) instead of every
// job id ever allocated, so arbiter contacts stay O(running) over a
// long-lived daemon's life.
func insertRunning(running []*Job, j *Job) []*Job {
	i := sort.Search(len(running), func(k int) bool { return running[k].ID >= j.ID })
	running = append(running, nil)
	copy(running[i+1:], running[i:])
	running[i] = j
	return running
}

// removeRunning drops j from the id-sorted running index.
func removeRunning(running []*Job, j *Job) []*Job {
	i := sort.Search(len(running), func(k int) bool { return running[k].ID >= j.ID })
	if i < len(running) && running[i] == j {
		copy(running[i:], running[i+1:])
		running[len(running)-1] = nil
		running = running[:len(running)-1]
	}
	return running
}

// eachRunning yields the index's views in ascending id order.
func eachRunning(running []*Job, yield func(ContactView) bool) {
	for _, j := range running {
		if !yield(contactView(j)) {
			return
		}
	}
}

// applyDecision actuates an arbitration decision on the job. Expansions
// reserve the delta through grant (which reports whether the idle
// processors were still available); shrinks mark the give-back as pending
// until ResizeComplete. It returns the decision actually applied — an
// expansion whose grant lost a concurrent race degrades to ActionNone.
func applyDecision(j *Job, d Decision, grant func(delta int) bool, record func(kind string)) Decision {
	switch d.Action {
	case ActionExpand:
		delta := d.Target.Count() - j.Topo.Count()
		if !grant(delta) {
			// A concurrent reservation claimed the idle processors between
			// the policy decision and the grant; hold steady this iteration.
			return Decision{Action: ActionNone, Reason: "idle processors claimed concurrently"}
		}
		j.resizeFrom = j.Topo
		j.Topo = d.Target
		record("expand")
	case ActionShrink:
		j.pendingFree += j.Topo.Count() - d.Target.Count()
		j.resizeFrom = j.Topo
		j.Topo = d.Target
		record("shrink")
	}
	return d
}

// finishResize records the redistribution cost of a completed resize in the
// profiler and returns the number of processors a pending shrink should now
// release (0 when the resize freed nothing). The caller zeroes pendingFree
// only once the pool release succeeds, so a failed release keeps the
// give-back pending for a retry instead of leaking the processors.
func finishResize(j *Job, redistTime float64) int {
	if j.resizeFrom.IsValid() {
		j.Profile.RecordRedist(j.resizeFrom, j.Topo, redistTime)
		j.resizeFrom = grid.Topology{}
	}
	return j.pendingFree
}

// validateFinish checks a completion signal without mutating the job, the
// journaling counterpart of validateContact.
func validateFinish(jobs map[int]*Job, jobID int, kind string) (*Job, error) {
	j, ok := jobs[jobID]
	if !ok {
		return nil, fmt.Errorf("scheduler: unknown job %d", jobID)
	}
	if j.State != Running {
		return nil, fmt.Errorf("scheduler: job %d completed (%s) while %v", jobID, kind, j.State)
	}
	return j, nil
}

// finishJob validates a completion signal and transitions the job to Done.
// The caller releases the job's processors afterwards (pool layouts differ
// between cores).
func finishJob(jobs map[int]*Job, jobID int, now float64, kind string) (*Job, error) {
	j, err := validateFinish(jobs, jobID, kind)
	if err != nil {
		return nil, err
	}
	j.State = Done
	j.EndTime = now
	return j, nil
}
