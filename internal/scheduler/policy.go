package scheduler

import "repro/internal/grid"

// Action is the Remap Scheduler's verdict at a resize point.
type Action int

const (
	// ActionNone continues on the current processor set.
	ActionNone Action = iota
	// ActionExpand grows the job to Decision.Target.
	ActionExpand
	// ActionShrink reduces the job to Decision.Target.
	ActionShrink
)

// String names the action.
func (a Action) String() string {
	switch a {
	case ActionExpand:
		return "expand"
	case ActionShrink:
		return "shrink"
	default:
		return "none"
	}
}

// Decision is the Remap Scheduler's response to a contact_scheduler call.
type Decision struct {
	Action Action
	Target grid.Topology // meaningful for Expand/Shrink
	Reason string        // human-readable policy trace
}

// RemapInput gathers everything the published policy (§3.1) consults at a
// resize point.
type RemapInput struct {
	Current grid.Topology
	Chain   []grid.Topology // the job's legal configurations, ascending
	Profile *Profile
	// IdleProcs is the number of currently unallocated processors.
	IdleProcs int
	// QueuedNeeds lists the processor requirements of queued jobs in queue
	// order (head first). Empty means nothing is waiting. The Core caps
	// this view at a small window (the published policy only consults the
	// head), so policies must not treat it as the whole queue.
	QueuedNeeds []int
	// RemainingIters is the number of outer iterations the job still has to
	// run (0 when unknown); cost-aware policies use it to amortize
	// redistribution costs.
	RemainingIters int
}

// Decide implements the Remap Scheduler policy of the paper:
//
// Shrink when the job has previously run on a smaller set and either (1) the
// last expansion provided no performance benefit — shrink back to the
// configuration before that expansion — or (2) jobs are waiting: give up
// enough processors (together with the idle pool) to start the head of the
// queue, preferring the largest (least harmful) shrink point; if even the
// smallest shrink point cannot free enough, shrink all the way to it and
// wait.
//
// Expand when there are idle processors, nothing is queued, and either the
// job has never been expanded or its previous expansion improved the
// iteration time. The target is the next configuration in the job's chain
// that fits within the idle pool.
func Decide(in RemapInput) Decision {
	cur := in.Current
	prof := in.Profile

	// Queue pressure: try to accommodate the first waiting job.
	if len(in.QueuedNeeds) > 0 {
		pts := prof.ShrinkPoints(cur)
		if len(pts) == 0 {
			return Decision{Action: ActionNone, Reason: "queue waiting but no shrink points"}
		}
		headNeed := in.QueuedNeeds[0]
		for _, sp := range pts { // largest first
			freed := cur.Count() - sp.Count()
			if in.IdleProcs+freed >= headNeed {
				return Decision{Action: ActionShrink, Target: sp,
					Reason: "shrink to accommodate queued job"}
			}
		}
		smallest := pts[len(pts)-1]
		return Decision{Action: ActionShrink, Target: smallest,
			Reason: "queue waiting; shrink to smallest shrink point"}
	}

	// Failed expansion: shrink back to the pre-expansion configuration.
	if before, after, ok := prof.LastExpansion(); ok {
		if cur == after.Topo && len(after.IterTimes) > 0 && after.Last() >= before.Last() {
			return Decision{Action: ActionShrink, Target: before.Topo,
				Reason: "previous expansion gave no benefit"}
		}
	}

	// Expansion probe.
	if in.IdleProcs <= 0 {
		return Decision{Action: ActionNone, Reason: "no idle processors"}
	}
	if before, after, ok := prof.LastExpansion(); ok {
		if len(after.IterTimes) > 0 && after.Last() >= before.Last() {
			return Decision{Action: ActionNone, Reason: "last expansion did not improve"}
		}
		if len(after.IterTimes) == 0 {
			return Decision{Action: ActionNone, Reason: "expansion not yet measured"}
		}
	}
	next, ok := NextInChain(in.Chain, cur)
	if !ok {
		return Decision{Action: ActionNone, Reason: "already at largest configuration"}
	}
	if next.Count()-cur.Count() > in.IdleProcs {
		return Decision{Action: ActionNone, Reason: "next configuration does not fit idle pool"}
	}
	return Decision{Action: ActionExpand, Target: next, Reason: "probing larger configuration"}
}

// NextInChain returns the smallest configuration in the chain strictly
// larger than cur — the expansion step the published policy probes, shared
// with arbiter implementations.
func NextInChain(chain []grid.Topology, cur grid.Topology) (grid.Topology, bool) {
	for _, t := range chain {
		if t.Count() > cur.Count() {
			return t, true
		}
	}
	return grid.Topology{}, false
}
