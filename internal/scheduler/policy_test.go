package scheduler

import (
	"testing"

	"repro/internal/grid"
)

func topo(r, c int) grid.Topology { return grid.Topology{Rows: r, Cols: c} }

// chain12000 is the paper's Table 2 ladder for problem size 12000.
func chain12000() []grid.Topology {
	return grid.GrowthChain(topo(1, 2), 12000, 50)
}

func profileWith(visits ...Visit) *Profile {
	p := NewProfile()
	for _, v := range visits {
		for _, t := range v.IterTimes {
			p.RecordIteration(v.Topo, t)
		}
	}
	return p
}

func TestDecideExpandsFreshJob(t *testing.T) {
	p := profileWith(Visit{Topo: topo(1, 2), IterTimes: []float64{129.63}})
	d := Decide(RemapInput{
		Current: topo(1, 2), Chain: chain12000(), Profile: p, IdleProcs: 30,
	})
	if d.Action != ActionExpand || d.Target != topo(2, 2) {
		t.Fatalf("decision %+v, want expand to 2x2", d)
	}
}

func TestDecideKeepsExpandingWhileImproving(t *testing.T) {
	// The Figure 3(a) trajectory: 2 -> 4 -> 6 procs, each faster.
	p := profileWith(
		Visit{Topo: topo(1, 2), IterTimes: []float64{129.63}},
		Visit{Topo: topo(2, 2), IterTimes: []float64{112.52}},
		Visit{Topo: topo(2, 3), IterTimes: []float64{82.31}},
	)
	d := Decide(RemapInput{Current: topo(2, 3), Chain: chain12000(), Profile: p, IdleProcs: 10})
	if d.Action != ActionExpand || d.Target != topo(3, 3) {
		t.Fatalf("decision %+v, want expand to 3x3", d)
	}
}

func TestDecideShrinksBackAfterFailedExpansion(t *testing.T) {
	// Figure 3(a): expanding 12 -> 16 degraded iteration time by 5.06s, so
	// the job is resized back to 12.
	p := profileWith(
		Visit{Topo: topo(3, 4), IterTimes: []float64{69.85}},
		Visit{Topo: topo(4, 4), IterTimes: []float64{74.91}},
	)
	d := Decide(RemapInput{Current: topo(4, 4), Chain: chain12000(), Profile: p, IdleProcs: 20})
	if d.Action != ActionShrink || d.Target != topo(3, 4) {
		t.Fatalf("decision %+v, want shrink to 3x4", d)
	}
}

func TestDecideHoldsAtSweetSpot(t *testing.T) {
	// After shrinking back, the job must hold: iterations 8-10 of Figure
	// 3(a) stay at 12 processors.
	p := profileWith(
		Visit{Topo: topo(3, 4), IterTimes: []float64{69.85}},
		Visit{Topo: topo(4, 4), IterTimes: []float64{74.91}},
		Visit{Topo: topo(3, 4), IterTimes: []float64{69.85, 69.90}},
	)
	d := Decide(RemapInput{Current: topo(3, 4), Chain: chain12000(), Profile: p, IdleProcs: 20})
	if d.Action != ActionNone {
		t.Fatalf("decision %+v, want none (hold at sweet spot)", d)
	}
}

func TestDecideNoExpandWithoutIdleProcs(t *testing.T) {
	p := profileWith(Visit{Topo: topo(2, 2), IterTimes: []float64{50}})
	d := Decide(RemapInput{Current: topo(2, 2), Chain: chain12000(), Profile: p, IdleProcs: 0})
	if d.Action != ActionNone {
		t.Fatalf("decision %+v, want none", d)
	}
}

func TestDecideNoExpandWhenNextConfigTooBig(t *testing.T) {
	p := profileWith(Visit{Topo: topo(2, 2), IterTimes: []float64{50}})
	// next config is 2x3 (6 procs, needs 2 more) but only 1 idle
	d := Decide(RemapInput{Current: topo(2, 2), Chain: chain12000(), Profile: p, IdleProcs: 1})
	if d.Action != ActionNone {
		t.Fatalf("decision %+v, want none", d)
	}
}

func TestDecideShrinkForQueuedJobPrefersLargestShrinkPoint(t *testing.T) {
	// Job visited 4, 6, 9, 12 procs; a queued job needs 3 procs and 1 is
	// idle: shrinking to 9 (freeing 3, least harmful) suffices — not all
	// the way down.
	p := profileWith(
		Visit{Topo: topo(2, 2), IterTimes: []float64{100}},
		Visit{Topo: topo(2, 3), IterTimes: []float64{80}},
		Visit{Topo: topo(3, 3), IterTimes: []float64{70}},
		Visit{Topo: topo(3, 4), IterTimes: []float64{65}},
	)
	d := Decide(RemapInput{
		Current: topo(3, 4), Chain: chain12000(), Profile: p,
		IdleProcs: 1, QueuedNeeds: []int{4},
	})
	if d.Action != ActionShrink || d.Target != topo(3, 3) {
		t.Fatalf("decision %+v, want shrink to 3x3", d)
	}
}

func TestDecideShrinkToSmallestWhenInsufficient(t *testing.T) {
	// Queue head needs 40; job can free at most 10 even at its smallest
	// shrink point: shrink to smallest and wait.
	p := profileWith(
		Visit{Topo: topo(2, 2), IterTimes: []float64{100}},
		Visit{Topo: topo(2, 3), IterTimes: []float64{80}},
		Visit{Topo: topo(3, 4), IterTimes: []float64{65}},
	)
	d := Decide(RemapInput{
		Current: topo(3, 4), Chain: chain12000(), Profile: p,
		IdleProcs: 0, QueuedNeeds: []int{40},
	})
	if d.Action != ActionShrink || d.Target != topo(2, 2) {
		t.Fatalf("decision %+v, want shrink to smallest (2x2)", d)
	}
}

func TestDecideQueuedButNoShrinkPoints(t *testing.T) {
	// A job still at its starting configuration cannot shrink.
	p := profileWith(Visit{Topo: topo(2, 2), IterTimes: []float64{100}})
	d := Decide(RemapInput{
		Current: topo(2, 2), Chain: chain12000(), Profile: p,
		IdleProcs: 0, QueuedNeeds: []int{4},
	})
	if d.Action != ActionNone {
		t.Fatalf("decision %+v, want none", d)
	}
}

func TestDecideReExpansionAfterQueueShrink(t *testing.T) {
	// W1 behaviour: job shrunk for the queue can climb back once the queue
	// drains, because its last expansion had improved iteration time.
	p := profileWith(
		Visit{Topo: topo(2, 3), IterTimes: []float64{80}},
		Visit{Topo: topo(3, 3), IterTimes: []float64{70}},
		Visit{Topo: topo(2, 2), IterTimes: []float64{100, 101}}, // queue shrink
	)
	d := Decide(RemapInput{Current: topo(2, 2), Chain: chain12000(), Profile: p, IdleProcs: 30})
	if d.Action != ActionExpand || d.Target != topo(2, 3) {
		t.Fatalf("decision %+v, want expand to 2x3", d)
	}
}

func TestDecideAtLargestConfiguration(t *testing.T) {
	chain := chain12000()
	last := chain[len(chain)-1]
	p := profileWith(
		Visit{Topo: chain[len(chain)-2], IterTimes: []float64{30}},
		Visit{Topo: last, IterTimes: []float64{25}},
	)
	d := Decide(RemapInput{Current: last, Chain: chain, Profile: p, IdleProcs: 50})
	if d.Action != ActionNone {
		t.Fatalf("decision %+v, want none at top of chain", d)
	}
}

func TestProfileShrinkPointsSortedDescending(t *testing.T) {
	p := profileWith(
		Visit{Topo: topo(1, 2), IterTimes: []float64{1}},
		Visit{Topo: topo(2, 2), IterTimes: []float64{1}},
		Visit{Topo: topo(2, 3), IterTimes: []float64{1}},
		Visit{Topo: topo(1, 2), IterTimes: []float64{1}}, // revisit: no duplicate
	)
	pts := p.ShrinkPoints(topo(3, 3))
	if len(pts) != 3 || pts[0] != topo(2, 3) || pts[1] != topo(2, 2) || pts[2] != topo(1, 2) {
		t.Fatalf("shrink points %v", pts)
	}
}

func TestProfileLastExpansion(t *testing.T) {
	p := profileWith(
		Visit{Topo: topo(1, 2), IterTimes: []float64{10}},
		Visit{Topo: topo(2, 2), IterTimes: []float64{8}},
		Visit{Topo: topo(1, 2), IterTimes: []float64{10}},
	)
	before, after, ok := p.LastExpansion()
	if !ok || before.Topo != topo(1, 2) || after.Topo != topo(2, 2) {
		t.Fatalf("last expansion %v -> %v (%v)", before, after, ok)
	}
	empty := NewProfile()
	if _, _, ok := empty.LastExpansion(); ok {
		t.Fatal("empty profile reports expansion")
	}
}

func TestProfileRedistCosts(t *testing.T) {
	p := NewProfile()
	p.RecordRedist(topo(1, 2), topo(2, 2), 8.0)
	if v, ok := p.RedistCost(topo(1, 2), topo(2, 2)); !ok || v != 8.0 {
		t.Fatalf("redist cost %v/%v", v, ok)
	}
	if _, ok := p.RedistCost(topo(2, 2), topo(1, 2)); ok {
		t.Fatal("reverse direction should be unrecorded")
	}
}

func TestProfileTimeAtUsesLatestVisit(t *testing.T) {
	p := profileWith(
		Visit{Topo: topo(2, 2), IterTimes: []float64{100}},
		Visit{Topo: topo(2, 3), IterTimes: []float64{80}},
		Visit{Topo: topo(2, 2), IterTimes: []float64{95}},
	)
	if v, ok := p.TimeAt(topo(2, 2)); !ok || v != 95 {
		t.Fatalf("TimeAt = %v/%v, want 95", v, ok)
	}
	if _, ok := p.TimeAt(topo(5, 5)); ok {
		t.Fatal("unvisited topology should miss")
	}
}

func TestVisitStats(t *testing.T) {
	v := Visit{IterTimes: []float64{2, 4}}
	if v.Last() != 4 || v.Mean() != 3 {
		t.Fatalf("Last %v Mean %v", v.Last(), v.Mean())
	}
	empty := Visit{}
	if empty.Last() != 0 || empty.Mean() != 0 {
		t.Fatal("empty visit stats should be 0")
	}
}
