package scheduler

import "sort"

// jobQueue is the indexed wait queue that replaces the linear-scan slice:
// a priority heap provides the FCFS head (higher Priority first, submission
// id among equals) in O(log n), and per-need buckets let backfill find the
// best-ranked job that fits the idle pool without scanning the whole queue
// — the number of distinct processor needs is small (one per chain start
// configuration) even when hundreds of thousands of jobs wait.
//
// Started jobs are removed lazily: both indexes skip entries whose State
// has left Queued, so a job started through one index costs nothing to
// drop from the other. Need buckets whose heaps drain are pruned — eagerly
// when bestFit surfaces an empty bucket, and by an amortized sweep every
// ~len(needs) takes — so a long-running daemon churning jobs with many
// distinct processor needs does not grow the index without bound or make
// bestFit scan dead buckets forever.
type jobQueue struct {
	order jobHeap          // every queued job, head order
	need  map[int]*jobHeap // processor need -> queued jobs with that need
	needs []int            // sorted distinct keys of need (may include empty buckets)
	size  int              // live queued jobs
	takes int              // takes since the last bucket sweep

	// The tenant index mirrors the need index per Spec.Tenant so a
	// fair-share StartPicker can see every tenant's queue head without
	// scanning. It costs one extra heap push per submit, so it is off until
	// enableTenantIndex — single-tenant FCFS/benefit runs pay nothing.
	byTenant  map[string]*jobHeap // tenant -> queued jobs for that tenant
	tenants   []string            // sorted distinct keys of byTenant (may include empty buckets)
	tenantIdx bool
}

// jobLess is the queue's total order: higher priority first, then earlier
// submission (lower id).
func jobLess(a, b *Job) bool {
	if a.Spec.Priority != b.Spec.Priority {
		return a.Spec.Priority > b.Spec.Priority
	}
	return a.ID < b.ID
}

// push enqueues a job into both indexes.
func (q *jobQueue) push(j *Job) {
	q.order.push(j)
	n := j.Spec.InitialTopo.Count()
	b, ok := q.need[n]
	if !ok {
		if q.need == nil {
			q.need = make(map[int]*jobHeap)
		}
		b = &jobHeap{}
		q.need[n] = b
		i := sort.SearchInts(q.needs, n)
		q.needs = append(q.needs, 0)
		copy(q.needs[i+1:], q.needs[i:])
		q.needs[i] = n
	}
	b.push(j)
	if q.tenantIdx {
		q.tenantPush(j)
	}
	q.size++
}

// enableTenantIndex turns the per-tenant index on, backfilling it from any
// jobs already queued (recovery installs the arbiter on a core that may
// have restored a populated queue from a snapshot). Idempotent. Heap pop
// order under the total jobLess order is insertion-order independent, so
// walking the order heap's backing array keeps the index deterministic.
func (q *jobQueue) enableTenantIndex() {
	if q.tenantIdx {
		return
	}
	q.tenantIdx = true
	for _, j := range q.order.h {
		if j.State == Queued {
			q.tenantPush(j)
		}
	}
}

// tenantPush enqueues a job into its tenant bucket, creating the bucket
// (and its sorted key) on first use.
func (q *jobQueue) tenantPush(j *Job) {
	t := j.Spec.Tenant
	b, ok := q.byTenant[t]
	if !ok {
		if q.byTenant == nil {
			q.byTenant = make(map[string]*jobHeap)
		}
		b = &jobHeap{}
		q.byTenant[t] = b
		i := sort.SearchStrings(q.tenants, t)
		q.tenants = append(q.tenants, "")
		copy(q.tenants[i+1:], q.tenants[i:])
		q.tenants[i] = t
	}
	b.push(j)
}

// tenantHeads appends each tenant's queue head to dst in ascending tenant
// order. Buckets found empty are pruned on the way, exactly like bestFit's
// need buckets.
func (q *jobQueue) tenantHeads(dst []*Job) []*Job {
	var dead []string
	for _, t := range q.tenants {
		top := q.byTenant[t].peekLive()
		if top == nil {
			dead = append(dead, t)
			continue
		}
		dst = append(dst, top)
	}
	for _, t := range dead {
		q.removeTenant(t)
	}
	return dst
}

// removeTenant drops one tenant bucket from both tenant-index structures.
func (q *jobQueue) removeTenant(t string) {
	delete(q.byTenant, t)
	i := sort.SearchStrings(q.tenants, t)
	if i < len(q.tenants) && q.tenants[i] == t {
		q.tenants = append(q.tenants[:i], q.tenants[i+1:]...)
	}
}

// len returns the number of live queued jobs.
func (q *jobQueue) len() int { return q.size }

// head returns the next job in FCFS order without removing it.
func (q *jobQueue) head() *Job { return q.order.peekLive() }

// take marks the job consumed. Both indexes drop it lazily: the caller
// transitions the job out of Queued state, and stale entries are discarded
// when they surface at a heap top. Every ~len(needs) takes the need index
// is swept for empty buckets, keeping it proportional to the number of
// needs actually waiting (amortized O(1) per take).
func (q *jobQueue) take(j *Job) {
	q.size--
	q.takes++
	if q.takes >= 32 && q.takes >= len(q.needs) {
		q.sweep()
	}
}

// sweep drops every need bucket (and, when the tenant index is enabled,
// every tenant bucket) with no live job left.
func (q *jobQueue) sweep() {
	q.takes = 0
	live := q.needs[:0]
	for _, n := range q.needs {
		if q.need[n].peekLive() == nil {
			delete(q.need, n)
		} else {
			live = append(live, n)
		}
	}
	for i := len(live); i < len(q.needs); i++ {
		q.needs[i] = 0
	}
	q.needs = live
	if !q.tenantIdx {
		return
	}
	liveT := q.tenants[:0]
	for _, t := range q.tenants {
		if q.byTenant[t].peekLive() == nil {
			delete(q.byTenant, t)
		} else {
			liveT = append(liveT, t)
		}
	}
	for i := len(liveT); i < len(q.tenants); i++ {
		q.tenants[i] = ""
	}
	q.tenants = liveT
}

// removeNeed drops one bucket from both indexes.
func (q *jobQueue) removeNeed(n int) {
	delete(q.need, n)
	i := sort.SearchInts(q.needs, n)
	if i < len(q.needs) && q.needs[i] == n {
		q.needs = append(q.needs[:i], q.needs[i+1:]...)
	}
}

// bestFit returns the best-ranked queued job needing at most free
// processors, or nil. Backfill order matches the linear scan: among all
// fitting jobs, the one earliest in head order starts first. Buckets found
// empty are pruned on the way.
func (q *jobQueue) bestFit(free int) *Job {
	var best *Job
	var dead []int
	for _, n := range q.needs {
		if n > free {
			break
		}
		top := q.need[n].peekLive()
		if top == nil {
			dead = append(dead, n)
			continue
		}
		if best == nil || jobLess(top, best) {
			best = top
		}
	}
	for _, n := range dead {
		q.removeNeed(n)
	}
	return best
}

// needsWindow appends the processor needs of the first k queued jobs in
// head order to dst.
func (q *jobQueue) needsWindow(dst []int, k int) []int {
	q.window(k, func(j *Job) { dst = append(dst, j.Spec.InitialTopo.Count()) })
	return dst
}

// window visits the first k queued jobs in head order. It walks the heap
// with a bounded frontier, so the cost is O(k log k) regardless of queue
// length.
func (q *jobQueue) window(k int, visit func(*Job)) {
	if q.size == 0 || k <= 0 {
		return
	}
	seen := 0
	frontier := make([]int, 0, 2*k)
	frontier = append(frontier, 0)
	h := q.order.h
	for len(frontier) > 0 && seen < k {
		// Extract the frontier's minimum heap index.
		mi := 0
		for i := 1; i < len(frontier); i++ {
			if jobLess(h[frontier[i]], h[frontier[mi]]) {
				mi = i
			}
		}
		idx := frontier[mi]
		frontier = append(frontier[:mi], frontier[mi+1:]...)
		if h[idx].State == Queued {
			visit(h[idx])
			seen++
		}
		if l := 2*idx + 1; l < len(h) {
			frontier = append(frontier, l)
		}
		if r := 2*idx + 2; r < len(h) {
			frontier = append(frontier, r)
		}
	}
}

// jobHeap is a binary min-heap of queued jobs under jobLess with lazy
// deletion: entries whose State left Queued are discarded as they surface.
type jobHeap struct {
	h []*Job
}

func (p *jobHeap) push(j *Job) {
	p.h = append(p.h, j)
	i := len(p.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !jobLess(p.h[i], p.h[parent]) {
			break
		}
		p.h[i], p.h[parent] = p.h[parent], p.h[i]
		i = parent
	}
}

// peekLive discards stale entries and returns the live top, or nil.
func (p *jobHeap) peekLive() *Job {
	for len(p.h) > 0 {
		if p.h[0].State == Queued {
			return p.h[0]
		}
		p.pop()
	}
	return nil
}

func (p *jobHeap) pop() *Job {
	top := p.h[0]
	n := len(p.h) - 1
	p.h[0] = p.h[n]
	p.h[n] = nil
	p.h = p.h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && jobLess(p.h[l], p.h[min]) {
			min = l
		}
		if r < n && jobLess(p.h[r], p.h[min]) {
			min = r
		}
		if min == i {
			break
		}
		p.h[i], p.h[min] = p.h[min], p.h[i]
		i = min
	}
	return top
}
