package scheduler

import "sort"

// jobQueue is the indexed wait queue that replaces the linear-scan slice.
// Head order (higher Priority first, submission id among equals) comes from
// per-priority FIFO lists: jobs link intrusively (Job.qprev/qnext) into the
// bucket for their priority, and the sorted bucket directory yields the
// global head in O(1). Per-need buckets let backfill find the best-ranked
// job that fits the idle pool without scanning the whole queue — the number
// of distinct processor needs is small (one per chain start configuration)
// even when hundreds of thousands of jobs wait.
//
// The priority lists unlink eagerly on take, so walking them never touches
// consumed jobs — head() and window() are O(1)/O(k) no matter how many jobs
// have churned through. The need and tenant bucket heaps still remove
// lazily (entries skipped when State left Queued): a job started through
// the head index costs nothing to drop from them. Need buckets whose heaps
// drain are pruned — eagerly when bestFit surfaces an empty bucket, and by
// an amortized sweep every ~len(needs) takes — so a long-running daemon
// churning jobs with many distinct processor needs does not grow the index
// without bound or make bestFit scan dead buckets forever.
//
// version increments on every push and take; Core keys its materialized
// queued-window caches on it so snapshots rebuild only when the queue
// actually changed.
type jobQueue struct {
	prio    map[int]*prioList // priority -> FIFO list of queued jobs
	prios   []int             // distinct keys of prio, sorted descending, buckets never empty
	need    map[int]*jobHeap  // processor need -> queued jobs with that need
	needs   []int             // sorted distinct keys of need (may include empty buckets)
	size    int               // live queued jobs
	takes   int               // takes since the last bucket sweep
	version uint64            // bumped on every push/take

	// deadNeeds/deadTenants are reusable scratch for the bucket-pruning
	// passes in bestFit and tenantHeads, so steady-state backfill scans
	// allocate nothing.
	deadNeeds   []int
	deadTenants []string

	// The tenant index mirrors the need index per Spec.Tenant so a
	// fair-share StartPicker can see every tenant's queue head without
	// scanning. It costs one extra heap push per submit, so it is off until
	// enableTenantIndex — single-tenant FCFS/benefit runs pay nothing.
	byTenant  map[string]*jobHeap // tenant -> queued jobs for that tenant
	tenants   []string            // sorted distinct keys of byTenant (may include empty buckets)
	tenantIdx bool
}

// prioList is one priority bucket: a doubly linked FIFO of queued jobs in
// ascending submission id, threaded through Job.qprev/qnext.
type prioList struct {
	head, tail *Job
}

// insert links j into the list keeping ascending id order. Submissions
// arrive with monotonically increasing ids (and snapshot restore re-pushes
// in id order), so the walk from the tail is O(1) in practice.
func (l *prioList) insert(j *Job) {
	at := l.tail
	for at != nil && j.ID < at.ID {
		at = at.qprev
	}
	if at == nil {
		j.qnext = l.head
		j.qprev = nil
		if l.head != nil {
			l.head.qprev = j
		} else {
			l.tail = j
		}
		l.head = j
		return
	}
	j.qprev = at
	j.qnext = at.qnext
	if at.qnext != nil {
		at.qnext.qprev = j
	} else {
		l.tail = j
	}
	at.qnext = j
}

// remove unlinks j from the list.
func (l *prioList) remove(j *Job) {
	if j.qprev != nil {
		j.qprev.qnext = j.qnext
	} else {
		l.head = j.qnext
	}
	if j.qnext != nil {
		j.qnext.qprev = j.qprev
	} else {
		l.tail = j.qprev
	}
	j.qprev, j.qnext = nil, nil
}

// jobLess is the queue's total order: higher priority first, then earlier
// submission (lower id).
func jobLess(a, b *Job) bool {
	if a.Spec.Priority != b.Spec.Priority {
		return a.Spec.Priority > b.Spec.Priority
	}
	return a.ID < b.ID
}

// push enqueues a job into every index.
func (q *jobQueue) push(j *Job) {
	q.version++
	p := j.Spec.Priority
	pl, ok := q.prio[p]
	if !ok {
		if q.prio == nil {
			q.prio = make(map[int]*prioList)
		}
		pl = &prioList{}
		q.prio[p] = pl
		// Insert the key keeping prios sorted descending.
		i := sort.Search(len(q.prios), func(k int) bool { return q.prios[k] <= p })
		q.prios = append(q.prios, 0)
		copy(q.prios[i+1:], q.prios[i:])
		q.prios[i] = p
	}
	pl.insert(j)
	n := j.Spec.InitialTopo.Count()
	b, ok := q.need[n]
	if !ok {
		if q.need == nil {
			q.need = make(map[int]*jobHeap)
		}
		b = &jobHeap{}
		q.need[n] = b
		i := sort.SearchInts(q.needs, n)
		q.needs = append(q.needs, 0)
		copy(q.needs[i+1:], q.needs[i:])
		q.needs[i] = n
	}
	b.push(j)
	if q.tenantIdx {
		q.tenantPush(j)
	}
	q.size++
}

// enableTenantIndex turns the per-tenant index on, backfilling it from any
// jobs already queued (recovery installs the arbiter on a core that may
// have restored a populated queue from a snapshot). Idempotent. Heap pop
// order under the total jobLess order is insertion-order independent, and
// the priority lists are walked in deterministic head order, so the index
// is deterministic.
func (q *jobQueue) enableTenantIndex() {
	if q.tenantIdx {
		return
	}
	q.tenantIdx = true
	for _, p := range q.prios {
		for j := q.prio[p].head; j != nil; j = j.qnext {
			q.tenantPush(j)
		}
	}
}

// tenantPush enqueues a job into its tenant bucket, creating the bucket
// (and its sorted key) on first use.
func (q *jobQueue) tenantPush(j *Job) {
	t := j.Spec.Tenant
	b, ok := q.byTenant[t]
	if !ok {
		if q.byTenant == nil {
			q.byTenant = make(map[string]*jobHeap)
		}
		b = &jobHeap{}
		q.byTenant[t] = b
		i := sort.SearchStrings(q.tenants, t)
		q.tenants = append(q.tenants, "")
		copy(q.tenants[i+1:], q.tenants[i:])
		q.tenants[i] = t
	}
	b.push(j)
}

// tenantHeads appends each tenant's queue head to dst in ascending tenant
// order. Buckets found empty are pruned on the way, exactly like bestFit's
// need buckets.
func (q *jobQueue) tenantHeads(dst []*Job) []*Job {
	dead := q.deadTenants[:0]
	for _, t := range q.tenants {
		top := q.byTenant[t].peekLive()
		if top == nil {
			dead = append(dead, t)
			continue
		}
		dst = append(dst, top)
	}
	for _, t := range dead {
		q.removeTenant(t)
	}
	q.deadTenants = dead[:0]
	return dst
}

// removeTenant drops one tenant bucket from both tenant-index structures.
func (q *jobQueue) removeTenant(t string) {
	delete(q.byTenant, t)
	i := sort.SearchStrings(q.tenants, t)
	if i < len(q.tenants) && q.tenants[i] == t {
		q.tenants = append(q.tenants[:i], q.tenants[i+1:]...)
	}
}

// len returns the number of live queued jobs.
func (q *jobQueue) len() int { return q.size }

// head returns the next job in FCFS order without removing it.
func (q *jobQueue) head() *Job {
	if len(q.prios) == 0 {
		return nil
	}
	return q.prio[q.prios[0]].head
}

// take marks the job consumed: it is unlinked from its priority list
// immediately (emptied buckets are dropped so head() stays O(1)), while the
// need/tenant heaps drop it lazily — the caller transitions the job out of
// Queued state, and stale entries are discarded when they surface at a heap
// top. Every ~len(needs) takes the need index is swept for empty buckets,
// keeping it proportional to the number of needs actually waiting
// (amortized O(1) per take).
func (q *jobQueue) take(j *Job) {
	q.version++
	p := j.Spec.Priority
	if pl, ok := q.prio[p]; ok {
		pl.remove(j)
		if pl.head == nil {
			delete(q.prio, p)
			i := sort.Search(len(q.prios), func(k int) bool { return q.prios[k] <= p })
			if i < len(q.prios) && q.prios[i] == p {
				q.prios = append(q.prios[:i], q.prios[i+1:]...)
			}
		}
	}
	q.size--
	q.takes++
	if q.takes >= 32 && q.takes >= len(q.needs) {
		q.sweep()
	}
}

// sweep drops every need bucket (and, when the tenant index is enabled,
// every tenant bucket) with no live job left.
func (q *jobQueue) sweep() {
	q.takes = 0
	live := q.needs[:0]
	for _, n := range q.needs {
		if q.need[n].peekLive() == nil {
			delete(q.need, n)
		} else {
			live = append(live, n)
		}
	}
	for i := len(live); i < len(q.needs); i++ {
		q.needs[i] = 0
	}
	q.needs = live
	if !q.tenantIdx {
		return
	}
	liveT := q.tenants[:0]
	for _, t := range q.tenants {
		if q.byTenant[t].peekLive() == nil {
			delete(q.byTenant, t)
		} else {
			liveT = append(liveT, t)
		}
	}
	for i := len(liveT); i < len(q.tenants); i++ {
		q.tenants[i] = ""
	}
	q.tenants = liveT
}

// removeNeed drops one bucket from both need-index structures.
func (q *jobQueue) removeNeed(n int) {
	delete(q.need, n)
	i := sort.SearchInts(q.needs, n)
	if i < len(q.needs) && q.needs[i] == n {
		q.needs = append(q.needs[:i], q.needs[i+1:]...)
	}
}

// bestFit returns the best-ranked queued job needing at most free
// processors, or nil. Backfill order matches the linear scan: among all
// fitting jobs, the one earliest in head order starts first. Buckets found
// empty are pruned on the way.
func (q *jobQueue) bestFit(free int) *Job {
	var best *Job
	dead := q.deadNeeds[:0]
	for _, n := range q.needs {
		if n > free {
			break
		}
		top := q.need[n].peekLive()
		if top == nil {
			dead = append(dead, n)
			continue
		}
		if best == nil || jobLess(top, best) {
			best = top
		}
	}
	for _, n := range dead {
		q.removeNeed(n)
	}
	q.deadNeeds = dead[:0]
	return best
}

// needsWindow appends the processor needs of the first k queued jobs in
// head order to dst.
func (q *jobQueue) needsWindow(dst []int, k int) []int {
	for _, p := range q.prios {
		for j := q.prio[p].head; j != nil; j = j.qnext {
			if k <= 0 {
				return dst
			}
			dst = append(dst, j.Spec.InitialTopo.Count())
			k--
		}
	}
	return dst
}

// window appends the first k queued jobs in head order to dst. The priority
// lists hold live jobs only (take unlinks eagerly), so the walk is O(k)
// with zero allocations regardless of queue length or churn history.
func (q *jobQueue) window(dst []*Job, k int) []*Job {
	for _, p := range q.prios {
		for j := q.prio[p].head; j != nil; j = j.qnext {
			if k <= 0 {
				return dst
			}
			dst = append(dst, j)
			k--
		}
	}
	return dst
}

// jobHeap is a binary min-heap of queued jobs under jobLess with lazy
// deletion: entries whose State left Queued are discarded as they surface.
type jobHeap struct {
	h []*Job
}

func (p *jobHeap) push(j *Job) {
	p.h = append(p.h, j)
	i := len(p.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !jobLess(p.h[i], p.h[parent]) {
			break
		}
		p.h[i], p.h[parent] = p.h[parent], p.h[i]
		i = parent
	}
}

// peekLive discards stale entries and returns the live top, or nil.
func (p *jobHeap) peekLive() *Job {
	for len(p.h) > 0 {
		if p.h[0].State == Queued {
			return p.h[0]
		}
		p.pop()
	}
	return nil
}

func (p *jobHeap) pop() *Job {
	top := p.h[0]
	n := len(p.h) - 1
	p.h[0] = p.h[n]
	p.h[n] = nil
	p.h = p.h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && jobLess(p.h[l], p.h[min]) {
			min = l
		}
		if r < n && jobLess(p.h[r], p.h[min]) {
			min = r
		}
		if min == i {
			break
		}
		p.h[i], p.h[min] = p.h[min], p.h[i]
		i = min
	}
	return top
}
