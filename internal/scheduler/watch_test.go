package scheduler

import (
	"context"
	"testing"
	"time"
)

func collectEvents(t *testing.T, sub *Subscription, n int) []JobEvent {
	t.Helper()
	var out []JobEvent
	deadline := time.After(5 * time.Second)
	for len(out) < n {
		select {
		case ev, ok := <-sub.C:
			if !ok {
				t.Fatalf("stream closed after %d events, want %d", len(out), n)
			}
			out = append(out, ev)
		case <-deadline:
			t.Fatalf("timed out after %d events, want %d", len(out), n)
		}
	}
	return out
}

func TestServerWatchStreamsTransitions(t *testing.T) {
	ctx := context.Background()
	srv := NewServer(8, true, nil)
	sub, err := srv.Watch(ctx, AllJobs)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()

	id, err := srv.Submit(ctx, spec("a", topo(2, 2), 8000))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.JobEnd(ctx, id); err != nil {
		t.Fatal(err)
	}
	evs := collectEvents(t, sub, 3)
	kinds := []string{evs[0].Kind, evs[1].Kind, evs[2].Kind}
	if kinds[0] != "submit" || kinds[1] != "start" || kinds[2] != "end" {
		t.Fatalf("kinds %v", kinds)
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("seq %d at position %d", ev.Seq, i)
		}
		if ev.JobID != id {
			t.Fatalf("event for job %d, want %d", ev.JobID, id)
		}
		if ev.Busy+ev.Free != 8 {
			t.Fatalf("busy+free = %d", ev.Busy+ev.Free)
		}
	}
}

func TestServerWatchFiltersByJob(t *testing.T) {
	ctx := context.Background()
	srv := NewServer(8, true, nil)
	a, err := srv.Submit(ctx, spec("a", topo(1, 2), 8000))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := srv.Watch(ctx, a)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()

	// Another job's events must not reach this subscription; history from
	// before the Watch call must not replay.
	b, err := srv.Submit(ctx, spec("b", topo(1, 2), 8000))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.JobEnd(ctx, b); err != nil {
		t.Fatal(err)
	}
	if err := srv.JobEnd(ctx, a); err != nil {
		t.Fatal(err)
	}
	evs := collectEvents(t, sub, 1)
	if evs[0].Kind != "end" || evs[0].JobID != a {
		t.Fatalf("event %+v", evs[0])
	}
}

func TestServerWatchCancelClosesStream(t *testing.T) {
	srv := NewServer(4, false, nil)
	sub, err := srv.Watch(context.Background(), AllJobs)
	if err != nil {
		t.Fatal(err)
	}
	sub.Cancel()
	select {
	case _, ok := <-sub.C:
		if ok {
			t.Fatal("got event after cancel")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream not closed after cancel")
	}
	// Publishing after cancel must not panic or block.
	if _, err := srv.Submit(context.Background(), spec("a", topo(1, 2), 8000)); err != nil {
		t.Fatal(err)
	}
}

func TestStatusSnapshot(t *testing.T) {
	ctx := context.Background()
	srv := NewServer(4, false, nil)
	running, err := srv.Submit(ctx, spec("r", topo(2, 2), 8000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(ctx, spec("q", topo(2, 2), 8000)); err != nil {
		t.Fatal(err)
	}
	st, err := srv.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 4 || st.Free != 0 || st.Busy != 4 || st.QueueLen != 1 {
		t.Fatalf("status %+v", st)
	}
	if len(st.Jobs) != 2 || st.Jobs[0].ID != running || st.Jobs[0].State != "running" || st.Jobs[0].Procs != 4 {
		t.Fatalf("jobs %+v", st.Jobs)
	}
	if st.Jobs[1].State != "queued" || st.Jobs[1].Procs != 0 {
		t.Fatalf("queued job %+v", st.Jobs[1])
	}
}
