package scheduler

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/grid"
)

func queuedJob(id, need int) *Job {
	return &Job{
		ID:    id,
		State: Queued,
		Spec:  JobSpec{InitialTopo: grid.Topology{Rows: 1, Cols: need}},
	}
}

// TestQueuePrunesDrainedNeedBuckets is the regression test for the
// unbounded-index bug: a long-running daemon draining jobs with many
// distinct processor needs must not keep a dead bucket (and a needs-slice
// entry bestFit rescans) per need forever.
func TestQueuePrunesDrainedNeedBuckets(t *testing.T) {
	var q jobQueue
	const n = 500
	jobs := make([]*Job, n)
	for i := range jobs {
		jobs[i] = queuedJob(i, i+1)
		q.push(jobs[i])
	}
	if len(q.need) != n || len(q.needs) != n {
		t.Fatalf("index has %d/%d buckets after %d distinct pushes", len(q.need), len(q.needs), n)
	}
	for _, j := range jobs {
		j.State = Running
		q.take(j)
	}
	if q.len() != 0 {
		t.Fatalf("queue reports %d live jobs after drain", q.len())
	}
	if len(q.need) != 0 || len(q.needs) != 0 {
		t.Errorf("need index retains %d map / %d slice buckets after full drain", len(q.need), len(q.needs))
	}
}

// TestQueueIndexBoundedUnderChurn models the daemon workload: every round
// submits jobs with fresh, never-repeated needs and drains them. The index
// must stay proportional to the in-flight needs, not to history.
func TestQueueIndexBoundedUnderChurn(t *testing.T) {
	var q jobQueue
	id := 0
	for round := 0; round < 50; round++ {
		batch := make([]*Job, 100)
		for i := range batch {
			id++
			batch[i] = queuedJob(id, round*1000+i+1)
			q.push(batch[i])
		}
		for _, j := range batch {
			j.State = Running
			q.take(j)
		}
		if len(q.needs) > 150 {
			t.Fatalf("round %d: index grew to %d buckets", round, len(q.needs))
		}
	}
	if len(q.needs) > 150 || len(q.need) > 150 {
		t.Errorf("index retains %d slice / %d map buckets after churn", len(q.needs), len(q.need))
	}
}

// TestBestFitPrunesDeadBuckets checks the eager path: backfill scans must
// drop buckets they find empty instead of rescanning them on every pass.
func TestBestFitPrunesDeadBuckets(t *testing.T) {
	var q jobQueue
	jobs := make([]*Job, 10)
	for i := range jobs {
		jobs[i] = queuedJob(i, i+1)
		q.push(jobs[i])
	}
	// All but the need-10 job start through the head index (lazy removal:
	// their bucket entries go stale without take's sweep noticing yet).
	for _, j := range jobs[:9] {
		j.State = Running
	}
	best := q.bestFit(20)
	if best != jobs[9] {
		t.Fatalf("bestFit returned %v, want the need-10 job", best)
	}
	if len(q.need) != 1 || len(q.needs) != 1 {
		t.Errorf("bestFit left %d map / %d slice buckets, want 1", len(q.need), len(q.needs))
	}
	// A pruned need must be usable again.
	j := queuedJob(100, 3)
	q.push(j)
	if got := q.bestFit(5); got != j {
		t.Errorf("re-pushed need not found: got %v", got)
	}
}

// TestWindowMatchesFullSortReference is the property test pinning the
// queue's head-window traversal (the priority-list walk that replaced the
// bounded-frontier heap walk) against a naive reference: sort every live
// job by the total jobLess order and truncate. Randomized push/take
// interleavings with heavy duplicate-priority ties, every k in 1..64.
func TestWindowMatchesFullSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		var q jobQueue
		var live []*Job
		id := 0
		nOps := 50 + rng.Intn(200)
		for op := 0; op < nOps; op++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(live))
				j := live[i]
				j.State = Running
				q.take(j)
				live = append(live[:i], live[i+1:]...)
			} else {
				j := queuedJob(id, 1+rng.Intn(16))
				j.Spec.Priority = rng.Intn(4) // few levels => many ties
				id++
				q.push(j)
				live = append(live, j)
			}
		}
		ref := append([]*Job{}, live...)
		sort.Slice(ref, func(i, j int) bool { return jobLess(ref[i], ref[j]) })
		for k := 1; k <= 64; k++ {
			got := q.window(nil, k)
			want := ref
			if len(want) > k {
				want = want[:k]
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d k=%d: window has %d jobs, reference %d", trial, k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d k=%d pos %d: window job %d, reference job %d",
						trial, k, i, got[i].ID, want[i].ID)
				}
			}
		}
		if h := q.head(); len(ref) > 0 && h != ref[0] {
			t.Fatalf("trial %d: head is job %v, reference head %d", trial, h, ref[0].ID)
		} else if len(ref) == 0 && h != nil {
			t.Fatalf("trial %d: head %d on an empty queue", trial, h.ID)
		}
	}
}

// TestBestFitStillMatchesLinearOrder guards the pruning change: among
// fitting jobs the earliest in head order must still win.
func TestBestFitStillMatchesLinearOrder(t *testing.T) {
	var q jobQueue
	lowPrio := queuedJob(1, 2)
	highPrio := queuedJob(2, 4)
	highPrio.Spec.Priority = 5
	q.push(lowPrio)
	q.push(highPrio)
	if got := q.bestFit(4); got != highPrio {
		t.Errorf("bestFit = job %d, want the high-priority job", got.ID)
	}
	if got := q.bestFit(3); got != lowPrio {
		t.Errorf("bestFit under tight fit = job %d, want the small job", got.ID)
	}
}
