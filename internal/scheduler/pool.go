package scheduler

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// shard is one independently locked partition of the processor pool.
type shard struct {
	mu   sync.Mutex
	free int
}

// Pool is the sharded processor pool. The cluster's processors are split
// into fixed partitions, each guarded by its own lock, so concurrent
// allocation and release (the Server handling resize points from many jobs
// at once) contend per-shard instead of on one global lock. A router places
// each request on the shard with the most free capacity and steals the
// remainder from other shards when no single shard can satisfy it — the
// cross-shard path that lets a job expand beyond its home partition.
//
// A global atomic counter tracks total free capacity so fit checks
// (Free()) never take a lock.
type Pool struct {
	shards []shard
	total  int
	free   atomic.Int64
}

// Grant records the processors a job holds on each shard. The zero value
// holds nothing. A grant is bound to the pool its holdings came from: an
// emptied grant may be reused against any pool (its per-shard vector is
// resized to the new pool), but mixing live holdings across pools is
// refused loudly rather than corrupting either pool's accounting.
type Grant struct {
	parts []int // procs held per shard index
	pool  *Pool // pool the holdings were taken from (nil until first use)
}

// Count returns the number of processors the grant holds.
func (g *Grant) Count() int {
	n := 0
	for _, p := range g.parts {
		n += p
	}
	return n
}

// Shards returns the number of distinct shards the grant spans.
func (g *Grant) Shards() int {
	n := 0
	for _, p := range g.parts {
		if p > 0 {
			n++
		}
	}
	return n
}

// DefaultShards picks a shard count for a pool: one shard per 64
// processors, clamped to [1, 16]. Small paper-scale clusters (System X's 36
// processors) get a single shard and behave exactly like the unsharded
// design; large simulated clusters spread contention.
func DefaultShards(total int) int {
	s := total / 64
	if s < 1 {
		s = 1
	}
	if s > 16 {
		s = 16
	}
	return s
}

// NewPool builds a pool of total processors split across nShards
// partitions. Remainder processors go to the lowest-indexed shards so the
// partition is deterministic.
func NewPool(total, nShards int) *Pool {
	if total < 0 {
		total = 0
	}
	if nShards < 1 {
		nShards = 1
	}
	if nShards > total && total > 0 {
		nShards = total
	}
	p := &Pool{shards: make([]shard, nShards), total: total}
	base, rem := 0, 0
	if nShards > 0 {
		base, rem = total/nShards, total%nShards
	}
	for i := range p.shards {
		p.shards[i].free = base
		if i < rem {
			p.shards[i].free++
		}
	}
	p.free.Store(int64(total))
	return p
}

// Total returns the pool's capacity.
func (p *Pool) Total() int { return p.total }

// NumShards returns the number of partitions.
func (p *Pool) NumShards() int { return len(p.shards) }

// Free returns the total idle capacity. It is exact when the pool is
// quiescent and a lock-free estimate while allocations are in flight.
func (p *Pool) Free() int { return int(p.free.Load()) }

// Alloc reserves n processors and returns the grant, or false if the pool
// cannot currently satisfy the request. Placement is deterministic for a
// single-threaded caller: the request lands on the shard with the most free
// capacity (lowest index on ties) and steals the remainder from the other
// shards in descending-free order.
func (p *Pool) Alloc(n int) (Grant, bool) {
	var g Grant
	if !p.AllocInto(&g, n) {
		return Grant{}, false
	}
	return g, true
}

// AllocInto reserves n additional processors into an existing grant (job
// expansion). On failure the grant is left unchanged and any partial
// reservation is rolled back.
func (p *Pool) AllocInto(g *Grant, n int) bool {
	if n <= 0 {
		return n == 0
	}
	if int(p.free.Load()) < n {
		return false
	}
	// A zero-value grant, or one emptied against another pool, rebinds to
	// this pool with a freshly sized per-shard vector. Live holdings from a
	// different pool cannot be mixed in: releasing them here would credit
	// the other pool's processors to this one.
	if g.pool != p {
		if g.Count() > 0 {
			panic(fmt.Sprintf("scheduler: AllocInto: grant holds %d procs from a different pool", g.Count()))
		}
		g.pool = p
		g.parts = make([]int, len(p.shards))
	}
	// Rank shards by free capacity (descending, index ascending on ties).
	// The snapshot is racy under concurrency — it only orders the attempt;
	// each take re-checks under the shard lock. The working vectors live in
	// stack arrays for the common shard counts (DefaultShards caps at 16),
	// so steady-state start/expand paths allocate nothing.
	var orderBuf, freeBuf, takenBuf [maxStackShards]int
	var order, frees, taken []int
	if ns := len(p.shards); ns <= maxStackShards {
		order, frees, taken = orderBuf[:ns], freeBuf[:ns], takenBuf[:ns]
	} else {
		order, frees, taken = make([]int, ns), make([]int, ns), make([]int, ns)
	}
	p.rankShardsInto(order, frees)
	remaining := n
	for _, si := range order {
		if remaining == 0 {
			break
		}
		remaining -= p.takeFrom(si, remaining, taken)
	}
	if remaining > 0 {
		// Lost a race or fragmented below the estimate: roll back.
		for si, k := range taken {
			if k > 0 {
				p.put(si, k)
			}
		}
		return false
	}
	for si, k := range taken {
		g.parts[si] += k
	}
	return true
}

// takeFrom reserves up to want processors from shard si, recording the take.
func (p *Pool) takeFrom(si, want int, taken []int) int {
	s := &p.shards[si]
	s.mu.Lock()
	k := s.free
	if k > want {
		k = want
	}
	s.free -= k
	s.mu.Unlock()
	if k > 0 {
		p.free.Add(int64(-k))
		taken[si] = k
	}
	return k
}

// put returns k processors to shard si.
func (p *Pool) put(si, k int) {
	s := &p.shards[si]
	s.mu.Lock()
	s.free += k
	s.mu.Unlock()
	p.free.Add(int64(k))
}

// maxStackShards is the largest shard count AllocInto serves from
// stack-resident scratch; DefaultShards clamps to it, so heap fallback only
// triggers for hand-built pools with unusually many shards.
const maxStackShards = 16

// rankShardsInto fills order with shard indices sorted by free capacity
// descending, index ascending on ties (insertion sort: shard counts are
// small). frees is caller scratch of the same length.
func (p *Pool) rankShardsInto(order, frees []int) {
	for i := range p.shards {
		order[i] = i
		p.shards[i].mu.Lock()
		frees[i] = p.shards[i].free
		p.shards[i].mu.Unlock()
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && frees[order[j]] > frees[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
}

// Release returns n processors from the grant to the pool (job shrink),
// draining the grant's largest holdings first so jobs converge back onto
// few shards.
func (p *Pool) Release(g *Grant, n int) error {
	if n < 0 || n > g.Count() {
		return fmt.Errorf("scheduler: release %d from grant of %d", n, g.Count())
	}
	if g.pool != nil && g.pool != p && g.Count() > 0 {
		return fmt.Errorf("scheduler: release into a pool the grant's %d procs were not taken from", g.Count())
	}
	for si := len(p.shards); si < len(g.parts); si++ {
		if g.parts[si] > 0 {
			return fmt.Errorf("scheduler: grant holds %d procs on shard %d, beyond this pool's %d shards",
				g.parts[si], si, len(p.shards))
		}
	}
	for n > 0 {
		// Largest part first (lowest index on ties).
		best := -1
		for si, k := range g.parts {
			if k > 0 && (best < 0 || k > g.parts[best]) {
				best = si
			}
		}
		k := g.parts[best]
		if k > n {
			k = n
		}
		g.parts[best] -= k
		p.put(best, k)
		n -= k
	}
	return nil
}

// ReleaseAll returns every processor the grant holds. The grant must have
// been filled from this pool: holdings taken from a different pool (or on
// shards this pool does not have) cannot be returned here and panic rather
// than corrupt both pools' accounting silently.
func (p *Pool) ReleaseAll(g *Grant) {
	if g.pool != nil && g.pool != p && g.Count() > 0 {
		panic(fmt.Sprintf("scheduler: ReleaseAll into a pool the grant's %d procs were not taken from", g.Count()))
	}
	for si, k := range g.parts {
		if k > 0 {
			if si >= len(p.shards) {
				panic(fmt.Sprintf("scheduler: grant holds %d procs on shard %d, beyond this pool's %d shards",
					k, si, len(p.shards)))
			}
			g.parts[si] = 0
			p.put(si, k)
		}
	}
}
