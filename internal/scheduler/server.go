package scheduler

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/grid"
)

// JobStarter launches a job's processes once the Application Scheduler
// allocates it (the paper's Job Startup thread hands the job to the
// application monitor on the first node). It runs on its own goroutine.
type JobStarter func(job *Job)

// Server is the active, real-time front of the scheduler: it wraps the
// passive Core with wall-clock timing, asynchronous job startup and a
// job-event broker, and implements the full capability interface
// (resize.Scheduler) the resizing library and the wire transports share —
// so in-process and remote schedulers are interchangeable, including
// Wait and Watch. Every call takes a context for deadline/cancel
// uniformity with the remote implementations; in-process calls other than
// Wait/WaitAll never block on it.
//
// Mapping to the paper's five components: Submit is the Application
// Scheduler's command-line submission path; the JobStarter goroutines are
// the Job Startup thread; Contact is the Remap Scheduler; the Profile
// records maintained inside the Core are the Performance Profiler; and
// JobEnd/JobError are the System Monitor receiving signals from per-node
// application monitors.
type Server struct {
	mu      sync.Mutex
	core    *Core
	starter JobStarter
	epoch   time.Time
	done    map[int]chan struct{}

	// Event broker state (see watch.go): pubIdx is the high-water mark
	// into core.Events already fanned out, seq the last published event
	// sequence number. seq is atomic so durability snapshots can read it
	// from inside the journal hook, which runs while s.mu is already held
	// by the mutating call.
	subs    map[int]*subscriber
	nextSub int
	pubIdx  int
	seq     atomic.Uint64
}

// NewServer wraps a Core with a DefaultShards processor pool. starter may
// be nil when jobs are driven externally (e.g. by tests calling the client
// methods directly).
func NewServer(total int, backfill bool, starter JobStarter) *Server {
	return NewServerCore(NewCore(total, backfill), starter)
}

// NewServerCore wraps an explicitly configured Core (custom pool shard
// count, tracing disabled, a non-default policy).
func NewServerCore(core *Core, starter JobStarter) *Server {
	return &Server{
		core:    core,
		starter: starter,
		//lint:allow detcore the server epoch is the one sanctioned wall-clock read; all scheduler timestamps derive from Now() relative to it
		epoch:  time.Now(),
		done:   make(map[int]chan struct{}),
		pubIdx: len(core.Events),
	}
}

// NewServerRecovered wraps a core reconstructed by journal recovery. seq
// seeds the watch-event sequence so streams resume gap-detectably where
// the crashed server left off; clock is the last journaled timestamp, and
// the server's epoch is backdated so Now() continues monotonically past
// it. Wait channels are rebuilt for every recovered job (already closed
// for Done ones, so Wait returns immediately).
func NewServerRecovered(core *Core, seq uint64, clock float64, starter JobStarter) *Server {
	s := &Server{
		core:    core,
		starter: starter,
		//lint:allow detcore recovered-epoch backdating: the one wall-clock read that re-anchors the journaled clock after a crash
		epoch:  time.Now().Add(-time.Duration(clock * float64(time.Second))),
		done:   make(map[int]chan struct{}),
		pubIdx: len(core.Events),
	}
	s.seq.Store(seq)
	for _, j := range core.Jobs() {
		ch := make(chan struct{})
		if j.State == Done {
			close(ch)
		}
		s.done[j.ID] = ch
	}
	return s
}

// RelaunchRunning invokes the JobStarter for every job the recovered core
// believes is running. A daemon whose workers live in-process calls this
// after recovery: the worker goroutines died with the old process, so the
// jobs restart on their recovered allocations. Externally driven jobs must
// NOT be relaunched — their workers survived and reconnect on their own.
func (s *Server) RelaunchRunning() []*Job {
	s.mu.Lock()
	var running []*Job
	for _, j := range s.core.Jobs() {
		if j.State == Running {
			running = append(running, j)
		}
	}
	s.mu.Unlock()
	s.launch(running)
	return running
}

// Now returns the scheduler clock in seconds since server start.
//
//lint:allow detcore Now() is the epoch boundary: the single conversion from wall clock to the deterministic scheduler clock
func (s *Server) Now() float64 { return time.Since(s.epoch).Seconds() }

// Seq returns the sequence number of the most recently published watch
// event. Durability snapshots persist it so a recovered server's streams
// continue the numbering.
func (s *Server) Seq() uint64 { return s.seq.Load() }

// Core exposes the underlying state machine for inspection (tests,
// experiment harnesses). Callers must not mutate it concurrently with
// server operation.
func (s *Server) Core() *Core { return s.core }

// Submit enqueues a job and returns its id; if processors are available it
// (and any backfilled jobs) start immediately via the JobStarter.
func (s *Server) Submit(ctx context.Context, spec JobSpec) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	s.mu.Lock()
	job, started, err := s.core.Submit(spec, s.Now())
	if err != nil {
		s.mu.Unlock()
		return 0, err
	}
	s.done[job.ID] = make(chan struct{})
	s.publishLocked()
	s.mu.Unlock()
	s.launch(started)
	return job.ID, nil
}

func (s *Server) launch(started []*Job) {
	if s.starter == nil {
		return
	}
	for _, j := range started {
		go s.starter(j)
	}
}

// Contact implements the resize library's contact_scheduler call.
func (s *Server) Contact(ctx context.Context, jobID int, topo grid.Topology, iterTime, redistTime float64) (Decision, error) {
	if err := ctx.Err(); err != nil {
		return Decision{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	d, err := s.core.Contact(jobID, topo, iterTime, redistTime, s.Now())
	s.publishLocked()
	return d, err
}

// ResizeComplete reports that a granted resize has finished; freed
// processors are recycled into queued jobs.
func (s *Server) ResizeComplete(ctx context.Context, jobID int, redistTime float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	started, err := s.core.ResizeComplete(jobID, redistTime, s.Now())
	s.publishLocked()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	s.launch(started)
	return nil
}

// Rebalance drives one global-rebalancer planning tick: when the
// installed arbiter implements Planner, the tick is journaled and the
// planner recomputes its cluster-wide directive set (delivered at each
// job's next Contact). The daemon's -rebalance-every ticker calls this
// periodically; with no Planner installed it is a no-op.
func (s *Server) Rebalance(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.core.Rebalance(s.Now())
}

// JobEnd is the System Monitor's job-completion signal.
func (s *Server) JobEnd(ctx context.Context, jobID int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.complete(jobID, s.core.Finish)
}

// JobError is the System Monitor's job-error signal: the application
// monitor reports an internal failure and the scheduler deletes the job and
// recovers its resources.
func (s *Server) JobError(ctx context.Context, jobID int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.complete(jobID, s.core.Fail)
}

func (s *Server) complete(jobID int, fn func(int, float64) ([]*Job, error)) error {
	s.mu.Lock()
	started, err := fn(jobID, s.Now())
	var ch chan struct{}
	if err == nil {
		ch = s.done[jobID]
	}
	s.publishLocked()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if ch != nil {
		close(ch)
	}
	s.launch(started)
	return nil
}

// Wait blocks until the job has finished or the context is done.
func (s *Server) Wait(ctx context.Context, jobID int) error {
	s.mu.Lock()
	ch, ok := s.done[jobID]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("scheduler: wait: unknown job %d", jobID)
	}
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// WaitAll blocks until every submitted job has finished or the context is
// done.
func (s *Server) WaitAll(ctx context.Context) error {
	s.mu.Lock()
	chans := make([]chan struct{}, 0, len(s.done))
	for _, ch := range s.done {
		//lint:allow detcore wait-on-all: every channel is received from regardless of order, so map-iteration order cannot leak
		chans = append(chans, ch)
	}
	s.mu.Unlock()
	for _, ch := range chans {
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}
