package scheduler

import (
	"fmt"

	"repro/internal/grid"
)

// LinearCore is the pre-refactor scheduler core, kept as a reference
// implementation: a single free counter and a linearly scanned wait queue.
// Submission inserts with an O(n) shift, every scheduling pass rescans the
// whole queue, and Contact materializes the full queued-needs list, so the
// cost per operation grows with queue length.
//
// It exists for two reasons: differential tests drive LinearCore and Core
// with identical operation sequences and require identical schedules, and
// BenchmarkSchedulerThroughput measures the event-indexed core's speedup
// against it. Production code paths should use Core.
type LinearCore struct {
	Total    int
	Backfill bool
	Policy   Policy

	arb     Arbiter
	free    int
	nextID  int
	queue   []*Job
	jobs    map[int]*Job
	running []*Job // id-sorted index backing EachRunning

	Events []AllocEvent

	busySeconds  float64
	lastBusy     int
	lastBusyTime float64
}

// NewLinearCore creates the reference scheduler for a cluster with total
// processors.
func NewLinearCore(total int, backfill bool) *LinearCore {
	return &LinearCore{Total: total, Backfill: backfill, Policy: PaperPolicy{},
		free: total, jobs: make(map[int]*Job)}
}

// Free returns the number of idle processors.
func (c *LinearCore) Free() int { return c.free }

// Busy returns the number of allocated processors.
func (c *LinearCore) Busy() int { return c.Total - c.free }

// QueueLen returns the number of waiting jobs.
func (c *LinearCore) QueueLen() int { return len(c.queue) }

// SetPolicy replaces the Remap Scheduler policy.
func (c *LinearCore) SetPolicy(p Policy) { c.Policy = p }

// SetArbiter installs a cluster-wide resize arbiter (nil restores the
// default single-job policy path).
func (c *LinearCore) SetArbiter(a Arbiter) { c.arb = a }

// Arbiter returns the installed arbiter (nil for the default path).
func (c *LinearCore) Arbiter() Arbiter { return c.arb }

// AllocEvents returns the allocation trace.
func (c *LinearCore) AllocEvents() []AllocEvent { return c.Events }

// BusySeconds integrates busy processors over virtual time up to until.
func (c *LinearCore) BusySeconds(until float64) float64 {
	s := c.busySeconds
	if until > c.lastBusyTime {
		s += float64(c.lastBusy) * (until - c.lastBusyTime)
	}
	return s
}

// Job looks up a job by id.
func (c *LinearCore) Job(id int) (*Job, bool) {
	j, ok := c.jobs[id]
	return j, ok
}

// Jobs returns all jobs in submission order.
func (c *LinearCore) Jobs() []*Job {
	out := make([]*Job, 0, len(c.jobs))
	for id := 0; id < c.nextID; id++ {
		if j, ok := c.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

func (c *LinearCore) record(now float64, j *Job, kind string) {
	busy := c.Busy()
	if now > c.lastBusyTime {
		c.busySeconds += float64(c.lastBusy) * (now - c.lastBusyTime)
		c.lastBusyTime = now
	}
	c.lastBusy = busy
	c.Events = append(c.Events, AllocEvent{
		Time: now, JobID: j.ID, Job: j.Spec.Name, Kind: kind, Topo: j.Topo, Busy: busy,
	})
}

// Submit enqueues a job with a linear priority-insertion scan and
// immediately tries to schedule the queue.
func (c *LinearCore) Submit(spec JobSpec, now float64) (*Job, []*Job, error) {
	j, err := newJob(spec, c.nextID, c.Total, now)
	if err != nil {
		return nil, nil, err
	}
	c.nextID++
	c.jobs[j.ID] = j
	pos := len(c.queue)
	for i, q := range c.queue {
		if j.Spec.Priority > q.Spec.Priority {
			pos = i
			break
		}
	}
	c.queue = append(c.queue, nil)
	copy(c.queue[pos+1:], c.queue[pos:])
	c.queue[pos] = j
	c.record(now, j, "submit")
	started := c.TrySchedule(now)
	return j, started, nil
}

// TrySchedule starts queued jobs under FCFS order with a full linear scan
// for backfill.
func (c *LinearCore) TrySchedule(now float64) []*Job {
	var started []*Job
	for len(c.queue) > 0 {
		head := c.queue[0]
		if head.Spec.InitialTopo.Count() > c.free {
			break
		}
		c.start(head, now)
		c.queue = c.queue[1:]
		started = append(started, head)
	}
	if c.Backfill {
		kept := c.queue[:0]
		for _, j := range c.queue {
			if j.Spec.InitialTopo.Count() <= c.free {
				c.start(j, now)
				started = append(started, j)
			} else {
				kept = append(kept, j)
			}
		}
		c.queue = kept
	}
	return started
}

func (c *LinearCore) start(j *Job, now float64) {
	j.State = Running
	c.running = insertRunning(c.running, j)
	j.StartTime = now
	j.Topo = j.Spec.InitialTopo
	c.free -= j.Topo.Count()
	c.record(now, j, "start")
}

// queuedNeeds lists the processor requirements of every waiting job.
func (c *LinearCore) queuedNeeds() []int {
	if len(c.queue) == 0 {
		return nil
	}
	needs := make([]int, len(c.queue))
	for i, j := range c.queue {
		needs[i] = j.Spec.InitialTopo.Count()
	}
	return needs
}

// queuedWindow lists every waiting job as an arbiter view. Unlike Core's
// bounded window, the reference implementation materializes the whole
// queue.
func (c *LinearCore) queuedWindow(now float64) []QueuedView {
	if len(c.queue) == 0 {
		return nil
	}
	out := make([]QueuedView, len(c.queue))
	for i, j := range c.queue {
		out[i] = QueuedView{
			ID:       j.ID,
			Priority: j.Spec.Priority,
			Need:     j.Spec.InitialTopo.Count(),
			Wait:     now - j.SubmitTime,
		}
	}
	return out
}

// EachRunning implements ClusterView (ascending job-id order).
func (c *LinearCore) EachRunning(yield func(ContactView) bool) {
	eachRunning(c.running, yield)
}

// snapshot assembles the arbiter's view of the cluster at a resize point.
func (c *LinearCore) snapshot(j *Job, now float64) ClusterSnapshot {
	return ClusterSnapshot{
		Now:      now,
		Total:    c.Total,
		Idle:     c.free,
		Caller:   contactView(j),
		Queued:   c.queuedWindow(now),
		QueueLen: len(c.queue),
		Cluster:  c,
	}
}

// globalSnapshot assembles the caller-less planning-tick snapshot
// (Caller.ID = -1, mirroring Core).
func (c *LinearCore) globalSnapshot(now float64) ClusterSnapshot {
	return ClusterSnapshot{
		Now:      now,
		Total:    c.Total,
		Idle:     c.free,
		Caller:   ContactView{ID: -1},
		Queued:   c.queuedWindow(now),
		QueueLen: len(c.queue),
		Cluster:  c,
	}
}

// Rebalance drives a planning tick (reference implementation). The
// LinearCore has no journal, so unlike Core.Rebalance nothing is
// persisted; a Planner arbiter simply recomputes its plan.
func (c *LinearCore) Rebalance(now float64) error {
	if pl, ok := c.arb.(Planner); ok {
		pl.Rebalance(c.globalSnapshot(now))
	}
	return nil
}

// Contact is the Remap Scheduler entry point (reference implementation).
func (c *LinearCore) Contact(jobID int, topo grid.Topology, iterTime, redistTime float64, now float64) (Decision, error) {
	j, err := beginContact(c.jobs, jobID, topo, iterTime)
	if err != nil {
		return Decision{}, err
	}
	var d Decision
	if c.arb != nil {
		d = c.arb.Decide(c.snapshot(j, now))
	} else {
		d = defaultDecide(c.Policy, j, c.free, c.queuedNeeds())
	}
	return applyDecision(j, d,
		// Mirror Core's failed-grant degradation: an arbiter decision that
		// outgrows the free counter comes back as ActionNone instead of
		// driving the pool negative (unreachable for the fit-checked
		// published policy).
		func(delta int) bool {
			if delta > c.free {
				return false
			}
			c.free -= delta
			return true
		},
		func(kind string) { c.record(now, j, kind) }), nil
}

// ResizeComplete confirms a granted resize (reference implementation).
func (c *LinearCore) ResizeComplete(jobID int, redistTime float64, now float64) ([]*Job, error) {
	j, ok := c.jobs[jobID]
	if !ok {
		return nil, fmt.Errorf("scheduler: unknown job %d", jobID)
	}
	if freed := finishResize(j, redistTime); freed > 0 {
		c.free += freed
		j.pendingFree = 0
		return c.TrySchedule(now), nil
	}
	return nil, nil
}

// Finish marks a job done and recycles its processors.
func (c *LinearCore) Finish(jobID int, now float64) ([]*Job, error) {
	return c.complete(jobID, now, "end")
}

// Fail deletes an errored job and recovers its resources.
func (c *LinearCore) Fail(jobID int, now float64) ([]*Job, error) {
	return c.complete(jobID, now, "error")
}

func (c *LinearCore) complete(jobID int, now float64, kind string) ([]*Job, error) {
	j, err := finishJob(c.jobs, jobID, now, kind)
	if err != nil {
		return nil, err
	}
	c.running = removeRunning(c.running, j)
	c.free += j.Topo.Count() + j.pendingFree
	j.pendingFree = 0
	c.record(now, j, kind)
	return c.TrySchedule(now), nil
}
