package scheduler

import (
	"fmt"

	"repro/internal/grid"
)

// LinearCore is the pre-refactor scheduler core, kept as a reference
// implementation: a single free counter and a linearly scanned wait queue.
// Submission inserts with an O(n) shift, every scheduling pass rescans the
// whole queue, and Contact materializes the full queued-needs list, so the
// cost per operation grows with queue length.
//
// It exists for two reasons: differential tests drive LinearCore and Core
// with identical operation sequences and require identical schedules, and
// BenchmarkSchedulerThroughput measures the event-indexed core's speedup
// against it. Production code paths should use Core.
type LinearCore struct {
	Total    int
	Backfill bool
	Policy   Policy

	free   int
	nextID int
	queue  []*Job
	jobs   map[int]*Job

	Events []AllocEvent

	busySeconds  float64
	lastBusy     int
	lastBusyTime float64
}

// NewLinearCore creates the reference scheduler for a cluster with total
// processors.
func NewLinearCore(total int, backfill bool) *LinearCore {
	return &LinearCore{Total: total, Backfill: backfill, Policy: PaperPolicy{},
		free: total, jobs: make(map[int]*Job)}
}

// Free returns the number of idle processors.
func (c *LinearCore) Free() int { return c.free }

// Busy returns the number of allocated processors.
func (c *LinearCore) Busy() int { return c.Total - c.free }

// QueueLen returns the number of waiting jobs.
func (c *LinearCore) QueueLen() int { return len(c.queue) }

// SetPolicy replaces the Remap Scheduler policy.
func (c *LinearCore) SetPolicy(p Policy) { c.Policy = p }

// AllocEvents returns the allocation trace.
func (c *LinearCore) AllocEvents() []AllocEvent { return c.Events }

// BusySeconds integrates busy processors over virtual time up to until.
func (c *LinearCore) BusySeconds(until float64) float64 {
	s := c.busySeconds
	if until > c.lastBusyTime {
		s += float64(c.lastBusy) * (until - c.lastBusyTime)
	}
	return s
}

// Job looks up a job by id.
func (c *LinearCore) Job(id int) (*Job, bool) {
	j, ok := c.jobs[id]
	return j, ok
}

// Jobs returns all jobs in submission order.
func (c *LinearCore) Jobs() []*Job {
	out := make([]*Job, 0, len(c.jobs))
	for id := 0; id < c.nextID; id++ {
		if j, ok := c.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

func (c *LinearCore) record(now float64, j *Job, kind string) {
	busy := c.Busy()
	if now > c.lastBusyTime {
		c.busySeconds += float64(c.lastBusy) * (now - c.lastBusyTime)
		c.lastBusyTime = now
	}
	c.lastBusy = busy
	c.Events = append(c.Events, AllocEvent{
		Time: now, JobID: j.ID, Job: j.Spec.Name, Kind: kind, Topo: j.Topo, Busy: busy,
	})
}

// Submit enqueues a job with a linear priority-insertion scan and
// immediately tries to schedule the queue.
func (c *LinearCore) Submit(spec JobSpec, now float64) (*Job, []*Job, error) {
	if !spec.InitialTopo.IsValid() {
		return nil, nil, fmt.Errorf("scheduler: job %q has invalid initial topology", spec.Name)
	}
	if spec.InitialTopo.Count() > c.Total {
		return nil, nil, fmt.Errorf("scheduler: job %q needs %d processors, cluster has %d",
			spec.Name, spec.InitialTopo.Count(), c.Total)
	}
	j := &Job{
		ID:         c.nextID,
		Spec:       spec,
		State:      Queued,
		Topo:       spec.InitialTopo,
		Profile:    NewProfile(),
		SubmitTime: now,
	}
	c.nextID++
	c.jobs[j.ID] = j
	pos := len(c.queue)
	for i, q := range c.queue {
		if j.Spec.Priority > q.Spec.Priority {
			pos = i
			break
		}
	}
	c.queue = append(c.queue, nil)
	copy(c.queue[pos+1:], c.queue[pos:])
	c.queue[pos] = j
	c.record(now, j, "submit")
	started := c.TrySchedule(now)
	return j, started, nil
}

// TrySchedule starts queued jobs under FCFS order with a full linear scan
// for backfill.
func (c *LinearCore) TrySchedule(now float64) []*Job {
	var started []*Job
	for len(c.queue) > 0 {
		head := c.queue[0]
		if head.Spec.InitialTopo.Count() > c.free {
			break
		}
		c.start(head, now)
		c.queue = c.queue[1:]
		started = append(started, head)
	}
	if c.Backfill {
		kept := c.queue[:0]
		for _, j := range c.queue {
			if j.Spec.InitialTopo.Count() <= c.free {
				c.start(j, now)
				started = append(started, j)
			} else {
				kept = append(kept, j)
			}
		}
		c.queue = kept
	}
	return started
}

func (c *LinearCore) start(j *Job, now float64) {
	j.State = Running
	j.StartTime = now
	j.Topo = j.Spec.InitialTopo
	c.free -= j.Topo.Count()
	c.record(now, j, "start")
}

// queuedNeeds lists the processor requirements of every waiting job.
func (c *LinearCore) queuedNeeds() []int {
	needs := make([]int, len(c.queue))
	for i, j := range c.queue {
		needs[i] = j.Spec.InitialTopo.Count()
	}
	return needs
}

// Contact is the Remap Scheduler entry point (reference implementation).
func (c *LinearCore) Contact(jobID int, topo grid.Topology, iterTime, redistTime float64, now float64) (Decision, error) {
	j, ok := c.jobs[jobID]
	if !ok {
		return Decision{}, fmt.Errorf("scheduler: unknown job %d", jobID)
	}
	if j.State != Running {
		return Decision{}, fmt.Errorf("scheduler: job %d contacted while %v", jobID, j.State)
	}
	if topo != j.Topo {
		return Decision{}, fmt.Errorf("scheduler: job %d reports topology %v, scheduler has %v",
			jobID, topo, j.Topo)
	}
	j.Profile.RecordIteration(j.Topo, iterTime)

	done := 0
	for _, v := range j.Profile.Visits {
		done += len(v.IterTimes)
	}
	pol := c.Policy
	if pol == nil {
		pol = PaperPolicy{}
	}
	d := pol.Decide(RemapInput{
		Current:        j.Topo,
		Chain:          j.Spec.Chain,
		Profile:        j.Profile,
		IdleProcs:      c.free,
		QueuedNeeds:    c.queuedNeeds(),
		RemainingIters: j.Spec.Iterations - done,
	})
	switch d.Action {
	case ActionExpand:
		delta := d.Target.Count() - j.Topo.Count()
		c.free -= delta
		j.resizeFrom = j.Topo
		j.Topo = d.Target
		c.record(now, j, "expand")
	case ActionShrink:
		j.pendingFree += j.Topo.Count() - d.Target.Count()
		j.resizeFrom = j.Topo
		j.Topo = d.Target
		c.record(now, j, "shrink")
	}
	return d, nil
}

// ResizeComplete confirms a granted resize (reference implementation).
func (c *LinearCore) ResizeComplete(jobID int, redistTime float64, now float64) ([]*Job, error) {
	j, ok := c.jobs[jobID]
	if !ok {
		return nil, fmt.Errorf("scheduler: unknown job %d", jobID)
	}
	if j.resizeFrom.IsValid() {
		j.Profile.RecordRedist(j.resizeFrom, j.Topo, redistTime)
		j.resizeFrom = grid.Topology{}
	}
	if j.pendingFree > 0 {
		c.free += j.pendingFree
		j.pendingFree = 0
		return c.TrySchedule(now), nil
	}
	return nil, nil
}

// Finish marks a job done and recycles its processors.
func (c *LinearCore) Finish(jobID int, now float64) ([]*Job, error) {
	return c.complete(jobID, now, "end")
}

// Fail deletes an errored job and recovers its resources.
func (c *LinearCore) Fail(jobID int, now float64) ([]*Job, error) {
	return c.complete(jobID, now, "error")
}

func (c *LinearCore) complete(jobID int, now float64, kind string) ([]*Job, error) {
	j, ok := c.jobs[jobID]
	if !ok {
		return nil, fmt.Errorf("scheduler: unknown job %d", jobID)
	}
	if j.State != Running {
		return nil, fmt.Errorf("scheduler: job %d completed (%s) while %v", jobID, kind, j.State)
	}
	j.State = Done
	j.EndTime = now
	c.free += j.Topo.Count() + j.pendingFree
	j.pendingFree = 0
	c.record(now, j, kind)
	return c.TrySchedule(now), nil
}
