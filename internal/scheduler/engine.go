package scheduler

import "fmt"

// Handler processes one event when its timestamp is reached.
type Handler func(ev Event) error

// Engine is the scheduler's event loop: a deterministic virtual clock over
// an EventQueue with per-kind handlers. The cluster simulator registers its
// arrival/resize-point/resize-done handlers and drains the loop; every state
// mutation flows through a timestamped event, so identical inputs replay to
// byte-identical schedules.
type Engine struct {
	q        EventQueue
	now      float64
	handlers [numEventKinds]Handler
	// batch is StepTick's reusable dispatch buffer, so draining millions of
	// events costs no per-tick allocation.
	batch []Event
}

// NewEngine returns an empty engine at virtual time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the engine's virtual clock: the timestamp of the most
// recently dispatched event.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of undelivered events.
func (e *Engine) Pending() int { return e.q.Len() }

// PeekTime returns the timestamp of the earliest pending event, if any —
// the hook crash/restart experiments use to interrupt a run at a chosen
// virtual time between event dispatches.
func (e *Engine) PeekTime() (float64, bool) {
	ev, ok := e.q.Peek()
	return ev.Time, ok
}

// Handle registers the handler for an event kind, replacing any previous
// registration.
func (e *Engine) Handle(kind EventKind, h Handler) {
	e.handlers[kind] = h
}

// At schedules an event at absolute virtual time t. Events scheduled in the
// past are delivered at the current clock (time never runs backwards).
func (e *Engine) At(t float64, kind EventKind, job int) {
	if t < e.now {
		t = e.now
	}
	e.q.Push(t, kind, job)
}

// After schedules an event d seconds after the current virtual time.
func (e *Engine) After(d float64, kind EventKind, job int) {
	e.At(e.now+d, kind, job)
}

// Step dispatches the single earliest pending event. It returns false when
// the queue is empty.
func (e *Engine) Step() (bool, error) {
	ev, ok := e.q.Pop()
	if !ok {
		return false, nil
	}
	e.now = ev.Time
	h := e.handlers[ev.Kind]
	if h == nil {
		return false, fmt.Errorf("scheduler: no handler for %v event", ev.Kind)
	}
	if err := h(ev); err != nil {
		return false, err
	}
	return true, nil
}

// StepTick dispatches every pending event sharing the earliest timestamp —
// one virtual-time tick — in insertion order, exactly as the equivalent
// sequence of Step calls would, but popping the whole coalesced batch from
// the heap at once. Events a handler schedules at the current timestamp are
// dispatched by a later StepTick of the same tick (time does not advance),
// preserving the (time, insertion-seq) order byte for byte. It returns
// false when the queue was empty.
func (e *Engine) StepTick() (bool, error) {
	e.batch = e.q.PopTick(e.batch[:0])
	if len(e.batch) == 0 {
		return false, nil
	}
	e.now = e.batch[0].Time
	for _, ev := range e.batch {
		h := e.handlers[ev.Kind]
		if h == nil {
			return false, fmt.Errorf("scheduler: no handler for %v event", ev.Kind)
		}
		if err := h(ev); err != nil {
			return false, err
		}
	}
	return true, nil
}

// Run drains the event queue, dispatching events in (time, insertion) order
// until none remain or a handler fails. Dispatch is tick-batched via
// StepTick; the order is identical to a Step-per-event loop.
func (e *Engine) Run() error {
	for {
		ok, err := e.StepTick()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}
