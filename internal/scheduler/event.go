package scheduler

// EventKind enumerates the discrete events the scheduler engine processes.
// The same kinds drive both the virtual-time cluster simulator (package
// simcluster) and event-driven test harnesses, so a single deterministic
// loop covers every execution mode.
type EventKind int

const (
	// EvArrival is a job submission entering the system.
	EvArrival EventKind = iota
	// EvResizePoint is a running job reaching the end of an iteration and
	// contacting the Remap Scheduler.
	EvResizePoint
	// EvResizeDone is the resize library confirming a granted resize.
	EvResizeDone
	// EvCompletion is a job finishing its final iteration.
	EvCompletion
	// EvRebalance is a global-rebalancer planning tick (carries no job).
	EvRebalance

	numEventKinds
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvArrival:
		return "arrival"
	case EvResizePoint:
		return "resize-point"
	case EvResizeDone:
		return "resize-done"
	case EvCompletion:
		return "completion"
	case EvRebalance:
		return "rebalance"
	default:
		return "unknown"
	}
}

// Event is one entry in the scheduler's event loop.
type Event struct {
	Time float64
	Kind EventKind
	// Job carries the event's subject: a scheduler job id, or for EvArrival
	// an engine-user-defined index (the simulator uses the position in its
	// arrival list, since the job has no scheduler id yet).
	Job int
	seq uint64
}

// EventQueue is a deterministic priority queue of events ordered by
// timestamp, with FIFO ordering among events carrying equal timestamps
// (insertion sequence breaks ties). It is a hand-rolled binary heap rather
// than container/heap to avoid interface boxing on the hot path; the
// simulator pushes and pops millions of events per run.
//
// The zero value is ready to use. EventQueue is not safe for concurrent
// use; the Engine that owns it runs single-threaded.
type EventQueue struct {
	h   []Event
	seq uint64
}

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// Push schedules an event at time t.
func (q *EventQueue) Push(t float64, kind EventKind, job int) {
	q.seq++
	q.h = append(q.h, Event{Time: t, Kind: kind, Job: job, seq: q.seq})
	q.up(len(q.h) - 1)
}

// Peek returns the earliest event without removing it.
func (q *EventQueue) Peek() (Event, bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	return q.h[0], true
}

// Pop removes and returns the earliest event.
func (q *EventQueue) Pop() (Event, bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	top := q.h[0]
	n := len(q.h) - 1
	q.h[0] = q.h[n]
	q.h = q.h[:n]
	if n > 0 {
		q.down(0)
	}
	return top, true
}

// PopTick removes and appends to dst every pending event sharing the
// earliest timestamp — one virtual-time tick — in insertion order (the heap
// already breaks timestamp ties by insertion sequence). Events pushed while
// the batch is being processed are not included, even at the same
// timestamp: they form a later batch of the same tick, which is exactly the
// order a Pop-per-event loop would dispatch them in.
func (q *EventQueue) PopTick(dst []Event) []Event {
	first, ok := q.Pop()
	if !ok {
		return dst
	}
	dst = append(dst, first)
	for len(q.h) > 0 && q.h[0].Time == first.Time {
		ev, _ := q.Pop()
		dst = append(dst, ev)
	}
	return dst
}

// before reports whether event i sorts ahead of event j.
func (q *EventQueue) before(i, j int) bool {
	if q.h[i].Time != q.h[j].Time {
		return q.h[i].Time < q.h[j].Time
	}
	return q.h[i].seq < q.h[j].seq
}

func (q *EventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.before(i, parent) {
			return
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *EventQueue) down(i int) {
	n := len(q.h)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && q.before(l, min) {
			min = l
		}
		if r < n && q.before(r, min) {
			min = r
		}
		if min == i {
			return
		}
		q.h[i], q.h[min] = q.h[min], q.h[i]
		i = min
	}
}
