package scheduler

import (
	"math/rand"
	"testing"

	"repro/internal/grid"
)

// TestCoreInvariantsUnderRandomOperations drives the scheduler with random
// but legal operation sequences and checks the resource-accounting
// invariants after every step:
//
//   - 0 <= free <= total
//   - free + sum of running jobs' allocations (+ pending shrink returns)
//     == total
//   - a queued job is never larger than the cluster
//   - events carry monotonically non-decreasing timestamps
func TestCoreInvariantsUnderRandomOperations(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		total := 8 + rng.Intn(48)
		c := NewCore(total, rng.Intn(2) == 0)
		now := 0.0
		var running []*Job

		check := func(step string) {
			t.Helper()
			if c.Free() < 0 || c.Free() > c.Total {
				t.Fatalf("seed %d %s: free %d out of [0,%d]", seed, step, c.Free(), c.Total)
			}
			held := 0
			for _, j := range c.Jobs() {
				if j.State == Running {
					held += j.Topo.Count() + j.pendingFree
				}
			}
			if held+c.Free() != c.Total {
				t.Fatalf("seed %d %s: held %d + free %d != total %d",
					seed, step, held, c.Free(), c.Total)
			}
		}

		refreshRunning := func() {
			running = running[:0]
			for _, j := range c.Jobs() {
				if j.State == Running {
					running = append(running, j)
				}
			}
		}

		for op := 0; op < 300; op++ {
			now += rng.Float64() * 10
			refreshRunning()
			switch rng.Intn(4) {
			case 0: // submit
				n := []int{8000, 12000, 14000, 21000}[rng.Intn(4)]
				start, ok := grid.SmallestConfig(n, 2+rng.Intn(4), total)
				if !ok {
					continue
				}
				sp := JobSpec{
					Name: "j", App: "lu", ProblemSize: n,
					Iterations:  1 << 30, // never finishes on its own
					Priority:    rng.Intn(3),
					InitialTopo: start,
					Chain:       grid.GrowthChain(start, n, total),
				}
				if _, _, err := c.Submit(sp, now); err != nil {
					t.Fatalf("seed %d: submit: %v", seed, err)
				}
			case 1: // contact from a random running job
				if len(running) == 0 {
					continue
				}
				j := running[rng.Intn(len(running))]
				iter := 10 + rng.Float64()*100
				if _, err := c.Contact(j.ID, j.Topo, iter, 0, now); err != nil {
					t.Fatalf("seed %d: contact: %v", seed, err)
				}
			case 2: // resize completion
				if len(running) == 0 {
					continue
				}
				j := running[rng.Intn(len(running))]
				if _, err := c.ResizeComplete(j.ID, rng.Float64()*5, now); err != nil {
					t.Fatalf("seed %d: resize complete: %v", seed, err)
				}
			case 3: // finish or fail
				if len(running) == 0 {
					continue
				}
				j := running[rng.Intn(len(running))]
				var err error
				if rng.Intn(4) == 0 {
					_, err = c.Fail(j.ID, now)
				} else {
					_, err = c.Finish(j.ID, now)
				}
				if err != nil {
					t.Fatalf("seed %d: complete: %v", seed, err)
				}
			}
			check("after op")
		}

		// Drain: finish everything and confirm the pool is whole again.
		refreshRunning()
		for _, j := range running {
			if _, err := c.ResizeComplete(j.ID, 0, now); err != nil {
				t.Fatalf("seed %d: drain resize: %v", seed, err)
			}
		}
		refreshRunning()
		for len(running) > 0 {
			if _, err := c.Finish(running[0].ID, now); err != nil {
				t.Fatalf("seed %d: drain finish: %v", seed, err)
			}
			refreshRunning()
			for _, j := range running {
				c.ResizeComplete(j.ID, 0, now)
			}
			refreshRunning()
		}
		if c.QueueLen() > 0 {
			// Queued jobs must all fit an empty cluster; schedule them.
			started := c.TrySchedule(now)
			for len(started) > 0 || c.QueueLen() > 0 {
				refreshRunning()
				if len(running) == 0 {
					t.Fatalf("seed %d: queue stuck with empty cluster", seed)
				}
				c.Finish(running[0].ID, now)
				started = nil
				refreshRunning()
			}
		}
		if c.Free() != c.Total {
			t.Fatalf("seed %d: leaked processors: free %d of %d", seed, c.Free(), c.Total)
		}
		prev := -1.0
		for _, e := range c.Events {
			if e.Time < prev {
				t.Fatalf("seed %d: event times regress", seed)
			}
			prev = e.Time
		}
	}
}
