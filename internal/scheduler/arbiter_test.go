package scheduler

import (
	"math/rand"
	"testing"

	"repro/internal/grid"
)

// referenceDecision is the pre-arbiter Contact decision path verbatim (PR
// 1): record the iteration on the profile, count completed iterations,
// build the RemapInput from the core's idle pool and queued-needs window,
// and run the published policy. The arbitration refactor must reproduce it
// bit for bit.
func referenceDecision(c *Core, j *Job, iterTime float64) Decision {
	prof := cloneProfile(j.Profile)
	prof.RecordIteration(j.Topo, iterTime)
	done := 0
	for _, v := range prof.Visits {
		done += len(v.IterTimes)
	}
	var needs []int
	if c.queue.len() > 0 {
		needs = c.queue.needsWindow(nil, QueuedNeedsWindow)
	}
	return Decide(RemapInput{
		Current:        j.Topo,
		Chain:          j.Spec.Chain,
		Profile:        prof,
		IdleProcs:      c.pool.Free(),
		QueuedNeeds:    needs,
		RemainingIters: j.Spec.Iterations - done,
	})
}

// TestPolicyArbiterMatchesPublishedDecide drives the arbitered Core with
// random operation traces and checks every Contact against the published
// single-job decision computed independently from the same pre-contact
// state. This pins the default arbitration path to the PR 1 semantics
// bit-identically.
func TestPolicyArbiterMatchesPublishedDecide(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		total := 8 + rng.Intn(56)
		c := NewCoreSharded(total, 1+rng.Intn(4), rng.Intn(2) == 0)
		if seed%2 == 1 {
			// The explicit default arbiter and the nil path must agree too.
			c.SetArbiter(PolicyArbiter{})
		}
		now := 0.0
		var running []*Job
		for op := 0; op < 300; op++ {
			now += rng.Float64() * 10
			switch rng.Intn(4) {
			case 0:
				n := []int{8000, 12000, 14000, 21000}[rng.Intn(4)]
				start, ok := grid.SmallestConfig(n, 2+rng.Intn(4), total)
				if !ok {
					continue
				}
				sp := JobSpec{
					Name: "j", App: "lu", ProblemSize: n,
					Iterations:  1 << 30,
					Priority:    rng.Intn(3),
					InitialTopo: start,
					Chain:       grid.GrowthChain(start, n, total),
				}
				if _, _, err := c.Submit(sp, now); err != nil {
					t.Fatal(err)
				}
			case 1, 2:
				if len(running) == 0 {
					continue
				}
				j := running[rng.Intn(len(running))]
				if j.State != Running {
					continue
				}
				iter := 10 + rng.Float64()*100
				want := referenceDecision(c, j, iter)
				got, err := c.Contact(j.ID, j.Topo, iter, 0, now)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("seed %d op %d: decision %+v, published policy says %+v", seed, op, got, want)
				}
				if got.Action != ActionNone {
					if _, err := c.ResizeComplete(j.ID, rng.Float64()*5, now); err != nil {
						t.Fatal(err)
					}
				}
			case 3:
				if len(running) == 0 {
					continue
				}
				j := running[rng.Intn(len(running))]
				if j.State != Running {
					continue
				}
				if _, err := c.Finish(j.ID, now); err != nil {
					t.Fatal(err)
				}
			}
			running = running[:0]
			for _, j := range c.Jobs() {
				if j.State == Running {
					running = append(running, j)
				}
			}
		}
	}
}

// TestSnapshotViews covers the cluster snapshot the cores hand to
// arbiters: the caller view, the priority/age-annotated queued window, and
// the deterministic running-job iteration.
func TestSnapshotViews(t *testing.T) {
	c := NewCore(16, false)
	a, _, err := c.Submit(spec("a", topo(2, 4), 12000), 1) // 8 procs
	if err != nil {
		t.Fatal(err)
	}
	b, _, _ := c.Submit(spec("b", topo(2, 3), 8000), 2) // 6 procs
	qspec := spec("q", topo(2, 4), 14000)               // needs 8: queues
	qspec.Priority = 4
	q, _, _ := c.Submit(qspec, 5)
	if a.State != Running || b.State != Running || q.State != Queued {
		t.Fatalf("states %v/%v/%v", a.State, b.State, q.State)
	}
	if _, err := c.Contact(a.ID, a.Topo, 50, 0, 9); err != nil {
		t.Fatal(err)
	}

	snap := c.snapshot(a, 9)
	if snap.Total != 16 || snap.Idle != 2 {
		t.Fatalf("total/idle %d/%d", snap.Total, snap.Idle)
	}
	if snap.Caller.ID != a.ID || snap.Caller.Topo != a.Topo || snap.Caller.Priority != 0 {
		t.Fatalf("caller view %+v", snap.Caller)
	}
	if snap.Caller.Profile != a.Profile {
		t.Fatal("caller profile must alias the job's live profile")
	}
	if len(snap.Queued) != 1 || snap.QueueLen != 1 {
		t.Fatalf("queued window %v (len %d)", snap.Queued, snap.QueueLen)
	}
	qv := snap.Queued[0]
	if qv.ID != q.ID || qv.Priority != 4 || qv.Need != 8 || qv.Wait != 4 {
		t.Fatalf("queued view %+v", qv)
	}
	if got := snap.QueuedNeeds(); len(got) != 1 || got[0] != 8 {
		t.Fatalf("QueuedNeeds %v", got)
	}

	var ids []int
	snap.Cluster.EachRunning(func(v ContactView) bool {
		ids = append(ids, v.ID)
		return true
	})
	if len(ids) != 2 || ids[0] != a.ID || ids[1] != b.ID {
		t.Fatalf("running iteration order %v, want [%d %d]", ids, a.ID, b.ID)
	}

	// Early termination.
	n := 0
	snap.Cluster.EachRunning(func(ContactView) bool { n++; return false })
	if n != 1 {
		t.Fatalf("EachRunning ignored yield=false (%d yields)", n)
	}
}

// growTo walks a running job up its chain by feeding improving iteration
// times, leaving shrink points at every visited configuration.
func growTo(t *testing.T, c *Core, j *Job, procs int) {
	t.Helper()
	iter, now := 100.0, 1.0
	for j.Topo.Count() < procs {
		d, err := c.Contact(j.ID, j.Topo, iter, 0, now)
		if err != nil {
			t.Fatal(err)
		}
		if d.Action != ActionExpand {
			t.Fatalf("expected expansion at %v (%d procs), got %+v", j.Topo, j.Topo.Count(), d)
		}
		if _, err := c.ResizeComplete(j.ID, 1, now); err != nil {
			t.Fatal(err)
		}
		iter *= 0.7
		now++
	}
}

// TestTruncatedWindowNeverOverShrinks is the QueuedNeedsWindow contract
// regression: with far more queued jobs than the window shows, the policy
// must still size its shrink to the head job's need alone — the largest
// (least harmful) shrink point that covers it — never deeper on account of
// the truncated tail.
func TestTruncatedWindowNeverOverShrinks(t *testing.T) {
	c := NewCore(36, false)
	j, _, err := c.Submit(spec("big", topo(1, 2), 21000), 0)
	if err != nil {
		t.Fatal(err)
	}
	growTo(t, c, j, 36) // walk the whole chain: shrink points at every visit
	cur := j.Topo.Count()
	free := c.Free()
	const headNeed = 4
	if free >= headNeed {
		t.Fatalf("setup: %d idle, waiters would start immediately", free)
	}

	// Flood the queue well past the window: every waiter needs 4 procs.
	for i := 0; i < 3*QueuedNeedsWindow; i++ {
		if _, _, err := c.Submit(spec("w", topo(2, 2), 8000), 10); err != nil {
			t.Fatal(err)
		}
	}
	if c.QueueLen() != 3*QueuedNeedsWindow {
		t.Fatalf("queue %d", c.QueueLen())
	}
	if w := c.queuedWindow(10); len(w) != QueuedNeedsWindow {
		t.Fatalf("window %d entries, want %d", len(w), QueuedNeedsWindow)
	}

	// The largest shrink point covering the head alone is the right target;
	// anything deeper would be over-shrinking for jobs the policy cannot
	// even see past the window.
	pts := j.Profile.ShrinkPoints(j.Topo)
	if len(pts) < 2 {
		t.Fatalf("setup: only %d shrink points", len(pts))
	}
	want := pts[len(pts)-1]
	for _, p := range pts { // descending count: least freed first
		if free+cur-p.Count() >= headNeed {
			want = p
			break
		}
	}
	if cur-want.Count()+free >= 2*headNeed {
		t.Fatalf("setup: least covering point %v already frees %d (two waiters); pick sizes so the test discriminates",
			want, cur-want.Count()+free)
	}

	d, err := c.Contact(j.ID, j.Topo, 10, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	if d.Action != ActionShrink {
		t.Fatalf("expected shrink under queue pressure, got %+v", d)
	}
	if d.Target != want {
		t.Fatalf("shrink target %v frees %d; want the least harmful covering point %v (frees %d)",
			d.Target, cur-d.Target.Count(), want, cur-want.Count())
	}
}
