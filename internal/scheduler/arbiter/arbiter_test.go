package arbiter

import (
	"strings"
	"testing"

	"repro/internal/grid"
	"repro/internal/scheduler"
)

func chain1D(counts ...int) []grid.Topology {
	out := make([]grid.Topology, len(counts))
	for i, p := range counts {
		out[i] = grid.Topology{Rows: 1, Cols: p}
	}
	return out
}

func submit(t *testing.T, c *scheduler.Core, name string, prio int, now float64, chain []grid.Topology) *scheduler.Job {
	t.Helper()
	j, _, err := c.Submit(scheduler.JobSpec{
		Name: name, App: "lu", ProblemSize: 8000, Iterations: 1 << 30,
		Priority: prio, InitialTopo: chain[0], Chain: chain,
	}, now)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// contact reports one iteration and immediately confirms any granted
// resize, returning the decision.
func contact(t *testing.T, c *scheduler.Core, j *scheduler.Job, iter, now float64) scheduler.Decision {
	t.Helper()
	d, err := c.Contact(j.ID, j.Topo, iter, 0, now)
	if err != nil {
		t.Fatal(err)
	}
	if d.Action != scheduler.ActionNone {
		if _, err := c.ResizeComplete(j.ID, 0.1, now); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// grow walks a job up its chain with improving iteration times until it
// holds procs processors, leaving measured visits (shrink points) behind.
func grow(t *testing.T, c *scheduler.Core, j *scheduler.Job, procs int, now *float64) {
	t.Helper()
	iter := 100.0
	for j.Topo.Count() < procs {
		*now++
		d := contact(t, c, j, iter, *now)
		if d.Action != scheduler.ActionExpand {
			t.Fatalf("grow stalled at %v: %+v", j.Topo, d)
		}
		iter *= 0.7
	}
}

// TestCoordinatedShrinkFreesExactlyEnough: two donors whose shrink points
// individually cannot cover the queue head must both receive coordinated
// demands, a bystander must not over-shrink once the deficit is covered,
// and the head must start when the planned frees land.
func TestCoordinatedShrinkFreesExactlyEnough(t *testing.T) {
	arb := &BenefitRanked{}
	c := scheduler.NewCore(16, false)
	c.SetArbiter(arb)
	now := 0.0
	a := submit(t, c, "a", 0, now, chain1D(2, 4, 6))
	b := submit(t, c, "b", 0, now, chain1D(2, 4, 6))
	grow(t, c, a, 6, &now)
	grow(t, c, b, 6, &now)
	if c.Free() != 4 {
		t.Fatalf("free %d, want 4", c.Free())
	}
	head := submit(t, c, "head", 0, now, chain1D(12)) // needs 12 > 4 idle: queues
	if head.State != scheduler.Queued {
		t.Fatal("head should queue")
	}

	// Deficit is 8; each donor can free at most 4 (6 -> 2), so both must be
	// demanded to their deepest points.
	now++
	da, err := c.Contact(a.ID, a.Topo, 10, 0, now)
	if err != nil {
		t.Fatal(err)
	}
	if da.Action != scheduler.ActionShrink || da.Target.Count() != 2 {
		t.Fatalf("donor a: %+v, want shrink to 2", da)
	}
	now++
	db, err := c.Contact(b.ID, b.Topo, 10, 0, now)
	if err != nil {
		t.Fatal(err)
	}
	if db.Action != scheduler.ActionShrink || db.Target.Count() != 2 {
		t.Fatalf("donor b: %+v, want shrink to 2", db)
	}

	// With both shrinks in flight the deficit is covered: a re-contacting
	// donor must NOT be shrunk further (the published policy would keep
	// shrinking every caller while the queue is non-empty).
	now++
	if _, err := c.ResizeComplete(a.ID, 0.1, now); err != nil {
		t.Fatal(err)
	}
	dagain, err := c.Contact(a.ID, a.Topo, 10, 0, now)
	if err != nil {
		t.Fatal(err)
	}
	if dagain.Action != scheduler.ActionNone {
		t.Fatalf("covered deficit still shrinks: %+v", dagain)
	}

	now++
	started, err := c.ResizeComplete(b.ID, 0.1, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(started) != 1 || started[0].ID != head.ID {
		t.Fatalf("head did not start when coordinated frees landed: %v", started)
	}
}

// TestShrinkWaitsForAssignedDonors: a runner with no demand holds steady
// while the plan is assigned to other jobs.
func TestShrinkWaitsForAssignedDonors(t *testing.T) {
	arb := &BenefitRanked{}
	c := scheduler.NewCore(20, false)
	c.SetArbiter(arb)
	now := 0.0
	a := submit(t, c, "a", 0, now, chain1D(2, 4, 6))
	b := submit(t, c, "b", 0, now, chain1D(2, 4, 6))
	grow(t, c, a, 6, &now)
	grow(t, c, b, 6, &now)
	// 12 busy, 8 free; head needs 10 -> deficit 2: one donor suffices.
	head := submit(t, c, "head", 0, now, chain1D(10))
	if head.State != scheduler.Queued {
		t.Fatal("head should queue")
	}
	now++
	da, err := c.Contact(a.ID, a.Topo, 10, 0, now)
	if err != nil {
		t.Fatal(err)
	}
	db, err := c.Contact(b.ID, b.Topo, 10, 0, now)
	if err != nil {
		t.Fatal(err)
	}
	shrinks := 0
	for _, d := range []scheduler.Decision{da, db} {
		if d.Action == scheduler.ActionShrink {
			shrinks++
			if d.Target.Count() != 4 {
				t.Fatalf("donor shrank to %v, want the exact 2-proc step to 4", d.Target)
			}
		}
	}
	if shrinks != 1 {
		t.Fatalf("%d donors shrank, want exactly 1 (no over-shrink)", shrinks)
	}
}

// TestRankedExpansionYieldsToHigherBenefit: with one contested idle slot,
// the lower-benefit job must yield and the higher-benefit one expand.
func TestRankedExpansionYieldsToHigherBenefit(t *testing.T) {
	predict := func(jobID int, tp grid.Topology) (float64, bool) {
		if tp.Count() != 8 {
			return 0, false
		}
		if jobID == 0 {
			return 90, true // job a: 10s gain
		}
		return 40, true // job b: 60s gain
	}
	arb := &BenefitRanked{Predict: predict}
	c := scheduler.NewCore(12, false)
	c.SetArbiter(arb)
	now := 0.0
	a := submit(t, c, "a", 0, now, chain1D(4, 8))
	b := submit(t, c, "b", 0, now, chain1D(4, 8))
	filler := submit(t, c, "filler", 0, now, chain1D(4))
	// Measure both contenders while the pool is full (no expansion yet).
	now++
	if d := contact(t, c, a, 100, now); d.Action != scheduler.ActionNone {
		t.Fatalf("full pool should hold a steady: %+v", d)
	}
	if d := contact(t, c, b, 100, now); d.Action != scheduler.ActionNone {
		t.Fatalf("full pool should hold b steady: %+v", d)
	}
	// The filler ends: 4 idle procs, both next steps need 4 — contention.
	now++
	if _, err := c.Finish(filler.ID, now); err != nil {
		t.Fatal(err)
	}
	now++
	da := contact(t, c, a, 100, now)
	if da.Action != scheduler.ActionNone || !strings.Contains(da.Reason, "yielding idle pool to job 1") {
		t.Fatalf("low-benefit job got %+v, want yield to job 1", da)
	}
	now++
	db := contact(t, c, b, 100, now)
	if db.Action != scheduler.ActionExpand || db.Target.Count() != 8 {
		t.Fatalf("high-benefit job got %+v, want expansion to 8", db)
	}
}

// TestUnmeasuredExpansionStillProbes: without a predictor the caller's next
// configuration is unmeasured, and probing must survive ranking.
func TestUnmeasuredExpansionStillProbes(t *testing.T) {
	arb := &BenefitRanked{}
	c := scheduler.NewCore(12, false)
	c.SetArbiter(arb)
	now := 0.0
	a := submit(t, c, "a", 0, now, chain1D(4, 8))
	submit(t, c, "b", 0, now, chain1D(4, 8))
	now++
	if d := contact(t, c, a, 100, now); d.Action != scheduler.ActionExpand {
		t.Fatalf("unmeasured probe vetoed: %+v", d)
	}
}

// TestStarvationAging: a high-priority runner may expand over a young
// low-priority queued job, but once the waiter ages to parity the runner
// is drafted into the shrink plan instead.
func TestStarvationAging(t *testing.T) {
	arb := &BenefitRanked{AgingSeconds: 10}
	c := scheduler.NewCore(12, false)
	c.SetArbiter(arb)
	now := 0.0
	a := submit(t, c, "hi", 2, now, chain1D(2, 4, 6, 8))
	grow(t, c, a, 6, &now) // visits 2,4,6; 6 idle
	low := submit(t, c, "low", 0, now, chain1D(8, 10))
	if low.State != scheduler.Queued {
		t.Fatal("low should queue (needs 8, 6 idle)")
	}

	// Young queue (aged priority 0 < 2): the runner stays exempt and may
	// keep expanding.
	d := contact(t, c, a, 20, now+1)
	if d.Action != scheduler.ActionExpand {
		t.Fatalf("young queue should not block the high-priority runner: %+v", d)
	}
	// a now holds 8, 4 idle; deficit 4.

	// After 25 more seconds the waiter has aged +2 levels: parity reached,
	// exemption gone — the runner is drafted to free the deficit.
	d, err := c.Contact(a.ID, a.Topo, 14, 0, now+26)
	if err != nil {
		t.Fatal(err)
	}
	if d.Action != scheduler.ActionShrink {
		t.Fatalf("aged queue must draft the runner into shrinking: %+v", d)
	}
	if free := a.Topo.Count(); d.Target.Count() != 4 && free-d.Target.Count() < 4 {
		t.Fatalf("shrink %+v does not cover the aged head's deficit", d)
	}
}

// TestPlanRebuiltWhenDonorVanishes: a demand assigned to a job that
// finishes must not strand the queue head — the next contact rebuilds the
// plan around the surviving donors.
func TestPlanRebuiltWhenDonorVanishes(t *testing.T) {
	arb := &BenefitRanked{}
	c := scheduler.NewCore(16, false)
	c.SetArbiter(arb)
	now := 0.0
	a := submit(t, c, "a", 0, now, chain1D(2, 4, 6))
	b := submit(t, c, "b", 0, now, chain1D(2, 4, 6))
	grow(t, c, a, 6, &now)
	grow(t, c, b, 6, &now)
	head := submit(t, c, "head", 0, now, chain1D(12)) // deficit 8: both donors drafted
	now++
	if d, err := c.Contact(a.ID, a.Topo, 10, 0, now); err != nil || d.Action != scheduler.ActionShrink {
		t.Fatalf("donor a: %v %+v", err, d)
	}
	// Donor a finishes instead of completing its shrink: its full allocation
	// returns to the pool (6 procs -> 10 free, deficit 2 remains).
	now++
	if _, err := c.Finish(a.ID, now); err != nil {
		t.Fatal(err)
	}
	if head.State != scheduler.Queued {
		t.Fatal("head cannot start yet")
	}
	// b must now be drafted for the remaining deficit despite the stale plan.
	now++
	d, err := c.Contact(b.ID, b.Topo, 10, 0, now)
	if err != nil {
		t.Fatal(err)
	}
	if d.Action != scheduler.ActionShrink || d.Target.Count() != 4 {
		t.Fatalf("surviving donor got %+v, want shrink to 4", d)
	}
	now++
	started, err := c.ResizeComplete(b.ID, 0.1, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(started) != 1 || started[0].ID != head.ID {
		t.Fatalf("head still waiting after rebuilt plan: %v", started)
	}
}

// TestExemptRunnersNeverDrafted: a runner whose priority exempts it from
// the head's queue pressure must neither receive a shrink demand nor count
// toward plan coverage — otherwise its never-issued demand would stall the
// head behind phantom capacity.
func TestExemptRunnersNeverDrafted(t *testing.T) {
	arb := &BenefitRanked{}
	c := scheduler.NewCore(20, false)
	c.SetArbiter(arb)
	now := 0.0
	hi := submit(t, c, "hi", 5, now, chain1D(2, 4, 6))
	lo := submit(t, c, "lo", 0, now, chain1D(2, 4, 6))
	grow(t, c, hi, 6, &now)
	grow(t, c, lo, 6, &now)
	head := submit(t, c, "head", 0, now, chain1D(10)) // 8 idle: deficit 2
	// The exempt runner contacts first: it takes the expand path (held at
	// its largest configuration), never a coordinated-shrink stall.
	now++
	dhi, err := c.Contact(hi.ID, hi.Topo, 10, 0, now)
	if err != nil {
		t.Fatal(err)
	}
	if dhi.Action != scheduler.ActionNone || dhi.Reason != "already at largest configuration" {
		t.Fatalf("exempt runner got %+v, want the no-queue expand path", dhi)
	}
	// The draftable donor must be demanded even though the exempt runner
	// could also have covered the deficit.
	dlo, err := c.Contact(lo.ID, lo.Topo, 10, 0, now)
	if err != nil {
		t.Fatal(err)
	}
	if dlo.Action != scheduler.ActionShrink || dlo.Target.Count() != 4 {
		t.Fatalf("draftable donor got %+v, want shrink to 4", dlo)
	}
	now++
	started, err := c.ResizeComplete(lo.ID, 0.1, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(started) != 1 || started[0].ID != head.ID {
		t.Fatalf("head did not start: %v", started)
	}
}

// TestMidResizeRivalDoesNotVeto: a rival whose profile still carries its
// pre-resize configuration's times must not be scored against that stale
// baseline — the contacting job keeps its expansion.
func TestMidResizeRivalDoesNotVeto(t *testing.T) {
	predict := func(jobID int, tp grid.Topology) (float64, bool) {
		switch {
		case jobID == 0 && tp.Count() == 8:
			return 90, true // caller's modest, measured gain
		case jobID == 1 && tp.Count() == 12:
			return 10, true // huge gain against the rival's STALE 4-proc time
		}
		return 0, false
	}
	arb := &BenefitRanked{Predict: predict}
	c := scheduler.NewCore(16, false)
	c.SetArbiter(arb)
	now := 0.0
	a := submit(t, c, "a", 0, now, chain1D(4, 8))
	b := submit(t, c, "b", 0, now, chain1D(4, 8, 12))
	// b expands 4 -> 8 but records no iteration on 8: its current visit
	// still says 4 procs at 100 s.
	now++
	if d := contact(t, c, b, 100, now); d.Action != scheduler.ActionExpand {
		t.Fatalf("rival setup: %+v", d)
	}
	// 4 idle; both next steps need 4 — contention. The rival's inflated
	// stale-baseline gain must be ignored, so the caller expands.
	now++
	da := contact(t, c, a, 100, now)
	if da.Action != scheduler.ActionExpand || da.Target.Count() != 8 {
		t.Fatalf("caller got %+v, want expansion to 8 (rival is mid-resize)", da)
	}
}

// TestLowPriorityDonorsShrinkFirst: with mixed priorities, the coordinated
// plan drafts the lowest-priority donor.
func TestLowPriorityDonorsShrinkFirst(t *testing.T) {
	arb := &BenefitRanked{}
	c := scheduler.NewCore(20, false)
	c.SetArbiter(arb)
	now := 0.0
	hi := submit(t, c, "hi", 5, now, chain1D(2, 4, 6))
	lo := submit(t, c, "lo", 0, now, chain1D(2, 4, 6))
	grow(t, c, hi, 6, &now)
	grow(t, c, lo, 6, &now)
	// 8 idle; head needs 10 -> deficit 2; head priority above both runners
	// so neither is exempt.
	headSpec := scheduler.JobSpec{
		Name: "head", App: "lu", ProblemSize: 8000, Iterations: 1 << 30,
		Priority: 9, InitialTopo: grid.Topology{Rows: 1, Cols: 10},
		Chain: chain1D(10),
	}
	if _, _, err := c.Submit(headSpec, now); err != nil {
		t.Fatal(err)
	}
	now++
	dhi, err := c.Contact(hi.ID, hi.Topo, 10, 0, now)
	if err != nil {
		t.Fatal(err)
	}
	if dhi.Action != scheduler.ActionNone {
		t.Fatalf("high-priority donor drafted before the low one: %+v", dhi)
	}
	dlo, err := c.Contact(lo.ID, lo.Topo, 10, 0, now)
	if err != nil {
		t.Fatal(err)
	}
	if dlo.Action != scheduler.ActionShrink || dlo.Target.Count() != 4 {
		t.Fatalf("low-priority donor got %+v, want shrink to 4", dlo)
	}
}
