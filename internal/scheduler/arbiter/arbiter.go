// Package arbiter implements cluster-wide resize arbitration for the
// ReSHAPE scheduler: instead of answering each contacting job greedily in
// isolation (the published single-job policy, still the default), the
// BenefitRanked arbiter looks at the whole cluster snapshot at every resize
// point and
//
//   - ranks expansion candidates by predicted iteration-time benefit per
//     processor, so a contacting job yields the idle pool when another
//     running job would use the same processors better (probing is
//     preserved: a job whose next configuration has never been measured or
//     predicted always gets to try it — measurements are how the ranking
//     learns);
//   - plans coordinated multi-job shrinks under queue pressure: rather
//     than every contacting job independently giving up processors, the
//     arbiter computes the exact deficit between the queue head's need and
//     the idle pool plus in-flight frees, assigns shrink steps to the
//     cheapest donors (lowest priority first, then least predicted harm
//     per freed processor), and issues each demand as its job reaches a
//     resize point — no over-shrinking, no double-freeing;
//   - ages waiting jobs: a strictly higher-priority running job may keep
//     expanding over a lower-priority queue, but only until the waiting
//     job's age lifts its effective priority to parity, so low-priority
//     submissions cannot be expanded over indefinitely.
//
// The arbiter is stateful (it carries the current shrink plan across
// contacts) and relies on the core's external synchronization, exactly
// like the cores themselves.
package arbiter

import (
	"fmt"
	"sort"

	"repro/internal/grid"
	"repro/internal/scheduler"
)

// DefaultAgingSeconds is the starvation-aging rate when BenefitRanked's
// AgingSeconds is zero: a queued job gains one effective priority level per
// this many seconds of waiting.
const DefaultAgingSeconds = 300

// BenefitRanked is the cluster-wide arbiter. The zero value is ready to
// use; Predict is optional.
type BenefitRanked struct {
	// Predict estimates a job's per-iteration time on a configuration it
	// has never run on (e.g. a perfmodel fit; see simcluster.Predictor).
	// Without it, unmeasured configurations are treated as probe
	// candidates, exactly like the published policy.
	//
	// Contract: the hook runs inside Decide, while the ClusterSnapshot —
	// including every ContactView.Profile pointer, which aliases live
	// scheduler state — is only valid for the duration of the call. A
	// hook (or the closure it was built from) must not retain the
	// snapshot, a ContactView, or a Profile pointer beyond the call;
	// read what you need and copy it out (package
	// internal/scheduler/rebalance's jobView is the model). It must not
	// call back into the scheduler (the core's lock is held), and it
	// must be deterministic — a pure function of (jobID, topology) given
	// its own fixed inputs — because arbiter decisions are replayed from
	// the journal on recovery and any divergence forks the recovered
	// state from the acknowledged history.
	Predict func(jobID int, t grid.Topology) (float64, bool)
	// AgingSeconds is the starvation-aging rate (DefaultAgingSeconds when
	// zero): each full interval a job waits raises its effective priority
	// by one when gating expansions over the queue.
	AgingSeconds float64
	// Policy is the single-job logic the expand path runs before ranking
	// (nil = the published scheduler.PaperPolicy). An installed arbiter
	// replaces the core's own Policy entirely, so a custom policy must be
	// set here, not via SetPolicy.
	Policy scheduler.Policy

	plan *shrinkPlan
}

var _ scheduler.Arbiter = (*BenefitRanked)(nil)

// shrinkPlan is one coordinated reallocation: the queued job it is meant to
// start and the shrink targets still to be demanded, keyed by donor job id.
// Demands are removed as donors contact; the plan is rebuilt whenever the
// head changes or the surviving demands no longer cover the deficit (a
// donor finished or resized in the meantime).
type shrinkPlan struct {
	headID  int
	demands map[int]grid.Topology
}

// Name identifies the arbiter.
func (a *BenefitRanked) Name() string { return "benefit-ranked" }

// Decide implements scheduler.Arbiter.
func (a *BenefitRanked) Decide(snap scheduler.ClusterSnapshot) scheduler.Decision {
	if len(snap.Queued) == 0 {
		a.plan = nil
		return a.expand(snap)
	}
	head := snap.Queued[0]
	if snap.Caller.Priority > a.agedPriority(head) {
		// A strictly higher-priority runner is exempt from queue pressure —
		// until the waiting job ages up to parity.
		return a.expand(snap)
	}
	return a.shrink(snap, head)
}

// agedPriority is a queued job's effective priority after starvation aging.
func (a *BenefitRanked) agedPriority(q scheduler.QueuedView) int {
	aging := a.AgingSeconds
	if aging <= 0 {
		aging = DefaultAgingSeconds
	}
	return q.Priority + int(q.Wait/aging)
}

// expand handles a contact with no (effective) queue pressure: the
// published single-job logic decides, then the ranking veto applies — the
// grant is withheld when a rival running job would use the contested idle
// processors to strictly greater predicted benefit.
func (a *BenefitRanked) expand(snap scheduler.ClusterSnapshot) scheduler.Decision {
	in := snap.RemapInput()
	in.QueuedNeeds = nil // priority exemption: decide as if nothing waited
	pol := a.Policy
	if pol == nil {
		pol = scheduler.PaperPolicy{}
	}
	d := pol.Decide(in)
	if d.Action != scheduler.ActionExpand {
		return d
	}
	if rival, ok := a.betterCandidate(snap, d.Target); ok {
		return scheduler.Decision{
			Action: scheduler.ActionNone,
			Reason: fmt.Sprintf("yielding idle pool to job %d (higher benefit per processor)", rival),
		}
	}
	return d
}

// expandGain scores one job's next expansion step: predicted total
// iteration-time benefit per extra processor over the job's remaining
// iterations. ok is false when the job is already at its largest
// configuration; known is false when neither a measurement nor a
// prediction exists (a probe candidate).
func (a *BenefitRanked) expandGain(r scheduler.ContactView) (next grid.Topology, perProc float64, known, ok bool) {
	next, ok = scheduler.NextInChain(r.Chain, r.Topo)
	if !ok {
		return grid.Topology{}, 0, false, false
	}
	cur := r.Profile.Current()
	// A job mid-resize still carries its previous configuration's visit as
	// current; scoring against that baseline would inflate the gain, so
	// treat it as unmeasured until an iteration lands on the new topology.
	if cur == nil || len(cur.IterTimes) == 0 || cur.Topo != r.Topo {
		return next, 0, false, true
	}
	nextTime, measured := r.Profile.TimeAt(next)
	if !measured && a.Predict != nil {
		nextTime, measured = a.Predict(r.ID, next)
	}
	if !measured {
		return next, 0, false, true
	}
	iters := r.RemainingIters
	if iters < 1 {
		iters = 1
	}
	delta := next.Count() - r.Topo.Count()
	return next, (cur.Last() - nextTime) * float64(iters) / float64(delta), true, true
}

// betterCandidate reports whether a rival running job outranks the caller
// for the idle processors the caller wants: the rival's next step must fit
// the idle pool, conflict with the caller's (the pool cannot serve both),
// carry a known strictly higher benefit per processor, and belong to a job
// of at least equal priority. An unmeasured caller is never vetoed —
// probing is how measurements accrue.
func (a *BenefitRanked) betterCandidate(snap scheduler.ClusterSnapshot, target grid.Topology) (int, bool) {
	caller := snap.Caller
	_, mine, known, _ := a.expandGain(caller)
	if !known {
		return 0, false
	}
	deltaMine := target.Count() - caller.Topo.Count()
	best, bestGain := -1, mine
	snap.Cluster.EachRunning(func(r scheduler.ContactView) bool {
		if r.ID == caller.ID || r.Priority < caller.Priority {
			return true
		}
		next, gain, rknown, rok := a.expandGain(r)
		if !rok || !rknown {
			return true
		}
		deltaR := next.Count() - r.Topo.Count()
		if deltaR > snap.Idle || snap.Idle >= deltaMine+deltaR {
			// The rival's step does not fit, or the pool serves both: no
			// contention, no veto.
			return true
		}
		if gain > bestGain {
			best, bestGain = r.ID, gain
		}
		return true
	})
	if best >= 0 {
		return best, true
	}
	return 0, false
}

// shrink handles queue pressure: compute the head job's processor deficit
// net of the idle pool and every in-flight shrink, keep (or rebuild) the
// coordinated donation plan, and issue the caller its assigned shrink if it
// has one.
func (a *BenefitRanked) shrink(snap scheduler.ClusterSnapshot, head scheduler.QueuedView) scheduler.Decision {
	// Donors are the running jobs the head's (aged) priority can draft;
	// priority-exempt runners take the expand path at their own contacts,
	// so a demand assigned to one would never be issued — they must not
	// count toward plan coverage either. Their in-flight frees are real
	// regardless of exemption.
	agedHead := a.agedPriority(head)
	var donors []scheduler.ContactView
	inflight := 0
	snap.Cluster.EachRunning(func(r scheduler.ContactView) bool {
		inflight += r.PendingFree
		if r.Priority <= agedHead {
			donors = append(donors, r)
		}
		return true
	})
	deficit := head.Need - snap.Idle - inflight
	if deficit <= 0 {
		a.plan = nil
		return scheduler.Decision{
			Action: scheduler.ActionNone,
			Reason: "queued head covered by idle pool and in-flight frees",
		}
	}
	if a.plan == nil || a.plan.headID != head.ID || a.coverage(donors) < deficit {
		a.plan = a.buildPlan(donors, head.ID, deficit)
	}
	if target, ok := a.plan.demands[snap.Caller.ID]; ok {
		delete(a.plan.demands, snap.Caller.ID)
		// The deficit may have fallen since the plan was built (another
		// donor finished, frees landed): re-pick the shallowest of the
		// caller's shrink points that still covers it, never deeper than
		// planned — coordinated shrinking frees exactly enough.
		for _, p := range snap.Caller.Profile.ShrinkPoints(snap.Caller.Topo) {
			if snap.Caller.Topo.Count()-p.Count() >= deficit && p.Count() >= target.Count() {
				target = p
				break
			}
		}
		if target.Count() < snap.Caller.Topo.Count() {
			return scheduler.Decision{
				Action: scheduler.ActionShrink,
				Target: target,
				Reason: fmt.Sprintf("coordinated shrink to start queued job %d", head.ID),
			}
		}
	}
	if len(a.plan.demands) > 0 {
		return scheduler.Decision{Action: scheduler.ActionNone, Reason: "shrink assigned to other jobs"}
	}
	return scheduler.Decision{Action: scheduler.ActionNone, Reason: "queue waiting but no job can shrink"}
}

// coverage sums the processors the plan's outstanding demands would still
// free, revalidated against the draftable donors' current topologies —
// demands on jobs that finished, resized away, or became priority-exempt
// contribute nothing and force a rebuild.
func (a *BenefitRanked) coverage(donors []scheduler.ContactView) int {
	if a.plan == nil {
		return 0
	}
	freed := 0
	for _, r := range donors {
		if target, ok := a.plan.demands[r.ID]; ok && target.Count() < r.Topo.Count() {
			freed += r.Topo.Count() - target.Count()
		}
	}
	return freed
}

// shrinkLoss scores how much a donor hurts by shrinking to point: predicted
// iteration-time increase per freed processor (0 when no record or
// prediction exists — shrinking such a job is considered cheap).
func (a *BenefitRanked) shrinkLoss(r scheduler.ContactView, point grid.Topology) float64 {
	cur := r.Profile.Current()
	// Mid-resize jobs have no measured baseline on their current topology
	// (see expandGain); score them as cheap rather than against the wrong
	// configuration's time.
	if cur == nil || len(cur.IterTimes) == 0 || cur.Topo != r.Topo {
		return 0
	}
	t, ok := r.Profile.TimeAt(point)
	if !ok && a.Predict != nil {
		t, ok = a.Predict(r.ID, point)
	}
	if !ok {
		return 0
	}
	freed := r.Topo.Count() - point.Count()
	if freed <= 0 {
		return 0
	}
	return (t - cur.Last()) / float64(freed)
}

// buildPlan assembles a fresh donation plan covering deficit processors
// from the draftable donors: ranked lowest priority first, then least harm
// per freed processor, then youngest first; each donor contributes its
// smallest-sufficient shrink point (or, failing that, its deepest one), and
// donors are taken until the deficit is covered or no candidates remain.
func (a *BenefitRanked) buildPlan(donors []scheduler.ContactView, headID, deficit int) *shrinkPlan {
	type candidate struct {
		view   scheduler.ContactView
		points []grid.Topology // descending processor count: least freed first
		loss   float64
	}
	var cands []candidate
	for _, r := range donors {
		pts := r.Profile.ShrinkPoints(r.Topo)
		if len(pts) == 0 {
			continue
		}
		cands = append(cands, candidate{view: r, points: pts, loss: a.shrinkLoss(r, pts[0])})
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].view.Priority != cands[j].view.Priority {
			return cands[i].view.Priority < cands[j].view.Priority
		}
		if cands[i].loss != cands[j].loss {
			return cands[i].loss < cands[j].loss
		}
		return cands[i].view.ID > cands[j].view.ID
	})
	demands := make(map[int]grid.Topology)
	for _, c := range cands {
		if deficit <= 0 {
			break
		}
		// Smallest shrink step that covers the remaining deficit; the
		// deepest available step when none does.
		pick := c.points[len(c.points)-1]
		for _, p := range c.points {
			if c.view.Topo.Count()-p.Count() >= deficit {
				pick = p
				break
			}
		}
		demands[c.view.ID] = pick
		deficit -= c.view.Topo.Count() - pick.Count()
	}
	return &shrinkPlan{headID: headID, demands: demands}
}
