package scheduler

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/grid"
)

// TestServerContactRacesWatchAndCompletion hammers the Server from many
// directions at once — per-job Contact/ResizeComplete loops, JobEnd
// completions, Status polls, and Watch subscriptions churning open and
// closed — to prove the arbitration layer's multi-job snapshot reads stay
// race-free under the server lock (run with -race in CI). The arbiter
// installed here deliberately walks every running job on every contact, so
// the cluster-wide read path is exercised, not just the single-job
// default.
func TestServerContactRacesWatchAndCompletion(t *testing.T) {
	const jobs = 12
	core := NewCore(4*jobs, true)
	core.SetArbiter(snoopArbiter{})
	srv := NewServerCore(core, nil)
	ctx := context.Background()

	ids := make([]int, jobs)
	for i := range ids {
		start := grid.Topology{Rows: 1, Cols: 2}
		id, err := srv.Submit(ctx, JobSpec{
			Name: "hammer", App: "lu", ProblemSize: 8000,
			Iterations:  1 << 30,
			Priority:    i % 3,
			InitialTopo: start,
			Chain:       grid.GrowthChain(start, 8000, 8),
		})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	var wg sync.WaitGroup
	stopWatch := make(chan struct{})

	// Watcher churn: subscribe, drain, cancel, repeat.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopWatch:
				return
			default:
			}
			sub, err := srv.Watch(ctx, AllJobs)
			if err != nil {
				t.Error(err)
				return
			}
			deadline := time.After(2 * time.Millisecond)
		drain:
			for {
				select {
				case _, ok := <-sub.C:
					if !ok {
						break drain
					}
				case <-deadline:
					break drain
				}
			}
			sub.Cancel()
			for range sub.C { // drain to close
			}
		}
	}()

	// Status poller.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopWatch:
				return
			default:
			}
			if _, err := srv.Status(ctx); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// One driver per job: contact through a few hundred resize points, then
	// complete. Decisions mutate topology, so each driver tracks its own.
	for _, id := range ids {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			topo := grid.Topology{Rows: 1, Cols: 2}
			iter := 100.0
			for n := 0; n < 300; n++ {
				d, err := srv.Contact(ctx, id, topo, iter, 0)
				if err != nil {
					t.Error(err)
					return
				}
				if d.Action != ActionNone {
					topo = d.Target
					if err := srv.ResizeComplete(ctx, id, 0.01); err != nil {
						t.Error(err)
						return
					}
				}
				iter *= 0.95
			}
			if err := srv.JobEnd(ctx, id); err != nil {
				t.Error(err)
				return
			}
		}(id)
	}

	done := make(chan struct{})
	go func() {
		wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		defer cancel()
		if err := srv.WaitAll(wctx); err != nil {
			t.Error(err)
		}
		close(done)
	}()
	<-done
	close(stopWatch)
	wg.Wait()

	st, err := srv.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Busy != 0 || st.QueueLen != 0 {
		t.Fatalf("after completion: busy %d queue %d", st.Busy, st.QueueLen)
	}
	for _, j := range st.Jobs {
		if j.State != "done" {
			t.Fatalf("job %d ended %s", j.ID, j.State)
		}
	}
}

// snoopArbiter reads cluster-wide state on every contact (the racy access
// pattern the hammer test protects) and then defers to the published
// policy.
type snoopArbiter struct{}

func (snoopArbiter) Name() string { return "snoop" }

func (snoopArbiter) Decide(snap ClusterSnapshot) Decision {
	procs := 0
	snap.Cluster.EachRunning(func(v ContactView) bool {
		procs += v.Topo.Count()
		_ = v.Profile.Current()
		return true
	})
	if procs > snap.Total {
		return Decision{Action: ActionNone, Reason: "accounting violation"}
	}
	return PolicyArbiter{}.Decide(snap)
}
