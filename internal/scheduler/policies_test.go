package scheduler

import (
	"context"
	"testing"
)

func TestThresholdPolicyShrinksOnWeakGain(t *testing.T) {
	// 100 -> 97 s is a 3% gain: below a 5% threshold the job must fall
	// back, even though the paper policy would keep it.
	p := profileWith(
		Visit{Topo: topo(2, 2), IterTimes: []float64{100}},
		Visit{Topo: topo(2, 3), IterTimes: []float64{97}},
	)
	in := RemapInput{Current: topo(2, 3), Chain: chain12000(), Profile: p, IdleProcs: 20}

	paper := PaperPolicy{}.Decide(in)
	if paper.Action != ActionExpand {
		t.Fatalf("paper policy %+v, want expand", paper)
	}
	th := ThresholdPolicy{MinImprovement: 0.05}.Decide(in)
	if th.Action != ActionShrink || th.Target != topo(2, 2) {
		t.Fatalf("threshold policy %+v, want shrink to 2x2", th)
	}
}

func TestThresholdPolicyKeepsStrongGain(t *testing.T) {
	p := profileWith(
		Visit{Topo: topo(2, 2), IterTimes: []float64{100}},
		Visit{Topo: topo(2, 3), IterTimes: []float64{80}},
	)
	in := RemapInput{Current: topo(2, 3), Chain: chain12000(), Profile: p, IdleProcs: 20}
	d := ThresholdPolicy{MinImprovement: 0.05}.Decide(in)
	if d.Action != ActionExpand || d.Target != topo(3, 3) {
		t.Fatalf("threshold policy %+v, want expand", d)
	}
}

func TestThresholdPolicyDefersQueueHandling(t *testing.T) {
	p := profileWith(
		Visit{Topo: topo(2, 2), IterTimes: []float64{100}},
		Visit{Topo: topo(2, 3), IterTimes: []float64{80}},
	)
	in := RemapInput{
		Current: topo(2, 3), Chain: chain12000(), Profile: p,
		IdleProcs: 0, QueuedNeeds: []int{2},
	}
	d := ThresholdPolicy{MinImprovement: 0.05}.Decide(in)
	if d.Action != ActionShrink {
		t.Fatalf("queue pressure must still shrink: %+v", d)
	}
}

func TestCostAwareVetoesUnamortizableExpansion(t *testing.T) {
	// Known redistribution cost 100 s, expected gain 3 s/iter, 5 iterations
	// left: 15 s of benefit cannot pay for 100 s of redistribution.
	p := profileWith(
		Visit{Topo: topo(2, 2), IterTimes: []float64{103}},
		Visit{Topo: topo(2, 3), IterTimes: []float64{100}},
	)
	p.RecordRedist(topo(2, 3), topo(3, 3), 100)
	in := RemapInput{
		Current: topo(2, 3), Chain: chain12000(), Profile: p,
		IdleProcs: 20, RemainingIters: 5,
	}
	d := CostAwarePolicy{}.Decide(in)
	if d.Action != ActionNone {
		t.Fatalf("cost-aware %+v, want veto", d)
	}
	// With 100 iterations remaining the same expansion is worth it.
	in.RemainingIters = 100
	d = CostAwarePolicy{}.Decide(in)
	if d.Action != ActionExpand {
		t.Fatalf("cost-aware %+v, want expand when amortizable", d)
	}
}

func TestCostAwareAllowsFirstProbe(t *testing.T) {
	// With no expansion history and no recorded costs the policy must let
	// the job probe, otherwise no records would ever accumulate.
	p := profileWith(Visit{Topo: topo(2, 2), IterTimes: []float64{100}})
	in := RemapInput{
		Current: topo(2, 2), Chain: chain12000(), Profile: p,
		IdleProcs: 20, RemainingIters: 9,
	}
	d := CostAwarePolicy{}.Decide(in)
	if d.Action != ActionExpand {
		t.Fatalf("cost-aware %+v, want probe", d)
	}
}

func TestCostAwareUsesEstimator(t *testing.T) {
	p := profileWith(
		Visit{Topo: topo(2, 2), IterTimes: []float64{110}},
		Visit{Topo: topo(2, 3), IterTimes: []float64{100}},
	)
	in := RemapInput{
		Current: topo(2, 3), Chain: chain12000(), Profile: p,
		IdleProcs: 20, RemainingIters: 2,
	}
	pol := CostAwarePolicy{
		EstimateRedist: func(in RemapInput, d Decision) (float64, bool) { return 1000, true },
	}
	if d := pol.Decide(in); d.Action != ActionNone {
		t.Fatalf("estimated cost should veto: %+v", d)
	}
	pol.EstimateRedist = func(in RemapInput, d Decision) (float64, bool) { return 0.1, true }
	if d := pol.Decide(in); d.Action != ActionExpand {
		t.Fatalf("cheap redistribution should proceed: %+v", d)
	}
}

func TestPolicyNames(t *testing.T) {
	if (PaperPolicy{}).Name() != "paper" {
		t.Error("paper policy name")
	}
	if (ThresholdPolicy{MinImprovement: 0.05}).Name() != "threshold(5%)" {
		t.Errorf("threshold name %q", ThresholdPolicy{MinImprovement: 0.05}.Name())
	}
	if (CostAwarePolicy{}).Name() != "cost-aware+paper" {
		t.Errorf("cost-aware name %q", CostAwarePolicy{}.Name())
	}
}

func TestCorePriorityQueueOrdering(t *testing.T) {
	c := NewCore(8, false)
	c.Submit(spec("running", topo(2, 4), 8000), 0) // occupies everything
	low, _, _ := c.Submit(spec("low", topo(2, 2), 8000), 1)
	hiSpec := spec("high", topo(2, 2), 8000)
	hiSpec.Priority = 10
	high, _, _ := c.Submit(hiSpec, 2)
	started, err := c.Finish(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Both fit after the big job ends, but the high-priority one must be
	// scheduled first (and thus have the earlier start record).
	if len(started) != 2 || started[0] != high || started[1] != low {
		t.Fatalf("start order %v", started)
	}
}

func TestCorePriorityEqualIsFCFS(t *testing.T) {
	c := NewCore(4, false)
	c.Submit(spec("running", topo(2, 2), 8000), 0)
	first, _, _ := c.Submit(spec("first", topo(2, 2), 8000), 1)
	c.Submit(spec("second", topo(2, 2), 8000), 2)
	started, _ := c.Finish(0, 10)
	if len(started) != 1 || started[0] != first {
		t.Fatalf("FCFS violated: %v", started)
	}
}

func TestCoreFailRecoversResources(t *testing.T) {
	c := NewCore(8, false)
	a, _, _ := c.Submit(spec("a", topo(2, 4), 8000), 0)
	b, _, _ := c.Submit(spec("b", topo(2, 2), 8000), 1)
	started, err := c.Fail(a.ID, 5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Free() != 4 || len(started) != 1 || started[0] != b {
		t.Fatalf("free=%d started=%v", c.Free(), started)
	}
	last := c.Events[len(c.Events)-2] // error event precedes b's start
	if last.Kind != "error" {
		t.Fatalf("event kind %q", last.Kind)
	}
	if _, err := c.Fail(a.ID, 6); err == nil {
		t.Fatal("double fail accepted")
	}
}

func TestServerJobError(t *testing.T) {
	ctx := context.Background()
	srv := NewServer(4, false, nil)
	j, err := srv.Submit(ctx, spec("a", topo(2, 2), 8000))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.JobError(ctx, j); err != nil {
		t.Fatal(err)
	}
	if srv.Core().Free() != 4 {
		t.Fatalf("free = %d", srv.Core().Free())
	}
	// Wait must not block on a failed job.
	if err := srv.Wait(ctx, j); err != nil {
		t.Fatal(err)
	}
}

func TestCoreCustomPolicyWiring(t *testing.T) {
	c := NewCore(50, true)
	c.Policy = ThresholdPolicy{MinImprovement: 0.5} // absurdly strict
	j, _, _ := c.Submit(spec("a", topo(1, 2), 12000), 0)
	c.Contact(j.ID, topo(1, 2), 100, 0, 1)
	c.ResizeComplete(j.ID, 1, 1)
	// 10% gain: the strict threshold policy shrinks back where the paper
	// policy would have continued expanding.
	d, err := c.Contact(j.ID, topo(2, 2), 90, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Action != ActionShrink || d.Target != topo(1, 2) {
		t.Fatalf("decision %+v, want shrink under strict threshold", d)
	}
}

func TestRemainingItersReachesPolicy(t *testing.T) {
	var seen []int
	c := NewCore(50, true)
	c.Policy = policyFunc(func(in RemapInput) Decision {
		seen = append(seen, in.RemainingIters)
		return Decision{Action: ActionNone}
	})
	j, _, _ := c.Submit(spec("a", topo(2, 2), 8000), 0) // 10 iterations
	c.Contact(j.ID, topo(2, 2), 1, 0, 1)
	c.Contact(j.ID, topo(2, 2), 1, 0, 2)
	if len(seen) != 2 || seen[0] != 9 || seen[1] != 8 {
		t.Fatalf("remaining iters %v", seen)
	}
}

// policyFunc adapts a function to the Policy interface for tests.
type policyFunc func(RemapInput) Decision

func (policyFunc) Name() string                    { return "func" }
func (f policyFunc) Decide(in RemapInput) Decision { return f(in) }
