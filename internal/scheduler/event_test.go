package scheduler

import (
	"math/rand"
	"sort"
	"testing"
)

func TestEventQueueOrdersByTime(t *testing.T) {
	var q EventQueue
	times := []float64{5, 1, 3, 2, 4}
	for i, tm := range times {
		q.Push(tm, EvArrival, i)
	}
	var got []float64
	for q.Len() > 0 {
		e, ok := q.Pop()
		if !ok {
			t.Fatal("pop failed with non-empty queue")
		}
		got = append(got, e.Time)
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events out of order: %v", got)
	}
}

// TestEventQueueFIFOAmongEqualTimestamps: events carrying the same
// timestamp must come out in insertion order — the determinism guarantee
// the simulator's byte-identical replays rely on.
func TestEventQueueFIFOAmongEqualTimestamps(t *testing.T) {
	var q EventQueue
	const n = 100
	for i := 0; i < n; i++ {
		q.Push(7.0, EvResizePoint, i)
	}
	// Interleave earlier and later events to exercise heap movement.
	q.Push(1.0, EvArrival, -1)
	q.Push(9.0, EvCompletion, -2)
	first, _ := q.Pop()
	if first.Time != 1.0 {
		t.Fatalf("first event at %v, want 1.0", first.Time)
	}
	for i := 0; i < n; i++ {
		e, _ := q.Pop()
		if e.Time != 7.0 || e.Job != i {
			t.Fatalf("tie %d: got job %d at %v, want FIFO order", i, e.Job, e.Time)
		}
	}
	last, _ := q.Pop()
	if last.Time != 9.0 || q.Len() != 0 {
		t.Fatalf("last event %+v, len %d", last, q.Len())
	}
}

func TestEventQueueRandomizedAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var q EventQueue
	type ref struct {
		t   float64
		seq int
	}
	var want []ref
	for i := 0; i < 5000; i++ {
		tm := float64(rng.Intn(50)) // many collisions
		q.Push(tm, EvArrival, i)
		want = append(want, ref{tm, i})
	}
	sort.SliceStable(want, func(i, j int) bool { return want[i].t < want[j].t })
	for i, w := range want {
		e, ok := q.Pop()
		if !ok || e.Time != w.t || e.Job != w.seq {
			t.Fatalf("pop %d: got (%v, job %d), want (%v, job %d)", i, e.Time, e.Job, w.t, w.seq)
		}
	}
}

func TestEnginePeekAndClock(t *testing.T) {
	eng := NewEngine()
	var order []int
	eng.Handle(EvArrival, func(e Event) error {
		order = append(order, e.Job)
		if e.Job == 0 {
			// Handlers may schedule more events; After is relative to the
			// current virtual clock.
			eng.After(5, EvArrival, 2)
		}
		return nil
	})
	eng.At(10, EvArrival, 0)
	eng.At(12, EvArrival, 1)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2}
	if len(order) != len(want) {
		t.Fatalf("order %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
	if eng.Now() != 15 {
		t.Fatalf("clock %v, want 15", eng.Now())
	}
}

func TestEngineRejectsUnhandledKind(t *testing.T) {
	eng := NewEngine()
	eng.At(1, EvCompletion, 0)
	if err := eng.Run(); err == nil {
		t.Fatal("expected error for unhandled event kind")
	}
}

func TestEngineNeverRunsBackwards(t *testing.T) {
	eng := NewEngine()
	var times []float64
	eng.Handle(EvArrival, func(e Event) error {
		times = append(times, e.Time)
		if len(times) == 1 {
			eng.At(0, EvArrival, 99) // in the past: clamped to now
		}
		return nil
	})
	eng.At(10, EvArrival, 0)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 || times[1] < times[0] {
		t.Fatalf("times %v regress", times)
	}
}
