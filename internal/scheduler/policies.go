package scheduler

import "fmt"

// Policy decides what happens at a resize point. The Core uses PaperPolicy
// by default; alternative policies implement the strategies the paper
// sketches as future work (§4.1.1: threshold-based sweet-spot detection;
// §4.1.2: using recorded redistribution costs to inform decisions). The
// ReSHAPE framework "can easily be extended to support more sophisticated
// policies" — this is that extension point.
type Policy interface {
	Name() string
	Decide(in RemapInput) Decision
}

// PaperPolicy is the published Remap Scheduler policy of §3.1 (the Decide
// function).
type PaperPolicy struct{}

// Name identifies the policy.
func (PaperPolicy) Name() string { return "paper" }

// Decide applies the §3.1 rules.
func (PaperPolicy) Decide(in RemapInput) Decision { return Decide(in) }

// ThresholdPolicy is the "more sophisticated sweet spot detection algorithm
// (under development)" of §4.1.1: an expansion only counts as an
// improvement if the relative gain meets MinImprovement, so the scheduler
// stops probing configurations that yield diminishing returns instead of
// walking all the way to the first absolute regression.
type ThresholdPolicy struct {
	// MinImprovement is the required relative gain per expansion, e.g. 0.05
	// for 5%.
	MinImprovement float64
}

// Name identifies the policy.
func (p ThresholdPolicy) Name() string {
	return fmt.Sprintf("threshold(%.0f%%)", 100*p.MinImprovement)
}

// Decide behaves like the paper policy but holds (or shrinks back) once the
// relative improvement of the last expansion falls below the threshold.
func (p ThresholdPolicy) Decide(in RemapInput) Decision {
	if len(in.QueuedNeeds) > 0 {
		return Decide(in) // queue pressure handling is unchanged
	}
	if before, after, ok := in.Profile.LastExpansion(); ok && in.Current == after.Topo && len(after.IterTimes) > 0 {
		gain := (before.Last() - after.Last()) / before.Last()
		if gain < 0 {
			return Decision{Action: ActionShrink, Target: before.Topo,
				Reason: "expansion degraded iteration time"}
		}
		if gain < p.MinImprovement {
			return Decision{Action: ActionShrink, Target: before.Topo,
				Reason: fmt.Sprintf("expansion gain %.1f%% below threshold", 100*gain)}
		}
	}
	return Decide(in)
}

// CostAwarePolicy wraps another policy and vetoes expansions whose
// estimated redistribution cost cannot be amortized over the job's
// remaining iterations (§4.1.2: "with ReSHAPE we save a record of actual
// redistribution costs between various processor configurations, which
// allows for more informed decisions").
type CostAwarePolicy struct {
	Inner Policy
	// EstimateRedist predicts the redistribution cost between two
	// configurations when the profiler has no recorded observation; nil
	// falls back to the profiler record only (unknown costs allow the
	// expansion, since probing is how records accrue).
	EstimateRedist func(in RemapInput, d Decision) (float64, bool)
}

// Name identifies the policy.
func (p CostAwarePolicy) Name() string { return "cost-aware+" + p.inner().Name() }

func (p CostAwarePolicy) inner() Policy {
	if p.Inner == nil {
		return PaperPolicy{}
	}
	return p.Inner
}

// Decide defers to the inner policy, then applies the amortization test to
// expansions.
func (p CostAwarePolicy) Decide(in RemapInput) Decision {
	d := p.inner().Decide(in)
	if d.Action != ActionExpand || in.RemainingIters <= 0 {
		return d
	}
	cost, known := in.Profile.RedistCost(in.Current, d.Target)
	if !known && p.EstimateRedist != nil {
		cost, known = p.EstimateRedist(in, d)
	}
	if !known {
		return d // no information: probe, so a record can be made
	}
	// Expected savings per iteration: the observed gain of the last
	// expansion, or — if this configuration was visited before — the
	// recorded difference.
	var perIter float64
	if t, ok := in.Profile.TimeAt(d.Target); ok {
		cur := in.Profile.Current()
		if cur != nil && len(cur.IterTimes) > 0 {
			perIter = cur.Last() - t
		}
	} else if before, after, ok := in.Profile.LastExpansion(); ok && len(after.IterTimes) > 0 {
		perIter = before.Last() - after.Last()
	} else {
		return d // first expansion: always probe
	}
	if perIter <= 0 {
		return Decision{Action: ActionNone,
			Reason: "cost-aware: no expected per-iteration benefit"}
	}
	if cost > perIter*float64(in.RemainingIters) {
		return Decision{Action: ActionNone,
			Reason: fmt.Sprintf("cost-aware: redistribution %.1fs exceeds %.1fs amortizable benefit",
				cost, perIter*float64(in.RemainingIters))}
	}
	return d
}
