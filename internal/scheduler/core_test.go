package scheduler

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/grid"
)

func spec(name string, initial grid.Topology, n int) JobSpec {
	return JobSpec{
		Name:        name,
		App:         "lu",
		ProblemSize: n,
		Iterations:  10,
		InitialTopo: initial,
		Chain:       grid.GrowthChain(initial, n, 50),
	}
}

func TestCoreStartsJobWhenProcsAvailable(t *testing.T) {
	c := NewCore(16, false)
	j, started, err := c.Submit(spec("a", topo(2, 2), 8000), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(started) != 1 || started[0] != j || j.State != Running {
		t.Fatalf("job not started: %v %v", started, j.State)
	}
	if c.Free() != 12 {
		t.Fatalf("free = %d", c.Free())
	}
}

func TestCoreQueuesWhenFull(t *testing.T) {
	c := NewCore(8, false)
	_, _, err := c.Submit(spec("a", topo(2, 4), 8000), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, started, err := c.Submit(spec("b", topo(2, 2), 8000), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(started) != 0 || b.State != Queued {
		t.Fatalf("job b should queue: %v %v", started, b.State)
	}
	if c.QueueLen() != 1 {
		t.Fatalf("queue len %d", c.QueueLen())
	}
}

func TestCoreRejectsOversizedJob(t *testing.T) {
	c := NewCore(4, false)
	if _, _, err := c.Submit(spec("big", topo(4, 4), 8000), 0); err == nil {
		t.Fatal("oversized job accepted")
	}
	if _, _, err := c.Submit(JobSpec{Name: "bad"}, 0); err == nil {
		t.Fatal("invalid topology accepted")
	}
}

func TestCoreFCFSBlocksLaterJobsWithoutBackfill(t *testing.T) {
	c := NewCore(10, false)
	c.Submit(spec("a", topo(2, 4), 8000), 0)                      // takes 8, 2 free
	c.Submit(spec("big", topo(2, 3), 12000), 1)                   // needs 6: queues
	small, started, _ := c.Submit(spec("s", topo(1, 2), 8000), 2) // needs 2: would fit
	if len(started) != 0 || small.State != Queued {
		t.Fatal("FCFS must not let the small job jump the queue")
	}
}

func TestCoreBackfillStartsSmallJob(t *testing.T) {
	c := NewCore(10, true)
	c.Submit(spec("a", topo(2, 4), 8000), 0)    // 8 busy, 2 free
	c.Submit(spec("big", topo(2, 3), 12000), 1) // queues (needs 6)
	small, started, _ := c.Submit(spec("s", topo(1, 2), 8000), 2)
	if len(started) != 1 || small.State != Running {
		t.Fatal("backfill should start the 2-proc job")
	}
	if c.Free() != 0 {
		t.Fatalf("free = %d", c.Free())
	}
}

func TestCoreFinishSchedulesQueue(t *testing.T) {
	c := NewCore(8, false)
	a, _, _ := c.Submit(spec("a", topo(2, 4), 8000), 0)
	b, _, _ := c.Submit(spec("b", topo(2, 2), 8000), 1)
	started, err := c.Finish(a.ID, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(started) != 1 || started[0] != b || b.State != Running {
		t.Fatal("queued job must start when processors free up")
	}
	if a.EndTime != 100 || a.State != Done {
		t.Fatalf("job a end state %v/%v", a.State, a.EndTime)
	}
}

func TestCoreContactExpandReservesProcs(t *testing.T) {
	c := NewCore(16, false)
	a, _, _ := c.Submit(spec("a", topo(1, 2), 12000), 0)
	d, err := c.Contact(a.ID, topo(1, 2), 129.63, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.Action != ActionExpand || d.Target != topo(2, 2) {
		t.Fatalf("decision %+v", d)
	}
	if c.Free() != 12 || a.Topo != topo(2, 2) {
		t.Fatalf("free %d topo %v", c.Free(), a.Topo)
	}
	// Expansion improved: next contact expands again.
	if _, err := c.ResizeComplete(a.ID, 8.0, 11); err != nil {
		t.Fatal(err)
	}
	d2, err := c.Contact(a.ID, topo(2, 2), 112.52, 8.0, 140)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Action != ActionExpand || d2.Target != topo(2, 3) {
		t.Fatalf("second decision %+v", d2)
	}
	if v, ok := a.Profile.RedistCost(topo(1, 2), topo(2, 2)); !ok || v != 8.0 {
		t.Fatalf("redist record %v/%v", v, ok)
	}
}

func TestCoreContactValidatesCaller(t *testing.T) {
	c := NewCore(16, false)
	a, _, _ := c.Submit(spec("a", topo(2, 2), 8000), 0)
	if _, err := c.Contact(99, topo(2, 2), 1, 0, 1); err == nil {
		t.Fatal("unknown job accepted")
	}
	if _, err := c.Contact(a.ID, topo(4, 4), 1, 0, 1); err == nil {
		t.Fatal("topology mismatch accepted")
	}
	c.Finish(a.ID, 2)
	if _, err := c.Contact(a.ID, topo(2, 2), 1, 0, 3); err == nil {
		t.Fatal("contact from finished job accepted")
	}
}

func TestCoreShrinkFreesProcsOnlyAtResizeComplete(t *testing.T) {
	c := NewCore(12, false)
	a, _, _ := c.Submit(spec("a", topo(1, 2), 12000), 0)
	// Walk the job up to 3x3 so it has shrink points.
	c.Contact(a.ID, topo(1, 2), 130, 0, 1)
	c.ResizeComplete(a.ID, 8, 1)
	c.Contact(a.ID, topo(2, 2), 112, 8, 2)
	c.ResizeComplete(a.ID, 7, 2)
	c.Contact(a.ID, topo(2, 3), 82, 7, 3)
	c.ResizeComplete(a.ID, 5, 3)
	if a.Topo != topo(3, 3) {
		t.Fatalf("topo %v", a.Topo)
	}
	// A queued job arrives needing 4 procs; 3 are idle.
	b, started, _ := c.Submit(spec("b", topo(2, 2), 8000), 4)
	if len(started) != 0 {
		t.Fatal("b should queue (needs 4, only 3 idle)")
	}
	d, err := c.Contact(a.ID, topo(3, 3), 79, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Action != ActionShrink {
		t.Fatalf("decision %+v, want shrink", d)
	}
	if b.State != Queued {
		t.Fatal("b must not start before the shrink completes")
	}
	started, err = c.ResizeComplete(a.ID, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(started) != 1 || started[0] != b || b.State != Running {
		t.Fatal("b must start once the shrink completes")
	}
}

func TestCoreEventsTraceAllocationHistory(t *testing.T) {
	c := NewCore(8, false)
	a, _, _ := c.Submit(spec("a", topo(1, 2), 12000), 0)
	c.Contact(a.ID, topo(1, 2), 130, 0, 10)
	c.ResizeComplete(a.ID, 8, 10)
	c.Finish(a.ID, 50)
	kinds := make([]string, len(c.Events))
	for i, e := range c.Events {
		kinds[i] = e.Kind
	}
	want := []string{"submit", "start", "expand", "end"}
	if len(kinds) != len(want) {
		t.Fatalf("events %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("events %v, want %v", kinds, want)
		}
	}
	if c.Events[2].Busy != 4 {
		t.Fatalf("busy after expand = %d", c.Events[2].Busy)
	}
	if c.Events[3].Busy != 0 {
		t.Fatalf("busy after end = %d", c.Events[3].Busy)
	}
}

func TestCoreJobsOrdered(t *testing.T) {
	c := NewCore(50, false)
	c.Submit(spec("a", topo(2, 2), 8000), 0)
	c.Submit(spec("b", topo(2, 2), 8000), 1)
	c.Submit(spec("c", topo(2, 2), 8000), 2)
	jobs := c.Jobs()
	if len(jobs) != 3 || jobs[0].Spec.Name != "a" || jobs[2].Spec.Name != "c" {
		t.Fatalf("jobs %v", jobs)
	}
}

func TestServerLifecycleWithStarter(t *testing.T) {
	var mu sync.Mutex
	startedNames := []string{}
	var srv *Server
	srv = NewServer(8, true, func(j *Job) {
		mu.Lock()
		startedNames = append(startedNames, j.Spec.Name)
		mu.Unlock()
		// Simulate a short run with one resize point.
		ctx := context.Background()
		if _, err := srv.Contact(ctx, j.ID, j.Topo, 0.01, 0); err != nil {
			t.Errorf("contact: %v", err)
		}
		if err := srv.ResizeComplete(ctx, j.ID, 0.001); err != nil {
			t.Errorf("resize complete: %v", err)
		}
		if err := srv.JobEnd(ctx, j.ID); err != nil {
			t.Errorf("job end: %v", err)
		}
	})
	ctx := context.Background()
	a, err := srv.Submit(ctx, spec("a", topo(2, 4), 8000))
	if err != nil {
		t.Fatal(err)
	}
	b, err := srv.Submit(ctx, spec("b", topo(2, 2), 8000))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Wait(ctx, a); err != nil {
		t.Fatal(err)
	}
	if err := srv.Wait(ctx, b); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(startedNames) != 2 {
		t.Fatalf("started %v", startedNames)
	}
	if srv.Core().Free() != 8 {
		t.Fatalf("free = %d after all jobs done", srv.Core().Free())
	}
}

func TestServerWaitAll(t *testing.T) {
	var srv *Server
	srv = NewServer(4, false, func(j *Job) {
		time.Sleep(time.Millisecond)
		srv.JobEnd(context.Background(), j.ID)
	})
	for i := 0; i < 3; i++ {
		if _, err := srv.Submit(context.Background(), spec("j", topo(1, 2), 8000)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.WaitAll(ctx); err != nil {
		t.Fatalf("WaitAll timed out: %v", err)
	}
}
