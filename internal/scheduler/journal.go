package scheduler

import (
	"fmt"

	"repro/internal/grid"
)

// This file is the scheduler's journaling choke point. Every externally
// driven state mutation enters the Core through exactly five methods —
// Submit, Contact, ResizeComplete, Finish, Fail — and each of them emits
// one Op record through the installed JournalFunc *after* validation but
// *before* any state changes (write-ahead ordering). Because the Core is a
// deterministic state machine (PR 1), replaying a journal of Ops into a
// fresh Core reconstructs the original state bit for bit; package
// internal/durability persists the records and drives the replay.

// OpKind enumerates the journaled event-engine inputs.
type OpKind uint8

const (
	// OpSubmit is a job arrival (Core.Submit).
	OpSubmit OpKind = 1 + iota
	// OpContact is a resize-point contact (Core.Contact), carrying the
	// reported iteration and redistribution times.
	OpContact
	// OpResizeComplete confirms a granted resize (Core.ResizeComplete).
	OpResizeComplete
	// OpFinish is the System Monitor's job-end signal (Core.Finish).
	OpFinish
	// OpFail is the job-error/cancel signal (Core.Fail).
	OpFail
	// OpRebalance is a global-rebalancer planning tick (Core.Rebalance).
	// Only the tick's timestamp is journaled: the adopted plan is a pure
	// function of the core state and the (re-installed) arbiter
	// configuration, so replaying the tick recomputes the identical plan —
	// the same argument that lets Contact journal inputs, not decisions.
	OpRebalance
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpSubmit:
		return "submit"
	case OpContact:
		return "contact"
	case OpResizeComplete:
		return "resize-complete"
	case OpFinish:
		return "finish"
	case OpFail:
		return "fail"
	case OpRebalance:
		return "rebalance"
	default:
		return "unknown"
	}
}

// Op is one journaled scheduler input: the method, its timestamp, and the
// arguments that method needs to re-execute. Priority and every other
// scheduling input ride inside Spec for OpSubmit; the remaining kinds are
// identified by JobID.
type Op struct {
	Kind OpKind
	Now  float64

	JobID int // all kinds except OpSubmit

	Spec JobSpec // OpSubmit

	Topo       grid.Topology // OpContact: the topology the job reports
	IterTime   float64       // OpContact
	RedistTime float64       // OpContact, OpResizeComplete
}

// JournalFunc persists one validated Op before it is applied. A non-nil
// error refuses the operation: the Core returns the error to the caller
// without mutating any state, so an acknowledged operation is always
// durable.
type JournalFunc func(Op) error

// SetJournal installs the write-ahead journal hook (nil disables
// journaling). Install it only after any recovery replay has finished, or
// replayed operations would be appended to the journal a second time.
func (c *Core) SetJournal(fn JournalFunc) { c.journal = fn }

// journalOp emits one validated op through the installed hook.
func (c *Core) journalOp(op Op) error {
	if c.journal == nil {
		return nil
	}
	if err := c.journal(op); err != nil {
		return fmt.Errorf("scheduler: journal refused %s: %w", op.Kind, err)
	}
	return nil
}

// Apply re-executes one journaled op against the core — the recovery
// replay path. The journal hook must not be installed while replaying.
// Replayed ops were validated before they were journaled, so an error here
// means the journal does not match the state it is being replayed into.
func (c *Core) Apply(op Op) error {
	switch op.Kind {
	case OpSubmit:
		_, _, err := c.Submit(op.Spec, op.Now)
		return err
	case OpContact:
		_, err := c.Contact(op.JobID, op.Topo, op.IterTime, op.RedistTime, op.Now)
		return err
	case OpResizeComplete:
		_, err := c.ResizeComplete(op.JobID, op.RedistTime, op.Now)
		return err
	case OpFinish:
		_, err := c.Finish(op.JobID, op.Now)
		return err
	case OpFail:
		_, err := c.Fail(op.JobID, op.Now)
		return err
	case OpRebalance:
		return c.Rebalance(op.Now)
	default:
		return fmt.Errorf("scheduler: apply: unknown op kind %d", op.Kind)
	}
}

// Rebalance is the global rebalancer's planning tick: when the installed
// arbiter is a Planner, the tick is journaled (write-ahead, like every
// other input) and the planner recomputes its cluster-wide plan from a
// caller-less snapshot. With no planner installed the tick is a no-op and
// nothing is journaled — the arbiter is configuration, and a recovering
// process installs the same one before replay, so the skip replays
// identically too.
//
// The resulting plan lives inside the arbiter, not the core: directives
// are delivered through the ordinary Contact path at each job's next
// resize point, so Rebalance itself mutates no journaled state.
func (c *Core) Rebalance(now float64) error {
	pl, ok := c.arb.(Planner)
	if !ok {
		return nil
	}
	if err := c.journalOp(Op{Kind: OpRebalance, Now: now}); err != nil {
		return err
	}
	pl.Rebalance(c.globalSnapshot(now))
	return nil
}
