package scheduler

import "repro/internal/grid"

// Interface is the scheduler state-machine surface shared by the
// event-indexed Core and the pre-refactor LinearCore reference. The cluster
// simulator accepts any implementation, which lets differential tests and
// throughput benchmarks run the exact same workload through both engines.
type Interface interface {
	// Submit enqueues a job at the given timestamp and returns it along
	// with any jobs started as a consequence.
	Submit(spec JobSpec, now float64) (*Job, []*Job, error)
	// TrySchedule starts queued jobs that fit the idle pool.
	TrySchedule(now float64) []*Job
	// Contact is the Remap Scheduler entry point at a resize point.
	Contact(jobID int, topo grid.Topology, iterTime, redistTime float64, now float64) (Decision, error)
	// ResizeComplete confirms a granted resize and reports its cost.
	ResizeComplete(jobID int, redistTime float64, now float64) ([]*Job, error)
	// Finish marks a job done and recycles its processors.
	Finish(jobID int, now float64) ([]*Job, error)
	// Fail deletes an errored job and recovers its resources.
	Fail(jobID int, now float64) ([]*Job, error)
	// Rebalance drives a global-rebalancer planning tick: when the
	// installed arbiter implements Planner it recomputes its cluster-wide
	// plan from a caller-less snapshot; otherwise the tick is a no-op.
	Rebalance(now float64) error
	// Job looks up a job by id.
	Job(id int) (*Job, bool)
	// Jobs returns all jobs in submission order.
	Jobs() []*Job
	// Free returns the idle processor count.
	Free() int
	// Busy returns the allocated processor count.
	Busy() int
	// QueueLen returns the number of waiting jobs.
	QueueLen() int
	// SetPolicy replaces the Remap Scheduler policy.
	SetPolicy(p Policy)
	// SetArbiter installs a cluster-wide resize arbiter (nil restores the
	// default single-job policy path).
	SetArbiter(a Arbiter)
	// AllocEvents returns the allocation trace.
	AllocEvents() []AllocEvent
	// BusySeconds integrates busy processors over virtual time up to until.
	BusySeconds(until float64) float64
}

var (
	_ Interface = (*Core)(nil)
	_ Interface = (*LinearCore)(nil)
)
