package mpi

import (
	"errors"
	"fmt"
	"sync"
)

// World hosts a set of ranks (goroutines) and routes messages between them.
// A World is created implicitly by Run or explicitly by NewWorld; additional
// ranks may join later via Comm.Spawn.
type World struct {
	mu      sync.Mutex
	nextGID int
	nextCtx int
	procs   map[int]*proc

	wg    sync.WaitGroup
	errMu sync.Mutex
	errs  []error
}

// NewWorld returns an empty World ready to host ranks.
func NewWorld() *World {
	return &World{procs: make(map[int]*proc)}
}

// Run creates a fresh World with n ranks, runs fn on every rank, waits for
// all ranks (including any spawned later) to finish, and returns the joined
// errors of all ranks.
func Run(n int, fn func(*Comm) error) error {
	return NewWorld().Run(n, fn)
}

// Run launches n ranks executing fn over a new communicator of size n and
// blocks until every rank in the world (including ranks spawned during
// execution) has returned. The per-rank errors are joined.
func (w *World) Run(n int, fn func(*Comm) error) error {
	if n <= 0 {
		return fmt.Errorf("mpi: Run needs at least 1 rank, got %d", n)
	}
	gids, ctx := w.allocProcs(n)
	for i := 0; i < n; i++ {
		c := &Comm{world: w, proc: w.lookup(gids[i]), ctx: ctx, gids: gids, rank: i}
		w.launch(c, fn)
	}
	w.wg.Wait()
	w.errMu.Lock()
	defer w.errMu.Unlock()
	return errors.Join(w.errs...)
}

// allocProcs registers n new ranks and a fresh context, returning the new
// global ids and the context id.
func (w *World) allocProcs(n int) (gids []int, ctx int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	gids = make([]int, n)
	for i := range gids {
		gid := w.nextGID
		w.nextGID++
		p := &proc{gid: gid}
		p.cond = sync.NewCond(&p.mu)
		w.procs[gid] = p
		gids[i] = gid
	}
	ctx = w.nextCtx
	w.nextCtx++
	return gids, ctx
}

// allocCtx reserves a fresh communicator context id.
func (w *World) allocCtx() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	ctx := w.nextCtx
	w.nextCtx++
	return ctx
}

func (w *World) lookup(gid int) *proc {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.procs[gid]
}

// launch starts fn on comm's rank in a new goroutine tracked by the world.
func (w *World) launch(c *Comm, fn func(*Comm) error) {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		if err := fn(c); err != nil {
			w.errMu.Lock()
			w.errs = append(w.errs, fmt.Errorf("rank %d (gid %d): %w", c.rank, c.proc.gid, err))
			w.errMu.Unlock()
		}
	}()
}

// proc is the per-rank mailbox. Messages are matched on (context, source,
// tag) with FIFO order preserved among matching messages.
type proc struct {
	gid  int
	mu   sync.Mutex
	cond *sync.Cond
	q    []envelope
}

// envelope is a single in-flight message.
type envelope struct {
	ctx  int
	src  int // rank of the sender within the context's communicator
	tag  int
	data any
}

// deliver appends an envelope to the mailbox and wakes any waiting receiver.
func (p *proc) deliver(e envelope) {
	p.mu.Lock()
	p.q = append(p.q, e)
	p.mu.Unlock()
	p.cond.Broadcast()
}

// take blocks until a message matching (ctx, src, tag) is available and
// removes it from the queue. src and tag may be AnySource / AnyTag.
func (p *proc) take(ctx, src, tag int) envelope {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		for i := range p.q {
			e := p.q[i]
			if e.ctx != ctx {
				continue
			}
			if src != AnySource && e.src != src {
				continue
			}
			if tag != AnyTag && e.tag != tag {
				continue
			}
			p.q = append(p.q[:i], p.q[i+1:]...)
			return e
		}
		p.cond.Wait()
	}
}
