package mpi

import (
	"fmt"
	"math"
	"sync/atomic"
	"testing"
)

func TestRunSingleRank(t *testing.T) {
	ran := false
	err := Run(1, func(c *Comm) error {
		ran = true
		if c.Rank() != 0 || c.Size() != 1 {
			t.Errorf("rank/size = %d/%d, want 0/1", c.Rank(), c.Size())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("rank function never ran")
	}
}

func TestRunRejectsZeroRanks(t *testing.T) {
	if err := Run(0, func(c *Comm) error { return nil }); err == nil {
		t.Fatal("Run(0) should fail")
	}
}

func TestRunCollectsErrors(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		if c.Rank()%2 == 1 {
			return fmt.Errorf("boom %d", c.Rank())
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected joined errors")
	}
}

func TestSendRecvPingPong(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.SendFloats(1, 7, []float64{1, 2, 3})
			got := c.RecvFloats(1, 8)
			if len(got) != 3 || got[0] != 2 || got[1] != 4 || got[2] != 6 {
				return fmt.Errorf("got %v", got)
			}
		} else {
			xs := c.RecvFloats(0, 7)
			for i := range xs {
				xs[i] *= 2
			}
			c.SendFloats(0, 8, xs)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendFloatsCopies(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []float64{1, 2, 3}
			c.SendFloats(1, 0, buf)
			buf[0] = 99 // must not affect the receiver
			c.Barrier()
		} else {
			c.Barrier()
			got := c.RecvFloats(0, 0)
			if got[0] != 1 {
				return fmt.Errorf("send did not copy: got %v", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvAnySourceAnyTag(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 0 {
			seen := map[int]bool{}
			for i := 0; i < 2; i++ {
				_, src, tag := c.Recv(AnySource, AnyTag)
				if tag != src*10 {
					return fmt.Errorf("src %d carried tag %d", src, tag)
				}
				seen[src] = true
			}
			if !seen[1] || !seen[2] {
				return fmt.Errorf("missing sources: %v", seen)
			}
		} else {
			c.Send(0, c.Rank()*10, c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessageOrderPreservedPerSender(t *testing.T) {
	const n = 50
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.Send(1, 3, i)
			}
		} else {
			for i := 0; i < n; i++ {
				v, _, _ := c.Recv(0, 3)
				if v.(int) != i {
					return fmt.Errorf("message %d arrived out of order as %v", i, v)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	var phase atomic.Int32
	err := Run(8, func(c *Comm) error {
		phase.Add(1)
		c.Barrier()
		if got := phase.Load(); got != 8 {
			return fmt.Errorf("rank %d saw phase %d after barrier", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedBarriers(t *testing.T) {
	var counter atomic.Int64
	const rounds = 20
	err := Run(5, func(c *Comm) error {
		for i := 0; i < rounds; i++ {
			counter.Add(1)
			c.Barrier()
			want := int64(5 * (i + 1))
			if got := counter.Load(); got != want {
				return fmt.Errorf("round %d: counter %d, want %d", i, got, want)
			}
			c.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastFromEveryRoot(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 5, 7, 8} {
		size := size
		t.Run(fmt.Sprintf("size%d", size), func(t *testing.T) {
			err := Run(size, func(c *Comm) error {
				for root := 0; root < size; root++ {
					want := root*100 + 7
					var x int
					if c.Rank() == root {
						x = want
					}
					got := c.BcastInt(root, x)
					if got != want {
						return fmt.Errorf("rank %d root %d: got %d want %d", c.Rank(), root, got, want)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBcastFloatsPrivateCopy(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		xs := []float64{float64(c.Rank()), 1}
		got := c.BcastFloats(0, xs)
		got[0] += 100 // mutating must not leak to other ranks
		c.Barrier()
		again := c.BcastFloats(0, []float64{5, 5})
		if again[0] != 5 {
			return fmt.Errorf("second bcast corrupted: %v", again)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceSum(t *testing.T) {
	err := Run(6, func(c *Comm) error {
		xs := []float64{float64(c.Rank()), 1}
		got := c.Reduce(0, xs, SumOp)
		if c.Rank() == 0 {
			if got[0] != 15 || got[1] != 6 {
				return fmt.Errorf("reduce got %v", got)
			}
		} else if got != nil {
			return fmt.Errorf("non-root got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSumAndMax(t *testing.T) {
	err := Run(5, func(c *Comm) error {
		s := c.AllreduceSum(float64(c.Rank() + 1))
		if s != 15 {
			return fmt.Errorf("sum got %v", s)
		}
		m := c.AllreduceMax(float64(c.Rank()))
		if m != 4 {
			return fmt.Errorf("max got %v", m)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceMinOp(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		got := c.Allreduce([]float64{float64(10 - c.Rank())}, MinOp)
		if got[0] != 7 {
			return fmt.Errorf("min got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		all := c.GatherFloats(0, []float64{float64(c.Rank()) * 2})
		var back []float64
		if c.Rank() == 0 {
			for r, xs := range all {
				if xs[0] != float64(r)*2 {
					return fmt.Errorf("gather slot %d = %v", r, xs)
				}
			}
			back = c.ScatterFloats(0, all)
		} else {
			back = c.ScatterFloats(0, nil)
		}
		if back[0] != float64(c.Rank())*2 {
			return fmt.Errorf("scatter returned %v", back)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		all := c.AllgatherFloats([]float64{float64(c.Rank() * c.Rank())})
		for r := 0; r < 4; r++ {
			if all[r][0] != float64(r*r) {
				return fmt.Errorf("allgather[%d] = %v", r, all[r])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallv(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		bufs := make([][]float64, 4)
		for r := range bufs {
			// send r copies of my rank to rank r
			for i := 0; i < r; i++ {
				bufs[r] = append(bufs[r], float64(c.Rank()))
			}
		}
		got := c.Alltoallv(bufs)
		for src := range got {
			if len(got[src]) != c.Rank() {
				return fmt.Errorf("from %d: got %d elems, want %d", src, len(got[src]), c.Rank())
			}
			for _, v := range got[src] {
				if v != float64(src) {
					return fmt.Errorf("from %d: value %v", src, v)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedCollectivesDoNotCrossMatch(t *testing.T) {
	// Stress ordering: many back-to-back collectives with asymmetric work.
	err := Run(6, func(c *Comm) error {
		for i := 0; i < 30; i++ {
			v := c.AllreduceSum(float64(i))
			if v != float64(6*i) {
				return fmt.Errorf("iter %d: sum %v", i, v)
			}
			if c.BcastInt(i%6, i) != i {
				return fmt.Errorf("iter %d: bcast mismatch", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitRowsAndColumns(t *testing.T) {
	// 6 ranks as a 2x3 grid; split into row comms and col comms.
	err := Run(6, func(c *Comm) error {
		row, col := c.Rank()/3, c.Rank()%3
		rowComm := c.Split(row, col)
		colComm := c.Split(col, row)
		if rowComm.Size() != 3 || rowComm.Rank() != col {
			return fmt.Errorf("row comm size/rank = %d/%d", rowComm.Size(), rowComm.Rank())
		}
		if colComm.Size() != 2 || colComm.Rank() != row {
			return fmt.Errorf("col comm size/rank = %d/%d", colComm.Size(), colComm.Rank())
		}
		// Sum over my row should be row-local.
		s := rowComm.AllreduceSum(float64(c.Rank()))
		want := float64(row*9 + 3) // ranks row*3 + {0,1,2}
		if s != want {
			return fmt.Errorf("row sum %v, want %v", s, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitNegativeColorExcluded(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		color := 0
		if c.Rank() >= 2 {
			color = -1
		}
		sub := c.Split(color, c.Rank())
		if c.Rank() < 2 {
			if sub == nil || sub.Size() != 2 {
				return fmt.Errorf("rank %d excluded wrongly", c.Rank())
			}
		} else if sub != nil {
			return fmt.Errorf("rank %d should be excluded", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSubCommunicator(t *testing.T) {
	err := Run(5, func(c *Comm) error {
		sub := c.Sub([]int{0, 2, 4})
		switch c.Rank() {
		case 0, 2, 4:
			if sub == nil {
				return fmt.Errorf("rank %d missing from sub", c.Rank())
			}
			if sub.Size() != 3 || sub.Rank() != c.Rank()/2 {
				return fmt.Errorf("rank %d: sub size/rank %d/%d", c.Rank(), sub.Size(), sub.Rank())
			}
			if got := sub.AllreduceSum(1); got != 3 {
				return fmt.Errorf("sub allreduce %v", got)
			}
		default:
			if sub != nil {
				return fmt.Errorf("rank %d should not be in sub", c.Rank())
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDupIsolatesTraffic(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		d := c.Dup()
		if c.Rank() == 0 {
			c.Send(1, 5, "on-c")
			d.Send(1, 5, "on-d")
		} else {
			// Receive on d first even though c's message was sent first:
			// contexts must isolate the two.
			v, _, _ := d.Recv(0, 5)
			if v.(string) != "on-d" {
				return fmt.Errorf("dup leaked: %v", v)
			}
			v, _, _ = c.Recv(0, 5)
			if v.(string) != "on-c" {
				return fmt.Errorf("wrong message on c: %v", v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSpawnAndMerge(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		ic := c.Spawn(3, func(child *Intercomm) error {
			m := child.Merge()
			// children are ranks 2,3,4 of the merged comm of size 5
			if m.Size() != 5 {
				return fmt.Errorf("child merged size %d", m.Size())
			}
			if m.Rank() != 2+child.Local().Rank() {
				return fmt.Errorf("child merged rank %d (local %d)", m.Rank(), child.Local().Rank())
			}
			s := m.AllreduceSum(float64(m.Rank()))
			if s != 10 {
				return fmt.Errorf("child allreduce %v", s)
			}
			return nil
		})
		if ic.RemoteSize() != 3 {
			return fmt.Errorf("remote size %d", ic.RemoteSize())
		}
		m := ic.Merge()
		if m.Size() != 5 || m.Rank() != c.Rank() {
			return fmt.Errorf("parent merged size/rank %d/%d", m.Size(), m.Rank())
		}
		s := m.AllreduceSum(float64(m.Rank()))
		if s != 10 {
			return fmt.Errorf("parent allreduce %v", s)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSpawnIntercommPointToPoint(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		ic := c.Spawn(2, func(child *Intercomm) error {
			v, _, _ := child.Recv(AnySource, 1)
			child.Send(v.(int), 2, child.Local().Rank()*100)
			return nil
		})
		// parent rank r messages child rank r
		ic.Send(c.Rank(), 1, c.Rank())
		v, _, _ := ic.Recv(c.Rank(), 2)
		if v.(int) != c.Rank()*100 {
			return fmt.Errorf("got %v", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNestedSpawnGrowsTwice(t *testing.T) {
	// Grow 1 -> 2 -> 4 as the resize library does on repeated expansion.
	err := Run(1, func(c *Comm) error {
		work := func(m *Comm) error {
			s := m.AllreduceSum(1)
			if s != float64(m.Size()) {
				return fmt.Errorf("size %d sum %v", m.Size(), s)
			}
			return nil
		}
		grown2 := make(chan *Comm, 1)
		ic := c.Spawn(1, func(child *Intercomm) error {
			m := child.Merge()
			if err := work(m); err != nil {
				return err
			}
			// participate in the second expansion as a parent
			ic2 := m.Spawn(2, func(grand *Intercomm) error {
				return work(grand.Merge())
			})
			return work(ic2.Merge())
		})
		m := ic.Merge()
		if err := work(m); err != nil {
			return err
		}
		ic2 := m.Spawn(2, func(grand *Intercomm) error {
			return work(grand.Merge())
		})
		m2 := ic2.Merge()
		grown2 <- m2
		return work(m2)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPersistentRequests(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		const rounds = 5
		if c.Rank() == 0 {
			buf := make([]float64, 4)
			req := c.SendInit(1, 9, buf)
			for i := 0; i < rounds; i++ {
				for j := range buf {
					buf[j] = float64(i*10 + j)
				}
				req.Start()
				req.Wait()
			}
		} else {
			buf := make([]float64, 4)
			req := c.RecvInit(0, 9, buf)
			for i := 0; i < rounds; i++ {
				req.Start()
				req.Wait()
				for j := range buf {
					if buf[j] != float64(i*10+j) {
						return fmt.Errorf("round %d: buf %v", i, buf)
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPersistentStartAllWaitAll(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		// everyone sends to everyone (including via distinct requests)
		var sends, recvs []*Request
		n := c.Size()
		sendBufs := make([][]float64, n)
		recvBufs := make([][]float64, n)
		for r := 0; r < n; r++ {
			if r == c.Rank() {
				continue
			}
			sendBufs[r] = []float64{float64(c.Rank()*10 + r)}
			recvBufs[r] = make([]float64, 1)
			sends = append(sends, c.SendInit(r, 4, sendBufs[r]))
			recvs = append(recvs, c.RecvInit(r, 4, recvBufs[r]))
		}
		StartAll(sends)
		StartAll(recvs)
		WaitAll(recvs)
		WaitAll(sends)
		for r := 0; r < n; r++ {
			if r == c.Rank() {
				continue
			}
			want := float64(r*10 + c.Rank())
			if recvBufs[r][0] != want {
				return fmt.Errorf("from %d got %v want %v", r, recvBufs[r][0], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPersistentMisuse(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		defer func() {
			if recover() == nil {
				t.Error("double Start should panic")
			}
		}()
		req := c.SendInit(0, 0, []float64{1})
		req.Start()
		req.Start()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLargePayloadIntegrity(t *testing.T) {
	const n = 1 << 16
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = math.Sqrt(float64(i))
			}
			c.SendFloats(1, 0, xs)
		} else {
			xs := c.RecvFloats(0, 0)
			if len(xs) != n {
				return fmt.Errorf("len %d", len(xs))
			}
			for i := 0; i < n; i += 997 {
				if xs[i] != math.Sqrt(float64(i)) {
					return fmt.Errorf("corrupt at %d", i)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRequestSetRecvsPostedBeforeSends(t *testing.T) {
	// The pipelined redistribution order: every rank arms all its receives
	// first, then packs and sends. Receives are armed in the background, so
	// this must complete without any rank reaching its send.
	err := Run(4, func(c *Comm) error {
		n := c.Size()
		var recvSet, sendSet RequestSet
		recvBufs := make([][]float64, n)
		for r := 0; r < n; r++ {
			if r == c.Rank() {
				continue
			}
			recvBufs[r] = make([]float64, 2)
			recvSet.AddRecv(c, r, 7, recvBufs[r])
		}
		recvSet.Startall()
		for r := 0; r < n; r++ {
			if r == c.Rank() {
				continue
			}
			sendSet.AddSend(c, r, 7, []float64{float64(c.Rank()), float64(r)})
		}
		sendSet.Startall()
		recvSet.Waitall()
		sendSet.Waitall()
		for r := 0; r < n; r++ {
			if r == c.Rank() {
				continue
			}
			if recvBufs[r][0] != float64(r) || recvBufs[r][1] != float64(c.Rank()) {
				return fmt.Errorf("rank %d from %d: %v", c.Rank(), r, recvBufs[r])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRequestSetReuseAcrossRounds(t *testing.T) {
	// Reset lets one set (and its underlying persistent requests) drive
	// repeated executions of the same schedule.
	err := Run(2, func(c *Comm) error {
		peer := 1 - c.Rank()
		sendBuf := make([]float64, 3)
		recvBuf := make([]float64, 3)
		var set RequestSet
		for round := 0; round < 4; round++ {
			set.Reset()
			if set.Len() != 0 {
				return fmt.Errorf("reset left %d requests", set.Len())
			}
			set.AddRecv(c, peer, 11, recvBuf)
			set.Startall()
			for j := range sendBuf {
				sendBuf[j] = float64(round*100 + c.Rank()*10 + j)
			}
			c.SendInit(peer, 11, sendBuf).Start()
			set.Waitall()
			for j := range recvBuf {
				if recvBuf[j] != float64(round*100+peer*10+j) {
					return fmt.Errorf("round %d: %v", round, recvBuf)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRequestSetPerStepTagsPipeline(t *testing.T) {
	// Arm the receives for several schedule steps up front (distinct tags
	// per step), then send the steps in reverse order: each armed receive
	// must still complete with its own step's payload.
	const steps = 5
	err := Run(2, func(c *Comm) error {
		peer := 1 - c.Rank()
		bufs := make([][]float64, steps)
		var set RequestSet
		for s := 0; s < steps; s++ {
			bufs[s] = make([]float64, 1)
			set.AddRecv(c, peer, 100+s, bufs[s])
		}
		set.Startall()
		for s := steps - 1; s >= 0; s-- {
			c.SendFloats(peer, 100+s, []float64{float64(peer*1000 + s)})
		}
		set.Waitall()
		for s := 0; s < steps; s++ {
			if bufs[s][0] != float64(c.Rank()*1000+s) {
				return fmt.Errorf("step %d: got %v", s, bufs[s][0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRequestSetResetRejectsInFlightReceives(t *testing.T) {
	// Dropping an armed receive would leave its background matcher alive to
	// steal the next execution's message; Reset must refuse.
	err := Run(2, func(c *Comm) error {
		if c.Rank() != 0 {
			v, _, _ := c.Recv(0, 50)
			if v.(int) != 1 {
				return fmt.Errorf("handshake payload %v", v)
			}
			c.SendFloats(0, 51, []float64{4})
			return nil
		}
		var set RequestSet
		set.AddRecv(c, 1, 51, make([]float64, 1))
		set.Startall()
		panicked := func() (p bool) {
			defer func() { p = recover() != nil }()
			set.Reset()
			return
		}()
		if !panicked {
			t.Error("Reset accepted an armed in-flight receive")
		}
		c.Send(1, 50, 1) // let rank 1 send so the armed receive can finish
		set.Waitall()
		set.Reset() // completed: now legal
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
