package mpi

import "fmt"

// Intercomm connects two disjoint groups of ranks: a local group (the side
// the caller belongs to) and a remote group. It mirrors the MPI
// intercommunicator produced by MPI_Comm_spawn_multiple, and can be merged
// into a single intracommunicator like MPI_Intercomm_merge.
type Intercomm struct {
	local      *Comm
	remoteGids []int
	ctx        int  // context for cross-group point-to-point traffic
	mergedCtx  int  // pre-agreed context for the merged intracommunicator
	localFirst bool // true on the parent side: parents precede children after Merge
}

// Local returns the communicator over the caller's own group.
func (ic *Intercomm) Local() *Comm { return ic.local }

// RemoteSize returns the number of ranks in the remote group.
func (ic *Intercomm) RemoteSize() int { return len(ic.remoteGids) }

// Send delivers v to rank dst of the remote group.
func (ic *Intercomm) Send(dst, tag int, v any) {
	if dst < 0 || dst >= len(ic.remoteGids) {
		panic(fmt.Sprintf("mpi: intercomm Send to invalid remote rank %d (size %d)", dst, len(ic.remoteGids)))
	}
	p := ic.local.world.lookup(ic.remoteGids[dst])
	p.deliver(envelope{ctx: ic.ctx, src: ic.local.rank, tag: tag, data: v})
}

// Recv blocks for a message from rank src of the remote group (or AnySource).
func (ic *Intercomm) Recv(src, tag int) (v any, actualSrc, actualTag int) {
	e := ic.local.proc.take(ic.ctx, src, tag)
	return e.data, e.src, e.tag
}

// Merge combines both groups into one intracommunicator. On the side created
// with localFirst (the spawning parents), local ranks come first, followed by
// the remote (spawned) ranks, exactly as the ReSHAPE resize library expects
// when growing a processor set. Merge is purely local: the merged context was
// agreed at spawn time, so no traffic is needed.
func (ic *Intercomm) Merge() *Comm {
	var gids []int
	var rank int
	localGids := ic.local.gids
	if ic.localFirst {
		gids = append(append([]int{}, localGids...), ic.remoteGids...)
		rank = ic.local.rank
	} else {
		gids = append(append([]int{}, ic.remoteGids...), localGids...)
		rank = len(ic.remoteGids) + ic.local.rank
	}
	return &Comm{world: ic.local.world, proc: ic.local.proc, ctx: ic.mergedCtx, gids: gids, rank: rank}
}

// spawnInfo is the control message broadcast to all parents during Spawn.
type spawnInfo struct {
	childGids []int
	childCtx  int
	interCtx  int
	mergedCtx int
}

// Spawn collectively creates k new ranks running fn and returns the
// parent-side intercommunicator on every parent rank. Each child receives a
// child-side intercommunicator whose Local() communicator spans the k
// children (the child "world"), mirroring MPI_Comm_get_parent. The world
// waits for spawned ranks before Run returns.
func (c *Comm) Spawn(k int, fn func(*Intercomm) error) *Intercomm {
	if k <= 0 {
		panic(fmt.Sprintf("mpi: Spawn needs at least 1 child, got %d", k))
	}
	var info spawnInfo
	if c.rank == 0 {
		childGids, childCtx := c.world.allocProcs(k)
		info = spawnInfo{
			childGids: childGids,
			childCtx:  childCtx,
			interCtx:  c.world.allocCtx(),
			mergedCtx: c.world.allocCtx(),
		}
	}
	info = c.Bcast(0, info).(spawnInfo)

	if c.rank == 0 {
		parentGids := append([]int{}, c.gids...)
		for i := 0; i < k; i++ {
			childComm := &Comm{
				world: c.world,
				proc:  c.world.lookup(info.childGids[i]),
				ctx:   info.childCtx,
				gids:  info.childGids,
				rank:  i,
			}
			childIC := &Intercomm{
				local:      childComm,
				remoteGids: parentGids,
				ctx:        info.interCtx,
				mergedCtx:  info.mergedCtx,
				localFirst: false,
			}
			c.world.launchIntercomm(childIC, fn)
		}
	}
	return &Intercomm{
		local:      c,
		remoteGids: info.childGids,
		ctx:        info.interCtx,
		mergedCtx:  info.mergedCtx,
		localFirst: true,
	}
}

// launchIntercomm starts fn for a spawned child rank, tracked by the world.
func (w *World) launchIntercomm(ic *Intercomm, fn func(*Intercomm) error) {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		if err := fn(ic); err != nil {
			w.errMu.Lock()
			w.errs = append(w.errs, fmt.Errorf("spawned rank %d (gid %d): %w", ic.local.rank, ic.local.proc.gid, err))
			w.errMu.Unlock()
		}
	}()
}
