package mpi

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestAllreduceSumProperty: the allreduce of random per-rank values equals
// the serial sum, for random communicator sizes.
func TestAllreduceSumProperty(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%8) + 1
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float64, n)
		want := 0.0
		for i := range vals {
			vals[i] = float64(rng.Intn(1000))
			want += vals[i]
		}
		ok := true
		err := Run(n, func(c *Comm) error {
			got := c.AllreduceSum(vals[c.Rank()])
			if got != want {
				return fmt.Errorf("got %v want %v", got, want)
			}
			return nil
		})
		if err != nil {
			ok = false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestBcastProperty: bcast from a random root delivers the root's value to
// every rank.
func TestBcastProperty(t *testing.T) {
	f := func(seed int64, rawN, rawRoot uint8) bool {
		n := int(rawN%8) + 1
		root := int(rawRoot) % n
		want := int(seed % 100000)
		err := Run(n, func(c *Comm) error {
			x := -1
			if c.Rank() == root {
				x = want
			}
			if got := c.BcastInt(root, x); got != want {
				return fmt.Errorf("rank %d got %d", c.Rank(), got)
			}
			return nil
		})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSplitProperty: splitting by random colors yields communicators whose
// sizes sum to the parent and whose allreduce sums are color-local.
func TestSplitProperty(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%8) + 2
		rng := rand.New(rand.NewSource(seed))
		colors := make([]int, n)
		wantSum := map[int]float64{}
		for r := range colors {
			colors[r] = rng.Intn(3)
			wantSum[colors[r]] += float64(r)
		}
		err := Run(n, func(c *Comm) error {
			sub := c.Split(colors[c.Rank()], c.Rank())
			if sub == nil {
				return fmt.Errorf("rank %d got nil sub", c.Rank())
			}
			got := sub.AllreduceSum(float64(c.Rank()))
			if got != wantSum[colors[c.Rank()]] {
				return fmt.Errorf("rank %d color %d: sum %v want %v",
					c.Rank(), colors[c.Rank()], got, wantSum[colors[c.Rank()]])
			}
			return nil
		})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestConcurrentWorldsAreIsolated: several worlds running simultaneously
// must not interfere (each job in ReSHAPE runs in its own world).
func TestConcurrentWorldsAreIsolated(t *testing.T) {
	const worlds = 6
	errs := make(chan error, worlds)
	for w := 0; w < worlds; w++ {
		w := w
		go func() {
			errs <- Run(4, func(c *Comm) error {
				for i := 0; i < 20; i++ {
					s := c.AllreduceSum(float64(w))
					if s != float64(4*w) {
						return fmt.Errorf("world %d: sum %v", w, s)
					}
				}
				return nil
			})
		}()
	}
	for w := 0; w < worlds; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestManyRanksStress pushes a larger communicator through mixed traffic.
func TestManyRanksStress(t *testing.T) {
	const n = 32
	err := Run(n, func(c *Comm) error {
		// ring exchange
		next := (c.Rank() + 1) % n
		prev := (c.Rank() + n - 1) % n
		for i := 0; i < 10; i++ {
			c.SendFloats(next, 1, []float64{float64(c.Rank()*1000 + i)})
			got := c.RecvFloats(prev, 1)
			if got[0] != float64(prev*1000+i) {
				return fmt.Errorf("ring iter %d: got %v", i, got[0])
			}
		}
		// interleaved collectives
		if s := c.AllreduceSum(1); s != n {
			return fmt.Errorf("allreduce %v", s)
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSpawnManyChildren grows a world by 16 ranks in one spawn.
func TestSpawnManyChildren(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		ic := c.Spawn(16, func(child *Intercomm) error {
			m := child.Merge()
			if s := m.AllreduceSum(1); s != 20 {
				return fmt.Errorf("child merged sum %v", s)
			}
			return nil
		})
		m := ic.Merge()
		if s := m.AllreduceSum(1); s != 20 {
			return fmt.Errorf("parent merged sum %v", s)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAlltoallvProperty: total floats received equals total floats sent.
func TestAlltoallvProperty(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%6) + 1
		rng := rand.New(rand.NewSource(seed))
		// sizes[src][dst]
		sizes := make([][]int, n)
		for s := range sizes {
			sizes[s] = make([]int, n)
			for d := range sizes[s] {
				sizes[s][d] = rng.Intn(5)
			}
		}
		err := Run(n, func(c *Comm) error {
			bufs := make([][]float64, n)
			for d := 0; d < n; d++ {
				bufs[d] = make([]float64, sizes[c.Rank()][d])
				for i := range bufs[d] {
					bufs[d][i] = float64(c.Rank())
				}
			}
			got := c.Alltoallv(bufs)
			for s := 0; s < n; s++ {
				if len(got[s]) != sizes[s][c.Rank()] {
					return fmt.Errorf("from %d: %d floats, want %d", s, len(got[s]), sizes[s][c.Rank()])
				}
				for _, v := range got[s] {
					if v != float64(s) {
						return fmt.Errorf("from %d: value %v", s, v)
					}
				}
			}
			return nil
		})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
