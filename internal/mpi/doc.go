// Package mpi implements a small message-passing runtime in the spirit of
// MPI-2, with ranks executing as goroutines inside a single process.
//
// The runtime provides the subset of MPI that the ReSHAPE paper's resizing
// library depends on:
//
//   - communicators with ranks, contexts and tags
//   - point-to-point Send/Recv with copy semantics for numeric payloads
//   - collectives (Barrier, Bcast, Reduce, Allreduce, Gather, Allgather,
//     Scatter, Alltoallv)
//   - dynamic process management: Spawn (MPI_Comm_spawn_multiple) and
//     intercommunicator Merge (MPI_Intercomm_merge)
//   - persistent communication requests (MPI_Send_init / MPI_Recv_init /
//     MPI_Start / MPI_Wait), used by the redistribution library
//
// Sends are eager and buffered: Send never blocks, so communication
// schedules in which a rank both sends and receives in the same step cannot
// deadlock. Message order between a fixed (sender, receiver, tag, context)
// tuple is preserved.
package mpi
