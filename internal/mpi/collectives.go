package mpi

import "fmt"

// Collectives receive from explicit source ranks rather than AnySource so
// that back-to-back collective calls on the same communicator cannot
// cross-match messages from ranks that have already raced ahead into the
// next call. Per-(sender,receiver,tag,context) FIFO order then guarantees
// correctness.

// Barrier blocks until every rank in the communicator has entered it.
func (c *Comm) Barrier() {
	if c.rank == 0 {
		for r := 1; r < c.Size(); r++ {
			c.Recv(r, tagBarrierIn)
		}
		for r := 1; r < c.Size(); r++ {
			c.Send(r, tagBarrierOut, struct{}{})
		}
	} else {
		c.Send(0, tagBarrierIn, struct{}{})
		c.Recv(0, tagBarrierOut)
	}
}

// Bcast broadcasts v from root to every rank via a binomial tree and returns
// the received value on every rank (on root it returns v unchanged). The
// value is shared by reference; receivers must not mutate it.
func (c *Comm) Bcast(root int, v any) any {
	n := c.Size()
	if n == 1 {
		return v
	}
	me := (c.rank - root + n) % n // rank in root-shifted space
	mask := 1
	for mask < n {
		if me&mask != 0 {
			parent := (me - mask + root) % n
			got, _, _ := c.Recv(parent, tagBcast)
			v = got
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if me+mask < n {
			child := (me + mask + root) % n
			c.Send(child, tagBcast, v)
		}
	}
	return v
}

// BcastFloats broadcasts a float64 slice from root. Every rank — including
// the root — may freely mutate the returned slice afterwards: the root
// injects a private copy into the broadcast tree and each receiver copies
// out of it.
func (c *Comm) BcastFloats(root int, xs []float64) []float64 {
	var payload []float64
	if c.rank == root {
		payload = make([]float64, len(xs))
		copy(payload, xs)
	}
	v := c.Bcast(root, payload)
	if c.rank == root {
		return xs
	}
	got := v.([]float64)
	cp := make([]float64, len(got))
	copy(cp, got)
	return cp
}

// BcastInt broadcasts a single int from root.
func (c *Comm) BcastInt(root, x int) int {
	return c.Bcast(root, x).(int)
}

// ReduceOp combines two equal-length float64 slices element-wise into dst.
type ReduceOp func(dst, src []float64)

// SumOp adds src into dst element-wise.
func SumOp(dst, src []float64) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// MaxOp keeps the element-wise maximum in dst.
func MaxOp(dst, src []float64) {
	for i := range dst {
		if src[i] > dst[i] {
			dst[i] = src[i]
		}
	}
}

// MinOp keeps the element-wise minimum in dst.
func MinOp(dst, src []float64) {
	for i := range dst {
		if src[i] < dst[i] {
			dst[i] = src[i]
		}
	}
}

// Reduce combines xs across ranks with op; the combined slice is returned on
// root and nil elsewhere. xs is not mutated.
func (c *Comm) Reduce(root int, xs []float64, op ReduceOp) []float64 {
	if c.rank != root {
		c.SendFloats(root, tagReduce, xs)
		return nil
	}
	acc := make([]float64, len(xs))
	copy(acc, xs)
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		got := c.RecvFloats(r, tagReduce)
		if len(got) != len(acc) {
			panic(fmt.Sprintf("mpi: Reduce length mismatch %d vs %d", len(got), len(acc)))
		}
		op(acc, got)
	}
	return acc
}

// Allreduce combines xs across all ranks with op and returns the combined
// slice on every rank.
func (c *Comm) Allreduce(xs []float64, op ReduceOp) []float64 {
	acc := c.Reduce(0, xs, op)
	return c.BcastFloats(0, acc)
}

// AllreduceSum is Allreduce with SumOp on a single scalar.
func (c *Comm) AllreduceSum(x float64) float64 {
	return c.Allreduce([]float64{x}, SumOp)[0]
}

// AllreduceMax is Allreduce with MaxOp on a single scalar.
func (c *Comm) AllreduceMax(x float64) float64 {
	return c.Allreduce([]float64{x}, MaxOp)[0]
}

// Gather collects one value per rank at root; the result on root is indexed
// by rank, and nil elsewhere.
func (c *Comm) Gather(root int, v any) []any {
	if c.rank != root {
		c.Send(root, tagGather, v)
		return nil
	}
	out := make([]any, c.Size())
	out[c.rank] = v
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		got, _, _ := c.Recv(r, tagGather)
		out[r] = got
	}
	return out
}

// GatherFloats collects a float64 slice per rank at root, indexed by rank.
func (c *Comm) GatherFloats(root int, xs []float64) [][]float64 {
	if c.rank != root {
		c.SendFloats(root, tagGather, xs)
		return nil
	}
	out := make([][]float64, c.Size())
	cp := make([]float64, len(xs))
	copy(cp, xs)
	out[c.rank] = cp
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		got, _, _ := c.Recv(r, tagGather)
		out[r] = got.([]float64)
	}
	return out
}

// Allgather collects one value per rank and distributes the full slice to
// every rank, indexed by rank.
func (c *Comm) Allgather(v any) []any {
	all := c.Gather(0, v)
	res := c.Bcast(0, all)
	return res.([]any)
}

// AllgatherFloats collects a float64 slice per rank on every rank.
func (c *Comm) AllgatherFloats(xs []float64) [][]float64 {
	all := c.GatherFloats(0, xs)
	res := c.Bcast(0, all)
	return res.([][]float64)
}

// Scatter distributes vs[i] to rank i from root and returns the local value.
// vs is only read on root and must have length Size().
func (c *Comm) Scatter(root int, vs []any) any {
	if c.rank == root {
		if len(vs) != c.Size() {
			panic(fmt.Sprintf("mpi: Scatter needs %d values, got %d", c.Size(), len(vs)))
		}
		for r := 0; r < c.Size(); r++ {
			if r != root {
				c.Send(r, tagScatter, vs[r])
			}
		}
		return vs[root]
	}
	v, _, _ := c.Recv(root, tagScatter)
	return v
}

// ScatterFloats distributes one float64 slice per rank from root; each rank
// receives a private copy.
func (c *Comm) ScatterFloats(root int, vs [][]float64) []float64 {
	var v any
	if c.rank == root {
		anyVs := make([]any, len(vs))
		for i := range vs {
			anyVs[i] = vs[i]
		}
		v = c.Scatter(root, anyVs)
	} else {
		v = c.Scatter(root, nil)
	}
	src := v.([]float64)
	cp := make([]float64, len(src))
	copy(cp, src)
	return cp
}

// Alltoallv sends sendbufs[r] to rank r and returns the slice received from
// each rank, indexed by source rank. Empty or nil buffers are allowed.
func (c *Comm) Alltoallv(sendbufs [][]float64) [][]float64 {
	if len(sendbufs) != c.Size() {
		panic(fmt.Sprintf("mpi: Alltoallv needs %d buffers, got %d", c.Size(), len(sendbufs)))
	}
	for r := 0; r < c.Size(); r++ {
		if r == c.rank {
			continue
		}
		c.SendFloats(r, tagAlltoall, sendbufs[r])
	}
	out := make([][]float64, c.Size())
	own := make([]float64, len(sendbufs[c.rank]))
	copy(own, sendbufs[c.rank])
	out[c.rank] = own
	for r := 0; r < c.Size(); r++ {
		if r == c.rank {
			continue
		}
		v, _, _ := c.Recv(r, tagAlltoall)
		out[r] = v.([]float64)
	}
	return out
}
