package mpi

import (
	"fmt"
	"sort"
)

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -2
)

// Comm is a communicator: an ordered group of ranks sharing a context.
// All point-to-point and collective operations are scoped to a Comm.
type Comm struct {
	world *World
	proc  *proc
	ctx   int
	gids  []int // global ids of members; index is the communicator rank
	rank  int   // caller's rank within this communicator
}

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.gids) }

// Send delivers v to rank dst with the given tag. The value is delivered by
// reference: the receiver must not mutate it. Use SendFloats/SendInts for
// numeric buffers that may be reused by the sender.
func (c *Comm) Send(dst, tag int, v any) {
	c.sendCtx(c.ctx, dst, tag, v)
}

func (c *Comm) sendCtx(ctx, dst, tag int, v any) {
	if dst < 0 || dst >= len(c.gids) {
		panic(fmt.Sprintf("mpi: Send to invalid rank %d (size %d)", dst, len(c.gids)))
	}
	p := c.world.lookup(c.gids[dst])
	p.deliver(envelope{ctx: ctx, src: c.rank, tag: tag, data: v})
}

// SendFloats copies xs and delivers the copy to rank dst.
func (c *Comm) SendFloats(dst, tag int, xs []float64) {
	cp := make([]float64, len(xs))
	copy(cp, xs)
	c.Send(dst, tag, cp)
}

// SendInts copies xs and delivers the copy to rank dst.
func (c *Comm) SendInts(dst, tag int, xs []int) {
	cp := make([]int, len(xs))
	copy(cp, xs)
	c.Send(dst, tag, cp)
}

// Recv blocks until a message matching src and tag arrives and returns its
// payload plus the actual source rank and tag. src may be AnySource and tag
// may be AnyTag.
func (c *Comm) Recv(src, tag int) (v any, actualSrc, actualTag int) {
	e := c.proc.take(c.ctx, src, tag)
	return e.data, e.src, e.tag
}

// RecvFloats receives a []float64 message.
func (c *Comm) RecvFloats(src, tag int) []float64 {
	v, _, _ := c.Recv(src, tag)
	xs, ok := v.([]float64)
	if !ok {
		panic(fmt.Sprintf("mpi: RecvFloats got %T", v))
	}
	return xs
}

// RecvInts receives a []int message.
func (c *Comm) RecvInts(src, tag int) []int {
	v, _, _ := c.Recv(src, tag)
	xs, ok := v.([]int)
	if !ok {
		panic(fmt.Sprintf("mpi: RecvInts got %T", v))
	}
	return xs
}

// Dup returns a communicator over the same group with a fresh context.
// Collective: every rank must call it, and context ids are agreed through
// rank 0.
func (c *Comm) Dup() *Comm {
	var ctx int
	if c.rank == 0 {
		ctx = c.world.allocCtx()
		for r := 1; r < c.Size(); r++ {
			c.Send(r, tagDup, ctx)
		}
	} else {
		v, _, _ := c.Recv(0, tagDup)
		ctx = v.(int)
	}
	return &Comm{world: c.world, proc: c.proc, ctx: ctx, gids: c.gids, rank: c.rank}
}

// Split partitions the communicator by color, ordering ranks within each new
// communicator by (key, old rank), exactly like MPI_Comm_split. A negative
// color returns nil for that rank. Collective.
func (c *Comm) Split(color, key int) *Comm {
	type entry struct{ color, key, rank int }
	mine := entry{color, key, c.rank}

	if c.rank != 0 {
		c.Send(0, tagSplit, mine)
		v, _, _ := c.Recv(0, tagSplit)
		res := v.(splitResult)
		if res.ctx < 0 {
			return nil
		}
		return &Comm{world: c.world, proc: c.proc, ctx: res.ctx, gids: res.gids, rank: res.rank}
	}

	entries := make([]entry, c.Size())
	entries[c.rank] = mine
	for i := 1; i < c.Size(); i++ {
		v, src, _ := c.Recv(AnySource, tagSplit)
		entries[src] = v.(entry)
	}
	// Group by color.
	byColor := make(map[int][]entry)
	for _, e := range entries {
		if e.color >= 0 {
			byColor[e.color] = append(byColor[e.color], e)
		}
	}
	results := make([]splitResult, c.Size())
	for i := range results {
		results[i].ctx = -1
	}
	colors := make([]int, 0, len(byColor))
	for col := range byColor {
		colors = append(colors, col)
	}
	sort.Ints(colors)
	for _, col := range colors {
		group := byColor[col]
		sort.Slice(group, func(i, j int) bool {
			if group[i].key != group[j].key {
				return group[i].key < group[j].key
			}
			return group[i].rank < group[j].rank
		})
		ctx := c.world.allocCtx()
		gids := make([]int, len(group))
		for i, e := range group {
			gids[i] = c.gids[e.rank]
		}
		for i, e := range group {
			results[e.rank] = splitResult{ctx: ctx, gids: gids, rank: i}
		}
	}
	for r := 1; r < c.Size(); r++ {
		c.Send(r, tagSplit, results[r])
	}
	res := results[0]
	if res.ctx < 0 {
		return nil
	}
	return &Comm{world: c.world, proc: c.proc, ctx: res.ctx, gids: res.gids, rank: res.rank}
}

type splitResult struct {
	ctx  int
	gids []int
	rank int
}

// Sub returns a communicator containing only the listed ranks (in the given
// order). Collective over the parent: every rank of c must call Sub with the
// same ranks slice; ranks not in the list receive nil.
func (c *Comm) Sub(ranks []int) *Comm {
	color, key := -1, 0
	for i, r := range ranks {
		if r == c.rank {
			color, key = 0, i
		}
	}
	return c.Split(color, key)
}

// World returns the hosting World, for advanced integrations (spawning).
func (c *Comm) World() *World { return c.world }

// Internal tags used by collective implementations. User tags must be >= 0.
const (
	tagDup = -(100 + iota)
	tagSplit
	tagBarrierIn
	tagBarrierOut
	tagBcast
	tagReduce
	tagGather
	tagScatter
	tagAlltoall
	tagSpawn
	tagAllgather
)
