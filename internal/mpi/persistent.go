package mpi

import "fmt"

// Request is a persistent communication request bound to a fixed peer, tag
// and buffer, mirroring MPI_Send_init / MPI_Recv_init. A request may be
// started and waited on repeatedly; the redistribution library reuses one
// request per communication-schedule step.
type Request struct {
	comm    *Comm
	send    bool
	peer    int
	tag     int
	buf     []float64
	started bool
}

// SendInit creates a persistent send request. Each Start snapshots the
// current contents of buf and delivers them to dst.
func (c *Comm) SendInit(dst, tag int, buf []float64) *Request {
	if dst < 0 || dst >= c.Size() {
		panic(fmt.Sprintf("mpi: SendInit to invalid rank %d (size %d)", dst, c.Size()))
	}
	return &Request{comm: c, send: true, peer: dst, tag: tag, buf: buf}
}

// RecvInit creates a persistent receive request. Each Start arms the request;
// the matching Wait blocks until a message from src with tag arrives and
// copies it into buf.
func (c *Comm) RecvInit(src, tag int, buf []float64) *Request {
	if src != AnySource && (src < 0 || src >= c.Size()) {
		panic(fmt.Sprintf("mpi: RecvInit from invalid rank %d (size %d)", src, c.Size()))
	}
	return &Request{comm: c, send: false, peer: src, tag: tag, buf: buf}
}

// Start initiates the operation. Sends complete eagerly (the buffer is
// copied immediately); receives are armed and complete in Wait.
func (r *Request) Start() {
	if r.started {
		panic("mpi: Request started twice without Wait")
	}
	r.started = true
	if r.send {
		r.comm.SendFloats(r.peer, r.tag, r.buf)
	}
}

// Wait completes the operation started by the last Start. For receives it
// blocks until the message arrives and fills the bound buffer; the message
// length must not exceed the buffer length.
func (r *Request) Wait() {
	if !r.started {
		panic("mpi: Wait on request that was not started")
	}
	r.started = false
	if r.send {
		return
	}
	got := r.comm.RecvFloats(r.peer, r.tag)
	if len(got) > len(r.buf) {
		panic(fmt.Sprintf("mpi: persistent recv overflow: message %d into buffer %d", len(got), len(r.buf)))
	}
	copy(r.buf, got)
}

// StartAll starts every request.
func StartAll(reqs []*Request) {
	for _, r := range reqs {
		r.Start()
	}
}

// WaitAll waits for every request.
func WaitAll(reqs []*Request) {
	for _, r := range reqs {
		r.Wait()
	}
}
