package mpi

import "fmt"

// Request is a persistent communication request bound to a fixed peer, tag
// and buffer, mirroring MPI_Send_init / MPI_Recv_init. A request may be
// started and waited on repeatedly; the redistribution library reuses one
// request per communication-schedule step.
type Request struct {
	comm    *Comm
	send    bool
	peer    int
	tag     int
	buf     []float64
	started bool
	done    chan []float64 // armed receive completion (nil for sends)
}

// SendInit creates a persistent send request. Each Start snapshots the
// current contents of buf and delivers them to dst.
func (c *Comm) SendInit(dst, tag int, buf []float64) *Request {
	if dst < 0 || dst >= c.Size() {
		panic(fmt.Sprintf("mpi: SendInit to invalid rank %d (size %d)", dst, c.Size()))
	}
	return &Request{comm: c, send: true, peer: dst, tag: tag, buf: buf}
}

// RecvInit creates a persistent receive request. Each Start arms the
// request; the matching Wait blocks until a message from src with tag
// arrives and copies it into buf.
func (c *Comm) RecvInit(src, tag int, buf []float64) *Request {
	if src != AnySource && (src < 0 || src >= c.Size()) {
		panic(fmt.Sprintf("mpi: RecvInit from invalid rank %d (size %d)", src, c.Size()))
	}
	return &Request{comm: c, send: false, peer: src, tag: tag, buf: buf}
}

// Start initiates the operation. Sends complete eagerly (the buffer is
// copied immediately); a lone receive is posted and performed
// synchronously by Wait, costing nothing when Start is followed
// immediately by Wait (the single-array redistribution pattern). Batch
// starts — StartAll or RequestSet.Startall — additionally arm receives in
// the background, so a rank can post every receive of a schedule before
// packing and sending its own data and the completion copies overlap with
// that work. Two armed receives matching the same (source, tag) race for
// arrival order — callers that pipeline steps must disambiguate with
// per-step tags.
func (r *Request) Start() { r.start(false) }

func (r *Request) start(arm bool) {
	if r.started {
		panic("mpi: Request started twice without Wait")
	}
	r.started = true
	if r.send {
		r.comm.SendFloats(r.peer, r.tag, r.buf)
		return
	}
	if arm {
		done := make(chan []float64, 1)
		r.done = done
		comm, peer, tag := r.comm, r.peer, r.tag
		go func() { done <- comm.RecvFloats(peer, tag) }()
	}
}

// Wait completes the operation started by the last Start. For receives it
// blocks until the message arrives (draining the background arming if the
// request was batch-started) and fills the bound buffer; the message
// length must not exceed the buffer length.
func (r *Request) Wait() {
	if !r.started {
		panic("mpi: Wait on request that was not started")
	}
	r.started = false
	if r.send {
		return
	}
	var got []float64
	if r.done != nil {
		got = <-r.done
		r.done = nil
	} else {
		got = r.comm.RecvFloats(r.peer, r.tag)
	}
	if len(got) > len(r.buf) {
		panic(fmt.Sprintf("mpi: persistent recv overflow: message %d into buffer %d", len(got), len(r.buf)))
	}
	copy(r.buf, got)
}

// StartAll starts every request as a batch: receives are armed in the
// background (see Request.Start).
func StartAll(reqs []*Request) {
	for _, r := range reqs {
		r.start(true)
	}
}

// WaitAll waits for every request.
func WaitAll(reqs []*Request) {
	for _, r := range reqs {
		r.Wait()
	}
}

// RequestSet is a reusable batch of persistent requests, mirroring
// MPI_Startall / MPI_Waitall over a request array. The redistribution
// engine builds one set per execution: all receives are added and started
// up front (arming them), sends proceed while the receives are in flight,
// and Waitall drains completions in the order the requests were added.
type RequestSet struct {
	reqs []*Request
}

// Add appends a request to the set and returns it for convenience.
func (s *RequestSet) Add(r *Request) *Request {
	s.reqs = append(s.reqs, r)
	return r
}

// AddRecv creates a persistent receive on c and adds it to the set.
func (s *RequestSet) AddRecv(c *Comm, src, tag int, buf []float64) *Request {
	return s.Add(c.RecvInit(src, tag, buf))
}

// AddSend creates a persistent send on c and adds it to the set.
func (s *RequestSet) AddSend(c *Comm, dst, tag int, buf []float64) *Request {
	return s.Add(c.SendInit(dst, tag, buf))
}

// Len returns the number of requests in the set.
func (s *RequestSet) Len() int { return len(s.reqs) }

// Startall starts every request in the set.
func (s *RequestSet) Startall() { StartAll(s.reqs) }

// Waitall completes every request in the set, in insertion order.
func (s *RequestSet) Waitall() { WaitAll(s.reqs) }

// Reset empties the set, retaining capacity so a set can be reused across
// repeated executions of the same schedule. Every armed receive must have
// been completed with Waitall first: dropping one in flight would leave a
// background matcher alive to steal the next execution's message, so Reset
// panics instead.
func (s *RequestSet) Reset() {
	for _, r := range s.reqs {
		if r.started && r.done != nil {
			panic("mpi: RequestSet.Reset with an armed receive still in flight; call Waitall first")
		}
	}
	s.reqs = s.reqs[:0]
}
