package trace

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/grid"
	"repro/internal/scheduler"
)

func sampleEvents() []scheduler.AllocEvent {
	t22 := grid.Topology{Rows: 2, Cols: 2}
	t23 := grid.Topology{Rows: 2, Cols: 3}
	return []scheduler.AllocEvent{
		{Time: 0, Job: "LU", Kind: "submit", Topo: t22, Busy: 0},
		{Time: 0, Job: "LU", Kind: "start", Topo: t22, Busy: 4},
		{Time: 10, Job: "LU", Kind: "expand", Topo: t23, Busy: 6},
		{Time: 30, Job: "LU", Kind: "shrink", Topo: t22, Busy: 4},
		{Time: 50, Job: "LU", Kind: "end", Topo: t22, Busy: 0},
	}
}

func TestWriteEventsCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEventsCSV(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0][0] != "time_s" || recs[2][2] != "start" || recs[3][4] != "6" {
		t.Fatalf("unexpected CSV: %v", recs)
	}
}

func TestWriteEventsJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEventsJSON(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("%d events", len(out))
	}
	if out[2]["kind"] != "expand" || out[2]["procs"] != float64(6) {
		t.Fatalf("event 2: %v", out[2])
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteSeriesCSV(&buf, "time_s", "procs", [][2]float64{{0, 4}, {10, 6}})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || lines[0] != "time_s,procs" {
		t.Fatalf("series CSV: %q", buf.String())
	}
}

func TestGanttRendersRows(t *testing.T) {
	out := Gantt(sampleEvents(), 40)
	if !strings.Contains(out, "LU") {
		t.Fatalf("missing job row: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 { // one job row + axis
		t.Fatalf("%d lines: %q", len(lines), out)
	}
	// The expansion period must render denser glyphs than the 4-proc period.
	row := lines[0]
	if !strings.ContainsRune(row, '█') {
		t.Errorf("expansion period should reach full shade: %q", row)
	}
}

func TestGanttEmpty(t *testing.T) {
	if out := Gantt(nil, 10); !strings.Contains(out, "no events") {
		t.Errorf("empty gantt: %q", out)
	}
}

func TestGanttMultipleJobs(t *testing.T) {
	t22 := grid.Topology{Rows: 2, Cols: 2}
	events := append(sampleEvents(),
		scheduler.AllocEvent{Time: 20, Job: "MM", Kind: "start", Topo: t22, Busy: 8},
		scheduler.AllocEvent{Time: 40, Job: "MM", Kind: "error", Topo: t22, Busy: 4},
	)
	out := Gantt(events, 40)
	if !strings.Contains(out, "MM") {
		t.Fatalf("missing MM row: %q", out)
	}
}
