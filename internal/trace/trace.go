// Package trace exports scheduler allocation histories as CSV, JSON and
// ASCII Gantt charts, for plotting the reproduction's counterparts of
// Figures 4 and 5.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/scheduler"
)

// WriteEventsCSV writes the allocation event log as CSV.
func WriteEventsCSV(w io.Writer, events []scheduler.AllocEvent) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "job", "kind", "topology", "procs", "busy"}); err != nil {
		return err
	}
	for _, e := range events {
		rec := []string{
			strconv.FormatFloat(e.Time, 'f', 3, 64),
			e.Job,
			e.Kind,
			e.Topo.String(),
			strconv.Itoa(e.Topo.Count()),
			strconv.Itoa(e.Busy),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonEvent is the JSON wire form of an allocation event.
type jsonEvent struct {
	Time  float64 `json:"time_s"`
	Job   string  `json:"job"`
	Kind  string  `json:"kind"`
	Topo  string  `json:"topology"`
	Procs int     `json:"procs"`
	Busy  int     `json:"busy"`
}

// WriteEventsJSON writes the allocation event log as a JSON array.
func WriteEventsJSON(w io.Writer, events []scheduler.AllocEvent) error {
	out := make([]jsonEvent, len(events))
	for i, e := range events {
		out[i] = jsonEvent{
			Time: e.Time, Job: e.Job, Kind: e.Kind,
			Topo: e.Topo.String(), Procs: e.Topo.Count(), Busy: e.Busy,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteSeriesCSV writes (x, y) step points as CSV with a labelled header.
func WriteSeriesCSV(w io.Writer, xLabel, yLabel string, series [][2]float64) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{xLabel, yLabel}); err != nil {
		return err
	}
	for _, pt := range series {
		if err := cw.Write([]string{
			strconv.FormatFloat(pt[0], 'f', 3, 64),
			strconv.FormatFloat(pt[1], 'f', 3, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// gantt shade levels from idle to fully allocated.
var shades = []rune{' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'}

// Gantt renders the allocation history as an ASCII chart: one row per job,
// column = time bucket, glyph intensity = processors held (relative to the
// maximum any job holds). Deterministic and dependency-free, for terminal
// inspection of Figure 4(a)/5(a)-style histories.
func Gantt(events []scheduler.AllocEvent, width int) string {
	if width <= 0 {
		width = 72
	}
	end := 0.0
	jobSet := map[string]bool{}
	var jobOrder []string
	for _, e := range events {
		if e.Time > end {
			end = e.Time
		}
		if !jobSet[e.Job] {
			jobSet[e.Job] = true
			jobOrder = append(jobOrder, e.Job)
		}
	}
	if end == 0 || len(jobOrder) == 0 {
		return "(no events)\n"
	}

	// Build per-job step functions of processor count.
	type step struct {
		t     float64
		procs int
	}
	perJob := map[string][]step{}
	maxProcs := 1
	for _, e := range events {
		var p int
		switch e.Kind {
		case "start", "expand", "shrink":
			p = e.Topo.Count()
		case "end", "error":
			p = 0
		default:
			continue // submit: not yet allocated
		}
		perJob[e.Job] = append(perJob[e.Job], step{e.Time, p})
		if p > maxProcs {
			maxProcs = p
		}
	}

	var b strings.Builder
	nameW := 0
	for _, name := range jobOrder {
		if len(name) > nameW {
			nameW = len(name)
		}
	}
	for _, name := range jobOrder {
		steps := perJob[name]
		sort.SliceStable(steps, func(i, j int) bool { return steps[i].t < steps[j].t })
		fmt.Fprintf(&b, "%-*s |", nameW, name)
		for col := 0; col < width; col++ {
			t := end * (float64(col) + 0.5) / float64(width)
			procs := 0
			for _, s := range steps {
				if s.t <= t {
					procs = s.procs
				}
			}
			idx := 0
			if procs > 0 {
				idx = 1 + procs*(len(shades)-2)/maxProcs
				if idx >= len(shades) {
					idx = len(shades) - 1
				}
			}
			b.WriteRune(shades[idx])
		}
		b.WriteString("|\n")
	}
	fmt.Fprintf(&b, "%-*s  0%*s%.0fs\n", nameW, "", width-4, "t=", end)
	return b.String()
}
