package integration

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/resize"
	"repro/internal/scheduler"
)

// crashingWorker fails after two iterations, exercising the System
// Monitor's job-error recovery path end to end. All ranks fail together —
// just as an MPI job aborts as a whole when one process dies.
func crashingWorker(s *resize.Session) error {
	for s.Iter() < 10 {
		if s.Iter() == 2 {
			return fmt.Errorf("injected fault at iteration %d on rank %d", s.Iter(), s.Comm().Rank())
		}
		st, err := s.Resize(0.001)
		if err != nil {
			return err
		}
		if st == resize.Retired {
			return nil
		}
	}
	return s.Done()
}

func TestJobErrorRecoversProcessorsAndStartsQueue(t *testing.T) {
	var srv *scheduler.Server
	srv = scheduler.NewServer(4, false, func(j *scheduler.Job) {
		switch j.Spec.Name {
		case "crasher":
			world := mpi.NewWorld()
			err := world.Run(j.Topo.Count(), func(c *mpi.Comm) error {
				sess, err := resize.NewSession(srv, j.ID, c, j.Topo, crashingWorker)
				if err != nil {
					return err
				}
				return crashingWorker(sess)
			})
			if err == nil {
				t.Error("crasher should have failed")
			}
			// The per-node application monitor reports the failure.
			if err := srv.JobError(context.Background(), j.ID); err != nil {
				t.Errorf("job error: %v", err)
			}
		case "queued":
			cfg := apps.Config{App: "fft", N: 8, NB: 2, Iterations: 2}
			if err := apps.Launch(srv, j.ID, j.Topo, cfg); err != nil {
				t.Errorf("queued job: %v", err)
				_ = srv.JobError(context.Background(), j.ID)
			}
		}
	})

	crasher, err := srv.Submit(context.Background(), scheduler.JobSpec{
		Name: "crasher", App: "custom", Iterations: 10,
		InitialTopo: grid.Topology{Rows: 2, Cols: 2},
		Chain:       []grid.Topology{{Rows: 2, Cols: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := srv.Submit(context.Background(), scheduler.JobSpec{
		Name: "queued", App: "fft", ProblemSize: 8, Iterations: 2,
		InitialTopo: grid.Row1D(2),
		Chain:       []grid.Topology{grid.Row1D(2)},
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Wait(ctx, crasher); err != nil {
		t.Fatalf("jobs did not finish after failure injection: %v", err)
	}
	if err := srv.Wait(ctx, queued); err != nil {
		t.Fatalf("jobs did not finish after failure injection: %v", err)
	}

	cj, _ := srv.Core().Job(crasher)
	if cj.State != scheduler.Done {
		t.Errorf("crasher state %v", cj.State)
	}
	qj, _ := srv.Core().Job(queued)
	if qj.State != scheduler.Done {
		t.Errorf("queued job state %v", qj.State)
	}
	if srv.Core().Free() != 4 {
		t.Errorf("free = %d, want full pool back", srv.Core().Free())
	}
	// The trace must contain the error event.
	sawError := false
	for _, e := range srv.Core().Events {
		if e.Kind == "error" && e.Job == "crasher" {
			sawError = true
		}
	}
	if !sawError {
		t.Error("error event missing from trace")
	}
}

func TestCGAppUnderRealScheduler(t *testing.T) {
	cfgs := map[string]apps.Config{
		"cg": {App: "cg", N: 12, NB: 2, Iterations: 5, Sweeps: 3},
	}
	srv, errs := startServer(t, 6, cfgs)
	job, err := srv.Submit(context.Background(), scheduler.JobSpec{
		Name: "cg", App: "cg", ProblemSize: 12, Iterations: 5,
		InitialTopo: grid.Topology{Rows: 1, Cols: 2},
		Chain:       grid.GrowthChain(grid.Topology{Rows: 1, Cols: 2}, 12, 6),
	})
	if err != nil {
		t.Fatal(err)
	}
	waitAll(t, srv, []int{job})
	checkErrs(t, errs)
	j, _ := srv.Core().Job(job)
	if j.State != scheduler.Done {
		t.Fatalf("state %v", j.State)
	}
}
