package integration

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/durability"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/reshape"
	"repro/internal/resize"
	"repro/internal/rpc"
	"repro/internal/scheduler"
)

// crashingWorker fails after two iterations, exercising the System
// Monitor's job-error recovery path end to end. All ranks fail together —
// just as an MPI job aborts as a whole when one process dies.
func crashingWorker(s *resize.Session) error {
	for s.Iter() < 10 {
		if s.Iter() == 2 {
			return fmt.Errorf("injected fault at iteration %d on rank %d", s.Iter(), s.Comm().Rank())
		}
		st, err := s.Resize(0.001)
		if err != nil {
			return err
		}
		if st == resize.Retired {
			return nil
		}
	}
	return s.Done()
}

func TestJobErrorRecoversProcessorsAndStartsQueue(t *testing.T) {
	var srv *scheduler.Server
	srv = scheduler.NewServer(4, false, func(j *scheduler.Job) {
		switch j.Spec.Name {
		case "crasher":
			world := mpi.NewWorld()
			err := world.Run(j.Topo.Count(), func(c *mpi.Comm) error {
				sess, err := resize.NewSession(srv, j.ID, c, j.Topo, crashingWorker)
				if err != nil {
					return err
				}
				return crashingWorker(sess)
			})
			if err == nil {
				t.Error("crasher should have failed")
			}
			// The per-node application monitor reports the failure.
			if err := srv.JobError(context.Background(), j.ID); err != nil {
				t.Errorf("job error: %v", err)
			}
		case "queued":
			cfg := apps.Config{App: "fft", N: 8, NB: 2, Iterations: 2}
			if err := apps.Launch(srv, j.ID, j.Topo, cfg); err != nil {
				t.Errorf("queued job: %v", err)
				_ = srv.JobError(context.Background(), j.ID)
			}
		}
	})

	crasher, err := srv.Submit(context.Background(), scheduler.JobSpec{
		Name: "crasher", App: "custom", Iterations: 10,
		InitialTopo: grid.Topology{Rows: 2, Cols: 2},
		Chain:       []grid.Topology{{Rows: 2, Cols: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := srv.Submit(context.Background(), scheduler.JobSpec{
		Name: "queued", App: "fft", ProblemSize: 8, Iterations: 2,
		InitialTopo: grid.Row1D(2),
		Chain:       []grid.Topology{grid.Row1D(2)},
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Wait(ctx, crasher); err != nil {
		t.Fatalf("jobs did not finish after failure injection: %v", err)
	}
	if err := srv.Wait(ctx, queued); err != nil {
		t.Fatalf("jobs did not finish after failure injection: %v", err)
	}

	cj, _ := srv.Core().Job(crasher)
	if cj.State != scheduler.Done {
		t.Errorf("crasher state %v", cj.State)
	}
	qj, _ := srv.Core().Job(queued)
	if qj.State != scheduler.Done {
		t.Errorf("queued job state %v", qj.State)
	}
	if srv.Core().Free() != 4 {
		t.Errorf("free = %d, want full pool back", srv.Core().Free())
	}
	// The trace must contain the error event.
	sawError := false
	for _, e := range srv.Core().Events {
		if e.Kind == "error" && e.Job == "crasher" {
			sawError = true
		}
	}
	if !sawError {
		t.Error("error event missing from trace")
	}
}

func TestCGAppUnderRealScheduler(t *testing.T) {
	cfgs := map[string]apps.Config{
		"cg": {App: "cg", N: 12, NB: 2, Iterations: 5, Sweeps: 3},
	}
	srv, errs := startServer(t, 6, cfgs)
	job, err := srv.Submit(context.Background(), scheduler.JobSpec{
		Name: "cg", App: "cg", ProblemSize: 12, Iterations: 5,
		InitialTopo: grid.Topology{Rows: 1, Cols: 2},
		Chain:       grid.GrowthChain(grid.Topology{Rows: 1, Cols: 2}, 12, 6),
	})
	if err != nil {
		t.Fatal(err)
	}
	waitAll(t, srv, []int{job})
	checkErrs(t, errs)
	j, _ := srv.Core().Job(job)
	if j.State != scheduler.Done {
		t.Fatalf("state %v", j.State)
	}
}

// TestSchedulerRestartRecoversOverRPC kills the whole control plane — the
// rpc listener and the scheduler behind it — and boots a replacement from
// the WAL on the same address. The externally driven "application" (this
// test) survives the outage, as real jobs survive a reshaped restart: its
// reshape.Client retries its resize-point contact until the daemon is
// back, the auto-reconnect layer redials, and the job runs to completion
// against the recovered scheduler. The watch stream resubscribes on its
// own and continues with gap-free ascending sequence numbers.
func TestSchedulerRestartRecoversOverRPC(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	dir := t.TempDir()
	topoA := grid.Topology{Rows: 2, Cols: 2}

	// Boot 1: durable scheduler, externally driven jobs (nil starter).
	core := scheduler.NewCore(4, false)
	var srv *scheduler.Server
	st, rec, err := durability.Open(dir, durability.Options{
		Sync: durability.SyncAlways,
		Capture: func() (*scheduler.CoreState, uint64) {
			return core.PersistState(), srv.Seq()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != nil || len(rec.Ops) > 0 {
		t.Fatal("fresh WAL directory was not empty")
	}
	core.SetJournal(st.Append)
	srv = scheduler.NewServerCore(core, nil)
	rpcSrv, err := rpc.Serve("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	addr := rpcSrv.Addr()

	cli, err := reshape.Dial(addr, reshape.WithDialTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	sub, err := cli.Watch(ctx, scheduler.AllJobs)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()
	// Watch subscribes asynchronously; wait until the server has it
	// registered so the submit events below are guaranteed to stream.
	for rpcSrv.Stats().Watches == 0 {
		if ctx.Err() != nil {
			t.Fatal("watch never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}

	idA, err := cli.Submit(ctx, scheduler.JobSpec{
		Name: "runner", App: "custom", Iterations: 10,
		InitialTopo: topoA, Chain: []grid.Topology{topoA},
	})
	if err != nil {
		t.Fatal(err)
	}
	idB, err := cli.Submit(ctx, scheduler.JobSpec{
		Name: "waiter", App: "custom", Iterations: 1,
		InitialTopo: grid.Row1D(2), Chain: []grid.Topology{grid.Row1D(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Contact(ctx, idA, topoA, 1.5, 0); err != nil {
		t.Fatalf("pre-crash contact: %v", err)
	}

	// Drain the pre-crash stream: submit A, start A, submit B.
	var lastSeq uint64
	for i := 0; i < 3; i++ {
		select {
		case e := <-sub.C:
			if e.Seq <= lastSeq {
				t.Fatalf("pre-crash seq regressed: %d after %d", e.Seq, lastSeq)
			}
			lastSeq = e.Seq
		case <-ctx.Done():
			t.Fatal("timed out waiting for pre-crash events")
		}
	}

	// Kill the daemon. SyncAlways means everything acknowledged is on disk;
	// nothing else is flushed on the way down.
	rpcSrv.Close()
	st.Close()

	// The surviving application retries its resize-point contact through
	// the outage, exactly like a worker that found the daemon gone.
	contactOK := make(chan scheduler.Decision, 1)
	go func() {
		for ctx.Err() == nil {
			cctx, ccancel := context.WithTimeout(ctx, 2*time.Second)
			d, err := cli.Contact(cctx, idA, topoA, 1.5, 0)
			ccancel()
			if err == nil {
				contactOK <- d
				return
			}
			time.Sleep(25 * time.Millisecond)
		}
	}()

	// Boot 2: recover from the WAL onto the same address.
	time.Sleep(100 * time.Millisecond) // let the retry loop fail at least once
	st2, rec2, err := durability.Open(dir, durability.Options{Sync: durability.SyncAlways})
	if err != nil {
		t.Fatalf("reopen WAL: %v", err)
	}
	defer st2.Close()
	core2, info, err := rec2.Restore(func(cs *scheduler.CoreState) (*scheduler.Core, error) {
		if cs == nil {
			return scheduler.NewCore(4, false), nil
		}
		return scheduler.NewCoreFromState(cs)
	})
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if info.Jobs != 2 {
		t.Fatalf("recovered %d jobs, want 2", info.Jobs)
	}
	if jA, _ := core2.Job(idA); jA.State != scheduler.Running || jA.Topo != topoA {
		t.Fatalf("job A not recovered running on %v: %+v", topoA, jA)
	}
	if jB, _ := core2.Job(idB); jB.State != scheduler.Queued {
		t.Fatalf("job B not recovered queued: %+v", jB)
	}
	core2.SetJournal(st2.Append)
	srv2 := scheduler.NewServerRecovered(core2, info.Seq, info.Clock, nil)
	// Externally driven jobs reconnect on their own: no RelaunchRunning.
	var rpcSrv2 *rpc.Server
	for deadline := time.Now().Add(5 * time.Second); ; {
		rpcSrv2, err = rpc.Serve(addr, srv2)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	defer rpcSrv2.Close()

	// The worker's retried contact lands on the recovered scheduler.
	select {
	case <-contactOK:
	case <-ctx.Done():
		t.Fatal("contact never succeeded after restart")
	}

	// Wait for the watch stream to resubscribe before driving transitions,
	// so continuity is checked deterministically.
	for rpcSrv2.Stats().Watches == 0 {
		if ctx.Err() != nil {
			t.Fatal("watch never resubscribed after restart")
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Finish A; the recovered queue starts B; finish B.
	if err := cli.JobEnd(ctx, idA); err != nil {
		t.Fatalf("job end A: %v", err)
	}
	if err := cli.Wait(ctx, idA); err != nil {
		t.Fatal(err)
	}
	if err := cli.JobEnd(ctx, idB); err != nil {
		t.Fatalf("job end B: %v", err)
	}
	if err := cli.Wait(ctx, idB); err != nil {
		t.Fatal(err)
	}

	// Post-restart events continue the sequence: end A, start B, end B,
	// each with a seq strictly above the pre-crash high-water mark.
	kinds := map[string]bool{}
	for len(kinds) < 3 {
		select {
		case e := <-sub.C:
			if e.Seq <= lastSeq {
				t.Fatalf("seq regressed across restart: %d after %d", e.Seq, lastSeq)
			}
			lastSeq = e.Seq
			kinds[e.Kind+"/"+e.Job] = true
		case <-ctx.Done():
			t.Fatalf("timed out waiting for post-restart events; saw %v", kinds)
		}
	}
	for _, want := range []string{"end/runner", "start/waiter", "end/waiter"} {
		if !kinds[want] {
			t.Fatalf("missing post-restart event %s (saw %v)", want, kinds)
		}
	}

	status, err := cli.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if status.Free != 4 || status.QueueLen != 0 {
		t.Fatalf("recovered cluster did not drain: %+v", status)
	}
}
