// Package integration runs full-system tests: the real scheduler Server,
// real applications on goroutine ranks, real spawn-based expansion, real
// shrink-based retirement and real data redistribution — the entire ReSHAPE
// stack end to end at miniature scale.
package integration

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/grid"
	"repro/internal/scheduler"
)

func topo(r, c int) grid.Topology { return grid.Topology{Rows: r, Cols: c} }

// startServer builds a Server whose JobStarter launches real applications.
// cfgs maps job names to app configs.
func startServer(t *testing.T, total int, cfgs map[string]apps.Config) (*scheduler.Server, *sync.Map) {
	t.Helper()
	var errs sync.Map
	var srv *scheduler.Server
	srv = scheduler.NewServer(total, true, func(j *scheduler.Job) {
		cfg, ok := cfgs[j.Spec.Name]
		if !ok {
			errs.Store(j.Spec.Name, fmt.Errorf("no config for %q", j.Spec.Name))
			return
		}
		if err := apps.Launch(srv, j.ID, j.Topo, cfg); err != nil {
			errs.Store(j.Spec.Name, err)
			// Make sure the scheduler does not wait forever on a crashed job.
			_ = srv.JobEnd(context.Background(), j.ID)
		}
	})
	return srv, &errs
}

func waitAll(t *testing.T, srv *scheduler.Server, jobs []int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, id := range jobs {
		if err := srv.Wait(ctx, id); err != nil {
			t.Fatalf("jobs did not complete in time: %v", err)
		}
	}
}

func checkErrs(t *testing.T, errs *sync.Map) {
	t.Helper()
	errs.Range(func(k, v any) bool {
		t.Errorf("job %v failed: %v", k, v)
		return true
	})
}

func TestSoloLUJobExpandsOnIdleCluster(t *testing.T) {
	n := 12
	cfgs := map[string]apps.Config{
		"lu": {App: "lu", N: n, NB: 2, Iterations: 6},
	}
	srv, errs := startServer(t, 6, cfgs)
	job, err := srv.Submit(context.Background(), scheduler.JobSpec{
		Name: "lu", App: "lu", ProblemSize: n, Iterations: 6,
		InitialTopo: topo(1, 2),
		Chain:       grid.GrowthChain(topo(1, 2), n, 6),
	})
	if err != nil {
		t.Fatal(err)
	}
	waitAll(t, srv, []int{job})
	checkErrs(t, errs)

	core := srv.Core()
	if core.Free() != 6 {
		t.Errorf("free = %d after completion", core.Free())
	}
	j, _ := core.Job(job)
	if j.State != scheduler.Done {
		t.Errorf("job state %v", j.State)
	}
	// On an idle cluster the job must have probed at least one expansion.
	expanded := false
	for _, e := range core.Events {
		if e.Kind == "expand" {
			expanded = true
		}
	}
	if !expanded {
		t.Error("job never expanded despite idle processors")
	}
	// The profiler must hold iteration records for every visited config.
	if len(j.Profile.Visits) == 0 {
		t.Error("profiler recorded nothing")
	}
}

func TestTwoJobsShareClusterWithShrink(t *testing.T) {
	cfgs := map[string]apps.Config{
		"first":  {App: "jacobi", N: 12, NB: 2, Iterations: 8, Sweeps: 2},
		"second": {App: "fft", N: 8, NB: 2, Iterations: 3},
	}
	srv, errs := startServer(t, 6, cfgs)
	first, err := srv.Submit(context.Background(), scheduler.JobSpec{
		Name: "first", App: "jacobi", ProblemSize: 12, Iterations: 8,
		InitialTopo: grid.Row1D(2),
		Chain:       []grid.Topology{grid.Row1D(2), grid.Row1D(4), grid.Row1D(6)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Give the first job a head start so it can expand.
	time.Sleep(50 * time.Millisecond)
	second, err := srv.Submit(context.Background(), scheduler.JobSpec{
		Name: "second", App: "fft", ProblemSize: 8, Iterations: 3,
		InitialTopo: grid.Row1D(2),
		Chain:       []grid.Topology{grid.Row1D(2), grid.Row1D(4)},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitAll(t, srv, []int{first, second})
	checkErrs(t, errs)
	if srv.Core().Free() != 6 {
		t.Errorf("free = %d after completion", srv.Core().Free())
	}
	for _, j := range srv.Core().Jobs() {
		if j.State != scheduler.Done {
			t.Errorf("job %s state %v", j.Spec.Name, j.State)
		}
	}
}

func TestFiveAppWorkloadMiniature(t *testing.T) {
	// The paper's five applications sharing one small cluster, all real.
	cfgs := map[string]apps.Config{
		"LU":     {App: "lu", N: 12, NB: 2, Iterations: 3},
		"MM":     {App: "mm", N: 8, NB: 2, Iterations: 3},
		"MW":     {App: "mw", Iterations: 3, MWUnits: 40, MWChunk: 5, MWUnitWork: 50},
		"Jacobi": {App: "jacobi", N: 12, NB: 2, Iterations: 3, Sweeps: 2},
		"FFT":    {App: "fft", N: 8, NB: 2, Iterations: 3},
	}
	srv, errs := startServer(t, 10, cfgs)
	var jobs []int
	submit := func(name, app string, n int, initial grid.Topology, chain []grid.Topology) {
		j, err := srv.Submit(context.Background(), scheduler.JobSpec{
			Name: name, App: app, ProblemSize: n, Iterations: 3,
			InitialTopo: initial, Chain: chain,
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	submit("LU", "lu", 12, topo(1, 2), grid.GrowthChain(topo(1, 2), 12, 6))
	submit("MM", "mm", 8, topo(2, 2), grid.GrowthChain(topo(2, 2), 8, 8))
	submit("MW", "mw", 0, grid.Row1D(2), []grid.Topology{grid.Row1D(2), grid.Row1D(3), grid.Row1D(4)})
	submit("Jacobi", "jacobi", 12, grid.Row1D(2), []grid.Topology{grid.Row1D(2), grid.Row1D(3), grid.Row1D(4)})
	submit("FFT", "fft", 8, grid.Row1D(2), []grid.Topology{grid.Row1D(2), grid.Row1D(4)})
	waitAll(t, srv, jobs)
	checkErrs(t, errs)
	if srv.Core().Free() != 10 {
		t.Errorf("free = %d after all jobs", srv.Core().Free())
	}
}

func TestQueuedJobEventuallyRuns(t *testing.T) {
	cfgs := map[string]apps.Config{
		"big":    {App: "lu", N: 8, NB: 2, Iterations: 4},
		"queued": {App: "fft", N: 8, NB: 2, Iterations: 2},
	}
	srv, errs := startServer(t, 4, cfgs)
	big, err := srv.Submit(context.Background(), scheduler.JobSpec{
		Name: "big", App: "lu", ProblemSize: 8, Iterations: 4,
		InitialTopo: topo(2, 2),
		Chain:       []grid.Topology{topo(2, 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := srv.Submit(context.Background(), scheduler.JobSpec{
		Name: "queued", App: "fft", ProblemSize: 8, Iterations: 2,
		InitialTopo: grid.Row1D(2),
		Chain:       []grid.Topology{grid.Row1D(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	j, _ := srv.Core().Job(queued)
	_ = j
	waitAll(t, srv, []int{big, queued})
	checkErrs(t, errs)
	qj, _ := srv.Core().Job(queued)
	bj, _ := srv.Core().Job(big)
	if qj.StartTime < bj.SubmitTime {
		t.Error("queued job started before big job submitted")
	}
	if qj.State != scheduler.Done {
		t.Errorf("queued job state %v", qj.State)
	}
}
