package simcluster_test

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/durability"
	"repro/internal/perfmodel"
	"repro/internal/scheduler"
	"repro/internal/scheduler/fairshare"
	"repro/internal/simcluster"
	"repro/internal/workload"
)

// TestCrashRestartFairsharePerTenant kills a fair-share scheduler mid-run
// on a three-tenant mix and recovers it from its WAL: tenant tags ride the
// journaled specs, so the recovered arbiter must reproduce the identical
// per-tenant allocation history — same per-job schedule, same allocation
// trace, same per-tenant queue-wait metrics — as an uninterrupted run.
func TestCrashRestartFairsharePerTenant(t *testing.T) {
	params := perfmodel.SystemX()
	mix, err := workload.Generate(workload.GenConfig{
		Seed: 5, MaxProcs: workload.ClusterProcs,
		Tenants: []workload.TenantSpec{
			{Name: "a", Jobs: 8, MeanInterarrival: 120, Pattern: workload.Bursty, Burst: 4},
			{Name: "b", Jobs: 6, MeanInterarrival: 200},
			{Name: "c", Jobs: 6, MeanInterarrival: 200, Pattern: workload.Diurnal, Period: 3600},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The arbiter is configuration, not journaled state: both the original
	// and the recovered core install the same fair-share arbitration, as
	// reshaped's -arbiter flag does across restarts.
	arb := func() scheduler.Arbiter {
		fs := fairshare.New(map[string]float64{"a": 1, "b": 2, "c": 2})
		fs.Inner.Predict = simcluster.Predictor(params, mix)
		return fs
	}

	baseCore := scheduler.NewCore(workload.ClusterProcs, true)
	baseCore.SetArbiter(arb())
	baseline, err := simcluster.New(workload.ClusterProcs, simcluster.Dynamic, params, mix).
		WithCore(baseCore).Run()
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name          string
		snapshotEvery uint64
	}{
		// Genesis replay regenerates the full allocation trace; the
		// snapshot variant additionally exercises tenant tags through the
		// RSHSNAP3 snapshot codec.
		{"replay-only", 0},
		{"with-snapshots", 25},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			core := scheduler.NewCore(workload.ClusterProcs, true)
			core.SetArbiter(arb())
			st, _, err := durability.Open(dir, durability.Options{
				Sync:          durability.SyncAlways,
				SnapshotEvery: tc.snapshotEvery,
				Capture:       func() (*scheduler.CoreState, uint64) { return core.PersistState(), 0 },
			})
			if err != nil {
				t.Fatal(err)
			}
			core.SetJournal(st.Append)

			restarted := false
			res, err := simcluster.New(workload.ClusterProcs, simcluster.Dynamic, params, mix).
				WithCore(core).
				WithCrashRestart(600, func(old scheduler.Interface) (scheduler.Interface, error) {
					_ = st.Close()
					var recovered *scheduler.Core
					st2, rec, err := durability.Open(dir, durability.Options{
						Sync:          durability.SyncAlways,
						SnapshotEvery: tc.snapshotEvery,
						Capture:       func() (*scheduler.CoreState, uint64) { return recovered.PersistState(), 0 },
					})
					if err != nil {
						return nil, err
					}
					recovered, info, err := rec.Restore(func(cs *scheduler.CoreState) (*scheduler.Core, error) {
						var c *scheduler.Core
						if cs == nil {
							c = scheduler.NewCore(workload.ClusterProcs, true)
						} else {
							var err error
							if c, err = scheduler.NewCoreFromState(cs); err != nil {
								return nil, err
							}
						}
						c.SetArbiter(arb())
						return c, nil
					})
					if err != nil {
						return nil, err
					}
					if !info.Recovered {
						return nil, errors.New("nothing recovered from a mid-run WAL")
					}
					recovered.SetJournal(st2.Append)
					st = st2
					restarted = true
					return recovered, nil
				}).
				Run()
			if err != nil {
				t.Fatal(err)
			}
			st.Close()
			if !restarted {
				t.Fatal("crash point never fired")
			}

			if len(res.Jobs) != len(baseline.Jobs) {
				t.Fatalf("job count diverged: %d vs baseline %d", len(res.Jobs), len(baseline.Jobs))
			}
			for i, j := range res.Jobs {
				bj := baseline.Jobs[i]
				if j.Name != bj.Name || j.Tenant != bj.Tenant || j.Start != bj.Start || j.End != bj.End {
					t.Errorf("job %q (tenant %q) diverged: start %.3f/%.3f end %.3f/%.3f",
						j.Name, j.Tenant, j.Start, bj.Start, j.End, bj.End)
				}
			}
			if tc.snapshotEvery == 0 {
				// Genesis replay regenerates the full allocation trace.
				if !reflect.DeepEqual(res.Events, baseline.Events) {
					t.Fatalf("allocation trace diverged: %d events vs %d", len(res.Events), len(baseline.Events))
				}
			}
			for _, tenant := range baseline.Tenants() {
				if res.TenantMeanQueueWait(tenant) != baseline.TenantMeanQueueWait(tenant) ||
					res.TenantQueueWaitP99(tenant) != baseline.TenantQueueWaitP99(tenant) {
					t.Errorf("tenant %q per-tenant waits diverged after recovery", tenant)
				}
			}
		})
	}
}
