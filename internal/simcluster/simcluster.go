package simcluster

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/grid"
	"repro/internal/perfmodel"
	"repro/internal/scheduler"
)

// Mode selects the scheduling strategy.
type Mode int

const (
	// Static keeps every job at its initial allocation (conventional
	// scheduler).
	Static Mode = iota
	// Dynamic is ReSHAPE with the message-passing redistribution.
	Dynamic
	// DynamicCheckpoint is dynamic resizing paying the file-based
	// checkpoint/restart cost at every resize.
	DynamicCheckpoint
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Static:
		return "static"
	case Dynamic:
		return "reshape"
	case DynamicCheckpoint:
		return "checkpoint"
	default:
		return "unknown"
	}
}

// JobInput couples a scheduler job spec with its performance model and
// arrival time.
type JobInput struct {
	Spec    scheduler.JobSpec
	Model   perfmodel.AppModel
	Arrival float64
}

// IterRecord is one completed iteration in the simulation, mirroring the
// rows of Figure 3(a).
type IterRecord struct {
	Iter      int
	Procs     int
	Topo      string
	IterTime  float64
	RedistSec float64 // cost paid after this iteration's resize point
}

// JobResult summarizes one job.
type JobResult struct {
	Name        string
	App         string
	Tenant      string // submitting principal ("" = default tenant)
	InitialProc int
	Submit      float64
	Start       float64
	End         float64
	Iters       []IterRecord
	TotalRedist float64
}

// Turnaround is completion time minus submission time.
func (j JobResult) Turnaround() float64 { return j.End - j.Submit }

// QueueWait is start time minus submission time: how long the job sat in
// the wait queue before receiving processors.
func (j JobResult) QueueWait() float64 { return j.Start - j.Submit }

// ComputeTime is the sum of iteration times (excluding redistribution).
func (j JobResult) ComputeTime() float64 {
	s := 0.0
	for _, r := range j.Iters {
		s += r.IterTime
	}
	return s
}

// Result is a full simulation outcome.
type Result struct {
	Mode        Mode
	Total       int
	Jobs        []JobResult
	Events      []scheduler.AllocEvent
	Makespan    float64
	Utilization float64 // fraction of available cpu-seconds assigned to jobs
}

// MeanQueueWait averages start-minus-submit over all jobs — the headline
// metric of the FCFS-vs-arbiter comparison.
func (r *Result) MeanQueueWait() float64 {
	if len(r.Jobs) == 0 {
		return 0
	}
	s := 0.0
	for _, j := range r.Jobs {
		s += j.QueueWait()
	}
	return s / float64(len(r.Jobs))
}

// QueueWaitP99 is the 99th-percentile queue wait (nearest-rank over all
// jobs, 0 for an empty result) — the rebalancer's tail-latency gate: a
// cluster-wide optimizer must not buy mean improvements by starving the
// unlucky tail.
func (r *Result) QueueWaitP99() float64 {
	return r.QueueWaitPercentile(0.99)
}

// QueueWaitPercentile is the nearest-rank q-th percentile (0 < q <= 1) of
// queue waits across all jobs.
func (r *Result) QueueWaitPercentile(q float64) float64 {
	if len(r.Jobs) == 0 {
		return 0
	}
	waits := make([]float64, len(r.Jobs))
	for i, j := range r.Jobs {
		waits[i] = j.QueueWait()
	}
	sort.Float64s(waits)
	rank := int(math.Ceil(q * float64(len(waits))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(waits) {
		rank = len(waits)
	}
	return waits[rank-1]
}

// Tenants lists the distinct tenants appearing in the result, sorted by
// name, so callers can iterate per-tenant metrics deterministically.
func (r *Result) Tenants() []string {
	seen := make(map[string]bool)
	var out []string
	for _, j := range r.Jobs {
		if !seen[j.Tenant] {
			seen[j.Tenant] = true
			out = append(out, j.Tenant)
		}
	}
	sort.Strings(out)
	return out
}

// tenantWaits collects the queue waits of one tenant's jobs, sorted
// ascending.
func (r *Result) tenantWaits(tenant string) []float64 {
	var waits []float64
	for _, j := range r.Jobs {
		if j.Tenant == tenant {
			waits = append(waits, j.QueueWait())
		}
	}
	sort.Float64s(waits)
	return waits
}

// TenantMeanQueueWait averages start-minus-submit over one tenant's jobs
// (0 if the tenant submitted none) — the fairness experiments' per-victim
// view of MeanQueueWait.
func (r *Result) TenantMeanQueueWait(tenant string) float64 {
	waits := r.tenantWaits(tenant)
	if len(waits) == 0 {
		return 0
	}
	s := 0.0
	for _, w := range waits {
		s += w
	}
	return s / float64(len(waits))
}

// TenantQueueWaitP99 is the nearest-rank 99th-percentile queue wait of one
// tenant's jobs (0 if the tenant submitted none) — the noisy-neighbor
// gate's victim metric.
func (r *Result) TenantQueueWaitP99(tenant string) float64 {
	waits := r.tenantWaits(tenant)
	if len(waits) == 0 {
		return 0
	}
	rank := int(math.Ceil(0.99 * float64(len(waits))))
	if rank < 1 {
		rank = 1
	}
	return waits[rank-1]
}

// MeanTurnaround averages completion-minus-submit over all jobs.
func (r *Result) MeanTurnaround() float64 {
	if len(r.Jobs) == 0 {
		return 0
	}
	s := 0.0
	for _, j := range r.Jobs {
		s += j.Turnaround()
	}
	return s / float64(len(r.Jobs))
}

// Sim runs one simulation. Virtual time is driven by the scheduler's own
// event engine (scheduler.Engine): arrivals, resize points and resize
// completions are all timestamped events in one deterministic loop.
type Sim struct {
	total   int
	mode    Mode
	params  *perfmodel.Params
	core    scheduler.Interface
	policy  scheduler.Policy
	arbiter scheduler.Arbiter
	eng     *scheduler.Engine

	inputs  []JobInput
	states  []*jobState // job id -> state (ids are dense: assigned 0,1,2,... at submit)
	pending []JobInput  // not yet submitted
	crashes []crashPlan

	rebalanceEvery float64
	finished       int  // completed jobs; gates rebalance-tick rescheduling
	noIters        bool // skip per-iteration IterRecord building (WithoutIterRecords)
}

type jobState struct {
	input     JobInput
	id        int
	itersDone int
	lastIter  float64 // duration of the iteration in flight / just completed
	lastRed   float64
	result    *JobResult
	// job caches the scheduler's object for id, avoiding a map lookup per
	// event; jobCore remembers which core it came from so the cache is
	// refreshed after a crash/restart swaps the core (the old core's Job
	// pointers are dead state).
	job     *scheduler.Job
	jobCore scheduler.Interface
}

// New prepares a simulation over a cluster with total processors. The
// default scheduler core is built lazily at Run (WithCore replaces it).
func New(total int, mode Mode, params *perfmodel.Params, jobs []JobInput) *Sim {
	return &Sim{
		total:  total,
		mode:   mode,
		params: params,
		eng:    scheduler.NewEngine(),
		inputs: jobs,
	}
}

// WithoutIterRecords drops the per-iteration IterRecord rows from JobResult
// (JobResult.Iters stays empty; ComputeTime then reads 0). The records are
// pure output — building them never feeds back into scheduling — so the
// schedule is unchanged; million-job throughput runs use this the way
// DisableTrace drops the core's allocation trace.
func (s *Sim) WithoutIterRecords() *Sim {
	s.noIters = true
	return s
}

// state returns the tracked state for a job id, or nil before its arrival.
func (s *Sim) state(id int) *jobState {
	if id < 0 || id >= len(s.states) {
		return nil
	}
	return s.states[id]
}

// job resolves the scheduler's object for a tracked job through the
// per-state cache.
func (s *Sim) job(js *jobState) *scheduler.Job {
	if js.job == nil || js.jobCore != s.core {
		j, _ := s.core.Job(js.id)
		js.job, js.jobCore = j, s.core
	}
	return js.job
}

// WithPolicy overrides the Remap Scheduler policy for this simulation (used
// by the policy ablation experiments); the default is the paper's policy.
// The override is applied to the core at Run, whichever of WithPolicy and
// WithCore is called first. An arbiter installed via WithArbiter replaces
// the core's policy path entirely — combine a custom policy with
// arbiter.BenefitRanked through its Policy field, not this option.
func (s *Sim) WithPolicy(p scheduler.Policy) *Sim {
	s.policy = p
	return s
}

// WithArbiter installs a cluster-wide resize arbiter on the simulation's
// core at Run (e.g. arbiter.BenefitRanked); the default is the single-job
// policy path, which reproduces the published FCFS Contact behavior. With
// an arbiter installed, WithPolicy has no effect (see WithPolicy).
func (s *Sim) WithArbiter(a scheduler.Arbiter) *Sim {
	s.arbiter = a
	return s
}

// WithRebalance schedules a global-rebalancer planning tick every
// `every` seconds of virtual time, starting at t=every: each tick calls
// the core's Rebalance, which drives the installed Planner arbiter (see
// rebalance.New) and journals the tick when a journal is installed. Ticks
// stop rescheduling once every job has finished, so the simulation still
// terminates. A non-positive interval disables ticking.
func (s *Sim) WithRebalance(every float64) *Sim {
	s.rebalanceEvery = every
	return s
}

// WithCore replaces the scheduler implementation (differential tests and
// throughput benchmarks swap in LinearCore or a custom-sharded Core). The
// core must be freshly constructed for a cluster with the same total.
func (s *Sim) WithCore(core scheduler.Interface) *Sim {
	s.core = core
	return s
}

// Predictor builds a perfmodel-backed iteration-time predictor for a job
// mix, suitable for arbiter.BenefitRanked.Predict: job ids are resolved to
// their AppModels by arrival order, matching the ids the simulation will
// assign at submission.
func Predictor(params *perfmodel.Params, jobs []JobInput) func(jobID int, t grid.Topology) (float64, bool) {
	arrivals := append([]JobInput{}, jobs...)
	sort.SliceStable(arrivals, func(i, j int) bool { return arrivals[i].Arrival < arrivals[j].Arrival })
	models := make([]perfmodel.AppModel, len(arrivals))
	for i, in := range arrivals {
		models[i] = in.Model
	}
	return func(jobID int, t grid.Topology) (float64, bool) {
		if jobID < 0 || jobID >= len(models) {
			return 0, false
		}
		sec, err := params.IterTime(models[jobID], t)
		if err != nil {
			return 0, false
		}
		return sec, true
	}
}

// RedistPredictor builds a perfmodel-backed redistribution-cost estimator
// for a job mix, suitable for rebalance.Rebalancer.RedistCost: like
// Predictor, job ids are resolved to AppModels by arrival order.
func RedistPredictor(params *perfmodel.Params, jobs []JobInput) func(jobID int, from, to grid.Topology) (float64, bool) {
	arrivals := append([]JobInput{}, jobs...)
	sort.SliceStable(arrivals, func(i, j int) bool { return arrivals[i].Arrival < arrivals[j].Arrival })
	models := make([]perfmodel.AppModel, len(arrivals))
	for i, in := range arrivals {
		models[i] = in.Model
	}
	return func(jobID int, from, to grid.Topology) (float64, bool) {
		if jobID < 0 || jobID >= len(models) {
			return 0, false
		}
		return params.RedistTime(models[jobID], from, to), true
	}
}

// Run executes the simulation to completion and returns the result.
func (s *Sim) Run() (*Result, error) {
	if s.core == nil {
		s.core = scheduler.NewCore(s.total, true)
	}
	if s.policy != nil {
		s.core.SetPolicy(s.policy)
	}
	if s.arbiter != nil {
		s.core.SetArbiter(s.arbiter)
	}
	arrivals := append([]JobInput{}, s.inputs...)
	sort.SliceStable(arrivals, func(i, j int) bool { return arrivals[i].Arrival < arrivals[j].Arrival })
	s.pending = arrivals
	s.eng.Handle(scheduler.EvArrival, s.handleArrival)
	s.eng.Handle(scheduler.EvResizePoint, s.handleResizePoint)
	s.eng.Handle(scheduler.EvResizeDone, s.handleResizeDone)
	s.eng.Handle(scheduler.EvRebalance, s.handleRebalance)
	for i := range arrivals {
		s.eng.At(arrivals[i].Arrival, scheduler.EvArrival, i)
	}
	if s.rebalanceEvery > 0 {
		s.eng.At(s.rebalanceEvery, scheduler.EvRebalance, -1)
	}
	if err := s.drain(); err != nil {
		return nil, err
	}
	return s.collect()
}

// startIteration schedules the next resize point for a running job.
func (s *Sim) startIteration(js *jobState, now float64) error {
	job := s.job(js)
	dur, err := s.params.IterTime(js.input.Model, job.Topo)
	if err != nil {
		return err
	}
	js.lastIter = dur
	s.eng.At(now+dur, scheduler.EvResizePoint, js.id)
	return nil
}

func (s *Sim) handleArrival(e scheduler.Event) error {
	in := s.pending[e.Job]
	job, started, err := s.core.Submit(in.Spec, e.Time)
	if err != nil {
		return err
	}
	for job.ID >= len(s.states) {
		s.states = append(s.states, nil)
	}
	s.states[job.ID] = &jobState{
		input:   in,
		id:      job.ID,
		job:     job,
		jobCore: s.core,
		result: &JobResult{
			Name:        in.Spec.Name,
			App:         in.Spec.App,
			Tenant:      in.Spec.Tenant,
			InitialProc: in.Spec.InitialTopo.Count(),
			Submit:      e.Time,
		},
	}
	return s.beginStarted(started, e.Time)
}

// beginStarted kicks off the first iteration of every newly started job.
func (s *Sim) beginStarted(started []*scheduler.Job, now float64) error {
	for _, j := range started {
		js := s.state(j.ID)
		if js == nil {
			return fmt.Errorf("simcluster: started unknown job %d", j.ID)
		}
		js.result.Start = now
		if err := s.startIteration(js, now); err != nil {
			return err
		}
	}
	return nil
}

// recordIter appends one completed iteration's row to the job's result
// (dropped wholesale under WithoutIterRecords; the rows never feed back
// into scheduling). The row slice is sized once to the job's full
// iteration count, since every iteration produces exactly one row.
func (s *Sim) recordIter(js *jobState, procs int, topo string, redist float64) {
	if s.noIters {
		return
	}
	if js.result.Iters == nil {
		n := js.input.Spec.Iterations
		if n < 1 {
			n = 1
		}
		js.result.Iters = make([]IterRecord, 0, n)
	}
	js.result.Iters = append(js.result.Iters, IterRecord{
		Iter:      js.itersDone,
		Procs:     procs,
		Topo:      topo,
		IterTime:  js.lastIter,
		RedistSec: redist,
	})
}

func (s *Sim) handleResizePoint(e scheduler.Event) error {
	js := s.state(e.Job)
	job := s.job(js)
	now := e.Time
	js.itersDone++
	topo := job.Topo

	if js.itersDone >= js.input.Spec.Iterations {
		s.recordIter(js, topo.Count(), topo.String(), 0)
		js.result.End = now
		started, err := s.core.Finish(e.Job, now)
		if err != nil {
			return err
		}
		s.finished++
		return s.beginStarted(started, now)
	}

	if s.mode == Static {
		s.recordIter(js, topo.Count(), topo.String(), 0)
		return s.startIteration(js, now)
	}

	d, err := s.core.Contact(e.Job, topo, js.lastIter, js.lastRed, now)
	if err != nil {
		return err
	}
	js.lastRed = 0
	if d.Action == scheduler.ActionNone {
		s.recordIter(js, topo.Count(), topo.String(), 0)
		return s.startIteration(js, now)
	}

	// Resize granted: pay the redistribution cost, then resume.
	var cost float64
	if s.mode == DynamicCheckpoint {
		cost = s.params.CheckpointTime(js.input.Model, topo, d.Target)
	} else {
		cost = s.params.RedistTime(js.input.Model, topo, d.Target)
	}
	js.lastRed = cost
	js.result.TotalRedist += cost
	s.recordIter(js, topo.Count(), topo.String(), cost)
	s.eng.At(now+cost, scheduler.EvResizeDone, e.Job)
	return nil
}

func (s *Sim) handleResizeDone(e scheduler.Event) error {
	js := s.state(e.Job)
	started, err := s.core.ResizeComplete(e.Job, js.lastRed, e.Time)
	if err != nil {
		return err
	}
	if err := s.beginStarted(started, e.Time); err != nil {
		return err
	}
	return s.startIteration(js, e.Time)
}

// handleRebalance drives one planning tick and schedules the next while
// any job is still unfinished (the final tick after the last completion
// simply runs against an empty cluster and stops the chain).
func (s *Sim) handleRebalance(e scheduler.Event) error {
	if err := s.core.Rebalance(e.Time); err != nil {
		return err
	}
	if s.finished < len(s.inputs) {
		s.eng.At(e.Time+s.rebalanceEvery, scheduler.EvRebalance, -1)
	}
	return nil
}

// collect assembles the result. Utilization comes from the core's exact
// busy-time integral, so it is available even when event tracing is
// disabled for very large runs.
func (s *Sim) collect() (*Result, error) {
	res := &Result{Mode: s.mode, Total: s.total, Events: s.core.AllocEvents()}
	jobs := s.core.Jobs()
	res.Jobs = make([]JobResult, 0, len(jobs))
	for _, j := range jobs {
		js := s.state(j.ID)
		if j.State != scheduler.Done {
			return nil, fmt.Errorf("simcluster: job %q never finished (state %v)", j.Spec.Name, j.State)
		}
		res.Jobs = append(res.Jobs, *js.result)
		if js.result.End > res.Makespan {
			res.Makespan = js.result.End
		}
	}
	if res.Makespan > 0 && s.total > 0 {
		res.Utilization = s.core.BusySeconds(res.Makespan) / (float64(s.total) * res.Makespan)
	}
	return res, nil
}

// BusySeries converts the event trace into (time, busy) step points for
// Figures 4(b)/5(b).
func BusySeries(events []scheduler.AllocEvent) [][2]float64 {
	var out [][2]float64
	for _, e := range events {
		out = append(out, [2]float64{e.Time, float64(e.Busy)})
	}
	return out
}

// AllocSeries extracts one job's processor-allocation history as (time,
// procs) step points for Figures 4(a)/5(a). The series ends with the job's
// completion at zero processors.
func AllocSeries(events []scheduler.AllocEvent, jobName string) [][2]float64 {
	var out [][2]float64
	for _, e := range events {
		if e.Job != jobName {
			continue
		}
		switch e.Kind {
		case "start", "expand", "shrink":
			out = append(out, [2]float64{e.Time, float64(e.Topo.Count())})
		case "end":
			out = append(out, [2]float64{e.Time, 0})
		}
	}
	return out
}
