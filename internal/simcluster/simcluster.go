// Package simcluster is the virtual-time discrete-event simulation of a
// ReSHAPE-managed cluster. It replays job mixes against the calibrated
// performance models of package perfmodel while driving the *same*
// scheduler policy code (scheduler.Core) that the real runtime uses, so the
// workload experiments of the paper (Figures 3-5, Tables 4-5) run at full
// System X scale in milliseconds of wall clock.
//
// Three scheduling modes reproduce the paper's comparisons: Static pins
// every job to its initial allocation; Dynamic resizes with the
// message-passing redistribution cost model; DynamicCheckpoint resizes with
// the single-node file-based checkpointing cost model.
package simcluster

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/perfmodel"
	"repro/internal/scheduler"
)

// Mode selects the scheduling strategy.
type Mode int

const (
	// Static keeps every job at its initial allocation (conventional
	// scheduler).
	Static Mode = iota
	// Dynamic is ReSHAPE with the message-passing redistribution.
	Dynamic
	// DynamicCheckpoint is dynamic resizing paying the file-based
	// checkpoint/restart cost at every resize.
	DynamicCheckpoint
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Static:
		return "static"
	case Dynamic:
		return "reshape"
	case DynamicCheckpoint:
		return "checkpoint"
	default:
		return "unknown"
	}
}

// JobInput couples a scheduler job spec with its performance model and
// arrival time.
type JobInput struct {
	Spec    scheduler.JobSpec
	Model   perfmodel.AppModel
	Arrival float64
}

// IterRecord is one completed iteration in the simulation, mirroring the
// rows of Figure 3(a).
type IterRecord struct {
	Iter      int
	Procs     int
	Topo      string
	IterTime  float64
	RedistSec float64 // cost paid after this iteration's resize point
}

// JobResult summarizes one job.
type JobResult struct {
	Name        string
	App         string
	InitialProc int
	Submit      float64
	Start       float64
	End         float64
	Iters       []IterRecord
	TotalRedist float64
}

// Turnaround is completion time minus submission time.
func (j JobResult) Turnaround() float64 { return j.End - j.Submit }

// ComputeTime is the sum of iteration times (excluding redistribution).
func (j JobResult) ComputeTime() float64 {
	s := 0.0
	for _, r := range j.Iters {
		s += r.IterTime
	}
	return s
}

// Result is a full simulation outcome.
type Result struct {
	Mode        Mode
	Total       int
	Jobs        []JobResult
	Events      []scheduler.AllocEvent
	Makespan    float64
	Utilization float64 // fraction of available cpu-seconds assigned to jobs
}

// event is a discrete simulation event.
type event struct {
	time float64
	seq  int // tie-break for determinism
	kind eventKind
	job  int // scheduler job id
}

type eventKind int

const (
	evArrival eventKind = iota
	evResizePoint
	evResizeDone
)

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Sim runs one simulation.
type Sim struct {
	total  int
	mode   Mode
	params *perfmodel.Params
	core   *scheduler.Core

	inputs  []JobInput
	byID    map[int]*jobState
	events  eventHeap
	seq     int
	pending []JobInput // not yet submitted
}

type jobState struct {
	input     JobInput
	id        int
	itersDone int
	lastIter  float64 // duration of the iteration in flight / just completed
	lastRed   float64
	result    *JobResult
}

// New prepares a simulation over a cluster with total processors.
func New(total int, mode Mode, params *perfmodel.Params, jobs []JobInput) *Sim {
	return &Sim{
		total:  total,
		mode:   mode,
		params: params,
		core:   scheduler.NewCore(total, true),
		inputs: jobs,
		byID:   make(map[int]*jobState),
	}
}

// WithPolicy overrides the Remap Scheduler policy for this simulation (used
// by the policy ablation experiments); the default is the paper's policy.
func (s *Sim) WithPolicy(p scheduler.Policy) *Sim {
	s.core.Policy = p
	return s
}

// Run executes the simulation to completion and returns the result.
func (s *Sim) Run() (*Result, error) {
	heap.Init(&s.events)
	arrivals := append([]JobInput{}, s.inputs...)
	sort.SliceStable(arrivals, func(i, j int) bool { return arrivals[i].Arrival < arrivals[j].Arrival })
	s.pending = arrivals
	for i := range arrivals {
		s.push(arrivals[i].Arrival, evArrival, i)
	}

	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(event)
		switch e.kind {
		case evArrival:
			if err := s.handleArrival(e); err != nil {
				return nil, err
			}
		case evResizePoint:
			if err := s.handleResizePoint(e); err != nil {
				return nil, err
			}
		case evResizeDone:
			if err := s.handleResizeDone(e); err != nil {
				return nil, err
			}
		}
	}
	return s.collect()
}

func (s *Sim) push(t float64, kind eventKind, job int) {
	s.seq++
	heap.Push(&s.events, event{time: t, seq: s.seq, kind: kind, job: job})
}

// startIteration schedules the next resize point for a running job.
func (s *Sim) startIteration(js *jobState, now float64) error {
	job, _ := s.core.Job(js.id)
	dur, err := s.params.IterTime(js.input.Model, job.Topo)
	if err != nil {
		return err
	}
	js.lastIter = dur
	s.push(now+dur, evResizePoint, js.id)
	return nil
}

func (s *Sim) handleArrival(e event) error {
	in := s.pending[e.job]
	job, started, err := s.core.Submit(in.Spec, e.time)
	if err != nil {
		return err
	}
	s.byID[job.ID] = &jobState{
		input: in,
		id:    job.ID,
		result: &JobResult{
			Name:        in.Spec.Name,
			App:         in.Spec.App,
			InitialProc: in.Spec.InitialTopo.Count(),
			Submit:      e.time,
		},
	}
	return s.beginStarted(started, e.time)
}

// beginStarted kicks off the first iteration of every newly started job.
func (s *Sim) beginStarted(started []*scheduler.Job, now float64) error {
	for _, j := range started {
		js, ok := s.byID[j.ID]
		if !ok {
			return fmt.Errorf("simcluster: started unknown job %d", j.ID)
		}
		js.result.Start = now
		if err := s.startIteration(js, now); err != nil {
			return err
		}
	}
	return nil
}

func (s *Sim) handleResizePoint(e event) error {
	js := s.byID[e.job]
	job, _ := s.core.Job(e.job)
	now := e.time
	js.itersDone++
	rec := IterRecord{
		Iter:     js.itersDone,
		Procs:    job.Topo.Count(),
		Topo:     job.Topo.String(),
		IterTime: js.lastIter,
	}

	if js.itersDone >= js.input.Spec.Iterations {
		js.result.Iters = append(js.result.Iters, rec)
		js.result.End = now
		started, err := s.core.Finish(e.job, now)
		if err != nil {
			return err
		}
		return s.beginStarted(started, now)
	}

	if s.mode == Static {
		js.result.Iters = append(js.result.Iters, rec)
		return s.startIteration(js, now)
	}

	from := job.Topo
	d, err := s.core.Contact(e.job, job.Topo, js.lastIter, js.lastRed, now)
	if err != nil {
		return err
	}
	js.lastRed = 0
	if d.Action == scheduler.ActionNone {
		js.result.Iters = append(js.result.Iters, rec)
		return s.startIteration(js, now)
	}

	// Resize granted: pay the redistribution cost, then resume.
	var cost float64
	if s.mode == DynamicCheckpoint {
		cost = s.params.CheckpointTime(js.input.Model, from, d.Target)
	} else {
		cost = s.params.RedistTime(js.input.Model, from, d.Target)
	}
	js.lastRed = cost
	js.result.TotalRedist += cost
	rec.RedistSec = cost
	js.result.Iters = append(js.result.Iters, rec)
	s.push(now+cost, evResizeDone, e.job)
	return nil
}

func (s *Sim) handleResizeDone(e event) error {
	js := s.byID[e.job]
	started, err := s.core.ResizeComplete(e.job, js.lastRed, e.time)
	if err != nil {
		return err
	}
	if err := s.beginStarted(started, e.time); err != nil {
		return err
	}
	return s.startIteration(js, e.time)
}

// collect assembles the result and computes utilization from the allocation
// event trace.
func (s *Sim) collect() (*Result, error) {
	res := &Result{Mode: s.mode, Total: s.total, Events: s.core.Events}
	for _, j := range s.core.Jobs() {
		js := s.byID[j.ID]
		if j.State != scheduler.Done {
			return nil, fmt.Errorf("simcluster: job %q never finished (state %v)", j.Spec.Name, j.State)
		}
		res.Jobs = append(res.Jobs, *js.result)
		if js.result.End > res.Makespan {
			res.Makespan = js.result.End
		}
	}
	res.Utilization = utilization(s.core.Events, s.total, res.Makespan)
	return res, nil
}

// utilization integrates the busy-processor series over [0, makespan].
func utilization(events []scheduler.AllocEvent, total int, makespan float64) float64 {
	if makespan <= 0 || total <= 0 {
		return 0
	}
	busySeconds := 0.0
	prevT := 0.0
	prevBusy := 0
	for _, e := range events {
		if e.Time > prevT {
			busySeconds += float64(prevBusy) * (e.Time - prevT)
			prevT = e.Time
		}
		prevBusy = e.Busy
	}
	if makespan > prevT {
		busySeconds += float64(prevBusy) * (makespan - prevT)
	}
	return busySeconds / (float64(total) * makespan)
}

// BusySeries converts the event trace into (time, busy) step points for
// Figures 4(b)/5(b).
func BusySeries(events []scheduler.AllocEvent) [][2]float64 {
	var out [][2]float64
	for _, e := range events {
		out = append(out, [2]float64{e.Time, float64(e.Busy)})
	}
	return out
}

// AllocSeries extracts one job's processor-allocation history as (time,
// procs) step points for Figures 4(a)/5(a). The series ends with the job's
// completion at zero processors.
func AllocSeries(events []scheduler.AllocEvent, jobName string) [][2]float64 {
	var out [][2]float64
	for _, e := range events {
		if e.Job != jobName {
			continue
		}
		switch e.Kind {
		case "start", "expand", "shrink":
			out = append(out, [2]float64{e.Time, float64(e.Topo.Count())})
		case "end":
			out = append(out, [2]float64{e.Time, 0})
		}
	}
	return out
}
