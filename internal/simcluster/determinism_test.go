package simcluster

import (
	"testing"

	"repro/internal/perfmodel"
)

// TestSimulationDeterminism: identical inputs must produce byte-identical
// traces — the simulator has no hidden randomness or map-iteration order
// dependence, so every figure regenerates exactly.
func TestSimulationDeterminism(t *testing.T) {
	p := perfmodel.SystemX()
	jobs := []JobInput{
		luJob("A", 21000, topo(2, 3), 0, 10),
		luJob("B", 14000, topo(2, 4), 100, 10),
		luJob("C", 8000, topo(1, 2), 450, 10),
	}
	run := func() *Result {
		res, err := New(36, Dynamic, p, jobs).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run()
	b := run()
	if a.Makespan != b.Makespan || a.Utilization != b.Utilization {
		t.Fatalf("summary differs: %v/%v vs %v/%v",
			a.Makespan, a.Utilization, b.Makespan, b.Utilization)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	for i := range a.Jobs {
		if a.Jobs[i].End != b.Jobs[i].End || len(a.Jobs[i].Iters) != len(b.Jobs[i].Iters) {
			t.Fatalf("job %s differs between runs", a.Jobs[i].Name)
		}
	}
}

// TestSimulationConservation: every simulated job runs exactly its
// configured number of iterations regardless of mode, and redistribution
// time is only charged on transitions.
func TestSimulationConservation(t *testing.T) {
	p := perfmodel.SystemX()
	jobs := []JobInput{
		luJob("A", 12000, topo(1, 2), 0, 10),
		luJob("B", 16000, topo(2, 2), 50, 10),
	}
	for _, mode := range []Mode{Static, Dynamic, DynamicCheckpoint} {
		res, err := New(36, mode, p, jobs).Run()
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range res.Jobs {
			if len(j.Iters) != 10 {
				t.Errorf("%v %s: %d iterations", mode, j.Name, len(j.Iters))
			}
			sumRedist := 0.0
			for i, r := range j.Iters {
				if r.IterTime <= 0 {
					t.Errorf("%v %s iter %d: non-positive time", mode, j.Name, i)
				}
				sumRedist += r.RedistSec
			}
			if diff := sumRedist - j.TotalRedist; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("%v %s: per-iter redist %.3f != total %.3f", mode, j.Name, sumRedist, j.TotalRedist)
			}
			if mode == Static && j.TotalRedist != 0 {
				t.Errorf("static %s paid redistribution", j.Name)
			}
		}
	}
}
