package simcluster

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/perfmodel"
	"repro/internal/scheduler"
)

func topo(r, c int) grid.Topology { return grid.Topology{Rows: r, Cols: c} }

func luJob(name string, n int, initial grid.Topology, arrival float64, iters int) JobInput {
	return JobInput{
		Spec: scheduler.JobSpec{
			Name:        name,
			App:         "lu",
			ProblemSize: n,
			Iterations:  iters,
			InitialTopo: initial,
			Chain:       grid.GrowthChain(initial, n, 50),
		},
		Model:   perfmodel.AppModel{App: "lu", N: n},
		Arrival: arrival,
	}
}

func TestStaticSingleJobDuration(t *testing.T) {
	p := perfmodel.SystemX()
	jobs := []JobInput{luJob("LU", 12000, topo(1, 2), 0, 10)}
	res, err := New(50, Static, p, jobs).Run()
	if err != nil {
		t.Fatal(err)
	}
	iter, err := p.IterTime(perfmodel.AppModel{App: "lu", N: 12000}, topo(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	want := 10 * iter
	got := res.Jobs[0].Turnaround()
	if got < want*0.999 || got > want*1.001 {
		t.Errorf("static turnaround %.2f, want %.2f", got, want)
	}
	if len(res.Jobs[0].Iters) != 10 {
		t.Errorf("%d iteration records", len(res.Jobs[0].Iters))
	}
	for _, r := range res.Jobs[0].Iters {
		if r.Procs != 2 || r.RedistSec != 0 {
			t.Errorf("static iteration %+v", r)
		}
	}
}

func TestDynamicSoloJobClimbsToSweetSpot(t *testing.T) {
	// A lone LU(12000) on an idle cluster must reproduce Figure 3(a):
	// grow 2 -> 4 -> 6 -> 9 -> 12 -> 16, find 16 worse, shrink back to 12
	// and hold there.
	p := perfmodel.SystemX()
	jobs := []JobInput{luJob("LU", 12000, topo(1, 2), 0, 10)}
	res, err := New(50, Dynamic, p, jobs).Run()
	if err != nil {
		t.Fatal(err)
	}
	iters := res.Jobs[0].Iters
	wantProcs := []int{2, 4, 6, 9, 12, 16, 12, 12, 12, 12}
	if len(iters) != len(wantProcs) {
		t.Fatalf("%d iterations, want %d: %+v", len(iters), len(wantProcs), iters)
	}
	for i, r := range iters {
		if r.Procs != wantProcs[i] {
			t.Errorf("iteration %d on %d procs, want %d (full: %+v)", i+1, r.Procs, wantProcs[i], iters)
			break
		}
	}
	// Redistribution paid on every transition (6 resizes: 5 up, 1 down).
	resizes := 0
	for _, r := range iters {
		if r.RedistSec > 0 {
			resizes++
		}
	}
	if resizes != 6 {
		t.Errorf("%d redistributions, want 6", resizes)
	}
	if res.Jobs[0].TotalRedist <= 0 {
		t.Error("no redistribution cost recorded")
	}
}

func TestDynamicBeatsStaticForSoloJob(t *testing.T) {
	p := perfmodel.SystemX()
	jobs := []JobInput{luJob("LU", 24000, topo(2, 4), 0, 10)}
	st, err := New(50, Static, p, jobs).Run()
	if err != nil {
		t.Fatal(err)
	}
	dy, err := New(50, Dynamic, p, jobs).Run()
	if err != nil {
		t.Fatal(err)
	}
	if dy.Jobs[0].Turnaround() >= st.Jobs[0].Turnaround() {
		t.Errorf("dynamic %.1f should beat static %.1f",
			dy.Jobs[0].Turnaround(), st.Jobs[0].Turnaround())
	}
}

func TestCheckpointCostsMoreThanReshape(t *testing.T) {
	p := perfmodel.SystemX()
	jobs := []JobInput{luJob("LU", 12000, topo(1, 2), 0, 10)}
	re, err := New(50, Dynamic, p, jobs).Run()
	if err != nil {
		t.Fatal(err)
	}
	ck, err := New(50, DynamicCheckpoint, p, jobs).Run()
	if err != nil {
		t.Fatal(err)
	}
	if ck.Jobs[0].TotalRedist <= re.Jobs[0].TotalRedist {
		t.Errorf("checkpoint redist %.1f should exceed reshape %.1f",
			ck.Jobs[0].TotalRedist, re.Jobs[0].TotalRedist)
	}
	ratio := ck.Jobs[0].TotalRedist / re.Jobs[0].TotalRedist
	if ratio < 3 {
		t.Errorf("checkpoint/reshape ratio %.1f too small", ratio)
	}
}

func TestQueuedJobTriggersShrink(t *testing.T) {
	// Job A grows across a 16-proc cluster; when B arrives needing 8, A
	// must shrink back so B can start.
	p := perfmodel.SystemX()
	jobs := []JobInput{
		luJob("A", 12000, topo(1, 2), 0, 10),
		luJob("B", 12000, topo(2, 4), 400, 4),
	}
	res, err := New(16, Dynamic, p, jobs).Run()
	if err != nil {
		t.Fatal(err)
	}
	var a, b JobResult
	for _, j := range res.Jobs {
		switch j.Name {
		case "A":
			a = j
		case "B":
			b = j
		}
	}
	if b.Start <= b.Submit {
		t.Error("B should have waited in the queue")
	}
	shrunk := false
	for i := 1; i < len(a.Iters); i++ {
		if a.Iters[i].Procs < a.Iters[i-1].Procs {
			shrunk = true
		}
	}
	if !shrunk {
		t.Errorf("A never shrank: %+v", a.Iters)
	}
	if b.End == 0 {
		t.Error("B never finished")
	}
}

func TestUtilizationBounds(t *testing.T) {
	p := perfmodel.SystemX()
	jobs := []JobInput{
		luJob("A", 12000, topo(2, 2), 0, 5),
		luJob("B", 8000, topo(2, 2), 100, 5),
	}
	for _, mode := range []Mode{Static, Dynamic} {
		res, err := New(20, mode, p, jobs).Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Utilization <= 0 || res.Utilization > 1 {
			t.Errorf("%v utilization %v out of range", mode, res.Utilization)
		}
	}
}

func TestDynamicImprovesUtilization(t *testing.T) {
	p := perfmodel.SystemX()
	jobs := []JobInput{
		luJob("A", 21000, topo(2, 3), 0, 10),
		luJob("B", 14000, topo(2, 4), 0, 10),
	}
	st, err := New(36, Static, p, jobs).Run()
	if err != nil {
		t.Fatal(err)
	}
	dy, err := New(36, Dynamic, p, jobs).Run()
	if err != nil {
		t.Fatal(err)
	}
	if dy.Utilization <= st.Utilization {
		t.Errorf("dynamic utilization %.3f should exceed static %.3f",
			dy.Utilization, st.Utilization)
	}
}

func TestAllocAndBusySeries(t *testing.T) {
	p := perfmodel.SystemX()
	jobs := []JobInput{luJob("LU", 12000, topo(1, 2), 0, 6)}
	res, err := New(20, Dynamic, p, jobs).Run()
	if err != nil {
		t.Fatal(err)
	}
	alloc := AllocSeries(res.Events, "LU")
	if len(alloc) < 3 {
		t.Fatalf("alloc series too short: %v", alloc)
	}
	if alloc[0][1] != 2 {
		t.Errorf("first allocation %v, want 2 procs", alloc[0])
	}
	if alloc[len(alloc)-1][1] != 0 {
		t.Errorf("series should end at 0 procs: %v", alloc[len(alloc)-1])
	}
	busy := BusySeries(res.Events)
	for _, pt := range busy {
		if pt[1] < 0 || pt[1] > 20 {
			t.Errorf("busy point %v out of range", pt)
		}
	}
}

func TestFCFSQueueingInSim(t *testing.T) {
	// Two jobs that cannot co-run: the second starts only after the first
	// completes.
	p := perfmodel.SystemX()
	jobs := []JobInput{
		luJob("A", 12000, topo(3, 4), 0, 3),
		luJob("B", 12000, topo(3, 4), 1, 3),
	}
	res, err := New(12, Static, p, jobs).Run()
	if err != nil {
		t.Fatal(err)
	}
	var a, b JobResult
	for _, j := range res.Jobs {
		if j.Name == "A" {
			a = j
		} else {
			b = j
		}
	}
	if b.Start < a.End {
		t.Errorf("B started at %.1f before A ended at %.1f", b.Start, a.End)
	}
}

func TestMasterWorkerNoRedistCost(t *testing.T) {
	p := perfmodel.SystemX()
	chain := []grid.Topology{grid.Row1D(2), grid.Row1D(4), grid.Row1D(6)}
	jobs := []JobInput{{
		Spec: scheduler.JobSpec{
			Name: "MW", App: "mw", Iterations: 6,
			InitialTopo: chain[0], Chain: chain,
		},
		Model: perfmodel.AppModel{App: "mw", MWWorkSeconds: 14.7},
	}}
	res, err := New(10, Dynamic, p, jobs).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].TotalRedist != 0 {
		t.Errorf("MW redist cost %v, want 0", res.Jobs[0].TotalRedist)
	}
	grew := false
	for _, r := range res.Jobs[0].Iters {
		if r.Procs > 2 {
			grew = true
		}
	}
	if !grew {
		t.Error("MW never expanded")
	}
}
