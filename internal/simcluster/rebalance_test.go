package simcluster_test

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/durability"
	"repro/internal/perfmodel"
	"repro/internal/scheduler"
	"repro/internal/scheduler/rebalance"
	"repro/internal/simcluster"
	"repro/internal/workload"
)

// runRebalanced runs one W1 simulation with the global rebalancer ticking
// every `every` seconds, capturing every adopted plan.
func runRebalanced(t *testing.T, every float64) (*simcluster.Result, []rebalance.Plan) {
	t.Helper()
	params := perfmodel.SystemX()
	jobs := workload.W1()
	reb := rebalance.New(nil)
	reb.RedistCost = simcluster.RedistPredictor(params, jobs)
	var plans []rebalance.Plan
	reb.OnPlan = func(p rebalance.Plan) { plans = append(plans, p) }
	res, err := simcluster.New(workload.ClusterProcs, simcluster.Dynamic, params, jobs).
		WithArbiter(reb).
		WithRebalance(every).
		Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, plans
}

// TestRebalanceTicksFire checks the wiring end to end: ticks fire at the
// configured cadence, stop after the last completion (the run
// terminates), and the simulation still completes every job.
func TestRebalanceTicksFire(t *testing.T) {
	res, plans := runRebalanced(t, 200)
	if len(plans) == 0 {
		t.Fatal("no planning ticks fired")
	}
	if plans[0].Now != 200 {
		t.Fatalf("first tick at %.1f, want 200", plans[0].Now)
	}
	for i := 1; i < len(plans); i++ {
		if plans[i].Now != plans[i-1].Now+200 {
			t.Fatalf("tick cadence broke: %.1f after %.1f", plans[i].Now, plans[i-1].Now)
		}
	}
	if len(res.Jobs) != len(workload.W1()) {
		t.Fatalf("finished %d jobs, want %d", len(res.Jobs), len(workload.W1()))
	}
	// The last tick must not be long after the makespan (termination gate).
	last := plans[len(plans)-1].Now
	if last > res.Makespan+200 {
		t.Fatalf("ticks kept firing past completion: last %.1f, makespan %.1f", last, res.Makespan)
	}
}

// TestRebalancePlansDeterministic is the seed-stability acceptance gate:
// two identically configured runs adopt bit-identical plan sequences.
func TestRebalancePlansDeterministic(t *testing.T) {
	res1, plans1 := runRebalanced(t, 200)
	res2, plans2 := runRebalanced(t, 200)
	if !reflect.DeepEqual(plans1, plans2) {
		t.Fatalf("plan sequences diverged across identical runs:\n %+v\n %+v", plans1, plans2)
	}
	if res1.Makespan != res2.Makespan {
		t.Fatalf("makespan diverged: %v vs %v", res1.Makespan, res2.Makespan)
	}
}

// TestRebalanceCrashReplayReproducesPlans crashes the scheduler mid-run
// and recovers it from a genesis-replay WAL: the journaled OpRebalance
// ticks must replay to the exact plan sequence the baseline adopted, and
// the completed run must match the baseline's schedule.
func TestRebalanceCrashReplayReproducesPlans(t *testing.T) {
	params := perfmodel.SystemX()
	jobs := workload.W1()

	mkArbiter := func(sink *[]rebalance.Plan) *rebalance.Rebalancer {
		reb := rebalance.New(nil)
		reb.RedistCost = simcluster.RedistPredictor(params, jobs)
		reb.OnPlan = func(p rebalance.Plan) { *sink = append(*sink, p) }
		return reb
	}

	var basePlans []rebalance.Plan
	baseline, err := simcluster.New(workload.ClusterProcs, simcluster.Dynamic, params, jobs).
		WithArbiter(mkArbiter(&basePlans)).
		WithRebalance(200).
		Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(basePlans) == 0 {
		t.Fatal("baseline adopted no plans; the fixture is too weak")
	}

	dir := t.TempDir()
	core := scheduler.NewCore(workload.ClusterProcs, true)
	st, _, err := durability.Open(dir, durability.Options{
		Sync:    durability.SyncAlways,
		Capture: func() (*scheduler.CoreState, uint64) { return core.PersistState(), 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	core.SetJournal(st.Append)

	// Plans adopted by the dying process, then — after the crash — every
	// plan the replay recomputes plus the live post-recovery ticks. Genesis
	// replay re-executes all ticks from t=0, so crashPlans alone must
	// reproduce the baseline's full sequence.
	var preCrash, crashPlans []rebalance.Plan
	restarted := false
	res, err := simcluster.New(workload.ClusterProcs, simcluster.Dynamic, params, jobs).
		WithCore(core).
		WithArbiter(mkArbiter(&preCrash)).
		WithRebalance(200).
		WithCrashRestart(700, func(old scheduler.Interface) (scheduler.Interface, error) {
			_ = st.Close()
			var recovered *scheduler.Core
			st2, rec, err := durability.Open(dir, durability.Options{
				Sync:    durability.SyncAlways,
				Capture: func() (*scheduler.CoreState, uint64) { return recovered.PersistState(), 0 },
			})
			if err != nil {
				return nil, err
			}
			recovered, info, err := rec.Restore(func(cs *scheduler.CoreState) (*scheduler.Core, error) {
				if cs != nil {
					return nil, errors.New("genesis replay expected no snapshot")
				}
				c := scheduler.NewCore(workload.ClusterProcs, true)
				// The arbiter is configuration: install a fresh rebalancer
				// before replay so journaled ticks recompute their plans.
				c.SetArbiter(mkArbiter(&crashPlans))
				return c, nil
			})
			if err != nil {
				return nil, err
			}
			if !info.Recovered {
				return nil, errors.New("nothing recovered from a mid-run WAL")
			}
			recovered.SetJournal(st2.Append)
			st = st2
			restarted = true
			return recovered, nil
		}).
		Run()
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if !restarted {
		t.Fatal("crash point never fired")
	}
	if !reflect.DeepEqual(preCrash, basePlans[:len(preCrash)]) {
		t.Fatalf("pre-crash plans diverged from baseline prefix:\n %+v\n %+v", preCrash, basePlans[:len(preCrash)])
	}
	if !reflect.DeepEqual(crashPlans, basePlans) {
		t.Fatalf("replayed+resumed plan sequence diverged from baseline:\n %+v\n %+v", crashPlans, basePlans)
	}
	if res.Makespan != baseline.Makespan {
		t.Fatalf("makespan diverged: %.6f vs %.6f", res.Makespan, baseline.Makespan)
	}
	for i, j := range res.Jobs {
		bj := baseline.Jobs[i]
		if j.Name != bj.Name || j.Start != bj.Start || j.End != bj.End {
			t.Errorf("job %q diverged: start %.3f/%.3f end %.3f/%.3f",
				j.Name, j.Start, bj.Start, j.End, bj.End)
		}
	}
}
