// Package simcluster is the virtual-time discrete-event simulation of a
// ReSHAPE-managed cluster. It replays job mixes against the calibrated
// performance models of package perfmodel while driving the *same*
// scheduler policy code (scheduler.Core) that the real runtime uses, so the
// workload experiments of the paper (Figures 3-5, Tables 4-5) run at full
// System X scale in milliseconds of wall clock.
//
// Virtual time is the scheduler's own event engine (scheduler.Engine):
// arrivals, resize points and resize completions are timestamped events in
// one deterministic loop, with FIFO ordering among equal timestamps, so
// identical inputs replay to byte-identical traces. The simulator accepts
// any scheduler.Interface implementation (WithCore), which is how
// differential tests pin the event-indexed core to the pre-refactor
// LinearCore and how BenchmarkSchedulerThroughput runs 100k-job generated
// workloads through both.
//
// Three scheduling modes reproduce the paper's comparisons: Static pins
// every job to its initial allocation; Dynamic resizes with the
// message-passing redistribution cost model; DynamicCheckpoint resizes with
// the single-node file-based checkpointing cost model.
package simcluster
