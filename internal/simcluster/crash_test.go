package simcluster_test

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/durability"
	"repro/internal/perfmodel"
	"repro/internal/scheduler"
	"repro/internal/simcluster"
	"repro/internal/workload"
)

// TestCrashRestartMatchesBaseline kills the scheduler mid-W1 and recovers
// it from its WAL: the completed run must be indistinguishable from an
// uninterrupted baseline — same per-job start/end times, same makespan,
// same utilization, and (because genesis replay regenerates the trace) the
// same allocation-event history.
func TestCrashRestartMatchesBaseline(t *testing.T) {
	params := perfmodel.SystemX()

	baseline, err := simcluster.New(workload.ClusterProcs, simcluster.Dynamic, params, workload.W1()).Run()
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name          string
		crashAt       float64
		snapshotEvery uint64
	}{
		{"early-replay-only", 300, 0},
		{"midrun-with-snapshots", 700, 20},
		{"late-with-snapshots", 1500, 50},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			core := scheduler.NewCore(workload.ClusterProcs, true)
			st, _, err := durability.Open(dir, durability.Options{
				Sync:          durability.SyncAlways,
				SnapshotEvery: tc.snapshotEvery,
				Capture:       func() (*scheduler.CoreState, uint64) { return core.PersistState(), 0 },
			})
			if err != nil {
				t.Fatal(err)
			}
			core.SetJournal(st.Append)

			restarted := false
			res, err := simcluster.New(workload.ClusterProcs, simcluster.Dynamic, params, workload.W1()).
				WithCore(core).
				WithCrashRestart(tc.crashAt, func(old scheduler.Interface) (scheduler.Interface, error) {
					// The dying daemon gets no goodbye: abandon the old store
					// un-flushed (SyncAlways made every acked op durable) and
					// recover purely from disk.
					_ = st.Close()
					var recovered *scheduler.Core
					st2, rec, err := durability.Open(dir, durability.Options{
						Sync:          durability.SyncAlways,
						SnapshotEvery: tc.snapshotEvery,
						Capture:       func() (*scheduler.CoreState, uint64) { return recovered.PersistState(), 0 },
					})
					if err != nil {
						return nil, err
					}
					recovered, info, err := rec.Restore(func(cs *scheduler.CoreState) (*scheduler.Core, error) {
						if cs == nil {
							return scheduler.NewCore(workload.ClusterProcs, true), nil
						}
						return scheduler.NewCoreFromState(cs)
					})
					if err != nil {
						return nil, err
					}
					if !info.Recovered {
						return nil, errors.New("nothing recovered from a mid-run WAL")
					}
					recovered.SetJournal(st2.Append)
					st = st2
					restarted = true
					return recovered, nil
				}).
				Run()
			if err != nil {
				t.Fatal(err)
			}
			st.Close()
			if !restarted {
				t.Fatal("crash point never fired")
			}

			if len(res.Jobs) != len(baseline.Jobs) {
				t.Fatalf("job count diverged: %d vs baseline %d", len(res.Jobs), len(baseline.Jobs))
			}
			for i, j := range res.Jobs {
				bj := baseline.Jobs[i]
				if j.Name != bj.Name || j.Start != bj.Start || j.End != bj.End {
					t.Errorf("job %q diverged: start %.3f/%.3f end %.3f/%.3f",
						j.Name, j.Start, bj.Start, j.End, bj.End)
				}
			}
			if res.Makespan != baseline.Makespan {
				t.Fatalf("makespan diverged: %.6f vs %.6f", res.Makespan, baseline.Makespan)
			}
			if math.Abs(res.Utilization-baseline.Utilization) > 1e-12 {
				t.Fatalf("utilization diverged: %.12f vs %.12f", res.Utilization, baseline.Utilization)
			}
			if tc.snapshotEvery == 0 {
				// Genesis replay regenerates the full allocation trace.
				if !reflect.DeepEqual(res.Events, baseline.Events) {
					t.Fatalf("allocation trace diverged: %d events vs %d", len(res.Events), len(baseline.Events))
				}
			}
		})
	}
}
