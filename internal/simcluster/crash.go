package simcluster

import (
	"fmt"
	"sort"

	"repro/internal/scheduler"
)

// crashPlan schedules one scheduler kill/restart during a simulation.
type crashPlan struct {
	at      float64
	restart func(old scheduler.Interface) (scheduler.Interface, error)
}

// WithCrashRestart kills the scheduler at virtual time at — between event
// dispatches, the only observable instants of the simulation — and replaces
// it with whatever restart returns, typically a core recovered from a
// durability WAL. The simulated applications (iteration state, in-flight
// resize points) live outside the scheduler and survive the crash, exactly
// as real jobs outlive a reshaped daemon restart and reconnect. May be
// called several times for repeated crashes.
func (s *Sim) WithCrashRestart(at float64, restart func(old scheduler.Interface) (scheduler.Interface, error)) *Sim {
	s.crashes = append(s.crashes, crashPlan{at: at, restart: restart})
	return s
}

// drain runs the event loop to completion, interposing scheduled
// crash/restarts when the virtual clock reaches them. Dispatch is
// tick-batched (Engine.StepTick): all events sharing a timestamp are popped
// and handled in one pass, in the same (time, insertion) order a
// Step-per-event loop would use. Checking the crash predicate once per tick
// instead of once per event is equivalent, because every event in a tick
// carries the same timestamp t and the predicate t >= at is constant across
// them — a crash can only ever land on a tick boundary, the simulation's
// observable instants.
func (s *Sim) drain() error {
	sort.SliceStable(s.crashes, func(i, j int) bool { return s.crashes[i].at < s.crashes[j].at })
	for {
		t, ok := s.eng.PeekTime()
		if !ok {
			return nil
		}
		for len(s.crashes) > 0 && t >= s.crashes[0].at {
			core, err := s.crashes[0].restart(s.core)
			if err != nil {
				return fmt.Errorf("simcluster: restart at t=%.3f: %w", s.crashes[0].at, err)
			}
			if core == nil {
				return fmt.Errorf("simcluster: restart at t=%.3f returned no scheduler", s.crashes[0].at)
			}
			s.core = core
			s.crashes = s.crashes[1:]
		}
		if _, err := s.eng.StepTick(); err != nil {
			return err
		}
	}
}
